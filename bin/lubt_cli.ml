(* lubt: command-line front end.

   Subcommands:
     gen        write a synthetic benchmark instance to a file
     route      run the bounded-skew baseline router on an instance
     solve      solve the LUBT LP (+ embedding) for an instance & topology
     batch      domain-parallel sweep over a seeded instance corpus,
                JSON-lines output
     serve      long-lived JSON-lines solve daemon (Unix socket / TCP)
     table1/2/3, tradeoff, ablation
                regenerate the paper's tables and figure

   Output discipline: stdout carries the solution (or JSON) only; all
   diagnostic telemetry — solver counters, certification reports,
   recovery notes, per-round lazy-loop stats, progress — goes to stderr,
   so stdout can always be piped into a JSON parser or the next tool. *)

open Cmdliner

module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Bst = Lubt_bst.Bst_dme
module Simplex = Lubt_lp.Simplex
module Benchmarks = Lubt_data.Benchmarks
module Io = Lubt_data.Io
module Tables = Lubt_experiments.Tables
module Protocol = Lubt_experiments.Protocol
module Batch = Lubt_experiments.Batch
module Serve = Lubt_experiments.Serve
module Pool = Lubt_util.Pool
module Log = Lubt_obs.Log
module Trace = Lubt_obs.Trace
module Chrome_trace = Lubt_obs.Chrome_trace
module Convergence = Lubt_obs.Convergence

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let size_arg =
  let parse = function
    | "tiny" -> Ok Benchmarks.Tiny
    | "scaled" -> Ok Benchmarks.Scaled
    | "full" -> Ok Benchmarks.Full
    | s -> Error (`Msg (Printf.sprintf "unknown size %S (tiny|scaled|full)" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | Benchmarks.Tiny -> "tiny"
      | Benchmarks.Scaled -> "scaled"
      | Benchmarks.Full -> "full")
  in
  Arg.conv (parse, print)

let size_t =
  Arg.(
    value
    & opt size_arg Benchmarks.Scaled
    & info [ "size" ] ~docv:"SIZE"
        ~doc:"Benchmark size: tiny, scaled (default) or full (paper sizes).")

(* benchmark names don't depend on the size, so validate against Tiny *)
let bench_names =
  lazy
    (List.map
       (fun s -> s.Benchmarks.name)
       (Benchmarks.specs Benchmarks.Tiny @ Benchmarks.clustered Benchmarks.Tiny))

let bench_arg =
  let parse s =
    if List.mem s (Lazy.force bench_names) then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown benchmark %S (known: %s)" s
              (String.concat "|" (Lazy.force bench_names))))
  in
  Arg.conv (parse, Format.pp_print_string)

let bench_t =
  Arg.(
    value
    & opt bench_arg "prim1s"
    & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark name (prim1s|prim2s|r1s|r3s).")

let or_die = function
  | Ok v -> v
  | Error msg ->
    Log.err "%s" msg;
    exit 1

(* Cross-request warm-start cache plumbing, shared by solve, batch and
   serve. The in-process tier is on by default (it is cheap and pays
   off whenever one process solves related instances); --no-cache turns
   it off and --cache-dir adds the on-disk tier that persists bases
   across processes and daemon restarts. *)
let cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist warm-start basis snapshots under $(docv) (created if \
           missing), so later runs — including a restarted daemon — \
           warm-start from bases this run certified. Snapshots are \
           checksummed; a corrupt or stale file is rejected and the \
           solve runs cold.")

let no_cache_t =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the warm-start basis cache entirely (every solve \
           runs cold; implies --cache-dir is ignored).")

let make_cache ~no_cache ~cache_dir =
  if no_cache then None
  else Some (Lubt_lp.Basis_cache.create ?dir:cache_dir ())

let log_level_t =
  let level_conv =
    let parse s =
      match Log.level_of_string s with
      | Ok l -> Ok l
      | Error e -> Error (`Msg e)
    in
    let print fmt l = Format.pp_print_string fmt (Log.level_to_string l) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt level_conv Log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Stderr diagnostic verbosity: $(b,error), $(b,warn), $(b,info) \
           (default) or $(b,debug). Lowering it silences the progress \
           chatter without touching stdout.")

(* flush the recorder into a Chrome-trace JSON file; call after the
   traced work (and any worker domains) have finished *)
let write_trace path =
  let events = Trace.events () in
  let dropped = Trace.dropped () in
  Trace.stop ();
  Chrome_trace.write ~dropped path events;
  Log.info
    ~fields:
      [ ("events", Trace.Int (List.length events));
        ("dropped", Trace.Int dropped) ]
    "wrote trace to %s" path

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let gen size bench lower upper out =
  match Benchmarks.find size bench with
  | exception Not_found ->
    prerr_endline ("unknown benchmark: " ^ bench);
    exit 1
  | spec ->
    let upper = if upper <= 0.0 then infinity else upper in
    let inst = Benchmarks.instance ~lower ~upper spec in
    (match out with
    | Some path ->
      Io.write_instance path inst;
      Printf.printf "wrote %s (%d sinks, radius %g)\n" path
        (Instance.num_sinks inst) (Instance.radius inst)
    | None -> print_string (Io.instance_to_string inst))

let gen_cmd =
  let lower =
    Arg.(
      value & opt float 0.0
      & info [ "lower" ] ~doc:"Lower delay bound as a fraction of the radius.")
  in
  let upper =
    Arg.(
      value & opt float 0.0
      & info [ "upper" ]
          ~doc:"Upper delay bound as a fraction of the radius (0 = infinity).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file (stdout when absent).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark instance")
    Term.(const gen $ size_t $ bench_t $ lower $ upper $ out)

(* ------------------------------------------------------------------ *)
(* route (baseline)                                                     *)
(* ------------------------------------------------------------------ *)

let route inst_path skew topo_out =
  let inst = or_die (Io.read_instance inst_path) in
  let radius = Instance.radius inst in
  let bound = if skew < 0.0 then infinity else skew *. radius in
  let r =
    Bst.route ~skew_bound:bound
      ?source:inst.Instance.source inst.Instance.sinks
  in
  Printf.printf "baseline: cost %.2f, delays [%.4f, %.4f] x radius, skew %.4f\n"
    r.Bst.cost (r.Bst.dmin /. radius) (r.Bst.dmax /. radius)
    ((r.Bst.dmax -. r.Bst.dmin) /. radius);
  match topo_out with
  | Some path ->
    Io.write_tree path r.Bst.topology;
    Printf.printf "wrote topology to %s\n" path
  | None -> ()

let route_cmd =
  let inst_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE")
  in
  let skew =
    Arg.(
      value & opt float (-1.0)
      & info [ "skew" ]
          ~doc:"Skew bound as a fraction of the radius (negative = infinity).")
  in
  let topo_out =
    Arg.(
      value & opt (some string) None
      & info [ "topology-out" ] ~docv:"FILE" ~doc:"Write the produced topology.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Run the bounded-skew baseline router")
    Term.(const route $ inst_path $ skew $ topo_out)

(* ------------------------------------------------------------------ *)
(* solve (LUBT)                                                         *)
(* ------------------------------------------------------------------ *)

(* diagnostic telemetry goes to stderr: stdout stays machine-parseable *)
let print_solver_stats (ebf : Ebf.result) =
  Format.eprintf "%a@." Simplex.pp_stats ebf.Ebf.lp_stats;
  (match ebf.Ebf.certificate with
  | Some report -> Format.eprintf "%a@." Lubt_lp.Certify.pp report
  | None -> ());
  Printf.eprintf "warm-start cache: %s\n"
    (Ebf.cache_outcome_name ebf.Ebf.cache_outcome);
  prerr_endline "lazy-loop rounds:";
  List.iter
    (fun (r : Ebf.round_stat) ->
      Printf.eprintf
        "  round %d: %d violations, %d rows added, scan %.3f ms, solve %.3f \
         ms (%d pivots)\n"
        r.Ebf.round r.Ebf.violations_found r.Ebf.rows_added
        (r.Ebf.scan_seconds *. 1e3)
        (r.Ebf.solve_seconds *. 1e3)
        r.Ebf.solve_pivots)
    ebf.Ebf.round_stats

let solve inst_path topo_path eager stats certify time_limit fault_seed
    pricing no_warm_start json trace convergence cache_dir no_cache log_level =
  Log.set_level log_level;
  if trace <> None then Trace.start ();
  let conv_sink =
    match convergence with
    | None -> None
    | Some path ->
      let oc = open_out path in
      Some (path, oc, Convergence.to_channel oc)
  in
  (* flushes the observability outputs; must run on every exit path of
     the solve, success or not, so partial traces survive failures *)
  let finish_obs () =
    (match conv_sink with
    | Some (path, oc, sink) ->
      close_out oc;
      Log.info
        ~fields:[ ("lines", Trace.Int (Convergence.lines sink)) ]
        "wrote convergence log to %s" path
    | None -> ());
    match trace with Some path -> write_trace path | None -> ()
  in
  let probe =
    match conv_sink with
    | None -> None
    | Some (_, _, sink) ->
      Some
        (fun (e : Simplex.probe_event) ->
          Convergence.record sink ~iteration:e.Simplex.pr_iteration
            ~phase:e.Simplex.pr_phase ~objective:e.Simplex.pr_objective
            ~primal_infeasibility:e.Simplex.pr_primal_infeas
            ~dual_infeasibility:e.Simplex.pr_dual_infeas
            ~entering:e.Simplex.pr_entering ~leaving:e.Simplex.pr_leaving
            ~eta_count:e.Simplex.pr_eta_count
            ~bound_flips:e.Simplex.pr_bound_flips
            ?recovery:e.Simplex.pr_recovery ())
  in
  let inst = or_die (Io.read_instance inst_path) in
  let tree =
    match topo_path with
    | Some path -> or_die (Io.read_tree path)
    | None ->
      (* no topology given: generate one with the baseline, guided by the
         skew implied by the bounds (the paper's protocol) *)
      let radius = Instance.radius inst in
      let lo, _ = Lubt_util.Stats.min_max inst.Instance.lower in
      let _, hi = Lubt_util.Stats.min_max inst.Instance.upper in
      let bound = if hi = infinity then infinity else max 0.0 (hi -. lo) in
      ignore radius;
      let r =
        Bst.route ~skew_bound:bound ?source:inst.Instance.source
          inst.Instance.sinks
      in
      r.Bst.topology
  in
  let lp_params =
    {
      Ebf.default_options.Ebf.lp_params with
      Simplex.fault =
        (match fault_seed with
        | Some seed -> Some (Simplex.fault_plan seed)
        | None -> None);
      pricing;
      warm_start = not no_warm_start;
    }
  in
  let options =
    {
      Ebf.default_options with
      Ebf.lazy_steiner = not eager;
      check = (if certify then Lubt_lp.Certify.Full else Lubt_lp.Certify.Off);
      time_limit = (if time_limit <= 0.0 then infinity else time_limit);
      warm_start = not no_warm_start;
      cache = make_cache ~no_cache ~cache_dir;
      lp_params;
      probe;
    }
  in
  match Lubt.solve ~options inst tree with
  | Error e ->
    finish_obs ();
    Log.err "%s" (Lubt.error_to_string e);
    exit 1
  | Ok report ->
    let routed = report.Lubt.routed in
    (* diagnostics to stderr first, solution to stdout last *)
    Log.info
      ~fields:
        [ ("full_rows", Trace.Int report.Lubt.ebf.Ebf.full_rows);
          ("rounds", Trace.Int report.Lubt.ebf.Ebf.rounds) ]
      "LP: %d rows (full formulation: %d), %d simplex iterations, %d rounds"
      report.Lubt.ebf.Ebf.lp_rows report.Lubt.ebf.Ebf.full_rows
      report.Lubt.ebf.Ebf.lp_iterations report.Lubt.ebf.Ebf.rounds;
    (match report.Lubt.ebf.Ebf.certificate with
    | Some r when r.Lubt_lp.Certify.ok ->
      Log.info "certification: OK (%s level, %d rows)"
        (Lubt_lp.Certify.level_to_string r.Lubt_lp.Certify.level)
        r.Lubt_lp.Certify.rows_checked
    | _ -> ());
    let recov = (report.Lubt.ebf.Ebf.lp_stats).Simplex.recoveries in
    if Simplex.recovery_attempts recov > 0 then
      Log.warn
        ~fields:
          [ ("faults_injected", Trace.Int recov.Simplex.faults_injected);
            ( "validations_rejected",
              Trace.Int recov.Simplex.validations_rejected ) ]
        "numerical recoveries: %d"
        (Simplex.recovery_attempts recov);
    if stats then print_solver_stats report.Lubt.ebf;
    let validated, verrors =
      match Routed.validate routed with
      | Ok () -> (true, [])
      | Error es -> (false, es)
    in
    if not validated then begin
      Log.err "validation FAILED:";
      List.iter (fun e -> Log.err "  %s" e) verrors
    end
    else Log.info "validation: OK";
    finish_obs ();
    (* rendered by the Serve module so the one-shot report and the
       daemon's responses share one definition and cannot drift *)
    if json then print_endline (Serve.solve_report_json report ~validated)
    else Format.printf "%a@." Routed.pp_summary routed;
    if not validated then exit 1

let solve_cmd =
  let inst_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE")
  in
  let topo_path =
    Arg.(
      value & opt (some file) None
      & info [ "topology" ] ~docv:"FILE"
          ~doc:"Topology file (generated by the baseline router when absent).")
  in
  let eager =
    Arg.(
      value & flag
      & info [ "eager" ] ~doc:"Disable lazy Steiner-row generation.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print solver counters (pricing scans, ftran/btran, \
             refactorisations, phase times) and per-round lazy-loop \
             telemetry after the solve.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Certify the LP solution a posteriori (primal/dual residuals, \
             complementary slackness, duality gap) and verify every Steiner \
             and delay constraint geometrically, plus the finished \
             embedding. A rejected certificate fails with a non-zero exit.")
  in
  let time_limit =
    Arg.(
      value & opt float 0.0
      & info [ "time-limit" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the whole solve (all lazy rounds); 0 or \
             negative disables. On expiry the solve fails with a \
             time-limit diagnostic and a non-zero exit.")
  in
  let fault_seed =
    Arg.(
      value & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Inject deterministic numerical faults (singular \
             refactorisations, perturbed ftrans, zero pivots) seeded by \
             SEED, to exercise the recovery ladder. Testing only.")
  in
  let pricing =
    let rule =
      Arg.enum
        [
          ("dantzig", Simplex.Dantzig);
          ("partial", Simplex.Partial);
          ("devex", Simplex.Devex);
        ]
    in
    Arg.(
      value
      & opt rule Ebf.default_options.Ebf.lp_params.Simplex.pricing
      & info [ "pricing" ] ~docv:"RULE"
          ~doc:
            "Simplex pricing rule: $(b,dantzig) (full most-negative scan), \
             $(b,partial) (candidate-list partial pricing) or $(b,devex) \
             (reference-framework weights). All reach the same optimum; \
             only the pivot order differs.")
  in
  let no_warm_start =
    Arg.(
      value & flag
      & info [ "no-warm-start" ]
          ~doc:
            "Refactorise the LP basis after each lazy row-generation round \
             instead of extending the live factorisation in place \
             (disables cross-round warm starts).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the solve report as a single JSON object on stdout \
             (cost, validation/certification verdicts, EBF and solver \
             telemetry). All diagnostics go to stderr either way, so \
             stdout is machine-parseable.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans for the whole solve (EBF rounds, simplex \
             phases, FTRAN/BTRAN, embedding passes) and write them as \
             Chrome trace-event JSON to FILE — load it in Perfetto \
             (ui.perfetto.dev) or chrome://tracing.")
  in
  let convergence =
    Arg.(
      value
      & opt (some string) None
      & info [ "convergence" ] ~docv:"FILE"
          ~doc:
            "Record one JSON line per simplex pivot (objective, \
             dual infeasibility, entering/leaving indices, eta count, \
             recovery events) to FILE. Installs the per-iteration \
             probe, which perturbs BTRAN counters; solutions are \
             unaffected.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve the LUBT problem (EBF + embedding)")
    Term.(
      const solve $ inst_path $ topo_path $ eager $ stats $ certify
      $ time_limit $ fault_seed $ pricing $ no_warm_start $ json $ trace
      $ convergence $ cache_dir_t $ no_cache_t $ log_level_t)

(* ------------------------------------------------------------------ *)
(* batch                                                                *)
(* ------------------------------------------------------------------ *)

(* [mkdir -p]: --trace-dir may name a nested path that does not exist
   yet (e.g. results/2026-08/run3) *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* repeated sweeps into one directory must not clobber earlier traces:
   take batch_trace.json if free, else the first free -N suffix *)
let fresh_trace_path dir =
  let base = Filename.concat dir "batch_trace" in
  if not (Sys.file_exists (base ^ ".json")) then base ^ ".json"
  else
    let rec go n =
      let p = Printf.sprintf "%s-%d.json" base n in
      if Sys.file_exists p then go (n + 1) else p
    in
    go 1

let batch size jobs seed per_bench skew no_certify out trace_dir cache_dir
    no_cache =
  (match trace_dir with
  | Some dir ->
    mkdir_p dir;
    Trace.start ()
  | None -> ());
  let specs = Batch.corpus ~size ~per_bench ~skew_rel:skew ~seed () in
  Log.info
    ~fields:[ ("cores", Trace.Int (Pool.default_jobs ())) ]
    "batch: %d instances, %d jobs" (List.length specs) jobs;
  let cache = make_cache ~no_cache ~cache_dir in
  let s = Batch.run ~jobs ~certify:(not no_certify) ?cache specs in
  (match cache with
  | Some c ->
    let cs = Lubt_lp.Basis_cache.stats c in
    Log.info
      ~fields:
        [
          ("hits", Trace.Int cs.Lubt_lp.Basis_cache.hits);
          ("misses", Trace.Int cs.Lubt_lp.Basis_cache.misses);
        ]
      "warm-start cache: %.0f%% hit rate"
      (100.0 *. Lubt_lp.Basis_cache.hit_rate cs)
  | None -> ());
  let oc = match out with Some path -> open_out path | None -> stdout in
  List.iter
    (fun o -> output_string oc (Batch.outcome_json o ^ "\n"))
    s.Batch.outcomes;
  output_string oc (Batch.summary_json s ^ "\n");
  if out <> None then close_out oc;
  Log.info
    ~fields:[ ("failures", Trace.Int s.Batch.failures) ]
    "batch: wall %.3fs, %d failures" s.Batch.wall_s s.Batch.failures;
  List.iter
    (fun (o : Batch.outcome) ->
      match o.Batch.error with
      | Some e -> Log.err "%s: %s" o.Batch.spec.Batch.id e
      | None -> ())
    s.Batch.outcomes;
  (* all worker domains have joined inside Batch.run, so every
     per-domain buffer is quiescent and safe to snapshot *)
  (match trace_dir with
  | Some dir -> write_trace (fresh_trace_path dir)
  | None -> ());
  if s.Batch.failures > 0 then exit 1

let batch_cmd =
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sweep. 1 (the default) runs the exact \
             sequential path; results and their order are identical at any \
             value — only the wall-clock changes. 0 means the machine's \
             recommended domain count.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Base sink-field seed: variant $(i,k) of each benchmark uses \
             seed N+k, so the corpus is reproducible.")
  in
  let per_bench =
    Arg.(
      value & opt int 5
      & info [ "per-bench" ] ~docv:"K"
          ~doc:"Seeded sink-field variants per benchmark (default 5).")
  in
  let skew =
    Arg.(
      value & opt float 0.5
      & info [ "skew" ] ~docv:"F"
          ~doc:
            "Skew bound (x radius) guiding each instance's baseline \
             topology; the EBF window is the baseline's achieved one.")
  in
  let no_certify =
    Arg.(
      value & flag
      & info [ "no-certify" ]
          ~doc:
            "Skip the a-posteriori Full certificate on each instance \
             (faster; objectives are then not independently certified).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON-lines records to FILE instead of stdout.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Record spans for the whole sweep and write \
             DIR/batch_trace.json (Chrome trace-event JSON; DIR and \
             its parents are created if missing, and an existing \
             trace gets a -N suffixed sibling instead of being \
             overwritten). Each worker domain records into its own \
             buffer, so parallel tasks render as separate tracks in \
             Perfetto.")
  in
  let run size jobs seed per_bench skew no_certify out trace_dir cache_dir
      no_cache log_level =
    Log.set_level log_level;
    let jobs = if jobs = 0 then Pool.default_jobs () else jobs in
    if jobs < 0 || per_bench < 1 then begin
      Log.err "--jobs must be >= 0 and --per-bench >= 1";
      exit 1
    end;
    batch size jobs seed per_bench skew no_certify out trace_dir cache_dir
      no_cache
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a seeded instance corpus on a pool of domains, one \
          JSON-lines record per instance (input order) plus a summary \
          line; non-zero exit if any instance fails")
    Term.(
      const run $ size_t $ jobs $ seed $ per_bench $ skew $ no_certify $ out
      $ trace_dir $ cache_dir_t $ no_cache_t $ log_level_t)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

let serve socket port host metrics_port jobs max_pending default_time_limit
    watchdog breaker_p95_ms breaker_queue breaker_cooldown chaos_seed
    chaos_kill_rate chaos_delay_rate chaos_delay_ms cache_dir no_cache
    log_level =
  Log.set_level log_level;
  if socket = None && port = None then begin
    prerr_endline "lubt serve: give --socket PATH and/or --port PORT";
    exit 2
  end;
  if
    chaos_kill_rate < 0.0 || chaos_kill_rate > 1.0 || chaos_delay_rate < 0.0
    || chaos_delay_rate > 1.0 || chaos_delay_ms < 0.0
  then begin
    prerr_endline
      "lubt serve: chaos rates must be in [0,1] and --chaos-delay-ms >= 0";
    exit 2
  end;
  let chaos =
    match chaos_seed with
    | None -> None
    | Some seed ->
      Some
        (Pool.Executor.chaos_plan ~kill_rate:chaos_kill_rate
           ~delay_rate:chaos_delay_rate
           ~delay_s:(chaos_delay_ms /. 1e3)
           seed)
  in
  let cfg =
    {
      Serve.socket;
      port;
      host;
      jobs = (if jobs = 0 then Pool.default_jobs () else jobs);
      max_pending;
      default_time_limit =
        (if default_time_limit <= 0.0 then infinity else default_time_limit);
      watchdog = (if watchdog <= 0.0 then infinity else watchdog);
      breaker_p95_ms =
        (if breaker_p95_ms <= 0.0 then infinity else breaker_p95_ms);
      breaker_queue = max 0 breaker_queue;
      breaker_cooldown = (if breaker_cooldown <= 0.0 then 1.0 else breaker_cooldown);
      chaos;
      cache = make_cache ~no_cache ~cache_dir;
      metrics_port;
    }
  in
  match Serve.create cfg with
  | Error msg ->
    prerr_endline msg;
    exit 1
  | Ok server ->
    Serve.install_signal_handlers server;
    let stats = Serve.run server in
    (* stdout stays machine-readable: one summary object, like batch *)
    Printf.printf
      "{\"connections\": %d, \"served\": %d, \"rejected\": %d, \
       \"failed\": %d, \"degraded\": %d, \"restarts\": %d, \
       \"watchdog_fires\": %d, \"breaker_trips\": %d, \
       \"cache_hits\": %d, \"cache_misses\": %d}\n"
      stats.Serve.connections stats.Serve.served stats.Serve.rejected
      stats.Serve.failed stats.Serve.degraded stats.Serve.restarts
      stats.Serve.watchdog_fires stats.Serve.breaker_trips
      stats.Serve.cache_hits stats.Serve.cache_misses

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (a stale socket \
             file is replaced; it is removed again on shutdown).")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on TCP $(docv) (combinable with --socket).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR"
          ~doc:"TCP bind address (default loopback only).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Expose Prometheus text metrics over HTTP at \
             $(b,GET /metrics) on $(docv) (bound to --host; default: no \
             metrics listener). The JSON-lines $(b,metrics) op serves \
             the same registry snapshot either way.")
  in
  let jobs =
    Arg.(
      value & opt int 4
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains solving requests concurrently (default 4; 0 \
             means the machine's recommended domain count).")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Bound on queued (accepted, not yet running) requests. A \
             request arriving past the bound is refused immediately with \
             an $(b,overloaded) error instead of growing the queue.")
  in
  let default_time_limit =
    Arg.(
      value & opt float 0.0
      & info [ "default-time-limit" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget applied to requests that carry no \
             $(b,time_limit) of their own (default: none). An expired \
             solve answers with a $(b,time_limit) error.")
  in
  let watchdog =
    Arg.(
      value & opt float 0.0
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Hard per-request deadline (default: none). A request \
             running longer has its worker domain deposed and replaced; \
             the request answers with a $(b,watchdog_timeout) error and \
             the restart is counted in the stats.")
  in
  let breaker_p95_ms =
    Arg.(
      value & opt float 0.0
      & info [ "breaker-p95-ms" ] ~docv:"MS"
          ~doc:
            "Circuit breaker: when the p95 latency of recently completed \
             requests reaches $(docv), new solves are rejected fast with \
             $(b,breaker_open) + $(b,retry_after_ms) for the cooldown \
             period (default: disabled).")
  in
  let breaker_queue =
    Arg.(
      value & opt int 0
      & info [ "breaker-queue" ] ~docv:"N"
          ~doc:
            "Circuit breaker: open when the executor queue depth reaches \
             $(docv) (default: disabled).")
  in
  let breaker_cooldown =
    Arg.(
      value & opt float 1.0
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:"How long the breaker stays open once tripped (default 1).")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Arm deterministic service-level fault injection: accepted \
             tasks are killed mid-solve or delayed according to a seeded \
             stream (see --chaos-kill-rate/--chaos-delay-rate). For \
             chaos tests and CI smokes only.")
  in
  let chaos_kill_rate =
    Arg.(
      value & opt float 0.1
      & info [ "chaos-kill-rate" ] ~docv:"P"
          ~doc:
            "With --chaos-seed: probability a task kills its worker \
             domain mid-request (default 0.1).")
  in
  let chaos_delay_rate =
    Arg.(
      value & opt float 0.2
      & info [ "chaos-delay-rate" ] ~docv:"P"
          ~doc:
            "With --chaos-seed: probability a task gets injected latency \
             (default 0.2).")
  in
  let chaos_delay_ms =
    Arg.(
      value & opt float 20.0
      & info [ "chaos-delay-ms" ] ~docv:"MS"
          ~doc:"With --chaos-seed: the injected latency (default 20).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived solve daemon: JSON-lines requests over a Unix \
          socket and/or TCP, answered by a supervised pool of worker \
          domains with bounded-queue backpressure, per-request \
          deadlines, a hard watchdog, a circuit breaker and an opt-in \
          graceful-degradation ladder; responses reuse the \
          $(b,solve --json) report shape. SIGTERM or SIGINT drains \
          in-flight requests and exits cleanly.")
    Term.(
      const serve $ socket $ port $ host $ metrics_port $ jobs $ max_pending
      $ default_time_limit $ watchdog $ breaker_p95_ms $ breaker_queue
      $ breaker_cooldown $ chaos_seed $ chaos_kill_rate $ chaos_delay_rate
      $ chaos_delay_ms $ cache_dir_t $ no_cache_t $ log_level_t)

(* ------------------------------------------------------------------ *)
(* svg                                                                  *)
(* ------------------------------------------------------------------ *)

let topology_for inst topo_path =
  match topo_path with
  | Some path -> or_die (Io.read_tree path)
  | None ->
    let lo, _ = Lubt_util.Stats.min_max inst.Instance.lower in
    let _, hi = Lubt_util.Stats.min_max inst.Instance.upper in
    let bound = if hi = infinity then infinity else max 0.0 (hi -. lo) in
    (Bst.route ~skew_bound:bound ?source:inst.Instance.source
       inst.Instance.sinks)
      .Bst.topology

let svg inst_path topo_path out labels =
  let inst = or_die (Io.read_instance inst_path) in
  let tree = topology_for inst topo_path in
  match Lubt.solve inst tree with
  | Error e ->
    prerr_endline (Lubt.error_to_string e);
    exit 1
  | Ok report ->
    Lubt_core.Svg.write ~show_labels:labels out report.Lubt.routed;
    Printf.printf "wrote %s (%s)\n" out
      (Format.asprintf "%a" Routed.pp_summary report.Lubt.routed)

let svg_cmd =
  let inst_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE")
  in
  let topo_path =
    Arg.(
      value & opt (some file) None
      & info [ "topology" ] ~docv:"FILE" ~doc:"Topology file.")
  in
  let out =
    Arg.(value & opt string "tree.svg" & info [ "o" ] ~docv:"FILE" ~doc:"Output SVG.")
  in
  let labels = Arg.(value & flag & info [ "labels" ] ~doc:"Draw node-id labels.") in
  Cmd.v
    (Cmd.info "svg" ~doc:"Solve and render the routed tree as SVG")
    Term.(const svg $ inst_path $ topo_path $ out $ labels)

(* ------------------------------------------------------------------ *)
(* optimize                                                             *)
(* ------------------------------------------------------------------ *)

let optimize inst_path topo_path budget topo_out =
  let inst = or_die (Io.read_instance inst_path) in
  let tree = topology_for inst topo_path in
  let options =
    { Lubt_core.Topo_opt.default_options with
      Lubt_core.Topo_opt.max_evaluations = budget }
  in
  let r = Lubt_core.Topo_opt.improve ~options inst tree in
  if r.Lubt_core.Topo_opt.cost = infinity then begin
    prerr_endline "no LUBT exists for the initial topology and these bounds";
    exit 1
  end;
  Printf.printf
    "topology optimisation: %.2f -> %.2f (%.2f%% saved), %d moves, %d LP \
     evaluations, %d passes\n"
    r.Lubt_core.Topo_opt.initial_cost r.Lubt_core.Topo_opt.cost
    ((r.Lubt_core.Topo_opt.initial_cost -. r.Lubt_core.Topo_opt.cost)
    /. r.Lubt_core.Topo_opt.initial_cost *. 100.0)
    r.Lubt_core.Topo_opt.accepted r.Lubt_core.Topo_opt.evaluations
    r.Lubt_core.Topo_opt.passes;
  match topo_out with
  | Some path ->
    Io.write_tree path r.Lubt_core.Topo_opt.tree;
    Printf.printf "wrote optimised topology to %s\n" path
  | None -> ()

let optimize_cmd =
  let inst_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE")
  in
  let topo_path =
    Arg.(
      value & opt (some file) None
      & info [ "topology" ] ~docv:"FILE" ~doc:"Initial topology file.")
  in
  let budget =
    Arg.(
      value & opt int 400
      & info [ "budget" ] ~doc:"Maximum LP evaluations during the search.")
  in
  let topo_out =
    Arg.(
      value & opt (some string) None
      & info [ "topology-out" ] ~docv:"FILE" ~doc:"Write the improved topology.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Improve the topology under the instance bounds (Section 9)")
    Term.(const optimize $ inst_path $ topo_path $ budget $ topo_out)

(* ------------------------------------------------------------------ *)
(* tables                                                               *)
(* ------------------------------------------------------------------ *)

let table1 size = Tables.print_table1 (Tables.table1 ~size ())

let table2 size = Tables.print_table2 (Tables.table2 ~size ())

let table3 size = Tables.print_table3 (Tables.table3 ~size ())

let tradeoff size bench = Tables.print_tradeoff (Tables.tradeoff ~size ~bench ())

let ablation size bench = Tables.print_ablation (Tables.ablation ~size ~bench ())

let table_cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ size_t)

let tradeoff_cmd =
  Cmd.v
    (Cmd.info "tradeoff" ~doc:"Regenerate Figure 8 (cost vs bounds)")
    Term.(const tradeoff $ size_t $ bench_t)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Row-generation and zero-skew ablations")
    Term.(const ablation $ size_t $ bench_t)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "lubt" ~version:"1.0.0"
      ~doc:"Lower/Upper Bounded delay routing Trees via linear programming"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            gen_cmd;
            route_cmd;
            solve_cmd;
            batch_cmd;
            serve_cmd;
            svg_cmd;
            optimize_cmd;
            table_cmd "table1" "Regenerate Table 1 (baseline vs LUBT)" table1;
            table_cmd "table2" "Regenerate Table 2 (shifted windows)" table2;
            table_cmd "table3" "Regenerate Table 3 (other bounds)" table3;
            tradeoff_cmd;
            ablation_cmd;
          ]))
