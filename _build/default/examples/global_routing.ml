(* Bounded-delay global routing and short-path fixing (paper introduction
   and Section 4.3 case [l = 0, u < inf] / [l > 0]).

   (1) A signal net with a long-path (setup) constraint: an upper bound on
       every source-to-sink path length — the classic bounded-delay global
       routing problem. LUBT with l = 0 solves it at minimum wire.
   (2) The same net later fails a short-path (hold) check at two sinks.
       The usual fix inserts delay buffers; the paper's alternative is to
       set a LOWER bound for those sinks and let the router elongate the
       wires, which costs area/power only in metal.

   Run with: dune exec examples/global_routing.exe *)

module Point = Lubt_geom.Point
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Bst = Lubt_bst.Bst_dme
module Prng = Lubt_util.Prng

let () =
  let rng = Prng.create 99 in
  let sinks =
    Array.init 14 (fun _ ->
        Point.make (Prng.float rng 100.0) (Prng.float rng 100.0))
  in
  let m = Array.length sinks in
  let source = Point.make 0.0 0.0 in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius base in
  let topology = (Bst.route ~source sinks).Bst.topology in

  (* unconstrained Steiner tree for reference *)
  let steiner =
    match Lubt.solve base topology with
    | Ok { routed; _ } -> routed
    | Error e -> failwith (Lubt.error_to_string e)
  in
  let _, steiner_worst = Routed.min_max_delay steiner in
  Printf.printf "reference Steiner tree: wire %.1f, worst path %.3f x radius\n"
    (Routed.cost steiner) (steiner_worst /. radius);

  (* (1) setup constraints, per sink: no path may be stretched more than
     10% over that sink's own shortest possible length (distinct per-sink
     bounds are exactly what EBF supports) *)
  let dist = Array.map (Point.dist source) sinks in
  let worst_stretch routed =
    let delays = Routed.sink_delays routed in
    let worst = ref 1.0 in
    Array.iteri (fun i d -> worst := max !worst (d /. dist.(i))) delays;
    !worst
  in
  Printf.printf "  worst per-sink stretch in the Steiner tree: %.3f\n"
    (worst_stretch steiner);
  let upper = Array.map (fun d -> 1.1 *. d) dist in
  let setup = Instance.with_bounds base ~lower:(Array.make m 0.0) ~upper in
  let bounded =
    match Lubt.solve setup topology with
    | Ok { routed; _ } -> routed
    | Error e -> failwith (Lubt.error_to_string e)
  in
  Printf.printf
    "with 1.1x per-sink path bounds: wire %.1f (+%.1f%%), worst stretch %.3f\n"
    (Routed.cost bounded)
    ((Routed.cost bounded -. Routed.cost steiner) /. Routed.cost steiner *. 100.0)
    (worst_stretch bounded);

  (* (2) hold fix: sinks 0 and 1 now also need a minimum path length of
     1.05x their distance; the router stretches their wires instead of
     inserting delay buffers *)
  let lower = Array.make m 0.0 in
  lower.(0) <- 1.05 *. dist.(0);
  lower.(1) <- 1.05 *. dist.(1);
  let hold_fixed_inst = Instance.with_bounds base ~lower ~upper in
  let hold_fixed =
    match Lubt.solve hold_fixed_inst topology with
    | Ok { routed; _ } -> routed
    | Error e -> failwith (Lubt.error_to_string e)
  in
  let delays = Routed.sink_delays hold_fixed in
  Printf.printf
    "hold-fixing sinks 0,1 by wire elongation: wire %.1f (+%.1f%% over bounded)\n"
    (Routed.cost hold_fixed)
    ((Routed.cost hold_fixed -. Routed.cost bounded) /. Routed.cost bounded *. 100.0);
  Printf.printf "  sink 0 path: %.3f x its distance (window [1.05, 1.10])\n"
    (delays.(0) /. dist.(0));
  Printf.printf "  sink 1 path: %.3f x its distance (window [1.05, 1.10])\n"
    (delays.(1) /. dist.(1));
  Printf.printf "  elongated edges in the tree: %d\n"
    (Routed.num_elongated hold_fixed);
  (match Routed.validate hold_fixed with
  | Ok () -> print_endline "validation: OK"
  | Error es -> List.iter print_endline es);
  print_endline
    "No delay buffers were inserted: the short paths were stretched in metal
only, the paper's proposed alternative for hold fixing."
