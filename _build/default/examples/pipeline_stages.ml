(* Per-sink delay bounds for a pipelined design (paper introduction).

   In a pipeline whose combinational stages have different logic depths,
   the clock-arrival windows of the flip-flops differ per stage: a stage
   with slack can accept an earlier or later clock edge. LUBT accepts
   distinct [l_i, u_i] per sink, which this example exploits: the
   flip-flops of stage A (tight logic) get a narrow window, stage B's
   (lots of slack) a wide and shifted one. The per-sink-window tree is
   compared with the tree forced to use one common window for everyone.

   Run with: dune exec examples/pipeline_stages.exe *)

module Point = Lubt_geom.Point
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Bst = Lubt_bst.Bst_dme
module Prng = Lubt_util.Prng

let () =
  let rng = Prng.create 7 in
  (* stage A flip-flops cluster on the left half, stage B on the right *)
  let stage_a =
    Array.init 12 (fun _ ->
        Point.make (Prng.float rng 40.0) (Prng.float rng 100.0))
  in
  let stage_b =
    Array.init 12 (fun _ ->
        Point.make (60.0 +. Prng.float rng 40.0) (Prng.float rng 100.0))
  in
  let sinks = Array.append stage_a stage_b in
  let m = Array.length sinks in
  let source = Point.make 50.0 50.0 in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius base in

  (* stage A: clock must arrive in [0.95, 1.05] x radius (tight stage);
     stage B: anywhere in [0.55, 1.30] (plenty of combinational slack) *)
  let lower =
    Array.init m (fun i -> (if i < 12 then 0.95 else 0.55) *. radius)
  in
  let upper =
    Array.init m (fun i -> (if i < 12 then 1.05 else 1.30) *. radius)
  in
  let per_stage = Instance.with_bounds base ~lower ~upper in

  (* common window = intersection of the two stage windows *)
  let common = Instance.with_normalized_bounds base ~lower:0.95 ~upper:1.05 in

  let topology =
    (Bst.route ~skew_bound:(0.2 *. radius) ~source sinks).Bst.topology
  in
  let solve name inst =
    match Lubt.solve inst topology with
    | Error e -> failwith (name ^ ": " ^ Lubt.error_to_string e)
    | Ok { routed; _ } ->
      (match Routed.validate routed with
      | Ok () -> ()
      | Error es -> failwith (String.concat "; " es));
      routed
  in
  let tree_common = solve "common" common in
  let tree_stage = solve "per-stage" per_stage in
  Printf.printf "pipeline clock net: %d flip-flops in 2 stages, radius %g\n\n"
    m radius;
  Printf.printf "common window  [0.95, 1.05]          : wire %.1f\n"
    (Routed.cost tree_common);
  Printf.printf "per-stage windows [0.95,1.05]/[0.55,1.30]: wire %.1f  (%.1f%% saved)\n"
    (Routed.cost tree_stage)
    ((Routed.cost tree_common -. Routed.cost tree_stage)
    /. Routed.cost tree_common *. 100.0);
  let delays = Routed.sink_delays tree_stage in
  let stage_range lo hi =
    let ds = Array.to_list (Array.sub delays lo (hi - lo)) in
    (List.fold_left min infinity ds /. radius,
     List.fold_left max neg_infinity ds /. radius)
  in
  let a_lo, a_hi = stage_range 0 12 and b_lo, b_hi = stage_range 12 24 in
  Printf.printf "\nper-stage arrivals: stage A in [%.3f, %.3f], stage B in [%.3f, %.3f]\n"
    a_lo a_hi b_lo b_hi;
  print_endline
    "Stage B's slack is converted directly into shorter clock wiring — the
motivating scenario of the paper's introduction."
