(* Clock windows under the Elmore delay model (Section 7).

   The EBF becomes a quadratically-constrained program under Elmore delay;
   the paper proposes general nonlinear programming, implemented here as a
   sequential LP. This example routes a small clock net into the delay
   window [0.7, 1.05] x (relaxed maximum) under BOTH models and contrasts
   the wire each needs: elongation raises Elmore delay quadratically, so
   the Elmore solution meets the lower bound with noticeably less metal.

   Run with: dune exec examples/elmore_clock.exe *)

module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Elmore_ebf = Lubt_core.Elmore_ebf
module Elmore = Lubt_delay.Elmore
module Linear = Lubt_delay.Linear
module Bst = Lubt_bst.Bst_dme
module Benchmarks = Lubt_data.Benchmarks
module Stats = Lubt_util.Stats

let () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s" in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let m = Array.length sinks in
  (* 1996-flavour unit parasitics: 0.1 ohm & 0.2 fF per unit, 1 fF loads *)
  let wire = { Elmore.r_w = 0.0001; c_w = 0.0002 } in
  let loads = Array.make m 1.0 in
  let topo = (Bst.route ~source sinks).Bst.topology in
  let relaxed = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let base = Ebf.solve relaxed topo in
  let max_lin = Array.fold_left max 0.0 (Linear.sink_delays topo base.Ebf.lengths) in
  let max_elm =
    Array.fold_left max 0.0 (Elmore.sink_delays topo wire loads base.Ebf.lengths)
  in
  Printf.printf "clock net: %d sinks; relaxed tree: wire %.1f, max delay %.1f (linear) / %.3f (elmore)\n\n"
    m base.Ebf.objective max_lin max_elm;

  let lo_rel = 0.7 and hi_rel = 1.05 in
  (* linear-model window *)
  let lin_inst =
    Instance.uniform_bounds ~source ~sinks ~lower:(lo_rel *. max_lin)
      ~upper:(hi_rel *. max_lin) ()
  in
  let lin = Ebf.solve lin_inst topo in
  Printf.printf "linear window [%.2f, %.2f] x max: wire %.1f (+%.1f%% over relaxed)\n"
    lo_rel hi_rel lin.Ebf.objective
    ((lin.Ebf.objective -. base.Ebf.objective) /. base.Ebf.objective *. 100.0);

  (* Elmore-model window *)
  let elm_inst =
    Instance.uniform_bounds ~source ~sinks ~lower:(lo_rel *. max_elm)
      ~upper:(hi_rel *. max_elm) ()
  in
  let elm = Elmore_ebf.solve ~wire ~loads elm_inst topo in
  Printf.printf "elmore window [%.2f, %.2f] x max: wire %.1f (+%.1f%%), %d SLP iterations, residual %.2g\n"
    lo_rel hi_rel elm.Elmore_ebf.cost
    ((elm.Elmore_ebf.cost -. base.Ebf.objective) /. base.Ebf.objective *. 100.0)
    elm.Elmore_ebf.outer_iterations elm.Elmore_ebf.max_violation;
  let dlo, dhi = Stats.min_max elm.Elmore_ebf.sink_delays in
  Printf.printf "  achieved elmore delays: [%.4f, %.4f] (window [%.4f, %.4f])\n"
    dlo dhi (lo_rel *. max_elm) (hi_rel *. max_elm);
  print_newline ();
  print_endline
    "The quadratic delay of a snaked wire grows faster than its length, so
meeting the same relative window takes less metal under Elmore than under
the linear model — the flexibility Section 7 points at."
