examples/pipeline_stages.ml: Array List Lubt_bst Lubt_core Lubt_geom Lubt_util Printf String
