examples/pipeline_stages.mli:
