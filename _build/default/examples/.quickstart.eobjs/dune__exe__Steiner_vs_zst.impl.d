examples/steiner_vs_zst.ml: Array Float List Lubt_bst Lubt_core Lubt_data Printf
