examples/clock_tree.ml: Array Float List Lubt_bst Lubt_core Lubt_data Printf
