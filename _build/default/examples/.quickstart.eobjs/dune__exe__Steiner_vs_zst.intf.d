examples/steiner_vs_zst.mli:
