examples/quickstart.mli:
