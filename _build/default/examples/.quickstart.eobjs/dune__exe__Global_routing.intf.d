examples/global_routing.mli:
