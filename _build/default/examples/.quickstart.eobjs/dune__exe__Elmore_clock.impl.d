examples/elmore_clock.ml: Array Lubt_bst Lubt_core Lubt_data Lubt_delay Lubt_util Printf
