examples/quickstart.ml: Array Format List Lubt_bst Lubt_core Lubt_geom Printf
