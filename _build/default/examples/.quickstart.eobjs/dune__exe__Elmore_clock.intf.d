examples/elmore_clock.mli:
