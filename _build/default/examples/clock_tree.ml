(* Tolerable-skew clock routing (Section 6 of the paper).

   A clock net rarely needs exactly zero skew; allowing a tolerable skew d
   with a cap u on the longest source-to-sink delay is the realistic
   requirement, and it maps onto LUBT bounds l = u - d, u. This example
   sweeps the tolerable skew on a benchmark-sized clock net and shows the
   wire (therefore clock-power) savings relative to a zero-skew tree,
   while the longest delay stays capped.

   Run with: dune exec examples/clock_tree.exe *)

module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Bst = Lubt_bst.Bst_dme
module Benchmarks = Lubt_data.Benchmarks

let () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s" in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius base in
  Printf.printf "clock net: %d sinks, radius %g\n" (Array.length sinks) radius;
  Printf.printf "longest-delay cap: 1.2 x radius; sweeping tolerable skew\n\n";
  Printf.printf "%10s  %12s  %10s  %10s  %8s\n" "skew tol" "wire" "saving"
    "max delay" "skew";
  let upper = 1.2 in
  let zero_skew_cost = ref nan in
  List.iter
    (fun d ->
      let lower = upper -. d in
      let inst = Instance.with_normalized_bounds base ~lower ~upper in
      (* topology guided by the available skew, as in the paper *)
      let bst = Bst.route ~skew_bound:(d *. radius) ~source sinks in
      match Lubt.solve inst bst.Bst.topology with
      | Error e -> failwith (Lubt.error_to_string e)
      | Ok { routed; _ } ->
        let cost = Routed.cost routed in
        if Float.is_nan !zero_skew_cost then zero_skew_cost := cost;
        let lo, hi = Routed.min_max_delay routed in
        Printf.printf "%10.2f  %12.1f  %9.1f%%  %10.3f  %8.3f\n" d cost
          ((!zero_skew_cost -. cost) /. !zero_skew_cost *. 100.0)
          (hi /. radius)
          ((hi -. lo) /. radius))
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.8; 1.2 ];
  print_newline ();
  print_endline
    "Every row satisfies the delay cap; looser tolerable skew buys shorter
total wire, which is the clock-power argument of the paper's introduction."
