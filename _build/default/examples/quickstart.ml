(* Quickstart: build a small LUBT from scratch.

   Five sinks, a fixed source, and delay bounds [0.8, 1.1] x radius: the
   solver finds minimum total wire such that every source-to-sink path
   length lands in that window, then places the Steiner points.

   Run with: dune exec examples/quickstart.exe *)

module Point = Lubt_geom.Point
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Snake = Lubt_core.Snake
module Bst = Lubt_bst.Bst_dme

let () =
  let sinks =
    [|
      Point.make 2.0 9.0;
      Point.make 9.0 8.0;
      Point.make 8.0 2.0;
      Point.make 1.0 1.0;
      Point.make 5.0 10.0;
    |]
  in
  let source = Point.make 5.0 5.0 in
  (* start from trivial bounds to learn the radius, then window [0.8, 1.1] *)
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let inst = Instance.with_normalized_bounds base ~lower:0.8 ~upper:1.1 in
  Printf.printf "instance radius: %g\n" (Instance.radius inst);

  (* a topology from the skew-guided generator (window width 0.3 x radius) *)
  let bst = Bst.route ~skew_bound:(0.3 *. Instance.radius inst) ~source sinks in

  (* the LUBT linear program + DME-style embedding *)
  match Lubt.solve inst bst.Bst.topology with
  | Error e -> failwith (Lubt.error_to_string e)
  | Ok { routed; ebf } ->
    Format.printf "%a@." Routed.pp_summary routed;
    Printf.printf "LP solved with %d rows in %d simplex iterations\n"
      ebf.Lubt_core.Ebf.lp_rows ebf.Lubt_core.Ebf.lp_iterations;
    let delays = Routed.sink_delays routed in
    Array.iteri
      (fun k d ->
        Printf.printf "  sink %d at %s: delay %.3f (window [%.3f, %.3f])\n" k
          (Point.to_string sinks.(k))
          d inst.Instance.lower.(k) inst.Instance.upper.(k))
      delays;
    (* materialise elongated edges as snaked rectilinear wire *)
    let polylines = Snake.route_tree routed in
    let elongated =
      Array.to_list polylines
      |> List.filter (fun (i, _) -> Routed.edge_slack routed i > 1e-9)
    in
    Printf.printf "%d of %d edges are elongated (snaked):\n"
      (List.length elongated) (Array.length polylines);
    List.iter
      (fun (i, poly) ->
        Printf.printf "  edge %d: %d bends, exact length %.3f\n" i
          (List.length poly - 2)
          (Snake.length poly))
      elongated;
    match Routed.validate routed with
    | Ok () -> print_endline "validation: OK"
    | Error es -> List.iter print_endline es
