(* Visual comparison: zero-skew tree vs bounded-skew tree vs Steiner tree
   on a clustered clock net, rendered to SVG.

   Writes three files into the current directory:
     zst.svg       - skew bound 0 (balanced, expensive, dashed detours)
     bst.svg       - skew bound 0.3 x radius
     steiner.svg   - unbounded (cheap, no elongation)

   Run with: dune exec examples/steiner_vs_zst.exe *)

module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Svg = Lubt_core.Svg
module Bst = Lubt_bst.Bst_dme
module Benchmarks = Lubt_data.Benchmarks

let () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s-c" in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius base in
  Printf.printf "clustered clock net: %d sinks, radius %g\n\n" (Array.length sinks) radius;
  let zst_cost = ref nan in
  List.iter
    (fun (name, skew_rel) ->
      let bound = if skew_rel = infinity then infinity else skew_rel *. radius in
      let bst = Bst.route ~skew_bound:bound ~source sinks in
      (* re-embed optimally with the LP at the achieved window *)
      let inst = Bst.extract_instance bst in
      let routed =
        match Lubt.solve inst bst.Bst.topology with
        | Ok r -> r.Lubt.routed
        | Error e -> failwith (Lubt.error_to_string e)
      in
      let cost = Routed.cost routed in
      if Float.is_nan !zst_cost then zst_cost := cost;
      let file = name ^ ".svg" in
      Svg.write file routed;
      Printf.printf "%-12s skew<=%-5s wire %10.1f (%5.1f%% of ZST)  -> %s\n" name
        (if skew_rel = infinity then "inf" else string_of_float skew_rel)
        cost
        (cost /. !zst_cost *. 100.0)
        file)
    [ ("zst", 0.0); ("bst", 0.3); ("steiner", infinity) ];
  print_newline ();
  print_endline
    "Open the SVGs side by side: the zero-skew tree balances every merge
(dashed segments are snaked detour wire), the bounded-skew tree only
balances where the budget forces it, and the Steiner tree attaches each
cluster by the shortest path."
