(** Column-aligned ASCII table rendering for experiment output. *)

type cell = string

val render : header:cell list -> cell list list -> string
(** Renders rows under a header, right-aligning numeric-looking cells. *)

val print : title:string -> header:cell list -> cell list list -> unit
(** Renders with a title banner to stdout. *)

val fnum : float -> string
(** Compact numeric formatting: integers without decimals, "inf" for
    infinities, 4 significant decimals otherwise. *)

val fnum1 : float -> string
(** One-decimal fixed formatting (tree costs, matching the paper). *)

val fnum3 : float -> string
(** Three-decimal fixed formatting (normalised delays/skews). *)
