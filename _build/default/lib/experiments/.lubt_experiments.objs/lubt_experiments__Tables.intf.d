lib/experiments/tables.mli: Lubt_data
