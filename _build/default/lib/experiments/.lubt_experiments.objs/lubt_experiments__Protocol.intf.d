lib/experiments/protocol.mli: Lubt_bst Lubt_core Lubt_data
