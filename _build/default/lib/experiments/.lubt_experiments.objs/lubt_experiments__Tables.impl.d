lib/experiments/tables.ml: Array List Lubt_bst Lubt_core Lubt_data Lubt_delay Lubt_lp Lubt_topo Lubt_util Printf Protocol Report String
