lib/experiments/report.mli:
