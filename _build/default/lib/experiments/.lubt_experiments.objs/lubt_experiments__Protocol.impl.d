lib/experiments/protocol.ml: Array Lubt_bst Lubt_core Lubt_data Lubt_lp Printf Unix
