module Benchmarks = Lubt_data.Benchmarks
module Bst_dme = Lubt_bst.Bst_dme
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Status = Lubt_lp.Status

type baseline_run = {
  spec : Benchmarks.spec;
  radius : float;
  skew_rel : float;
  bst : Bst_dme.result;
  shortest_rel : float;
  longest_rel : float;
  bst_seconds : float;
}

type lubt_run = {
  lower_rel : float;
  upper_rel : float;
  cost : float;
  ebf : Ebf.result;
  lubt_seconds : float;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_baseline spec ~skew_rel =
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 =
    Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity ()
  in
  let radius = Instance.radius inst0 in
  let bound = if skew_rel = infinity then infinity else skew_rel *. radius in
  let bst, bst_seconds =
    time (fun () -> Bst_dme.route ~skew_bound:bound ~source sinks)
  in
  {
    spec;
    radius;
    skew_rel;
    bst;
    shortest_rel = bst.Bst_dme.dmin /. radius;
    longest_rel = bst.Bst_dme.dmax /. radius;
    bst_seconds;
  }

let run_lubt ?options (b : baseline_run) ~lower_rel ~upper_rel =
  let inst0 = b.bst.Bst_dme.routed.Lubt_core.Routed.instance in
  let m = Instance.num_sinks inst0 in
  let lower = Array.make m (lower_rel *. b.radius) in
  let upper =
    Array.make m
      (if upper_rel = infinity then infinity else upper_rel *. b.radius)
  in
  let inst = Instance.with_bounds inst0 ~lower ~upper in
  let ebf, lubt_seconds =
    time (fun () -> Ebf.solve ?options inst b.bst.Bst_dme.topology)
  in
  if ebf.Ebf.status <> Status.Optimal then
    failwith
      (Printf.sprintf "LUBT LP on %s [%g, %g] returned %s" b.spec.Benchmarks.name
         lower_rel upper_rel
         (Status.to_string ebf.Ebf.status));
  {
    lower_rel;
    upper_rel;
    cost = ebf.Ebf.objective;
    ebf;
    lubt_seconds;
  }

let run_lubt_from_baseline ?options (b : baseline_run) =
  if b.skew_rel = infinity then
    run_lubt ?options b ~lower_rel:0.0 ~upper_rel:infinity
  else run_lubt ?options b ~lower_rel:b.shortest_rel ~upper_rel:b.longest_rel
