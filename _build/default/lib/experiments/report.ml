type cell = string

let is_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'i' || c = 'n' || c = 'f' || c = '*') s

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i c -> if i < cols then widths.(i) <- max widths.(i) (String.length c))
        row)
    all;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i c ->
        let pad = widths.(i) - String.length c in
        let cell =
          if is_numeric c then String.make pad ' ' ^ c
          else c ^ String.make pad ' '
        in
        Buffer.add_string buf (if i = 0 then cell else "  " ^ cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = List.map (fun _ -> "") header in
  ignore rule;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (cols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~title ~header rows =
  Printf.printf "\n=== %s ===\n%s%!" title (render ~header rows)

let fnum f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let fnum1 f = if f = infinity then "inf" else Printf.sprintf "%.1f" f

let fnum3 f = if f = infinity then "inf" else Printf.sprintf "%.3f" f
