(** Elmore delay model (Section 7).

    [delay(s_j) = sum over e_k on path(s_0, s_j) of
       r_w * e_k * (c_w * e_k / 2 + C_k)]
    where [C_k] is the capacitance of the subtree hanging below [s_k]
    (downstream edge wire capacitance plus sink load capacitances). *)

type wire = { r_w : float;  (** resistance per unit length *)
              c_w : float  (** capacitance per unit length *) }

type loads = float array
(** Load capacitance per sink, in [Tree.sinks] order. *)

val subtree_caps : Lubt_topo.Tree.t -> wire -> loads -> float array -> float array
(** [C_k] per node: sink loads plus wire capacitance strictly below the
    node (the node's own parent edge excluded). *)

val node_delays : Lubt_topo.Tree.t -> wire -> loads -> float array -> float array
(** Elmore delay per node. *)

val sink_delays : Lubt_topo.Tree.t -> wire -> loads -> float array -> float array

val gradient : Lubt_topo.Tree.t -> wire -> loads -> float array -> int -> float array
(** [gradient tree wire loads lengths sink_node] is the gradient of the
    Elmore delay of [sink_node] with respect to every edge length:
    [g.(a) = d delay(sink) / d e_a]. Entry 0 (the root, which owns no
    edge) is 0. Used by the sequential-LP solver for the Elmore EBF. *)

val skew : Lubt_topo.Tree.t -> wire -> loads -> float array -> float
