module Tree = Lubt_topo.Tree

type wire = { r_w : float; c_w : float }

type loads = float array

let subtree_caps tree wire loads lengths =
  let n = Tree.num_nodes tree in
  let caps = Array.make n 0.0 in
  let post = Tree.postorder tree in
  Array.iter
    (fun i ->
      let own =
        if Tree.is_sink tree i then loads.(Tree.sink_index tree i) else 0.0
      in
      (* children contribute their subtree plus their own parent edge wire *)
      let below =
        List.fold_left
          (fun acc c -> acc +. caps.(c) +. (wire.c_w *. lengths.(c)))
          0.0 (Tree.children tree i)
      in
      caps.(i) <- own +. below)
    post;
  caps

let node_delays tree wire loads lengths =
  let caps = subtree_caps tree wire loads lengths in
  let n = Tree.num_nodes tree in
  let d = Array.make n 0.0 in
  let pre = Tree.preorder tree in
  Array.iter
    (fun i ->
      if i <> Tree.root then begin
        let e = lengths.(i) in
        let stage = wire.r_w *. e *. ((wire.c_w *. e /. 2.0) +. caps.(i)) in
        d.(i) <- d.(Tree.parent tree i) +. stage
      end)
    pre;
  d

let sink_delays tree wire loads lengths =
  let d = node_delays tree wire loads lengths in
  Array.map (fun s -> d.(s)) (Tree.sinks tree)

(* d delay(j)/d e_a  =  r_w * ( [a on path(0,j)] * (c_w e_a + C_a)
                               + c_w * plen(z) )
   where plen is the linear path length from the root and z is the deepest
   node that is both an ancestor of a's parent-side and on path(0,j):
   z = parent(a) when a is on the path, lca(a, j) otherwise. The first term
   is the direct effect on stage a; the second is e_a's wire capacitance
   showing up in C_k of every upstream stage k shared with the path. *)
let gradient tree wire loads lengths sink_node =
  let caps = subtree_caps tree wire loads lengths in
  let plen = Tree.delays tree lengths in
  let n = Tree.num_nodes tree in
  let on_path = Array.make n false in
  let rec mark i =
    if i <> Tree.root then begin
      on_path.(i) <- true;
      mark (Tree.parent tree i)
    end
  in
  mark sink_node;
  let g = Array.make n 0.0 in
  for a = 1 to n - 1 do
    let z = if on_path.(a) then Tree.parent tree a else Tree.lca tree a sink_node in
    let shared = plen.(z) in
    let direct =
      if on_path.(a) then (wire.c_w *. lengths.(a)) +. caps.(a) else 0.0
    in
    g.(a) <- wire.r_w *. (direct +. (wire.c_w *. shared))
  done;
  g

let skew tree wire loads lengths =
  let ds = sink_delays tree wire loads lengths in
  let lo = ref ds.(0) and hi = ref ds.(0) in
  Array.iter
    (fun v ->
      if v < !lo then lo := v;
      if v > !hi then hi := v)
    ds;
  !hi -. !lo
