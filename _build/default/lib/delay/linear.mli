(** Linear delay model: the delay of a sink is the total wire length from
    the source to the sink (Equation 1). *)

val node_delays : Lubt_topo.Tree.t -> float array -> float array
(** Per-node delay; indexed by node id. [lengths] is indexed by edge id. *)

val sink_delays : Lubt_topo.Tree.t -> float array -> float array
(** Delay of each sink, in [Tree.sinks] order. *)

val skew : Lubt_topo.Tree.t -> float array -> float
(** Difference between the largest and smallest sink delay. *)

val min_max_delay : Lubt_topo.Tree.t -> float array -> float * float
(** Shortest and longest source-to-sink delay. *)
