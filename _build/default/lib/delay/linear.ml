module Tree = Lubt_topo.Tree

let node_delays tree lengths = Tree.delays tree lengths

let sink_delays tree lengths =
  let d = node_delays tree lengths in
  Array.map (fun s -> d.(s)) (Tree.sinks tree)

let min_max_delay tree lengths =
  let ds = sink_delays tree lengths in
  let lo = ref ds.(0) and hi = ref ds.(0) in
  Array.iter
    (fun v ->
      if v < !lo then lo := v;
      if v > !hi then hi := v)
    ds;
  (!lo, !hi)

let skew tree lengths =
  let lo, hi = min_max_delay tree lengths in
  hi -. lo
