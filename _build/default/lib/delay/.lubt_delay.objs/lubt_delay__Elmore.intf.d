lib/delay/elmore.mli: Lubt_topo
