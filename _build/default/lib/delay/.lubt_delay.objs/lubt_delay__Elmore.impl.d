lib/delay/elmore.ml: Array List Lubt_topo
