lib/delay/linear.ml: Array Lubt_topo
