lib/delay/linear.mli: Lubt_topo
