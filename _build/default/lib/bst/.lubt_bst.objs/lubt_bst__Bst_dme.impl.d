lib/bst/bst_dme.ml: Array List Lubt_core Lubt_geom Lubt_topo Option Steiner
