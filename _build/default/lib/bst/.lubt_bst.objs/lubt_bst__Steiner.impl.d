lib/bst/steiner.ml: Array Hashtbl List Lubt_geom Lubt_topo Topology_of_graph
