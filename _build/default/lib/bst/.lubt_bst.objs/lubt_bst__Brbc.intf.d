lib/bst/brbc.mli: Lubt_core Lubt_geom Lubt_topo
