lib/bst/topology_of_graph.ml: Array Hashtbl List Lubt_geom Lubt_topo Lubt_util Queue
