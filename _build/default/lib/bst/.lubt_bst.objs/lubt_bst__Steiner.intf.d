lib/bst/steiner.mli: Lubt_geom Lubt_topo
