lib/bst/brbc.ml: Array List Lubt_core Lubt_geom Lubt_topo Steiner Topology_of_graph
