lib/bst/topology_of_graph.mli: Lubt_geom Lubt_topo
