lib/bst/bst_dme.mli: Lubt_core Lubt_geom Lubt_topo
