(** Conversion of an undirected geometric tree (a graph over concrete
    points) into the rooted, binary, sinks-are-leaves topology the EBF
    expects.

    Convention: graph nodes [0 .. num_sinks-1] are the sinks; any other
    node is structural (source or Steiner point). Internal sinks are split
    off behind a fresh parent at the same location; nodes with more than
    two children are binarised through forced-zero chain nodes. *)

type converted = {
  tree : Lubt_topo.Tree.t;
  positions : Lubt_geom.Point.t array;  (** per tree node *)
  lengths : float array;  (** per edge: the distance it spans *)
  cost : float;
}

val convert :
  positions:Lubt_geom.Point.t array ->
  adjacency:int list array ->
  root:int ->
  num_sinks:int ->
  converted
(** [root] must not be a sink. The adjacency must describe a tree
    (connected, acyclic); every node reachable from [root] is kept.
    @raise Invalid_argument on malformed input. *)
