(** Bounded-skew clock routing baseline in the style of Huang, Kahng and
    Tsao ("On the Bounded-Skew Clock and Steiner Routing Problems", DAC'95,
    reference [9] of the paper).

    The paper adopts its topology generator from [9]: clusters are merged
    nearest-neighbour first, with merge costs that account for the wire
    elongation needed to keep the skew within the bound, so the topology
    "changes dynamically based on the skew".

    Implementation: beam-search DME. Every cluster keeps a small beam of
    {e candidates} — a TRR of equivalent root placements together with the
    exact [min, max] sink delay below it and the wire spent so far. A
    merge tries several wire splits per candidate pair (the cheapest split
    the skew budget allows, the delay-balancing split, and the two pure
    "attach" moves with one zero-length wire); elongation is applied only
    when the budget's lower end forces it. The skew-feasible split
    interval comes from the tiny closed-form program

    {v
    minimise  w_a + w_b
    s.t.      w_a + w_b >= dist(region_a, region_b)
              (tmax_a + w_a) - (tmin_b + w_b) <= B
              (tmax_b + w_b) - (tmin_a + w_a) <= B
              w_a, w_b >= 0
    v}

    With [B = 0] only the balance split survives and the candidate regions
    are the classic zero-skew merging segments, so the router degenerates
    to exact ZST-DME under the linear delay model; with [B = infinity] the
    attach moves dominate and it behaves like a nearest-region Steiner
    heuristic. Unlike the LUBT LP, the merge order and the wire splits are
    greedy, so the result is a heuristic upper bound on cost — exactly the
    baseline role [9] plays in Tables 1-2. *)

type options = {
  beam_width : int;  (** candidates kept per cluster (default 8) *)
  estimation_candidates : int;
      (** beam prefix used when estimating merge costs during
          nearest-neighbour selection (default 3) *)
}

val default_options : options

type result = {
  routed : Lubt_core.Routed.t;
      (** embedded tree over an instance with trivial bounds [0, inf) *)
  topology : Lubt_topo.Tree.t;
  lengths : float array;
  cost : float;
  dmin : float;  (** shortest achieved source-to-sink delay *)
  dmax : float;  (** longest achieved source-to-sink delay *)
}

val route :
  ?options:options ->
  ?skew_bound:float ->
  ?source:Lubt_geom.Point.t ->
  Lubt_geom.Point.t array ->
  result
(** [route ?skew_bound ?source sinks] builds and embeds a bounded-skew tree
    over the sinks. [skew_bound] is absolute (wire-length units; default
    [infinity]). The achieved skew [dmax - dmin] never exceeds the bound
    (up to roundoff). Requires at least one sink (two when no source is
    given). *)

val extract_instance :
  result -> Lubt_core.Instance.t
(** The experimental protocol of Section 8: takes the baseline's achieved
    shortest/longest delays and packages them as the LUBT bounds
    [l = dmin, u = dmax] over the same sinks and source, ready to run
    {!Lubt_core.Ebf.solve} on [result.topology]. *)
