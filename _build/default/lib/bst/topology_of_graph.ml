module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree

type converted = {
  tree : Tree.t;
  positions : Point.t array;
  lengths : float array;
  cost : float;
}

let convert ~positions ~adjacency ~root ~num_sinks =
  let gcount = Array.length positions in
  if Array.length adjacency <> gcount then
    invalid_arg "Topology_of_graph: adjacency length mismatch";
  if root < 0 || root >= gcount then invalid_arg "Topology_of_graph: bad root";
  if root < num_sinks then invalid_arg "Topology_of_graph: root is a sink";
  let m = num_sinks in
  (* tree ids: root 0; sinks 1..m (graph sink i -> i+1); others appended *)
  let order = Array.make gcount (-1) in
  let next_id = ref (m + 1) in
  let tree_id gi =
    if order.(gi) >= 0 then order.(gi)
    else begin
      let id =
        if gi = root then 0
        else if gi < m then gi + 1
        else begin
          let id = !next_id in
          incr next_id;
          id
        end
      in
      order.(gi) <- id;
      id
    end
  in
  ignore (tree_id root);
  let parents = ref [] in
  let pos_tbl = Hashtbl.create 64 in
  Hashtbl.replace pos_tbl 0 positions.(root);
  let queue = Queue.create () in
  let seen = Array.make gcount false in
  seen.(root) <- true;
  Queue.add root queue;
  let splits = ref [] in
  while not (Queue.is_empty queue) do
    let gi = Queue.pop queue in
    let children = List.filter (fun c -> not seen.(c)) adjacency.(gi) in
    let is_sink = gi < m in
    let parent_tid =
      if is_sink && children <> [] then begin
        (* internal sink: its structural role moves to a fresh split node *)
        let split = !next_id in
        incr next_id;
        Hashtbl.replace pos_tbl split positions.(gi);
        splits := (tree_id gi, split) :: !splits;
        split
      end
      else tree_id gi
    in
    List.iter
      (fun c ->
        seen.(c) <- true;
        let ct = tree_id c in
        Hashtbl.replace pos_tbl ct positions.(c);
        parents := (ct, parent_tid) :: !parents;
        Queue.add c queue)
      children
  done;
  (* wire each split node in place of its sink *)
  let parent_of = Hashtbl.create 64 in
  List.iter (fun (c, p) -> Hashtbl.replace parent_of c p) !parents;
  List.iter
    (fun (sink_tid, split_tid) ->
      (match Hashtbl.find_opt parent_of sink_tid with
      | Some p -> Hashtbl.replace parent_of split_tid p
      | None -> invalid_arg "Topology_of_graph: internal sink at root");
      Hashtbl.replace parent_of sink_tid split_tid)
    !splits;
  let total = !next_id in
  let parr = Array.make total (-1) in
  Hashtbl.iter (fun c p -> parr.(c) <- p) parent_of;
  let positions_arr = Array.make total (Point.make 0.0 0.0) in
  Hashtbl.iter (fun id p -> positions_arr.(id) <- p) pos_tbl;
  (* binarise nodes with > 2 children through zero-edge chain nodes at the
     same location *)
  let children = Array.make total [] in
  for c = 0 to total - 1 do
    let p = parr.(c) in
    if p >= 0 then children.(p) <- c :: children.(p)
  done;
  let extra = ref [] in
  (* (id, parent, position, forced_zero) *)
  let next_extra = ref total in
  let fresh p pos =
    let id = !next_extra in
    incr next_extra;
    extra := (id, p, pos, true) :: !extra;
    id
  in
  let reparent = Hashtbl.create 16 in
  for v = 0 to total - 1 do
    let cs = children.(v) in
    if List.length cs > 2 then begin
      let rec chain host = function
        | [] -> ()
        | [ c ] -> Hashtbl.replace reparent c host
        | [ c; d ] ->
          Hashtbl.replace reparent c host;
          Hashtbl.replace reparent d host
        | c :: rest ->
          Hashtbl.replace reparent c host;
          let nxt = fresh host positions_arr.(v) in
          chain nxt rest
      in
      match cs with
      | _first :: rest ->
        let aux = fresh v positions_arr.(v) in
        chain aux rest
      | [] -> ()
    end
  done;
  let grand_total = !next_extra in
  let final_parents = Array.make grand_total (-1) in
  Array.blit parr 0 final_parents 0 total;
  let final_positions = Array.make grand_total (Point.make 0.0 0.0) in
  Array.blit positions_arr 0 final_positions 0 total;
  let zero = Array.make grand_total false in
  List.iter
    (fun (id, p, pos, z) ->
      final_parents.(id) <- p;
      final_positions.(id) <- pos;
      zero.(id) <- z)
    !extra;
  Hashtbl.iter (fun c host -> final_parents.(c) <- host) reparent;
  let sink_ids = Array.init m (fun i -> i + 1) in
  let tree =
    Tree.create ~forced_zero:zero ~parents:final_parents ~sinks:sink_ids ()
  in
  let lengths = Array.make grand_total 0.0 in
  for v = 1 to grand_total - 1 do
    lengths.(v) <-
      Point.dist final_positions.(v) final_positions.(final_parents.(v))
  done;
  {
    tree;
    positions = final_positions;
    lengths;
    cost = Lubt_util.Stats.sum (Array.sub lengths 1 (grand_total - 1));
  }
