(** Rectilinear Steiner tree heuristic (in the spirit of Borah, Owens and
    Irwin's edge-based heuristic — the paper's reference [6]).

    Construction: Prim rectilinear MST, then repeated greedy
    "steinerisation" passes — for a vertex [a] with neighbours [b] and
    [v], replacing edges (a,b) and (a,v) by a median-point Steiner node
    connected to all three saves [dist(v,a) + dist(b,a) - dist(a,p) -
    dist(b,p) - dist(v,p) >= 0] wire. Typically lands a few percent above
    the optimal RSMT, far below the MST.

    The result is exported as a rooted, binary topology whose sinks are
    all leaves (internal sinks are split off with a private parent at the
    same location), ready for the EBF, together with the concrete
    embedding. The [9]-style baseline uses this as its infinite-skew-bound
    mode. *)

type built = {
  tree : Lubt_topo.Tree.t;
  positions : Lubt_geom.Point.t array;  (** per node of [tree] *)
  lengths : float array;  (** per edge; distance spanned by the edge *)
  cost : float;
}

val rmst : Lubt_geom.Point.t array -> (int * int) list
(** Rectilinear minimum spanning tree over the points (Prim, O(n^2));
    edges as index pairs. At least one point required. *)

val rmst_length : Lubt_geom.Point.t array -> float

val build : ?source:Lubt_geom.Point.t -> Lubt_geom.Point.t array -> built
(** Steiner tree over the sinks (and the source, when given, which
    becomes the root; otherwise an arbitrary Steiner node is the root).
    Requires at least one sink (two when no source is given). *)
