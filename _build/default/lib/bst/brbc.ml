module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed

type result = {
  routed : Routed.t;
  topology : Tree.t;
  lengths : float array;
  cost : float;
  max_path : float;
  radius : float;
}

(* Euler tour of the MST from the root: list of (vertex, edge length just
   walked). The classic BRBC construction adds a source shortcut whenever
   the tour wire since the last shortcut exceeds epsilon * radius, then
   takes the shortest path tree of (MST + shortcuts). *)
let route ?(epsilon = 1.0) ~source sinks =
  let m = Array.length sinks in
  if m = 0 then invalid_arg "Brbc.route: no sinks";
  if epsilon <= 0.0 then invalid_arg "Brbc.route: epsilon must be positive";
  (* graph points: sinks 0..m-1, source at index m (the converter wants
     non-sink ids at the top) *)
  let points = Array.append sinks [| source |] in
  let src = m in
  let n = m + 1 in
  let radius = Array.fold_left (fun acc p -> max acc (Point.dist source p)) 0.0 sinks in
  let mst = Steiner.rmst points in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    mst;
  (* depth-first Euler walk accumulating tour length; collect shortcuts *)
  let shortcuts = ref [] in
  let budget = epsilon *. radius in
  let running = ref 0.0 in
  let seen = Array.make n false in
  let rec walk v =
    seen.(v) <- true;
    List.iter
      (fun c ->
        if not seen.(c) then begin
          let len = Point.dist points.(v) points.(c) in
          running := !running +. len;
          if !running > budget && c <> src then begin
            shortcuts := c :: !shortcuts;
            running := 0.0
          end;
          walk c;
          running := !running +. len
        end)
      adj.(v)
  in
  walk src;
  (* graph H = MST + shortcuts; Dijkstra (dense O(n^2)) from the source *)
  let hadj = Array.copy adj in
  List.iter
    (fun v ->
      if not (List.mem v hadj.(src)) then begin
        hadj.(src) <- v :: hadj.(src);
        hadj.(v) <- src :: hadj.(v)
      end)
    !shortcuts;
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let final = Array.make n false in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not final.(v)) && (!u < 0 || dist.(v) < dist.(!u)) then u := v
    done;
    let u = !u in
    if dist.(u) < infinity then begin
      final.(u) <- true;
      List.iter
        (fun v ->
          let nd = dist.(u) +. Point.dist points.(u) points.(v) in
          if nd < dist.(v) -. 1e-12 then begin
            dist.(v) <- nd;
            parent.(v) <- u
          end)
        hadj.(u)
    end
  done;
  (* shortest path tree as adjacency *)
  let tadj = Array.make n [] in
  for v = 0 to n - 1 do
    let p = parent.(v) in
    if p >= 0 then begin
      tadj.(p) <- v :: tadj.(p);
      tadj.(v) <- p :: tadj.(v)
    end
  done;
  let conv =
    Topology_of_graph.convert ~positions:points ~adjacency:tadj ~root:src
      ~num_sinks:m
  in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let routed =
    {
      Routed.instance = inst;
      tree = conv.Topology_of_graph.tree;
      lengths = conv.Topology_of_graph.lengths;
      positions = conv.Topology_of_graph.positions;
    }
  in
  let _, max_path = Routed.min_max_delay routed in
  {
    routed;
    topology = conv.Topology_of_graph.tree;
    lengths = conv.Topology_of_graph.lengths;
    cost = Routed.cost routed;
    max_path;
    radius;
  }
