module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree

type built = {
  tree : Tree.t;
  positions : Point.t array;
  lengths : float array;
  cost : float;
}

(* ------------------------------------------------------------------ *)
(* Prim rectilinear MST                                                 *)
(* ------------------------------------------------------------------ *)

let rmst points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Steiner.rmst: no points";
  if n = 1 then []
  else begin
    let in_tree = Array.make n false in
    let best_dist = Array.make n infinity in
    let best_link = Array.make n (-1) in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      best_dist.(j) <- Point.dist points.(0) points.(j);
      best_link.(j) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to n - 1 do
      (* cheapest fringe vertex *)
      let pick = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!pick < 0 || best_dist.(j) < best_dist.(!pick))
        then pick := j
      done;
      let v = !pick in
      in_tree.(v) <- true;
      edges := (best_link.(v), v) :: !edges;
      for j = 0 to n - 1 do
        if not in_tree.(j) then begin
          let d = Point.dist points.(v) points.(j) in
          if d < best_dist.(j) then begin
            best_dist.(j) <- d;
            best_link.(j) <- v
          end
        end
      done
    done;
    !edges
  end

let rmst_length points =
  List.fold_left
    (fun acc (a, b) -> acc +. Point.dist points.(a) points.(b))
    0.0 (rmst points)

(* ------------------------------------------------------------------ *)
(* Greedy steinerisation                                                *)
(* ------------------------------------------------------------------ *)

let median3 a b c =
  (* middle of three values *)
  max (min a b) (min (max a b) c)

let median_point (a : Point.t) (b : Point.t) (c : Point.t) =
  Point.make (median3 a.Point.x b.Point.x c.Point.x)
    (median3 a.Point.y b.Point.y c.Point.y)

(* adjacency as mutable int lists over a growing node set *)
type graph = {
  mutable pos : Point.t array;
  mutable adj : int list array;
  mutable count : int;
}

let graph_of points edges =
  let n = Array.length points in
  let cap = 2 * (n + 1) in
  let pos = Array.make cap (Point.make 0.0 0.0) in
  Array.blit points 0 pos 0 n;
  let adj = Array.make cap [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  { pos; adj; count = n }

let add_node g p =
  if g.count = Array.length g.pos then begin
    let cap = 2 * g.count in
    let pos = Array.make cap (Point.make 0.0 0.0) in
    Array.blit g.pos 0 pos 0 g.count;
    g.pos <- pos;
    let adj = Array.make cap [] in
    Array.blit g.adj 0 adj 0 g.count;
    g.adj <- adj
  end;
  let id = g.count in
  g.count <- g.count + 1;
  g.pos.(id) <- p;
  id

let unlink g a b =
  g.adj.(a) <- List.filter (fun x -> x <> b) g.adj.(a);
  g.adj.(b) <- List.filter (fun x -> x <> a) g.adj.(b)

let link g a b =
  g.adj.(a) <- b :: g.adj.(a);
  g.adj.(b) <- a :: g.adj.(b)

(* One pass: for every vertex [a] and unordered neighbour pair (b, v), the
   median-point move saves wire when the Steiner point is a genuine corner
   point. Moves are applied greedily best-first; a vertex whose
   neighbourhood already changed this pass is skipped (stale gains). *)
let steinerise_pass g =
  let moves = ref [] in
  for a = 0 to g.count - 1 do
    let rec pairs = function
      | [] -> ()
      | b :: rest ->
        List.iter
          (fun v ->
            let p = median_point g.pos.(a) g.pos.(b) g.pos.(v) in
            let old_cost = Point.dist g.pos.(a) g.pos.(b) +. Point.dist g.pos.(a) g.pos.(v) in
            let new_cost =
              Point.dist g.pos.(a) p +. Point.dist g.pos.(b) p
              +. Point.dist g.pos.(v) p
            in
            let gain = old_cost -. new_cost in
            if gain > 1e-9 then moves := (gain, a, b, v) :: !moves)
          rest;
        pairs rest
    in
    pairs g.adj.(a)
  done;
  let sorted = List.sort (fun (g1, _, _, _) (g2, _, _, _) -> compare g2 g1) !moves in
  let dirty = Hashtbl.create 16 in
  let applied = ref 0 in
  List.iter
    (fun (_, a, b, v) ->
      if
        (not (Hashtbl.mem dirty a))
        && (not (Hashtbl.mem dirty b))
        && not (Hashtbl.mem dirty v)
      then begin
        let p = median_point g.pos.(a) g.pos.(b) g.pos.(v) in
        let s = add_node g p in
        unlink g a b;
        unlink g a v;
        link g a s;
        link g b s;
        link g v s;
        Hashtbl.replace dirty a ();
        Hashtbl.replace dirty b ();
        Hashtbl.replace dirty v ();
        Hashtbl.replace dirty s ();
        incr applied
      end)
    sorted;
  !applied > 0

(* ------------------------------------------------------------------ *)
(* Export as a rooted, binary, sinks-are-leaves topology                *)
(* ------------------------------------------------------------------ *)

let build ?source sinks =
  let m = Array.length sinks in
  if m = 0 then invalid_arg "Steiner.build: no sinks";
  if m = 1 && source = None then invalid_arg "Steiner.build: need >= 2 points";
  (* point set: sinks 0..m-1, optional source at index m *)
  let points =
    match source with
    | Some src -> Array.append sinks [| src |]
    | None -> sinks
  in
  let g = graph_of points (rmst points) in
  let continue = ref true in
  let guard = ref 0 in
  while !continue && !guard < 50 do
    incr guard;
    continue := steinerise_pass g
  done;
  (* choose the graph root: the source when given, else a non-sink node
     (create a degree-splitting node on some edge when none exists) *)
  let root_g =
    match source with
    | Some _ -> m
    | None ->
      if g.count > m then m  (* first steiner node *)
      else begin
        (* all nodes are sinks (e.g. collinear MST): split an edge *)
        match g.adj.(0) with
        | b :: _ ->
          let s = add_node g g.pos.(0) in
          unlink g 0 b;
          link g 0 s;
          link g s b;
          s
        | [] -> invalid_arg "Steiner.build: disconnected"
      end
  in
  let conv =
    Topology_of_graph.convert
      ~positions:(Array.sub g.pos 0 g.count)
      ~adjacency:(Array.sub g.adj 0 g.count)
      ~root:root_g ~num_sinks:m
  in
  {
    tree = conv.Topology_of_graph.tree;
    positions = conv.Topology_of_graph.positions;
    lengths = conv.Topology_of_graph.lengths;
    cost = conv.Topology_of_graph.cost;
  }
