(** Bounded-Radius, Bounded-Cost spanning trees (Cong, Kahng, Robins et
    al., "Provably Good Performance-Driven Global Routing" — the paper's
    reference [1]).

    The classic global-routing baseline that the upper-bound-only LUBT
    case ([l_i = 0, u_i < inf], Section 4.3) generalises: starting from
    the rectilinear MST, walk its Eulerian tour and, whenever the
    accumulated tour wire since the last "refresh" exceeds
    [epsilon * radius], graft a direct shortest connection from the
    source, guaranteeing

    - radius: every source-sink path length is at most
      [(1 + epsilon) * radius], and
    - cost: total wire at most [(1 + 2/epsilon) * mst_cost].

    Small [epsilon] trades wire for shorter paths; [epsilon = infinity]
    is the plain MST. *)

type result = {
  routed : Lubt_core.Routed.t;
  topology : Lubt_topo.Tree.t;
  lengths : float array;
  cost : float;
  max_path : float;  (** longest source-to-sink path length *)
  radius : float;  (** max direct source-sink distance *)
}

val route :
  ?epsilon:float -> source:Lubt_geom.Point.t -> Lubt_geom.Point.t array -> result
(** [route ~epsilon ~source sinks] builds a BRBC tree (default
    [epsilon = 1.0]). Requires at least one sink. The topology has every
    sink as a leaf and is binary (ready for the EBF). *)
