module Point = Lubt_geom.Point
module Trr = Lubt_geom.Trr
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed

type result = {
  routed : Routed.t;
  topology : Tree.t;
  lengths : float array;
  cost : float;
  dmin : float;
  dmax : float;
}

(* A candidate is one partially-committed embedding of a cluster's subtree:
   a TRR of equivalent placements for the cluster root, the exact min/max
   sink delay below any of those placements (wire lengths are committed at
   merge time and elongation makes them exact from every region point), the
   wire spent so far, and backpointers for reconstruction. The spread
   tmax - tmin never exceeds the skew bound.

   With bound = 0 the only feasible wire split is the balance split and the
   regions are the classic zero-skew merging segments, so the router is
   exact ZST-DME; with a loose bound the beam also carries "attach" moves
   (one wire of length 0), which act like a nearest-region Steiner
   heuristic — the behaviour of [9]'s fat merging regions. *)
type candidate = {
  reg : Trr.t;
  tmin : float;
  tmax : float;
  cost : float;
  come_from : parentage;
}

and parentage =
  | Leaf
  | Join of {
      left : candidate;
      right : candidate;
      w_left : float;
      w_right : float;
    }

type options = {
  beam_width : int;
  estimation_candidates : int;  (* beam prefix used for merge-cost estimates *)
}

let default_options = { beam_width = 8; estimation_candidates = 3 }

let intersect_padded ra wa rb wb =
  match Trr.intersect (Trr.expand ra wa) (Trr.expand rb wb) with
  | Some r -> Some r
  | None -> (
    let pad = 1e-9 *. (1.0 +. wa +. wb) in
    Trr.intersect (Trr.expand ra (wa +. pad)) (Trr.expand rb (wb +. pad)))

(* Wire splits to try for joining candidates [ca], [cb] whose regions are
   [d] apart. x = w_a - w_b must stay within the skew-feasibility interval
   [xlo, xhi]; total wire is max(d, |x|). Besides the cheapest and the
   delay-balancing splits we try the two pure attach moves (w = 0 on one
   side), which cost nothing extra when the budget allows them and leave
   the join region equal to one child's whole region. *)
let wire_splits ~bound ca cb d =
  let xlo = if bound = infinity then neg_infinity else cb.tmax -. ca.tmin -. bound in
  let xhi = if bound = infinity then infinity else bound +. cb.tmin -. ca.tmax in
  if xlo > xhi +. 1e-9 then []
  else begin
    let clamp v = if v < xlo then xlo else if v > xhi then xhi else v in
    let of_x x =
      let s = max d (abs_float x) in
      ((s +. x) /. 2.0, (s -. x) /. 2.0)
    in
    let splits = ref [] in
    let add w = splits := w :: !splits in
    add (of_x (clamp 0.0));
    add (of_x (clamp (cb.tmax -. ca.tmax)));
    (* attach at a: w_a = 0, w_b >= d with -w_b feasible *)
    let wb_attach = max d (-.xhi) in
    if -.wb_attach >= xlo -. 1e-12 then add (0.0, wb_attach);
    let wa_attach = max d xlo in
    if wa_attach <= xhi +. 1e-12 then add (wa_attach, 0.0);
    !splits
  end

let join ~bound ca cb =
  let d = Trr.distance ca.reg cb.reg in
  List.filter_map
    (fun (w_left, w_right) ->
      match intersect_padded ca.reg w_left cb.reg w_right with
      | None -> None
      | Some reg ->
        Some
          {
            reg;
            tmin = min (ca.tmin +. w_left) (cb.tmin +. w_right);
            tmax = max (ca.tmax +. w_left) (cb.tmax +. w_right);
            cost = ca.cost +. cb.cost +. w_left +. w_right;
            come_from = Join { left = ca; right = cb; w_left; w_right };
          })
    (wire_splits ~bound ca cb d)

type cluster = { cands : candidate array }  (* sorted by cost *)

let leaf_cluster p =
  {
    cands =
      [| { reg = Trr.of_point p; tmin = 0.0; tmax = 0.0; cost = 0.0; come_from = Leaf } |];
  }

(* Beam selection: the two cheapest candidates always survive; remaining
   slots prefer geometric spread (distinct region centres give later merges
   genuine attachment choices). *)
let select_beam ~beam_width pool =
  let sorted = List.sort (fun c1 c2 -> compare c1.cost c2.cost) pool in
  let spread =
    match sorted with
    | [] -> 0.0
    | first :: rest ->
      let c0 = Trr.center first.reg in
      List.fold_left
        (fun acc c -> max acc (Point.dist c0 (Trr.center c.reg)))
        0.0 rest
  in
  let min_gap = spread /. float_of_int (2 * beam_width) in
  let cheapest = match sorted with a :: b :: _ -> [ a; b ] | _ -> sorted in
  let keep gap acc c =
    if List.length acc >= beam_width then acc
    else if
      List.exists
        (fun kept ->
          Point.dist (Trr.center kept.reg) (Trr.center c.reg) <= gap
          && abs_float (kept.tmax -. c.tmax) <= 1e-9 +. (gap /. 2.0))
        acc
    then acc
    else acc @ [ c ]
  in
  let kept = List.fold_left (keep min_gap) cheapest sorted in
  let kept =
    if List.length kept >= beam_width then kept
    else List.fold_left (keep 1e-9) kept sorted
  in
  let arr = Array.of_list kept in
  Array.sort (fun c1 c2 -> compare c1.cost c2.cost) arr;
  arr

let merge_clusters ~opts ~bound a b =
  let pool = ref [] in
  Array.iter
    (fun ca -> Array.iter (fun cb -> pool := join ~bound ca cb @ !pool) b.cands)
    a.cands;
  match select_beam ~beam_width:opts.beam_width !pool with
  | [||] -> None
  | cands -> Some { cands }

(* Cheapest incremental wire of a merge, estimated on a beam prefix (used
   by the nearest-neighbour topology selection, where it is evaluated
   O(m^2) times). *)
let merge_cost ~opts ~bound a b =
  let best = ref infinity in
  let na = min opts.estimation_candidates (Array.length a.cands) in
  let nb = min opts.estimation_candidates (Array.length b.cands) in
  for i = 0 to na - 1 do
    for j = 0 to nb - 1 do
      let ca = a.cands.(i) and cb = b.cands.(j) in
      let d = Trr.distance ca.reg cb.reg in
      List.iter
        (fun (wl, wr) ->
          let inc = wl +. wr +. (ca.cost -. a.cands.(0).cost) +. (cb.cost -. b.cands.(0).cost) in
          if inc < !best then best := inc)
        (wire_splits ~bound ca cb d)
    done
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Main driver                                                         *)
(* ------------------------------------------------------------------ *)

(* Unbounded skew degenerates to rectilinear Steiner routing, for which the
   dedicated edge-based heuristic (reference [6] of the paper) beats the
   merge-based construction — exactly as [9] switches modes. *)
let route_unbounded ?source sinks =
  let b = Steiner.build ?source sinks in
  let inst = Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity () in
  let routed =
    {
      Routed.instance = inst;
      tree = b.Steiner.tree;
      lengths = b.Steiner.lengths;
      positions = b.Steiner.positions;
    }
  in
  let dmin, dmax = Routed.min_max_delay routed in
  {
    routed;
    topology = b.Steiner.tree;
    lengths = b.Steiner.lengths;
    cost = Routed.cost routed;
    dmin;
    dmax;
  }

let route ?(options = default_options) ?(skew_bound = infinity) ?source sinks =
  let opts = options in
  let m = Array.length sinks in
  if m = 0 then invalid_arg "Bst_dme.route: no sinks";
  if m = 1 && source = None then
    invalid_arg "Bst_dme.route: a single sink needs a source";
  if skew_bound = infinity then route_unbounded ?source sinks
  else begin
  let bound = max 0.0 skew_bound in
  let total_temp = (2 * m) - 1 in
  let clusters = Array.make total_temp (leaf_cluster (Point.make 0.0 0.0)) in
  for i = 0 to m - 1 do
    clusters.(i) <- leaf_cluster sinks.(i)
  done;
  let kids = Array.make total_temp None in
  let alive = Array.make total_temp false in
  for i = 0 to m - 1 do
    alive.(i) <- true
  done;
  let next = ref m in
  (* nearest-partner cache with lazy invalidation *)
  let best = Array.make total_temp (infinity, -1) in
  let recompute i =
    let bc = ref infinity and bp = ref (-1) in
    for j = 0 to !next - 1 do
      if j <> i && alive.(j) then begin
        let c = merge_cost ~opts ~bound clusters.(i) clusters.(j) in
        if c < !bc then begin
          bc := c;
          bp := j
        end
      end
    done;
    best.(i) <- (!bc, !bp)
  in
  for i = 0 to m - 1 do
    if m > 1 then recompute i
  done;
  let remaining = ref m in
  while !remaining > 1 do
    let bi = ref (-1) and bc = ref infinity in
    for i = 0 to !next - 1 do
      if alive.(i) then begin
        let _, p = best.(i) in
        if p < 0 || not alive.(p) then recompute i;
        let c, _ = best.(i) in
        if c < !bc then begin
          bc := c;
          bi := i
        end
      end
    done;
    let a = !bi in
    let _, b = best.(a) in
    assert (a >= 0 && b >= 0 && alive.(a) && alive.(b));
    let merged =
      match merge_clusters ~opts ~bound clusters.(a) clusters.(b) with
      | Some c -> c
      | None -> assert false (* invariant: children spreads within bound *)
    in
    let id = !next in
    incr next;
    clusters.(id) <- merged;
    kids.(id) <- Some (a, b);
    alive.(a) <- false;
    alive.(b) <- false;
    alive.(id) <- true;
    remaining := !remaining - 1;
    if !remaining > 1 then recompute id
  done;
  let top = !next - 1 in
  (* renumber: sinks 0..m-1 -> 1..m; merge j -> j+1; without a source the
     top merge (always the last temp id) becomes the root *)
  let with_source = source <> None in
  let n = if with_source then total_temp + 1 else total_temp in
  let remap t = if (not with_source) && t = top then 0 else t + 1 in
  let parents = Array.make n (-1) in
  for j = m to !next - 1 do
    match kids.(j) with
    | None -> ()
    | Some (a, b) ->
      parents.(remap a) <- remap j;
      parents.(remap b) <- remap j
  done;
  (match source with Some _ -> parents.(remap top) <- 0 | None -> ());
  let sink_ids = Array.init m (fun i -> i + 1) in
  let topology = Tree.create ~parents ~sinks:sink_ids () in
  (* pick the root candidate (cheapest total wire including the source
     trunk, if any) *)
  let root_cand =
    match source with
    | None -> clusters.(top).cands.(0)
    | Some src ->
      Array.fold_left
        (fun acc c ->
          let total = c.cost +. Trr.dist_to_point c.reg src in
          match acc with
          | Some (bt, _) when bt <= total -> acc
          | _ -> Some (total, c))
        None clusters.(top).cands
      |> Option.get |> snd
  in
  let lengths = Array.make n 0.0 in
  let positions = Array.make n (Point.make 0.0 0.0) in
  (* top-down: realise each candidate region at the point nearest its
     placed parent (the committed wire length absorbs any slack) *)
  let rec unwind temp_id (cand : candidate) here =
    positions.(remap temp_id) <- here;
    match (kids.(temp_id), cand.come_from) with
    | None, Leaf -> ()
    | Some (a, b), Join { left; right; w_left; w_right } ->
      lengths.(remap a) <- w_left;
      lengths.(remap b) <- w_right;
      unwind a left (Trr.closest_point left.reg here);
      unwind b right (Trr.closest_point right.reg here)
    | Some _, Leaf | None, Join _ ->
      invalid_arg "Bst_dme: inconsistent candidate chain"
  in
  let root_here =
    match source with
    | Some src -> Trr.closest_point root_cand.reg src
    | None -> Trr.center root_cand.reg
  in
  unwind top root_cand root_here;
  (match source with
  | Some src ->
    positions.(0) <- src;
    lengths.(remap top) <- Point.dist src root_here
  | None -> ());
  let inst = Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity () in
  let routed = { Routed.instance = inst; tree = topology; lengths; positions } in
  let dmin, dmax = Routed.min_max_delay routed in
  let merged = { routed; topology; lengths; cost = Routed.cost routed; dmin; dmax } in
  (* a plain Steiner tree may happen to satisfy a generous finite bound
     and cost much less than any merge-based construction; [9]'s fat
     merging regions have the same effect for large bounds *)
  let steiner = route_unbounded ?source sinks in
  if steiner.dmax -. steiner.dmin <= bound && steiner.cost < merged.cost then
    steiner
  else merged
  end

let extract_instance r =
  let inst = r.routed.Routed.instance in
  let m = Instance.num_sinks inst in
  (* widen by a relative epsilon: region padding during the merge phase can
     make the measured delays undershoot the exact radius by a few 1e-9s,
     and the baseline's own solution must stay LP-feasible *)
  let eps = 1e-9 *. (1.0 +. r.dmax) in
  Instance.create ?source:inst.Instance.source ~sinks:inst.Instance.sinks
    ~lower:(Array.make m (max 0.0 (r.dmin -. eps)))
    ~upper:(Array.make m (r.dmax +. eps))
    ()
