module Prng = Lubt_util.Prng

(* Builds the parent array for a merge forest: start from the sink leaves
   and repeatedly merge two roots under a fresh Steiner node, chosen either
   randomly or by a deterministic pairing. *)
let build ~num_sinks ~source_edge ~pick =
  if num_sinks < 1 then invalid_arg "Topogen: need at least one sink";
  if num_sinks = 1 && not source_edge then
    invalid_arg "Topogen: a single sink needs a source edge";
  let total =
    (* root + sinks + (num_sinks - 1) merge nodes; without a source edge the
       top merge node is the root itself *)
    if source_edge then 1 + num_sinks + (num_sinks - 1)
    else num_sinks + num_sinks - 1
  in
  let parents = Array.make total (-1) in
  let sinks = Array.init num_sinks (fun k -> k + 1) in
  let roots = ref (Array.to_list sinks) in
  let next = ref (num_sinks + 1) in
  let remove_nth lst n =
    let rec go acc i = function
      | [] -> invalid_arg "remove_nth"
      | x :: rest ->
        if i = n then (x, List.rev_append acc rest) else go (x :: acc) (i + 1) rest
    in
    go [] 0 lst
  in
  while List.length !roots > 1 do
    let count = List.length !roots in
    let ia = pick count in
    let a, rest = remove_nth !roots ia in
    let ib = pick (count - 1) in
    let b, rest = remove_nth rest ib in
    let merged =
      if (not source_edge) && count = 2 then 0  (* top merge node is the root *)
      else begin
        let id = !next in
        incr next;
        id
      end
    in
    parents.(a) <- merged;
    parents.(b) <- merged;
    (* append at the back: with the deterministic front pick this queue
       discipline produces a balanced tree *)
    roots := rest @ [ merged ]
  done;
  (match !roots with
  | [ r ] when r <> 0 -> parents.(r) <- 0
  | [ _ ] -> ()
  | _ -> assert false);
  Tree.create ~parents ~sinks ()

let random_binary rng ~num_sinks ~source_edge =
  build ~num_sinks ~source_edge ~pick:(fun n -> Prng.int rng n)

let balanced_binary ~num_sinks ~source_edge =
  (* always merge the two oldest roots: a queue discipline yields a
     balanced tree *)
  build ~num_sinks ~source_edge ~pick:(fun _ -> 0)
