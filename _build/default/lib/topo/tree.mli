(** Rooted tree topologies (Section 2 of the paper).

    Node 0 is the root (the source [s_0]). Every other node [i] owns the
    edge [e_i] that connects it to its parent, so "edge i" and "node i" are
    used interchangeably, exactly as in the paper. Sinks are a designated
    subset of nodes (usually the leaves); the remaining non-root nodes are
    Steiner points.

    Edges marked [forced_zero] have their length fixed to 0 in the EBF;
    they come from splitting degree-4 Steiner points (Figure 2). *)

type t

val create : ?forced_zero:bool array -> parents:int array -> sinks:int array -> unit -> t
(** [create ~parents ~sinks ()] builds a topology. [parents.(0)] must be
    [-1]; every other entry must point to an existing node so that the
    structure is a tree rooted at node 0. [sinks] lists the node ids that
    are sinks (they must be distinct, nonzero). [forced_zero.(i)] fixes
    edge [i] to length zero (defaults to all-false).

    @raise Invalid_argument if the parent array is not a rooted tree or the
    sink set is malformed. *)

val num_nodes : t -> int

val num_edges : t -> int
(** [num_nodes t - 1]: every non-root node owns one edge. *)

val num_sinks : t -> int

val root : int
(** Always 0. *)

val parent : t -> int -> int
(** Parent node id; [-1] for the root. *)

val children : t -> int -> int list

val degree : t -> int -> int
(** Number of incident edges (children + parent edge). *)

val is_sink : t -> int -> bool

val is_leaf : t -> int -> bool

val sinks : t -> int array
(** Sink node ids, in the order given at creation. *)

val sink_index : t -> int -> int
(** Position of a sink node in [sinks t]; raises [Not_found] otherwise. *)

val forced_zero : t -> int -> bool

val depth : t -> int -> int
(** Number of edges from the root. *)

val path_to_root : t -> int -> int list
(** Edge ids (= node ids) on the path from the root to the node, listed
    from the node upward. Empty for the root. *)

val path : t -> int -> int -> int list
(** Edge ids on the unique path between two nodes ([path(s_i, s_j)]). *)

val lca : t -> int -> int -> int
(** Lowest common ancestor, O(1) after O(n log n) preprocessing. *)

val path_length : t -> float array -> int -> int -> float
(** [path_length t lengths i j] is [sum of lengths over path t i j],
    computed in O(1) via the LCA (requires [lengths] indexed by edge id;
    entry 0 is ignored). *)

val delays : t -> float array -> float array
(** Per-node linear delay from the root: prefix sums of edge lengths. *)

val postorder : t -> int array
(** Children appear before their parents; the root is last. *)

val preorder : t -> int array
(** Parents appear before their children; the root is first. *)

val all_sinks_are_leaves : t -> bool
(** Lemma 3.1's hypothesis: when true, a LUBT exists for any bounds. *)

val binarise : t -> t
(** Splits every Steiner node with more than two children into a chain of
    degree-3 Steiner nodes joined by forced-zero edges (Figure 2
    generalised). Node ids [0 .. num_nodes-1] of the input keep their ids;
    new Steiner nodes are appended. Returns the input unchanged when it is
    already binary. *)

val pp : Format.formatter -> t -> unit
