type t = {
  parents : int array;
  children : int list array;
  sink_ids : int array;
  sink_pos : int array;  (* node -> index in sink_ids, or -1 *)
  zero : bool array;  (* per edge/node; entry 0 unused *)
  depths : int array;
  post : int array;
  pre : int array;
  (* Euler-tour LCA: first occurrence + sparse table of minima by depth *)
  euler : int array;
  first : int array;
  table : int array array;  (* table.(k).(i): argmin depth over 2^k window *)
  log2 : int array;
}

let root = 0

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build_children parents =
  let n = Array.length parents in
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    let p = parents.(i) in
    if p < 0 || p >= n || p = i then
      invalid_arg "Tree.create: bad parent pointer";
    children.(p) <- i :: children.(p)
  done;
  children

let validate parents =
  let n = Array.length parents in
  if n = 0 then invalid_arg "Tree.create: empty";
  if parents.(0) <> -1 then invalid_arg "Tree.create: node 0 must be the root";
  (* acyclicity + connectivity: every node must reach the root *)
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = in progress, 2 = done *)
  let rec walk i =
    if state.(i) = 1 then invalid_arg "Tree.create: cycle in parent array"
    else if state.(i) = 0 then begin
      state.(i) <- 1;
      if i <> 0 then walk parents.(i);
      state.(i) <- 2
    end
  in
  for i = 0 to n - 1 do
    walk i
  done

(* iterative DFS producing euler tour, first occurrences, depths, orders *)
let dfs parents children =
  let n = Array.length parents in
  let depths = Array.make n 0 in
  let first = Array.make n (-1) in
  let euler = ref [] and euler_len = ref 0 in
  let pre = Array.make n 0 and post = Array.make n 0 in
  let pre_i = ref 0 and post_i = ref 0 in
  let rec visit i =
    pre.(!pre_i) <- i;
    incr pre_i;
    first.(i) <- !euler_len;
    euler := i :: !euler;
    incr euler_len;
    List.iter
      (fun c ->
        depths.(c) <- depths.(i) + 1;
        visit c;
        euler := i :: !euler;
        incr euler_len)
      children.(i);
    post.(!post_i) <- i;
    incr post_i
  in
  visit 0;
  let euler_arr = Array.of_list (List.rev !euler) in
  (depths, first, euler_arr, pre, post)

let build_sparse_table depths euler =
  let len = Array.length euler in
  let log2 = Array.make (len + 1) 0 in
  for i = 2 to len do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = log2.(len) + 1 in
  let table = Array.make levels [||] in
  table.(0) <- Array.copy euler;
  for k = 1 to levels - 1 do
    let span = 1 lsl k in
    let prev = table.(k - 1) in
    let width = len - span + 1 in
    if width <= 0 then table.(k) <- [||]
    else begin
      let cur = Array.make width 0 in
      for i = 0 to width - 1 do
        let a = prev.(i) and b = prev.(i + (span / 2)) in
        cur.(i) <- (if depths.(a) <= depths.(b) then a else b)
      done;
      table.(k) <- cur
    end
  done;
  (table, log2)

let create ?forced_zero ~parents ~sinks () =
  validate parents;
  let n = Array.length parents in
  let children = build_children parents in
  let sink_pos = Array.make n (-1) in
  Array.iteri
    (fun k s ->
      if s <= 0 || s >= n then invalid_arg "Tree.create: bad sink id";
      if sink_pos.(s) >= 0 then invalid_arg "Tree.create: duplicate sink";
      sink_pos.(s) <- k)
    sinks;
  if Array.length sinks = 0 then invalid_arg "Tree.create: no sinks";
  let zero =
    match forced_zero with
    | None -> Array.make n false
    | Some z ->
      if Array.length z <> n then
        invalid_arg "Tree.create: forced_zero length mismatch";
      Array.copy z
  in
  let depths, first, euler, pre, post = dfs parents children in
  let table, log2 = build_sparse_table depths euler in
  {
    parents = Array.copy parents;
    children;
    sink_ids = Array.copy sinks;
    sink_pos;
    zero;
    depths;
    post;
    pre;
    euler;
    first;
    table;
    log2;
  }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let num_nodes t = Array.length t.parents

let num_edges t = num_nodes t - 1

let num_sinks t = Array.length t.sink_ids

let parent t i = t.parents.(i)

let children t i = t.children.(i)

let degree t i =
  List.length t.children.(i) + (if i = root then 0 else 1)

let is_sink t i = t.sink_pos.(i) >= 0

let is_leaf t i = t.children.(i) = []

let sinks t = Array.copy t.sink_ids

let sink_index t i =
  let k = t.sink_pos.(i) in
  if k < 0 then raise Not_found else k

let forced_zero t i = t.zero.(i)

let depth t i = t.depths.(i)

let path_to_root t i =
  let rec climb acc i = if i = root then List.rev acc else climb (i :: acc) t.parents.(i) in
  List.rev (climb [] i)

let lca t a b =
  if a = b then a
  else begin
    let fa = t.first.(a) and fb = t.first.(b) in
    let lo = min fa fb and hi = max fa fb in
    let len = hi - lo + 1 in
    let k = t.log2.(len) in
    let x = t.table.(k).(lo) and y = t.table.(k).(hi - (1 lsl k) + 1) in
    if t.depths.(x) <= t.depths.(y) then x else y
  end

let path t a b =
  let anc = lca t a b in
  let rec climb acc i = if i = anc then acc else climb (i :: acc) t.parents.(i) in
  let up = climb [] a in
  let down = climb [] b in
  List.rev_append (List.rev up) (List.rev down)

let delays t lengths =
  let n = num_nodes t in
  let d = Array.make n 0.0 in
  Array.iter
    (fun i -> if i <> root then d.(i) <- d.(t.parents.(i)) +. lengths.(i))
    t.pre;
  d

let path_length t lengths a b =
  (* cached prefix sums would need invalidation; callers that care compute
     [delays] once and use it directly. This is the O(depth) fallback. *)
  let anc = lca t a b in
  let rec climb acc i = if i = anc then acc else climb (acc +. lengths.(i)) t.parents.(i) in
  climb (climb 0.0 a) b

let postorder t = Array.copy t.post

let preorder t = Array.copy t.pre

let all_sinks_are_leaves t =
  Array.for_all (fun s -> is_leaf t s) t.sink_ids

let binarise t =
  let needs_split =
    let bad = ref false in
    for i = 0 to num_nodes t - 1 do
      let limit = if i = root then 2 else 2 in
      if List.length t.children.(i) > limit then bad := true
    done;
    !bad
  in
  if not needs_split then t
  else begin
    (* Rebuild the parent array, appending chain nodes: a node with children
       c1..ck (k > 2) keeps c1 and hands c2..ck to a fresh forced-zero
       child, recursively. *)
    let parents = ref (Array.to_list t.parents) in
    let zeros = ref (Array.to_list t.zero) in
    let count = ref (num_nodes t) in
    let reparent = Hashtbl.create 16 in
    let fresh p =
      let id = !count in
      incr count;
      parents := !parents @ [ p ];
      zeros := !zeros @ [ true ];
      id
    in
    for i = 0 to num_nodes t - 1 do
      let cs = t.children.(i) in
      if List.length cs > 2 then begin
        (* keep the first child; push the rest down a zero-edge chain *)
        let rec chain host = function
          | [] -> ()
          | [ c ] -> Hashtbl.replace reparent c host
          | [ c; d ] ->
            Hashtbl.replace reparent c host;
            Hashtbl.replace reparent d host
          | c :: rest ->
            Hashtbl.replace reparent c host;
            let next = fresh host in
            chain next rest
        in
        match cs with
        | [] | [ _ ] | [ _; _ ] -> ()
        | first_child :: rest ->
          ignore first_child;
          let aux = fresh i in
          chain aux rest
      end
    done;
    let arr = Array.of_list !parents in
    Hashtbl.iter (fun c host -> arr.(c) <- host) reparent;
    let zero = Array.of_list !zeros in
    create ~forced_zero:zero ~parents:arr ~sinks:t.sink_ids ()
  end

let pp fmt t =
  Format.fprintf fmt "tree(%d nodes, %d sinks)@\n" (num_nodes t) (num_sinks t);
  for i = 0 to num_nodes t - 1 do
    Format.fprintf fmt "  %d <- parent %d%s%s@\n" i t.parents.(i)
      (if is_sink t i then " [sink]" else "")
      (if t.zero.(i) then " [zero-edge]" else "")
  done
