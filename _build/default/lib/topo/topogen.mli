(** Structural topology generators (no geometry).

    Geometry-guided generation (nearest-neighbour merging guided by skew,
    as adopted by the paper from Huang-Kahng-Tsao) lives in [lubt.bst];
    these generators are used by tests and as simple defaults. *)

val random_binary :
  Lubt_util.Prng.t -> num_sinks:int -> source_edge:bool -> Tree.t
(** A uniformly random binary merge tree over [num_sinks] sinks (all sinks
    are leaves, every Steiner node has two children). With [source_edge]
    the root has a single child (the usual layout when the source location
    is fixed); otherwise the root is the top merge node with two children.
    Sinks get node ids [1..num_sinks] in order. Requires
    [num_sinks >= 2] (or [>= 1] with [source_edge]). *)

val balanced_binary : num_sinks:int -> source_edge:bool -> Tree.t
(** Deterministic balanced merge tree over the sinks in index order. *)
