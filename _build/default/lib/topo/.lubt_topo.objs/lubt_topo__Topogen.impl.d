lib/topo/topogen.ml: Array List Lubt_util Tree
