lib/topo/tree.mli: Format
