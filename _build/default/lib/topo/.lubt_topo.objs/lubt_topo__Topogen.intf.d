lib/topo/topogen.mli: Lubt_util Tree
