lib/topo/tree.ml: Array Format Hashtbl List
