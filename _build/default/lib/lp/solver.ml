let solve ?params prob =
  let eng = Simplex.of_problem ?params prob in
  let status = Simplex.solve eng in
  ignore status;
  Simplex.solution eng

let solve_exn ?params prob =
  let sol = solve ?params prob in
  if sol.Status.status <> Status.Optimal then
    failwith
      (Printf.sprintf "LP not optimal: %s" (Status.to_string sol.Status.status));
  sol
