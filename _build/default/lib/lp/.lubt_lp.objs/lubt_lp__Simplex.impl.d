lib/lp/simplex.ml: Array Basis Lu Printf Problem Sparse Status
