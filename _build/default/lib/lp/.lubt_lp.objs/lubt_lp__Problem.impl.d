lib/lp/problem.ml: Array Format Printf Sparse
