lib/lp/lu.mli: Sparse
