lib/lp/presolve.ml: Array Hashtbl List Printf Problem Solver Sparse Status String
