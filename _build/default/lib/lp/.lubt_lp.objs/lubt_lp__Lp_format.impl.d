lib/lp/lp_format.ml: Array Buffer Float Hashtbl List Printf Problem Sparse String
