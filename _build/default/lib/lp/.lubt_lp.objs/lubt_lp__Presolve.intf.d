lib/lp/presolve.mli: Problem Simplex Status
