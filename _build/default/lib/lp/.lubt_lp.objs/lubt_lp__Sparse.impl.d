lib/lp/sparse.ml: Array Format List
