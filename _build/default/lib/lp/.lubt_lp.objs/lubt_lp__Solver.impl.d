lib/lp/solver.ml: Printf Simplex Status
