lib/lp/simplex.mli: Problem Status
