lib/lp/status.mli: Format
