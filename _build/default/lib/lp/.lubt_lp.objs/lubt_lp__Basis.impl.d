lib/lp/basis.ml: Array List Lu
