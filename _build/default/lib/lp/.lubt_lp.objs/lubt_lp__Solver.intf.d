lib/lp/solver.mli: Problem Simplex Status
