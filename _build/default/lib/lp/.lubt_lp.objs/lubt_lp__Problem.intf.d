lib/lp/problem.mli: Format Sparse
