lib/lp/basis.mli: Sparse
