lib/lp/status.ml: Format
