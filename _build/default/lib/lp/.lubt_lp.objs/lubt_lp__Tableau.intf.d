lib/lp/tableau.mli: Problem Status
