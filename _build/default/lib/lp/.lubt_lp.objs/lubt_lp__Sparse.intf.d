lib/lp/sparse.mli: Format
