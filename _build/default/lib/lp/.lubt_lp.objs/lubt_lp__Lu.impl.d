lib/lp/lu.ml: Array Sparse
