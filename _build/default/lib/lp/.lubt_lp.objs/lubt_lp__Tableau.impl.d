lib/lp/tableau.ml: Array List Problem Sparse Status
