(** Independent reference LP solver: classic dense two-phase full-tableau
    simplex on the standard form.

    Deliberately shares no code with {!Simplex}; tests cross-check the two
    implementations against each other on randomly generated problems. Only
    suitable for small instances (dense O(rows x cols) per pivot).

    The [dual] field of the returned solution is left as zeros. *)

val solve : ?max_iters:int -> Problem.t -> Status.solution
