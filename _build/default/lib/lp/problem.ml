type row = { rlo : float; rup : float; coeffs : Sparse.t }

type col = { lo : float; up : float; mutable obj : float; vname : string }

type t = {
  mutable cols : col array;
  mutable ncols : int;
  mutable rows : row array;
  mutable row_names : string array;
  mutable nrows : int;
}

let create () =
  { cols = [||]; ncols = 0; rows = [||]; row_names = [||]; nrows = 0 }

let grow_cols t =
  if t.ncols = Array.length t.cols then begin
    let ncap = max 16 (2 * t.ncols) in
    let fresh = { lo = 0.0; up = 0.0; obj = 0.0; vname = "" } in
    let arr = Array.make ncap fresh in
    Array.blit t.cols 0 arr 0 t.ncols;
    t.cols <- arr
  end

let grow_rows t =
  if t.nrows = Array.length t.rows then begin
    let ncap = max 16 (2 * t.nrows) in
    let fresh = { rlo = 0.0; rup = 0.0; coeffs = Sparse.empty } in
    let arr = Array.make ncap fresh in
    Array.blit t.rows 0 arr 0 t.nrows;
    t.rows <- arr;
    let names = Array.make ncap "" in
    Array.blit t.row_names 0 names 0 t.nrows;
    t.row_names <- names
  end

let add_var ?(lo = 0.0) ?(up = infinity) ?(obj = 0.0) ?(name = "") t =
  if not (lo <= up) then invalid_arg "Problem.add_var: lo > up";
  grow_cols t;
  let j = t.ncols in
  t.cols.(j) <- { lo; up; obj; vname = name };
  t.ncols <- j + 1;
  j

let add_row ?(name = "") t ~lo ~up coeffs =
  if not (lo <= up) then invalid_arg "Problem.add_row: lo > up";
  let sp = Sparse.of_assoc coeffs in
  if Sparse.max_index sp >= t.ncols then
    invalid_arg "Problem.add_row: coefficient refers to an unknown variable";
  grow_rows t;
  let i = t.nrows in
  t.rows.(i) <- { rlo = lo; rup = up; coeffs = sp };
  t.row_names.(i) <- name;
  t.nrows <- i + 1;
  i

let set_obj t j c =
  assert (j >= 0 && j < t.ncols);
  t.cols.(j).obj <- c

let nvars t = t.ncols

let nrows t = t.nrows

let var_lo t j = t.cols.(j).lo

let var_up t j = t.cols.(j).up

let obj_coeff t j = t.cols.(j).obj

let row t i =
  assert (i >= 0 && i < t.nrows);
  t.rows.(i)

let var_name t j =
  let n = t.cols.(j).vname in
  if n = "" then Printf.sprintf "x%d" j else n

let row_name t i =
  let n = t.row_names.(i) in
  if n = "" then Printf.sprintf "r%d" i else n

let objective_value t x =
  let acc = ref 0.0 in
  for j = 0 to t.ncols - 1 do
    acc := !acc +. (t.cols.(j).obj *. x.(j))
  done;
  !acc

let row_activity t i x = Sparse.dot_dense (row t i).coeffs x

let is_feasible ?(tol = 1e-6) t x =
  let ok = ref true in
  for j = 0 to t.ncols - 1 do
    if x.(j) < t.cols.(j).lo -. tol || x.(j) > t.cols.(j).up +. tol then
      ok := false
  done;
  for i = 0 to t.nrows - 1 do
    let a = row_activity t i x in
    let r = t.rows.(i) in
    if a < r.rlo -. tol || a > r.rup +. tol then ok := false
  done;
  !ok

let pp fmt t =
  Format.fprintf fmt "minimize";
  for j = 0 to t.ncols - 1 do
    let c = t.cols.(j).obj in
    if c <> 0.0 then Format.fprintf fmt " %+g %s" c (var_name t j)
  done;
  Format.fprintf fmt "@\nsubject to@\n";
  for i = 0 to t.nrows - 1 do
    let r = t.rows.(i) in
    Format.fprintf fmt "  %s: %g <=" (row_name t i) r.rlo;
    Sparse.iter (fun j v -> Format.fprintf fmt " %+g %s" v (var_name t j)) r.coeffs;
    Format.fprintf fmt " <= %g@\n" r.rup
  done;
  Format.fprintf fmt "bounds@\n";
  for j = 0 to t.ncols - 1 do
    Format.fprintf fmt "  %g <= %s <= %g@\n" t.cols.(j).lo (var_name t j)
      t.cols.(j).up
  done
