(** Convenience front end: load a model into the revised simplex engine,
    solve it, and package the solution. *)

val solve : ?params:Simplex.params -> Problem.t -> Status.solution

val solve_exn : ?params:Simplex.params -> Problem.t -> Status.solution
(** Like {!solve}, but raises [Failure] unless the status is [Optimal]. *)
