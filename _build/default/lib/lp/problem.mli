(** LP model builder.

    A problem is [minimize c^T x] subject to
    [rlo_i <= a_i^T x <= rup_i] for every row [i] and
    [lo_j <= x_j <= up_j] for every column [j].
    Infinite bounds use [neg_infinity] / [infinity]; a row or column with
    equal bounds is an equality / fixed variable. Maximisation is expressed
    by negating the objective. *)

type t

type row = { rlo : float; rup : float; coeffs : Sparse.t }

val create : unit -> t

val add_var : ?lo:float -> ?up:float -> ?obj:float -> ?name:string -> t -> int
(** Adds a column and returns its index. Defaults: [lo = 0.], [up = infinity],
    [obj = 0.]. Requires [lo <= up]. *)

val add_row : ?name:string -> t -> lo:float -> up:float -> (int * float) list -> int
(** Adds a row [lo <= sum coeffs <= up] and returns its index. All referenced
    variables must already exist. Requires [lo <= up]. *)

val set_obj : t -> int -> float -> unit
(** Changes the objective coefficient of a column. *)

val nvars : t -> int

val nrows : t -> int

val var_lo : t -> int -> float

val var_up : t -> int -> float

val obj_coeff : t -> int -> float

val row : t -> int -> row

val var_name : t -> int -> string

val row_name : t -> int -> string

val objective_value : t -> float array -> float
(** Objective at a given structural point. *)

val row_activity : t -> int -> float array -> float
(** Value of [a_i^T x] at a structural point. *)

val is_feasible : ?tol:float -> t -> float array -> bool
(** Checks all row and column bounds at a point (absolute tolerance,
    default 1e-6). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of the whole model (for debugging small LPs). *)
