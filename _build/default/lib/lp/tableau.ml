(* Conversion of a bounded-variable model to standard form
   (min c x, A x = b, x >= 0), then two-phase dense tableau simplex. *)

type std = {
  ncols : int;  (* structural standard-form columns *)
  rows : (float * (int * float) list) list;  (* rhs, coefficients; sense = *)
  obj : float array;
  obj_shift : float;
  (* recover.(j) describes original variable j in terms of standard cols *)
  recover : (float * (int * float) list) array;  (* shift + linear combo *)
}

(* Each original variable is rewritten as an affine combination of fresh
   nonnegative columns; each row becomes one or two inequality rows which are
   then equalised with slack columns (handled in the tableau itself). *)
let standardise prob =
  let next = ref 0 in
  let fresh () =
    let j = !next in
    incr next;
    j
  in
  let extra_rows = ref [] in
  let n = Problem.nvars prob in
  let recover = Array.make n (0.0, []) in
  for j = 0 to n - 1 do
    let lo = Problem.var_lo prob j and up = Problem.var_up prob j in
    if lo > neg_infinity then begin
      (* x = lo + x', x' >= 0, optionally x' <= up - lo *)
      let c = fresh () in
      recover.(j) <- (lo, [ (c, 1.0) ]);
      if up < infinity then extra_rows := (`Le, up -. lo, [ (c, 1.0) ]) :: !extra_rows
    end
    else if up < infinity then begin
      (* x = up - x'', x'' >= 0 *)
      let c = fresh () in
      recover.(j) <- (up, [ (c, -1.0) ])
    end
    else begin
      (* free: x = x+ - x- *)
      let cp = fresh () and cm = fresh () in
      recover.(j) <- (0.0, [ (cp, 1.0); (cm, -1.0) ])
    end
  done;
  (* substitute into rows *)
  let subst coeffs =
    let shift = ref 0.0 in
    let out = ref [] in
    Sparse.iter
      (fun j v ->
        let s, combo = recover.(j) in
        shift := !shift +. (v *. s);
        List.iter (fun (c, k) -> out := (c, v *. k) :: !out) combo)
      coeffs;
    (!shift, !out)
  in
  let rows = ref [] in
  for i = 0 to Problem.nrows prob - 1 do
    let r = Problem.row prob i in
    let shift, combo = subst r.Problem.coeffs in
    if r.rlo = r.rup then rows := (`Eq, r.rlo -. shift, combo) :: !rows
    else begin
      if r.rlo > neg_infinity then rows := (`Ge, r.rlo -. shift, combo) :: !rows;
      if r.rup < infinity then rows := (`Le, r.rup -. shift, combo) :: !rows
    end
  done;
  let all_ineq = !extra_rows @ !rows in
  (* objective *)
  let obj_shift = ref 0.0 in
  let obj = Array.make !next 0.0 in
  for j = 0 to n - 1 do
    let c = Problem.obj_coeff prob j in
    if c <> 0.0 then begin
      let s, combo = recover.(j) in
      obj_shift := !obj_shift +. (c *. s);
      List.iter (fun (col, k) -> obj.(col) <- obj.(col) +. (c *. k)) combo
    end
  done;
  (* equalise: <=  adds slack +1, >= adds surplus -1 *)
  let base = !next in
  let slack_count =
    List.fold_left
      (fun acc (sense, _, _) -> match sense with `Eq -> acc | `Le | `Ge -> acc + 1)
      0 all_ineq
  in
  let rows_eq = ref [] in
  let snext = ref base in
  List.iter
    (fun (sense, rhs, combo) ->
      match sense with
      | `Eq -> rows_eq := (rhs, combo) :: !rows_eq
      | `Le ->
        let s = !snext in
        incr snext;
        rows_eq := (rhs, (s, 1.0) :: combo) :: !rows_eq
      | `Ge ->
        let s = !snext in
        incr snext;
        rows_eq := (rhs, (s, -1.0) :: combo) :: !rows_eq)
    all_ineq;
  let total = base + slack_count in
  let obj_full = Array.make total 0.0 in
  Array.blit obj 0 obj_full 0 base;
  {
    ncols = total;
    rows = !rows_eq;
    obj = obj_full;
    obj_shift = !obj_shift;
    recover;
  }

(* Dense two-phase tableau on (min c x, Ax = b, x >= 0). *)
let simplex_std std max_iters =
  let rows = Array.of_list std.rows in
  let m = Array.length rows in
  let n = std.ncols in
  (* ensure b >= 0 by row negation, then add one artificial per row *)
  let width = n + m + 1 in
  (* columns: 0..n-1 structural, n..n+m-1 artificial, last = rhs *)
  let tab = Array.init m (fun _ -> Array.make width 0.0) in
  Array.iteri
    (fun i (rhs, combo) ->
      let sign = if rhs < 0.0 then -1.0 else 1.0 in
      List.iter
        (fun (j, v) -> tab.(i).(j) <- tab.(i).(j) +. (sign *. v))
        combo;
      tab.(i).(n + i) <- 1.0;
      tab.(i).(width - 1) <- sign *. rhs)
    rows;
  let basis = Array.init m (fun i -> n + i) in
  let iters = ref 0 in
  let pivot r c =
    let pr = tab.(r) in
    let d = 1.0 /. pr.(c) in
    for j = 0 to width - 1 do
      pr.(j) <- pr.(j) *. d
    done;
    for i = 0 to m - 1 do
      if i <> r then begin
        let f = tab.(i).(c) in
        if f <> 0.0 then begin
          let ti = tab.(i) in
          for j = 0 to width - 1 do
            ti.(j) <- ti.(j) -. (f *. pr.(j))
          done
        end
      end
    done;
    basis.(r) <- c
  in
  (* runs the simplex on the current tableau for a given cost vector
     (length width-1); returns status *)
  let run cost allowed =
    (* reduced cost row: z_j = cost_j - sum_i cost_basis_i * tab_i_j *)
    let rec step () =
      incr iters;
      if !iters > max_iters then Status.Iteration_limit
      else begin
        let red = Array.make (width - 1) 0.0 in
        for j = 0 to width - 2 do
          red.(j) <- cost.(j)
        done;
        for i = 0 to m - 1 do
          let cb = cost.(basis.(i)) in
          if cb <> 0.0 then
            for j = 0 to width - 2 do
              red.(j) <- red.(j) -. (cb *. tab.(i).(j))
            done
        done;
        (* Bland's rule: smallest eligible index — slow but cycle-free *)
        let entering = ref (-1) in
        (try
           for j = 0 to width - 2 do
             if allowed j && red.(j) < -1e-9 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !entering < 0 then Status.Optimal
        else begin
          let c = !entering in
          let best_r = ref (-1) and best = ref infinity in
          for i = 0 to m - 1 do
            if tab.(i).(c) > 1e-9 then begin
              let ratio = tab.(i).(width - 1) /. tab.(i).(c) in
              if
                ratio < !best -. 1e-12
                || (ratio < !best +. 1e-12
                   && (!best_r < 0 || basis.(i) < basis.(!best_r)))
              then begin
                best := ratio;
                best_r := i
              end
            end
          done;
          if !best_r < 0 then Status.Unbounded
          else begin
            pivot !best_r c;
            step ()
          end
        end
      end
    in
    step ()
  in
  (* phase 1 *)
  let cost1 = Array.make (width - 1) 0.0 in
  for j = n to n + m - 1 do
    cost1.(j) <- 1.0
  done;
  let st1 = run cost1 (fun _ -> true) in
  let phase1_obj =
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      if basis.(i) >= n then acc := !acc +. tab.(i).(width - 1)
    done;
    !acc
  in
  match st1 with
  | Status.Iteration_limit -> (Status.Iteration_limit, [||], basis, tab, width)
  | _ when phase1_obj > 1e-6 -> (Status.Infeasible, [||], basis, tab, width)
  | _ ->
    (* drive remaining artificials out of the basis where possible *)
    for i = 0 to m - 1 do
      if basis.(i) >= n then begin
        let found = ref (-1) in
        for j = 0 to n - 1 do
          if !found < 0 && abs_float tab.(i).(j) > 1e-9 then found := j
        done;
        if !found >= 0 then pivot i !found
      end
    done;
    let cost2 = Array.make (width - 1) 0.0 in
    Array.blit std.obj 0 cost2 0 n;
    let st2 = run cost2 (fun j -> j < n || Array.exists (fun b -> b = j) basis) in
    let x = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if basis.(i) < n then x.(basis.(i)) <- tab.(i).(width - 1)
    done;
    (st2, x, basis, tab, width)

let solve ?(max_iters = 100_000) prob =
  let std = standardise prob in
  if List.length std.rows = 0 then begin
    (* no rows: every variable sits at its cheapest bound *)
    let n = Problem.nvars prob in
    let primal = Array.make n 0.0 in
    let unbounded = ref false in
    for j = 0 to n - 1 do
      let c = Problem.obj_coeff prob j in
      let lo = Problem.var_lo prob j and up = Problem.var_up prob j in
      if c > 0.0 then
        if lo > neg_infinity then primal.(j) <- lo else unbounded := true
      else if c < 0.0 then
        if up < infinity then primal.(j) <- up else unbounded := true
      else primal.(j) <- (if lo > neg_infinity then lo else if up < infinity then up else 0.0)
    done;
    let status = if !unbounded then Status.Unbounded else Status.Optimal in
    {
      Status.status;
      objective = Problem.objective_value prob primal;
      primal;
      row_activity = [||];
      dual = [||];
      iterations = 0;
    }
  end
  else begin
    let status, xstd, _, _, _ = simplex_std std max_iters in
    let n = Problem.nvars prob in
    let primal = Array.make n 0.0 in
    (if status = Status.Optimal then
       for j = 0 to n - 1 do
         let shift, combo = std.recover.(j) in
         primal.(j) <-
           List.fold_left (fun acc (c, k) -> acc +. (k *. xstd.(c))) shift combo
       done);
    let row_activity =
      Array.init (Problem.nrows prob) (fun i -> Problem.row_activity prob i primal)
    in
    {
      Status.status;
      objective = Problem.objective_value prob primal;
      primal;
      row_activity;
      dual = Array.make (Problem.nrows prob) 0.0;
      iterations = 0;
    }
  end
