type work = {
  n : int;
  lo : float array;
  up : float array;
  obj : float array;
  mutable fixed : bool array;
  (* rows as mutable cells: None = dropped *)
  mutable rows : (float * float * (int * float) list) option array;
}

type t = {
  original : Problem.t;
  reduced : Problem.t;
  var_map : int array;  (* original var -> reduced var, or -1 when fixed *)
  fixed_value : float array;  (* per original var; meaningful when fixed *)
  row_map : int array;  (* original row -> reduced row, or -1 when dropped *)
  obj_shift : float;
}

type outcome = Reduced of t | Infeasible_detected of string

let eps = 1e-9

exception Infeasible of string

(* substitute every currently-fixed variable out of the rows *)
let substitute_fixed w =
  Array.iteri
    (fun i row ->
      match row with
      | None -> ()
      | Some (rlo, rup, coeffs) ->
        let shift = ref 0.0 in
        let remaining =
          List.filter
            (fun (j, a) ->
              if w.fixed.(j) then begin
                shift := !shift +. (a *. w.lo.(j));
                false
              end
              else true)
            coeffs
        in
        if !shift <> 0.0 || List.length remaining <> List.length coeffs then
          w.rows.(i) <- Some (rlo -. !shift, rup -. !shift, remaining))
    w.rows

(* returns true when something changed *)
let simplify_rows w =
  let changed = ref false in
  Array.iteri
    (fun i row ->
      match row with
      | None -> ()
      | Some (rlo, rup, coeffs) -> (
        match coeffs with
        | [] ->
          if rlo > eps || rup < -.eps then
            raise (Infeasible (Printf.sprintf "empty row %d with bounds [%g, %g]" i rlo rup));
          w.rows.(i) <- None;
          changed := true
        | _ when rlo = neg_infinity && rup = infinity ->
          w.rows.(i) <- None;
          changed := true
        | [ (j, a) ] ->
          (* singleton row: fold into the variable's bounds *)
          let blo, bup =
            if a > 0.0 then (rlo /. a, rup /. a) else (rup /. a, rlo /. a)
          in
          let nlo = max w.lo.(j) blo and nup = min w.up.(j) bup in
          if nlo > nup +. (eps *. (1.0 +. abs_float nlo)) then
            raise
              (Infeasible
                 (Printf.sprintf "variable %d bounds crossed: [%g, %g]" j nlo nup));
          w.lo.(j) <- nlo;
          w.up.(j) <- max nlo nup;
          if w.lo.(j) = w.up.(j) then w.fixed.(j) <- true;
          w.rows.(i) <- None;
          changed := true
        | _ -> ()))
    w.rows;
  !changed

(* duplicate rows: identical coefficient lists merge by bound intersection *)
let merge_duplicates w =
  let tbl = Hashtbl.create 64 in
  let changed = ref false in
  Array.iteri
    (fun i row ->
      match row with
      | None -> ()
      | Some (rlo, rup, coeffs) -> (
        let key =
          List.map (fun (j, a) -> Printf.sprintf "%d:%.17g" j a)
            (List.sort compare coeffs)
          |> String.concat ";"
        in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.replace tbl key i
        | Some first -> (
          match w.rows.(first) with
          | None -> Hashtbl.replace tbl key i
          | Some (flo, fup, fcoeffs) ->
            let nlo = max flo rlo and nup = min fup rup in
            if nlo > nup +. eps then
              raise (Infeasible "duplicate rows with disjoint bounds");
            w.rows.(first) <- Some (nlo, nup, fcoeffs);
            w.rows.(i) <- None;
            changed := true)))
    w.rows;
  !changed

let run prob =
  let n = Problem.nvars prob in
  let m = Problem.nrows prob in
  let w =
    {
      n;
      lo = Array.init n (Problem.var_lo prob);
      up = Array.init n (Problem.var_up prob);
      obj = Array.init n (Problem.obj_coeff prob);
      fixed = Array.make n false;
      rows =
        Array.init m (fun i ->
            let r = Problem.row prob i in
            Some (r.Problem.rlo, r.Problem.rup, Sparse.to_assoc r.Problem.coeffs));
    }
  in
  match
    (* fixed-variable detection + fixed-point loop *)
    for j = 0 to n - 1 do
      if w.lo.(j) > w.up.(j) then raise (Infeasible "crossed variable bounds");
      if w.lo.(j) = w.up.(j) then w.fixed.(j) <- true
    done;
    let continue = ref true in
    let guard = ref 0 in
    while !continue && !guard < 50 do
      incr guard;
      substitute_fixed w;
      let a = simplify_rows w in
      let b = merge_duplicates w in
      continue := a || b
    done
  with
  | exception Infeasible msg -> Infeasible_detected msg
  | () ->
    (* build the reduced problem *)
    let var_map = Array.make n (-1) in
    let fixed_value = Array.make n 0.0 in
    let reduced = Problem.create () in
    let obj_shift = ref 0.0 in
    for j = 0 to n - 1 do
      if w.fixed.(j) then begin
        fixed_value.(j) <- w.lo.(j);
        obj_shift := !obj_shift +. (w.obj.(j) *. w.lo.(j))
      end
      else
        var_map.(j) <-
          Problem.add_var ~lo:w.lo.(j) ~up:w.up.(j) ~obj:w.obj.(j)
            ~name:(Problem.var_name prob j) reduced
    done;
    let row_map = Array.make m (-1) in
    Array.iteri
      (fun i row ->
        match row with
        | None -> ()
        | Some (rlo, rup, coeffs) ->
          let mapped = List.map (fun (j, a) -> (var_map.(j), a)) coeffs in
          row_map.(i) <- Problem.add_row reduced ~lo:rlo ~up:rup mapped)
      w.rows;
    Reduced
      {
        original = prob;
        reduced;
        var_map;
        fixed_value;
        row_map;
        obj_shift = !obj_shift;
      }

let problem t = t.reduced

let original_vars t = Problem.nvars t.original

let reduced_vars t = Problem.nvars t.reduced

let reduced_rows t = Problem.nrows t.reduced

let postsolve t (sol : Status.solution) =
  let n = Problem.nvars t.original in
  let m = Problem.nrows t.original in
  let primal =
    Array.init n (fun j ->
        let r = t.var_map.(j) in
        if r >= 0 then sol.Status.primal.(r) else t.fixed_value.(j))
  in
  let row_activity =
    Array.init m (fun i -> Problem.row_activity t.original i primal)
  in
  let dual =
    Array.init m (fun i ->
        let r = t.row_map.(i) in
        if r >= 0 && r < Array.length sol.Status.dual then sol.Status.dual.(r)
        else 0.0)
  in
  {
    sol with
    Status.objective = sol.Status.objective +. t.obj_shift;
    primal;
    row_activity;
    dual;
  }

let solve ?params prob =
  match run prob with
  | Infeasible_detected _ ->
    {
      Status.status = Status.Infeasible;
      objective = nan;
      primal = Array.make (Problem.nvars prob) 0.0;
      row_activity = Array.make (Problem.nrows prob) 0.0;
      dual = Array.make (Problem.nrows prob) 0.0;
      iterations = 0;
    }
  | Reduced t ->
    if Problem.nvars t.reduced = 0 then begin
      (* everything fixed: check the remaining rows directly *)
      let primal = Array.map (fun v -> v) t.fixed_value in
      let feasible = Problem.is_feasible t.original primal in
      {
        Status.status = (if feasible then Status.Optimal else Status.Infeasible);
        objective = t.obj_shift;
        primal;
        row_activity =
          Array.init (Problem.nrows t.original) (fun i ->
              Problem.row_activity t.original i primal);
        dual = Array.make (Problem.nrows t.original) 0.0;
        iterations = 0;
      }
    end
    else begin
      let sol = Solver.solve ?params t.reduced in
      if sol.Status.status = Status.Optimal then postsolve t sol
      else { sol with Status.primal = Array.make (Problem.nvars prob) 0.0;
             row_activity = Array.make (Problem.nrows prob) 0.0;
             dual = Array.make (Problem.nrows prob) 0.0 }
    end
