(** CPLEX-LP-format export and a compatible subset reader.

    Useful for eyeballing EBF programs and for cross-checking against
    external solvers when one is available. The writer emits standard
    sections ([Minimize], [Subject To], [Bounds], [End]); range rows are
    written as two inequalities. The reader accepts the subset the writer
    produces (one constraint per line, [<=]/[>=]/[=], free-form spacing,
    [\ ] comments). *)

val to_string : Problem.t -> string

val write : string -> Problem.t -> unit

val of_string : string -> (Problem.t, string) result
(** Variables are created in order of first appearance; names are
    preserved. *)

val read : string -> (Problem.t, string) result
