module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Problem = Lubt_lp.Problem
module Simplex = Lubt_lp.Simplex
module Status = Lubt_lp.Status

type result = {
  status : Status.t;
  lengths : float array;
  objective : float;
  window : float * float;
  lp_rows : int;
  lp_iterations : int;
  rounds : int;
}

(* Mirrors Ebf.solve's lazy row generation, with one extra free variable t
   and the delay rows 0 <= path(s_0, s_i) - t <= B. The Steiner machinery
   is identical; kept separate because the variable layout differs. *)
let solve ?(options = Ebf.default_options) ?weights ~skew_bound
    (inst : Instance.t) tree =
  if Tree.num_sinks tree <> Instance.num_sinks inst then
    invalid_arg "Skew_lp: tree sink count differs from instance";
  if skew_bound < 0.0 then invalid_arg "Skew_lp: negative skew bound";
  let n = Tree.num_nodes tree in
  let edge_var i = i - 1 in
  let prob = Problem.create () in
  for i = 1 to n - 1 do
    let w = match weights with None -> 1.0 | Some ws -> ws.(i) in
    let up = if Tree.forced_zero tree i then 0.0 else infinity in
    ignore (Problem.add_var ~lo:0.0 ~up ~obj:w prob)
  done;
  let t_var =
    Problem.add_var ~lo:neg_infinity ~up:infinity ~obj:0.0 ~name:"t" prob
  in
  let path_coeffs a b = List.map (fun e -> (edge_var e, 1.0)) (Tree.path tree a b) in
  (* delay rows: t <= delay_i <= t + B *)
  Array.iter
    (fun node ->
      ignore
        (Problem.add_row prob ~lo:0.0 ~up:skew_bound
           ((t_var, -1.0) :: path_coeffs Tree.root node)))
    (Tree.sinks tree);
  let terms =
    let sink_nodes = Tree.sinks tree in
    let base =
      Array.to_list
        (Array.mapi (fun k node -> (node, inst.Instance.sinks.(k))) sink_nodes)
    in
    match inst.Instance.source with
    | Some src -> Array.of_list ((Tree.root, src) :: base)
    | None -> Array.of_list base
  in
  let nt = Array.length terms in
  let added = Hashtbl.create 256 in
  let scale = max 1.0 (Instance.diameter inst +. Instance.radius inst) in
  let eager = (not options.Ebf.lazy_steiner) || nt <= 12 in
  let add_pair_row key =
    Hashtbl.replace added key ();
    let i, j = key in
    let a, pa = terms.(i) and b, pb = terms.(j) in
    let d = Point.dist pa pb in
    if d > 0.0 then ignore (Problem.add_row prob ~lo:d ~up:infinity (path_coeffs a b))
  in
  if eager then
    for i = 0 to nt - 1 do
      for j = i + 1 to nt - 1 do
        add_pair_row (i, j)
      done
    done
  else begin
    (* nearest-neighbour seeding as in Ebf *)
    for i = 0 to nt - 1 do
      let _, pi = terms.(i) in
      let dists =
        Array.init nt (fun j ->
            let _, pj = terms.(j) in
            (Point.dist pi pj, j))
      in
      Array.sort compare dists;
      let count = ref 0 and idx = ref 0 in
      while !count < options.Ebf.knn && !idx < nt do
        let _, j = dists.(!idx) in
        incr idx;
        if j <> i then begin
          let key = (min i j, max i j) in
          if not (Hashtbl.mem added key) then add_pair_row key;
          incr count
        end
      done
    done;
    match inst.Instance.source with
    | Some _ ->
      for j = 1 to nt - 1 do
        if not (Hashtbl.mem added (0, j)) then add_pair_row (0, j)
      done
    | None -> ()
  end;
  let eng = Simplex.of_problem ~params:options.Ebf.lp_params prob in
  let lengths_of_primal primal =
    let lengths = Array.make n 0.0 in
    for i = 1 to n - 1 do
      lengths.(i) <- max 0.0 primal.(edge_var i)
    done;
    lengths
  in
  let rec loop rounds =
    let status = Simplex.solve eng in
    if status <> Status.Optimal then (status, rounds)
    else begin
      let lengths = lengths_of_primal (Simplex.primal eng) in
      let d = Tree.delays tree lengths in
      let violations = ref [] in
      for i = 0 to nt - 1 do
        for j = i + 1 to nt - 1 do
          if not (Hashtbl.mem added (i, j)) then begin
            let a, pa = terms.(i) and b, pb = terms.(j) in
            let need = Point.dist pa pb in
            if need > 0.0 then begin
              let have = d.(a) +. d.(b) -. (2.0 *. d.(Tree.lca tree a b)) in
              let viol = need -. have in
              if viol > options.Ebf.violation_tol *. scale then
                violations := (viol, (i, j)) :: !violations
            end
          end
        done
      done;
      match !violations with
      | [] -> (Status.Optimal, rounds)
      | vs ->
        if rounds >= options.Ebf.max_rounds then (Status.Iteration_limit, rounds)
        else begin
          let sorted = List.sort (fun (a, _) (b, _) -> compare b a) vs in
          let take = ref 0 in
          List.iter
            (fun (_, (i, j)) ->
              if !take < options.Ebf.batch then begin
                incr take;
                Hashtbl.replace added (i, j) ();
                let a, pa = terms.(i) and b, pb = terms.(j) in
                let dist = Point.dist pa pb in
                Simplex.add_row eng ~lo:dist ~up:infinity (path_coeffs a b)
              end)
            sorted;
          loop (rounds + 1)
        end
    end
  in
  let status, rounds = loop 1 in
  let primal = Simplex.primal eng in
  let lengths = lengths_of_primal primal in
  let t = primal.(t_var) in
  {
    status;
    lengths;
    objective = Simplex.objective eng;
    window = (t, t +. skew_bound);
    lp_rows = Simplex.nrows eng;
    lp_iterations = Simplex.iterations eng;
    rounds;
  }
