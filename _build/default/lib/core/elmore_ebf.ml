module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Elmore = Lubt_delay.Elmore
module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Status = Lubt_lp.Status

type options = {
  max_outer : int;
  initial_trust : float;
  tol : float;
  penalty : float;
}

let default_options =
  { max_outer = 60; initial_trust = 0.5; tol = 1e-7; penalty = 1e4 }

type status = Converged | Stalled | Lp_failure of Status.t

type result = {
  status : status;
  lengths : float array;
  cost : float;
  sink_delays : float array;
  max_violation : float;
  outer_iterations : int;
}

let edge_var i = i - 1

let terminals (inst : Instance.t) tree =
  let base =
    Array.to_list
      (Array.mapi
         (fun k node -> (node, inst.Instance.sinks.(k)))
         (Tree.sinks tree))
  in
  match inst.Instance.source with
  | Some src -> (Tree.root, src) :: base
  | None -> base

let cost_of lengths =
  Lubt_util.Stats.sum (Array.sub lengths 1 (Array.length lengths - 1))

let violation (inst : Instance.t) tree wire loads lengths =
  let delays = Elmore.sink_delays tree wire loads lengths in
  let worst = ref 0.0 in
  Array.iteri
    (fun k d ->
      worst := max !worst (inst.Instance.lower.(k) -. d);
      worst := max !worst (d -. inst.Instance.upper.(k)))
    delays;
  max 0.0 !worst

(* Starting point: the shortest-path-tree-like solution of the pure Steiner
   LP (all delay bounds dropped), which is feasible for the Steiner
   constraints and cheap. *)
let initial_lengths inst tree =
  let relaxed =
    Instance.create ?source:inst.Instance.source ~sinks:inst.Instance.sinks
      ~lower:(Array.map (fun _ -> 0.0) inst.Instance.lower)
      ~upper:(Array.map (fun _ -> infinity) inst.Instance.upper)
      ()
  in
  let r = Ebf.solve relaxed tree in
  (r.Ebf.status, r.Ebf.lengths)

let solve ?(options = default_options) ~wire ~loads (inst : Instance.t) tree =
  if Array.length loads <> Instance.num_sinks inst then
    invalid_arg "Elmore_ebf.solve: loads length mismatch";
  let n = Tree.num_nodes tree in
  let radius = max 1.0 (Instance.radius inst) in
  let terms = Array.of_list (terminals inst tree) in
  let nt = Array.length terms in
  let sink_nodes = Tree.sinks tree in
  let status0, start = initial_lengths inst tree in
  match status0 with
  | Status.Optimal ->
    let current = ref start in
    let trust = ref (options.initial_trust *. radius) in
    let merit lengths =
      cost_of lengths +. (options.penalty *. violation inst tree wire loads lengths)
    in
    let finished = ref None in
    let outer = ref 0 in
    while !finished = None && !outer < options.max_outer do
      incr outer;
      let e0 = !current in
      (* linearised subproblem around e0 *)
      let prob = Problem.create () in
      for i = 1 to n - 1 do
        let lo = max 0.0 (e0.(i) -. !trust) in
        let up =
          if Tree.forced_zero tree i then 0.0 else e0.(i) +. !trust
        in
        ignore (Problem.add_var ~lo ~up:(max lo up) ~obj:1.0 prob)
      done;
      (* Steiner rows over all terminal pairs (these are exact, not
         linearised) *)
      for a = 0 to nt - 1 do
        for b = a + 1 to nt - 1 do
          let na, pa = terms.(a) and nb, pb = terms.(b) in
          let d = Point.dist pa pb in
          if d > 0.0 then begin
            let coeffs =
              List.map (fun e -> (edge_var e, 1.0)) (Tree.path tree na nb)
            in
            ignore (Problem.add_row prob ~lo:d ~up:infinity coeffs)
          end
        done
      done;
      (* linearised Elmore rows: delay(e) ~ delay(e0) + g.(e - e0) *)
      Array.iteri
        (fun k node ->
          let l = inst.Instance.lower.(k) and u = inst.Instance.upper.(k) in
          if l > 0.0 || u < infinity then begin
            let g = Elmore.gradient tree wire loads e0 node in
            let d0 = (Elmore.node_delays tree wire loads e0).(node) in
            let g_dot_e0 = ref 0.0 in
            let coeffs = ref [] in
            for i = 1 to n - 1 do
              if g.(i) <> 0.0 then begin
                coeffs := (edge_var i, g.(i)) :: !coeffs;
                g_dot_e0 := !g_dot_e0 +. (g.(i) *. e0.(i))
              end
            done;
            let shift = d0 -. !g_dot_e0 in
            ignore
              (Problem.add_row prob ~lo:(l -. shift)
                 ~up:(if u < infinity then u -. shift else infinity)
                 !coeffs)
          end)
        sink_nodes;
      let sol = Solver.solve prob in
      (match sol.Status.status with
      | Status.Optimal ->
        let cand = Array.make n 0.0 in
        for i = 1 to n - 1 do
          cand.(i) <- max 0.0 sol.Status.primal.(edge_var i)
        done;
        let step =
          let worst = ref 0.0 in
          for i = 1 to n - 1 do
            worst := max !worst (abs_float (cand.(i) -. e0.(i)))
          done;
          !worst
        in
        if merit cand < merit e0 -. (options.tol *. radius) then begin
          current := cand;
          trust := min (!trust *. 1.5) (options.initial_trust *. radius)
        end
        else begin
          trust := !trust /. 2.0;
          if !trust < options.tol *. radius then
            finished :=
              Some
                (if
                   violation inst tree wire loads e0
                   <= options.tol *. radius *. 10.0
                 then Converged
                 else Stalled)
        end;
        if
          step <= options.tol *. radius
          && violation inst tree wire loads !current <= options.tol *. radius *. 10.0
        then finished := Some Converged
      | Status.Infeasible ->
        (* trust region too tight around an infeasible point: widen *)
        trust := !trust *. 2.0;
        if !trust > 1e6 *. radius then finished := Some Stalled
      | other -> finished := Some (Lp_failure other))
    done;
    let lengths = !current in
    let status =
      match !finished with
      | Some s -> s
      | None ->
        if violation inst tree wire loads lengths <= options.tol *. radius *. 10.0
        then Converged
        else Stalled
    in
    {
      status;
      lengths;
      cost = cost_of lengths;
      sink_delays = Elmore.sink_delays tree wire loads lengths;
      max_violation = violation inst tree wire loads lengths;
      outer_iterations = !outer;
    }
  | other ->
    {
      status = Lp_failure other;
      lengths = start;
      cost = cost_of start;
      sink_delays = Elmore.sink_delays tree wire loads start;
      max_violation = violation inst tree wire loads start;
      outer_iterations = 0;
    }
