module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree

type t = {
  instance : Instance.t;
  tree : Tree.t;
  lengths : float array;
  positions : Point.t array;
}

let cost t =
  Lubt_util.Stats.sum (Array.sub t.lengths 1 (Array.length t.lengths - 1))

let weighted_cost t weights =
  let acc = ref 0.0 in
  for i = 1 to Array.length t.lengths - 1 do
    acc := !acc +. (weights.(i) *. t.lengths.(i))
  done;
  !acc

let sink_delays t = Lubt_delay.Linear.sink_delays t.tree t.lengths

let skew t = Lubt_delay.Linear.skew t.tree t.lengths

let min_max_delay t = Lubt_delay.Linear.min_max_delay t.tree t.lengths

let edge_slack t i =
  assert (i > 0);
  t.lengths.(i) -. Point.dist t.positions.(i) t.positions.(Tree.parent t.tree i)

let num_elongated ?(eps = 1e-9) t =
  let count = ref 0 in
  for i = 1 to Tree.num_nodes t.tree - 1 do
    let scale = 1.0 +. t.lengths.(i) in
    if edge_slack t i > eps *. scale then incr count
  done;
  !count

let validate ?(eps = 1e-6) t =
  let errors = ref [] in
  let fail msg = errors := msg :: !errors in
  let scale = max 1.0 (Instance.diameter t.instance +. Instance.radius t.instance) in
  let tol = eps *. scale in
  for i = 1 to Tree.num_nodes t.tree - 1 do
    if edge_slack t i < -.tol then
      fail
        (Printf.sprintf "edge %d: length %g shorter than spanned distance %g" i
           t.lengths.(i)
           (Point.dist t.positions.(i) t.positions.(Tree.parent t.tree i)));
    if Tree.forced_zero t.tree i && abs_float t.lengths.(i) > tol then
      fail (Printf.sprintf "edge %d: forced-zero edge has length %g" i t.lengths.(i))
  done;
  Array.iteri
    (fun k node ->
      if not (Point.equal ~eps:tol t.positions.(node) t.instance.Instance.sinks.(k))
      then
        fail
          (Printf.sprintf "sink %d not at its prescribed location (%s vs %s)"
             node
             (Point.to_string t.positions.(node))
             (Point.to_string t.instance.Instance.sinks.(k))))
    (Tree.sinks t.tree);
  (match t.instance.Instance.source with
  | Some src ->
    if not (Point.equal ~eps:tol t.positions.(Tree.root) src) then
      fail "source not at its prescribed location"
  | None -> ());
  let delays = sink_delays t in
  Array.iteri
    (fun k d ->
      if d < t.instance.Instance.lower.(k) -. tol then
        fail
          (Printf.sprintf "sink %d: delay %g below lower bound %g" k d
             t.instance.Instance.lower.(k));
      if d > t.instance.Instance.upper.(k) +. tol then
        fail
          (Printf.sprintf "sink %d: delay %g above upper bound %g" k d
             t.instance.Instance.upper.(k)))
    delays;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_summary fmt t =
  let lo, hi = min_max_delay t in
  Format.fprintf fmt
    "routed tree: %d nodes, cost %.2f, delays [%.2f, %.2f], skew %.2f, %d \
     elongated edges"
    (Tree.num_nodes t.tree) (cost t) lo hi (hi -. lo) (num_elongated t)
