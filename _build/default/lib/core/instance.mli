(** A LUBT problem instance (Definition 2.1): sink locations, an optional
    source location, and per-sink delay bounds.

    Bounds are absolute wire-length units under the linear delay model. The
    paper normalises bounds to the instance radius; use {!radius} and
    {!with_normalized_bounds} for that convention. *)

type t = private {
  sinks : Lubt_geom.Point.t array;
  source : Lubt_geom.Point.t option;
  lower : float array;  (** per sink, same order as [sinks] *)
  upper : float array;
}

val create :
  ?source:Lubt_geom.Point.t ->
  sinks:Lubt_geom.Point.t array ->
  lower:float array ->
  upper:float array ->
  unit ->
  t
(** @raise Invalid_argument when arrays disagree in length, some
    [lower > upper], or some bound is negative. *)

val uniform_bounds :
  ?source:Lubt_geom.Point.t ->
  sinks:Lubt_geom.Point.t array ->
  lower:float ->
  upper:float ->
  unit ->
  t
(** Same bounds for every sink (the tolerable-skew setting of Section 6). *)

val num_sinks : t -> int

val diameter : t -> float
(** Largest Manhattan distance between two sinks, O(m) via rotated
    coordinates. *)

val radius : t -> float
(** Distance from the source to the farthest sink when the source is given;
    half the diameter otherwise (Section 2). *)

val with_normalized_bounds : t -> lower:float -> upper:float -> t
(** Replaces the bounds with [lower * radius, upper * radius] for every
    sink (the convention of Tables 1-3). *)

val with_bounds : t -> lower:float array -> upper:float array -> t

val bounds_admissible : t -> bool
(** Checks condition (3)/(4): [0 <= l_i <= u_i] and [u_i >= dist(s_0,s_i)]
    (source given) or [u_i >= radius] (source free). *)

val pp : Format.formatter -> t -> unit
