type report = { routed : Routed.t; ebf : Ebf.result }

type error =
  | No_solution
  | Solver_failure of Lubt_lp.Status.t
  | Embedding_failure of string

let error_to_string = function
  | No_solution -> "no LUBT exists for this topology and these bounds"
  | Solver_failure st ->
    Printf.sprintf "LP solver failed: %s" (Lubt_lp.Status.to_string st)
  | Embedding_failure msg -> Printf.sprintf "embedding failed: %s" msg

let solve ?options ?weights ?policy inst tree =
  let ebf = Ebf.solve ?options ?weights inst tree in
  match ebf.Ebf.status with
  | Lubt_lp.Status.Infeasible -> Error No_solution
  | Lubt_lp.Status.Optimal -> (
    match Embed.place ?policy inst tree ebf.Ebf.lengths with
    | Error msg -> Error (Embedding_failure msg)
    | Ok embedding ->
      let routed =
        {
          Routed.instance = inst;
          tree;
          lengths = ebf.Ebf.lengths;
          positions = embedding.Embed.positions;
        }
      in
      Ok { routed; ebf })
  | other -> Error (Solver_failure other)

let solve_exn ?options ?weights ?policy inst tree =
  match solve ?options ?weights ?policy inst tree with
  | Ok r -> r
  | Error e -> failwith (error_to_string e)
