(** Optimal bounded-skew embedding for a fixed topology, as an LP.

    Section 4.3 notes that LUBT with [l_i > 0, u_i < inf] "is equivalent to
    a bounded skew clock routing tree problem with a specific upper
    bound". When only the skew bound matters (no prescribed window), the
    window position itself can be left to the optimiser by introducing a
    free variable [t]:

    {v
    min   sum e_k
    s.t.  Steiner constraints (as in EBF)
          t <= delay(s_i) <= t + B        for every sink
          e_k >= 0,  t free
    v}

    This is the per-topology *optimum* that the greedy baseline
    ({!Lubt_bst.Bst_dme}) approximates, so it quantifies the baseline's
    greedy gap; it is also the cheapest LUBT over all windows of width
    [B] (the envelope of the paper's Table 2 rows). *)

type result = {
  status : Lubt_lp.Status.t;
  lengths : float array;
  objective : float;
  window : float * float;
      (** the delay window [t, t+B] the optimiser settled on *)
  lp_rows : int;
  lp_iterations : int;
  rounds : int;
}

val solve :
  ?options:Ebf.options ->
  ?weights:float array ->
  skew_bound:float ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  result
(** The instance's own bounds are ignored except for sink/source
    locations; [skew_bound] is absolute. Uses the same lazy
    Steiner-row generation as {!Ebf.solve}. *)
