(** A fully embedded LUBT: topology + edge lengths + node positions.

    [cost] is the LP objective (sum of edge lengths); the straight-line
    distance between an edge's endpoints may be smaller than its length
    (elongated edges are later materialised as snaked wire, see
    {!Snake}). *)

type t = {
  instance : Instance.t;
  tree : Lubt_topo.Tree.t;
  lengths : float array;  (** per edge / node id *)
  positions : Lubt_geom.Point.t array;  (** per node *)
}

val cost : t -> float
(** Total wire length [sum_k e_k]. *)

val weighted_cost : t -> float array -> float

val sink_delays : t -> float array
(** Linear-model delay per sink, in instance order. *)

val skew : t -> float

val min_max_delay : t -> float * float

val edge_slack : t -> int -> float
(** [e_i - dist(s_i, parent)]: zero when the edge is tight, positive when
    elongated (Section 2 terminology). *)

val num_elongated : ?eps:float -> t -> int

val validate : ?eps:float -> t -> (unit, string list) result
(** Full check of Definition 2.1 on the embedding:
    - every edge at least as long as the distance it spans,
    - forced-zero edges degenerate,
    - sinks (and the source, if fixed) at their prescribed locations,
    - every sink delay within its bounds.
    Returns all violations found. *)

val pp_summary : Format.formatter -> t -> unit
