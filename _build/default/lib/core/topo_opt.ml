module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Status = Lubt_lp.Status

type options = {
  max_passes : int;
  neighbours : int;
  max_evaluations : int;
  min_gain : float;
  ebf : Ebf.options;
}

let default_options =
  {
    max_passes = 3;
    neighbours = 4;
    max_evaluations = 400;
    min_gain = 1e-9;
    ebf = Ebf.default_options;
  }

type result = {
  tree : Tree.t;
  cost : float;
  initial_cost : float;
  evaluations : int;
  accepted : int;
  passes : int;
}

(* The move keeps node ids stable: sink [s] hangs under its private Steiner
   parent [p] whose other child is [t]. Detaching hands [t] to [p]'s old
   parent and re-uses [p] as the new Steiner point spliced into the edge
   above [u]:

        g                g                 pu            pu
        |                |                 |             |
        p       ->       t        and      u      ->     p
       / \                                               / \
      s   t                                             s   u

   Validity: p must not be the root, and u must lie outside {p, s, t}
   (u = t reproduces the original tree; excluded as a no-op) and not be
   the root. After detaching, subtree(p) = {p, s}, so u can never be
   inside it and the structure stays a tree. *)
let reattach parents zero ~s ~p ~t ~u =
  let n = Array.length parents in
  let g = parents.(p) in
  if g < 0 then None
  else if u = p || u = s || u = t || u = Tree.root then None
  else begin
    let parents' = Array.copy parents in
    let zero' = Array.copy zero in
    parents'.(t) <- g;
    parents'.(p) <- parents.(u);
    parents'.(u) <- p;
    (* p's edge is a fresh plain edge now; t keeps its own edge flag *)
    zero'.(p) <- false;
    ignore n;
    Some (parents', zero')
  end

let arrays_of_tree tree =
  let n = Tree.num_nodes tree in
  let parents = Array.init n (fun i -> Tree.parent tree i) in
  let zero = Array.init n (fun i -> if i = 0 then false else Tree.forced_zero tree i) in
  (parents, zero)

let evaluate options inst tree =
  let r = Ebf.solve ~options:options.ebf inst tree in
  if r.Ebf.status = Status.Optimal then Some r.Ebf.objective else None

(* geometric nearest sinks of each sink, by instance coordinates *)
let nearest_sinks (inst : Instance.t) k =
  let m = Array.length inst.Instance.sinks in
  Array.init m (fun i ->
      let dists =
        Array.init m (fun j -> (Point.dist inst.Instance.sinks.(i) inst.Instance.sinks.(j), j))
      in
      Array.sort compare dists;
      let out = ref [] in
      let count = ref 0 in
      Array.iter
        (fun (_, j) ->
          if j <> i && !count < k then begin
            out := j :: !out;
            incr count
          end)
        dists;
      List.rev !out)

let improve ?(options = default_options) inst tree0 =
  let sinks = Tree.sinks tree0 in
  let neighbour_table = nearest_sinks inst options.neighbours in
  let evaluations = ref 0 in
  let accepted = ref 0 in
  let eval tree =
    incr evaluations;
    evaluate options inst tree
  in
  match eval tree0 with
  | None ->
    {
      tree = tree0;
      cost = infinity;
      initial_cost = infinity;
      evaluations = !evaluations;
      accepted = 0;
      passes = 0;
    }
  | Some cost0 ->
    let best_tree = ref tree0 and best_cost = ref cost0 in
    let passes = ref 0 in
    let improved_in_pass = ref true in
    while
      !improved_in_pass
      && !passes < options.max_passes
      && !evaluations < options.max_evaluations
    do
      incr passes;
      improved_in_pass := false;
      Array.iteri
        (fun sink_idx s ->
          if !evaluations < options.max_evaluations then begin
            let tree = !best_tree in
            let p = Tree.parent tree s in
            let siblings =
              List.filter (fun c -> c <> s) (Tree.children tree p)
            in
            match siblings with
            | [ t ] when p <> Tree.root ->
              let parents, zero = arrays_of_tree tree in
              (* stop after the first accepted move for this sink: the
                 captured arrays describe the pre-move tree *)
              let moved = ref false in
              List.iter
                (fun nb_sink_idx ->
                  if (not !moved) && !evaluations < options.max_evaluations
                  then begin
                    (* candidate: splice p into the edge above the
                       neighbour sink's node *)
                    let u = (Tree.sinks tree).(nb_sink_idx) in
                    match reattach parents zero ~s ~p ~t ~u with
                    | None -> ()
                    | Some (parents', zero') -> (
                      match
                        Tree.create ~forced_zero:zero' ~parents:parents'
                          ~sinks:(Tree.sinks tree) ()
                      with
                      | exception Invalid_argument _ -> ()
                      | cand -> (
                        match eval cand with
                        | Some c
                          when c < !best_cost *. (1.0 -. options.min_gain) ->
                          best_tree := cand;
                          best_cost := c;
                          incr accepted;
                          moved := true;
                          improved_in_pass := true
                        | Some _ | None -> ()))
                  end)
                neighbour_table.(sink_idx)
            | _ -> ()
          end)
        sinks
    done;
    {
      tree = !best_tree;
      cost = !best_cost;
      initial_cost = cost0;
      evaluations = !evaluations;
      accepted = !accepted;
      passes = !passes;
    }
