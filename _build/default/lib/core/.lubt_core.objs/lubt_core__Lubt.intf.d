lib/core/lubt.mli: Ebf Embed Instance Lubt_lp Lubt_topo Routed
