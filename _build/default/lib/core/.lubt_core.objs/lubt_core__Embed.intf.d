lib/core/embed.mli: Instance Lubt_geom Lubt_topo Lubt_util
