lib/core/instance.ml: Array Format Lubt_geom
