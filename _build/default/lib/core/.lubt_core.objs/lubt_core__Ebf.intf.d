lib/core/ebf.mli: Instance Lubt_lp Lubt_topo Stdlib
