lib/core/instance.mli: Format Lubt_geom
