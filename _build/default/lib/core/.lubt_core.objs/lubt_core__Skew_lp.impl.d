lib/core/skew_lp.ml: Array Ebf Hashtbl Instance List Lubt_geom Lubt_lp Lubt_topo
