lib/core/svg.ml: Array Buffer List Lubt_geom Lubt_topo Printf Routed Snake String
