lib/core/elmore_ebf.ml: Array Ebf Instance List Lubt_delay Lubt_geom Lubt_lp Lubt_topo Lubt_util
