lib/core/skew_lp.mli: Ebf Instance Lubt_lp Lubt_topo
