lib/core/svg.mli: Routed
