lib/core/zeroskew.ml: Array Instance List Lubt_geom Lubt_topo Printf
