lib/core/snake.ml: Array List Lubt_geom Lubt_topo Routed
