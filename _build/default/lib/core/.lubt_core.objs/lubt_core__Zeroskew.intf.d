lib/core/zeroskew.mli: Instance Lubt_topo
