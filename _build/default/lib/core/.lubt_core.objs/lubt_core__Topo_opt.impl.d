lib/core/topo_opt.ml: Array Ebf Instance List Lubt_geom Lubt_lp Lubt_topo
