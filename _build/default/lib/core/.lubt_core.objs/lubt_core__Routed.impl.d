lib/core/routed.ml: Array Format Instance List Lubt_delay Lubt_geom Lubt_topo Lubt_util Printf
