lib/core/lubt.ml: Ebf Embed Lubt_lp Printf Routed
