lib/core/topo_opt.mli: Ebf Instance Lubt_topo
