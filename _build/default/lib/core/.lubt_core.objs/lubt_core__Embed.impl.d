lib/core/embed.ml: Array Instance List Lubt_geom Lubt_topo Lubt_util Printf
