lib/core/snake.mli: Lubt_geom Routed
