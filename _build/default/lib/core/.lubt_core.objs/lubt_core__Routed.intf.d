lib/core/routed.mli: Format Instance Lubt_geom Lubt_topo
