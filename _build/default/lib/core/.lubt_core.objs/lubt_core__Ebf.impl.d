lib/core/ebf.ml: Array Hashtbl Instance List Lubt_geom Lubt_lp Lubt_topo Printf
