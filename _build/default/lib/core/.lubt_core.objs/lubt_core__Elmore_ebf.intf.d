lib/core/elmore_ebf.mli: Instance Lubt_delay Lubt_lp Lubt_topo
