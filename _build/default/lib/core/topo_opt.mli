(** Topology improvement guided by the delay bounds (the paper's stated
    future work, Section 9: "better topology generation which is guided by
    both the lower and the upper bounds").

    Local search over topologies: a sink (together with its private
    Steiner parent) is detached and re-inserted onto the parent edge of a
    geometrically nearby sink; each candidate topology is evaluated
    exactly by re-solving the EBF linear program, so the move oracle *is*
    the paper's optimal embedder. Improving moves are kept, others
    discarded; the search stops after a fixed number of passes, when a
    pass yields no improvement, or when the LP-evaluation budget is
    exhausted.

    Topologies keep all sinks as leaves and all Steiner nodes binary, so
    Lemma 3.1 feasibility is preserved by construction. *)

type options = {
  max_passes : int;  (** sweeps over all sinks (default 3) *)
  neighbours : int;  (** reinsertion candidates per sink (default 4) *)
  max_evaluations : int;  (** LP solves allowed (default 400) *)
  min_gain : float;  (** relative improvement required to accept (1e-9) *)
  ebf : Ebf.options;
}

val default_options : options

type result = {
  tree : Lubt_topo.Tree.t;
  cost : float;
  initial_cost : float;
  evaluations : int;  (** LP solves spent *)
  accepted : int;  (** improving moves kept *)
  passes : int;
}

val improve : ?options:options -> Instance.t -> Lubt_topo.Tree.t -> result
(** Improves the topology for the given instance. The instance must be
    feasible for the initial topology (otherwise the initial LP fails and
    the input is returned unchanged with [cost = infinity]). *)
