(** Zero-skew closed form (Section 4.6).

    When [l_i = u_i = c] for every sink, the EBF constraints collapse to
    [n] linear equations solvable by one bottom-up DME-style pass — no LP
    needed. Each internal node balances its children's subtree delays,
    elongating the faster side when the delay difference exceeds the
    distance between the children's merging regions.

    Only defined for topologies in which every sink is a leaf. *)

type t = {
  lengths : float array;  (** balanced edge lengths, indexed by node id *)
  root_delay : float;
      (** the minimum common source-to-sink delay achievable for this
          topology (before any extra target-delay elongation) *)
}

val balance : Instance.t -> Lubt_topo.Tree.t -> t
(** Computes the minimum-cost zero-skew edge lengths for the topology,
    ignoring the instance bounds. The common delay achieved is
    [root_delay].

    @raise Invalid_argument if some sink is not a leaf. *)

val solve : ?target:float -> Instance.t -> Lubt_topo.Tree.t -> (t, string) result
(** Zero-skew lengths with common delay exactly [target] (default: the
    minimum achievable, i.e. [root_delay] of {!balance}). Fails when
    [target] is below the minimum. The extra delay is injected at the
    topmost edges, which never violates Steiner constraints. *)
