module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree

let of_routed ?(size = 800) ?(show_labels = false) (r : Routed.t) =
  let polylines = Snake.route_tree r in
  (* bounding box over everything drawn *)
  let xlo = ref infinity and xhi = ref neg_infinity in
  let ylo = ref infinity and yhi = ref neg_infinity in
  let see (p : Point.t) =
    if p.Point.x < !xlo then xlo := p.Point.x;
    if p.Point.x > !xhi then xhi := p.Point.x;
    if p.Point.y < !ylo then ylo := p.Point.y;
    if p.Point.y > !yhi then yhi := p.Point.y
  in
  Array.iter see r.Routed.positions;
  Array.iter (fun (_, poly) -> List.iter see poly) polylines;
  let span = max (!xhi -. !xlo) (!yhi -. !ylo) in
  let span = if span <= 0.0 then 1.0 else span in
  let margin = 0.05 *. span in
  let scale = float_of_int size /. (span +. (2.0 *. margin)) in
  (* SVG's y axis points down; flip so the plot reads like the plane *)
  let sx x = (x -. !xlo +. margin) *. scale in
  let sy y = float_of_int size -. ((y -. !ylo +. margin) *. scale) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       size size size size);
  Buffer.add_string buf
    "<rect width=\"100%\" height=\"100%\" fill=\"#fcfcf7\"/>\n";
  (* wires *)
  Array.iter
    (fun (edge, poly) ->
      let elongated = Routed.edge_slack r edge > 1e-9 *. (1.0 +. r.Routed.lengths.(edge)) in
      let points =
        List.map (fun (p : Point.t) -> Printf.sprintf "%.2f,%.2f" (sx p.Point.x) (sy p.Point.y)) poly
        |> String.concat " "
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
            stroke-width=\"1.5\"%s/>\n"
           points
           (if elongated then "#d95f02" else "#2c7fb8")
           (if elongated then " stroke-dasharray=\"4 2\"" else "")))
    polylines;
  (* nodes *)
  let dot cx cy radius fill shape =
    match shape with
    | `Circle ->
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.1f\" fill=\"%s\"/>\n" cx cy
           radius fill)
    | `Square ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.1f\" height=\"%.1f\" \
            fill=\"%s\"/>\n"
           (cx -. radius) (cy -. radius) (2.0 *. radius) (2.0 *. radius) fill)
  in
  for v = 0 to Tree.num_nodes r.Routed.tree - 1 do
    let p = r.Routed.positions.(v) in
    let cx = sx p.Point.x and cy = sy p.Point.y in
    if v = Tree.root then dot cx cy 6.0 "#000000" `Circle
    else if Tree.is_sink r.Routed.tree v then dot cx cy 4.0 "#e41a1c" `Square
    else dot cx cy 2.0 "#555555" `Circle;
    if show_labels then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.2f\" y=\"%.2f\" font-size=\"10\" fill=\"#333\">%d</text>\n"
           (cx +. 5.0) (cy -. 5.0) v)
  done;
  (* legend *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"8\" y=\"16\" font-size=\"12\" fill=\"#333\">cost %.1f, skew \
        %.2f, %d elongated edges</text>\n"
       (Routed.cost r) (Routed.skew r) (Routed.num_elongated r));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ?size ?show_labels path r =
  let oc = open_out path in
  output_string oc (of_routed ?size ?show_labels r);
  close_out oc
