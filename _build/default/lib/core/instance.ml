module Point = Lubt_geom.Point

type t = {
  sinks : Point.t array;
  source : Point.t option;
  lower : float array;
  upper : float array;
}

let create ?source ~sinks ~lower ~upper () =
  let m = Array.length sinks in
  if m = 0 then invalid_arg "Instance.create: no sinks";
  if Array.length lower <> m || Array.length upper <> m then
    invalid_arg "Instance.create: bounds length mismatch";
  for i = 0 to m - 1 do
    if not (0.0 <= lower.(i) && lower.(i) <= upper.(i)) then
      invalid_arg "Instance.create: need 0 <= lower <= upper"
  done;
  { sinks; source; lower = Array.copy lower; upper = Array.copy upper }

let uniform_bounds ?source ~sinks ~lower ~upper () =
  let m = Array.length sinks in
  create ?source ~sinks ~lower:(Array.make m lower) ~upper:(Array.make m upper)
    ()

let num_sinks t = Array.length t.sinks

(* In rotated coordinates the Manhattan diameter of a point set is the
   larger of the two coordinate ranges. *)
let diameter t =
  let ulo = ref infinity and uhi = ref neg_infinity in
  let vlo = ref infinity and vhi = ref neg_infinity in
  Array.iter
    (fun p ->
      let u, v = Point.to_rotated p in
      if u < !ulo then ulo := u;
      if u > !uhi then uhi := u;
      if v < !vlo then vlo := v;
      if v > !vhi then vhi := v)
    t.sinks;
  max (!uhi -. !ulo) (!vhi -. !vlo)

let radius t =
  match t.source with
  | None -> diameter t /. 2.0
  | Some src ->
    Array.fold_left (fun acc p -> max acc (Point.dist src p)) 0.0 t.sinks

let with_bounds t ~lower ~upper =
  create ?source:t.source ~sinks:t.sinks ~lower ~upper ()

let with_normalized_bounds t ~lower ~upper =
  let r = radius t in
  let m = num_sinks t in
  with_bounds t ~lower:(Array.make m (lower *. r))
    ~upper:(Array.make m (upper *. r))

let bounds_admissible t =
  let r = radius t in
  let ok = ref true in
  Array.iteri
    (fun i p ->
      let floor_u =
        match t.source with Some src -> Point.dist src p | None -> r
      in
      if t.upper.(i) < floor_u -. 1e-9 then ok := false)
    t.sinks;
  !ok

let pp fmt t =
  Format.fprintf fmt "instance(%d sinks%s, radius %g)" (num_sinks t)
    (match t.source with Some _ -> ", source fixed" | None -> "")
    (radius t)
