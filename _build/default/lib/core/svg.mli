(** SVG rendering of embedded routing trees.

    Wires are drawn as their snaked rectilinear polylines (see {!Snake}),
    so elongated edges are visible as detours; sinks, Steiner points and
    the source get distinct markers. Handy for eyeballing solutions:

    {[ Svg.write "tree.svg" routed ]} *)

val of_routed : ?size:int -> ?show_labels:bool -> Routed.t -> string
(** Renders to an SVG document string. [size] is the pixel width/height of
    the square canvas (default 800); [show_labels] adds node-id text
    labels (default false). *)

val write : ?size:int -> ?show_labels:bool -> string -> Routed.t -> unit
