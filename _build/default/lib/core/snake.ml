module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree

type polyline = Point.t list

let length = function
  | [] | [ _ ] -> 0.0
  | first :: rest ->
    let acc = ref 0.0 and prev = ref first in
    List.iter
      (fun p ->
        acc := !acc +. Point.dist !prev p;
        prev := p)
      rest;
    !acc

(* The base route is the L-shape p -> (q.x, p.y) -> q. Surplus wire is
   absorbed by lifting the horizontal leg to a detour line: p rises by h,
   crosses, and descends, adding exactly 2h. The detour goes to the side
   opposite q's vertical direction so the descending segment cannot overlap
   the final vertical leg. When the points share an x column the detour is
   horizontal instead. *)
let route p q len =
  let d = Point.dist p q in
  let extra = max 0.0 (len -. d) in
  if extra <= 0.0 then
    if p.Point.x = q.Point.x || p.Point.y = q.Point.y then [ p; q ]
    else [ p; Point.make q.Point.x p.Point.y; q ]
  else begin
    let h = extra /. 2.0 in
    if p.Point.x <> q.Point.x then begin
      let dir = if q.Point.y > p.Point.y then -1.0 else 1.0 in
      let ylift = p.Point.y +. (dir *. h) in
      [ p;
        Point.make p.Point.x ylift;
        Point.make q.Point.x ylift;
        Point.make q.Point.x p.Point.y;
        q ]
    end
    else begin
      (* same column: detour sideways *)
      let dir = 1.0 in
      let xlift = p.Point.x +. (dir *. h) in
      [ p;
        Point.make xlift p.Point.y;
        Point.make xlift q.Point.y;
        q ]
    end
  end

let route_tree (r : Routed.t) =
  let n = Tree.num_nodes r.Routed.tree in
  Array.init (n - 1) (fun k ->
      let i = k + 1 in
      let p = r.Routed.positions.(i) in
      let q = r.Routed.positions.(Tree.parent r.Routed.tree i) in
      (i, route p q r.Routed.lengths.(i)))
