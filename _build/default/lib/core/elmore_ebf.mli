(** EBF under the Elmore delay model (Section 7).

    The delay constraints become quadratic in the edge lengths, so the
    problem is no longer an LP; the paper notes it is convex when all lower
    bounds are zero and proposes general nonlinear programming otherwise.
    This module implements a sequential linear programming (SLP) heuristic:
    linearise the Elmore delays around the current point, add a trust
    region, solve the LP, and accept/shrink based on an exact-penalty merit
    function. With [l_i = 0] the feasible set is convex and SLP converges
    to the optimum; with positive lower bounds it is a local method, as in
    the paper. *)

type options = {
  max_outer : int;  (** SLP iterations (default 60) *)
  initial_trust : float;  (** trust-region radius / instance radius *)
  tol : float;  (** relative convergence tolerance *)
  penalty : float;  (** merit-function weight on constraint violation *)
}

val default_options : options

type status = Converged | Stalled | Lp_failure of Lubt_lp.Status.t

type result = {
  status : status;
  lengths : float array;
  cost : float;
  sink_delays : float array;  (** Elmore delays at [lengths] *)
  max_violation : float;  (** residual bound violation (absolute) *)
  outer_iterations : int;
}

val solve :
  ?options:options ->
  wire:Lubt_delay.Elmore.wire ->
  loads:float array ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  result
(** [loads] are the sink load capacitances in instance sink order. The
    instance bounds are interpreted as Elmore-delay bounds (absolute, in
    the wire's time units). *)
