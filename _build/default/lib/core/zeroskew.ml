module Point = Lubt_geom.Point
module Trr = Lubt_geom.Trr
module Tree = Lubt_topo.Tree

type t = { lengths : float array; root_delay : float }

(* Since wire elongation is allowed, every point of a merging region
   realises the subtree's common delay exactly; merging two regions with
   delays (da, db) therefore minimises ea + eb subject to
   da + ea = db + eb, ea, eb >= 0, ea + eb >= dist(Ra, Rb). *)
let merge_lengths da db d =
  if abs_float (da -. db) <= d then
    let ea = (d +. db -. da) /. 2.0 in
    (ea, d -. ea)
  else if da < db then (db -. da, 0.0)
  else (0.0, da -. db)

let intersect_padded ra ea rb eb d =
  match Trr.intersect (Trr.expand ra ea) (Trr.expand rb eb) with
  | Some r -> r
  | None -> (
    (* regions that only touch can miss by a few ulps *)
    let pad = 1e-9 *. (1.0 +. d) in
    match Trr.intersect (Trr.expand ra (ea +. pad)) (Trr.expand rb (eb +. pad)) with
    | Some r -> r
    | None -> assert false)

let balance (inst : Instance.t) tree =
  if not (Tree.all_sinks_are_leaves tree) then
    invalid_arg "Zeroskew.balance: every sink must be a leaf";
  let n = Tree.num_nodes tree in
  let lengths = Array.make n 0.0 in
  let region = Array.make n (Trr.of_point (Point.make 0.0 0.0)) in
  let delay = Array.make n 0.0 in
  let post = Tree.postorder tree in
  Array.iter
    (fun v ->
      match Tree.children tree v with
      | [] ->
        if Tree.is_sink tree v then begin
          region.(v) <- Trr.of_point inst.Instance.sinks.(Tree.sink_index tree v);
          delay.(v) <- 0.0
        end
        else invalid_arg "Zeroskew.balance: leaf Steiner point"
      | [ c ] ->
        (* chain node: pass through with a zero-length edge *)
        lengths.(c) <- 0.0;
        region.(v) <- region.(c);
        delay.(v) <- delay.(c)
      | [ a; b ] -> (
        let da = delay.(a) and db = delay.(b) in
        match (v, inst.Instance.source) with
        | 0, Some src ->
          (* the root is pinned at the source: balance each child's region
             against the point directly (cheaper than merging the children
             first and then stretching both edges to reach the source) *)
          let dist_a = Trr.dist_to_point region.(a) src in
          let dist_b = Trr.dist_to_point region.(b) src in
          let ea = max dist_a (dist_b +. db -. da) in
          let eb = ea +. da -. db in
          lengths.(a) <- ea;
          lengths.(b) <- eb;
          region.(v) <- Trr.of_point src;
          delay.(v) <- da +. ea
        | _ ->
          let d = Trr.distance region.(a) region.(b) in
          let ea, eb = merge_lengths da db d in
          lengths.(a) <- ea;
          lengths.(b) <- eb;
          region.(v) <- intersect_padded region.(a) ea region.(b) eb d;
          delay.(v) <- da +. ea)
      | _ :: _ :: _ ->
        invalid_arg "Zeroskew.balance: topology must be binary (binarise first)")
    post;
  let root_delay =
    match inst.Instance.source with
    | None -> delay.(Tree.root)
    | Some src ->
      let gap = Trr.dist_to_point region.(Tree.root) src in
      delay.(Tree.root) +. gap
  in
  (* a fixed source above a single-child (or chain) root still has to reach
     the root's merging region: fold that wire into the root's child edges *)
  (match inst.Instance.source with
  | None -> ()
  | Some src ->
    let gap = Trr.dist_to_point region.(Tree.root) src in
    if gap > 0.0 then
      List.iter
        (fun c -> lengths.(c) <- lengths.(c) +. gap)
        (Tree.children tree Tree.root));
  { lengths; root_delay }

let solve ?target inst tree =
  let base = balance inst tree in
  let target = match target with Some t -> t | None -> base.root_delay in
  if target < base.root_delay -. (1e-9 *. (1.0 +. base.root_delay)) then
    Error
      (Printf.sprintf
         "zero-skew target delay %g below the minimum %g achievable for this \
          topology"
         target base.root_delay)
  else begin
    let extra = max 0.0 (target -. base.root_delay) in
    let lengths = Array.copy base.lengths in
    if extra > 0.0 then
      (* every root-to-sink path crosses exactly one root child edge, so
         adding the slack there raises all delays uniformly *)
      List.iter
        (fun c -> lengths.(c) <- lengths.(c) +. extra)
        (Tree.children tree Tree.root);
    Ok { lengths; root_delay = target }
  end
