(** Materialisation of elongated edges as rectilinear polylines.

    The EBF assigns each edge a length that may exceed the Manhattan
    distance between its endpoints (wire elongation, the paper's mechanism
    for meeting lower delay bounds without buffers). This module produces a
    concrete rectilinear path of exactly the prescribed length, "snaking"
    the surplus. *)

type polyline = Lubt_geom.Point.t list
(** At least two points; consecutive points differ in exactly one
    coordinate (rectilinear segments). *)

val length : polyline -> float

val route : Lubt_geom.Point.t -> Lubt_geom.Point.t -> float -> polyline
(** [route p q len] returns a rectilinear polyline from [p] to [q] of total
    length [len]. Requires [len >= Point.dist p q] (up to roundoff; the
    result's length always equals [max len (dist p q)]). The surplus is
    absorbed by a single square detour placed on the side away from the
    L-bend, so the path never overlaps itself. *)

val route_tree : Routed.t -> (int * polyline) array
(** One polyline per edge of an embedded tree (edge id, path from the node
    to its parent). Degenerate edges produce two coincident points. *)
