type t = { ulo : float; uhi : float; vlo : float; vhi : float }

let make ~ulo ~uhi ~vlo ~vhi =
  assert (ulo <= uhi && vlo <= vhi);
  { ulo; uhi; vlo; vhi }

let of_point p =
  let u, v = Point.to_rotated p in
  { ulo = u; uhi = u; vlo = v; vhi = v }

let of_points points =
  match points with
  | [] -> invalid_arg "Trr.of_points: empty list"
  | first :: rest ->
    let u0, v0 = Point.to_rotated first in
    let box = ref { ulo = u0; uhi = u0; vlo = v0; vhi = v0 } in
    let extend p =
      let u, v = Point.to_rotated p in
      let b = !box in
      box :=
        { ulo = min b.ulo u; uhi = max b.uhi u;
          vlo = min b.vlo v; vhi = max b.vhi v }
    in
    List.iter extend rest;
    !box

let extents t = (t.uhi -. t.ulo, t.vhi -. t.vlo)

let is_point ?(eps = 1e-9) t =
  let eu, ev = extents t in
  eu <= eps && ev <= eps

let width t =
  let eu, ev = extents t in
  min eu ev

let center t = Point.of_rotated ((t.ulo +. t.uhi) /. 2.0) ((t.vlo +. t.vhi) /. 2.0)

let contains ?(eps = 1e-9) t p =
  let u, v = Point.to_rotated p in
  u >= t.ulo -. eps && u <= t.uhi +. eps && v >= t.vlo -. eps && v <= t.vhi +. eps

let subset ?(eps = 1e-9) a b =
  a.ulo >= b.ulo -. eps && a.uhi <= b.uhi +. eps
  && a.vlo >= b.vlo -. eps && a.vhi <= b.vhi +. eps

let equal ?(eps = 1e-9) a b = subset ~eps a b && subset ~eps b a

let intersect a b =
  let ulo = max a.ulo b.ulo and uhi = min a.uhi b.uhi in
  let vlo = max a.vlo b.vlo and vhi = min a.vhi b.vhi in
  if ulo <= uhi && vlo <= vhi then Some { ulo; uhi; vlo; vhi } else None

let intersect_all = function
  | [] -> invalid_arg "Trr.intersect_all: empty list"
  | first :: rest ->
    let step acc t =
      match acc with None -> None | Some acc -> intersect acc t
    in
    List.fold_left step (Some first) rest

let expand t r =
  assert (r >= 0.0);
  { ulo = t.ulo -. r; uhi = t.uhi +. r; vlo = t.vlo -. r; vhi = t.vhi +. r }

(* Distance between 1-D intervals; 0 when they overlap. *)
let interval_gap alo ahi blo bhi = max 0.0 (max (blo -. ahi) (alo -. bhi))

let distance a b =
  let gu = interval_gap a.ulo a.uhi b.ulo b.uhi in
  let gv = interval_gap a.vlo a.vhi b.vlo b.vhi in
  max gu gv

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let closest_point t p =
  let u, v = Point.to_rotated p in
  Point.of_rotated (clamp t.ulo t.uhi u) (clamp t.vlo t.vhi v)

let dist_to_point t p = Point.dist (closest_point t p) p

(* Per axis: if the intervals overlap, both points take the midpoint of the
   overlap; otherwise each takes its facing endpoint, realising the gap. *)
let closest_pair a b =
  let axis alo ahi blo bhi =
    let lo = max alo blo and hi = min ahi bhi in
    if lo <= hi then
      let m = (lo +. hi) /. 2.0 in
      (m, m)
    else if blo > ahi then (ahi, blo)
    else (alo, bhi)
  in
  let ua, ub = axis a.ulo a.uhi b.ulo b.uhi in
  let va, vb = axis a.vlo a.vhi b.vlo b.vhi in
  (Point.of_rotated ua va, Point.of_rotated ub vb)

let corners t =
  [ Point.of_rotated t.ulo t.vlo;
    Point.of_rotated t.ulo t.vhi;
    Point.of_rotated t.uhi t.vlo;
    Point.of_rotated t.uhi t.vhi ]

let sample rng t =
  let pick lo hi =
    if hi > lo then Lubt_util.Prng.float_range rng lo hi else lo
  in
  Point.of_rotated (pick t.ulo t.uhi) (pick t.vlo t.vhi)

let pp fmt t =
  Format.fprintf fmt "TRR[u:%g..%g v:%g..%g]" t.ulo t.uhi t.vlo t.vhi
