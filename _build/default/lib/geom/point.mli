(** Points in the Manhattan plane. *)

type t = { x : float; y : float }

val make : float -> float -> t

val dist : t -> t -> float
(** Manhattan (L1) distance. *)

val dist_euclid : t -> t -> float
(** Euclidean (L2) distance; used only by the Euclidean counter-example of
    Section 4.7 and by diagnostics. *)

val midpoint : t -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Coordinate-wise comparison with absolute tolerance (default 1e-9). *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Rotated coordinates [u = x + y], [v = x - y], in which the Manhattan
    metric becomes the Chebyshev (L-infinity) metric. All TRR arithmetic
    happens in this frame. *)

val to_rotated : t -> float * float

val of_rotated : float -> float -> t
