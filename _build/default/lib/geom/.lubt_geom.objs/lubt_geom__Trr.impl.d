lib/geom/trr.ml: Format List Lubt_util Point
