lib/geom/trr.mli: Format Lubt_util Point
