(** Tilted Rectangular Regions (TRRs).

    A TRR is a rectangle rotated 45 degrees in the Manhattan plane (Section 5
    of the paper). In rotated coordinates [u = x + y], [v = x - y] the
    Manhattan metric becomes Chebyshev and a TRR is an axis-aligned box
    [\[ulo, uhi\] x \[vlo, vhi\]]. Intersections, expansions by a radius, and
    box-to-box distances then reduce to interval arithmetic, and the Helly
    property of Lemma 10.1 holds because boxes are products of intervals.

    Degenerate TRRs (segments and single points) are first-class: the paper
    relies on them (a sink is the point TRR [of_point]). *)

type t = private { ulo : float; uhi : float; vlo : float; vhi : float }

val make : ulo:float -> uhi:float -> vlo:float -> vhi:float -> t
(** Requires [ulo <= uhi] and [vlo <= vhi]. *)

val of_point : Point.t -> t
(** The singleton TRR [{p}]. *)

val of_points : Point.t list -> t
(** Smallest TRR containing all the points. The list must be nonempty. *)

val is_point : ?eps:float -> t -> bool

val extents : t -> float * float
(** Side extents [(uhi - ulo, vhi - vlo)] in rotated coordinates. *)

val width : t -> float
(** Smaller of the two extents; [0] for segments and points (paper: "the
    width of a TRR is the length of the smaller sides"). *)

val center : t -> Point.t

val contains : ?eps:float -> t -> Point.t -> bool

val subset : ?eps:float -> t -> t -> bool
(** [subset a b] is true when [a] is contained in [b]. *)

val equal : ?eps:float -> t -> t -> bool

val intersect : t -> t -> t option
(** Intersection of two TRRs, which is itself a TRR (Figure 5-(c)); [None]
    when they are disjoint. *)

val intersect_all : t list -> t option
(** Intersection of a nonempty list of TRRs. *)

val expand : t -> float -> t
(** [expand t r] is [TRR(t, r)]: all points within Manhattan distance [r]
    of [t] (Figure 5-(b)). Requires [r >= 0]. *)

val distance : t -> t -> float
(** Minimum Manhattan distance between two TRRs; [0] when they intersect. *)

val dist_to_point : t -> Point.t -> float

val closest_point : t -> Point.t -> Point.t
(** The point of the TRR closest (in Manhattan distance) to the argument.
    When several points qualify, an arbitrary canonical one is returned. *)

val closest_pair : t -> t -> Point.t * Point.t
(** [(p, q)] with [p] in the first TRR, [q] in the second, and
    [Point.dist p q = distance t1 t2]. *)

val corners : t -> Point.t list
(** The four corners in the (x, y) plane (duplicates possible for
    degenerate TRRs). *)

val sample : Lubt_util.Prng.t -> t -> Point.t
(** A uniform random point of the TRR (used by property tests and by the
    randomised placement policies). *)

val pp : Format.formatter -> t -> unit
