type t = { x : float; y : float }

let make x y = { x; y }

let dist p q = abs_float (p.x -. q.x) +. abs_float (p.y -. q.y)

let dist_euclid p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let midpoint p q = { x = (p.x +. q.x) /. 2.0; y = (p.y +. q.y) /. 2.0 }

let equal ?(eps = 1e-9) p q =
  abs_float (p.x -. q.x) <= eps && abs_float (p.y -. q.y) <= eps

let add p q = { x = p.x +. q.x; y = p.y +. q.y }

let sub p q = { x = p.x -. q.x; y = p.y -. q.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let pp fmt p = Format.fprintf fmt "(%g, %g)" p.x p.y

let to_string p = Format.asprintf "%a" pp p

let to_rotated p = (p.x +. p.y, p.x -. p.y)

let of_rotated u v = { x = (u +. v) /. 2.0; y = (u -. v) /. 2.0 }
