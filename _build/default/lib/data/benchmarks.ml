module Point = Lubt_geom.Point
module Prng = Lubt_util.Prng
module Instance = Lubt_core.Instance

type size = Tiny | Scaled | Full

type distribution = Uniform | Clustered

type spec = {
  name : string;
  num_sinks : int;
  extent : float;
  seed : int;
  distribution : distribution;
}

(* Paper sizes: prim1 = 269, prim2 = 603 (MCNC), r1 = 267, r3 = 862
   (Tsay). Extents follow the originals' rough scale: the prim chips are
   ~10x10 mm in 1990s units, the r benchmarks an order of magnitude
   larger — only relative costs matter. *)
let specs = function
  | Full ->
    [
      { name = "prim1s"; num_sinks = 269; extent = 10_000.0; seed = 1069; distribution = Uniform };
      { name = "prim2s"; num_sinks = 603; extent = 10_000.0; seed = 2069; distribution = Uniform };
      { name = "r1s"; num_sinks = 267; extent = 100_000.0; seed = 3069; distribution = Uniform };
      { name = "r3s"; num_sinks = 862; extent = 100_000.0; seed = 4069; distribution = Uniform };
    ]
  | Scaled ->
    [
      { name = "prim1s"; num_sinks = 96; extent = 10_000.0; seed = 1069; distribution = Uniform };
      { name = "prim2s"; num_sinks = 160; extent = 10_000.0; seed = 2069; distribution = Uniform };
      { name = "r1s"; num_sinks = 120; extent = 100_000.0; seed = 3069; distribution = Uniform };
      { name = "r3s"; num_sinks = 220; extent = 100_000.0; seed = 4069; distribution = Uniform };
    ]
  | Tiny ->
    [
      { name = "prim1s"; num_sinks = 24; extent = 10_000.0; seed = 1069; distribution = Uniform };
      { name = "prim2s"; num_sinks = 40; extent = 10_000.0; seed = 2069; distribution = Uniform };
      { name = "r1s"; num_sinks = 30; extent = 100_000.0; seed = 3069; distribution = Uniform };
      { name = "r3s"; num_sinks = 56; extent = 100_000.0; seed = 4069; distribution = Uniform };
    ]

let clustered size =
  List.map
    (fun s -> { s with name = s.name ^ "-c"; distribution = Clustered })
    (specs size)

let find size name =
  let all = specs size @ clustered size in
  match List.find_opt (fun s -> s.name = name) all with
  | Some s -> s
  | None -> raise Not_found

(* Clustered fields mimic real clock pins: a handful of macro regions,
   each holding a tight group of flip-flops. *)
let sinks spec =
  let rng = Prng.create spec.seed in
  match spec.distribution with
  | Uniform ->
    Array.init spec.num_sinks (fun _ ->
        let x = Prng.float rng spec.extent in
        let y = Prng.float rng spec.extent in
        Point.make x y)
  | Clustered ->
    let num_clusters = max 3 (spec.num_sinks / 16) in
    let centres =
      Array.init num_clusters (fun _ ->
          (Prng.float rng spec.extent, Prng.float rng spec.extent))
    in
    let sigma = spec.extent /. 25.0 in
    Array.init spec.num_sinks (fun k ->
        let cx, cy = centres.(k mod num_clusters) in
        let jitter () = Prng.float_range rng (-.sigma) sigma in
        let clamp v = Lubt_util.Stats.clamp 0.0 spec.extent v in
        Point.make (clamp (cx +. jitter () +. jitter ()))
          (clamp (cy +. jitter () +. jitter ())))

let source spec = Point.make (spec.extent /. 2.0) (spec.extent /. 2.0)

let instance ?(lower = 0.0) ?(upper = infinity) spec =
  let s = sinks spec in
  let src = source spec in
  let base = Instance.uniform_bounds ~source:src ~sinks:s ~lower:0.0 ~upper:infinity () in
  let r = Instance.radius base in
  let u = if upper = infinity then infinity else upper *. r in
  Instance.uniform_bounds ~source:src ~sinks:s ~lower:(lower *. r) ~upper:u ()
