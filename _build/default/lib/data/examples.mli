(** The paper's worked examples as ready-made fixtures. *)

val five_point : unit -> Lubt_core.Instance.t * Lubt_topo.Tree.t
(** Section 4.5 / Figure 3: five sinks, eight edges, bounds [4, 6], source
    position not given. The paper does not print the coordinates, so a
    reconstructed layout with the exact topology of the figure is used. *)

val figure1_instance : unit -> Lubt_core.Instance.t
(** Figure 1: source at the origin, two sinks 3 units away on opposite
    sides, all bounds [0, 6]. *)

val figure1_chain : unit -> Lubt_topo.Tree.t
(** Topology (a): the source chains through sink 1 to sink 2 — no LUBT
    exists with the Figure 1 bounds. *)

val figure1_star : unit -> Lubt_topo.Tree.t
(** Topology (b)/(c): both sinks hang off a Steiner point — feasible. *)

val unit_triangle : unit -> Lubt_geom.Point.t array
(** Figure 4: the vertices of a unit equilateral triangle (the Euclidean
    counter-example of Section 4.7). *)
