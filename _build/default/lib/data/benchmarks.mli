(** Synthetic stand-ins for the paper's benchmark sink sets.

    The paper evaluates on MCNC [prim1]/[prim2] (269 and 603 sinks, Jackson
    et al. DAC'90) and Tsay's [r1]/[r3] (267 and 862 sinks, ICCAD'91).
    Those coordinate files are not redistributable, so this module
    generates seeded uniform sink fields of matching sizes — every quantity
    the experiments report (cost vs. skew bound, LUBT vs. baseline ratios,
    cost vs. bound windows) is a relative shape over a fixed point set, and
    uniform fields reproduce those shapes (see DESIGN.md, Substitutions).

    [`Scaled] instances (the default) shrink the sink counts so the whole
    experiment suite runs in minutes; [`Full] restores the paper's sizes; [`Tiny] is for smoke tests and
    micro-benchmarks. *)

type size = Tiny | Scaled | Full

type distribution = Uniform | Clustered

type spec = {
  name : string;
  num_sinks : int;
  extent : float;  (** square chip side length *)
  seed : int;
  distribution : distribution;
}

val specs : size -> spec list
(** The four benchmarks, paper order: prim1s, prim2s, r1s, r3s. *)

val clustered : size -> spec list
(** Clustered-sink variants ("prim1s-c", ...): a handful of macro regions
    each holding a tight group of flip-flops, closer to real clock-pin
    distributions than uniform fields. Zero-skew balancing is much more
    expensive relative to Steiner routing on these. *)

val find : size -> string -> spec
(** Lookup by name ("prim1s", ..., including the "-c" clustered variants).
    @raise Not_found for unknown names. *)

val sinks : spec -> Lubt_geom.Point.t array
(** Deterministic sink field for the spec. *)

val source : spec -> Lubt_geom.Point.t
(** Source location: the chip centre (clock pads are central in the
    original benchmarks). *)

val instance :
  ?lower:float -> ?upper:float -> spec -> Lubt_core.Instance.t
(** Instance with bounds given as fractions of the radius
    (default [lower = 0.], [upper = infinity]). *)
