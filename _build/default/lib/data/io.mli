(** Plain-text persistence for instances and topologies.

    Instance format (one record per line, '#' comments allowed):
    {v
    source <x> <y>          (optional, at most once)
    sink <x> <y> <l> <u>    (one per sink; 'inf' allowed for <u>)
    v}

    Topology format:
    {v
    nodes <n>
    edge <child> <parent> [zero]   (one per non-root node)
    sink <node-id>                 (one per sink)
    v} *)

val write_instance : string -> Lubt_core.Instance.t -> unit

val read_instance : string -> (Lubt_core.Instance.t, string) result

val write_tree : string -> Lubt_topo.Tree.t -> unit

val read_tree : string -> (Lubt_topo.Tree.t, string) result

val instance_to_string : Lubt_core.Instance.t -> string

val instance_of_string : string -> (Lubt_core.Instance.t, string) result

val tree_to_string : Lubt_topo.Tree.t -> string

val tree_of_string : string -> (Lubt_topo.Tree.t, string) result
