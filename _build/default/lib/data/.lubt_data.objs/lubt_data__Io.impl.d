lib/data/io.ml: Array Buffer List Lubt_core Lubt_geom Lubt_topo Printf String
