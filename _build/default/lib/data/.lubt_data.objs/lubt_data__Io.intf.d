lib/data/io.mli: Lubt_core Lubt_topo
