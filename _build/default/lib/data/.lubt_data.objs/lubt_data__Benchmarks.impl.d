lib/data/benchmarks.ml: Array List Lubt_core Lubt_geom Lubt_util
