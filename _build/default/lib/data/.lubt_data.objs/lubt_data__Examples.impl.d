lib/data/examples.ml: Lubt_core Lubt_geom Lubt_topo
