lib/data/benchmarks.mli: Lubt_core Lubt_geom
