lib/data/examples.mli: Lubt_core Lubt_geom Lubt_topo
