module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance

let pt = Point.make

let five_point () =
  let sinks = [| pt 0.0 4.0; pt 3.0 6.0; pt 6.0 5.0; pt 6.0 3.0; pt 1.0 0.0 |] in
  let inst = Instance.uniform_bounds ~sinks ~lower:4.0 ~upper:6.0 () in
  (* root s0 children {s6, s8}; s6 -> {s1, s5}; s8 -> {s2, s7};
     s7 -> {s3, s4}: the delay expressions then match Section 4.5:
     delay(s1) = e1+e6, delay(s2) = e2+e8, delay(s3) = e3+e7+e8, ... *)
  let tree =
    Tree.create ~parents:[| -1; 6; 8; 7; 7; 6; 0; 8; 0 |]
      ~sinks:[| 1; 2; 3; 4; 5 |] ()
  in
  (inst, tree)

let figure1_instance () =
  let sinks = [| pt 3.0 0.0; pt (-3.0) 0.0 |] in
  Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0 ~upper:6.0 ()

let figure1_chain () = Tree.create ~parents:[| -1; 0; 1 |] ~sinks:[| 1; 2 |] ()

let figure1_star () =
  Tree.create ~parents:[| -1; 3; 3; 0 |] ~sinks:[| 1; 2 |] ()

let unit_triangle () =
  [| pt 0.0 0.0; pt 1.0 0.0; pt 0.5 (sqrt 3.0 /. 2.0) |]
