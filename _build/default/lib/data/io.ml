module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance

let float_str f = if f = infinity then "inf" else Printf.sprintf "%.17g" f

let parse_float s =
  match s with
  | "inf" -> Some infinity
  | _ -> float_of_string_opt s

let instance_to_string (inst : Instance.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# LUBT instance\n";
  (match inst.Instance.source with
  | Some src ->
    Buffer.add_string buf
      (Printf.sprintf "source %.17g %.17g\n" src.Point.x src.Point.y)
  | None -> ());
  Array.iteri
    (fun k p ->
      Buffer.add_string buf
        (Printf.sprintf "sink %.17g %.17g %.17g %s\n" p.Point.x p.Point.y
           inst.Instance.lower.(k)
           (float_str inst.Instance.upper.(k))))
    inst.Instance.sinks;
  Buffer.contents buf

let tokenize text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           Some
             (String.split_on_char ' ' line
             |> List.filter (fun s -> s <> "")))

let instance_of_string text =
  let lines = tokenize text in
  let source = ref None in
  let sinks = ref [] in
  let error = ref None in
  List.iter
    (fun tokens ->
      if !error = None then
        match tokens with
        | [ "source"; xs; ys ] -> (
          match (parse_float xs, parse_float ys) with
          | Some x, Some y ->
            if !source <> None then error := Some "duplicate source line"
            else source := Some (Point.make x y)
          | _ -> error := Some "bad source coordinates")
        | [ "sink"; xs; ys; ls; us ] -> (
          match (parse_float xs, parse_float ys, parse_float ls, parse_float us)
          with
          | Some x, Some y, Some l, Some u ->
            sinks := (Point.make x y, l, u) :: !sinks
          | _ -> error := Some "bad sink line")
        | kw :: _ -> error := Some (Printf.sprintf "unknown record %S" kw)
        | [] -> ())
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
    let entries = Array.of_list (List.rev !sinks) in
    if Array.length entries = 0 then Error "no sinks"
    else
      let sinks = Array.map (fun (p, _, _) -> p) entries in
      let lower = Array.map (fun (_, l, _) -> l) entries in
      let upper = Array.map (fun (_, _, u) -> u) entries in
      match Instance.create ?source:!source ~sinks ~lower ~upper () with
      | inst -> Ok inst
      | exception Invalid_argument msg -> Error msg)

let tree_to_string tree =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# LUBT topology\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Tree.num_nodes tree));
  for i = 1 to Tree.num_nodes tree - 1 do
    Buffer.add_string buf
      (Printf.sprintf "edge %d %d%s\n" i (Tree.parent tree i)
         (if Tree.forced_zero tree i then " zero" else ""))
  done;
  Array.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "sink %d\n" s))
    (Tree.sinks tree);
  Buffer.contents buf

let tree_of_string text =
  let lines = tokenize text in
  let n = ref (-1) in
  let edges = ref [] in
  let sinks = ref [] in
  let error = ref None in
  List.iter
    (fun tokens ->
      if !error = None then
        match tokens with
        | [ "nodes"; ns ] -> (
          match int_of_string_opt ns with
          | Some v when v >= 2 -> n := v
          | _ -> error := Some "bad nodes line")
        | [ "edge"; cs; ps ] | [ "edge"; cs; ps; "zero" ] -> (
          let zero = List.length tokens = 4 in
          match (int_of_string_opt cs, int_of_string_opt ps) with
          | Some c, Some p -> edges := (c, p, zero) :: !edges
          | _ -> error := Some "bad edge line")
        | [ "sink"; ss ] -> (
          match int_of_string_opt ss with
          | Some s -> sinks := s :: !sinks
          | None -> error := Some "bad sink line")
        | kw :: _ -> error := Some (Printf.sprintf "unknown record %S" kw)
        | [] -> ())
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
    if !n < 2 then Error "missing nodes line"
    else begin
      let parents = Array.make !n (-2) in
      parents.(0) <- -1;
      List.iter
        (fun (c, p, _) ->
          if c >= 1 && c < !n then parents.(c) <- p
          else error := Some "edge child out of range")
        !edges;
      let zero = Array.make !n false in
      List.iter (fun (c, _, z) -> if c >= 1 && c < !n then zero.(c) <- z) !edges;
      if Array.exists (fun p -> p = -2) parents then
        Error "some node has no edge record"
      else
        match !error with
        | Some msg -> Error msg
        | None -> (
          match
            Tree.create ~forced_zero:zero ~parents
              ~sinks:(Array.of_list (List.rev !sinks))
              ()
          with
          | t -> Ok t
          | exception Invalid_argument msg -> Error msg)
    end

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let write_instance path inst = write_file path (instance_to_string inst)

let read_instance path =
  match read_file path with
  | content -> instance_of_string content
  | exception Sys_error msg -> Error msg

let write_tree path tree = write_file path (tree_to_string tree)

let read_tree path =
  match read_file path with
  | content -> tree_of_string content
  | exception Sys_error msg -> Error msg
