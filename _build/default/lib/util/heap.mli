(** Binary min-heap keyed by floats.

    Supports lazy deletion via user-side stale checks: pop returns the
    minimum-key element; callers that need decrease-key simply push the
    element again with the smaller key and discard stale pops. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key binding, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key binding. *)

val clear : 'a t -> unit
