lib/util/heap.mli:
