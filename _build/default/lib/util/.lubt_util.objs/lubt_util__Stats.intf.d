lib/util/stats.mli:
