lib/util/prng.mli:
