type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.data.(l).key < h.data.(!smallest).key then smallest := l;
  if r < h.size && h.data.(r).key < h.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h key value =
  let entry = { key; value } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (e.key, e.value)
  end

let clear h = h.size <- 0
