(** Small numerical helpers shared across the project. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)

val mean : float array -> float
(** Mean of a nonempty array. *)

val min_max : float array -> float * float
(** Minimum and maximum of a nonempty array. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** Comparison with mixed absolute/relative tolerance (default 1e-6). *)

val clamp : float -> float -> float -> float
(** [clamp lo hi v] restricts [v] to [\[lo, hi\]]. Requires [lo <= hi]. *)
