(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merges two sets; returns [false] if they were already the same set. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
