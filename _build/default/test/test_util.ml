(* Tests for the utility substrate: PRNG determinism, heap ordering,
   union-find invariants, numerical helpers. *)

module Prng = Lubt_util.Prng
module Heap = Lubt_util.Heap
module Union_find = Lubt_util.Union_find
module Stats = Lubt_util.Stats

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_ranges () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let f = Prng.float rng 10.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 10.0);
    let i = Prng.int rng 7 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 7);
    let g = Prng.float_range rng (-3.0) 5.0 in
    Alcotest.(check bool) "range" true (g >= -3.0 && g < 5.0)
  done

let test_prng_distribution () =
  (* crude uniformity check: each of 10 buckets gets 5-15% of draws *)
  let rng = Prng.create 99 in
  let buckets = Array.make 10 0 in
  let draws = 20000 in
  for _ = 1 to draws do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int draws in
      Alcotest.(check bool) "bucket reasonable" true (frac > 0.05 && frac < 0.15))
    buckets

let test_heap_sorts () =
  let h = Heap.create () in
  let rng = Prng.create 3 in
  let keys = Array.init 500 (fun _ -> Prng.float rng 100.0) in
  Array.iter (fun k -> Heap.push h k k) keys;
  Alcotest.(check int) "length" 500 (Heap.length h);
  let last = ref neg_infinity in
  for _ = 1 to 500 do
    match Heap.pop h with
    | None -> Alcotest.fail "premature empty"
    | Some (k, _) ->
      Alcotest.(check bool) "nondecreasing" true (k >= !last);
      last := k
  done;
  Alcotest.(check bool) "empty at end" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create () in
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  Heap.push h 3.0 "c";
  (match Heap.peek h with
  | Some (k, v) ->
    Alcotest.(check (float 0.0)) "peek key" 1.0 k;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "peek");
  (match Heap.pop h with
  | Some (_, v) -> Alcotest.(check string) "pop value" "a" v
  | None -> Alcotest.fail "pop");
  Alcotest.(check int) "length after pop" 2 (Heap.length h)

let test_union_find () =
  let uf = Union_find.create 10 in
  Alcotest.(check int) "initial count" 10 (Union_find.count uf);
  Alcotest.(check bool) "union works" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "re-union is false" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "transitively same" true (Union_find.same uf 0 2);
  Alcotest.(check int) "count" 7 (Union_find.count uf)

let test_stats () =
  Alcotest.(check (float 1e-12)) "sum" 6.0 (Stats.sum [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  Alcotest.(check (float 0.0)) "min" (-1.0) lo;
  Alcotest.(check (float 0.0)) "max" 3.0 hi;
  Alcotest.(check bool) "approx_eq close" true (Stats.approx_eq 1.0 (1.0 +. 1e-9));
  Alcotest.(check bool) "approx_eq far" false (Stats.approx_eq 1.0 1.1);
  Alcotest.(check (float 0.0)) "clamp low" 0.0 (Stats.clamp 0.0 1.0 (-5.0));
  Alcotest.(check (float 0.0)) "clamp high" 1.0 (Stats.clamp 0.0 1.0 5.0);
  Alcotest.(check (float 0.0)) "clamp mid" 0.5 (Stats.clamp 0.0 1.0 0.5)

let test_kahan_precision () =
  (* 10^8 + many tiny values: naive summation loses them entirely *)
  let n = 10_000 in
  let arr = Array.make (n + 1) 1e-8 in
  arr.(0) <- 1e8;
  let s = Stats.sum arr in
  Alcotest.(check (float 1e-7)) "kahan keeps tiny terms" (1e8 +. (float_of_int n *. 1e-8)) s

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (array small_int))
    (fun (seed, arr) ->
      let rng = Prng.create seed in
      let copy = Array.copy arr in
      Prng.shuffle rng copy;
      List.sort compare (Array.to_list copy)
      = List.sort compare (Array.to_list arr))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "distribution" `Quick test_prng_distribution;
        ] );
      ( "heap",
        [
          Alcotest.test_case "heapsort" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
        ] );
      ("union-find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "kahan" `Quick test_kahan_precision;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_shuffle_is_permutation ] );
    ]
