test/test_bst_extra.ml: Alcotest Array List Lubt_bst Lubt_core Lubt_delay Lubt_geom Lubt_lp Lubt_topo Lubt_util QCheck QCheck_alcotest String
