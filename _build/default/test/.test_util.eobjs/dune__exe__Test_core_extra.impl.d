test/test_core_extra.ml: Alcotest Array Filename Lubt_bst Lubt_core Lubt_data Lubt_geom Lubt_lp Lubt_topo Lubt_util String Sys
