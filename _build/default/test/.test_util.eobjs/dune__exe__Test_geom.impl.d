test/test_geom.ml: Alcotest Format List Lubt_geom Lubt_util QCheck QCheck_alcotest
