test/test_topo.ml: Alcotest Array List Lubt_topo Lubt_util QCheck QCheck_alcotest
