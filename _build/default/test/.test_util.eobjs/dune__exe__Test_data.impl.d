test/test_data.ml: Alcotest Array Filename List Lubt_core Lubt_data Lubt_geom Lubt_topo Lubt_util Sys
