test/test_lp.ml: Alcotest Array List Lubt_lp Lubt_util Printf
