test/test_lp_extra.ml: Alcotest Array List Lubt_core Lubt_data Lubt_lp Lubt_util Printf String
