test/test_experiments.ml: Alcotest List Lubt_data Lubt_experiments
