test/test_core_extra.mli:
