test/test_util.ml: Alcotest Array List Lubt_util QCheck QCheck_alcotest
