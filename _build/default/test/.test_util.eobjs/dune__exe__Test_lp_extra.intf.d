test/test_lp_extra.mli:
