test/test_bst.ml: Alcotest Array Lubt_bst Lubt_core Lubt_geom Lubt_lp Lubt_topo Lubt_util Printf QCheck QCheck_alcotest String
