test/test_bst_extra.mli:
