test/test_core.ml: Alcotest Array List Lubt_core Lubt_delay Lubt_geom Lubt_lp Lubt_topo Lubt_util String
