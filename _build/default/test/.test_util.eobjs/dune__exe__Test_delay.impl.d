test/test_delay.ml: Alcotest Array List Lubt_delay Lubt_topo Lubt_util QCheck QCheck_alcotest
