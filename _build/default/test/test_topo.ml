(* Tests for rooted topologies: construction validation, LCA/path queries
   against brute force, traversal invariants, degree-4 splitting, and the
   structural topology generators. *)

module Tree = Lubt_topo.Tree
module Topogen = Lubt_topo.Topogen
module Prng = Lubt_util.Prng

(* the 9-node topology of the paper's Section 4.5 example:
   root s0 with children s6, s8; s6 -> {s1, s5}; s8 -> {s2, s7};
   s7 -> {s3, s4} *)
let paper_tree () =
  let parents = [| -1; 6; 8; 7; 7; 6; 0; 8; 0 |] in
  Tree.create ~parents ~sinks:[| 1; 2; 3; 4; 5 |] ()

let test_basic_structure () =
  let t = paper_tree () in
  Alcotest.(check int) "nodes" 9 (Tree.num_nodes t);
  Alcotest.(check int) "edges" 8 (Tree.num_edges t);
  Alcotest.(check int) "sinks" 5 (Tree.num_sinks t);
  Alcotest.(check int) "parent of 3" 7 (Tree.parent t 3);
  Alcotest.(check int) "parent of root" (-1) (Tree.parent t 0);
  Alcotest.(check (list int)) "children of 8" [ 2; 7 ] (List.sort compare (Tree.children t 8));
  Alcotest.(check bool) "sink" true (Tree.is_sink t 4);
  Alcotest.(check bool) "not sink" false (Tree.is_sink t 7);
  Alcotest.(check bool) "leaf" true (Tree.is_leaf t 1);
  Alcotest.(check bool) "not leaf" false (Tree.is_leaf t 6);
  Alcotest.(check int) "depth" 2 (Tree.depth t 7);
  Alcotest.(check int) "depth sink" 3 (Tree.depth t 3);
  Alcotest.(check bool) "all sinks leaves" true (Tree.all_sinks_are_leaves t);
  Alcotest.(check int) "sink index" 2 (Tree.sink_index t 3)

let test_paths () =
  let t = paper_tree () in
  let sort = List.sort compare in
  Alcotest.(check (list int)) "path to root" [ 3; 7; 8 ] (sort (Tree.path_to_root t 3));
  Alcotest.(check (list int)) "path s1 s3" [ 1; 3; 6; 7; 8 ] (sort (Tree.path t 1 3));
  Alcotest.(check (list int)) "path s3 s4" [ 3; 4 ] (sort (Tree.path t 3 4));
  Alcotest.(check (list int)) "path s1 s5" [ 1; 5 ] (sort (Tree.path t 1 5));
  Alcotest.(check (list int)) "path to itself" [] (Tree.path t 3 3);
  Alcotest.(check (list int)) "path root to sink" [ 2; 8 ] (sort (Tree.path t 0 2))

let test_lca () =
  let t = paper_tree () in
  Alcotest.(check int) "lca s3 s4" 7 (Tree.lca t 3 4);
  Alcotest.(check int) "lca s1 s5" 6 (Tree.lca t 1 5);
  Alcotest.(check int) "lca s1 s3" 0 (Tree.lca t 1 3);
  Alcotest.(check int) "lca with ancestor" 8 (Tree.lca t 2 3);
  Alcotest.(check int) "lca self" 4 (Tree.lca t 4 4)

let test_invalid_trees () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "root not -1" (fun () ->
      Tree.create ~parents:[| 0; 0 |] ~sinks:[| 1 |] ());
  expect_invalid "cycle" (fun () ->
      Tree.create ~parents:[| -1; 2; 1 |] ~sinks:[| 1 |] ());
  expect_invalid "self parent" (fun () ->
      Tree.create ~parents:[| -1; 1 |] ~sinks:[| 1 |] ());
  expect_invalid "out of range parent" (fun () ->
      Tree.create ~parents:[| -1; 5 |] ~sinks:[| 1 |] ());
  expect_invalid "duplicate sink" (fun () ->
      Tree.create ~parents:[| -1; 0; 0 |] ~sinks:[| 1; 1 |] ());
  expect_invalid "root as sink" (fun () ->
      Tree.create ~parents:[| -1; 0 |] ~sinks:[| 0 |] ());
  expect_invalid "no sinks" (fun () ->
      Tree.create ~parents:[| -1; 0 |] ~sinks:[||] ())

let test_traversal_orders () =
  let t = paper_tree () in
  let post = Tree.postorder t and pre = Tree.preorder t in
  Alcotest.(check int) "post length" 9 (Array.length post);
  Alcotest.(check int) "pre length" 9 (Array.length pre);
  Alcotest.(check int) "root last in post" 0 post.(8);
  Alcotest.(check int) "root first in pre" 0 pre.(0);
  (* every child appears before its parent in postorder *)
  let pos = Array.make 9 0 in
  Array.iteri (fun i v -> pos.(v) <- i) post;
  for v = 1 to 8 do
    Alcotest.(check bool) "post child<parent" true (pos.(v) < pos.(Tree.parent t v))
  done;
  let pos_pre = Array.make 9 0 in
  Array.iteri (fun i v -> pos_pre.(v) <- i) pre;
  for v = 1 to 8 do
    Alcotest.(check bool) "pre parent<child" true
      (pos_pre.(Tree.parent t v) < pos_pre.(v))
  done

let test_delays_and_path_length () =
  let t = paper_tree () in
  let lengths = [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |] in
  let d = Tree.delays t lengths in
  Alcotest.(check (float 1e-9)) "delay s1" 7.0 d.(1);
  (* e1 + e6 *)
  Alcotest.(check (float 1e-9)) "delay s3" 18.0 d.(3);
  (* e3 + e7 + e8 *)
  Alcotest.(check (float 1e-9)) "path length s1 s3" 25.0
    (Tree.path_length t lengths 1 3);
  Alcotest.(check (float 1e-9)) "path length consistent"
    (d.(1) +. d.(3) -. (2.0 *. d.(Tree.lca t 1 3)))
    (Tree.path_length t lengths 1 3)

(* brute-force LCA: climb both paths *)
let brute_lca t a b =
  let rec ancestors i = if i = -1 then [] else i :: ancestors (Tree.parent t i) in
  let aa = ancestors a in
  let rec find = function
    | [] -> assert false
    | x :: rest -> if List.mem x aa then x else find rest
  in
  find (ancestors b)

let test_lca_random () =
  let rng = Prng.create 123 in
  for _ = 1 to 20 do
    let m = 2 + Prng.int rng 30 in
    let t = Topogen.random_binary rng ~num_sinks:m ~source_edge:(Prng.bool rng) in
    let n = Tree.num_nodes t in
    for _ = 1 to 50 do
      let a = Prng.int rng n and b = Prng.int rng n in
      Alcotest.(check int) "lca matches brute force" (brute_lca t a b)
        (Tree.lca t a b)
    done
  done

let test_random_binary_shape () =
  let rng = Prng.create 9 in
  for _ = 1 to 30 do
    let m = 2 + Prng.int rng 40 in
    let source_edge = Prng.bool rng in
    let t = Topogen.random_binary rng ~num_sinks:m ~source_edge in
    Alcotest.(check int) "sink count" m (Tree.num_sinks t);
    Alcotest.(check bool) "sinks are leaves" true (Tree.all_sinks_are_leaves t);
    let expected_nodes = if source_edge then 2 * m else (2 * m) - 1 in
    Alcotest.(check int) "node count" expected_nodes (Tree.num_nodes t);
    (* every steiner node has exactly two children; root per mode *)
    for v = 0 to Tree.num_nodes t - 1 do
      let c = List.length (Tree.children t v) in
      if v = 0 then
        Alcotest.(check int) "root children" (if source_edge then 1 else 2) c
      else if not (Tree.is_sink t v) then
        Alcotest.(check int) "steiner has 2 children" 2 c
    done
  done

let test_balanced_depth () =
  let t = Topogen.balanced_binary ~num_sinks:64 ~source_edge:false in
  let max_depth = ref 0 in
  for v = 0 to Tree.num_nodes t - 1 do
    if Tree.is_leaf t v then max_depth := max !max_depth (Tree.depth t v)
  done;
  Alcotest.(check int) "depth of perfect 64-leaf tree" 6 !max_depth

let test_binarise () =
  (* root with 4 children, one internal node with 3 children *)
  let parents = [| -1; 0; 0; 0; 0; 1; 1; 1 |] in
  let t = Tree.create ~parents ~sinks:[| 2; 3; 4; 5; 6; 7 |] () in
  let b = Tree.binarise t in
  Alcotest.(check int) "sinks preserved" 6 (Tree.num_sinks b);
  Alcotest.(check bool) "sinks still leaves" true (Tree.all_sinks_are_leaves b);
  for v = 0 to Tree.num_nodes b - 1 do
    Alcotest.(check bool) "at most 2 children" true
      (List.length (Tree.children b v) <= 2)
  done;
  (* new edges are forced-zero *)
  let zero_edges = ref 0 in
  for v = 1 to Tree.num_nodes b - 1 do
    if Tree.forced_zero b v then incr zero_edges
  done;
  Alcotest.(check bool) "some forced-zero edges" true (!zero_edges > 0);
  (* old sink ancestry preserved: path from each sink reaches the root *)
  Array.iter
    (fun s -> Alcotest.(check bool) "path exists" true (Tree.path_to_root b s <> []))
    (Tree.sinks b)

let test_binarise_noop () =
  let t = paper_tree () in
  let b = Tree.binarise t in
  Alcotest.(check int) "unchanged node count" (Tree.num_nodes t) (Tree.num_nodes b)

let prop_random_tree_paths =
  QCheck.Test.make ~name:"path endpoints and symmetry" ~count:50
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, m) ->
      let rng = Prng.create seed in
      let t = Topogen.random_binary rng ~num_sinks:m ~source_edge:false in
      let n = Tree.num_nodes t in
      let a = Prng.int rng n and b = Prng.int rng n in
      let p1 = List.sort compare (Tree.path t a b) in
      let p2 = List.sort compare (Tree.path t b a) in
      p1 = p2)

let () =
  Alcotest.run "topo"
    [
      ( "tree",
        [
          Alcotest.test_case "structure" `Quick test_basic_structure;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "lca" `Quick test_lca;
          Alcotest.test_case "invalid input" `Quick test_invalid_trees;
          Alcotest.test_case "traversals" `Quick test_traversal_orders;
          Alcotest.test_case "delays/path length" `Quick test_delays_and_path_length;
          Alcotest.test_case "lca random vs brute force" `Quick test_lca_random;
        ] );
      ( "topogen",
        [
          Alcotest.test_case "random binary shape" `Quick test_random_binary_shape;
          Alcotest.test_case "balanced depth" `Quick test_balanced_depth;
        ] );
      ( "binarise",
        [
          Alcotest.test_case "degree-4 split" `Quick test_binarise;
          Alcotest.test_case "noop when binary" `Quick test_binarise_noop;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_tree_paths ]);
    ]
