(* Tests for the LP extras: presolve reductions and the LP-format
   writer/reader. *)

module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Presolve = Lubt_lp.Presolve
module Lp_format = Lubt_lp.Lp_format
module Status = Lubt_lp.Status
module Sparse = Lubt_lp.Sparse
module Prng = Lubt_util.Prng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Presolve                                                             *)
(* ------------------------------------------------------------------ *)

let test_fixed_variable_substitution () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2.0 ~up:2.0 ~obj:3.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "one variable left" 1 (Presolve.reduced_vars t);
    let sol = Presolve.solve p in
    Alcotest.(check bool) "optimal" true (sol.Status.status = Status.Optimal);
    (* x fixed at 2, row needs y >= 3: objective 3*2 + 3 = 9 *)
    check_float "objective" 9.0 sol.Status.objective;
    check_float "x reinstated" 2.0 sol.Status.primal.(x);
    check_float "y" 3.0 sol.Status.primal.(y)

let test_singleton_row_to_bound () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:4.0 ~up:10.0 [ (x, 2.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "row folded away" 0 (Presolve.reduced_rows t);
    let sol = Presolve.solve p in
    check_float "x at tightened lower bound" 2.0 sol.Status.primal.(x)

let test_duplicate_rows_merge () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:1.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:3.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:8.0 [ (x, 1.0); (y, 1.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "rows merged" 1 (Presolve.reduced_rows t);
    let sol = Presolve.solve p in
    check_float "objective" 3.0 sol.Status.objective

let test_presolve_detects_infeasible () =
  let cases =
    [
      (fun p ->
        (* crossed bounds via two singleton rows *)
        let x = Problem.add_var p in
        ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0) ]);
        ignore (Problem.add_row p ~lo:neg_infinity ~up:2.0 [ (x, 1.0) ]));
      (fun p ->
        (* duplicate rows with disjoint bounds *)
        let x = Problem.add_var p in
        let y = Problem.add_var p in
        ignore (Problem.add_row p ~lo:1.0 ~up:2.0 [ (x, 1.0); (y, 1.0) ]);
        ignore (Problem.add_row p ~lo:5.0 ~up:6.0 [ (x, 1.0); (y, 1.0) ]));
      (fun p ->
        (* empty row after substituting a fixed variable *)
        let x = Problem.add_var ~lo:1.0 ~up:1.0 p in
        ignore (Problem.add_row p ~lo:5.0 ~up:6.0 [ (x, 1.0) ]));
    ]
  in
  List.iter
    (fun build ->
      let p = Problem.create () in
      build p;
      match Presolve.run p with
      | Presolve.Infeasible_detected _ -> ()
      | Presolve.Reduced t ->
        (* presolve may legitimately defer to the solver *)
        let sol = Solver.solve (Presolve.problem t) in
        Alcotest.(check bool) "solver confirms infeasible" true
          (sol.Status.status = Status.Infeasible))
    cases

let test_all_variables_fixed () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:1.0 ~up:1.0 ~obj:2.0 p in
  let y = Problem.add_var ~lo:3.0 ~up:3.0 ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:0.0 ~up:10.0 [ (x, 1.0); (y, 1.0) ]);
  let sol = Presolve.solve p in
  Alcotest.(check bool) "optimal" true (sol.Status.status = Status.Optimal);
  check_float "objective" 5.0 sol.Status.objective;
  (* and an infeasible variant *)
  let q = Problem.create () in
  let a = Problem.add_var ~lo:1.0 ~up:1.0 q in
  ignore (Problem.add_row q ~lo:5.0 ~up:10.0 [ (a, 1.0) ]);
  let sol2 = Presolve.solve q in
  Alcotest.(check bool) "infeasible" true (sol2.Status.status = Status.Infeasible)

(* randomised: presolve+solve agrees with direct solve *)
let random_problem rng =
  let nv = 1 + Prng.int rng 6 in
  let nr = Prng.int rng 8 in
  let p = Problem.create () in
  for _ = 1 to nv do
    let kind = Prng.int rng 5 in
    let lo, up =
      match kind with
      | 0 -> (0.0, infinity)
      | 1 -> (float_of_int (Prng.int rng 5 - 2), infinity)
      | 2 ->
        let l = float_of_int (Prng.int rng 5 - 2) in
        (l, l +. float_of_int (Prng.int rng 6))
      | 3 ->
        (* fixed variable: exercises substitution *)
        let v = float_of_int (Prng.int rng 7 - 3) in
        (v, v)
      | _ -> (neg_infinity, infinity)
    in
    let obj = float_of_int (Prng.int rng 9 - 4) in
    ignore (Problem.add_var ~lo ~up ~obj p)
  done;
  for _ = 1 to nr do
    let coeffs = ref [] in
    for j = 0 to nv - 1 do
      if Prng.int rng 3 > 0 then begin
        let c = float_of_int (Prng.int rng 7 - 3) in
        if c <> 0.0 then coeffs := (j, c) :: !coeffs
      end
    done;
    let base = float_of_int (Prng.int rng 21 - 10) in
    let lo, up =
      match Prng.int rng 4 with
      | 0 -> (base, infinity)
      | 1 -> (neg_infinity, base)
      | 2 -> (base, base +. float_of_int (Prng.int rng 8))
      | _ -> (base, base)
    in
    ignore (Problem.add_row p ~lo ~up !coeffs)
  done;
  p

let test_presolve_random_agreement () =
  let rng = Prng.create 606 in
  for id = 1 to 300 do
    let p = random_problem rng in
    let direct = Solver.solve p in
    let pre = Presolve.solve p in
    (match (direct.Status.status, pre.Status.status) with
    | Status.Optimal, Status.Optimal ->
      if
        not
          (Lubt_util.Stats.approx_eq ~eps:1e-5 direct.Status.objective
             pre.Status.objective)
      then
        Alcotest.failf "case %d: direct %.9g vs presolved %.9g" id
          direct.Status.objective pre.Status.objective;
      if not (Problem.is_feasible ~tol:1e-5 p pre.Status.primal) then
        Alcotest.failf "case %d: postsolved point infeasible" id
    | a, b when a = b -> ()
    | Status.Unbounded, Status.Optimal | Status.Optimal, Status.Unbounded ->
      Alcotest.failf "case %d: optimal/unbounded mismatch" id
    | a, b ->
      Alcotest.failf "case %d: status mismatch %s vs %s" id (Status.to_string a)
        (Status.to_string b))
  done

(* ------------------------------------------------------------------ *)
(* LP format                                                            *)
(* ------------------------------------------------------------------ *)

let test_lp_format_writer_shape () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 ~name:"x" p in
  let y = Problem.add_var ~lo:neg_infinity ~up:infinity ~obj:(-2.0) ~name:"y" p in
  ignore (Problem.add_row ~name:"r1" p ~lo:1.0 ~up:infinity [ (x, 1.0); (y, 3.0) ]);
  ignore (Problem.add_row ~name:"r2" p ~lo:0.0 ~up:5.0 [ (x, 2.0) ]);
  let s = Lp_format.to_string p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains s needle))
    [ "Minimize"; "Subject To"; "Bounds"; "End"; "y free"; "r1_l:"; "r2_u:" ]

let test_lp_format_roundtrip () =
  let rng = Prng.create 7007 in
  for id = 1 to 200 do
    let p = random_problem rng in
    match Lp_format.of_string (Lp_format.to_string p) with
    | Error msg -> Alcotest.failf "case %d: parse error: %s" id msg
    | Ok q ->
      let a = Solver.solve p and b = Solver.solve q in
      (match (a.Status.status, b.Status.status) with
      | Status.Optimal, Status.Optimal ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-5 a.Status.objective b.Status.objective)
        then
          Alcotest.failf "case %d: objective %.9g vs %.9g after roundtrip" id
            a.Status.objective b.Status.objective
      | sa, sb when sa = sb -> ()
      | sa, sb ->
        Alcotest.failf "case %d: status %s vs %s after roundtrip" id
          (Status.to_string sa) (Status.to_string sb))
  done

let test_lp_format_reader_errors () =
  List.iter
    (fun (text, why) ->
      match Lp_format.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" why)
    [
      ("x + y <= 3", "content before section");
      ("Minimize\n obj: x\nSubject To\n c: x ? 3\nEnd", "bad operator");
      ("Minimize\n obj: x\nSubject To\n c: x <=\nEnd", "missing rhs");
    ]

let test_ebf_program_exports () =
  (* the EBF LP of the paper's five-point example survives a write/solve *)
  let inst, tree = Lubt_data.Examples.five_point () in
  let prob = Lubt_core.Ebf.formulate inst tree in
  let text = Lp_format.to_string prob in
  match Lp_format.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    let a = Solver.solve prob and b = Solver.solve q in
    Alcotest.(check bool) "both optimal" true
      (a.Status.status = Status.Optimal && b.Status.status = Status.Optimal);
    check_float "same optimum" a.Status.objective b.Status.objective


(* ------------------------------------------------------------------ *)
(* Sparse LU                                                            *)
(* ------------------------------------------------------------------ *)

module Lu = Lubt_lp.Lu

let random_nonsingular rng n =
  (* diagonally dominant random sparse matrix: always nonsingular *)
  Array.init n (fun j ->
      let entries = ref [ (j, 10.0 +. Prng.float rng 5.0) ] in
      for i = 0 to n - 1 do
        if i <> j && Prng.int rng 3 = 0 then
          entries := (i, Prng.float rng 4.0 -. 2.0) :: !entries
      done;
      Sparse.of_assoc !entries)

let mat_vec cols x =
  let n = Array.length cols in
  let y = Array.make n 0.0 in
  Array.iteri (fun j col -> Sparse.iter (fun i a -> y.(i) <- y.(i) +. (a *. x.(j))) col) cols;
  y

let mat_t_vec cols x =
  Array.map (fun col -> Sparse.dot_dense col x) cols

let test_lu_solve_roundtrip () =
  let rng = Prng.create 2025 in
  for case = 1 to 50 do
    let n = 1 + Prng.int rng 30 in
    let cols = random_nonsingular rng n in
    let lu = Lu.factor cols in
    Alcotest.(check int) "dim" n (Lu.dim lu);
    let x_true = Array.init n (fun _ -> Prng.float rng 10.0 -. 5.0) in
    let b = mat_vec cols x_true in
    let x = Lu.solve lu b in
    Array.iteri
      (fun i v ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v x_true.(i)) then
          Alcotest.failf "case %d: solve x[%d] = %.12g vs %.12g" case i v
            x_true.(i))
      x
  done

let test_lu_transpose_solve () =
  let rng = Prng.create 3026 in
  for case = 1 to 50 do
    let n = 1 + Prng.int rng 30 in
    let cols = random_nonsingular rng n in
    let lu = Lu.factor cols in
    let x_true = Array.init n (fun _ -> Prng.float rng 10.0 -. 5.0) in
    let c = mat_t_vec cols x_true in
    let x = Lu.solve_transpose lu c in
    Array.iteri
      (fun i v ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v x_true.(i)) then
          Alcotest.failf "case %d: btran x[%d] = %.12g vs %.12g" case i v
            x_true.(i))
      x
  done

let test_lu_inverse_columns () =
  let rng = Prng.create 4027 in
  let n = 12 in
  let cols = random_nonsingular rng n in
  let lu = Lu.factor cols in
  (* A * (column j of A^-1) = e_j *)
  for j = 0 to n - 1 do
    let inv_j = Lu.inverse_column lu j in
    let e = mat_vec cols inv_j in
    Array.iteri
      (fun i v ->
        let want = if i = j then 1.0 else 0.0 in
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v want) then
          Alcotest.failf "inverse column %d row %d: %.12g vs %.12g" j i v want)
      e
  done

let test_lu_detects_singular () =
  (* two identical columns *)
  let col = Sparse.of_assoc [ (0, 1.0); (1, 2.0) ] in
  (match Lu.factor [| col; col |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "duplicate columns must be singular");
  (* a zero column *)
  match Lu.factor [| Sparse.of_assoc [ (0, 1.0) ]; Sparse.empty |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "zero column must be singular"

let test_lu_permutation_matrix () =
  (* a permutation matrix exercises the pivoting bookkeeping *)
  let n = 6 in
  let perm = [| 3; 0; 5; 1; 4; 2 |] in
  let cols = Array.init n (fun j -> Sparse.of_assoc [ (perm.(j), 1.0) ]) in
  let lu = Lu.factor cols in
  Alcotest.(check int) "nnz of a permutation" n (Lu.nnz lu);
  let b = Array.init n float_of_int in
  let x = Lu.solve lu b in
  (* x_j = b_(perm j) *)
  Array.iteri
    (fun j v -> Alcotest.(check (float 1e-12)) "perm solve" b.(perm.(j)) v)
    x

let () =
  Alcotest.run "lp-extra"
    [
      ( "presolve",
        [
          Alcotest.test_case "fixed variable substitution" `Quick
            test_fixed_variable_substitution;
          Alcotest.test_case "singleton row to bound" `Quick
            test_singleton_row_to_bound;
          Alcotest.test_case "duplicate rows merge" `Quick
            test_duplicate_rows_merge;
          Alcotest.test_case "detects infeasibility" `Quick
            test_presolve_detects_infeasible;
          Alcotest.test_case "all variables fixed" `Quick
            test_all_variables_fixed;
          Alcotest.test_case "300 random LPs agree" `Slow
            test_presolve_random_agreement;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "solve roundtrip" `Quick test_lu_solve_roundtrip;
          Alcotest.test_case "transpose solve" `Quick test_lu_transpose_solve;
          Alcotest.test_case "inverse columns" `Quick test_lu_inverse_columns;
          Alcotest.test_case "detects singular" `Quick test_lu_detects_singular;
          Alcotest.test_case "permutation matrix" `Quick
            test_lu_permutation_matrix;
        ] );
      ( "lp-format",
        [
          Alcotest.test_case "writer sections" `Quick test_lp_format_writer_shape;
          Alcotest.test_case "roundtrip 200 random LPs" `Slow
            test_lp_format_roundtrip;
          Alcotest.test_case "reader errors" `Quick test_lp_format_reader_errors;
          Alcotest.test_case "EBF program export" `Quick test_ebf_program_exports;
        ] );
    ]
