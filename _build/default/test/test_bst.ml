(* Tests for the bounded-skew baseline router: skew-bound compliance,
   embedding validity, degenerate inputs, ZST behaviour at bound 0,
   monotone trends, and the Table-1 protocol glue (extract_instance). *)

module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Ebf = Lubt_core.Ebf
module Zeroskew = Lubt_core.Zeroskew
module Bst = Lubt_bst.Bst_dme
module Status = Lubt_lp.Status
module Prng = Lubt_util.Prng

let pt = Point.make

let random_sinks rng m extent =
  Array.init m (fun _ -> pt (Prng.float rng extent) (Prng.float rng extent))

let test_two_sinks_zero_skew () =
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0 |] in
  let r = Bst.route ~skew_bound:0.0 sinks in
  Alcotest.(check (float 1e-9)) "skew zero" 0.0 (r.Bst.dmax -. r.Bst.dmin);
  Alcotest.(check (float 1e-6)) "cost is the distance" 10.0 r.Bst.cost;
  Alcotest.(check (float 1e-6)) "balanced delay" 5.0 r.Bst.dmax

let test_single_sink_with_source () =
  let r = Bst.route ~source:(pt 0.0 0.0) [| pt 3.0 4.0 |] in
  Alcotest.(check (float 1e-9)) "cost" 7.0 r.Bst.cost;
  Alcotest.(check (float 1e-9)) "delay" 7.0 r.Bst.dmax

let test_rejects_empty () =
  (match Bst.route [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sink set must be rejected");
  match Bst.route [| pt 0.0 0.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single sink without source must be rejected"

let check_embedding name r =
  match Routed.validate r.Bst.routed with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s: invalid embedding: %s" name (String.concat "; " es)

let test_skew_bound_respected () =
  let rng = Prng.create 17 in
  for case = 1 to 20 do
    let m = 2 + Prng.int rng 30 in
    let sinks = random_sinks rng m 100.0 in
    let with_source = Prng.bool rng in
    let source = if with_source then Some (pt 50.0 50.0) else None in
    let bound = Prng.float rng 80.0 in
    let r = Bst.route ~skew_bound:bound ?source sinks in
    let name = Printf.sprintf "case %d" case in
    check_embedding name r;
    let skew = r.Bst.dmax -. r.Bst.dmin in
    if skew > bound +. 1e-6 then
      Alcotest.failf "%s: skew %g exceeds bound %g" name skew bound;
    (* every sink is a leaf of the produced topology *)
    Alcotest.(check bool) "sinks are leaves" true
      (Tree.all_sinks_are_leaves r.Bst.topology)
  done

let test_zero_bound_matches_zst_dme () =
  (* at bound 0 the baseline must produce an exact zero-skew tree whose
     cost is within a few percent of the closed-form optimum for its own
     topology *)
  let rng = Prng.create 23 in
  for case = 1 to 10 do
    let m = 3 + Prng.int rng 20 in
    let sinks = random_sinks rng m 100.0 in
    let r = Bst.route ~skew_bound:0.0 sinks in
    Alcotest.(check (float 1e-6)) "exact zero skew" 0.0 (r.Bst.dmax -. r.Bst.dmin);
    let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:infinity () in
    let zs = Zeroskew.balance inst r.Bst.topology in
    let optimal =
      Lubt_util.Stats.sum
        (Array.sub zs.Zeroskew.lengths 1 (Tree.num_edges r.Bst.topology))
    in
    if r.Bst.cost < optimal -. 1e-6 then
      Alcotest.failf "case %d: baseline beat the per-topology optimum?!" case;
    if r.Bst.cost > optimal *. 1.05 +. 1e-6 then
      Alcotest.failf "case %d: baseline ZST %.6g too far above optimum %.6g"
        case r.Bst.cost optimal
  done

let test_looser_bound_never_much_worse () =
  (* the infinite-skew tree should be cheaper than the zero-skew tree on
     any nontrivial instance *)
  let rng = Prng.create 31 in
  for _ = 1 to 5 do
    let sinks = random_sinks rng 40 100.0 in
    let zst = Bst.route ~skew_bound:0.0 sinks in
    let free = Bst.route sinks in
    Alcotest.(check bool) "unbounded cheaper than zero skew" true
      (free.Bst.cost <= zst.Bst.cost +. 1e-6)
  done

let test_extract_instance_protocol () =
  (* the Table-1 protocol: the baseline's own solution is feasible for the
     extracted instance, so the LUBT LP can only improve the cost *)
  let rng = Prng.create 47 in
  for case = 1 to 8 do
    let m = 4 + Prng.int rng 16 in
    let sinks = random_sinks rng m 100.0 in
    let source = pt (Prng.float rng 100.0) (Prng.float rng 100.0) in
    let bound = 5.0 +. Prng.float rng 50.0 in
    let b = Bst.route ~skew_bound:bound ~source sinks in
    let inst = Bst.extract_instance b in
    Alcotest.(check bool) "bounds admissible" true (Instance.bounds_admissible inst);
    let lp = Ebf.solve inst b.Bst.topology in
    if lp.Ebf.status <> Status.Optimal then
      Alcotest.failf "case %d: LP status %s" case (Status.to_string lp.Ebf.status);
    if lp.Ebf.objective > b.Bst.cost +. 1e-6 *. b.Bst.cost then
      Alcotest.failf "case %d: LUBT %.8g above baseline %.8g" case
        lp.Ebf.objective b.Bst.cost;
    (* and the baseline's length vector satisfies the LP constraints *)
    match Ebf.check_lengths inst b.Bst.topology b.Bst.lengths with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "case %d: baseline infeasible: %s" case msg
  done

let test_collinear_and_duplicate_sinks () =
  let sinks = [| pt 0.0 0.0; pt 5.0 0.0; pt 10.0 0.0; pt 5.0 0.0 |] in
  let r = Bst.route ~skew_bound:2.0 sinks in
  check_embedding "collinear" r;
  Alcotest.(check bool) "skew within bound" true (r.Bst.dmax -. r.Bst.dmin <= 2.0 +. 1e-9)

let test_grid_instance () =
  let sinks =
    Array.init 16 (fun i -> pt (float_of_int (i mod 4) *. 10.0) (float_of_int (i / 4) *. 10.0))
  in
  let r = Bst.route ~skew_bound:0.0 ~source:(pt 15.0 15.0) sinks in
  check_embedding "grid" r;
  Alcotest.(check (float 1e-6)) "grid zero skew" 0.0 (r.Bst.dmax -. r.Bst.dmin);
  (* a 4x4 grid with the source at the centre: a perfect H-tree costs
     8 * 2 * 10 = ... just sanity-check the cost is in a plausible window *)
  Alcotest.(check bool) "plausible cost" true (r.Bst.cost >= 150.0 && r.Bst.cost <= 400.0)

let prop_skew_bound =
  QCheck.Test.make ~name:"achieved skew within requested bound" ~count:60
    QCheck.(triple small_int (int_range 2 15) (float_range 0.0 50.0))
    (fun (seed, m, bound) ->
      let rng = Prng.create seed in
      let sinks = random_sinks rng m 60.0 in
      let r = Bst.route ~skew_bound:bound sinks in
      r.Bst.dmax -. r.Bst.dmin <= bound +. 1e-6)

let () =
  Alcotest.run "bst"
    [
      ( "basics",
        [
          Alcotest.test_case "two sinks zero skew" `Quick test_two_sinks_zero_skew;
          Alcotest.test_case "single sink" `Quick test_single_sink_with_source;
          Alcotest.test_case "rejects degenerate input" `Quick test_rejects_empty;
          Alcotest.test_case "collinear/duplicate sinks" `Quick
            test_collinear_and_duplicate_sinks;
          Alcotest.test_case "grid with central source" `Quick test_grid_instance;
        ] );
      ( "bounded-skew",
        [
          Alcotest.test_case "skew bound respected" `Slow test_skew_bound_respected;
          Alcotest.test_case "bound 0 ~ ZST-DME optimum" `Slow
            test_zero_bound_matches_zst_dme;
          Alcotest.test_case "unbounded cheaper than ZST" `Slow
            test_looser_bound_never_much_worse;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "extract_instance feasibility" `Slow
            test_extract_instance_protocol;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_skew_bound ]);
    ]
