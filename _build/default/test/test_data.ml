(* Tests for the benchmark substrate: deterministic generation, sane
   geometry, the paper-example fixtures, and the instance/topology file
   round-trips. *)

module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Benchmarks = Lubt_data.Benchmarks
module Examples = Lubt_data.Examples
module Io = Lubt_data.Io
module Topogen = Lubt_topo.Topogen
module Prng = Lubt_util.Prng

let test_specs_present () =
  List.iter
    (fun size ->
      let specs = Benchmarks.specs size in
      Alcotest.(check int) "four benchmarks" 4 (List.length specs);
      Alcotest.(check (list string)) "names"
        [ "prim1s"; "prim2s"; "r1s"; "r3s" ]
        (List.map (fun s -> s.Benchmarks.name) specs))
    [ Benchmarks.Tiny; Benchmarks.Scaled; Benchmarks.Full ]

let test_full_sizes_match_paper () =
  let expected = [ ("prim1s", 269); ("prim2s", 603); ("r1s", 267); ("r3s", 862) ] in
  List.iter
    (fun (name, n) ->
      let spec = Benchmarks.find Benchmarks.Full name in
      Alcotest.(check int) name n spec.Benchmarks.num_sinks)
    expected

let test_generation_deterministic () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s" in
  let a = Benchmarks.sinks spec and b = Benchmarks.sinks spec in
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i p -> Alcotest.(check bool) "same point" true (Point.equal p b.(i)))
    a

let test_sinks_within_extent () =
  List.iter
    (fun spec ->
      Array.iter
        (fun p ->
          Alcotest.(check bool) "in chip" true
            (p.Point.x >= 0.0
            && p.Point.x <= spec.Benchmarks.extent
            && p.Point.y >= 0.0
            && p.Point.y <= spec.Benchmarks.extent))
        (Benchmarks.sinks spec))
    (Benchmarks.specs Benchmarks.Scaled)

let test_instance_normalised_bounds () =
  let spec = Benchmarks.find Benchmarks.Tiny "r1s" in
  let inst = Benchmarks.instance ~lower:0.5 ~upper:1.5 spec in
  let r = Instance.radius inst in
  Alcotest.(check (float 1e-9)) "lower" (0.5 *. r) inst.Instance.lower.(0);
  Alcotest.(check (float 1e-9)) "upper" (1.5 *. r) inst.Instance.upper.(0);
  Alcotest.(check bool) "admissible" true (Instance.bounds_admissible inst)

let test_five_point_fixture () =
  let inst, tree = Examples.five_point () in
  Alcotest.(check int) "five sinks" 5 (Instance.num_sinks inst);
  Alcotest.(check int) "nine nodes" 9 (Tree.num_nodes tree);
  Alcotest.(check bool) "admissible bounds" true (Instance.bounds_admissible inst);
  Alcotest.(check bool) "all sinks leaves" true (Tree.all_sinks_are_leaves tree)

let test_figure1_fixture () =
  let inst = Examples.figure1_instance () in
  Alcotest.(check int) "two sinks" 2 (Instance.num_sinks inst);
  let chain = Examples.figure1_chain () and star = Examples.figure1_star () in
  Alcotest.(check bool) "chain has internal sink" false
    (Tree.all_sinks_are_leaves chain);
  Alcotest.(check bool) "star sinks are leaves" true
    (Tree.all_sinks_are_leaves star)

let test_instance_roundtrip () =
  let rng = Prng.create 5150 in
  for _ = 1 to 20 do
    let m = 1 + Prng.int rng 10 in
    let sinks =
      Array.init m (fun _ -> Point.make (Prng.float rng 50.0) (Prng.float rng 50.0))
    in
    let source =
      if Prng.bool rng then Some (Point.make (Prng.float rng 50.0) (Prng.float rng 50.0))
      else None
    in
    let lower = Array.init m (fun _ -> Prng.float rng 5.0) in
    let upper =
      Array.mapi
        (fun i l -> if Prng.bool rng then infinity else l +. Prng.float rng 50.0 +. float_of_int i)
        lower
    in
    let inst = Instance.create ?source ~sinks ~lower ~upper () in
    match Io.instance_of_string (Io.instance_to_string inst) with
    | Error msg -> Alcotest.fail msg
    | Ok back ->
      Alcotest.(check int) "sink count" m (Instance.num_sinks back);
      Array.iteri
        (fun i p ->
          Alcotest.(check bool) "sink pos" true
            (Point.equal p back.Instance.sinks.(i));
          Alcotest.(check (float 1e-12)) "lower" inst.Instance.lower.(i)
            back.Instance.lower.(i);
          Alcotest.(check bool) "upper" true
            (inst.Instance.upper.(i) = back.Instance.upper.(i)
            || abs_float (inst.Instance.upper.(i) -. back.Instance.upper.(i)) < 1e-9))
        inst.Instance.sinks;
      Alcotest.(check bool) "source presence" true
        ((inst.Instance.source = None) = (back.Instance.source = None))
  done

let test_tree_roundtrip () =
  let rng = Prng.create 31415 in
  for _ = 1 to 20 do
    let m = 2 + Prng.int rng 12 in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:(Prng.bool rng) in
    match Io.tree_of_string (Io.tree_to_string tree) with
    | Error msg -> Alcotest.fail msg
    | Ok back ->
      Alcotest.(check int) "nodes" (Tree.num_nodes tree) (Tree.num_nodes back);
      for v = 1 to Tree.num_nodes tree - 1 do
        Alcotest.(check int) "parent" (Tree.parent tree v) (Tree.parent back v);
        Alcotest.(check bool) "zero flag" (Tree.forced_zero tree v)
          (Tree.forced_zero back v)
      done;
      Alcotest.(check bool) "sinks" true (Tree.sinks tree = Tree.sinks back)
  done

let test_io_error_handling () =
  let cases =
    [
      ("", "no sinks");
      ("sink 1 2", "bad sink arity");
      ("sink a b 0 1", "bad coords");
      ("bogus 1 2", "unknown record");
      ("source 0 0\nsource 1 1\nsink 0 0 0 1", "duplicate source");
      ("sink 0 0 5 1", "lower above upper");
    ]
  in
  List.iter
    (fun (text, why) ->
      match Io.instance_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" why)
    cases;
  List.iter
    (fun (text, why) ->
      match Io.tree_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected tree parse failure: %s" why)
    [
      ("", "missing nodes");
      ("nodes 3\nedge 1 0\nsink 1", "node 2 has no edge");
      ("nodes 2\nedge 1 0", "no sinks");
      ("nodes 2\nedge 5 0\nsink 1", "edge out of range");
    ]

let test_file_roundtrip () =
  let inst, tree = Examples.five_point () in
  let dir = Filename.temp_file "lubt" "" in
  Sys.remove dir;
  let ipath = dir ^ ".inst" and tpath = dir ^ ".tree" in
  Io.write_instance ipath inst;
  Io.write_tree tpath tree;
  (match Io.read_instance ipath with
  | Ok back -> Alcotest.(check int) "sinks" 5 (Instance.num_sinks back)
  | Error msg -> Alcotest.fail msg);
  (match Io.read_tree tpath with
  | Ok back -> Alcotest.(check int) "nodes" 9 (Tree.num_nodes back)
  | Error msg -> Alcotest.fail msg);
  Sys.remove ipath;
  Sys.remove tpath;
  match Io.read_instance "/nonexistent/path.inst" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let () =
  Alcotest.run "data"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "specs present" `Quick test_specs_present;
          Alcotest.test_case "full sizes match paper" `Quick
            test_full_sizes_match_paper;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "within extent" `Quick test_sinks_within_extent;
          Alcotest.test_case "normalised bounds" `Quick
            test_instance_normalised_bounds;
        ] );
      ( "examples",
        [
          Alcotest.test_case "five point" `Quick test_five_point_fixture;
          Alcotest.test_case "figure 1" `Quick test_figure1_fixture;
        ] );
      ( "io",
        [
          Alcotest.test_case "instance roundtrip" `Quick test_instance_roundtrip;
          Alcotest.test_case "tree roundtrip" `Quick test_tree_roundtrip;
          Alcotest.test_case "error handling" `Quick test_io_error_handling;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        ] );
    ]
