(* End-to-end tests of the paper's core contribution: the EBF linear
   program, constraint generation (lazy vs eager), the zero-skew closed
   form, Steiner-point embedding, validation, snaking, and the Elmore
   extension. Includes the paper's own examples (Figures 1, 3, 4). *)

module Point = Lubt_geom.Point
module Trr = Lubt_geom.Trr
module Tree = Lubt_topo.Tree
module Topogen = Lubt_topo.Topogen
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Embed = Lubt_core.Embed
module Routed = Lubt_core.Routed
module Zeroskew = Lubt_core.Zeroskew
module Snake = Lubt_core.Snake
module Lubt = Lubt_core.Lubt
module Elmore_ebf = Lubt_core.Elmore_ebf
module Elmore = Lubt_delay.Elmore
module Status = Lubt_lp.Status
module Tableau = Lubt_lp.Tableau
module Prng = Lubt_util.Prng

let pt = Point.make

let check_float = Alcotest.(check (float 1e-5))

(* ------------------------------------------------------------------ *)
(* Paper examples                                                      *)
(* ------------------------------------------------------------------ *)

(* Figure 1: source at (0,0), two sinks at distance 3 on opposite sides.
   With upper bounds 6: the chain topology source->s1->s2 is infeasible
   (path to s2 at least dist(0,s1)+dist(s1,s2) = 3+6 = 9 > 6), while the
   star topology is feasible. *)
let test_figure1_topology_feasibility () =
  let sinks = [| pt 3.0 0.0; pt (-3.0) 0.0 |] in
  let inst =
    Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0 ~upper:6.0 ()
  in
  (* (a) chain: s2's parent is s1 (both sinks internal is fine for EBF) *)
  let chain = Tree.create ~parents:[| -1; 0; 1 |] ~sinks:[| 1; 2 |] () in
  (match Lubt.solve inst chain with
  | Error Lubt.No_solution -> ()
  | Ok _ -> Alcotest.fail "chain topology should be infeasible"
  | Error e -> Alcotest.failf "unexpected error: %s" (Lubt.error_to_string e));
  (* (b) star via a steiner point *)
  let star = Tree.create ~parents:[| -1; 3; 3; 0 |] ~sinks:[| 1; 2 |] () in
  match Lubt.solve inst star with
  | Ok r ->
    (match Routed.validate r.Lubt.routed with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid embedding: %s" (String.concat "; " es));
    check_float "star cost is just the two spokes" 6.0 (Routed.cost r.Lubt.routed)
  | Error e -> Alcotest.failf "star should be feasible: %s" (Lubt.error_to_string e)

(* Section 4.5 / Figure 3: the 5-sink, 8-edge example with bounds [4, 6].
   The figure's exact coordinates are not printed in the paper, so we use a
   reconstructed layout with the same topology and check every claimed
   structural property instead of the (coordinate-dependent) numbers. *)
let five_point_instance () =
  let sinks = [| pt 0.0 4.0; pt 3.0 6.0; pt 6.0 5.0; pt 6.0 3.0; pt 1.0 0.0 |] in
  Instance.uniform_bounds ~sinks ~lower:4.0 ~upper:6.0 ()

let five_point_tree () =
  Tree.create ~parents:[| -1; 6; 8; 7; 7; 6; 0; 8; 0 |] ~sinks:[| 1; 2; 3; 4; 5 |] ()

let test_five_point_example () =
  let inst = five_point_instance () and tree = five_point_tree () in
  Alcotest.(check bool) "bounds admissible" true (Instance.bounds_admissible inst);
  let r = Lubt.solve_exn inst tree in
  (match Routed.validate r.Lubt.routed with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  let delays = Routed.sink_delays r.Lubt.routed in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "delay within [4,6]" true (d >= 4.0 -. 1e-6 && d <= 6.0 +. 1e-6))
    delays;
  (* the LP objective equals the routed cost *)
  check_float "objective = cost" r.Lubt.ebf.Ebf.objective (Routed.cost r.Lubt.routed);
  (* and matches the independent tableau solver on the eager formulation *)
  let full = Ebf.formulate inst tree in
  let oracle = Tableau.solve full in
  Alcotest.(check bool) "oracle optimal" true (oracle.Status.status = Status.Optimal);
  check_float "matches tableau oracle" oracle.Status.objective r.Lubt.ebf.Ebf.objective

(* Section 4.7 / Figure 4: in the Euclidean metric the edge lengths
   e1 = e2 = e3 = 1/2 satisfy all pairwise constraints for a unit
   equilateral triangle, yet no placement exists (the circumradius is
   1/sqrt(3) > 1/2). In the Manhattan metric the same construction does
   embed. *)
let test_euclidean_counterexample () =
  let sinks = [| pt 0.0 0.0; pt 1.0 0.0; pt 0.5 (sqrt 3.0 /. 2.0) |] in
  (* pairwise Euclidean distances are 1; e_i = 1/2 satisfies e_i + e_j >= 1 *)
  let e = 0.5 in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q ->
          if i < j then
            Alcotest.(check bool) "pairwise satisfied" true
              (e +. e >= Point.dist_euclid p q -. 1e-9))
        sinks)
    sinks;
  (* ... but the Euclidean 1/2-balls have empty common intersection *)
  let circumradius = 1.0 /. sqrt 3.0 in
  Alcotest.(check bool) "no euclidean placement" true (circumradius > e +. 1e-9);
  (* the Manhattan version embeds fine *)
  let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:2.0 () in
  let tree = Tree.create ~parents:[| -1; 0; 0; 0 |] ~sinks:[| 1; 2; 3 |] () in
  let r = Lubt.solve_exn inst tree in
  match Routed.validate r.Lubt.routed with
  | Ok () -> ()
  | Error es -> Alcotest.failf "manhattan embed failed: %s" (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Randomised end-to-end properties                                    *)
(* ------------------------------------------------------------------ *)

let random_instance rng m ~with_source =
  let coord () = Prng.float rng 100.0 in
  let sinks = Array.init m (fun _ -> pt (coord ()) (coord ())) in
  let source = if with_source then Some (pt (coord ()) (coord ())) else None in
  let base = Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity () in
  let r = Instance.radius base in
  (* admissible bounds: u >= radius guarantees (3)/(4) *)
  let u = r *. (1.0 +. Prng.float rng 1.0) in
  let l = Prng.float rng u in
  (Instance.uniform_bounds ?source ~sinks ~lower:l ~upper:u (), l, u)

(* Lemma 3.1: topologies whose sinks are all leaves admit a LUBT for any
   admissible bounds; the solver must find it and the embedding must pass
   full validation. *)
let test_lemma31_always_feasible () =
  let rng = Prng.create 314 in
  for case = 1 to 25 do
    let m = 2 + Prng.int rng 14 in
    let with_source = Prng.bool rng in
    let inst, _, _ = random_instance rng m ~with_source in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    match Lubt.solve inst tree with
    | Ok r -> (
      match Routed.validate r.Lubt.routed with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "case %d: invalid embedding: %s" case
          (String.concat "; " es))
    | Error e ->
      Alcotest.failf "case %d: expected feasible (Lemma 3.1): %s" case
        (Lubt.error_to_string e)
  done

let test_lazy_equals_eager () =
  let rng = Prng.create 2718 in
  for case = 1 to 12 do
    let m = 6 + Prng.int rng 14 in
    let with_source = Prng.bool rng in
    let inst, _, _ = random_instance rng m ~with_source in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    let lazy_r =
      Ebf.solve ~options:{ Ebf.default_options with lazy_steiner = true } inst tree
    in
    let eager_r =
      Ebf.solve ~options:{ Ebf.default_options with lazy_steiner = false } inst tree
    in
    Alcotest.(check bool) "both optimal" true
      (lazy_r.Ebf.status = Status.Optimal && eager_r.Ebf.status = Status.Optimal);
    if not (Lubt_util.Stats.approx_eq ~eps:1e-6 lazy_r.Ebf.objective eager_r.Ebf.objective)
    then
      Alcotest.failf "case %d: lazy %.9g vs eager %.9g" case lazy_r.Ebf.objective
        eager_r.Ebf.objective;
    (* the lazy solution must satisfy every constraint exhaustively *)
    (match Ebf.check_lengths inst tree lazy_r.Ebf.lengths with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "case %d: %s" case msg);
    (* and use no more rows than the full formulation *)
    Alcotest.(check bool) "row reduction" true
      (lazy_r.Ebf.lp_rows <= eager_r.Ebf.lp_rows)
  done

let test_matches_tableau_oracle () =
  let rng = Prng.create 99 in
  for case = 1 to 10 do
    let m = 3 + Prng.int rng 6 in
    let with_source = Prng.bool rng in
    let inst, _, _ = random_instance rng m ~with_source in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    let mine = Ebf.solve inst tree in
    let oracle = Tableau.solve (Ebf.formulate inst tree) in
    Alcotest.(check bool) "statuses optimal" true
      (mine.Ebf.status = Status.Optimal && oracle.Status.status = Status.Optimal);
    if not (Lubt_util.Stats.approx_eq ~eps:1e-6 mine.Ebf.objective oracle.Status.objective)
    then
      Alcotest.failf "case %d: ebf %.9g vs tableau %.9g" case mine.Ebf.objective
        oracle.Status.objective
  done

let test_infeasible_bounds_detected () =
  (* upper bound below the source-sink distance: no tree can exist *)
  let sinks = [| pt 10.0 0.0; pt 0.0 10.0 |] in
  let inst =
    Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0 ~upper:5.0 ()
  in
  Alcotest.(check bool) "not admissible" false (Instance.bounds_admissible inst);
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:true in
  match Lubt.solve inst tree with
  | Error Lubt.No_solution -> ()
  | Ok _ -> Alcotest.fail "expected infeasible"
  | Error e -> Alcotest.failf "unexpected error: %s" (Lubt.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Zero skew                                                           *)
(* ------------------------------------------------------------------ *)

let test_zeroskew_matches_lp () =
  let rng = Prng.create 555 in
  for case = 1 to 12 do
    let m = 2 + Prng.int rng 10 in
    let with_source = Prng.bool rng in
    let coord () = Prng.float rng 50.0 in
    let sinks = Array.init m (fun _ -> pt (coord ()) (coord ())) in
    let source = if with_source then Some (pt (coord ()) (coord ())) else None in
    let relaxed = Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity () in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    let zs = Zeroskew.balance relaxed tree in
    let c = zs.Zeroskew.root_delay in
    (* LP with l = u = c must be feasible with the same minimal cost *)
    let inst = Instance.uniform_bounds ?source ~sinks ~lower:c ~upper:c () in
    let lp = Ebf.solve inst tree in
    Alcotest.(check bool) "lp optimal" true (lp.Ebf.status = Status.Optimal);
    let zs_cost = Lubt_util.Stats.sum (Array.sub zs.Zeroskew.lengths 1 (Tree.num_edges tree)) in
    if not (Lubt_util.Stats.approx_eq ~eps:1e-6 zs_cost lp.Ebf.objective) then
      Alcotest.failf "case %d (m=%d src=%b): closed form %.9g vs LP %.9g" case m
        with_source zs_cost lp.Ebf.objective;
    (* the closed-form lengths satisfy every constraint *)
    match Ebf.check_lengths inst tree zs.Zeroskew.lengths with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "case %d: closed form invalid: %s" case msg
  done

let test_zeroskew_target_below_minimum () =
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0 |] in
  let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:infinity () in
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:false in
  match Zeroskew.solve ~target:1.0 inst tree with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "target below minimum must fail"

let test_zeroskew_elongated_target () =
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0; pt 0.0 10.0; pt 10.0 10.0 |] in
  let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:infinity () in
  let tree = Topogen.balanced_binary ~num_sinks:4 ~source_edge:false in
  let base = Zeroskew.balance inst tree in
  let target = base.Zeroskew.root_delay +. 3.0 in
  match Zeroskew.solve ~target inst tree with
  | Error msg -> Alcotest.fail msg
  | Ok zs ->
    let d = Lubt_delay.Linear.sink_delays tree zs.Zeroskew.lengths in
    Array.iter (fun x -> check_float "uniform delay" target x) d

(* ------------------------------------------------------------------ *)
(* Embedding details                                                   *)
(* ------------------------------------------------------------------ *)

let test_embedding_policies () =
  let rng = Prng.create 4242 in
  let m = 9 in
  let inst, _, _ = random_instance rng m ~with_source:true in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
  let ebf = Ebf.solve inst tree in
  Alcotest.(check bool) "optimal" true (ebf.Ebf.status = Status.Optimal);
  List.iter
    (fun policy ->
      match Embed.place ~policy inst tree ebf.Ebf.lengths with
      | Error msg -> Alcotest.fail msg
      | Ok emb ->
        let routed =
          { Routed.instance = inst; tree; lengths = ebf.Ebf.lengths;
            positions = emb.Embed.positions }
        in
        (match Routed.validate routed with
        | Ok () -> ()
        | Error es -> Alcotest.failf "policy invalid: %s" (String.concat "; " es)))
    [ Embed.Center; Embed.Closest_to_parent; Embed.Sampled (Prng.create 1) ]

let test_embedding_rejects_bad_lengths () =
  (* shrink one edge below the required distance: some feasible region
     must become empty *)
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0 |] in
  let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:infinity () in
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:false in
  let lengths = Array.make (Tree.num_nodes tree) 1.0 in
  lengths.(0) <- 0.0;
  (* total available 2.0 < dist 10 *)
  match Embed.place inst tree lengths with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected embedding failure"

let test_snake_lengths () =
  let rng = Prng.create 808 in
  for _ = 1 to 200 do
    let p = pt (Prng.float rng 20.0) (Prng.float rng 20.0) in
    let q = pt (Prng.float rng 20.0) (Prng.float rng 20.0) in
    let extra = Prng.float rng 10.0 in
    let len = Point.dist p q +. extra in
    let poly = Snake.route p q len in
    (match poly with
    | first :: _ ->
      Alcotest.(check bool) "starts at p" true (Point.equal first p)
    | [] -> Alcotest.fail "empty polyline");
    let last = List.nth poly (List.length poly - 1) in
    Alcotest.(check bool) "ends at q" true (Point.equal last q);
    Alcotest.(check (float 1e-9)) "exact length" len (Snake.length poly)
  done

let test_snake_whole_tree () =
  let rng = Prng.create 4711 in
  let m = 8 in
  let inst, _, _ = random_instance rng m ~with_source:false in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:false in
  let r = Lubt.solve_exn inst tree in
  let polys = Snake.route_tree r.Lubt.routed in
  Alcotest.(check int) "one polyline per edge" (Tree.num_edges tree)
    (Array.length polys);
  let total =
    Array.fold_left (fun acc (_, poly) -> acc +. Snake.length poly) 0.0 polys
  in
  check_float "snaked wire total = LP cost" (Routed.cost r.Lubt.routed) total

(* ------------------------------------------------------------------ *)
(* Weighted objective (Section 7)                                      *)
(* ------------------------------------------------------------------ *)

let test_weighted_objective () =
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0 |] in
  let inst =
    Instance.uniform_bounds ~source:(pt 5.0 5.0) ~sinks ~lower:0.0 ~upper:30.0 ()
  in
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:true in
  let n = Tree.num_nodes tree in
  let flat = Ebf.solve inst tree in
  (* weight one sink's edge heavily: total unweighted wire may grow but the
     weighted objective must not exceed the flat solution's weighted cost *)
  let weights = Array.make n 1.0 in
  weights.(1) <- 10.0;
  let weighted = Ebf.solve ~weights inst tree in
  Alcotest.(check bool) "both optimal" true
    (flat.Ebf.status = Status.Optimal && weighted.Ebf.status = Status.Optimal);
  let weighted_cost_of lengths =
    let acc = ref 0.0 in
    for i = 1 to n - 1 do
      acc := !acc +. (weights.(i) *. lengths.(i))
    done;
    !acc
  in
  Alcotest.(check bool) "weighted optimum no worse" true
    (weighted.Ebf.objective <= weighted_cost_of flat.Ebf.lengths +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Elmore extension (Section 7)                                        *)
(* ------------------------------------------------------------------ *)

let elmore_setup rng m =
  let coord () = Prng.float rng 10.0 in
  let sinks = Array.init m (fun _ -> pt (coord ()) (coord ())) in
  let source = pt (coord ()) (coord ()) in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
  let wire = { Elmore.r_w = 0.1; c_w = 0.2 } in
  let loads = Array.make m 1.0 in
  (sinks, source, tree, wire, loads)

let test_elmore_upper_bound_only () =
  let rng = Prng.create 31337 in
  let m = 6 in
  let sinks, source, tree, wire, loads = elmore_setup rng m in
  (* find the Elmore delays of the relaxed optimum, then tighten *)
  let relaxed = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let r0 = Ebf.solve relaxed tree in
  let d0 = Elmore.sink_delays tree wire loads r0.Ebf.lengths in
  let u = 1.5 *. Array.fold_left max 0.0 d0 in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:u () in
  let res = Elmore_ebf.solve ~wire ~loads inst tree in
  (match res.Elmore_ebf.status with
  | Elmore_ebf.Converged -> ()
  | Elmore_ebf.Stalled -> Alcotest.fail "SLP stalled"
  | Elmore_ebf.Lp_failure st -> Alcotest.failf "LP failure: %s" (Status.to_string st));
  Array.iter
    (fun d -> Alcotest.(check bool) "elmore delay within bound" true (d <= u +. 1e-6))
    res.Elmore_ebf.sink_delays;
  Alcotest.(check bool) "violation small" true (res.Elmore_ebf.max_violation <= 1e-5)

let test_elmore_with_lower_bound () =
  let rng = Prng.create 9001 in
  let m = 5 in
  let sinks, source, tree, wire, loads = elmore_setup rng m in
  let relaxed = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let r0 = Ebf.solve relaxed tree in
  let d0 = Elmore.sink_delays tree wire loads r0.Ebf.lengths in
  let dmax = Array.fold_left max 0.0 d0 in
  let l = 1.1 *. dmax and u = 3.0 *. dmax in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:l ~upper:u () in
  let res = Elmore_ebf.solve ~wire ~loads inst tree in
  Alcotest.(check bool) "found feasible point" true
    (res.Elmore_ebf.max_violation <= 1e-4 *. dmax);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "delay in window" true
        (d >= l -. (1e-4 *. dmax) && d <= u +. (1e-4 *. dmax)))
    res.Elmore_ebf.sink_delays

(* ------------------------------------------------------------------ *)
(* LP scaling behaviour of the row generation                           *)
(* ------------------------------------------------------------------ *)

let test_row_generation_economy () =
  let rng = Prng.create 60 in
  let m = 40 in
  let inst, _, _ = random_instance rng m ~with_source:true in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
  let r = Ebf.solve inst tree in
  Alcotest.(check bool) "optimal" true (r.Ebf.status = Status.Optimal);
  (* the lazy LP should stay well below the full (m+1 choose 2) + 2m rows *)
  Alcotest.(check bool) "lazy rows below full" true (r.Ebf.lp_rows < r.Ebf.full_rows);
  match Ebf.check_lengths inst tree r.Ebf.lengths with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "core"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "figure 1 feasibility" `Quick
            test_figure1_topology_feasibility;
          Alcotest.test_case "section 4.5 five-point" `Quick
            test_five_point_example;
          Alcotest.test_case "figure 4 euclidean counterexample" `Quick
            test_euclidean_counterexample;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "lemma 3.1 always feasible" `Slow
            test_lemma31_always_feasible;
          Alcotest.test_case "lazy = eager" `Slow test_lazy_equals_eager;
          Alcotest.test_case "matches tableau oracle" `Quick
            test_matches_tableau_oracle;
          Alcotest.test_case "infeasible bounds detected" `Quick
            test_infeasible_bounds_detected;
          Alcotest.test_case "row generation economy" `Quick
            test_row_generation_economy;
        ] );
      ( "zero-skew",
        [
          Alcotest.test_case "closed form = LP" `Slow test_zeroskew_matches_lp;
          Alcotest.test_case "target below minimum" `Quick
            test_zeroskew_target_below_minimum;
          Alcotest.test_case "elongated target" `Quick
            test_zeroskew_elongated_target;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "all policies validate" `Quick
            test_embedding_policies;
          Alcotest.test_case "rejects bad lengths" `Quick
            test_embedding_rejects_bad_lengths;
          Alcotest.test_case "snake segment lengths" `Quick test_snake_lengths;
          Alcotest.test_case "snake whole tree" `Quick test_snake_whole_tree;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "weighted objective" `Quick test_weighted_objective;
          Alcotest.test_case "elmore upper bound" `Slow
            test_elmore_upper_bound_only;
          Alcotest.test_case "elmore with lower bound" `Slow
            test_elmore_with_lower_bound;
        ] );
    ]
