(* Tests for Manhattan geometry: points, TRR interval arithmetic, the Helly
   property that underpins Theorem 4.1, and closest-point computations. *)

module Point = Lubt_geom.Point
module Trr = Lubt_geom.Trr
module Prng = Lubt_util.Prng

let pt = Point.make

let test_dist () =
  Alcotest.(check (float 1e-12)) "dist" 7.0 (Point.dist (pt 0.0 0.0) (pt 3.0 4.0));
  Alcotest.(check (float 1e-12)) "dist sym" 7.0 (Point.dist (pt 3.0 4.0) (pt 0.0 0.0));
  Alcotest.(check (float 1e-12)) "dist zero" 0.0 (Point.dist (pt 1.0 1.0) (pt 1.0 1.0));
  Alcotest.(check (float 1e-12)) "euclid" 5.0
    (Point.dist_euclid (pt 0.0 0.0) (pt 3.0 4.0))

let test_rotation_roundtrip () =
  let rng = Prng.create 5 in
  for _ = 1 to 100 do
    let p = pt (Prng.float_range rng (-50.) 50.) (Prng.float_range rng (-50.) 50.) in
    let u, v = Point.to_rotated p in
    Alcotest.(check bool) "roundtrip" true (Point.equal p (Point.of_rotated u v))
  done

let test_rotation_metric () =
  (* Manhattan distance equals Chebyshev distance in rotated coordinates *)
  let rng = Prng.create 6 in
  for _ = 1 to 200 do
    let p = pt (Prng.float rng 10.) (Prng.float rng 10.) in
    let q = pt (Prng.float rng 10.) (Prng.float rng 10.) in
    let up, vp = Point.to_rotated p and uq, vq = Point.to_rotated q in
    let cheb = max (abs_float (up -. uq)) (abs_float (vp -. vq)) in
    Alcotest.(check (float 1e-9)) "metric" (Point.dist p q) cheb
  done

let test_point_trr () =
  let p = pt 2.0 3.0 in
  let t = Trr.of_point p in
  Alcotest.(check bool) "is point" true (Trr.is_point t);
  Alcotest.(check bool) "contains" true (Trr.contains t p);
  Alcotest.(check bool) "not contains" false (Trr.contains t (pt 2.1 3.0));
  Alcotest.(check (float 1e-12)) "zero width" 0.0 (Trr.width t)

let test_expand_distance () =
  let a = Trr.of_point (pt 0.0 0.0) in
  let b = Trr.of_point (pt 6.0 0.0) in
  Alcotest.(check (float 1e-12)) "point dist" 6.0 (Trr.distance a b);
  let a2 = Trr.expand a 2.0 in
  Alcotest.(check (float 1e-12)) "after expand" 4.0 (Trr.distance a2 b);
  Alcotest.(check bool) "expand contains nearby" true (Trr.contains a2 (pt 1.0 1.0));
  Alcotest.(check bool) "expand excludes far" false (Trr.contains a2 (pt 2.0 1.0));
  (* expanding both until they just touch *)
  let a3 = Trr.expand a 3.0 and b3 = Trr.expand b 3.0 in
  Alcotest.(check (float 1e-9)) "touching" 0.0 (Trr.distance a3 b3);
  match Trr.intersect a3 b3 with
  | None -> Alcotest.fail "touching TRRs must intersect"
  | Some seg ->
    (* the intersection is the perpendicular bisector segment *)
    Alcotest.(check bool) "segment" true (Trr.width seg <= 1e-9);
    Alcotest.(check bool) "contains midpoint" true (Trr.contains seg (pt 3.0 0.0))

let test_intersection_empty () =
  let a = Trr.expand (Trr.of_point (pt 0.0 0.0)) 1.0 in
  let b = Trr.expand (Trr.of_point (pt 10.0 0.0)) 1.0 in
  Alcotest.(check bool) "disjoint" true (Trr.intersect a b = None);
  Alcotest.(check (float 1e-12)) "distance" 8.0 (Trr.distance a b)

let random_trr rng =
  let p = pt (Prng.float_range rng (-20.) 20.) (Prng.float_range rng (-20.) 20.) in
  let q = pt (Prng.float_range rng (-20.) 20.) (Prng.float_range rng (-20.) 20.) in
  Trr.expand (Trr.of_points [ p; q ]) (Prng.float rng 5.0)

(* Lemma 10.1 (Helly property): pairwise-intersecting TRRs have a common
   point. This fails for Euclidean balls; it is the crux of Theorem 4.1. *)
let test_helly_property () =
  let rng = Prng.create 77 in
  let trials = ref 0 in
  while !trials < 200 do
    let ts = List.init 4 (fun _ -> random_trr rng) in
    let pairwise =
      List.for_all
        (fun a -> List.for_all (fun b -> Trr.intersect a b <> None) ts)
        ts
    in
    if pairwise then begin
      incr trials;
      match Trr.intersect_all ts with
      | None -> Alcotest.fail "Helly property violated"
      | Some _ -> ()
    end
    else incr trials
  done

let test_closest_point () =
  let t = Trr.expand (Trr.of_point (pt 0.0 0.0)) 2.0 in
  (* inside: the point itself *)
  let inside = pt 0.5 0.5 in
  Alcotest.(check bool) "inside unchanged" true
    (Point.equal (Trr.closest_point t inside) inside);
  (* outside: result on the boundary, distance consistent *)
  let outside = pt 5.0 0.0 in
  let c = Trr.closest_point t outside in
  Alcotest.(check bool) "on trr" true (Trr.contains t c);
  Alcotest.(check (float 1e-9)) "dist matches" (Trr.dist_to_point t outside)
    (Point.dist c outside);
  Alcotest.(check (float 1e-9)) "dist value" 3.0 (Point.dist c outside)

let test_closest_pair () =
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let a = random_trr rng and b = random_trr rng in
    let p, q = Trr.closest_pair a b in
    Alcotest.(check bool) "p in a" true (Trr.contains ~eps:1e-6 a p);
    Alcotest.(check bool) "q in b" true (Trr.contains ~eps:1e-6 b q);
    Alcotest.(check (float 1e-6)) "achieves distance" (Trr.distance a b)
      (Point.dist p q)
  done

let test_corners_and_center () =
  let t = Trr.expand (Trr.of_point (pt 1.0 1.0)) 3.0 in
  let corners = Trr.corners t in
  Alcotest.(check int) "four corners" 4 (List.length corners);
  List.iter
    (fun c ->
      Alcotest.(check bool) "corner on trr" true (Trr.contains t c);
      Alcotest.(check (float 1e-9)) "corner at radius" 3.0
        (Point.dist c (pt 1.0 1.0)))
    corners;
  Alcotest.(check bool) "center" true (Point.equal (Trr.center t) (pt 1.0 1.0))

let test_of_points_bounding () =
  let pts = [ pt 0.0 0.0; pt 4.0 0.0; pt 2.0 3.0 ] in
  let t = Trr.of_points pts in
  List.iter
    (fun p -> Alcotest.(check bool) "contains input" true (Trr.contains t p))
    pts

let test_subset_equal () =
  let a = Trr.expand (Trr.of_point (pt 0.0 0.0)) 1.0 in
  let b = Trr.expand (Trr.of_point (pt 0.0 0.0)) 2.0 in
  Alcotest.(check bool) "a subset b" true (Trr.subset a b);
  Alcotest.(check bool) "b not subset a" false (Trr.subset b a);
  Alcotest.(check bool) "a equal a" true (Trr.equal a a);
  Alcotest.(check bool) "a not equal b" false (Trr.equal a b)

(* properties *)

let trr_gen =
  QCheck.Gen.(
    map
      (fun (x1, y1, x2, y2, r) ->
        Trr.expand
          (Trr.of_points [ pt x1 y1; pt x2 y2 ])
          (abs_float r))
      (tup5 (float_range (-20.) 20.) (float_range (-20.) 20.)
         (float_range (-20.) 20.) (float_range (-20.) 20.)
         (float_range 0. 5.)))

let trr_arb = QCheck.make ~print:(fun t -> Format.asprintf "%a" Trr.pp t) trr_gen

let prop_intersection_commutes =
  QCheck.Test.make ~name:"intersect commutes" ~count:300
    (QCheck.pair trr_arb trr_arb) (fun (a, b) ->
      match (Trr.intersect a b, Trr.intersect b a) with
      | None, None -> true
      | Some x, Some y -> Trr.equal x y
      | _ -> false)

let prop_intersection_subset =
  QCheck.Test.make ~name:"intersection within both" ~count:300
    (QCheck.pair trr_arb trr_arb) (fun (a, b) ->
      match Trr.intersect a b with
      | None -> true
      | Some x -> Trr.subset x a && Trr.subset x b)

let prop_expand_monotone =
  QCheck.Test.make ~name:"expand is monotone" ~count:300
    (QCheck.pair trr_arb (QCheck.float_range 0.0 10.0)) (fun (a, r) ->
      Trr.subset a (Trr.expand a r))

let prop_expand_distance =
  QCheck.Test.make ~name:"expand reaches exactly distance" ~count:300
    (QCheck.pair trr_arb trr_arb) (fun (a, b) ->
      let d = Trr.distance a b in
      if d <= 0.0 then true
      else
        (* expanding a by d (plus roundoff headroom) makes them touch;
           by slightly less keeps them apart *)
        Trr.intersect (Trr.expand a (d *. (1.0 +. 1e-12) +. 1e-12)) b <> None
        && (d < 1e-6 || Trr.intersect (Trr.expand a (d *. 0.999)) b = None))

let prop_sample_inside =
  QCheck.Test.make ~name:"sample lies inside" ~count:300
    (QCheck.pair trr_arb QCheck.small_int) (fun (a, seed) ->
      let rng = Prng.create seed in
      Trr.contains ~eps:1e-9 a (Trr.sample rng a))

let prop_dist_triangle =
  QCheck.Test.make ~name:"point distance triangle inequality" ~count:300
    QCheck.(
      triple
        (pair (float_range (-20.) 20.) (float_range (-20.) 20.))
        (pair (float_range (-20.) 20.) (float_range (-20.) 20.))
        (pair (float_range (-20.) 20.) (float_range (-20.) 20.)))
    (fun ((x1, y1), (x2, y2), (x3, y3)) ->
      let a = pt x1 y1 and b = pt x2 y2 and c = pt x3 y3 in
      Point.dist a c <= Point.dist a b +. Point.dist b c +. 1e-9)

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "manhattan distance" `Quick test_dist;
          Alcotest.test_case "rotation roundtrip" `Quick test_rotation_roundtrip;
          Alcotest.test_case "rotation metric" `Quick test_rotation_metric;
        ] );
      ( "trr",
        [
          Alcotest.test_case "point trr" `Quick test_point_trr;
          Alcotest.test_case "expand and distance" `Quick test_expand_distance;
          Alcotest.test_case "empty intersection" `Quick test_intersection_empty;
          Alcotest.test_case "Helly property (Lemma 10.1)" `Quick
            test_helly_property;
          Alcotest.test_case "closest point" `Quick test_closest_point;
          Alcotest.test_case "closest pair" `Quick test_closest_pair;
          Alcotest.test_case "corners and center" `Quick test_corners_and_center;
          Alcotest.test_case "of_points bounding" `Quick test_of_points_bounding;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_intersection_commutes;
            prop_intersection_subset;
            prop_expand_monotone;
            prop_expand_distance;
            prop_sample_inside;
            prop_dist_triangle;
          ] );
    ]
