(* Tests of the experiment harness on the tiny benchmark size: the paper's
   qualitative claims must hold on every regenerated table. *)

module Benchmarks = Lubt_data.Benchmarks
module Tables = Lubt_experiments.Tables
module Protocol = Lubt_experiments.Protocol

let tiny = Benchmarks.Tiny

let test_table1_shape () =
  let rows = Tables.table1 ~size:tiny () in
  Alcotest.(check int) "4 benches x 8 skews" 32 (List.length rows);
  List.iter
    (fun (r : Tables.t1_row) ->
      (* LUBT never costs more than the baseline (Theorem 4.2 + the
         baseline's feasibility for the extracted bounds) *)
      if r.Tables.lubt_cost > r.Tables.bst_cost +. (1e-6 *. r.Tables.bst_cost) then
        Alcotest.failf "%s skew %g: LUBT %.8g > baseline %.8g" r.Tables.bench
          r.Tables.skew_rel r.Tables.lubt_cost r.Tables.bst_cost;
      (* with zero skew both are exact zero-skew trees of the same
         topology: costs agree tightly *)
      if r.Tables.skew_rel = 0.0 then begin
        Alcotest.(check bool) "zero-skew costs close" true
          (abs_float (r.Tables.lubt_cost -. r.Tables.bst_cost)
          <= 1e-4 *. r.Tables.bst_cost);
        Alcotest.(check (float 1e-6)) "shortest=1" 1.0 r.Tables.shortest;
        Alcotest.(check (float 1e-6)) "longest=1" 1.0 r.Tables.longest
      end)
    rows;
  (* cost at the loosest bound is strictly below cost at zero skew *)
  List.iter
    (fun bench ->
      let of_skew s =
        List.find
          (fun (r : Tables.t1_row) -> r.Tables.bench = bench && r.Tables.skew_rel = s)
          rows
      in
      let zst = of_skew 0.0 and free = of_skew infinity in
      Alcotest.(check bool)
        (bench ^ ": unbounded tree cheaper than zero-skew tree")
        true
        (free.Tables.lubt_cost < zst.Tables.lubt_cost))
    [ "prim1s"; "prim2s"; "r1s"; "r3s" ]

let test_table2_shape () =
  let rows = Tables.table2 ~size:tiny () in
  Alcotest.(check int) "2 benches x 2 skews x 4 windows" 16 (List.length rows);
  List.iter
    (fun (r : Tables.t2_row) ->
      Alcotest.(check (float 1e-9)) "window width = skew bound" r.Tables.skew_rel
        (r.Tables.upper_rel -. r.Tables.lower_rel);
      Alcotest.(check bool) "positive cost" true (r.Tables.cost > 0.0))
    rows;
  (* exactly one starred (baseline-produced) window per bench/skew *)
  List.iter
    (fun (bench, skew) ->
      let starred =
        List.filter
          (fun (r : Tables.t2_row) ->
            r.Tables.bench = bench && r.Tables.skew_rel = skew && r.Tables.from_baseline)
          rows
      in
      Alcotest.(check int) "one starred row" 1 (List.length starred))
    [ ("prim1s", 0.3); ("prim1s", 0.5); ("prim2s", 0.3); ("prim2s", 0.5) ]

let test_table3_shape () =
  let rows = Tables.table3 ~size:tiny () in
  Alcotest.(check int) "4 benches x 8 windows" 32 (List.length rows);
  (* paper's observation: as the window loosens the cost falls; compare
     the tightest window with the loosest per bench *)
  List.iter
    (fun bench ->
      let cost l u =
        (List.find
           (fun (r : Tables.t3_row) ->
             r.Tables.bench = bench && r.Tables.lower_rel = l && r.Tables.upper_rel = u)
           rows)
          .Tables.cost
      in
      Alcotest.(check bool) "tight [0.99,1] costs more than loose [0,2]" true
        (cost 0.99 1.0 > cost 0.0 2.0))
    [ "prim1s"; "prim2s"; "r1s"; "r3s" ]

let test_tradeoff_curve () =
  let points = Tables.tradeoff ~size:tiny () in
  Alcotest.(check bool) "enough points" true (List.length points >= 10);
  (* endpoints of the sweep: loosest is cheapest, tightest is most
     expensive (the curve between may wiggle due to topology changes) *)
  match (points, List.rev points) with
  | loosest :: _, tightest :: _ ->
    Alcotest.(check bool) "loose end cheaper" true
      (loosest.Tables.cost < tightest.Tables.cost)
  | _ -> Alcotest.fail "empty curve"

let test_ablation_consistency () =
  let r = Tables.ablation ~size:tiny () in
  Alcotest.(check bool) "lazy uses fewer rows" true (r.Tables.lazy_rows <= r.Tables.eager_rows);
  Alcotest.(check bool) "eager rows < full count (zero-dist pairs dropped)"
    true
    (r.Tables.eager_rows <= r.Tables.full_rows);
  Alcotest.(check bool) "objectives agree" true (r.Tables.objective_gap <= 1e-4);
  Alcotest.(check bool) "zero-skew closed form agrees with LP" true
    (r.Tables.zeroskew_gap <= 1e-4 *. 100000.0)

let test_protocol_infinite_skew () =
  let spec = Benchmarks.find tiny "prim1s" in
  let b = Protocol.run_baseline spec ~skew_rel:infinity in
  let l = Protocol.run_lubt_from_baseline b in
  Alcotest.(check (float 1e-9)) "lower bound 0" 0.0 l.Protocol.lower_rel;
  Alcotest.(check bool) "upper bound inf" true (l.Protocol.upper_rel = infinity)


let test_optimality_gap_ordering () =
  let rows = Tables.optimality_gap ~size:tiny () in
  List.iter
    (fun (r : Tables.gap_row) ->
      (* optimum <= fixed-window LUBT <= greedy, each up to tolerance *)
      let eps = 1e-6 *. r.Tables.greedy_cost in
      if r.Tables.optimal_bst_cost > r.Tables.lubt_window_cost +. eps then
        Alcotest.failf "skew %g: free-window optimum above fixed-window LUBT"
          r.Tables.skew_rel;
      if r.Tables.lubt_window_cost > r.Tables.greedy_cost +. eps then
        Alcotest.failf "skew %g: LUBT above the greedy baseline" r.Tables.skew_rel)
    rows

let test_elmore_extension_shape () =
  let rows = Tables.elmore_table () in
  List.iter
    (fun (r : Tables.elmore_row) ->
      Alcotest.(check bool) "residual tiny" true (r.Tables.elmore_violation <= 1e-5);
      (* elongation is cheaper under the quadratic model *)
      Alcotest.(check bool) "elmore needs no more wire than linear" true
        (r.Tables.elmore_cost <= r.Tables.linear_cost +. 1e-6))
    rows;
  (* tighter windows cost more under both models *)
  let costs = List.map (fun (r : Tables.elmore_row) -> r.Tables.linear_cost) rows in
  (match (costs, List.rev costs) with
  | loosest :: _, tightest :: _ ->
    Alcotest.(check bool) "linear cost grows as window tightens" true
      (tightest >= loosest -. 1e-6)
  | _ -> Alcotest.fail "empty table")

let test_global_routing_extension () =
  let rows = Tables.global_routing_table ~size:tiny () in
  List.iter
    (fun (r : Tables.global_routing_row) ->
      Alcotest.(check bool) "BRBC maxpath within bound" true
        (r.Tables.brbc_max_path <= 1.0 +. r.Tables.epsilon +. 1e-6);
      Alcotest.(check bool) "LUBT maxpath within bound" true
        (r.Tables.lubt_max_path <= 1.0 +. r.Tables.epsilon +. 1e-6);
      Alcotest.(check bool) "LUBT undercuts BRBC" true
        (r.Tables.lubt_cost <= r.Tables.brbc_cost +. (1e-6 *. r.Tables.brbc_cost));
      Alcotest.(check bool) "both above the MST at finite eps" true
        (r.Tables.brbc_cost >= r.Tables.mst_cost -. 1e-6))
    rows

let test_clustered_table1 () =
  let rows = Tables.table1 ~size:tiny ~clustered:true () in
  Alcotest.(check int) "4 benches x 8 skews" 32 (List.length rows);
  List.iter
    (fun (r : Tables.t1_row) ->
      if r.Tables.lubt_cost > r.Tables.bst_cost +. (1e-6 *. r.Tables.bst_cost) then
        Alcotest.failf "%s skew %g: LUBT above baseline" r.Tables.bench
          r.Tables.skew_rel)
    rows;
  (* the clustered zero-skew to Steiner spread is large (paper regime) *)
  let of_skew bench s =
    List.find
      (fun (r : Tables.t1_row) -> r.Tables.bench = bench && r.Tables.skew_rel = s)
      rows
  in
  let zst = of_skew "prim1s-c" 0.0 and free = of_skew "prim1s-c" infinity in
  Alcotest.(check bool) "spread over 20%" true
    (free.Tables.lubt_cost < 0.8 *. zst.Tables.lubt_cost)

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table 1 shape" `Slow test_table1_shape;
          Alcotest.test_case "table 2 shape" `Slow test_table2_shape;
          Alcotest.test_case "table 3 shape" `Slow test_table3_shape;
          Alcotest.test_case "figure 8 curve" `Slow test_tradeoff_curve;
          Alcotest.test_case "ablation consistency" `Slow test_ablation_consistency;
          Alcotest.test_case "protocol at infinite skew" `Quick
            test_protocol_infinite_skew;
          Alcotest.test_case "optimality gap ordering" `Slow
            test_optimality_gap_ordering;
          Alcotest.test_case "elmore extension shape" `Slow
            test_elmore_extension_shape;
          Alcotest.test_case "global routing extension" `Slow
            test_global_routing_extension;
          Alcotest.test_case "clustered table 1" `Slow test_clustered_table1;
        ] );
    ]
