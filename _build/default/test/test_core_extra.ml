(* Tests for the core extensions: topology optimisation (the paper's
   future work) and SVG rendering. *)

module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Topogen = Lubt_topo.Topogen
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Routed = Lubt_core.Routed
module Lubt = Lubt_core.Lubt
module Topo_opt = Lubt_core.Topo_opt
module Svg = Lubt_core.Svg
module Bst = Lubt_bst.Bst_dme
module Status = Lubt_lp.Status
module Prng = Lubt_util.Prng

let pt = Point.make

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Topology optimisation                                                *)
(* ------------------------------------------------------------------ *)

let random_instance rng m =
  let sinks =
    Array.init m (fun _ -> pt (Prng.float rng 100.0) (Prng.float rng 100.0))
  in
  let source = pt 50.0 50.0 in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let r = Instance.radius base in
  (Instance.uniform_bounds ~source ~sinks ~lower:(0.5 *. r) ~upper:(1.2 *. r) (),
   sinks, source)

let test_never_worsens () =
  let rng = Prng.create 2024 in
  for case = 1 to 8 do
    let m = 6 + Prng.int rng 10 in
    let inst, _, _ = random_instance rng m in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
    let r = Topo_opt.improve inst tree in
    if r.Topo_opt.cost > r.Topo_opt.initial_cost +. 1e-6 then
      Alcotest.failf "case %d: optimiser worsened %.6g -> %.6g" case
        r.Topo_opt.initial_cost r.Topo_opt.cost
  done

let test_improves_bad_topology () =
  (* a deliberately unlucky random topology over clustered sinks leaves a
     lot on the table; the optimiser must claw a good chunk back *)
  let rng = Prng.create 4 in
  let m = 16 in
  let inst, _, _ = random_instance rng m in
  let tree = Topogen.random_binary (Prng.create 1) ~num_sinks:m ~source_edge:true in
  let r = Topo_opt.improve inst tree in
  Alcotest.(check bool) "accepted some moves" true (r.Topo_opt.accepted > 0);
  let gain =
    (r.Topo_opt.initial_cost -. r.Topo_opt.cost) /. r.Topo_opt.initial_cost
  in
  if gain < 0.02 then
    Alcotest.failf "expected >2%% improvement on a random topology, got %.2f%%"
      (gain *. 100.0)

let test_result_remains_valid () =
  let rng = Prng.create 77 in
  let m = 12 in
  let inst, _, _ = random_instance rng m in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
  let r = Topo_opt.improve inst tree in
  (* sinks stay leaves, structure stays binary, LUBT solves and embeds *)
  Alcotest.(check bool) "sinks are leaves" true
    (Tree.all_sinks_are_leaves r.Topo_opt.tree);
  Alcotest.(check int) "same sink set" m (Tree.num_sinks r.Topo_opt.tree);
  match Lubt.solve inst r.Topo_opt.tree with
  | Error e -> Alcotest.fail (Lubt.error_to_string e)
  | Ok { routed; ebf } ->
    Alcotest.(check bool) "cost matches optimiser" true
      (Lubt_util.Stats.approx_eq ~eps:1e-6 ebf.Ebf.objective r.Topo_opt.cost);
    (match Routed.validate routed with
    | Ok () -> ()
    | Error es -> Alcotest.fail (String.concat "; " es))

let test_respects_evaluation_budget () =
  let rng = Prng.create 31 in
  let m = 14 in
  let inst, _, _ = random_instance rng m in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:true in
  let options = { Topo_opt.default_options with Topo_opt.max_evaluations = 5 } in
  let r = Topo_opt.improve ~options inst tree in
  Alcotest.(check bool) "budget respected" true (r.Topo_opt.evaluations <= 5)

let test_infeasible_input () =
  (* bounds nobody can meet: the optimiser reports infinity untouched *)
  let sinks = [| pt 10.0 0.0; pt 0.0 10.0 |] in
  let inst =
    Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0 ~upper:5.0 ()
  in
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:true in
  let r = Topo_opt.improve inst tree in
  Alcotest.(check bool) "cost infinite" true (r.Topo_opt.cost = infinity);
  Alcotest.(check int) "no moves" 0 r.Topo_opt.accepted

let test_beats_baseline_topology_sometimes () =
  (* starting from the baseline's own topology, optimisation should still
     find at least a small improvement on a clustered instance *)
  let rng = Prng.create 5 in
  let cluster cx cy =
    Array.init 6 (fun _ ->
        pt (cx +. Prng.float rng 10.0) (cy +. Prng.float rng 10.0))
  in
  let sinks = Array.concat [ cluster 0.0 0.0; cluster 80.0 0.0; cluster 40.0 80.0 ] in
  let source = pt 45.0 30.0 in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let r = Instance.radius base in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:(0.6 *. r) ~upper:(1.1 *. r) () in
  let bst = Bst.route ~skew_bound:(0.5 *. r) ~source sinks in
  let res = Topo_opt.improve inst bst.Bst.topology in
  Alcotest.(check bool) "not worse than baseline topology" true
    (res.Topo_opt.cost <= res.Topo_opt.initial_cost +. 1e-9)

(* ------------------------------------------------------------------ *)
(* SVG rendering                                                        *)
(* ------------------------------------------------------------------ *)

let routed_fixture () =
  let inst, tree = Lubt_data.Examples.five_point () in
  (Lubt.solve_exn inst tree).Lubt.routed

let test_svg_well_formed () =
  let routed = routed_fixture () in
  let svg = Svg.of_routed routed in
  Alcotest.(check bool) "starts with <svg" true (contains svg "<svg ");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  (* one polyline per edge *)
  Alcotest.(check int) "polylines" (Tree.num_edges routed.Routed.tree)
    (count_substring svg "<polyline")

let test_svg_markers () =
  let routed = routed_fixture () in
  let svg = Svg.of_routed routed in
  (* sinks (squares) + background rect *)
  Alcotest.(check int) "rect count = sinks + background"
    (Instance.num_sinks routed.Routed.instance + 1)
    (count_substring svg "<rect");
  (* at least source circle + steiner dots *)
  Alcotest.(check bool) "has circles" true (count_substring svg "<circle" >= 1);
  Alcotest.(check bool) "has legend" true (contains svg "cost ")

let test_svg_labels_toggle () =
  let routed = routed_fixture () in
  let plain = Svg.of_routed routed in
  let labelled = Svg.of_routed ~show_labels:true routed in
  Alcotest.(check int) "no labels by default" 1 (count_substring plain "<text");
  Alcotest.(check bool) "labels add text elements" true
    (count_substring labelled "<text" > Tree.num_nodes routed.Routed.tree)

let test_svg_elongated_marked () =
  (* force elongation via a tight equal-bounds instance *)
  let sinks = [| pt 0.0 0.0; pt 30.0 0.0 |] in
  let source = pt 15.0 10.0 in
  let base = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let r = Instance.radius base in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:(1.5 *. r) ~upper:(1.5 *. r) () in
  let tree = Topogen.balanced_binary ~num_sinks:2 ~source_edge:true in
  let routed = (Lubt.solve_exn inst tree).Lubt.routed in
  Alcotest.(check bool) "has elongated edges" true (Routed.num_elongated routed > 0);
  let svg = Svg.of_routed routed in
  Alcotest.(check bool) "dashes mark elongation" true
    (contains svg "stroke-dasharray")

let test_svg_write_file () =
  let routed = routed_fixture () in
  let path = Filename.temp_file "lubt" ".svg" in
  Svg.write path routed;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty file" true (len > 200)

let () =
  Alcotest.run "core-extra"
    [
      ( "topo-opt",
        [
          Alcotest.test_case "never worsens" `Slow test_never_worsens;
          Alcotest.test_case "improves a bad topology" `Slow
            test_improves_bad_topology;
          Alcotest.test_case "result remains valid" `Slow
            test_result_remains_valid;
          Alcotest.test_case "respects evaluation budget" `Quick
            test_respects_evaluation_budget;
          Alcotest.test_case "infeasible input" `Quick test_infeasible_input;
          Alcotest.test_case "baseline topology as start" `Slow
            test_beats_baseline_topology_sometimes;
        ] );
      ( "svg",
        [
          Alcotest.test_case "well-formed" `Quick test_svg_well_formed;
          Alcotest.test_case "markers" `Quick test_svg_markers;
          Alcotest.test_case "labels toggle" `Quick test_svg_labels_toggle;
          Alcotest.test_case "elongation marked" `Quick test_svg_elongated_marked;
          Alcotest.test_case "write file" `Quick test_svg_write_file;
        ] );
    ]
