(* Tests for the delay models: linear prefix sums, Elmore recursion vs a
   direct brute-force evaluation, and analytic gradients vs finite
   differences. *)

module Tree = Lubt_topo.Tree
module Topogen = Lubt_topo.Topogen
module Linear = Lubt_delay.Linear
module Elmore = Lubt_delay.Elmore
module Prng = Lubt_util.Prng

let paper_tree () =
  let parents = [| -1; 6; 8; 7; 7; 6; 0; 8; 0 |] in
  Tree.create ~parents ~sinks:[| 1; 2; 3; 4; 5 |] ()

let lengths8 = [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |]

let test_linear_delays () =
  let t = paper_tree () in
  let d = Linear.sink_delays t lengths8 in
  Alcotest.(check (float 1e-9)) "s1" 7.0 d.(0);
  Alcotest.(check (float 1e-9)) "s2" 10.0 d.(1);
  Alcotest.(check (float 1e-9)) "s3" 18.0 d.(2);
  Alcotest.(check (float 1e-9)) "s4" 19.0 d.(3);
  Alcotest.(check (float 1e-9)) "s5" 11.0 d.(4);
  Alcotest.(check (float 1e-9)) "skew" 12.0 (Linear.skew t lengths8);
  let lo, hi = Linear.min_max_delay t lengths8 in
  Alcotest.(check (float 1e-9)) "min" 7.0 lo;
  Alcotest.(check (float 1e-9)) "max" 19.0 hi

(* Brute-force Elmore: for each sink walk the path and recompute subtree
   capacitances by explicit set scans. *)
let brute_elmore tree (wire : Elmore.wire) loads lengths sink =
  let n = Tree.num_nodes tree in
  let in_subtree = Array.make n [||] in
  let subtree k =
    let mark = Array.make n false in
    let rec go v =
      mark.(v) <- true;
      List.iter go (Tree.children tree v)
    in
    go k;
    mark
  in
  for k = 0 to n - 1 do
    in_subtree.(k) <- [||]
  done;
  let cap k =
    let mark = subtree k in
    let total = ref 0.0 in
    for v = 0 to n - 1 do
      if mark.(v) then begin
        if Tree.is_sink tree v then
          total := !total +. loads.(Tree.sink_index tree v);
        if v <> k && mark.(Tree.parent tree v) then
          total := !total +. (wire.Elmore.c_w *. lengths.(v))
      end
    done;
    !total
  in
  let rec walk v acc =
    if v = Tree.root then acc
    else
      let e = lengths.(v) in
      let stage = wire.Elmore.r_w *. e *. ((wire.Elmore.c_w *. e /. 2.0) +. cap v) in
      walk (Tree.parent tree v) (acc +. stage)
  in
  walk sink 0.0

let random_setup seed m =
  let rng = Prng.create seed in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:(Prng.bool rng) in
  let n = Tree.num_nodes tree in
  let lengths = Array.init n (fun i -> if i = 0 then 0.0 else Prng.float rng 10.0) in
  let loads = Array.init m (fun _ -> Prng.float rng 2.0) in
  let wire = { Elmore.r_w = 0.1; c_w = 0.2 } in
  (rng, tree, lengths, loads, wire)

let test_elmore_vs_brute_force () =
  for seed = 1 to 10 do
    let _, tree, lengths, loads, wire = random_setup seed 8 in
    let fast = Elmore.node_delays tree wire loads lengths in
    Array.iter
      (fun s ->
        let slow = brute_elmore tree wire loads lengths s in
        if not (Lubt_util.Stats.approx_eq ~eps:1e-9 fast.(s) slow) then
          Alcotest.failf "seed %d sink %d: fast %.12g brute %.12g" seed s
            fast.(s) slow)
      (Tree.sinks tree)
  done

let test_elmore_caps () =
  let t = paper_tree () in
  let wire = { Elmore.r_w = 1.0; c_w = 1.0 } in
  let loads = [| 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let caps = Elmore.subtree_caps t wire loads lengths8 in
  (* leaf sink: just its load *)
  Alcotest.(check (float 1e-9)) "leaf cap" 1.0 caps.(1);
  (* node 7 = {s3, s4} + wire e3 + e4 *)
  Alcotest.(check (float 1e-9)) "node 7 cap" (2.0 +. 3.0 +. 4.0) caps.(7);
  (* node 8 = s2 + e2 + node7 subtree + e7 *)
  Alcotest.(check (float 1e-9)) "node 8 cap" (1.0 +. 2.0 +. 9.0 +. 7.0) caps.(8);
  (* root = everything *)
  let total_wire = Lubt_util.Stats.sum (Array.sub lengths8 1 8) in
  Alcotest.(check (float 1e-9)) "root cap" (5.0 +. total_wire) caps.(0)

let test_gradient_finite_difference () =
  for seed = 20 to 26 do
    let _, tree, lengths, loads, wire = random_setup seed 6 in
    let n = Tree.num_nodes tree in
    Array.iter
      (fun s ->
        let g = Elmore.gradient tree wire loads lengths s in
        let h = 1e-6 in
        for a = 1 to n - 1 do
          let bumped = Array.copy lengths in
          bumped.(a) <- bumped.(a) +. h;
          let d1 = (Elmore.node_delays tree wire loads bumped).(s) in
          let d0 = (Elmore.node_delays tree wire loads lengths).(s) in
          let fd = (d1 -. d0) /. h in
          if not (Lubt_util.Stats.approx_eq ~eps:1e-4 g.(a) fd) then
            Alcotest.failf "seed %d sink %d edge %d: grad %.9g fd %.9g" seed s
              a g.(a) fd
        done)
      (Tree.sinks tree)
  done

let test_elmore_zero_wire_cap () =
  (* with c_w = 0 the Elmore delay is r_w * sum e_k * C_k with constant
     subtree caps: monotone and easy to sanity check on a 2-sink tree *)
  let parents = [| -1; 2; 0 |] in
  let t = Tree.create ~parents ~sinks:[| 1 |] () in
  let wire = { Elmore.r_w = 2.0; c_w = 0.0 } in
  let loads = [| 3.0 |] in
  let lengths = [| 0.0; 4.0; 5.0 |] in
  let d = Elmore.node_delays t wire loads lengths in
  (* both edges drive cap 3: delay = 2*(4*3) + 2*(5*3) *)
  Alcotest.(check (float 1e-9)) "delay" 54.0 d.(1)

let prop_elmore_monotone =
  QCheck.Test.make ~name:"elmore delay increases with any edge length"
    ~count:100
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, m) ->
      let _, tree, lengths, loads, wire = random_setup (seed + 1000) m in
      let s = (Tree.sinks tree).(0) in
      let d0 = (Elmore.node_delays tree wire loads lengths).(s) in
      let bumped = Array.copy lengths in
      let n = Tree.num_nodes tree in
      let a = 1 + (seed mod (n - 1)) in
      bumped.(a) <- bumped.(a) +. 1.0;
      let d1 = (Elmore.node_delays tree wire loads bumped).(s) in
      d1 >= d0 -. 1e-12)

let prop_linear_delay_additive =
  QCheck.Test.make ~name:"linear delay is sum of path edges" ~count:100
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, m) ->
      let rng = Prng.create seed in
      let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:false in
      let n = Tree.num_nodes tree in
      let lengths = Array.init n (fun i -> if i = 0 then 0.0 else Prng.float rng 5.0) in
      let d = Linear.node_delays tree lengths in
      Array.for_all
        (fun s ->
          let manual =
            List.fold_left (fun acc e -> acc +. lengths.(e)) 0.0
              (Tree.path_to_root tree s)
          in
          Lubt_util.Stats.approx_eq d.(s) manual)
        (Tree.sinks tree))

let () =
  Alcotest.run "delay"
    [
      ( "linear",
        [ Alcotest.test_case "paper tree delays" `Quick test_linear_delays ] );
      ( "elmore",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_elmore_vs_brute_force;
          Alcotest.test_case "subtree caps" `Quick test_elmore_caps;
          Alcotest.test_case "gradient vs finite differences" `Quick
            test_gradient_finite_difference;
          Alcotest.test_case "zero wire capacitance" `Quick
            test_elmore_zero_wire_cap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elmore_monotone; prop_linear_delay_additive ] );
    ]
