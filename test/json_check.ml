(* A tiny recursive-descent JSON syntax checker, shared by the test
   suites that assert well-formedness of machine-readable output
   (batch JSON-lines, bench records, CLI --json stdout, Chrome
   traces). Deliberately independent of Lubt_obs.Json so the two
   implementations cross-check each other. *)

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else fail ()
  in
  let digits () =
    let start = !pos in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    if !pos = start then fail ()
  in
  let str () =
    expect '"';
    let rec loop () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail ();
        incr pos;
        loop ()
      | _ ->
        incr pos;
        loop ()
    in
    loop ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then (
      incr pos;
      digits ());
    match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | r -> r
  | exception Exit -> false
