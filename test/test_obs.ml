(* Tests for the observability layer (lubt.obs): the JSON
   parser/printer, span balance of the trace recorder under
   exceptions, the Chrome trace-event field contract, per-domain
   thread ids under a Pool-parallel workload, convergence-probe
   JSON-lines, the disabled-tracing determinism contract of the
   solver, and the bench-diff regression gate (library verdicts and
   the bench exe's exit codes). *)

module Json = Lubt_obs.Json
module Clock = Lubt_obs.Clock
module Trace = Lubt_obs.Trace
module Chrome_trace = Lubt_obs.Chrome_trace
module Log = Lubt_obs.Log
module Convergence = Lubt_obs.Convergence
module Bench_diff = Lubt_experiments.Bench_diff
module Pool = Lubt_util.Pool
module Benchmarks = Lubt_data.Benchmarks
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Simplex = Lubt_lp.Simplex
module Bst = Lubt_bst.Bst_dme

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 1.5;
      Json.Num (-3.0);
      Json.Str "a\"b\\c\nd";
      Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Null ];
      Json.Obj
        [ ("k", Json.Arr []); ("nested", Json.Obj [ ("b", Json.Bool false) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      Alcotest.(check bool)
        ("printer output passes the independent checker: " ^ s)
        true (Json_check.json_valid s);
      match Json.parse s with
      | Ok v' ->
        Alcotest.(check bool) ("roundtrip: " ^ s) true (v = v')
      | Error e -> Alcotest.failf "reparse of %s failed: %s" s e)
    cases

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\": }"; "{} {}"; "nan"; "'s'"; "tru" ]

let test_json_accessors () =
  let j = Json.parse_exn {|{"a": {"b": [1, 2.5]}, "s": "x"}|} in
  let b = Option.bind (Json.member "a" j) (Json.member "b") in
  (match Option.bind b Json.arr with
  | Some [ Json.Num 1.0; Json.Num 2.5 ] -> ()
  | _ -> Alcotest.fail "nested member/arr access");
  Alcotest.(check (option string))
    "str member" (Some "x")
    (Option.bind (Json.member "s" j) Json.str);
  Alcotest.(check bool) "missing member" true (Json.member "zz" j = None)

(* ------------------------------------------------------------------ *)
(* Trace recorder                                                      *)
(* ------------------------------------------------------------------ *)

let spans events = List.filter (fun (e : Trace.event) ->
    match e.Trace.kind with Trace.Span _ -> true | _ -> false) events

let test_trace_disabled_records_nothing () =
  Trace.stop ();
  Trace.instant "nope";
  Trace.complete ~t0:(Clock.now ()) "nope";
  ignore (Trace.span "nope" (fun () -> 42));
  Trace.start ();
  (* only events recorded after start are retained *)
  let before = List.length (Trace.events ()) in
  Trace.stop ();
  Alcotest.(check int) "no events survive from the disabled period" 0 before

let test_trace_span_balance_under_exceptions () =
  Trace.start ();
  (try
     Trace.span "outer" (fun () ->
         Trace.span "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let evs = Trace.events () in
  Trace.stop ();
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (spans evs) in
  Alcotest.(check (list string))
    "both spans emitted despite the raise (inner completes first)"
    [ "inner"; "outer" ]
    (List.sort Stdlib.compare names);
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Span d ->
        Alcotest.(check bool) "span duration is non-negative" true (d >= 0.0)
      | _ -> ())
    evs

let test_trace_ring_wraps () =
  Trace.start ~capacity:8 ();
  for i = 0 to 19 do
    Trace.instant ~args:[ ("i", Trace.Int i) ] "tick"
  done;
  let evs = Trace.events () in
  let dropped = Trace.dropped () in
  Trace.stop ();
  Alcotest.(check int) "ring retains capacity events" 8 (List.length evs);
  Alcotest.(check int) "drop counter" 12 dropped;
  (* the retained events are the newest ones *)
  let is = List.filter_map (fun (e : Trace.event) ->
      match e.Trace.args with [ ("i", Trace.Int i) ] -> Some i | _ -> None) evs
  in
  Alcotest.(check (list int)) "newest retained" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.sort Stdlib.compare is)

let test_trace_timestamps_sorted () =
  Trace.start ();
  for _ = 0 to 9 do Trace.instant "t" done;
  let evs = Trace.events () in
  Trace.stop ();
  let rec sorted = function
    | (a : Trace.event) :: (b :: _ as rest) ->
      a.Trace.ts <= b.Trace.ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "events sorted by ts" true (sorted evs)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_field_contract () =
  Trace.start ();
  Trace.span "s" (fun () -> Trace.instant ~args:[ ("k", Trace.Str "v") ] "i");
  Trace.counter "c" [ ("rows", 3.0) ];
  let evs = Trace.events () in
  Trace.stop ();
  let s = Chrome_trace.to_string ~pid:7 evs in
  Alcotest.(check bool) "export passes the independent checker" true
    (Json_check.json_valid s);
  let j = Json.parse_exn s in
  let tes =
    match Option.bind (Json.member "traceEvents" j) Json.arr with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "at least metadata + 3 events" true
    (List.length tes >= 5);
  let str_member k e = Option.bind (Json.member k e) Json.str in
  let num_member k e = Option.bind (Json.member k e) Json.num in
  List.iter
    (fun e ->
      Alcotest.(check bool) "every event has a name" true
        (str_member "name" e <> None);
      Alcotest.(check (option (float 0.0))) "pid" (Some 7.0)
        (num_member "pid" e);
      Alcotest.(check bool) "tid" true (num_member "tid" e <> None);
      match str_member "ph" e with
      | Some "M" -> ()
      | Some "X" ->
        Alcotest.(check bool) "complete events carry ts" true
          (num_member "ts" e <> None);
        Alcotest.(check bool) "complete events carry dur" true
          (num_member "dur" e <> None)
      | Some "i" ->
        Alcotest.(check (option string)) "instants are thread-scoped"
          (Some "t") (str_member "s" e)
      | Some "C" ->
        Alcotest.(check bool) "counters carry args" true
          (Json.member "args" e <> None)
      | ph ->
        Alcotest.failf "unexpected ph %s"
          (match ph with Some p -> p | None -> "<absent>"))
    tes;
  (* process metadata names the process "lubt" *)
  let process_meta =
    List.exists
      (fun e ->
        str_member "name" e = Some "process_name"
        && Option.bind (Json.member "args" e) (fun a ->
               Option.bind (Json.member "name" a) Json.str)
           = Some "lubt")
      tes
  in
  Alcotest.(check bool) "process_name metadata" true process_meta

let test_chrome_pool_tids () =
  (* a Pool-parallel run records each worker's spans in that domain's
     own buffer, so the export shows distinct tids *)
  Trace.start ();
  ignore
    (Pool.map ~jobs:4
       (fun i ->
         ignore (Sys.opaque_identity (ref i));
         Unix.sleepf 0.02;
         i)
       [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  let evs = Trace.events () in
  Trace.stop ();
  let task_tids =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.name = "pool.task" then Some e.Trace.tid else None)
      evs
  in
  Alcotest.(check int) "one span per task" 8 (List.length task_tids);
  let distinct = List.sort_uniq Stdlib.compare task_tids in
  Alcotest.(check bool)
    (Printf.sprintf "tasks spread over several domains (saw %d tids)"
       (List.length distinct))
    true
    (List.length distinct >= 2)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let with_log_capture f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Log.set_formatter fmt;
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () ->
      Log.set_level saved;
      Log.set_formatter Format.err_formatter)
    (fun () ->
      f ();
      Format.pp_print_flush fmt ();
      Buffer.contents buf)

let test_log_levels_filter () =
  let out =
    with_log_capture (fun () ->
        Log.set_level Log.Warn;
        Log.debug "dropped %d" 1;
        Log.info "dropped too";
        Log.warn "kept %s" "w";
        Log.err "kept e")
  in
  Alcotest.(check bool) "warn kept" true
    (String.length out > 0
    && (let re = "[warn] kept w" in
        let rec find i =
          i + String.length re <= String.length out
          && (String.sub out i (String.length re) = re || find (i + 1))
        in
        find 0));
  let contains needle hay =
    let rec find i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "err kept" true (contains "[error] kept e" out);
  Alcotest.(check bool) "info dropped" false (contains "dropped" out)

let test_log_fields_render () =
  let out =
    with_log_capture (fun () ->
        Log.set_level Log.Info;
        Log.info
          ~fields:[ ("stage", Trace.Str "x"); ("n", Trace.Int 3) ]
          "msg here")
  in
  let contains needle hay =
    let rec find i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "message present" true (contains "msg here" out);
  Alcotest.(check bool) "string field" true (contains "stage=x" out);
  Alcotest.(check bool) "int field" true (contains "n=3" out)

let test_log_mirrors_to_trace () =
  Trace.start ();
  let _ = with_log_capture (fun () ->
      Log.set_level Log.Info;
      Log.info "mirrored")
  in
  let evs = Trace.events () in
  Trace.stop ();
  Alcotest.(check bool) "log.info instant recorded" true
    (List.exists (fun (e : Trace.event) -> e.Trace.name = "log.info") evs)

(* ------------------------------------------------------------------ *)
(* Convergence probe on a real solve                                   *)
(* ------------------------------------------------------------------ *)

let tiny_workload () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s" in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 =
    Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity ()
  in
  let radius = Instance.radius inst0 in
  let bst = Bst.route ~skew_bound:(0.5 *. radius) ~source sinks in
  let m = Instance.num_sinks inst0 in
  let inst =
    Instance.with_bounds inst0
      ~lower:(Array.make m bst.Bst.dmin)
      ~upper:(Array.make m bst.Bst.dmax)
  in
  (inst, bst.Bst.topology)

let test_convergence_jsonl () =
  let inst, topo = tiny_workload () in
  let buf = Buffer.create 4096 in
  let sink = Convergence.to_buffer buf in
  let probe (e : Simplex.probe_event) =
    Convergence.record sink ~iteration:e.Simplex.pr_iteration
      ~phase:e.Simplex.pr_phase ~objective:e.Simplex.pr_objective
      ~primal_infeasibility:e.Simplex.pr_primal_infeas
      ~dual_infeasibility:e.Simplex.pr_dual_infeas
      ~entering:e.Simplex.pr_entering ~leaving:e.Simplex.pr_leaving
      ~eta_count:e.Simplex.pr_eta_count ~bound_flips:e.Simplex.pr_bound_flips
      ?recovery:e.Simplex.pr_recovery ()
  in
  let probed =
    Ebf.solve
      ~options:{ Ebf.default_options with Ebf.probe = Some probe }
      inst topo
  in
  let plain = Ebf.solve inst topo in
  Alcotest.(check bool) "objective unchanged by the probe" true
    (Int64.equal
       (Int64.bits_of_float probed.Ebf.objective)
       (Int64.bits_of_float plain.Ebf.objective));
  Alcotest.(check int) "iteration count unchanged by the probe"
    plain.Ebf.lp_iterations probed.Ebf.lp_iterations;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "line counter agrees" (Convergence.lines sink)
    (List.length lines);
  Alcotest.(check bool) "one record per pivot" true
    (List.length lines >= probed.Ebf.lp_iterations);
  let last = ref min_int in
  List.iter
    (fun line ->
      Alcotest.(check bool) "line passes the independent checker" true
        (Json_check.json_valid line);
      let j = Json.parse_exn line in
      let it =
        match Option.bind (Json.member "iteration" j) Json.num with
        | Some f -> int_of_float f
        | None -> Alcotest.fail "line without iteration"
      in
      Alcotest.(check bool)
        (Printf.sprintf "iteration ids monotone (%d >= %d)" it !last)
        true (it >= !last);
      last := it;
      Alcotest.(check bool) "phase member present" true
        (Option.bind (Json.member "phase" j) Json.str <> None))
    lines

let test_tracing_does_not_perturb_solver () =
  let inst, topo = tiny_workload () in
  let plain = Ebf.solve inst topo in
  Trace.start ();
  let traced = Ebf.solve inst topo in
  let n_events = List.length (Trace.events ()) in
  Trace.stop ();
  Alcotest.(check bool) "tracing recorded solver spans" true (n_events > 0);
  Alcotest.(check bool) "objective bit-identical under tracing" true
    (Int64.equal
       (Int64.bits_of_float traced.Ebf.objective)
       (Int64.bits_of_float plain.Ebf.objective));
  let a = plain.Ebf.lp_stats and b = traced.Ebf.lp_stats in
  (* every pivot-trajectory counter must be identical; phase times are
     wall-clock and may differ *)
  Alcotest.(check int) "iterations" a.Simplex.iterations b.Simplex.iterations;
  Alcotest.(check int) "bound_flips" a.Simplex.bound_flips b.Simplex.bound_flips;
  Alcotest.(check int) "ftran_count" a.Simplex.ftran_count b.Simplex.ftran_count;
  Alcotest.(check int) "btran_count" a.Simplex.btran_count b.Simplex.btran_count;
  Alcotest.(check int) "refactorisations" a.Simplex.refactorisations
    b.Simplex.refactorisations;
  Alcotest.(check int) "basis_updates" a.Simplex.basis_updates
    b.Simplex.basis_updates

let test_ebf_round_spans () =
  (* acceptance: a traced solve shows at least one span per EBF round
     plus simplex phase spans *)
  let inst, topo = tiny_workload () in
  Trace.start ();
  let r = Ebf.solve inst topo in
  let evs = Trace.events () in
  Trace.stop ();
  let count name =
    List.length
      (List.filter (fun (e : Trace.event) -> e.Trace.name = name) evs)
  in
  Alcotest.(check int) "one ebf.solve span per round" r.Ebf.rounds
    (count "ebf.solve");
  Alcotest.(check int) "one ebf.scan span per round" r.Ebf.rounds
    (count "ebf.scan");
  Alcotest.(check bool) "simplex phase spans present" true
    (count "simplex.phase2" + count "simplex.dual" + count "simplex.phase1"
    > 0);
  Alcotest.(check bool) "ftran spans present" true (count "simplex.ftran" > 0)

(* ------------------------------------------------------------------ *)
(* bench diff: library verdicts                                        *)
(* ------------------------------------------------------------------ *)

let bench_file ?(schema = "lubt-bench/4") entries =
  Printf.sprintf
    "{\"schema\": \"%s\", \"size\": \"tiny\", \"jobs\": 1, \"cores\": 1, \
     \"benchmarks\": [%s]}"
    schema
    (String.concat ", "
       (List.map
          (fun (name, ms, iters) ->
            Printf.sprintf
              "{\"name\": \"%s\", \"ms_per_run\": %g, \"solver\": \
               {\"iterations\": %d, \"phase1_ms\": 1.0}}"
              name ms iters)
          entries))

let test_diff_identical () =
  let f = bench_file [ ("a", 10.0, 5); ("b", 1.0, 7) ] in
  match Bench_diff.compare f f with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "no regression" false (Bench_diff.has_regression r);
    Alcotest.(check int) "two deltas" 2 (List.length r.Bench_diff.r_deltas);
    List.iter
      (fun d ->
        Alcotest.(check bool) "unchanged" true
          (d.Bench_diff.d_verdict = Bench_diff.Unchanged);
        Alcotest.(check (list (triple string (float 0.0) (float 0.0))))
          "no counter drift" [] d.Bench_diff.d_counters)
      r.Bench_diff.r_deltas

let test_diff_regression_and_threshold () =
  let old_f = bench_file [ ("a", 10.0, 5) ] in
  let new_f = bench_file [ ("a", 11.5, 6) ] in
  (match Bench_diff.compare ~threshold:0.10 old_f new_f with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "15% > 10%: regression" true
      (Bench_diff.has_regression r);
    (match r.Bench_diff.r_deltas with
    | [ d ] ->
      Alcotest.(check bool) "flagged" true
        (d.Bench_diff.d_verdict = Bench_diff.Regression);
      (match d.Bench_diff.d_counters with
      | [ ("iterations", 5.0, 6.0) ] -> ()
      | cs ->
        Alcotest.failf "expected the iterations drift, got %d entries"
          (List.length cs))
    | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds)));
  match Bench_diff.compare ~threshold:0.20 old_f new_f with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "15% < 20%: within threshold" false
      (Bench_diff.has_regression r)

let test_diff_improvement_and_missing () =
  let old_f = bench_file [ ("a", 10.0, 5); ("gone", 1.0, 1) ] in
  let new_f = bench_file [ ("a", 5.0, 5); ("fresh", 1.0, 1) ] in
  match Bench_diff.compare old_f new_f with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (match r.Bench_diff.r_deltas with
    | [ d ] ->
      Alcotest.(check bool) "improvement flagged" true
        (d.Bench_diff.d_verdict = Bench_diff.Improvement)
    | _ -> Alcotest.fail "expected one common benchmark");
    Alcotest.(check (list string)) "lost benchmark reported" [ "gone" ]
      r.Bench_diff.r_only_old;
    Alcotest.(check (list string)) "new benchmark reported" [ "fresh" ]
      r.Bench_diff.r_only_new;
    (* losing a benchmark is a gate failure even though "a" improved *)
    Alcotest.(check bool) "lost coverage fails the gate" true
      (Bench_diff.has_regression r)

(* The degenerate-baseline cases the absolute-delta floor exists for: a
   zero or sub-microsecond old entry must not turn jitter into an
   inf/nan or 20x ratio "regression". *)
let test_diff_absolute_floor () =
  let verdict ?threshold ?abs_floor_ms old_ms new_ms =
    let old_f = bench_file [ ("a", old_ms, 1) ] in
    let new_f = bench_file [ ("a", new_ms, 1) ] in
    match Bench_diff.compare ?threshold ?abs_floor_ms old_f new_f with
    | Error e -> Alcotest.fail e
    | Ok r -> (
      match r.Bench_diff.r_deltas with
      | [ d ] -> d.Bench_diff.d_verdict
      | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds))
  in
  (* zero baseline: the ratio is inf/nan; the delta's sign decides,
     but only past the floor *)
  Alcotest.(check bool) "0 -> 0.03ms: below the floor, unchanged" true
    (verdict 0.0 0.03 = Bench_diff.Unchanged);
  Alcotest.(check bool) "0 -> 1ms: a real appearance, regression" true
    (verdict 0.0 1.0 = Bench_diff.Regression);
  Alcotest.(check bool) "1ms -> 0: a real disappearance, improvement" true
    (verdict 1.0 0.0 = Bench_diff.Improvement);
  (* sub-floor jitter with a scary ratio: 1us -> 20us is 20x but only
     0.019ms — not a verdict *)
  Alcotest.(check bool) "1us -> 20us: 20x ratio clamped by the floor" true
    (verdict 0.001 0.02 = Bench_diff.Unchanged);
  (* with the floor disabled the same jitter regresses, so the clamp
     really is what protects it *)
  Alcotest.(check bool) "floor 0 restores the raw ratio verdict" true
    (verdict ~abs_floor_ms:0.0 0.001 0.02 = Bench_diff.Regression);
  (* the floor never masks a real regression of normal magnitude *)
  Alcotest.(check bool) "10 -> 12ms still regresses" true
    (verdict 10.0 12.0 = Bench_diff.Regression)

(* SLO entries (_p50/_p95/_p99) gate under their own wider threshold
   and higher floor: tail quantiles are contracts worth failing CI
   over, but 10%-noisy by nature. *)
let test_diff_slo_gate () =
  let verdict ?slo_threshold ?slo_floor_ms name old_ms new_ms =
    let old_f = bench_file [ (name, old_ms, 1) ] in
    let new_f = bench_file [ (name, new_ms, 1) ] in
    match Bench_diff.compare ?slo_threshold ?slo_floor_ms old_f new_f with
    | Error e -> Alcotest.fail e
    | Ok r -> (
      match r.Bench_diff.r_deltas with
      | [ d ] -> d.Bench_diff.d_verdict
      | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds))
  in
  (* +30% would regress a timing entry (10% gate) but sits inside the
     50% SLO band *)
  Alcotest.(check bool) "p95 +30%: inside the SLO band" true
    (verdict "serve_latency_p95" 100.0 130.0 = Bench_diff.Unchanged);
  Alcotest.(check bool) "p95 +60%: SLO regression" true
    (verdict "serve_latency_p95" 100.0 160.0 = Bench_diff.Regression);
  Alcotest.(check bool) "p95 -60%: SLO improvement" true
    (verdict "serve_latency_p95" 100.0 40.0 = Bench_diff.Improvement);
  (* the SLO floor clamps tiny-baseline ratios: 0.1ms -> 0.9ms is 9x
     but only 0.8ms, below the 1ms floor *)
  Alcotest.(check bool) "sub-floor p99 jitter unchanged" true
    (verdict "serve_latency_p99" 0.1 0.9 = Bench_diff.Unchanged);
  Alcotest.(check bool) "tightened SLO threshold bites" true
    (verdict ~slo_threshold:0.2 "serve_latency_p50" 100.0 130.0
    = Bench_diff.Regression);
  (* a non-SLO timing entry keeps the normal gate *)
  Alcotest.(check bool) "plain entry still gates at 10%" true
    (verdict "a" 100.0 130.0 = Bench_diff.Regression)

(* The bench writer serialises nan as null (the unobservable hit rate
   against an external daemon); the parser must read it back as nan
   and never let it gate — a regression here breaks CI's self-diff. *)
let test_diff_null_ms () =
  let null_file =
    "{\"schema\": \"lubt-bench/4\", \"size\": \"tiny\", \"jobs\": 1, \
     \"cores\": 1, \"benchmarks\": [{\"name\": \"serve_cache_hit_rate\", \
     \"ms_per_run\": null}]}"
  in
  match Bench_diff.compare null_file null_file with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    Alcotest.(check bool) "null never gates" false
      (Bench_diff.has_regression r);
    match r.Bench_diff.r_deltas with
    | [ d ] ->
      Alcotest.(check bool) "parsed as nan" true
        (Float.is_nan d.Bench_diff.d_old_ms)
    | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds))

let test_diff_rejects_garbage () =
  (match Bench_diff.compare "not json" (bench_file []) with
  | Ok _ -> Alcotest.fail "accepted garbage old file"
  | Error e ->
    Alcotest.(check bool) "error names the old file" true
      (String.length e >= 4 && String.sub e 0 4 = "old:"));
  match Bench_diff.compare ~threshold:0.1 (bench_file []) "{\"schema\": \"other/1\", \"benchmarks\": []}" with
  | Ok _ -> Alcotest.fail "accepted foreign schema"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* bench diff: exe exit codes                                          *)
(* ------------------------------------------------------------------ *)

let test_diff_exit_codes () =
  let bench_exe =
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) "..")
      (Filename.concat "bench" "main.exe")
  in
  let dir = Filename.temp_file "lubt_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let write name contents =
    let path = Filename.concat dir name in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc contents);
    path
  in
  let old_p = write "old.json" (bench_file [ ("a", 10.0, 5) ]) in
  let same_p = write "same.json" (bench_file [ ("a", 10.0, 5) ]) in
  let reg_p = write "reg.json" (bench_file [ ("a", 30.0, 5) ]) in
  let bad_p = write "bad.json" "nonsense" in
  let code args =
    Sys.command
      (Printf.sprintf "%s diff %s > /dev/null 2>&1" (Filename.quote bench_exe)
         args)
  in
  Alcotest.(check int) "identical files exit 0" 0
    (code (Filename.quote old_p ^ " " ^ Filename.quote same_p));
  Alcotest.(check int) "regression exits 1" 1
    (code (Filename.quote old_p ^ " " ^ Filename.quote reg_p));
  Alcotest.(check int) "improvement exits 0" 0
    (code (Filename.quote reg_p ^ " " ^ Filename.quote old_p));
  Alcotest.(check int) "--warn-only masks the failure" 0
    (code (Filename.quote old_p ^ " " ^ Filename.quote reg_p ^ " --warn-only"));
  Alcotest.(check int) "huge threshold passes" 0
    (code
       (Filename.quote old_p ^ " " ^ Filename.quote reg_p
      ^ " --threshold 500"));
  Alcotest.(check int) "unreadable input exits 2" 2
    (code (Filename.quote old_p ^ " " ^ Filename.quote bad_p));
  List.iter Sys.remove [ old_p; same_p; reg_p; bad_p ];
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let a = Clock.now () in
  let b = Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "ns view agrees with seconds view" true
    (Int64.compare (Clock.now_ns ()) 0L > 0)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "span balance under exceptions" `Quick
            test_trace_span_balance_under_exceptions;
          Alcotest.test_case "ring wrap-around" `Quick test_trace_ring_wraps;
          Alcotest.test_case "timestamps sorted" `Quick
            test_trace_timestamps_sorted;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "field contract" `Quick test_chrome_field_contract;
          Alcotest.test_case "pool workers get distinct tids" `Quick
            test_chrome_pool_tids;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels filter" `Quick test_log_levels_filter;
          Alcotest.test_case "fields render" `Quick test_log_fields_render;
          Alcotest.test_case "mirrors to trace" `Quick
            test_log_mirrors_to_trace;
        ] );
      ( "solver",
        [
          Alcotest.test_case "convergence JSON-lines" `Quick
            test_convergence_jsonl;
          Alcotest.test_case "tracing does not perturb the solve" `Quick
            test_tracing_does_not_perturb_solver;
          Alcotest.test_case "per-round spans" `Quick test_ebf_round_spans;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "regression and threshold" `Quick
            test_diff_regression_and_threshold;
          Alcotest.test_case "improvement and missing" `Quick
            test_diff_improvement_and_missing;
          Alcotest.test_case "absolute floor" `Quick test_diff_absolute_floor;
          Alcotest.test_case "SLO gate" `Quick test_diff_slo_gate;
          Alcotest.test_case "null ms_per_run" `Quick test_diff_null_ms;
          Alcotest.test_case "rejects garbage" `Quick test_diff_rejects_garbage;
          Alcotest.test_case "exe exit codes" `Quick test_diff_exit_codes;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
    ]
