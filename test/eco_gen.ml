(** Seeded generators for ECO (engineering change order) edit chains.

    The warm-start differential suite ([test_cache.ml]) and the serve
    protocol tests need streams of random instance edits whose
    application is guaranteed to succeed — each edit is drawn against
    the {e current} instance, so sink indices are always in range and
    bounds always satisfy [0 <= lower <= upper]. The generators are
    {!Lubt_util.Prng}-driven, so a chain is fully determined by its
    seed and can be replayed on failure. *)

module Instance = Lubt_core.Instance
module Prng = Lubt_util.Prng
module Point = Lubt_geom.Point

(* A delay window that keeps the instance admissible with high
   probability: the upper bound clears the radius, the lower bound
   stays inside it. Kept strictly positive/finite so the sink's delay
   row survives the edit — the layout-preserving case the cache's
   Parent path accelerates. *)
let random_window rng inst =
  let r = Instance.radius inst in
  let lower = 0.01 +. Prng.float rng (0.5 *. r) in
  let upper = r *. (1.0 +. Prng.float rng 1.0) in
  (lower, max upper (lower +. 0.01))

(* One random edit against [inst]. With [topology_preserving] only
   bound and geometry edits are drawn (the sink set — and hence any
   routing tree over it — survives, which is the warm-start sweet
   spot); otherwise sink insertions and removals join the mix. *)
let random_edit ?(topology_preserving = false) rng inst =
  let m = Instance.num_sinks inst in
  let sink = Prng.int rng m in
  let kinds = if topology_preserving then 2 else 4 in
  match Prng.int rng kinds with
  | 0 ->
    let lower, upper = random_window rng inst in
    Instance.Edit.Set_bounds { sink; lower; upper }
  | 1 ->
    let nudge () = Prng.float rng 8.0 -. 4.0 in
    Instance.Edit.Move_sink { sink; dx = nudge (); dy = nudge () }
  | 2 ->
    let coord () = Prng.float rng 100.0 in
    let lower, upper = random_window rng inst in
    Instance.Edit.Add_sink
      { point = Point.make (coord ()) (coord ()); lower; upper }
  | _ -> Instance.Edit.Remove_sink { sink }

(* A chain of [len] edits, drawn and applied one at a time so every
   edit is valid against its predecessor's output. Returns the ops (in
   application order) and the final instance. *)
let random_chain ?(topology_preserving = false) ~len rng inst =
  let rec go acc cur k =
    if k = 0 then (List.rev acc, cur)
    else
      let op = random_edit ~topology_preserving rng cur in
      match Instance.Edit.apply cur op with
      | Ok next -> go (op :: acc) next (k - 1)
      | Error msg ->
        (* unreachable by construction; fail loudly, not silently *)
        invalid_arg
          (Printf.sprintf "eco_gen: generated edit failed to apply: %s" msg)
  in
  go [] inst len
