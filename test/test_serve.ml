(* Tests for the lubt serve daemon: protocol round-trips of
   [Serve.response_of_request] against the independent JSON checker and
   the one-shot report renderer, an in-process socket smoke over
   concurrent pipelined clients (responses matched by id, objectives
   identical to single-shot solves), bounded-queue backpressure,
   per-request deadline expiry, and the malformed-input robustness
   contract (a bad line never takes down the session or the daemon). *)

module Serve = Lubt_experiments.Serve
module Protocol = Lubt_experiments.Protocol
module Json = Lubt_obs.Json
module Instance = Lubt_core.Instance
module Lubt = Lubt_core.Lubt
module Ebf = Lubt_core.Ebf
module Io = Lubt_data.Io
module Benchmarks = Lubt_data.Benchmarks
module Point = Lubt_geom.Point
module Basis_cache = Lubt_lp.Basis_cache

let member_exn what j =
  match Json.member what j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S member: %s" what (Json.to_string j)

let parse_response line =
  Alcotest.(check bool)
    ("response passes the independent JSON checker: " ^ line)
    true
    (Json_check.json_valid line);
  match Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "response does not parse: %s (%s)" e line

let is_ok j = member_exn "ok" j = Json.Bool true

let error_code j =
  match Json.member "error" j with
  | Some e -> (
    match Json.member "code" e with
    | Some (Json.Str c) -> c
    | _ -> Alcotest.fail "error without string code")
  | None -> Alcotest.failf "expected an error member: %s" (Json.to_string j)

let respond line = parse_response (Serve.response_of_request line)

(* ------------------------------------------------------------------ *)
(* Protocol round-trips (no socket)                                    *)
(* ------------------------------------------------------------------ *)

let test_ping_and_id_echo () =
  let r = respond {|{"id": "p1", "op": "ping"}|} in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool) "id echoed" true
    (member_exn "id" r = Json.Str "p1");
  (* a numeric id and a missing id echo back as themselves / null *)
  let r = respond {|{"id": 7, "op": "ping"}|} in
  Alcotest.(check bool) "numeric id echoed" true
    (member_exn "id" r = Json.Num 7.0);
  let r = respond {|{"op": "ping"}|} in
  Alcotest.(check bool) "missing id echoes null" true
    (member_exn "id" r = Json.Null)

let test_bad_requests () =
  let code line = error_code (respond line) in
  Alcotest.(check string) "not JSON" "bad_request" (code "garbage {");
  Alcotest.(check string) "unknown op" "bad_request"
    (code {|{"id": "x", "op": "frobnicate"}|});
  Alcotest.(check string) "no workload" "bad_request"
    (code {|{"id": "x"}|});
  Alcotest.(check string) "both workloads" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "instance": ""}|});
  Alcotest.(check string) "unknown bench" "bad_request"
    (code {|{"id": "x", "bench": "nonesuch"}|});
  Alcotest.(check string) "bad size" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "size": "huge"}|});
  Alcotest.(check string) "mistyped field" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "certify": "yes"}|});
  Alcotest.(check string) "non-positive time limit" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "time_limit": 0}|});
  Alcotest.(check string) "fractional seed" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "seed": 1.5}|});
  Alcotest.(check string) "astronomical seed" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "seed": 1e30}|});
  Alcotest.(check string) "negative skew" "bad_request"
    (code {|{"id": "x", "bench": "prim1s", "skew": -0.5}|});
  (* the id still comes back on a bad request when the line parsed *)
  let r = respond {|{"id": "x", "op": "frobnicate"}|} in
  Alcotest.(check bool) "id echoed on bad request" true
    (member_exn "id" r = Json.Str "x")

let test_bench_solve_roundtrip () =
  let r =
    respond {|{"id": "r1", "bench": "prim1s", "size": "tiny", "seed": 1}|}
  in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool) "status optimal" true
    (member_exn "status" r = Json.Str "optimal");
  Alcotest.(check bool) "validated" true
    (member_exn "validated" r = Json.Bool true);
  (* certification is the serve default *)
  Alcotest.(check bool) "certified by default" true
    (member_exn "certified" r = Json.Bool true);
  let cost =
    match Json.num (member_exn "cost" r) with
    | Some c -> c
    | None -> Alcotest.fail "cost is not a number"
  in
  Alcotest.(check bool) "positive finite cost" true
    (Float.is_finite cost && cost > 0.0);
  (* the embedded report carries the ebf/solver records of solve --json *)
  Alcotest.(check bool) "ebf record present" true
    (Json.member "ebf" r <> None);
  Alcotest.(check bool) "solver record present" true
    (Json.member "solver" r <> None);
  (* opting out of certification is honoured *)
  let r =
    respond
      {|{"id": "r2", "bench": "prim1s", "size": "tiny", "certify": false}|}
  in
  Alcotest.(check bool) "uncertified on request" true
    (member_exn "certified" r = Json.Bool false)

(* the daemon's bench workload is the [lubt batch] protocol: its cost
   must equal a direct library solve over the same baseline window *)
let test_bench_solve_matches_library () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim2s" in
  let b = Protocol.run_baseline spec ~skew_rel:0.5 in
  let run = Protocol.run_lubt_from_baseline b in
  let expected = run.Protocol.cost in
  let r = respond {|{"id": "m", "bench": "prim2s", "size": "tiny"}|} in
  match Json.num (member_exn "cost" r) with
  | None -> Alcotest.fail "cost is not a number"
  | Some cost ->
    (* same lengths, so only summation rounding may separate the LP
       objective from Routed.cost *)
    Alcotest.(check (float 1e-2)) "daemon cost = library cost" expected cost

let test_inline_instance_solve () =
  (* a 4-sink instance round-tripped through the Io text format *)
  let sinks =
    [| Point.make 0.0 100.0; Point.make 100.0 0.0;
       Point.make 100.0 200.0; Point.make 200.0 100.0 |]
  in
  let inst =
    Instance.uniform_bounds ~source:(Point.make 0.0 0.0) ~sinks ~lower:0.0
      ~upper:500.0 ()
  in
  let text = Io.instance_to_string inst in
  let req =
    Printf.sprintf {|{"id": "i1", "instance": %s}|}
      ("\"" ^ Protocol.json_escape text ^ "\"")
  in
  let r = respond req in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool) "validated" true
    (member_exn "validated" r = Json.Bool true)

let test_deadline_expiry () =
  (* a vanishing per-request budget must come back as a structured
     time_limit error, not a late success and not a dead session *)
  let r =
    respond
      {|{"id": "t", "bench": "r3s", "size": "tiny", "time_limit": 1e-9}|}
  in
  Alcotest.(check bool) "not ok" false (is_ok r);
  Alcotest.(check string) "time_limit code" "time_limit" (error_code r);
  Alcotest.(check bool) "id echoed" true (member_exn "id" r = Json.Str "t")

(* ------------------------------------------------------------------ *)
(* ECO requests (op "eco"): incremental re-solve over the cache        *)
(* ------------------------------------------------------------------ *)

let respond_cached cache line =
  parse_response (Serve.response_of_request ~cache line)

(* the JSON instance literal shared by the eco tests: the 4-sink star,
   escaped through the Io text format *)
let inline_instance_text () =
  let sinks =
    [| Point.make 0.0 100.0; Point.make 100.0 0.0;
       Point.make 100.0 200.0; Point.make 200.0 100.0 |]
  in
  let inst =
    Instance.uniform_bounds ~source:(Point.make 0.0 0.0) ~sinks ~lower:0.0
      ~upper:500.0 ()
  in
  "\"" ^ Protocol.json_escape (Io.instance_to_string inst) ^ "\""

let ebf_cache_name r =
  match Json.member "cache" (member_exn "ebf" r) with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "ebf record lacks a cache member: %s" (Json.to_string r)

(* solve, then eco re-solve of the edited instance through one shared
   cache: the eco answer must warm-start from the base solve's basis *)
let test_eco_roundtrip () =
  let text = inline_instance_text () in
  let eco_line =
    Printf.sprintf
      {|{"id": "e1", "op": "eco", "instance": %s, "edits": [{"edit": "set_bounds", "sink": 2, "lower": 1.0, "upper": 450.0}, {"edit": "move_sink", "sink": 0, "dx": 3.0, "dy": -2.0}]}|}
      text
  in
  let cache = Basis_cache.create () in
  let base =
    respond_cached cache (Printf.sprintf {|{"id": "b", "instance": %s}|} text)
  in
  Alcotest.(check bool) "base solve ok" true (is_ok base);
  Alcotest.(check string) "base solve is a cold miss" "miss"
    (ebf_cache_name base);
  let eco = respond_cached cache eco_line in
  Alcotest.(check bool) "eco ok" true (is_ok eco);
  Alcotest.(check bool) "id echoed" true (member_exn "id" eco = Json.Str "e1");
  Alcotest.(check bool) "validated" true
    (member_exn "validated" eco = Json.Bool true);
  let name = ebf_cache_name eco in
  Alcotest.(check bool) ("eco warm-started from the cache: " ^ name) true
    (name = "exact" || name = "parent");
  let s = Basis_cache.stats cache in
  Alcotest.(check bool) "hit counted" true (s.Basis_cache.hits >= 1);
  (* the same request without a cache still answers, reporting it ran
     cold — eco does not require a cache to be correct *)
  let cold = respond eco_line in
  Alcotest.(check bool) "cacheless eco ok" true (is_ok cold);
  Alcotest.(check string) "cacheless eco reports cache off" "off"
    (ebf_cache_name cold)

(* malformed edit payloads are request errors; a well-formed edit that
   cannot apply is an [edit_failed], never a crashed session *)
let test_eco_malformed_edits () =
  let text = inline_instance_text () in
  let code line = error_code (respond line) in
  let eco edits =
    Printf.sprintf {|{"id": "m", "op": "eco", "instance": %s, "edits": %s}|}
      text edits
  in
  Alcotest.(check string) "missing edits member" "bad_request"
    (code (Printf.sprintf {|{"id": "m", "op": "eco", "instance": %s}|} text));
  List.iter
    (fun (what, edits) ->
      Alcotest.(check string) what "bad_request" (code (eco edits)))
    [
      ("empty edits", {|[]|});
      ("edits not an array", {|{"edit": "set_bounds"}|});
      ("edit without a kind", {|[{"sink": 1}]|});
      ("unknown edit kind", {|[{"edit": "frobnicate", "sink": 1}]|});
      ( "fractional sink index",
        {|[{"edit": "set_bounds", "sink": 1.5, "lower": 1.0, "upper": 2.0}]|}
      );
      ( "negative lower bound",
        {|[{"edit": "set_bounds", "sink": 1, "lower": -1.0, "upper": 2.0}]|}
      );
      ("move without dx", {|[{"edit": "move_sink", "sink": 1, "dy": 1.0}]|});
    ];
  Alcotest.(check string) "out-of-range sink applies as edit_failed"
    "edit_failed"
    (code (eco {|[{"edit": "remove_sink", "sink": 99}]|}))

(* daemon restart over a --cache-dir disk tier: a brand-new in-memory
   cache over the same directory warm-starts from the persisted
   snapshot; a genuinely cold cache answers correctly from scratch *)
let test_eco_restart_cache () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lubt-serve-cache-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  let rm_rf () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:rm_rf (fun () ->
      let text = inline_instance_text () in
      let solve_line = Printf.sprintf {|{"id": "s", "instance": %s}|} text in
      let c1 = Basis_cache.create ~dir () in
      let r1 = respond_cached c1 solve_line in
      Alcotest.(check bool) "first daemon's solve ok" true (is_ok r1);
      (* "restart": same directory, fresh in-memory tier *)
      let c2 = Basis_cache.create ~dir () in
      let r2 = respond_cached c2 solve_line in
      Alcotest.(check bool) "restarted daemon's solve ok" true (is_ok r2);
      Alcotest.(check string) "snapshot survives the restart" "exact"
        (ebf_cache_name r2);
      Alcotest.(check bool) "disk hit counted" true
        ((Basis_cache.stats c2).Basis_cache.hits >= 1);
      (* cold-cache restart path: no directory carried over — a clean
         miss, identical answer *)
      let c3 = Basis_cache.create () in
      let r3 = respond_cached c3 solve_line in
      Alcotest.(check bool) "cold restart solve ok" true (is_ok r3);
      Alcotest.(check string) "cold restart is a miss" "miss"
        (ebf_cache_name r3))

(* the renderer shared with [lubt solve --json] emits checker-clean
   JSON whose members match the serve response's payload *)
let test_report_renderer_shared () =
  let spec = Benchmarks.find Benchmarks.Tiny "prim1s" in
  let b = Protocol.run_baseline spec ~skew_rel:0.5 in
  let inst =
    Lubt_bst.Bst_dme.extract_instance b.Protocol.bst
  in
  let options =
    { Ebf.default_options with Ebf.check = Lubt_lp.Certify.Full }
  in
  match Lubt.solve ~options inst b.Protocol.bst.Lubt_bst.Bst_dme.topology with
  | Error e -> Alcotest.fail (Lubt.error_to_string e)
  | Ok report ->
    let j = Serve.solve_report_json report ~validated:true in
    Alcotest.(check bool) "report is checker-clean JSON" true
      (Json_check.json_valid j);
    (match Json.parse j with
    | Error e -> Alcotest.fail e
    | Ok parsed ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " member present") true
            (Json.member k parsed <> None))
        [ "cost"; "validated"; "certified"; "ebf"; "solver" ])

(* ------------------------------------------------------------------ *)
(* Socket-level tests                                                  *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lubt-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))

let with_daemon ?(jobs = 2) ?(max_pending = 64) ?(watchdog = infinity)
    ?(breaker_queue = 0) ?(breaker_cooldown = 1.0) ?chaos f =
  let path = temp_socket () in
  let cfg =
    {
      Serve.default_config with
      Serve.socket = Some path;
      jobs;
      max_pending;
      watchdog;
      breaker_queue;
      breaker_cooldown;
      chaos;
    }
  in
  match Serve.spawn cfg with
  | Error msg -> Alcotest.fail msg
  | Ok handle ->
    let stats =
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let r = f path in
          let stats = Serve.shutdown handle in
          (r, stats))
    in
    stats

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* read whole lines until [want] of them have arrived (or EOF) *)
let read_lines fd want =
  let buf = Bytes.create 65536 in
  let rec go acc partial =
    if List.length acc >= want then List.rev acc
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> List.rev acc
      | n ->
        let data = partial ^ Bytes.sub_string buf 0 n in
        let parts = String.split_on_char '\n' data in
        let rec walk acc = function
          | [] -> (acc, "")
          | [ last ] -> (acc, last)
          | l :: rest ->
            walk (if String.trim l = "" then acc else l :: acc) rest
        in
        let acc, last = walk acc parts in
        go acc last
  in
  go [] ""

let response_id j =
  match Json.member "id" j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "response without string id"

(* concurrent pipelined clients: every request answered exactly once,
   matched by id, all optimal, and equal ids (same workload) agree on
   the cost — the daemon must give deterministic certified objectives
   under concurrency *)
let test_socket_concurrent_clients () =
  let nconns = 5 and per_conn = 4 in
  let _, stats =
    with_daemon ~jobs:2 (fun path ->
        let fds = Array.init nconns (fun _ -> connect path) in
        Array.iteri
          (fun c fd ->
            for k = 0 to per_conn - 1 do
              (* two distinct workloads alternating, so equal ids across
                 connections must produce equal costs *)
              let bench = if k mod 2 = 0 then "prim1s" else "prim2s" in
              send fd
                (Printf.sprintf
                   {|{"id": "c%d-k%d-%s", "bench": "%s", "size": "tiny"}|} c k
                   bench bench)
            done)
          fds;
        let by_bench : (string, float) Hashtbl.t = Hashtbl.create 4 in
        Array.iteri
          (fun _ fd ->
            let lines = read_lines fd per_conn in
            Alcotest.(check int) "every request answered" per_conn
              (List.length lines);
            List.iter
              (fun line ->
                let j = parse_response line in
                Alcotest.(check bool) ("ok: " ^ line) true (is_ok j);
                let id = response_id j in
                (* id suffix names the bench it asked for *)
                let bench =
                  List.nth (String.split_on_char '-' id) 2
                in
                let cost =
                  match Json.num (member_exn "cost" j) with
                  | Some c -> c
                  | None -> Alcotest.fail "cost is not a number"
                in
                match Hashtbl.find_opt by_bench bench with
                | None -> Hashtbl.add by_bench bench cost
                | Some c0 ->
                  Alcotest.(check (float 0.0))
                    ("deterministic cost for " ^ bench) c0 cost)
              lines)
          fds;
        Array.iter (fun fd -> Unix.close fd) fds;
        Alcotest.(check int) "both workloads seen" 2 (Hashtbl.length by_bench))
  in
  Alcotest.(check int) "stats: all sessions counted" nconns stats.Serve.connections;
  Alcotest.(check int) "stats: all requests served" (nconns * per_conn)
    stats.Serve.served;
  Alcotest.(check int) "stats: none failed" 0 stats.Serve.failed

(* a malformed line gets its error and the session keeps serving *)
let test_socket_malformed_then_alive () =
  let _, stats =
    with_daemon (fun path ->
        let fd = connect path in
        send fd "this is not json";
        send fd {|{"id": "after", "op": "ping"}|};
        let lines = read_lines fd 2 in
        Alcotest.(check int) "both lines answered" 2 (List.length lines);
        let codes =
          List.filter_map
            (fun l ->
              let j = parse_response l in
              if is_ok j then None else Some (error_code j))
            lines
        in
        Alcotest.(check (list string)) "one bad_request" [ "bad_request" ]
          codes;
        let pings =
          List.filter
            (fun l ->
              let j = parse_response l in
              is_ok j && response_id j = "after")
            lines
        in
        Alcotest.(check int) "the ping after the garbage answered" 1
          (List.length pings);
        Unix.close fd)
  in
  Alcotest.(check bool) "daemon survived to a clean shutdown" true
    (stats.Serve.served = 2)

(* jobs=1 + max_pending=1 + a slow request: the queue admits exactly one
   follower; the rest must be refused immediately as overloaded *)
let test_socket_backpressure () =
  let _, stats =
    with_daemon ~jobs:1 ~max_pending:1 (fun path ->
        let fd = connect path in
        send fd {|{"id": "slow", "op": "sleep", "ms": 400}|};
        (* give the worker time to pick "slow" up, emptying the queue *)
        Unix.sleepf 0.1;
        send fd {|{"id": "queued", "op": "sleep", "ms": 1}|};
        Unix.sleepf 0.05;
        send fd {|{"id": "refused1", "op": "sleep", "ms": 1}|};
        send fd {|{"id": "refused2", "op": "sleep", "ms": 1}|};
        let lines = read_lines fd 4 in
        let ok_ids, rejected_ids =
          List.partition_map
            (fun l ->
              let j = parse_response l in
              if is_ok j then Left (response_id j)
              else begin
                Alcotest.(check string) "overloaded code" "overloaded"
                  (error_code j);
                Right (response_id j)
              end)
            lines
        in
        Alcotest.(check (slist string String.compare))
          "slow and queued complete" [ "queued"; "slow" ] ok_ids;
        Alcotest.(check (slist string String.compare))
          "the overflow is refused" [ "refused1"; "refused2" ] rejected_ids;
        Unix.close fd)
  in
  Alcotest.(check int) "stats count the rejections" 2 stats.Serve.rejected

(* a client that hangs up with responses still in flight must cost the
   daemon only that session: the worker's response hits a dead socket,
   the select loop prunes the session, and other clients keep being
   served (regression: a worker-side close of the fd used to race the
   select loop into an unhandled EBADF, crashing the whole daemon) *)
let test_socket_client_vanishes () =
  let _, _ =
    with_daemon ~jobs:1 (fun path ->
        let fd = connect path in
        send fd {|{"id": "gone", "op": "sleep", "ms": 50}|};
        Unix.close fd;
        (* let the sleep finish and its response hit the closed socket *)
        Unix.sleepf 0.3;
        let fd2 = connect path in
        send fd2 {|{"id": "alive", "op": "ping"}|};
        (match read_lines fd2 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "daemon still serving" true (is_ok j);
          Alcotest.(check string) "the later client's id" "alive"
            (response_id j)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd2)
  in
  ()

(* a per-request deadline expiring inside the daemon comes back as a
   time_limit error on the wire *)
let test_socket_deadline () =
  let _, _ =
    with_daemon (fun path ->
        let fd = connect path in
        send fd
          {|{"id": "tl", "bench": "r1s", "size": "tiny", "time_limit": 1e-9}|};
        (match read_lines fd 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "not ok" false (is_ok j);
          Alcotest.(check string) "time_limit" "time_limit" (error_code j)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd)
  in
  ()

(* ------------------------------------------------------------------ *)
(* Fault tolerance: health, degradation, breaker, watchdog, chaos      *)
(* ------------------------------------------------------------------ *)

module Executor = Lubt_util.Pool.Executor

(* ping carries the health object clients use for admission decisions *)
let test_socket_ping_health () =
  let _, _ =
    with_daemon (fun path ->
        let fd = connect path in
        send fd {|{"id": "h", "op": "ping"}|};
        (match read_lines fd 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "ok" true (is_ok j);
          let h = member_exn "health" j in
          List.iter
            (fun k ->
              Alcotest.(check bool) ("health has " ^ k) true
                (Json.member k h <> None))
            [
              "pending"; "running"; "workers"; "restarts"; "watchdog_fires";
              "breaker_open"; "p95_ms"; "served"; "degraded"; "rejected";
              "cache_hits"; "cache_misses";
            ];
          Alcotest.(check bool) "breaker closed" true
            (member_exn "breaker_open" h = Json.Bool false)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd)
  in
  ()

(* a degrade-opted request under a vanishing deadline is answered by a
   lower rung instead of failing, and says so *)
let test_socket_degraded () =
  let _, stats =
    with_daemon (fun path ->
        let fd = connect path in
        send fd
          {|{"id": "d", "bench": "prim1s", "size": "tiny", "degrade": true, "time_limit": 1e-9}|};
        (match read_lines fd 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "ok despite the dead deadline" true (is_ok j);
          Alcotest.(check bool) "marked degraded" true
            (member_exn "degraded" j = Json.Bool true);
          Alcotest.(check bool) "status degraded" true
            (member_exn "status" j = Json.Str "degraded");
          (match member_exn "quality" j with
          | Json.Str q ->
            Alcotest.(check bool) ("known rung: " ^ q) true
              (List.mem q [ "uncertified"; "reduced"; "heuristic" ])
          | _ -> Alcotest.fail "quality is not a string");
          Alcotest.(check bool) "positive cost" true
            (match Json.num (member_exn "cost" j) with
            | Some c -> Float.is_finite c && c > 0.0
            | None -> false)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        (* without the opt-in the same deadline still fails *)
        send fd
          {|{"id": "n", "bench": "prim1s", "size": "tiny", "time_limit": 1e-9}|};
        (match read_lines fd 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "not ok without opt-in" false (is_ok j)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd)
  in
  Alcotest.(check int) "stats count the degradation" 1 stats.Serve.degraded

(* queue-depth breaker: once the queue reaches the bound the daemon
   rejects fast with breaker_open and a retry_after_ms hint *)
let test_socket_breaker () =
  let _, stats =
    with_daemon ~jobs:1 ~max_pending:8 ~breaker_queue:1 ~breaker_cooldown:0.2
      (fun path ->
        let fd = connect path in
        send fd {|{"id": "slow", "op": "sleep", "ms": 400}|};
        Unix.sleepf 0.1;
        send fd {|{"id": "queued", "op": "sleep", "ms": 1}|};
        Unix.sleepf 0.05;
        send fd {|{"id": "shed", "op": "sleep", "ms": 1}|};
        let lines = read_lines fd 3 in
        let shed =
          List.filter_map
            (fun l ->
              let j = parse_response l in
              if is_ok j then None else Some j)
            lines
        in
        (match shed with
        | [ j ] ->
          Alcotest.(check string) "breaker_open code" "breaker_open"
            (error_code j);
          Alcotest.(check string) "rejected id" "shed" (response_id j);
          let hint =
            match Json.member "error" j with
            | Some e -> Json.member "retry_after_ms" e
            | None -> None
          in
          (match hint with
          | Some h ->
            Alcotest.(check bool) "positive retry_after_ms" true
              (match Json.num h with Some ms -> ms > 0.0 | None -> false)
          | None -> Alcotest.fail "no retry_after_ms hint")
        | l -> Alcotest.failf "expected 1 rejection, got %d" (List.length l));
        Unix.close fd)
  in
  Alcotest.(check bool) "stats count the trip" true
    (stats.Serve.breaker_trips >= 1);
  Alcotest.(check int) "stats count the rejection" 1 stats.Serve.rejected

(* the watchdog deposes a stuck request's worker and answers the
   request with a structured watchdog_timeout *)
let test_socket_watchdog () =
  let _, stats =
    with_daemon ~jobs:1 ~watchdog:0.08 (fun path ->
        let fd = connect path in
        send fd {|{"id": "stuck", "op": "sleep", "ms": 500}|};
        (match read_lines fd 1 with
        | [ line ] ->
          let j = parse_response line in
          Alcotest.(check bool) "not ok" false (is_ok j);
          Alcotest.(check string) "watchdog_timeout code" "watchdog_timeout"
            (error_code j)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        (* the replacement worker serves the next request *)
        send fd {|{"id": "next", "op": "sleep", "ms": 1}|};
        (match read_lines fd 1 with
        | [ line ] ->
          Alcotest.(check bool) "replacement serves" true
            (is_ok (parse_response line))
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd)
  in
  Alcotest.(check int) "stats: one watchdog fire" 1 stats.Serve.watchdog_fires;
  Alcotest.(check bool) "stats: restart counted" true
    (stats.Serve.restarts >= 1)

(* seeded chaos killing every worker mid-solve: each request fails with
   worker_crashed, the daemon replaces the workers and stays up *)
let test_socket_chaos_crash () =
  let chaos = Executor.chaos_plan ~kill_rate:1.0 ~delay_rate:0.0 11 in
  let n = 4 in
  let _, stats =
    with_daemon ~jobs:2 ~chaos (fun path ->
        let fd = connect path in
        for k = 1 to n do
          send fd (Printf.sprintf {|{"id": "c%d", "op": "sleep", "ms": 1}|} k)
        done;
        let lines = read_lines fd n in
        Alcotest.(check int) "every request answered" n (List.length lines);
        List.iter
          (fun l ->
            let j = parse_response l in
            Alcotest.(check bool) "not ok" false (is_ok j);
            Alcotest.(check string) "worker_crashed code" "worker_crashed"
              (error_code j))
          lines;
        (* the session thread is untouched: ping still answers *)
        send fd {|{"id": "p", "op": "ping"}|};
        (match read_lines fd 1 with
        | [ line ] ->
          Alcotest.(check bool) "daemon alive" true
            (is_ok (parse_response line))
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
        Unix.close fd)
  in
  Alcotest.(check bool)
    (Printf.sprintf "restarts >= %d (got %d)" n stats.Serve.restarts)
    true
    (stats.Serve.restarts >= n);
  Alcotest.(check int) "every crash counted failed" n stats.Serve.failed

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and id echo" `Quick test_ping_and_id_echo;
          Alcotest.test_case "bad requests" `Quick test_bad_requests;
          Alcotest.test_case "bench solve round-trip" `Quick
            test_bench_solve_roundtrip;
          Alcotest.test_case "matches library solve" `Quick
            test_bench_solve_matches_library;
          Alcotest.test_case "inline instance" `Quick
            test_inline_instance_solve;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "eco round-trip" `Quick test_eco_roundtrip;
          Alcotest.test_case "eco malformed edits" `Quick
            test_eco_malformed_edits;
          Alcotest.test_case "eco cache across daemon restart" `Quick
            test_eco_restart_cache;
          Alcotest.test_case "shared report renderer" `Quick
            test_report_renderer_shared;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent pipelined clients" `Quick
            test_socket_concurrent_clients;
          Alcotest.test_case "malformed line, session survives" `Quick
            test_socket_malformed_then_alive;
          Alcotest.test_case "backpressure refuses overflow" `Quick
            test_socket_backpressure;
          Alcotest.test_case "client vanishes mid-response" `Quick
            test_socket_client_vanishes;
          Alcotest.test_case "deadline over the wire" `Quick
            test_socket_deadline;
        ] );
      ( "faults",
        [
          Alcotest.test_case "ping health object" `Quick
            test_socket_ping_health;
          Alcotest.test_case "degraded over the wire" `Quick
            test_socket_degraded;
          Alcotest.test_case "breaker sheds load" `Quick test_socket_breaker;
          Alcotest.test_case "watchdog over the wire" `Quick
            test_socket_watchdog;
          Alcotest.test_case "chaos crash contained" `Quick
            test_socket_chaos_crash;
        ] );
    ]
