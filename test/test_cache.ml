(* The warm-start cache, locked in by a differential equivalence layer.

   The core suite applies random ECO edit chains (eco_gen.ml) to random
   EBF instances (lp_gen.ml) and asserts that a warm-from-cache re-solve
   and a cold-from-scratch re-solve of the same edited instance reach
   identical certified objectives — the cache may only change the pivot
   path, never the answer. Around it: fingerprint determinism, snapshot
   disk round-trips, LRU eviction, corrupt/mis-keyed snapshot rejection,
   the typed dimension-mismatch regression, and a concurrent-executor
   cache race. *)

module Cache = Lubt_lp.Basis_cache
module Simplex = Lubt_lp.Simplex
module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Status = Lubt_lp.Status
module Certify = Lubt_lp.Certify
module Ebf = Lubt_core.Ebf
module Instance = Lubt_core.Instance
module Prng = Lubt_util.Prng

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lubt-cache-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let certified_cached cache =
  { Ebf.default_options with Ebf.check = Certify.Full; cache = Some cache }

let certified_cold = { Ebf.default_options with Ebf.check = Certify.Full }

let check_close what a b =
  let tol = 1e-6 *. (1.0 +. Float.abs a) in
  if Float.abs (a -. b) > tol then
    Alcotest.failf "%s: %.12g vs %.12g (tol %.3g)" what a b tol

let is_hit = function
  | Ebf.Cache_hit_exact | Ebf.Cache_hit_parent -> true
  | Ebf.Cache_off | Ebf.Cache_miss | Ebf.Cache_rejected _ -> false

(* a small fixed LP for the solver-level tests: min x + 2y
   s.t. x + y >= 2, x - y <= 1, 0 <= x,y <= 10 *)
let small_problem () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:0.0 ~up:10.0 ~obj:1.0 p in
  let y = Problem.add_var ~lo:0.0 ~up:10.0 ~obj:2.0 p in
  ignore (Problem.add_row p ~lo:2.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:1.0 [ (x, 1.0); (y, -1.0) ]);
  p

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint () =
  let digest feed =
    let h = Cache.Fingerprint.create () in
    feed h;
    Cache.Fingerprint.digest h
  in
  let a =
    digest (fun h ->
        Cache.Fingerprint.add_int h 42;
        Cache.Fingerprint.add_float h 1.5;
        Cache.Fingerprint.add_string h "ebf")
  in
  let a' =
    digest (fun h ->
        Cache.Fingerprint.add_int h 42;
        Cache.Fingerprint.add_float h 1.5;
        Cache.Fingerprint.add_string h "ebf")
  in
  Alcotest.(check string) "deterministic" a a';
  let b =
    digest (fun h ->
        Cache.Fingerprint.add_int h 43;
        Cache.Fingerprint.add_float h 1.5;
        Cache.Fingerprint.add_string h "ebf")
  in
  Alcotest.(check bool) "value-sensitive" true (a <> b);
  (* length prefixing: ["ab"; "c"] and ["a"; "bc"] must differ *)
  let c =
    digest (fun h ->
        Cache.Fingerprint.add_string h "ab";
        Cache.Fingerprint.add_string h "c")
  in
  let d =
    digest (fun h ->
        Cache.Fingerprint.add_string h "a";
        Cache.Fingerprint.add_string h "bc")
  in
  Alcotest.(check bool) "no concatenation ambiguity" true (c <> d);
  (* -0.0 and 0.0 are different bit patterns, hence different keys *)
  let z = digest (fun h -> Cache.Fingerprint.add_float h 0.0) in
  let nz = digest (fun h -> Cache.Fingerprint.add_float h (-0.0)) in
  Alcotest.(check bool) "signed zero distinguished" true (z <> nz);
  Alcotest.(check int) "16 hex chars" 16 (String.length a)

(* ------------------------------------------------------------------ *)
(* Differential equivalence: warm-from-cache == cold-from-scratch      *)
(* ------------------------------------------------------------------ *)

(* One chain: solve the parent (populating the cache), edit, then solve
   the edited instance twice — warm and cold — and compare. Returns
   None when the parent was not optimal (nothing cached to compare
   against), Some hit otherwise. *)
let run_chain ~topology_preserving seed =
  let rng = Prng.create seed in
  let inst, tree = Lp_gen.random_ebf rng in
  let cache = Cache.create () in
  let warm_opts = certified_cached cache in
  let parent = Ebf.solve ~options:warm_opts inst tree in
  if parent.Ebf.status <> Status.Optimal then None
  else begin
    let len = 1 + Prng.int rng 3 in
    let _ops, edited =
      Eco_gen.random_chain ~topology_preserving ~len rng inst
    in
    let tree' =
      if Instance.num_sinks edited = Instance.num_sinks inst then tree
      else
        Lubt_topo.Topogen.random_binary rng
          ~num_sinks:(Instance.num_sinks edited)
          ~source_edge:(inst.Instance.source <> None)
    in
    let warm = Ebf.solve ~options:warm_opts edited tree' in
    let cold = Ebf.solve ~options:certified_cold edited tree' in
    Alcotest.(check string)
      (Printf.sprintf "chain %d: statuses agree" seed)
      (Status.to_string cold.Ebf.status)
      (Status.to_string warm.Ebf.status);
    if warm.Ebf.status = Status.Optimal then begin
      check_close
        (Printf.sprintf "chain %d: certified objectives" seed)
        cold.Ebf.objective warm.Ebf.objective;
      (* both answers really were certified, not just claimed *)
      let certified r =
        match r.Ebf.certificate with
        | Some c -> c.Certify.ok
        | None -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "chain %d: warm certified" seed)
        true (certified warm);
      Alcotest.(check bool)
        (Printf.sprintf "chain %d: cold certified" seed)
        true (certified cold)
    end;
    Some (is_hit warm.Ebf.cache_outcome)
  end

let test_differential_preserving () =
  (* >= 50 green chains where the edit preserves the topology: every
     one must be served from the cache (the parent has the same
     structure fingerprint), and every one must match the cold solve *)
  let chains = ref 0 and hits = ref 0 and seed = ref 0 in
  while !chains < 50 do
    incr seed;
    match run_chain ~topology_preserving:true !seed with
    | None -> ()
    | Some hit ->
      incr chains;
      if hit then incr hits
  done;
  Alcotest.(check int) "every preserving chain warm-started" !chains !hits

let test_differential_mixed () =
  (* chains that may add/remove sinks: the cache must stay silent or
     correct — equivalence holds whether or not anything was served *)
  let chains = ref 0 and seed = ref 1000 in
  while !chains < 12 do
    incr seed;
    match run_chain ~topology_preserving:false !seed with
    | None -> ()
    | Some _ -> incr chains
  done

(* ------------------------------------------------------------------ *)
(* Snapshot round-trip and the disk tier                               *)
(* ------------------------------------------------------------------ *)

let sample_entry () =
  {
    Cache.e_structure = "00000000deadbeef";
    e_key = "cafebabe00000000";
    e_basis =
      {
        Simplex.wb_nvars = 3;
        wb_nrows = 2;
        wb_basic = [| 3; 4 |];
        wb_nonbasic = "luf" ^ "bb";
      };
    e_delay = [| 0; 2 |];
    e_pairs = [| (0, 1); (1, 2) |];
    e_objective = 42.5;
  }

let check_entry_equal (a : Cache.entry) (b : Cache.entry) =
  Alcotest.(check string) "structure" a.Cache.e_structure b.Cache.e_structure;
  Alcotest.(check string) "key" a.Cache.e_key b.Cache.e_key;
  Alcotest.(check int) "nvars" a.Cache.e_basis.Simplex.wb_nvars
    b.Cache.e_basis.Simplex.wb_nvars;
  Alcotest.(check int) "nrows" a.Cache.e_basis.Simplex.wb_nrows
    b.Cache.e_basis.Simplex.wb_nrows;
  Alcotest.(check (array int)) "basic" a.Cache.e_basis.Simplex.wb_basic
    b.Cache.e_basis.Simplex.wb_basic;
  Alcotest.(check string) "nonbasic" a.Cache.e_basis.Simplex.wb_nonbasic
    b.Cache.e_basis.Simplex.wb_nonbasic;
  Alcotest.(check (array int)) "delay" a.Cache.e_delay b.Cache.e_delay;
  Alcotest.(check (list (pair int int))) "pairs"
    (Array.to_list a.Cache.e_pairs)
    (Array.to_list b.Cache.e_pairs);
  Alcotest.(check (float 0.0)) "objective" a.Cache.e_objective
    b.Cache.e_objective

let test_disk_roundtrip () =
  with_dir (fun dir ->
      let e = sample_entry () in
      let c1 = Cache.create ~dir () in
      Cache.store c1 e;
      (* a FRESH cache over the same directory: memory tier is empty, so
         the hit below can only come from the parsed snapshot file *)
      let c2 = Cache.create ~dir () in
      (match
         Cache.find c2 ~structure:e.Cache.e_structure ~key:e.Cache.e_key
       with
      | Cache.Exact got -> check_entry_equal e got
      | Cache.Parent _ -> Alcotest.fail "expected Exact, got Parent"
      | Cache.Miss -> Alcotest.fail "disk round-trip lost the snapshot");
      (* the parent path also survives the restart: a different key with
         the same structure resolves through the disk index file *)
      let c3 = Cache.create ~dir () in
      (match
         Cache.find c3 ~structure:e.Cache.e_structure
           ~key:"1111111111111111"
       with
      | Cache.Parent got -> check_entry_equal e got
      | Cache.Exact _ -> Alcotest.fail "expected Parent, got Exact"
      | Cache.Miss -> Alcotest.fail "disk parent lookup failed");
      let s = Cache.stats c3 in
      Alcotest.(check int) "parent lookup counted as hit" 1 s.Cache.hits)

let test_solver_disk_restart () =
  (* end to end through Solver.solve: a second process (modelled by a
     fresh cache over the same dir) warm-starts from the first's basis *)
  with_dir (fun dir ->
      let c1 = Cache.create ~dir () in
      let s1 = Solver.solve ~check:Certify.Full ~cache:c1 (small_problem ()) in
      Alcotest.(check string) "first solve optimal" "optimal"
        (Status.to_string s1.Status.status);
      Alcotest.(check int) "stored" 1 (Cache.stats c1).Cache.stores;
      let c2 = Cache.create ~dir () in
      let s2 = Solver.solve ~check:Certify.Full ~cache:c2 (small_problem ()) in
      Alcotest.(check string) "restart solve optimal" "optimal"
        (Status.to_string s2.Status.status);
      check_close "objectives across restart" s1.Status.objective
        s2.Status.objective;
      let st = Cache.stats c2 in
      Alcotest.(check int) "restart warm-started from disk" 1 st.Cache.hits;
      Alcotest.(check int) "no rejects" 0 st.Cache.rejects)

let test_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  let entry key =
    { (sample_entry ()) with Cache.e_key = key; e_structure = key }
  in
  Cache.store c (entry "k1");
  Cache.store c (entry "k2");
  (* touch k1 so k2 becomes the LRU victim of the next insert *)
  (match Cache.find c ~structure:"k1" ~key:"k1" with
  | Cache.Exact _ -> ()
  | _ -> Alcotest.fail "k1 should be resident");
  Cache.store c (entry "k3");
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  (match Cache.find c ~structure:"k2" ~key:"k2" with
  | Cache.Miss -> ()
  | _ -> Alcotest.fail "k2 should have been evicted (LRU)");
  (match Cache.find c ~structure:"k1" ~key:"k1" with
  | Cache.Exact _ -> ()
  | _ -> Alcotest.fail "k1 (recently used) should have survived");
  (match Cache.find c ~structure:"k3" ~key:"k3" with
  | Cache.Exact _ -> ()
  | _ -> Alcotest.fail "k3 (just inserted) should be resident")

let test_corrupt_snapshot_rejected () =
  with_dir (fun dir ->
      let e = sample_entry () in
      let c1 = Cache.create ~dir () in
      Cache.store c1 e;
      let file = Filename.concat dir ("b" ^ e.Cache.e_key ^ ".dat") in
      Alcotest.(check bool) "snapshot file exists" true (Sys.file_exists file);
      (* flip one byte in the middle of the payload *)
      let content = In_channel.with_open_bin file In_channel.input_all in
      let flipped = Bytes.of_string content in
      let mid = Bytes.length flipped / 2 in
      Bytes.set flipped mid
        (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x01));
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_bytes oc flipped);
      let c2 = Cache.create ~dir () in
      (match
         Cache.find c2 ~structure:e.Cache.e_structure ~key:e.Cache.e_key
       with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "bit-flipped snapshot must be a miss");
      Alcotest.(check bool) "reject counted" true
        ((Cache.stats c2).Cache.rejects >= 1);
      (* truncation is likewise rejected *)
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc
            (String.sub content 0 (String.length content / 2)));
      let c3 = Cache.create ~dir () in
      (match
         Cache.find c3 ~structure:e.Cache.e_structure ~key:e.Cache.e_key
       with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "truncated snapshot must be a miss"))

let test_miskeyed_snapshot_rejected () =
  (* a snapshot parked under the wrong filename (the fingerprint
     matches the filename but not the recorded key) must be rejected
     with a counted reject, never served *)
  with_dir (fun dir ->
      let e = sample_entry () in
      let c1 = Cache.create ~dir () in
      Cache.store c1 e;
      let src = Filename.concat dir ("b" ^ e.Cache.e_key ^ ".dat") in
      let other_key = "2222222222222222" in
      let dst = Filename.concat dir ("b" ^ other_key ^ ".dat") in
      let content = In_channel.with_open_bin src In_channel.input_all in
      Out_channel.with_open_bin dst (fun oc ->
          Out_channel.output_string oc content);
      let c2 = Cache.create ~dir () in
      (match
         Cache.find c2 ~structure:"3333333333333333" ~key:other_key
       with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "mis-keyed snapshot must be a miss");
      Alcotest.(check bool) "mis-key reject counted" true
        ((Cache.stats c2).Cache.rejects >= 1))

(* ------------------------------------------------------------------ *)
(* Satellite regression: dimension mismatch is typed, never silent     *)
(* ------------------------------------------------------------------ *)

let test_dimension_mismatch_typed () =
  (* a snapshot whose dimensions disagree with the engine must come
     back as a typed basis_mismatch carrying both shapes — and must
     leave the engine able to solve correctly from its cold basis *)
  let p = small_problem () in
  let eng = Simplex.of_problem p in
  let bogus =
    {
      Simplex.wb_nvars = 7;
      wb_nrows = 5;
      wb_basic = [| 7; 8; 9; 10; 11 |];
      wb_nonbasic = String.make 12 'l';
    }
  in
  (match Simplex.install_warm_basis eng bogus with
  | Ok () -> Alcotest.fail "dimension mismatch was mapped silently"
  | Error bm ->
    Alcotest.(check int) "expected vars" 2 bm.Simplex.bm_expected_vars;
    Alcotest.(check int) "expected rows" 2 bm.Simplex.bm_expected_rows;
    Alcotest.(check int) "got vars" 7 bm.Simplex.bm_got_vars;
    Alcotest.(check int) "got rows" 5 bm.Simplex.bm_got_rows;
    Alcotest.(check bool) "reason is non-empty" true
      (String.length bm.Simplex.bm_reason > 0);
    (* the pretty-printer renders without raising *)
    let rendered = Format.asprintf "%a" Simplex.pp_basis_mismatch bm in
    Alcotest.(check bool) "rendered mismatch mentions shapes" true
      (String.length rendered > 0));
  (* the refused install left the engine on a valid basis *)
  let status = Simplex.solve eng in
  Alcotest.(check string) "engine still solves" "optimal"
    (Status.to_string status);
  let cold = Solver.solve (small_problem ()) in
  check_close "same optimum as an untouched engine"
    cold.Status.objective (Simplex.solution eng).Status.objective

let test_layout_change_rejected_not_mapped () =
  (* Ebf-level regression: an edit that changes the delay-row layout
     (a sink's window relaxed to [0, inf) drops its row) makes the
     cached parent snapshot structurally incompatible. The solve must
     report Cache_rejected — with a reason — and still reach the cold
     objective, never install the stale basis silently. *)
  let rng = Prng.create 7 in
  let inst, tree = Lp_gen.random_ebf rng in
  let cache = Cache.create () in
  let opts = certified_cached cache in
  let parent = Ebf.solve ~options:opts inst tree in
  Alcotest.(check string) "parent optimal" "optimal"
    (Status.to_string parent.Ebf.status);
  let edited =
    match
      Instance.Edit.apply inst
        (Instance.Edit.Set_bounds { sink = 0; lower = 0.0; upper = infinity })
    with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let warm = Ebf.solve ~options:opts edited tree in
  let cold = Ebf.solve ~options:certified_cold edited tree in
  (match warm.Ebf.cache_outcome with
  | Ebf.Cache_rejected reason ->
    Alcotest.(check bool) "reject reason non-empty" true
      (String.length reason > 0)
  | other ->
    Alcotest.failf "expected Cache_rejected, got %s"
      (Ebf.cache_outcome_name other));
  Alcotest.(check string) "still solves" (Status.to_string cold.Ebf.status)
    (Status.to_string warm.Ebf.status);
  if cold.Ebf.status = Status.Optimal then
    check_close "cold objective reached" cold.Ebf.objective warm.Ebf.objective;
  Alcotest.(check bool) "reject counted in stats" true
    ((Cache.stats cache).Cache.rejects >= 1)

(* ------------------------------------------------------------------ *)
(* Concurrency: one cache shared by racing solver domains              *)
(* ------------------------------------------------------------------ *)

let test_concurrent_cache_race () =
  let rng = Prng.create 11 in
  let inst, tree = Lp_gen.random_ebf rng in
  let cache = Cache.create () in
  let opts = certified_cached cache in
  let reference = Ebf.solve ~options:certified_cold inst tree in
  Alcotest.(check string) "reference optimal" "optimal"
    (Status.to_string reference.Ebf.status);
  let domains = 4 and per_domain = 5 in
  let worker () =
    List.init per_domain (fun _ ->
        let r = Ebf.solve ~options:opts inst tree in
        (Status.to_string r.Ebf.status, r.Ebf.objective))
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  let results = List.concat_map Domain.join spawned in
  List.iter
    (fun (status, objective) ->
      Alcotest.(check string) "racing solve optimal" "optimal" status;
      check_close "racing objective" reference.Ebf.objective objective)
    results;
  let s = Cache.stats cache in
  Alcotest.(check int) "every lookup accounted"
    (domains * per_domain)
    (s.Cache.hits + s.Cache.misses);
  (* after a domain's first solve stores the basis, its remaining
     solves must hit (and usually the other domains' do too) *)
  Alcotest.(check bool)
    (Printf.sprintf "hits dominate (%d hits)" s.Cache.hits)
    true
    (s.Cache.hits >= domains * (per_domain - 1));
  Alcotest.(check int) "no rejects under the race" 0 s.Cache.rejects

(* ------------------------------------------------------------------ *)
(* Instance.Edit unit behaviour                                        *)
(* ------------------------------------------------------------------ *)

let test_edit_api () =
  let inst =
    Instance.uniform_bounds
      ~sinks:
        [|
          Lubt_geom.Point.make 0.0 10.0;
          Lubt_geom.Point.make 10.0 0.0;
        |]
      ~lower:1.0 ~upper:50.0 ()
  in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  (* set_bounds rewrites exactly one window *)
  let i2 =
    ok
      (Instance.Edit.apply inst
         (Instance.Edit.Set_bounds { sink = 1; lower = 2.0; upper = 30.0 }))
  in
  Alcotest.(check (float 0.0)) "sink 1 lower" 2.0 i2.Instance.lower.(1);
  Alcotest.(check (float 0.0)) "sink 0 untouched" 1.0 i2.Instance.lower.(0);
  (* move_sink translates *)
  let i3 =
    ok
      (Instance.Edit.apply inst
         (Instance.Edit.Move_sink { sink = 0; dx = 3.0; dy = -4.0 }))
  in
  Alcotest.(check (float 1e-12)) "moved x" 3.0
    i3.Instance.sinks.(0).Lubt_geom.Point.x;
  (* add_sink appends at the end *)
  let i4 =
    ok
      (Instance.Edit.apply inst
         (Instance.Edit.Add_sink
            { point = Lubt_geom.Point.make 5.0 5.0; lower = 0.0; upper = 99.0 }))
  in
  Alcotest.(check int) "sink added" 3 (Instance.num_sinks i4);
  (* remove_sink deletes by index *)
  let i5 =
    ok (Instance.Edit.apply i4 (Instance.Edit.Remove_sink { sink = 0 }))
  in
  Alcotest.(check int) "sink removed" 2 (Instance.num_sinks i5);
  (* error cases are Errors, not exceptions *)
  let is_err = function Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "out-of-range sink" true
    (is_err
       (Instance.Edit.apply inst
          (Instance.Edit.Set_bounds { sink = 9; lower = 0.0; upper = 1.0 })));
  Alcotest.(check bool) "negative sink" true
    (is_err
       (Instance.Edit.apply inst
          (Instance.Edit.Move_sink { sink = -1; dx = 0.0; dy = 0.0 })));
  Alcotest.(check bool) "inverted bounds" true
    (is_err
       (Instance.Edit.apply inst
          (Instance.Edit.Set_bounds { sink = 0; lower = 5.0; upper = 1.0 })));
  let one_sink =
    ok (Instance.Edit.apply inst (Instance.Edit.Remove_sink { sink = 0 }))
  in
  Alcotest.(check bool) "removing the last sink" true
    (is_err
       (Instance.Edit.apply one_sink (Instance.Edit.Remove_sink { sink = 0 })));
  (* apply_all stops at the first failure *)
  Alcotest.(check bool) "apply_all propagates failure" true
    (is_err
       (Instance.Edit.apply_all inst
          [
            Instance.Edit.Move_sink { sink = 0; dx = 1.0; dy = 1.0 };
            Instance.Edit.Remove_sink { sink = 77 };
          ]));
  (* topology preservation classification *)
  Alcotest.(check bool) "set_bounds preserves" true
    (Instance.Edit.preserves_topology
       (Instance.Edit.Set_bounds { sink = 0; lower = 0.0; upper = 1.0 }));
  Alcotest.(check bool) "move preserves" true
    (Instance.Edit.preserves_topology
       (Instance.Edit.Move_sink { sink = 0; dx = 0.0; dy = 0.0 }));
  Alcotest.(check bool) "add does not preserve" false
    (Instance.Edit.preserves_topology
       (Instance.Edit.Add_sink
          { point = Lubt_geom.Point.make 0.0 0.0; lower = 0.0; upper = 1.0 }));
  Alcotest.(check bool) "remove does not preserve" false
    (Instance.Edit.preserves_topology (Instance.Edit.Remove_sink { sink = 0 }))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cache"
    [
      ( "fingerprint",
        [ Alcotest.test_case "determinism and sensitivity" `Quick
            test_fingerprint ] );
      ( "differential",
        [
          Alcotest.test_case "50 topology-preserving ECO chains" `Quick
            test_differential_preserving;
          Alcotest.test_case "mixed chains (add/remove sinks)" `Quick
            test_differential_mixed;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "disk round-trip" `Quick test_disk_roundtrip;
          Alcotest.test_case "solver warm start across restart" `Quick
            test_solver_disk_restart;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "corrupt snapshot rejected" `Quick
            test_corrupt_snapshot_rejected;
          Alcotest.test_case "mis-keyed snapshot rejected" `Quick
            test_miskeyed_snapshot_rejected;
        ] );
      ( "mismatch",
        [
          Alcotest.test_case "dimension mismatch is typed" `Quick
            test_dimension_mismatch_typed;
          Alcotest.test_case "layout change rejected, not mapped" `Quick
            test_layout_change_rejected_not_mapped;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "racing domains share one cache" `Quick
            test_concurrent_cache_race;
        ] );
      ( "edits",
        [ Alcotest.test_case "Instance.Edit behaviour" `Quick test_edit_api ]
      );
    ]
