(* Fast-path equivalence layer: the devex pricing rule, the
   bound-flipping dual ratio test, the hyper-sparse solve kernels and
   the EBF warm start are pure accelerations — no configuration may
   change any verdict or optimal value.  Every engine configuration
   ({dense, sparse} basis x {Dantzig, Partial, Devex} pricing, with and
   without bound flips) is checked against the independent two-phase
   tableau oracle to 1e-7 and against the a-posteriori certifier, on a
   fixed 50-instance corpus, on fresh QCheck-generated instances, on
   LPs whose optimum is known exactly by construction, and under
   injected numerical faults driven through the recovery ladder. *)

module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Simplex = Lubt_lp.Simplex
module Tableau = Lubt_lp.Tableau
module Status = Lubt_lp.Status
module Certify = Lubt_lp.Certify
module Ebf = Lubt_core.Ebf
module Prng = Lubt_util.Prng

let approx = Lubt_util.Stats.approx_eq

(* The full configuration matrix.  Bound flips only alter dual ratio
   tests and devex only primal pricing, but every combination must
   still agree everywhere — that is the point. *)
let configs =
  List.concat_map
    (fun (bname, sparse) ->
      List.concat_map
        (fun (pname, pricing) ->
          List.map
            (fun flips ->
              ( Printf.sprintf "%s+%s%s" bname pname
                  (if flips then "+flips" else ""),
                {
                  Simplex.default_params with
                  Simplex.sparse_basis = sparse;
                  pricing;
                  bound_flips = flips;
                } ))
            [ true; false ])
        [
          ("dantzig", Simplex.Dantzig);
          ("partial", Simplex.Partial);
          ("devex", Simplex.Devex);
        ])
    [ ("dense", false); ("sparse", true) ]

(* Solve [p] under every configuration and compare with the tableau
   oracle: identical status; optimal objectives within 1e-7; primal
   point feasible; the packaged solution accepted by the certifier. *)
let check_all_configs ctx p =
  let oracle = Tableau.solve p in
  List.iter
    (fun (label, params) ->
      let sol = Solver.solve ~params p in
      (match (oracle.Status.status, sol.Status.status) with
      | Status.Optimal, Status.Optimal ->
        if not (approx ~eps:1e-7 sol.Status.objective oracle.Status.objective)
        then
          Alcotest.failf "%s (%s): objective %.12g vs oracle %.12g" ctx label
            sol.Status.objective oracle.Status.objective;
        if not (Problem.is_feasible ~tol:1e-6 p sol.Status.primal) then
          Alcotest.failf "%s (%s): solution infeasible" ctx label;
        let report = Certify.check p sol in
        if not report.Certify.ok then
          Alcotest.failf "%s (%s): certifier rejected: %s" ctx label
            (match report.Certify.failure with Some m -> m | None -> "?")
      | sa, sb when sa = sb -> ()
      | sa, sb ->
        Alcotest.failf "%s (%s): status %s vs oracle %s" ctx label
          (Status.to_string sb) (Status.to_string sa)))
    configs

(* ------------------------------------------------------------------ *)
(* Fixed 50-instance corpus                                            *)
(* ------------------------------------------------------------------ *)

let test_corpus_equivalence () =
  let rng = Prng.create 20260806 in
  for case = 1 to 50 do
    check_all_configs (Printf.sprintf "corpus %d" case)
      (Lp_gen.random_problem rng)
  done

(* ------------------------------------------------------------------ *)
(* Fresh instances every run (QCheck)                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_fresh_equivalence =
  QCheck.Test.make ~count:50 ~name:"five-way equivalence (fresh instances)"
    Lp_gen.arbitrary_spec (fun spec ->
      check_all_configs "fresh" (Lp_gen.problem_of_spec spec);
      true)

(* ------------------------------------------------------------------ *)
(* Constructed-optimum instances                                       *)
(* ------------------------------------------------------------------ *)

let test_certified_optimum () =
  let rng = Prng.create 7106 in
  for case = 1 to 50 do
    let cert = Lp_gen.certified_problem rng in
    let p = cert.Lp_gen.c_problem in
    (* generator self-check: the witness must be feasible *)
    if not (Problem.is_feasible ~tol:1e-9 p cert.Lp_gen.c_primal) then
      Alcotest.failf "case %d: constructed witness infeasible" case;
    List.iter
      (fun (label, params) ->
        let sol = Solver.solve ~params p in
        if sol.Status.status <> Status.Optimal then
          Alcotest.failf "case %d (%s): status %s on a feasible bounded LP"
            case label
            (Status.to_string sol.Status.status);
        if not (approx ~eps:1e-7 sol.Status.objective cert.Lp_gen.c_optimum)
        then
          Alcotest.failf
            "case %d (%s): objective %.12g, constructed optimum %.12g" case
            label sol.Status.objective cert.Lp_gen.c_optimum)
      configs
  done

let qcheck_certified_fresh =
  QCheck.Test.make ~count:50 ~name:"constructed optimum (fresh instances)"
    QCheck.(make Gen.(int_bound max_int))
    (fun seed ->
      let cert = Lp_gen.certified_problem (Prng.create seed) in
      let sol =
        Solver.solve
          ~params:
            {
              Simplex.default_params with
              Simplex.pricing = Simplex.Devex;
              bound_flips = true;
            }
          cert.Lp_gen.c_problem
      in
      sol.Status.status = Status.Optimal
      && approx ~eps:1e-7 sol.Status.objective cert.Lp_gen.c_optimum)

(* ------------------------------------------------------------------ *)
(* Bound-flip ratio test actually fires                                *)
(* ------------------------------------------------------------------ *)

(* A dual solve where the best-ratio breakpoints are boxed variables
   whose flip gain is below the row infeasibility: the long-step ratio
   test must pass them by flipping, and only the unbounded variable
   enters.  The corpus above proves flips change no answer; this pins
   that the code path runs at all, with the exact expected optimum. *)
let test_bound_flips_fire () =
  let p = Problem.create () in
  (* cheapest reduced costs on the tightly boxed variables *)
  let _ = Problem.add_var ~lo:0.0 ~up:1.0 ~obj:0.5 p in
  let _ = Problem.add_var ~lo:0.0 ~up:1.0 ~obj:0.6 p in
  let _ = Problem.add_var ~lo:0.0 ~up:1.0 ~obj:0.7 p in
  let _ = Problem.add_var ~lo:0.0 ~up:infinity ~obj:1.0 p in
  let eng =
    Simplex.of_problem
      ~params:{ Simplex.default_params with Simplex.bound_flips = true }
      p
  in
  Alcotest.(check bool) "initial optimal" true (Simplex.solve eng = Status.Optimal);
  (* covering row far beyond the boxed ranges: x0..x2 flip to their
     upper bounds (gain 1 each < infeasibility 50), x3 enters *)
  Simplex.add_row eng ~lo:50.0 ~up:infinity
    [ (0, 1.0); (1, 1.0); (2, 1.0); (3, 1.0) ];
  Alcotest.(check bool) "reoptimised" true (Simplex.solve eng = Status.Optimal);
  if not (approx ~eps:1e-9 (Simplex.objective eng) 48.8) then
    Alcotest.failf "objective %.12g, expected 48.8" (Simplex.objective eng);
  let flips = (Simplex.stats eng).Simplex.bound_flips in
  if flips = 0 then Alcotest.fail "no dual bound flip fired"

(* ------------------------------------------------------------------ *)
(* EBF warm start: equivalence, uptake, hyper-sparse traffic           *)
(* ------------------------------------------------------------------ *)

let test_ebf_warm_start_equivalence () =
  let rng = Prng.create 61803 in
  let warm_rows_total = ref 0 in
  let hyper_total = ref 0 in
  let fast_params =
    {
      Simplex.default_params with
      Simplex.sparse_basis = true;
      pricing = Simplex.Devex;
      bound_flips = true;
    }
  in
  for case = 1 to 10 do
    (* 25+ sinks: small instances converge in one round (the seeded
       rows already cover them), so no border extension would happen *)
    let inst, tree =
      Lp_gen.random_ebf ~infeasible:(case mod 6 = 0) ~min_sinks:25
        ~sink_span:30 rng
    in
    let oracle = Tableau.solve (Ebf.formulate inst tree) in
    let solve ~warm =
      Ebf.solve
        ~options:
          {
            Ebf.default_options with
            Ebf.warm_start = warm;
            lp_params = { fast_params with Simplex.warm_start = warm };
          }
        inst tree
    in
    let warm = solve ~warm:true in
    let cold = solve ~warm:false in
    List.iter
      (fun (label, (r : Ebf.result)) ->
        if r.Ebf.status <> oracle.Status.status then
          Alcotest.failf "case %d (%s): status %s vs oracle %s" case label
            (Status.to_string r.Ebf.status)
            (Status.to_string oracle.Status.status);
        if
          oracle.Status.status = Status.Optimal
          && not (approx ~eps:1e-7 r.Ebf.objective oracle.Status.objective)
        then
          Alcotest.failf "case %d (%s): %.12g vs oracle %.12g" case label
            r.Ebf.objective oracle.Status.objective)
      [ ("warm", warm); ("cold", cold) ];
    List.iter
      (fun (r : Ebf.round_stat) ->
        warm_rows_total := !warm_rows_total + r.Ebf.warm_rows)
      warm.Ebf.round_stats;
    List.iter
      (fun (r : Ebf.round_stat) ->
        if r.Ebf.warm_rows <> 0 then
          Alcotest.failf "case %d: warm_rows %d with warm start off" case
            r.Ebf.warm_rows)
      cold.Ebf.round_stats;
    hyper_total :=
      !hyper_total
      + warm.Ebf.lp_stats.Simplex.hyper_sparse_ftrans
      + warm.Ebf.lp_stats.Simplex.hyper_sparse_btrans
  done;
  if !warm_rows_total = 0 then
    Alcotest.fail "warm start absorbed no rows across the sweep";
  if !hyper_total = 0 then
    Alcotest.fail "no hyper-sparse solve triggered across the sweep"

(* ------------------------------------------------------------------ *)
(* Fault injection through the recovery ladder                         *)
(* ------------------------------------------------------------------ *)

(* The fast path must coexist with the resilience layer: with
   deterministic faults injected into the sparse devex+flips engine,
   the recovery ladder still produces the oracle's verdict. *)
let test_fastpath_under_faults () =
  let rng = Prng.create 8087 in
  for case = 1 to 25 do
    let p = Lp_gen.random_problem rng in
    let oracle = Tableau.solve p in
    let params =
      {
        Simplex.default_params with
        Simplex.pricing = Simplex.Devex;
        bound_flips = true;
        sparse_basis = true;
        fault = Some (Simplex.fault_plan (1000 + case));
      }
    in
    let sol = Solver.solve ~params p in
    (match (oracle.Status.status, sol.Status.status) with
    | Status.Optimal, Status.Optimal ->
      if not (approx ~eps:1e-7 sol.Status.objective oracle.Status.objective)
      then
        Alcotest.failf "case %d: objective %.12g vs oracle %.12g under faults"
          case sol.Status.objective oracle.Status.objective
    | sa, sb when sa = sb -> ()
    | sa, sb ->
      Alcotest.failf "case %d: status %s vs oracle %s under faults" case
        (Status.to_string sb) (Status.to_string sa))
  done

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lp_fastpath"
    [
      ( "equivalence",
        [
          ("corpus 50-instance five-way sweep", `Slow, test_corpus_equivalence);
          qt ~long:false qcheck_fresh_equivalence;
        ] );
      ( "certified",
        [
          ("constructed optimum, all configs", `Slow, test_certified_optimum);
          qt ~long:false qcheck_certified_fresh;
        ] );
      ( "fastpath",
        [
          ("bound flips fire", `Quick, test_bound_flips_fire);
          ( "EBF warm start equivalence + uptake",
            `Slow,
            test_ebf_warm_start_equivalence );
          ("devex+flips under injected faults", `Quick, test_fastpath_under_faults);
        ] );
    ]
