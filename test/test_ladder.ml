(* Graceful-degradation ladder (Lubt_experiments.Ladder).

   Each test arranges for a specific rung to be the one that answers —
   via the [tweak] hook that sabotages the rungs above it — and asserts
   the outcome's rung, [degraded] flag and [Embed.verify] pass. *)

module Point = Lubt_geom.Point
module Instance = Lubt_core.Instance
module Tree = Lubt_topo.Tree
module Ebf = Lubt_core.Ebf
module Lubt = Lubt_core.Lubt
module Certify = Lubt_lp.Certify
module Basis_cache = Lubt_lp.Basis_cache
module Clock = Lubt_obs.Clock
module Ladder = Lubt_experiments.Ladder

let pt = Point.make

(* a 4-sink star with a source: feasible, tiny, and BRBC-routable *)
let star () =
  let sinks =
    [| pt 0.0 100.0; pt 100.0 0.0; pt 100.0 200.0; pt 200.0 100.0 |]
  in
  let inst =
    Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0
      ~upper:1000.0 ()
  in
  let tree =
    Tree.create ~parents:[| -1; 0; 0; 0; 0 |] ~sinks:[| 1; 2; 3; 4 |] ()
  in
  (inst, tree)

let certified_base = { Ebf.default_options with Ebf.check = Certify.Full }

(* sabotage: a vanishing time budget makes an LP rung fail cleanly *)
let starve rungs r (o : Ebf.options) =
  if List.mem r rungs then { o with Ebf.time_limit = 1e-9 } else o

let opts ?(starved = []) () =
  {
    Ladder.default_options with
    Ladder.base = certified_base;
    tweak = starve starved;
  }

(* same ladder, but with a shared warm-start cache in the base options;
   every LP rung inherits it through [Ladder.base] *)
let cached_opts ?starved cache =
  {
    (opts ?starved ()) with
    Ladder.base = { certified_base with Ebf.cache = Some cache };
  }

let is_hit = function
  | Ebf.Cache_hit_exact | Ebf.Cache_hit_parent -> true
  | Ebf.Cache_off | Ebf.Cache_miss | Ebf.Cache_rejected _ -> false

let report_cache_outcome (o : Ladder.outcome) =
  match o.Ladder.report with
  | Some r -> r.Lubt.ebf.Ebf.cache_outcome
  | None -> Alcotest.fail "winning rung produced no report"

let check_outcome ~rung ~degraded (o : Ladder.outcome) =
  Alcotest.(check string) "winning rung" (Ladder.rung_to_string rung)
    (Ladder.rung_to_string o.Ladder.rung);
  Alcotest.(check bool) "degraded flag" degraded o.Ladder.degraded;
  Alcotest.(check bool) "Embed.verify passed" true o.Ladder.verified

let run o inst tree =
  match Ladder.solve o inst tree with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail (Ladder.error_to_string e)

let test_top_rung_answers () =
  let inst, tree = star () in
  let o = run (opts ()) inst tree in
  check_outcome ~rung:Ladder.Certified ~degraded:false o;
  Alcotest.(check bool) "has a report" true (o.Ladder.report <> None);
  Alcotest.(check int) "no failed attempts" 0
    (List.length o.Ladder.attempts)

let test_uncertified_rung () =
  let inst, tree = star () in
  let o = run (opts ~starved:[ Ladder.Certified ] ()) inst tree in
  check_outcome ~rung:Ladder.Uncertified ~degraded:true o;
  Alcotest.(check int) "one failed attempt above" 1
    (List.length o.Ladder.attempts)

let test_reduced_rung () =
  let inst, tree = star () in
  let o =
    run (opts ~starved:[ Ladder.Certified; Ladder.Uncertified ] ()) inst tree
  in
  check_outcome ~rung:Ladder.Reduced ~degraded:true o;
  Alcotest.(check bool) "reduced rung still reports" true
    (o.Ladder.report <> None)

let test_heuristic_rung () =
  let inst, tree = star () in
  let o =
    run
      (opts ~starved:[ Ladder.Certified; Ladder.Uncertified; Ladder.Reduced ]
         ())
      inst tree
  in
  check_outcome ~rung:Ladder.Heuristic ~degraded:true o;
  Alcotest.(check bool) "no LP report" true (o.Ladder.report = None);
  Alcotest.(check int) "three failed attempts above" 3
    (List.length o.Ladder.attempts)

(* when [base.check = Off] the top rung IS Uncertified, so winning
   there is not degraded *)
let test_top_rung_without_certification () =
  let inst, tree = star () in
  let o =
    run { (opts ()) with Ladder.base = Ebf.default_options } inst tree
  in
  check_outcome ~rung:Ladder.Uncertified ~degraded:false o

(* an expired deadline skips every LP rung outright and answers from
   the heuristic floor *)
let test_expired_deadline_goes_to_floor () =
  let inst, tree = star () in
  let o =
    run
      { (opts ()) with Ladder.deadline = Some (Clock.now () -. 1.0) }
      inst tree
  in
  check_outcome ~rung:Ladder.Heuristic ~degraded:true o

(* an infeasible LP stops the ladder: degradation must not paper over a
   proof that no LUBT exists (Figure 1's chain, upper bound 6) *)
let test_infeasible_stops_ladder () =
  let sinks = [| pt 3.0 0.0; pt 0.0 3.0 |] in
  let inst =
    Instance.uniform_bounds ~source:(pt 0.0 0.0) ~sinks ~lower:0.0 ~upper:6.0
      ()
  in
  let chain = Tree.create ~parents:[| -1; 0; 1 |] ~sinks:[| 1; 2 |] () in
  match Ladder.solve (opts ()) inst chain with
  | Ok o ->
    Alcotest.fail
      ("infeasible instance answered by rung "
      ^ Ladder.rung_to_string o.Ladder.rung)
  | Error Ladder.Infeasible -> ()
  | Error (Ladder.Exhausted _ as e) ->
    Alcotest.fail (Ladder.error_to_string e)

(* the heuristic floor standalone: what serve answers with inline when
   the pool is saturated *)
let test_heuristic_standalone () =
  let inst, _ = star () in
  (match Ladder.heuristic inst with
  | Ok o -> check_outcome ~rung:Ladder.Heuristic ~degraded:true o
  | Error e -> Alcotest.fail (Ladder.error_to_string e));
  (* no source: BRBC has no root to route from *)
  let sourceless =
    Instance.uniform_bounds
      ~sinks:[| pt 0.0 1.0; pt 1.0 0.0 |]
      ~lower:0.0 ~upper:10.0 ()
  in
  match Ladder.heuristic sourceless with
  | Ok _ -> Alcotest.fail "heuristic routed an instance with no source"
  | Error (Ladder.Exhausted _) -> ()
  | Error Ladder.Infeasible -> Alcotest.fail "unexpected Infeasible"

(* every degradation rung consults the warm-start cache: a solve that
   lands on a given rung misses (and stores) on the first request, then
   answers the identical repeat request from the cache — whichever rung
   wins, since all of them inherit [base.cache] *)
let test_every_rung_consults_cache () =
  let inst, tree = star () in
  List.iter
    (fun (starved, rung) ->
      let name = Ladder.rung_to_string rung in
      let cache = Basis_cache.create () in
      let o = cached_opts ~starved cache in
      let cold = run o inst tree in
      Alcotest.(check string) (name ^ ": cold winning rung") name
        (Ladder.rung_to_string cold.Ladder.rung);
      let s = Basis_cache.stats cache in
      Alcotest.(check bool)
        (name ^ ": cache consulted on the cold solve")
        true
        (s.Basis_cache.misses >= 1);
      Alcotest.(check int) (name ^ ": no hits yet") 0 s.Basis_cache.hits;
      let warm = run o inst tree in
      Alcotest.(check string) (name ^ ": warm winning rung") name
        (Ladder.rung_to_string warm.Ladder.rung);
      Alcotest.(check bool)
        (name ^ ": warm solve answered from the cache")
        true
        (is_hit (report_cache_outcome warm));
      let s' = Basis_cache.stats cache in
      Alcotest.(check bool) (name ^ ": hit recorded") true
        (s'.Basis_cache.hits >= 1))
    [
      ([], Ladder.Certified);
      ([ Ladder.Certified ], Ladder.Uncertified);
      ([ Ladder.Certified; Ladder.Uncertified ], Ladder.Reduced);
    ]

(* a cache hit on the certified rung never changes the answer's quality:
   same rung, same degraded flag, a passing certificate, and the same
   certified objective as an uncached solve *)
let test_cache_hit_preserves_quality () =
  let inst, tree = star () in
  let reference = run (opts ()) inst tree in
  let cache = Basis_cache.create () in
  let cached = cached_opts cache in
  let cold = run cached inst tree in
  let warm = run cached inst tree in
  Alcotest.(check bool) "warm run hit the cache" true
    (is_hit (report_cache_outcome warm));
  check_outcome ~rung:Ladder.Certified ~degraded:false warm;
  List.iter
    (fun (tag, o) ->
      Alcotest.(check string) (tag ^ ": same rung as uncached")
        (Ladder.rung_to_string reference.Ladder.rung)
        (Ladder.rung_to_string o.Ladder.rung);
      Alcotest.(check bool)
        (tag ^ ": same degraded flag as uncached")
        reference.Ladder.degraded o.Ladder.degraded)
    [ ("cold", cold); ("warm", warm) ];
  match (reference.Ladder.report, warm.Ladder.report) with
  | Some a, Some b ->
    let oa = a.Lubt.ebf.Ebf.objective and ob = b.Lubt.ebf.Ebf.objective in
    Alcotest.(check bool) "same certified objective" true
      (Float.abs (oa -. ob) <= 1e-9 *. (1.0 +. Float.abs oa));
    Alcotest.(check bool) "warm certificate passes" true
      (match b.Lubt.ebf.Ebf.certificate with
      | Some c -> c.Certify.ok
      | None -> false)
  | _ -> Alcotest.fail "certified rung produced no report"

let () =
  Alcotest.run "ladder"
    [
      ( "ladder",
        [
          Alcotest.test_case "certified top rung" `Quick test_top_rung_answers;
          Alcotest.test_case "uncertified rung" `Quick test_uncertified_rung;
          Alcotest.test_case "reduced rung" `Quick test_reduced_rung;
          Alcotest.test_case "heuristic rung" `Quick test_heuristic_rung;
          Alcotest.test_case "top rung with check=Off" `Quick
            test_top_rung_without_certification;
          Alcotest.test_case "expired deadline -> floor" `Quick
            test_expired_deadline_goes_to_floor;
          Alcotest.test_case "infeasible stops the ladder" `Quick
            test_infeasible_stops_ladder;
          Alcotest.test_case "heuristic standalone" `Quick
            test_heuristic_standalone;
          Alcotest.test_case "every rung consults the cache" `Quick
            test_every_rung_consults_cache;
          Alcotest.test_case "cache hit preserves quality" `Quick
            test_cache_hit_preserves_quality;
        ] );
    ]
