(* Tests for the rectilinear Steiner heuristic and the optimal bounded-skew
   LP (Skew_lp). *)

module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Ebf = Lubt_core.Ebf
module Embed = Lubt_core.Embed
module Skew_lp = Lubt_core.Skew_lp
module Zeroskew = Lubt_core.Zeroskew
module Steiner = Lubt_bst.Steiner
module Bst = Lubt_bst.Bst_dme
module Status = Lubt_lp.Status
module Prng = Lubt_util.Prng
module Union_find = Lubt_util.Union_find

let pt = Point.make

let random_points rng n extent =
  Array.init n (fun _ -> pt (Prng.float rng extent) (Prng.float rng extent))

(* ------------------------------------------------------------------ *)
(* Rectilinear MST                                                      *)
(* ------------------------------------------------------------------ *)

let brute_force_mst_length points =
  (* Kruskal over all pairs *)
  let n = Array.length points in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (Point.dist points.(i) points.(j), i, j) :: !edges
    done
  done;
  let sorted = List.sort compare !edges in
  let uf = Union_find.create n in
  List.fold_left
    (fun acc (d, i, j) -> if Union_find.union uf i j then acc +. d else acc)
    0.0 sorted

let test_rmst_is_spanning_tree () =
  let rng = Prng.create 12 in
  for _ = 1 to 20 do
    let n = 2 + Prng.int rng 20 in
    let points = random_points rng n 100.0 in
    let edges = Steiner.rmst points in
    Alcotest.(check int) "n-1 edges" (n - 1) (List.length edges);
    let uf = Union_find.create n in
    List.iter
      (fun (a, b) ->
        Alcotest.(check bool) "acyclic" true (Union_find.union uf a b))
      edges;
    Alcotest.(check int) "connected" 1 (Union_find.count uf)
  done

let test_rmst_matches_kruskal () =
  let rng = Prng.create 34 in
  for _ = 1 to 20 do
    let n = 2 + Prng.int rng 12 in
    let points = random_points rng n 50.0 in
    let prim = Steiner.rmst_length points in
    let kruskal = brute_force_mst_length points in
    Alcotest.(check (float 1e-6)) "same MST length" kruskal prim
  done

(* ------------------------------------------------------------------ *)
(* Steiner heuristic                                                    *)
(* ------------------------------------------------------------------ *)

let test_steiner_improves_on_mst () =
  let rng = Prng.create 56 in
  for _ = 1 to 10 do
    let n = 10 + Prng.int rng 40 in
    let sinks = random_points rng n 100.0 in
    let src = pt 50.0 50.0 in
    let all = Array.append sinks [| src |] in
    let mst = Steiner.rmst_length all in
    let b = Steiner.build ~source:src sinks in
    Alcotest.(check bool) "no worse than MST" true (b.Steiner.cost <= mst +. 1e-6);
    (* Hwang's bound: the optimal RSMT is at least 2/3 of the RMST, so no
       correct heuristic can go below that *)
    Alcotest.(check bool) "above the RSMT lower bound" true
      (b.Steiner.cost >= (2.0 /. 3.0 *. mst) -. 1e-6)
  done

let test_steiner_exact_small_cases () =
  (* four corners of a square + centre source: the optimal tree is a cross
     through the centre of total length 4 * half-diagonal-manhattan *)
  let sinks = [| pt 0.0 0.0; pt 10.0 0.0; pt 0.0 10.0; pt 10.0 10.0 |] in
  let b = Steiner.build ~source:(pt 5.0 5.0) sinks in
  Alcotest.(check bool) "within 10% of the optimal 40" true
    (b.Steiner.cost <= 44.0 +. 1e-9);
  (* three collinear points: tree = the segment *)
  let line = [| pt 0.0 0.0; pt 5.0 0.0; pt 10.0 0.0 |] in
  let b2 = Steiner.build line in
  Alcotest.(check (float 1e-6)) "collinear cost" 10.0 b2.Steiner.cost

let test_steiner_topology_wellformed () =
  let rng = Prng.create 78 in
  for case = 1 to 10 do
    let n = 3 + Prng.int rng 30 in
    let sinks = random_points rng n 100.0 in
    let with_source = Prng.bool rng in
    let source = if with_source then Some (pt 50.0 50.0) else None in
    let b = Steiner.build ?source sinks in
    let tree = b.Steiner.tree in
    Alcotest.(check bool) "sinks are leaves" true (Tree.all_sinks_are_leaves tree);
    Alcotest.(check int) "sink count" n (Tree.num_sinks tree);
    for v = 0 to Tree.num_nodes tree - 1 do
      Alcotest.(check bool) "binary" true (List.length (Tree.children tree v) <= 2)
    done;
    (* lengths equal spanned distances: the embedding is tight *)
    for v = 1 to Tree.num_nodes tree - 1 do
      let d =
        Point.dist b.Steiner.positions.(v)
          b.Steiner.positions.(Tree.parent tree v)
      in
      if not (Lubt_util.Stats.approx_eq ~eps:1e-9 d b.Steiner.lengths.(v)) then
        Alcotest.failf "case %d: edge %d length %g vs distance %g" case v
          b.Steiner.lengths.(v) d
    done;
    (* the routed tree passes full validation *)
    let inst = Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity () in
    let routed =
      { Routed.instance = inst; tree; lengths = b.Steiner.lengths;
        positions = b.Steiner.positions }
    in
    match Routed.validate routed with
    | Ok () -> ()
    | Error es -> Alcotest.failf "case %d: %s" case (String.concat "; " es)
  done

let test_steiner_lp_cannot_improve () =
  (* the LP re-embedding of a Steiner topology with trivial bounds can
     never beat the tight heuristic embedding by much — and never exceed
     it (Theorem 4.2) *)
  let rng = Prng.create 90 in
  let sinks = random_points rng 20 100.0 in
  let src = pt 50.0 50.0 in
  let b = Steiner.build ~source:src sinks in
  let inst = Instance.uniform_bounds ~source:src ~sinks ~lower:0.0 ~upper:infinity () in
  let lp = Ebf.solve inst b.Steiner.tree in
  Alcotest.(check bool) "lp optimal" true (lp.Ebf.status = Status.Optimal);
  Alcotest.(check bool) "lp <= heuristic cost" true
    (lp.Ebf.objective <= b.Steiner.cost +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Skew_lp (optimal bounded-skew embedding)                             *)
(* ------------------------------------------------------------------ *)

let test_skew_lp_beats_greedy_baseline () =
  let rng = Prng.create 135 in
  for case = 1 to 8 do
    let m = 5 + Prng.int rng 15 in
    let sinks = random_points rng m 100.0 in
    let source = pt 50.0 50.0 in
    let bound = 10.0 +. Prng.float rng 40.0 in
    let bst = Bst.route ~skew_bound:bound ~source sinks in
    let inst = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
    let opt = Skew_lp.solve ~skew_bound:bound inst bst.Bst.topology in
    Alcotest.(check bool) "optimal" true (opt.Skew_lp.status = Status.Optimal);
    if opt.Skew_lp.objective > bst.Bst.cost +. (1e-6 *. bst.Bst.cost) then
      Alcotest.failf "case %d: LP %.8g above greedy %.8g" case
        opt.Skew_lp.objective bst.Bst.cost;
    (* the optimised lengths respect the skew bound *)
    let d = Lubt_delay.Linear.sink_delays bst.Bst.topology opt.Skew_lp.lengths in
    let lo, hi = Lubt_util.Stats.min_max d in
    Alcotest.(check bool) "skew within bound" true (hi -. lo <= bound +. 1e-6);
    (* and land inside the reported window *)
    let wlo, whi = opt.Skew_lp.window in
    Alcotest.(check bool) "inside window" true
      (lo >= wlo -. 1e-6 && hi <= whi +. 1e-6)
  done

let test_skew_lp_zero_bound_is_zeroskew () =
  let rng = Prng.create 246 in
  for _ = 1 to 6 do
    let m = 4 + Prng.int rng 10 in
    let sinks = random_points rng m 100.0 in
    let bst = Bst.route ~skew_bound:0.0 sinks in
    let inst = Instance.uniform_bounds ~sinks ~lower:0.0 ~upper:infinity () in
    let opt = Skew_lp.solve ~skew_bound:0.0 inst bst.Bst.topology in
    let zs = Zeroskew.balance inst bst.Bst.topology in
    let zs_cost =
      Lubt_util.Stats.sum
        (Array.sub zs.Zeroskew.lengths 1 (Tree.num_edges bst.Bst.topology))
    in
    Alcotest.(check bool) "optimal" true (opt.Skew_lp.status = Status.Optimal);
    if not (Lubt_util.Stats.approx_eq ~eps:1e-6 zs_cost opt.Skew_lp.objective) then
      Alcotest.failf "skew-0 LP %.9g vs closed form %.9g" opt.Skew_lp.objective
        zs_cost
  done

let test_skew_lp_window_envelope () =
  (* the free-window LP is the lower envelope of fixed-window LUBT costs:
     solving LUBT at the window the LP chose returns the same cost *)
  let rng = Prng.create 777 in
  let m = 10 in
  let sinks = random_points rng m 100.0 in
  let source = pt 50.0 50.0 in
  let bound = 30.0 in
  let bst = Bst.route ~skew_bound:bound ~source sinks in
  let inst0 = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let opt = Skew_lp.solve ~skew_bound:bound inst0 bst.Bst.topology in
  let wlo, whi = opt.Skew_lp.window in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:(max 0.0 wlo) ~upper:whi () in
  let fixed = Ebf.solve inst bst.Bst.topology in
  Alcotest.(check bool) "both optimal" true
    (opt.Skew_lp.status = Status.Optimal && fixed.Ebf.status = Status.Optimal);
  if not (Lubt_util.Stats.approx_eq ~eps:1e-6 opt.Skew_lp.objective fixed.Ebf.objective)
  then
    Alcotest.failf "envelope %.9g vs fixed window %.9g" opt.Skew_lp.objective
      fixed.Ebf.objective;
  (* shifting the window away from the optimum cannot be cheaper *)
  let shifted =
    Instance.uniform_bounds ~source ~sinks ~lower:(max 0.0 wlo +. 15.0)
      ~upper:(whi +. 15.0) ()
  in
  let worse = Ebf.solve shifted bst.Bst.topology in
  Alcotest.(check bool) "shifted window no cheaper" true
    (worse.Ebf.objective >= opt.Skew_lp.objective -. 1e-6)

let test_skew_lp_embeddable () =
  let rng = Prng.create 888 in
  let m = 12 in
  let sinks = random_points rng m 100.0 in
  let source = pt 50.0 50.0 in
  let bound = 25.0 in
  let bst = Bst.route ~skew_bound:bound ~source sinks in
  let inst0 = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let opt = Skew_lp.solve ~skew_bound:bound inst0 bst.Bst.topology in
  match Embed.place inst0 bst.Bst.topology opt.Skew_lp.lengths with
  | Error msg -> Alcotest.fail msg
  | Ok emb ->
    let routed =
      { Routed.instance = inst0; tree = bst.Bst.topology;
        lengths = opt.Skew_lp.lengths; positions = emb.Embed.positions }
    in
    (match Routed.validate routed with
    | Ok () -> ()
    | Error es -> Alcotest.fail (String.concat "; " es))

(* ------------------------------------------------------------------ *)
(* BRBC global routing (reference [1])                                  *)
(* ------------------------------------------------------------------ *)

module Brbc = Lubt_bst.Brbc

let test_brbc_radius_guarantee () =
  let rng = Prng.create 404 in
  for case = 1 to 15 do
    let m = 3 + Prng.int rng 30 in
    let sinks = random_points rng m 100.0 in
    let source = pt (Prng.float rng 100.0) (Prng.float rng 100.0) in
    let epsilon = 0.1 +. Prng.float rng 2.0 in
    let r = Brbc.route ~epsilon ~source sinks in
    if r.Brbc.max_path > (1.0 +. epsilon) *. r.Brbc.radius +. 1e-6 then
      Alcotest.failf "case %d: max path %.6g exceeds (1+%.3g) x radius %.6g"
        case r.Brbc.max_path epsilon r.Brbc.radius
  done

let test_brbc_cost_guarantee () =
  let rng = Prng.create 505 in
  for case = 1 to 10 do
    let m = 3 + Prng.int rng 25 in
    let sinks = random_points rng m 100.0 in
    let source = pt 50.0 50.0 in
    let mst = Steiner.rmst_length (Array.append sinks [| source |]) in
    let epsilon = 0.2 +. Prng.float rng 1.5 in
    let r = Brbc.route ~epsilon ~source sinks in
    let bound = (1.0 +. (2.0 /. epsilon)) *. mst in
    if r.Brbc.cost > bound +. 1e-6 then
      Alcotest.failf "case %d: cost %.6g exceeds the (1+2/eps) MST bound %.6g"
        case r.Brbc.cost bound
  done

let test_brbc_large_epsilon_is_mst () =
  let rng = Prng.create 606 in
  let sinks = random_points rng 20 100.0 in
  let source = pt 50.0 50.0 in
  let mst = Steiner.rmst_length (Array.append sinks [| source |]) in
  let r = Brbc.route ~epsilon:1e9 ~source sinks in
  Alcotest.(check (float 1e-6)) "cost equals MST" mst r.Brbc.cost

let test_brbc_valid_and_lp_improvable () =
  let rng = Prng.create 707 in
  let sinks = random_points rng 18 100.0 in
  let source = pt 10.0 90.0 in
  let epsilon = 0.4 in
  let r = Brbc.route ~epsilon ~source sinks in
  (match Routed.validate r.Brbc.routed with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  Alcotest.(check bool) "sinks are leaves" true
    (Tree.all_sinks_are_leaves r.Brbc.topology);
  (* LUBT with the matched cap on the same topology can only improve *)
  let cap = (1.0 +. epsilon) *. r.Brbc.radius in
  let inst = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:cap () in
  let lubt = Ebf.solve inst r.Brbc.topology in
  Alcotest.(check bool) "lubt optimal" true (lubt.Ebf.status = Status.Optimal);
  Alcotest.(check bool) "lubt <= brbc" true
    (lubt.Ebf.objective <= r.Brbc.cost +. 1e-6);
  (* and its paths also satisfy the cap *)
  let d = Lubt_delay.Linear.sink_delays r.Brbc.topology lubt.Ebf.lengths in
  Array.iter
    (fun x -> Alcotest.(check bool) "path within cap" true (x <= cap +. 1e-6))
    d

let test_brbc_single_sink () =
  let r = Brbc.route ~source:(pt 0.0 0.0) [| pt 3.0 4.0 |] in
  Alcotest.(check (float 1e-9)) "single sink cost" 7.0 r.Brbc.cost

(* Wire cost is NOT monotone in epsilon for this heuristic (a looser cap
   changes which MST edges trigger detours, occasionally for the worse),
   so the property checked here is the one the algorithm actually
   guarantees: on the same input, every epsilon honours its own radius
   cap — and in particular the tight run's paths also fit under the
   loose run's cap. *)
let prop_brbc_monotone_epsilon =
  QCheck.Test.make ~name:"smaller epsilon never lengthens max path bound"
    ~count:30
    QCheck.(pair small_int (int_range 3 15))
    (fun (seed, m) ->
      let rng = Prng.create seed in
      let sinks = random_points rng m 80.0 in
      let source = pt 40.0 40.0 in
      let tight = Brbc.route ~epsilon:0.2 ~source sinks in
      let loose = Brbc.route ~epsilon:2.0 ~source sinks in
      tight.Brbc.max_path <= (1.2 *. tight.Brbc.radius) +. 1e-6
      && loose.Brbc.max_path <= (3.0 *. loose.Brbc.radius) +. 1e-6
      && tight.Brbc.max_path <= (3.0 *. loose.Brbc.radius) +. 1e-6)

let () =
  Alcotest.run "bst-extra"
    [
      ( "rmst",
        [
          Alcotest.test_case "spanning tree" `Quick test_rmst_is_spanning_tree;
          Alcotest.test_case "matches kruskal" `Quick test_rmst_matches_kruskal;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "improves on MST" `Quick test_steiner_improves_on_mst;
          Alcotest.test_case "small exact cases" `Quick
            test_steiner_exact_small_cases;
          Alcotest.test_case "topology well-formed" `Quick
            test_steiner_topology_wellformed;
          Alcotest.test_case "LP cannot improve" `Quick
            test_steiner_lp_cannot_improve;
        ] );
      ( "brbc",
        [
          Alcotest.test_case "radius guarantee" `Quick test_brbc_radius_guarantee;
          Alcotest.test_case "cost guarantee" `Quick test_brbc_cost_guarantee;
          Alcotest.test_case "huge epsilon = MST" `Quick
            test_brbc_large_epsilon_is_mst;
          Alcotest.test_case "valid + LP improvable" `Quick
            test_brbc_valid_and_lp_improvable;
          Alcotest.test_case "single sink" `Quick test_brbc_single_sink;
          QCheck_alcotest.to_alcotest prop_brbc_monotone_epsilon;
        ] );
      ( "skew-lp",
        [
          Alcotest.test_case "beats greedy baseline" `Slow
            test_skew_lp_beats_greedy_baseline;
          Alcotest.test_case "zero bound = zero skew" `Slow
            test_skew_lp_zero_bound_is_zeroskew;
          Alcotest.test_case "window envelope" `Quick test_skew_lp_window_envelope;
          Alcotest.test_case "embeddable lengths" `Quick test_skew_lp_embeddable;
        ] );
    ]
