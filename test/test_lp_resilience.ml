(* Tests for the numerical-resilience layer: the recovery ladder and
   deterministic fault injection in the simplex engine, a-posteriori
   certification (Certify), and wall-clock budgets. *)

module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Simplex = Lubt_lp.Simplex
module Tableau = Lubt_lp.Tableau
module Certify = Lubt_lp.Certify
module Status = Lubt_lp.Status
module Ebf = Lubt_core.Ebf
module Instance = Lubt_core.Instance
module Topogen = Lubt_topo.Topogen
module Point = Lubt_geom.Point
module Prng = Lubt_util.Prng

let approx = Lubt_util.Stats.approx_eq

(* min x + y  s.t.  x + y >= 2,  x, y >= 0: optimum 2 at a non-degenerate
   vertex, with a strictly positive row multiplier *)
let tiny_lp () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:2.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  p

let infeasible_lp () =
  let p = Problem.create () in
  let x = Problem.add_var p in
  ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:2.0 [ (x, 1.0) ]);
  p

(* ------------------------------------------------------------------ *)
(* Certification                                                        *)
(* ------------------------------------------------------------------ *)

let test_certify_accepts_honest_solution () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  Alcotest.(check bool) "optimal" true (sol.Status.status = Status.Optimal);
  let r = Certify.check p sol in
  Alcotest.(check bool) "certified" true r.Certify.ok;
  Alcotest.(check bool) "no failure message" true (r.Certify.failure = None);
  Alcotest.(check int) "rows checked" (Problem.nrows p) r.Certify.rows_checked;
  Alcotest.(check bool) "level recorded" true (r.Certify.level = Certify.Full)

let test_certify_off_is_trivial () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  (* even a corrupted solution passes at level Off *)
  let bad = { sol with Status.objective = sol.Status.objective +. 100.0 } in
  let r = Certify.check ~level:Certify.Off p bad in
  Alcotest.(check bool) "trivially ok" true r.Certify.ok

let test_certify_rejects_corrupt_primal () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  let primal = Array.copy sol.Status.primal in
  primal.(0) <- -0.5;
  (* clearly below the lower bound 0 *)
  let r = Certify.check p { sol with Status.primal } in
  Alcotest.(check bool) "rejected" true (not r.Certify.ok);
  Alcotest.(check bool) "has failure message" true (r.Certify.failure <> None);
  Alcotest.(check bool) "primal residual visible" true
    (r.Certify.primal_residual > 1e-3)

let test_certify_rejects_corrupt_dual () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  let dual = Array.copy sol.Status.dual in
  (* a negative multiplier on a [2, +inf) row prices the infinite upper
     bound: dual-infeasible *)
  dual.(0) <- -1.0;
  let bad = { sol with Status.dual } in
  let full = Certify.check ~level:Certify.Full p bad in
  Alcotest.(check bool) "Full rejects" true (not full.Certify.ok);
  let primal_only = Certify.check ~level:Certify.Primal p bad in
  Alcotest.(check bool) "Primal level ignores duals" true
    primal_only.Certify.ok

let test_certify_rejects_corrupt_objective () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  let bad = { sol with Status.objective = sol.Status.objective +. 1.0 } in
  let r = Certify.check ~level:Certify.Primal p bad in
  Alcotest.(check bool) "rejected" true (not r.Certify.ok);
  Alcotest.(check bool) "objective error visible" true
    (r.Certify.objective_error > 1e-3)

let test_certify_rejects_dimension_mismatch () =
  let p = tiny_lp () in
  let sol = Solver.solve p in
  let r = Certify.check p { sol with Status.primal = [| 0.0 |] } in
  Alcotest.(check bool) "short primal rejected" true (not r.Certify.ok)

(* seeded corruption sweep: every optimal solve certifies, and pushing a
   variable past a finite bound is always caught.  The guaranteed-
   feasible covering-LP generator is shared (lp_gen.ml). *)
let random_bounded_problem rng = Lp_gen.random_bounded_problem rng

let test_certify_corruption_sweep () =
  let rng = Prng.create 515 in
  for case = 1 to 100 do
    let p = random_bounded_problem rng in
    let sol = Solver.solve p in
    if sol.Status.status = Status.Optimal then begin
      let honest = Certify.check p sol in
      if not honest.Certify.ok then
        Alcotest.failf "case %d: honest solution rejected: %s" case
          (match honest.Certify.failure with Some m -> m | None -> "?");
      (* corrupt one primal entry past its (finite) lower bound *)
      let j = Prng.int rng (Array.length sol.Status.primal) in
      let primal = Array.copy sol.Status.primal in
      primal.(j) <- -1.0 -. Prng.float rng 5.0;
      let r = Certify.check ~level:Certify.Primal p { sol with Status.primal } in
      if r.Certify.ok then
        Alcotest.failf "case %d: bound violation on var %d not caught" case j
    end
  done

(* ------------------------------------------------------------------ *)
(* Recovery ladder and fault injection                                  *)
(* ------------------------------------------------------------------ *)

let ebf_problem () =
  let inst, tree = Lubt_data.Examples.five_point () in
  Ebf.formulate inst tree

let test_fault_recovery_deterministic () =
  (* a guaranteed zero-pivot fault on the first basis update: the ladder's
     first rung (refactorise-and-retry) must absorb it on both backends *)
  List.iter
    (fun sparse ->
      let params =
        {
          Simplex.default_params with
          Simplex.sparse_basis = sparse;
          fault =
            Some
              (Simplex.fault_plan ~kinds:[ Simplex.Fault_zero_pivot ]
                 ~rate:1.0 ~max_faults:1 42);
        }
      in
      let clean = Solver.solve (ebf_problem ()) in
      let eng = Simplex.of_problem ~params (ebf_problem ()) in
      let status = Simplex.solve eng in
      Alcotest.(check bool) "recovers to optimal" true
        (status = Status.Optimal);
      let recov = (Simplex.stats eng).Simplex.recoveries in
      Alcotest.(check int) "one fault fired" 1 recov.Simplex.faults_injected;
      Alcotest.(check bool) "ladder engaged" true
        (Simplex.recovery_attempts recov >= 1);
      if not (approx ~eps:1e-6 (Simplex.objective eng) clean.Status.objective)
      then
        Alcotest.failf "recovered objective %.9g vs clean %.9g (sparse=%b)"
          (Simplex.objective eng) clean.Status.objective sparse)
    [ false; true ]

let test_empty_ladder_fails_hard () =
  let params =
    {
      Simplex.default_params with
      Simplex.recovery = [];
      fault =
        Some
          (Simplex.fault_plan ~kinds:[ Simplex.Fault_zero_pivot ] ~rate:1.0
             ~max_faults:1 7);
    }
  in
  let eng = Simplex.of_problem ~params (ebf_problem ()) in
  Alcotest.(check bool) "numerical failure" true
    (Simplex.solve eng = Status.Numerical_failure)

let test_no_faults_no_recoveries () =
  let eng = Simplex.of_problem (ebf_problem ()) in
  Alcotest.(check bool) "optimal" true (Simplex.solve eng = Status.Optimal);
  let recov = (Simplex.stats eng).Simplex.recoveries in
  Alcotest.(check int) "no ladder activity" 0
    (Simplex.recovery_attempts recov);
  Alcotest.(check int) "no faults" 0 recov.Simplex.faults_injected;
  Alcotest.(check int) "no rejections" 0 recov.Simplex.validations_rejected

let test_solver_check_levels () =
  let p = tiny_lp () in
  List.iter
    (fun level ->
      let sol = Solver.solve ~check:level p in
      Alcotest.(check bool)
        (Printf.sprintf "optimal at %s" (Certify.level_to_string level))
        true
        (sol.Status.status = Status.Optimal))
    [ Certify.Off; Certify.Primal; Certify.Full ]

let test_solve_exn_diagnostics () =
  match Solver.solve_exn (infeasible_lp ()) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    let contains needle =
      let nh = String.length msg and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains needle))
      [ "status"; "infeasible"; "objective"; "iterations" ]

(* ------------------------------------------------------------------ *)
(* Time budgets                                                         *)
(* ------------------------------------------------------------------ *)

let test_engine_time_limit () =
  let eng = Simplex.of_problem (ebf_problem ()) in
  Simplex.set_time_limit eng (-1.0);
  Alcotest.(check bool) "expired budget" true
    (Simplex.solve eng = Status.Time_limit);
  (* the budget is per solve configuration, not a latched failure *)
  Simplex.set_time_limit eng infinity;
  Alcotest.(check bool) "recovers once budget lifted" true
    (Simplex.solve eng = Status.Optimal)

let test_params_time_limit () =
  let params = { Simplex.default_params with Simplex.time_limit = -1.0 } in
  let eng = Simplex.of_problem ~params (ebf_problem ()) in
  Alcotest.(check bool) "expired from params" true
    (Simplex.solve eng = Status.Time_limit)

let test_ebf_time_limit () =
  let inst, tree = Lubt_data.Examples.five_point () in
  let r =
    Ebf.solve
      ~options:{ Ebf.default_options with Ebf.time_limit = 0.0 }
      inst tree
  in
  Alcotest.(check bool) "ebf returns Time_limit" true
    (r.Ebf.status = Status.Time_limit);
  Alcotest.(check bool) "no certificate for a timed-out solve" true
    (r.Ebf.certificate = None);
  (* and a generous budget changes nothing *)
  let ok =
    Ebf.solve
      ~options:
        {
          Ebf.default_options with
          Ebf.time_limit = 3600.0;
          check = Certify.Full;
        }
      inst tree
  in
  Alcotest.(check bool) "optimal within budget" true
    (ok.Ebf.status = Status.Optimal);
  (match ok.Ebf.certificate with
  | Some c -> Alcotest.(check bool) "certified" true c.Certify.ok
  | None -> Alcotest.fail "expected a certificate")

(* ------------------------------------------------------------------ *)
(* Fault matrix: every kind x both backends on the cross-check corpus   *)
(* ------------------------------------------------------------------ *)

let random_ebf_instance rng =
  let m = 3 + Prng.int rng 8 in
  let with_source = Prng.bool rng in
  let coord () = Prng.float rng 100.0 in
  let sinks = Array.init m (fun _ -> Point.make (coord ()) (coord ())) in
  let source =
    if with_source then Some (Point.make (coord ()) (coord ())) else None
  in
  let base =
    Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity ()
  in
  (m, with_source, sinks, source, Instance.radius base)

(* Mirrors the four-way cross-check corpus: 50 seeded instances, a fifth
   of them provably infeasible. Under forced faults (every kind, both
   backends) the lazy row-generation pipeline must still reach the
   tableau oracle's verdict, and optimal answers must carry an [ok]
   certificate. *)
let test_fault_matrix_crosscheck () =
  let rng = Prng.create 8086 in
  let kinds =
    [
      ("singular-refactor", Simplex.Fault_singular_refactor);
      ("perturb-ftran", Simplex.Fault_perturb_ftran);
      ("zero-pivot", Simplex.Fault_zero_pivot);
    ]
  in
  let total_faults = ref 0 and total_recoveries = ref 0 in
  for case = 1 to 50 do
    let m, with_source, sinks, source, r = random_ebf_instance rng in
    let l, u =
      if case mod 5 = 0 then (0.0, r *. (0.1 +. Prng.float rng 0.8))
      else
        let u = r *. (1.0 +. Prng.float rng 1.0) in
        (Prng.float rng u, u)
    in
    let inst = Instance.uniform_bounds ?source ~sinks ~lower:l ~upper:u () in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    let oracle = Tableau.solve (Ebf.formulate inst tree) in
    List.iter
      (fun sparse ->
        List.iteri
          (fun ki (klabel, kind) ->
            let label =
              Printf.sprintf "case %d (%s, %s)" case
                (if sparse then "sparse" else "dense")
                klabel
            in
            let params =
              {
                Simplex.default_params with
                Simplex.sparse_basis = sparse;
                fault =
                  Some
                    (Simplex.fault_plan ~kinds:[ kind ] ~rate:1.0
                       ~max_faults:2
                       ((case * 31) + ki));
              }
            in
            let res =
              Ebf.solve
                ~options:
                  {
                    Ebf.default_options with
                    Ebf.lp_params = params;
                    check = Certify.Full;
                  }
                inst tree
            in
            if res.Ebf.status <> oracle.Status.status then
              Alcotest.failf "%s: status %s vs oracle %s" label
                (Status.to_string res.Ebf.status)
                (Status.to_string oracle.Status.status);
            if oracle.Status.status = Status.Optimal then begin
              if
                not
                  (approx ~eps:1e-6 res.Ebf.objective oracle.Status.objective)
              then
                Alcotest.failf "%s: objective %.9g vs oracle %.9g" label
                  res.Ebf.objective oracle.Status.objective;
              match res.Ebf.certificate with
              | None -> Alcotest.failf "%s: missing certificate" label
              | Some c ->
                if not c.Certify.ok then
                  Alcotest.failf "%s: certificate rejected: %s" label
                    (match c.Certify.failure with Some e -> e | None -> "?")
            end;
            let recov = res.Ebf.lp_stats.Simplex.recoveries in
            total_faults := !total_faults + recov.Simplex.faults_injected;
            total_recoveries :=
              !total_recoveries + Simplex.recovery_attempts recov)
          kinds)
      [ false; true ]
  done;
  (* the sweep must actually have exercised the ladder *)
  Alcotest.(check bool) "faults fired across the sweep" true
    (!total_faults > 0);
  Alcotest.(check bool) "recoveries happened across the sweep" true
    (!total_recoveries > 0)

(* control: the identical corpus with no fault plan shows a silent ladder
   and certified-optimal answers *)
let test_zero_fault_control () =
  let rng = Prng.create 8086 in
  for case = 1 to 15 do
    let m, with_source, sinks, source, r = random_ebf_instance rng in
    let l, u =
      if case mod 5 = 0 then (0.0, r *. (0.1 +. Prng.float rng 0.8))
      else
        let u = r *. (1.0 +. Prng.float rng 1.0) in
        (Prng.float rng u, u)
    in
    let inst = Instance.uniform_bounds ?source ~sinks ~lower:l ~upper:u () in
    let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
    let res =
      Ebf.solve
        ~options:{ Ebf.default_options with Ebf.check = Certify.Full }
        inst tree
    in
    let recov = res.Ebf.lp_stats.Simplex.recoveries in
    if Simplex.recovery_attempts recov <> 0 then
      Alcotest.failf "case %d: unexpected recoveries on a clean run" case;
    if recov.Simplex.faults_injected <> 0 then
      Alcotest.failf "case %d: faults with no fault plan" case;
    match (res.Ebf.status, res.Ebf.certificate) with
    | Status.Optimal, Some c ->
      if not c.Certify.ok then
        Alcotest.failf "case %d: clean run not certified: %s" case
          (match c.Certify.failure with Some e -> e | None -> "?")
    | Status.Optimal, None -> Alcotest.failf "case %d: missing certificate" case
    | _ -> ()
  done

let () =
  Alcotest.run "lp-resilience"
    [
      ( "certify",
        [
          Alcotest.test_case "accepts honest solution" `Quick
            test_certify_accepts_honest_solution;
          Alcotest.test_case "Off level is trivial" `Quick
            test_certify_off_is_trivial;
          Alcotest.test_case "rejects corrupt primal" `Quick
            test_certify_rejects_corrupt_primal;
          Alcotest.test_case "rejects corrupt dual" `Quick
            test_certify_rejects_corrupt_dual;
          Alcotest.test_case "rejects corrupt objective" `Quick
            test_certify_rejects_corrupt_objective;
          Alcotest.test_case "rejects dimension mismatch" `Quick
            test_certify_rejects_dimension_mismatch;
          Alcotest.test_case "100-case corruption sweep" `Slow
            test_certify_corruption_sweep;
        ] );
      ( "recovery-ladder",
        [
          Alcotest.test_case "deterministic fault recovery" `Quick
            test_fault_recovery_deterministic;
          Alcotest.test_case "empty ladder fails hard" `Quick
            test_empty_ladder_fails_hard;
          Alcotest.test_case "clean run has silent ladder" `Quick
            test_no_faults_no_recoveries;
          Alcotest.test_case "Solver.solve check levels" `Quick
            test_solver_check_levels;
          Alcotest.test_case "solve_exn diagnostics" `Quick
            test_solve_exn_diagnostics;
        ] );
      ( "time-budgets",
        [
          Alcotest.test_case "engine set_time_limit" `Quick
            test_engine_time_limit;
          Alcotest.test_case "params time_limit" `Quick test_params_time_limit;
          Alcotest.test_case "ebf time_limit" `Quick test_ebf_time_limit;
        ] );
      ( "fault-matrix",
        [
          Alcotest.test_case "kind x backend sweep, 50 instances" `Slow
            test_fault_matrix_crosscheck;
          Alcotest.test_case "zero-fault control, 15 instances" `Slow
            test_zero_fault_control;
        ] );
    ]
