(* Tests for the domain pool: result ordering, exception capture,
   jobs-count invariance, seeded-stream determinism, the batch engine's
   jobs=1 vs jobs=N agreement, and JSON well-formedness of every
   machine-readable record the sweeps emit (including the CLI's
   solve --json stdout). *)

module Pool = Lubt_util.Pool
module Prng = Lubt_util.Prng
module Batch = Lubt_experiments.Batch
module Protocol = Lubt_experiments.Protocol
module Benchmarks = Lubt_data.Benchmarks

(* ------------------------------------------------------------------ *)
(* JSON syntax checking (shared with test_obs; see json_check.ml)      *)
(* ------------------------------------------------------------------ *)

let json_valid = Json_check.json_valid

let test_json_checker () =
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ s) true (json_valid s))
    [
      "{}";
      "[]";
      "null";
      "-1.5e+10";
      "{\"a\": [1, 2.0, true, \"x\\\"y\"], \"b\": {\"c\": null}}";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) false (json_valid s))
    [ ""; "{"; "{\"a\": }"; "[1,]"; "{'a': 1}"; "nan"; "1.2.3"; "{} {}" ]

(* ------------------------------------------------------------------ *)
(* pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_ordering () =
  (* enough tasks that work stealing certainly interleaves workers *)
  let inputs = List.init 500 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f inputs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        expected
        (Pool.map ~jobs f inputs))
    [ 1; 2; 4; 8 ]

let test_jobs_exceed_tasks () =
  Alcotest.(check (list int))
    "more workers than tasks" [ 10; 20 ]
    (Pool.map ~jobs:16 (fun x -> 10 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int))
    "single task" [ 42 ]
    (Pool.map ~jobs:8 Fun.id [ 42 ])

let test_jobs1_bit_identical () =
  (* float pipeline: any reordering of operations would change bits *)
  let inputs = List.init 200 (fun i -> 1.0 +. (float_of_int i /. 7.0)) in
  let f x = sqrt x +. (sin x *. 1e-3) in
  let seq = List.map f inputs in
  let pooled = Pool.map ~jobs:1 f inputs in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        "bit-for-bit" true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)))
    seq pooled

let test_exception_lowest_index () =
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f [ 1; 2; 3; 4; 6; 7 ] with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Pool.Task_failed fl ->
        (* index 2 (value 3) is the lowest-index failure at any jobs *)
        Alcotest.(check int) "lowest index wins" 2 fl.Pool.index;
        Alcotest.(check bool)
          "carries the exception" true
          (fl.Pool.exn = Failure "3"))
    [ 1; 4 ]

let test_map_result_positions () =
  let f x = if x < 0 then failwith "neg" else 2 * x in
  let results = Pool.map_result ~jobs:3 f [ 1; -1; 2; -2; 3 ] in
  let render = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error (fl : Pool.failure) -> Printf.sprintf "err:%d" fl.Pool.index
  in
  Alcotest.(check (list string))
    "errors sit at their input positions"
    [ "ok:2"; "err:1"; "ok:4"; "err:3"; "ok:6" ]
    (List.map render results)

let test_seeded_streams () =
  let inputs = List.init 50 Fun.id in
  let f rng x =
    (* consume a per-task amount of the stream to prove independence *)
    let acc = ref 0.0 in
    for _ = 0 to x mod 5 do
      acc := !acc +. Prng.float rng 1.0
    done;
    !acc
  in
  let runs =
    List.map (fun jobs -> Pool.map_seeded ~jobs ~seed:123 f inputs) [ 1; 2; 8 ]
  in
  match runs with
  | base :: rest ->
    List.iter
      (fun run ->
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              "stream depends on (seed, index) only" true
              (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)))
          base run)
      rest;
    (* different seed must give a different stream *)
    let other = Pool.map_seeded ~jobs:2 ~seed:124 f inputs in
    Alcotest.(check bool) "seed matters" false (base = other)
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* batch engine: jobs-count invariance on real EBF solves              *)
(* ------------------------------------------------------------------ *)

let check_batch_invariant ~per_bench () =
  let specs = Batch.corpus ~size:Benchmarks.Tiny ~per_bench ~seed:11 () in
  let s1 = Batch.run ~jobs:1 specs in
  let s4 = Batch.run ~jobs:4 specs in
  Alcotest.(check int) "no failures at jobs=1" 0 s1.Batch.failures;
  Alcotest.(check int) "no failures at jobs=4" 0 s4.Batch.failures;
  List.iter2
    (fun (a : Batch.outcome) (b : Batch.outcome) ->
      Alcotest.(check string) "same id order" a.Batch.spec.Batch.id
        b.Batch.spec.Batch.id;
      Alcotest.(check bool)
        ("objective identical for " ^ a.Batch.spec.Batch.id)
        true
        (Int64.equal
           (Int64.bits_of_float a.Batch.objective)
           (Int64.bits_of_float b.Batch.objective));
      Alcotest.(check int) "same iteration count" a.Batch.lp_iterations
        b.Batch.lp_iterations;
      Alcotest.(check bool) "certified" true a.Batch.certified)
    s1.Batch.outcomes s4.Batch.outcomes;
  (* merged solver stats are order-independent sums *)
  Alcotest.(check int)
    "merged iterations agree" s1.Batch.merged.Lubt_lp.Simplex.iterations
    s4.Batch.merged.Lubt_lp.Simplex.iterations

let test_batch_small () = check_batch_invariant ~per_bench:1 ()
let test_batch_corpus () = check_batch_invariant ~per_bench:5 ()

let test_batch_error_isolation () =
  (* an unknown benchmark name raises inside the worker; the pool must
     convert it into a per-instance error without poisoning the rest *)
  let specs = Batch.corpus ~size:Benchmarks.Tiny ~per_bench:1 ~seed:0 () in
  let broken =
    {
      Batch.id = "bogus/s0";
      bench = "no-such-bench";
      size = Benchmarks.Tiny;
      seed = 0;
      skew_rel = 0.5;
    }
  in
  let s = Batch.run ~jobs:2 (broken :: specs) in
  Alcotest.(check int) "exactly one failure" 1 s.Batch.failures;
  (match s.Batch.outcomes with
  | first :: rest ->
    Alcotest.(check bool) "error recorded" true (first.Batch.error <> None);
    Alcotest.(check string) "error status" "error" first.Batch.status;
    List.iter
      (fun (o : Batch.outcome) ->
        Alcotest.(check bool)
          ("instance " ^ o.Batch.spec.Batch.id ^ " unaffected")
          true o.Batch.certified)
      rest
  | [] -> Alcotest.fail "no outcomes");
  Alcotest.(check bool) "summary JSON still valid" true
    (json_valid (Batch.summary_json s))

(* ------------------------------------------------------------------ *)
(* JSON well-formedness of the machine-readable surfaces               *)
(* ------------------------------------------------------------------ *)

let test_batch_json () =
  let specs = Batch.corpus ~size:Benchmarks.Tiny ~per_bench:1 ~seed:3 () in
  let s = Batch.run ~jobs:2 specs in
  List.iter
    (fun o ->
      let line = Batch.outcome_json o in
      Alcotest.(check bool) "outcome is one line" false
        (String.contains line '\n');
      Alcotest.(check bool) "outcome JSON valid" true (json_valid line))
    s.Batch.outcomes;
  Alcotest.(check bool) "summary JSON valid" true
    (json_valid (Batch.summary_json s))

let test_bench_json () =
  let scaling =
    [
      {
        Protocol.sc_jobs = 1;
        sc_wall_s = 2.0;
        sc_speedup = 1.0;
        sc_instances = 20;
      };
      {
        Protocol.sc_jobs = 4;
        sc_wall_s = 1.9;
        sc_speedup = 2.0 /. 1.9;
        sc_instances = 20;
      };
    ]
  in
  let j =
    Protocol.bench_json ~jobs:4 ~scaling ~size:"tiny"
      [
        {
          Protocol.bench_name = "unit \"test\"";
          ms_per_run = 1.25e-3;
          solver = None;
          ebf_result = None;
        };
      ]
  in
  Alcotest.(check bool) "bench_json valid" true (json_valid j);
  let contains re j =
    let rec find i =
      i + String.length re <= String.length j
      && (String.sub j i (String.length re) = re || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "schema v4 stamped" true
    (contains "\"schema\": \"lubt-bench/4\"" j);
  (* a --no-scaling run records the skip explicitly instead of omitting
     the field *)
  let skipped =
    Protocol.bench_json ~scaling_skipped:true ~size:"tiny"
      [
        {
          Protocol.bench_name = "unit";
          ms_per_run = 1.0;
          solver = None;
          ebf_result = None;
        };
      ]
  in
  Alcotest.(check bool) "skipped run still valid JSON" true
    (json_valid skipped);
  Alcotest.(check bool) "empty scaling recorded" true
    (contains "\"scaling\": []" skipped);
  Alcotest.(check bool) "skip marker recorded" true
    (contains "\"scaling_skipped\": true" skipped);
  Alcotest.(check bool) "normal run has no skip marker" false
    (contains "scaling_skipped" j)

let test_cli_solve_json () =
  (* satellite check: `lubt solve --json --stats` must keep stdout pure
     JSON with all telemetry on stderr *)
  let dir = Filename.temp_file "lubt_pool" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let inst = Filename.concat dir "inst.lubt" in
  let out = Filename.concat dir "stdout.json" in
  (* the CLI sits next to this binary in the build tree regardless of
     whether we were started by `dune runtest` or `dune exec` *)
  let cli =
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) "..")
      (Filename.concat "bin" "lubt_cli.exe")
  in
  let run cmd =
    let code = Sys.command cmd in
    Alcotest.(check int) ("exit 0: " ^ cmd) 0 code
  in
  run
    (Printf.sprintf
       "%s gen --bench prim1s --size tiny --upper 1.5 -o %s >/dev/null 2>&1"
       (Filename.quote cli) (Filename.quote inst));
  run
    (Printf.sprintf "%s solve %s --stats --certify --json > %s 2>/dev/null"
       (Filename.quote cli) (Filename.quote inst) (Filename.quote out));
  let ic = open_in out in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "stdout is exactly one line" 1 (List.length lines);
  Alcotest.(check bool) "stdout parses as JSON" true
    (json_valid (List.hd lines));
  Sys.remove inst;
  Sys.remove out;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* executor supervision                                                *)
(* ------------------------------------------------------------------ *)

module Executor = Pool.Executor

let wait_for ?(timeout = 10.0) what pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) (what ^ " (before timeout)") true (pred ())

let test_exec_claim () =
  let ex = Executor.create ~jobs:1 () in
  let inner = Atomic.make None in
  let cell = Atomic.make None in
  let tk =
    match
      Executor.submit ex (fun () ->
          wait_for "ticket visible to task" (fun () ->
              Atomic.get cell <> None);
          match Atomic.get cell with
          | Some tk ->
            Atomic.set inner (Some (Executor.claim tk));
            (* a second claim of the same ticket must lose *)
            Alcotest.(check bool) "reclaim inside task" false
              (Executor.claim tk)
          | None -> ())
    with
    | Ok tk ->
      Atomic.set cell (Some tk);
      tk
    | Error _ -> Alcotest.fail "submit refused"
  in
  wait_for "task claimed" (fun () -> Atomic.get inner <> None);
  Alcotest.(check (option bool)) "first claim wins" (Some true)
    (Atomic.get inner);
  Alcotest.(check bool) "claim after completion" false (Executor.claim tk);
  Alcotest.(check bool) "not abandoned" false (Executor.abandoned tk);
  Executor.shutdown ex

(* the submit/shutdown race contract: every ticket accepted concurrently
   with a draining shutdown either runs or gets its on_abandon — none
   may vanish *)
let test_exec_drain_race () =
  for _round = 1 to 8 do
    let ex = Executor.create ~jobs:2 ~max_pending:4096 () in
    let executed = Atomic.make 0 in
    let abandoned = Atomic.make 0 in
    let accepted = Atomic.make 0 in
    let stop = Atomic.make false in
    let racers =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                match
                  Executor.submit
                    ~on_abandon:(fun _ -> Atomic.incr abandoned)
                    ex
                    (fun () -> Atomic.incr executed)
                with
                | Ok _ -> Atomic.incr accepted
                | Error _ -> Atomic.set stop true
              done))
    in
    (* shut down while the racers are mid-burst *)
    Unix.sleepf 0.002;
    Executor.shutdown ~drain:true ex;
    Atomic.set stop true;
    List.iter Domain.join racers;
    Alcotest.(check int)
      "accepted = executed + abandoned"
      (Atomic.get accepted)
      (Atomic.get executed + Atomic.get abandoned);
    Alcotest.(check int) "drain shutdown abandons nothing" 0
      (Atomic.get abandoned)
  done

let test_exec_no_drain_drops () =
  let ex = Executor.create ~jobs:1 ~max_pending:64 () in
  let started = Atomic.make false in
  let executed = Atomic.make 0 in
  let dropped = Atomic.make 0 in
  let ok = function Ok _ -> () | Error _ -> Alcotest.fail "submit refused" in
  ok
    (Executor.submit ex (fun () ->
         Atomic.set started true;
         Unix.sleepf 0.15;
         Atomic.incr executed));
  wait_for "head task running" (fun () -> Atomic.get started);
  for _ = 1 to 5 do
    ok
      (Executor.submit
         ~on_abandon:(fun reason ->
           match reason with
           | Executor.Dropped -> Atomic.incr dropped
           | _ -> ())
         ex
         (fun () -> Atomic.incr executed))
  done;
  Executor.shutdown ~drain:false ex;
  Alcotest.(check int) "running task finished" 1 (Atomic.get executed);
  Alcotest.(check int) "queued tasks told they were dropped" 5
    (Atomic.get dropped)

let test_exec_chaos_kill () =
  (* kill_rate 1: every accepted task dies with its worker; the
     supervisor must contain each crash, respawn, and fail only that
     ticket *)
  let chaos = Executor.chaos_plan ~kill_rate:1.0 ~delay_rate:0.0 17 in
  let ex = Executor.create ~jobs:2 ~chaos () in
  let crashed = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let n = 6 in
  let tickets =
    List.init n (fun _ ->
        match
          Executor.submit
            ~on_abandon:(fun reason ->
              match reason with
              | Executor.Crashed _ -> Atomic.incr crashed
              | _ -> ())
            ex
            (fun () -> Atomic.incr executed)
        with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "submit refused")
  in
  wait_for "every ticket abandoned as crashed" (fun () ->
      Atomic.get crashed = n);
  Alcotest.(check int) "no task body ever ran" 0 (Atomic.get executed);
  List.iter
    (fun tk ->
      Alcotest.(check bool) "abandoned ticket" true (Executor.abandoned tk);
      Alcotest.(check bool) "claim lost" false (Executor.claim tk))
    tickets;
  Alcotest.(check bool)
    (Printf.sprintf "restarts >= %d (got %d)" n (Executor.restarts ex))
    true
    (Executor.restarts ex >= n);
  Alcotest.(check int) "pool kept its worker count" 2 (Executor.workers ex);
  Executor.shutdown ex

let test_exec_watchdog () =
  let ex = Executor.create ~jobs:1 ~watchdog:0.05 () in
  let cell = Atomic.make None in
  let timed_out = Atomic.make nan in
  let zombie_claim = Atomic.make None in
  (match
     Executor.submit
       ~on_abandon:(fun reason ->
         match reason with
         | Executor.Timed_out elapsed -> Atomic.set timed_out elapsed
         | _ -> ())
       ex
       (fun () ->
         Unix.sleepf 0.3;
         match Atomic.get cell with
         | Some tk -> Atomic.set zombie_claim (Some (Executor.claim tk))
         | None -> ())
   with
  | Ok tk -> Atomic.set cell (Some tk)
  | Error _ -> Alcotest.fail "submit refused");
  wait_for "watchdog fired" (fun () ->
      not (Float.is_nan (Atomic.get timed_out)));
  Alcotest.(check bool) "elapsed at deposal >= deadline" true
    (Atomic.get timed_out >= 0.05);
  Alcotest.(check int) "watchdog_fires" 1 (Executor.watchdog_fires ex);
  Alcotest.(check bool) "restart counted" true (Executor.restarts ex >= 1);
  (* the replacement worker serves new tasks while the zombie sleeps *)
  let served = Atomic.make false in
  (match Executor.submit ex (fun () -> Atomic.set served true) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "replacement refused work");
  wait_for "replacement worker serves" (fun () -> Atomic.get served);
  (* the deposed task finishes eventually and must lose its claim *)
  wait_for "zombie finished" (fun () -> Atomic.get zombie_claim <> None);
  Alcotest.(check (option bool)) "zombie's claim lost" (Some false)
    (Atomic.get zombie_claim);
  Executor.shutdown ex

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering across jobs" `Quick test_map_ordering;
          Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "jobs=1 bit-identical" `Quick
            test_jobs1_bit_identical;
          Alcotest.test_case "lowest-index failure" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "map_result positions" `Quick
            test_map_result_positions;
          Alcotest.test_case "seeded streams" `Quick test_seeded_streams;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs invariance (small)" `Quick test_batch_small;
          Alcotest.test_case "jobs invariance (20-instance corpus)" `Slow
            test_batch_corpus;
          Alcotest.test_case "error isolation" `Quick test_batch_error_isolation;
        ] );
      ( "executor",
        [
          Alcotest.test_case "claim exactly once" `Quick test_exec_claim;
          Alcotest.test_case "submit/shutdown drain race" `Quick
            test_exec_drain_race;
          Alcotest.test_case "no-drain drops queued" `Quick
            test_exec_no_drain_drops;
          Alcotest.test_case "chaos kill supervision" `Quick
            test_exec_chaos_kill;
          Alcotest.test_case "watchdog deposal" `Quick test_exec_watchdog;
        ] );
      ( "json",
        [
          Alcotest.test_case "checker sanity" `Quick test_json_checker;
          Alcotest.test_case "batch records" `Quick test_batch_json;
          Alcotest.test_case "bench schema" `Quick test_bench_json;
          Alcotest.test_case "cli solve --json stdout" `Quick
            test_cli_solve_json;
        ] );
    ]
