(* Golden regression corpus for the CPLEX-LP reader/writer and the
   solver front end.  Each fixture under fixtures/ is a hand-written
   (or exported) LP file with a sidecar recording the expected verdict;
   the test parses it, checks the solve against the sidecar, and checks
   that the writer's output is a fixed point of write/parse/write — a
   structural round-trip failure is reported as a unified diff of the
   two texts, so a regression shows exactly which lines moved. *)

module Problem = Lubt_lp.Problem
module Lp_format = Lubt_lp.Lp_format
module Solver = Lubt_lp.Solver
module Status = Lubt_lp.Status

let fixtures =
  [
    "bounds_only";
    "free_vars";
    "empty_objective";
    "all_negative";
    "neg_upper";
    "number_first_bounds";
    "range_rows";
    "infeasible_box";
    "unbounded";
    "scientific";
    "ebf_five_point";
  ]

(* ------------------------------------------------------------------ *)
(* Minimal unified diff (LCS over lines)                               *)
(* ------------------------------------------------------------------ *)

let unified_diff a b =
  let la = Array.of_list (String.split_on_char '\n' a) in
  let lb = Array.of_list (String.split_on_char '\n' b) in
  let n = Array.length la and m = Array.length lb in
  (* lcs.(i).(j) = LCS length of la[i..] and lb[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if la.(i) = lb.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let buf = Buffer.create 256 in
  let rec walk i j =
    if i < n && j < m && la.(i) = lb.(j) then begin
      Buffer.add_string buf (" " ^ la.(i) ^ "\n");
      walk (i + 1) (j + 1)
    end
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then begin
      Buffer.add_string buf ("+" ^ lb.(j) ^ "\n");
      walk i (j + 1)
    end
    else if i < n then begin
      Buffer.add_string buf ("-" ^ la.(i) ^ "\n");
      walk (i + 1) j
    end
  in
  walk 0 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sidecar parsing: "status <s>" and optionally "objective <v>"        *)
(* ------------------------------------------------------------------ *)

let read_expected path =
  let ic = open_in path in
  let status = ref "" and objective = ref None in
  (try
     while true do
       match String.split_on_char ' ' (String.trim (input_line ic)) with
       | [ "status"; s ] -> status := s
       | [ "objective"; v ] -> objective := Some (float_of_string v)
       | [ "" ] | [] -> ()
       | _ -> failwith ("malformed sidecar line in " ^ path)
     done
   with End_of_file -> ());
  close_in ic;
  (!status, !objective)

(* dune runtest runs the exe next to fixtures/; a manual dune exec runs
   from the project root *)
let fixtures_dir =
  if Sys.file_exists "fixtures" then "fixtures"
  else Filename.concat "test" "fixtures"

let check_fixture name () =
  let lp_path = Filename.concat fixtures_dir (name ^ ".lp") in
  let expected_status, expected_obj =
    read_expected (Filename.concat fixtures_dir (name ^ ".expected"))
  in
  let p =
    match Lp_format.read lp_path with
    | Error msg -> Alcotest.failf "%s: parse error: %s" name msg
    | Ok p -> p
  in
  (* solve and compare against the sidecar *)
  let sol = Solver.solve p in
  let got_status = Status.to_string sol.Status.status in
  if got_status <> expected_status then
    Alcotest.failf "%s: status %s, expected %s" name got_status expected_status;
  (match expected_obj with
  | Some v ->
    if not (Lubt_util.Stats.approx_eq ~eps:1e-9 sol.Status.objective v) then
      Alcotest.failf "%s: objective %.17g, expected %.17g" name
        sol.Status.objective v
  | None -> ());
  (* structural round-trip: the writer's text must be a fixed point of
     parse/write, and the reparsed model must solve identically *)
  let t1 = Lp_format.to_string p in
  let p2 =
    match Lp_format.of_string t1 with
    | Error msg -> Alcotest.failf "%s: reparse error: %s\n%s" name msg t1
    | Ok p2 -> p2
  in
  let t2 = Lp_format.to_string p2 in
  if t1 <> t2 then
    Alcotest.failf "%s: write/parse/write is not a fixed point:\n%s" name
      (unified_diff t1 t2);
  let sol2 = Solver.solve p2 in
  if sol2.Status.status <> sol.Status.status then
    Alcotest.failf "%s: round-trip changed status %s -> %s" name got_status
      (Status.to_string sol2.Status.status);
  if
    sol.Status.status = Status.Optimal
    && not
         (Lubt_util.Stats.approx_eq ~eps:1e-9 sol.Status.objective
            sol2.Status.objective)
  then
    Alcotest.failf "%s: round-trip changed objective %.17g -> %.17g" name
      sol.Status.objective sol2.Status.objective

(* the diff printer is itself load-bearing for failure reports: pin it *)
let test_unified_diff () =
  let a = "alpha\nbeta\ngamma" and b = "alpha\ngamma\ndelta" in
  Alcotest.(check string)
    "diff" " alpha\n-beta\n gamma\n+delta\n" (unified_diff a b)

let () =
  Alcotest.run "lp_golden"
    [
      ( "fixtures",
        List.map
          (fun name -> Alcotest.test_case name `Quick (check_fixture name))
          fixtures );
      ("diff", [ Alcotest.test_case "unified diff shape" `Quick test_unified_diff ]);
    ]
