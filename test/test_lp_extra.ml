(* Tests for the LP extras: presolve reductions and the LP-format
   writer/reader. *)

module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Presolve = Lubt_lp.Presolve
module Lp_format = Lubt_lp.Lp_format
module Status = Lubt_lp.Status
module Sparse = Lubt_lp.Sparse
module Prng = Lubt_util.Prng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Presolve                                                             *)
(* ------------------------------------------------------------------ *)

let test_fixed_variable_substitution () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2.0 ~up:2.0 ~obj:3.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "one variable left" 1 (Presolve.reduced_vars t);
    let sol = Presolve.solve p in
    Alcotest.(check bool) "optimal" true (sol.Status.status = Status.Optimal);
    (* x fixed at 2, row needs y >= 3: objective 3*2 + 3 = 9 *)
    check_float "objective" 9.0 sol.Status.objective;
    check_float "x reinstated" 2.0 sol.Status.primal.(x);
    check_float "y" 3.0 sol.Status.primal.(y)

let test_singleton_row_to_bound () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:4.0 ~up:10.0 [ (x, 2.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "row folded away" 0 (Presolve.reduced_rows t);
    let sol = Presolve.solve p in
    check_float "x at tightened lower bound" 2.0 sol.Status.primal.(x)

let test_duplicate_rows_merge () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:1.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:3.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:8.0 [ (x, 1.0); (y, 1.0) ]);
  match Presolve.run p with
  | Presolve.Infeasible_detected msg -> Alcotest.fail msg
  | Presolve.Reduced t ->
    Alcotest.(check int) "rows merged" 1 (Presolve.reduced_rows t);
    let sol = Presolve.solve p in
    check_float "objective" 3.0 sol.Status.objective

let test_presolve_detects_infeasible () =
  let cases =
    [
      (fun p ->
        (* crossed bounds via two singleton rows *)
        let x = Problem.add_var p in
        ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0) ]);
        ignore (Problem.add_row p ~lo:neg_infinity ~up:2.0 [ (x, 1.0) ]));
      (fun p ->
        (* duplicate rows with disjoint bounds *)
        let x = Problem.add_var p in
        let y = Problem.add_var p in
        ignore (Problem.add_row p ~lo:1.0 ~up:2.0 [ (x, 1.0); (y, 1.0) ]);
        ignore (Problem.add_row p ~lo:5.0 ~up:6.0 [ (x, 1.0); (y, 1.0) ]));
      (fun p ->
        (* empty row after substituting a fixed variable *)
        let x = Problem.add_var ~lo:1.0 ~up:1.0 p in
        ignore (Problem.add_row p ~lo:5.0 ~up:6.0 [ (x, 1.0) ]));
    ]
  in
  List.iter
    (fun build ->
      let p = Problem.create () in
      build p;
      match Presolve.run p with
      | Presolve.Infeasible_detected _ -> ()
      | Presolve.Reduced t ->
        (* presolve may legitimately defer to the solver *)
        let sol = Solver.solve (Presolve.problem t) in
        Alcotest.(check bool) "solver confirms infeasible" true
          (sol.Status.status = Status.Infeasible))
    cases

let test_all_variables_fixed () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:1.0 ~up:1.0 ~obj:2.0 p in
  let y = Problem.add_var ~lo:3.0 ~up:3.0 ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:0.0 ~up:10.0 [ (x, 1.0); (y, 1.0) ]);
  let sol = Presolve.solve p in
  Alcotest.(check bool) "optimal" true (sol.Status.status = Status.Optimal);
  check_float "objective" 5.0 sol.Status.objective;
  (* and an infeasible variant *)
  let q = Problem.create () in
  let a = Problem.add_var ~lo:1.0 ~up:1.0 q in
  ignore (Problem.add_row q ~lo:5.0 ~up:10.0 [ (a, 1.0) ]);
  let sol2 = Presolve.solve q in
  Alcotest.(check bool) "infeasible" true (sol2.Status.status = Status.Infeasible)

(* randomised: presolve+solve agrees with direct solve.  Shared
   generator (lp_gen.ml); [fixed_vars] adds the fixed-variable kind that
   exercises substitution, with the original draw sequence. *)
let random_problem rng = Lp_gen.random_problem ~fixed_vars:true rng

let test_presolve_random_agreement () =
  let rng = Prng.create 606 in
  for id = 1 to 300 do
    let p = random_problem rng in
    let direct = Solver.solve p in
    let pre = Presolve.solve p in
    (match (direct.Status.status, pre.Status.status) with
    | Status.Optimal, Status.Optimal ->
      if
        not
          (Lubt_util.Stats.approx_eq ~eps:1e-5 direct.Status.objective
             pre.Status.objective)
      then
        Alcotest.failf "case %d: direct %.9g vs presolved %.9g" id
          direct.Status.objective pre.Status.objective;
      if not (Problem.is_feasible ~tol:1e-5 p pre.Status.primal) then
        Alcotest.failf "case %d: postsolved point infeasible" id
    | a, b when a = b -> ()
    | Status.Unbounded, Status.Optimal | Status.Optimal, Status.Unbounded ->
      Alcotest.failf "case %d: optimal/unbounded mismatch" id
    | a, b ->
      Alcotest.failf "case %d: status mismatch %s vs %s" id (Status.to_string a)
        (Status.to_string b))
  done

(* ------------------------------------------------------------------ *)
(* LP format                                                            *)
(* ------------------------------------------------------------------ *)

let test_lp_format_writer_shape () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 ~name:"x" p in
  let y = Problem.add_var ~lo:neg_infinity ~up:infinity ~obj:(-2.0) ~name:"y" p in
  ignore (Problem.add_row ~name:"r1" p ~lo:1.0 ~up:infinity [ (x, 1.0); (y, 3.0) ]);
  ignore (Problem.add_row ~name:"r2" p ~lo:0.0 ~up:5.0 [ (x, 2.0) ]);
  let s = Lp_format.to_string p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains s needle))
    (* one-sided r1 keeps its name; range row r2 splits into _l/_u *)
    [ "Minimize"; "Subject To"; "Bounds"; "End"; "y free"; "r1:"; "r2_l:"; "r2_u:" ]

let test_lp_format_roundtrip () =
  let rng = Prng.create 7007 in
  for id = 1 to 200 do
    let p = random_problem rng in
    match Lp_format.of_string (Lp_format.to_string p) with
    | Error msg -> Alcotest.failf "case %d: parse error: %s" id msg
    | Ok q ->
      let a = Solver.solve p and b = Solver.solve q in
      (match (a.Status.status, b.Status.status) with
      | Status.Optimal, Status.Optimal ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-5 a.Status.objective b.Status.objective)
        then
          Alcotest.failf "case %d: objective %.9g vs %.9g after roundtrip" id
            a.Status.objective b.Status.objective
      | sa, sb when sa = sb -> ()
      | sa, sb ->
        Alcotest.failf "case %d: status %s vs %s after roundtrip" id
          (Status.to_string sa) (Status.to_string sb))
  done

let test_lp_format_reader_errors () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (text, why, where) ->
      match Lp_format.of_string text with
      | Error msg ->
        if not (contains msg where) then
          Alcotest.failf "%s: error %S does not locate %S" why msg where
      | Ok _ -> Alcotest.failf "expected parse failure: %s" why)
    [
      ("x + y <= 3", "content before section", "line 1");
      ("Minimize\n obj: x\nSubject To\n c: x ? 3\nEnd", "bad operator", "line 4");
      ("Minimize\n obj: x\nSubject To\n c: x <=\nEnd", "missing rhs", "line 4");
      ( "Minimize\n obj: x\nSubject To\n c: x >= 1\nBounds\n 3 <= x <= 2\nEnd",
        "crossed bounds",
        "line 6" );
      ( "Minimize\n obj: x\nSubject To\n c: x @ 3 >= 1\nEnd",
        "bad token",
        "line 4" );
    ]

(* Structural equality up to variable order (LP format does not encode
   declaration order): the same named variables with the same
   bounds/objective, and the same rows in order with coefficients matched
   by variable name. Exact float comparison is intended — the writer uses
   %.17g, which round-trips IEEE doubles bit-exactly. *)
let assert_same_problem id p q =
  if Problem.nvars p <> Problem.nvars q then
    Alcotest.failf "%s: nvars %d vs %d" id (Problem.nvars p) (Problem.nvars q);
  if Problem.nrows p <> Problem.nrows q then
    Alcotest.failf "%s: nrows %d vs %d" id (Problem.nrows p) (Problem.nrows q);
  let index = Hashtbl.create 16 in
  for j = 0 to Problem.nvars q - 1 do
    Hashtbl.replace index (Problem.var_name q j) j
  done;
  for j = 0 to Problem.nvars p - 1 do
    let name = Problem.var_name p j in
    match Hashtbl.find_opt index name with
    | None -> Alcotest.failf "%s: variable %s lost in round-trip" id name
    | Some j' ->
      let chk what a b =
        if a <> b then
          Alcotest.failf "%s: %s of %s: %.17g vs %.17g" id what name a b
      in
      chk "lower bound" (Problem.var_lo p j) (Problem.var_lo q j');
      chk "upper bound" (Problem.var_up p j) (Problem.var_up q j');
      chk "objective" (Problem.obj_coeff p j) (Problem.obj_coeff q j')
  done;
  let named prob (r : Problem.row) =
    List.sort compare
      (List.map
         (fun (j, a) -> (Problem.var_name prob j, a))
         (Sparse.to_assoc r.Problem.coeffs))
  in
  for i = 0 to Problem.nrows p - 1 do
    let rp = Problem.row p i and rq = Problem.row q i in
    if rp.Problem.rlo <> rq.Problem.rlo || rp.Problem.rup <> rq.Problem.rup then
      Alcotest.failf "%s: row %d bounds [%g, %g] vs [%g, %g]" id i
        rp.Problem.rlo rp.Problem.rup rq.Problem.rlo rq.Problem.rup;
    if named p rp <> named q rq then
      Alcotest.failf "%s: row %d coefficients differ" id i
  done

let test_lp_format_structural_roundtrip () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:2.5e-7 ~name:"x" p in
  (* a free variable outside the objective and every constraint: only its
     Bounds line mentions it, and it used to be dropped by the reader *)
  let _y = Problem.add_var ~lo:neg_infinity ~up:infinity ~name:"y_free" p in
  let z = Problem.add_var ~lo:neg_infinity ~up:3.0 ~name:"z" p in
  let w = Problem.add_var ~lo:(-4.5) ~up:(-4.5) ~name:"w" p in
  let _v = Problem.add_var ~lo:1.0e12 ~up:infinity ~name:"v" p in
  ignore
    (Problem.add_row ~name:"r1" p ~lo:neg_infinity ~up:1.0e12
       [ (x, 3.0e-5); (z, -1.0) ]);
  ignore (Problem.add_row ~name:"r2" p ~lo:(-2.0) ~up:(-2.0) [ (x, 1.0); (w, 1.0) ]);
  match Lp_format.of_string (Lp_format.to_string p) with
  | Error msg -> Alcotest.fail msg
  | Ok q -> assert_same_problem "hand-built" p q

(* like [random_problem] but tuned for the writer (shared generator,
   see lp_gen.ml): scientific-notation magnitudes, free/fixed/one-sided
   bounds, a variable referenced only by its Bounds line, and no range
   rows (the writer splits those in two by design, so they cannot
   round-trip structurally) *)
let random_format_problem rng = Lp_gen.random_format_problem rng

let test_lp_format_random_structural_roundtrip () =
  let rng = Prng.create 9119 in
  for id = 1 to 100 do
    let p = random_format_problem rng in
    match Lp_format.of_string (Lp_format.to_string p) with
    | Error msg -> Alcotest.failf "case %d: parse error: %s" id msg
    | Ok q -> assert_same_problem (Printf.sprintf "case %d" id) p q
  done

let test_ebf_program_exports () =
  (* the EBF LP of the paper's five-point example survives a write/solve *)
  let inst, tree = Lubt_data.Examples.five_point () in
  let prob = Lubt_core.Ebf.formulate inst tree in
  let text = Lp_format.to_string prob in
  match Lp_format.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    let a = Solver.solve prob and b = Solver.solve q in
    Alcotest.(check bool) "both optimal" true
      (a.Status.status = Status.Optimal && b.Status.status = Status.Optimal);
    check_float "same optimum" a.Status.objective b.Status.objective


(* ------------------------------------------------------------------ *)
(* Four-way engine cross-check on random EBF instances                  *)
(* ------------------------------------------------------------------ *)

module Simplex = Lubt_lp.Simplex
module Tableau = Lubt_lp.Tableau
module Ebf = Lubt_core.Ebf
module Instance = Lubt_core.Instance
module Topogen = Lubt_topo.Topogen
module Point = Lubt_geom.Point

(* Every engine configuration — {dense inverse, sparse LU} x {full
   Dantzig pricing, partial pricing} — must agree with the independent
   two-phase tableau oracle, both on the eager formulation (primal
   phases) and through the lazy row-generation loop (dual-simplex warm
   restarts after add_row). A fifth of the instances get an upper bound
   below the radius so the infeasibility verdict is cross-checked too. *)
let test_ebf_four_way_crosscheck () =
  let rng = Prng.create 8086 in
  let engine_params =
    [
      ("dense+dantzig",
       { Simplex.default_params with
         Simplex.sparse_basis = false; pricing = Simplex.Dantzig });
      ("dense+partial",
       { Simplex.default_params with
         Simplex.sparse_basis = false; pricing = Simplex.Partial });
      ("sparse+dantzig",
       { Simplex.default_params with
         Simplex.sparse_basis = true; pricing = Simplex.Dantzig });
      ("sparse+partial",
       { Simplex.default_params with
         Simplex.sparse_basis = true; pricing = Simplex.Partial });
    ]
  in
  for case = 1 to 50 do
    (* every fifth case gets an upper bound below the radius: provably
       no LUBT exists, so the infeasibility verdict is cross-checked *)
    let inst, tree = Lp_gen.random_ebf ~infeasible:(case mod 5 = 0) rng in
    let oracle = Tableau.solve (Ebf.formulate inst tree) in
    List.iter
      (fun (label, params) ->
        let eager = Solver.solve ~params (Ebf.formulate inst tree) in
        if eager.Status.status <> oracle.Status.status then
          Alcotest.failf "case %d (%s, eager): status %s vs oracle %s" case
            label
            (Status.to_string eager.Status.status)
            (Status.to_string oracle.Status.status);
        if
          oracle.Status.status = Status.Optimal
          && not
               (Lubt_util.Stats.approx_eq ~eps:1e-6 eager.Status.objective
                  oracle.Status.objective)
        then
          Alcotest.failf "case %d (%s, eager): %.9g vs oracle %.9g" case label
            eager.Status.objective oracle.Status.objective;
        let lazy_r =
          Ebf.solve
            ~options:{ Ebf.default_options with Ebf.lp_params = params }
            inst tree
        in
        if lazy_r.Ebf.status <> oracle.Status.status then
          Alcotest.failf "case %d (%s, lazy): status %s vs oracle %s" case
            label
            (Status.to_string lazy_r.Ebf.status)
            (Status.to_string oracle.Status.status);
        if oracle.Status.status = Status.Optimal then begin
          if
            not
              (Lubt_util.Stats.approx_eq ~eps:1e-6 lazy_r.Ebf.objective
                 oracle.Status.objective)
          then
            Alcotest.failf "case %d (%s, lazy): %.9g vs oracle %.9g" case
              label lazy_r.Ebf.objective oracle.Status.objective;
          match Ebf.check_lengths inst tree lazy_r.Ebf.lengths with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "case %d (%s, lazy): %s" case label msg
        end;
        (* telemetry sanity on the lazy run *)
        let st = lazy_r.Ebf.lp_stats in
        if st.Simplex.iterations <> lazy_r.Ebf.lp_iterations then
          Alcotest.failf "case %d (%s): stats iterations %d vs result %d" case
            label st.Simplex.iterations lazy_r.Ebf.lp_iterations;
        if List.length lazy_r.Ebf.round_stats <> lazy_r.Ebf.rounds then
          Alcotest.failf "case %d (%s): %d round stats for %d rounds" case
            label
            (List.length lazy_r.Ebf.round_stats)
            lazy_r.Ebf.rounds;
        if
          params.Simplex.pricing = Simplex.Dantzig
          && st.Simplex.partial_pricing_scans <> 0
        then
          Alcotest.failf "case %d (%s): Dantzig pricing did partial scans"
            case label)
      engine_params
  done

(* ------------------------------------------------------------------ *)
(* Sparse LU                                                            *)
(* ------------------------------------------------------------------ *)

module Lu = Lubt_lp.Lu

let random_nonsingular rng n =
  (* diagonally dominant random sparse matrix: always nonsingular *)
  Array.init n (fun j ->
      let entries = ref [ (j, 10.0 +. Prng.float rng 5.0) ] in
      for i = 0 to n - 1 do
        if i <> j && Prng.int rng 3 = 0 then
          entries := (i, Prng.float rng 4.0 -. 2.0) :: !entries
      done;
      Sparse.of_assoc !entries)

let mat_vec cols x =
  let n = Array.length cols in
  let y = Array.make n 0.0 in
  Array.iteri (fun j col -> Sparse.iter (fun i a -> y.(i) <- y.(i) +. (a *. x.(j))) col) cols;
  y

let mat_t_vec cols x =
  Array.map (fun col -> Sparse.dot_dense col x) cols

let test_lu_solve_roundtrip () =
  let rng = Prng.create 2025 in
  for case = 1 to 50 do
    let n = 1 + Prng.int rng 30 in
    let cols = random_nonsingular rng n in
    let lu = Lu.factor cols in
    Alcotest.(check int) "dim" n (Lu.dim lu);
    let x_true = Array.init n (fun _ -> Prng.float rng 10.0 -. 5.0) in
    let b = mat_vec cols x_true in
    let x = Lu.solve lu b in
    Array.iteri
      (fun i v ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v x_true.(i)) then
          Alcotest.failf "case %d: solve x[%d] = %.12g vs %.12g" case i v
            x_true.(i))
      x
  done

let test_lu_transpose_solve () =
  let rng = Prng.create 3026 in
  for case = 1 to 50 do
    let n = 1 + Prng.int rng 30 in
    let cols = random_nonsingular rng n in
    let lu = Lu.factor cols in
    let x_true = Array.init n (fun _ -> Prng.float rng 10.0 -. 5.0) in
    let c = mat_t_vec cols x_true in
    let x = Lu.solve_transpose lu c in
    Array.iteri
      (fun i v ->
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v x_true.(i)) then
          Alcotest.failf "case %d: btran x[%d] = %.12g vs %.12g" case i v
            x_true.(i))
      x
  done

let test_lu_inverse_columns () =
  let rng = Prng.create 4027 in
  let n = 12 in
  let cols = random_nonsingular rng n in
  let lu = Lu.factor cols in
  (* A * (column j of A^-1) = e_j *)
  for j = 0 to n - 1 do
    let inv_j = Lu.inverse_column lu j in
    let e = mat_vec cols inv_j in
    Array.iteri
      (fun i v ->
        let want = if i = j then 1.0 else 0.0 in
        if not (Lubt_util.Stats.approx_eq ~eps:1e-8 v want) then
          Alcotest.failf "inverse column %d row %d: %.12g vs %.12g" j i v want)
      e
  done

let test_lu_detects_singular () =
  (* two identical columns *)
  let col = Sparse.of_assoc [ (0, 1.0); (1, 2.0) ] in
  (match Lu.factor [| col; col |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "duplicate columns must be singular");
  (* a zero column *)
  match Lu.factor [| Sparse.of_assoc [ (0, 1.0) ]; Sparse.empty |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "zero column must be singular"

let test_lu_permutation_matrix () =
  (* a permutation matrix exercises the pivoting bookkeeping *)
  let n = 6 in
  let perm = [| 3; 0; 5; 1; 4; 2 |] in
  let cols = Array.init n (fun j -> Sparse.of_assoc [ (perm.(j), 1.0) ]) in
  let lu = Lu.factor cols in
  Alcotest.(check int) "nnz of a permutation" n (Lu.nnz lu);
  let b = Array.init n float_of_int in
  let x = Lu.solve lu b in
  (* x_j = b_(perm j) *)
  Array.iteri
    (fun j v -> Alcotest.(check (float 1e-12)) "perm solve" b.(perm.(j)) v)
    x

let () =
  Alcotest.run "lp-extra"
    [
      ( "presolve",
        [
          Alcotest.test_case "fixed variable substitution" `Quick
            test_fixed_variable_substitution;
          Alcotest.test_case "singleton row to bound" `Quick
            test_singleton_row_to_bound;
          Alcotest.test_case "duplicate rows merge" `Quick
            test_duplicate_rows_merge;
          Alcotest.test_case "detects infeasibility" `Quick
            test_presolve_detects_infeasible;
          Alcotest.test_case "all variables fixed" `Quick
            test_all_variables_fixed;
          Alcotest.test_case "300 random LPs agree" `Slow
            test_presolve_random_agreement;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "solve roundtrip" `Quick test_lu_solve_roundtrip;
          Alcotest.test_case "transpose solve" `Quick test_lu_transpose_solve;
          Alcotest.test_case "inverse columns" `Quick test_lu_inverse_columns;
          Alcotest.test_case "detects singular" `Quick test_lu_detects_singular;
          Alcotest.test_case "permutation matrix" `Quick
            test_lu_permutation_matrix;
        ] );
      ( "lp-format",
        [
          Alcotest.test_case "writer sections" `Quick test_lp_format_writer_shape;
          Alcotest.test_case "roundtrip 200 random LPs" `Slow
            test_lp_format_roundtrip;
          Alcotest.test_case "structural roundtrip" `Quick
            test_lp_format_structural_roundtrip;
          Alcotest.test_case "structural roundtrip, 100 random LPs" `Slow
            test_lp_format_random_structural_roundtrip;
          Alcotest.test_case "reader errors" `Quick test_lp_format_reader_errors;
          Alcotest.test_case "EBF program export" `Quick test_ebf_program_exports;
        ] );
      ( "ebf-cross-check",
        [
          Alcotest.test_case "four-way engine agreement, 50 instances" `Slow
            test_ebf_four_way_crosscheck;
        ] );
    ]
