(* Tests for the LP substrate: hand-checked small programs, cross-checks of
   the revised simplex against the independent dense tableau oracle, duality
   checks, and warm-restart row generation. *)

module Problem = Lubt_lp.Problem
module Solver = Lubt_lp.Solver
module Simplex = Lubt_lp.Simplex
module Tableau = Lubt_lp.Tableau
module Status = Lubt_lp.Status
module Prng = Lubt_util.Prng

let check_float = Alcotest.(check (float 1e-6))

let status_testable = Alcotest.testable Status.pp ( = )

(* ------------------------------------------------------------------ *)
(* Hand-checked problems                                               *)
(* ------------------------------------------------------------------ *)

(* max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18  (Dantzig's classic); opt 36. *)
let test_textbook () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:(-3.0) p in
  let y = Problem.add_var ~obj:(-5.0) p in
  ignore (Problem.add_row p ~lo:neg_infinity ~up:4.0 [ (x, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:12.0 [ (y, 2.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:18.0 [ (x, 3.0); (y, 2.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" (-36.0) sol.objective;
  check_float "x" 2.0 sol.primal.(x);
  check_float "y" 6.0 sol.primal.(y)

(* min x + y st x + y >= 2, x - y = 0 -> x = y = 1 *)
let test_equality () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:2.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:0.0 ~up:0.0 [ (x, 1.0); (y, -1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" 2.0 sol.objective;
  check_float "x" 1.0 sol.primal.(x)

let test_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var p in
  ignore (Problem.add_row p ~lo:2.0 ~up:infinity [ (x, 1.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:1.0 [ (x, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Infeasible sol.status

let test_unbounded () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:(-1.0) p in
  let y = Problem.add_var p in
  ignore (Problem.add_row p ~lo:neg_infinity ~up:4.0 [ (x, 1.0); (y, -1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Unbounded sol.status

(* boxed variables only, no rows: each sits at the favourable bound *)
let test_boxed_no_rows () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:1.0 ~up:3.0 ~obj:2.0 p in
  let y = Problem.add_var ~lo:(-2.0) ~up:5.0 ~obj:(-1.0) p in
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" ((2.0 *. 1.0) +. (-1.0 *. 5.0)) sol.objective;
  check_float "x" 1.0 sol.primal.(x);
  check_float "y" 5.0 sol.primal.(y)

(* range row: 1 <= x + y <= 2 with min x + 2y, x,y >= 0 -> x=1,y=0 *)
let test_range_row () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:2.0 p in
  ignore (Problem.add_row p ~lo:1.0 ~up:2.0 [ (x, 1.0); (y, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" 1.0 sol.objective

(* free variable: min x st x >= -5 handled through a row *)
let test_free_var () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:neg_infinity ~up:infinity ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:(-5.0) ~up:infinity [ (x, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" (-5.0) sol.objective

(* fixed variable participates as a constant *)
let test_fixed_var () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2.0 ~up:2.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:5.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" 3.0 sol.objective

(* Degenerate LP (Beale-like) must still terminate. *)
let test_degenerate () =
  let p = Problem.create () in
  let x1 = Problem.add_var ~obj:(-0.75) p in
  let x2 = Problem.add_var ~obj:150.0 p in
  let x3 = Problem.add_var ~obj:(-0.02) p in
  let x4 = Problem.add_var ~obj:6.0 p in
  ignore
    (Problem.add_row p ~lo:neg_infinity ~up:0.0
       [ (x1, 0.25); (x2, -60.0); (x3, -0.04); (x4, 9.0) ]);
  ignore
    (Problem.add_row p ~lo:neg_infinity ~up:0.0
       [ (x1, 0.5); (x2, -90.0); (x3, -0.02); (x4, 3.0) ]);
  ignore (Problem.add_row p ~lo:neg_infinity ~up:1.0 [ (x3, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  check_float "objective" (-0.05) sol.objective

(* ------------------------------------------------------------------ *)
(* Warm restart / row generation                                       *)
(* ------------------------------------------------------------------ *)

let test_add_row_reoptimise () =
  (* min x + y, x + y >= 1; then add x >= 0.8 and y >= 0.5 *)
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 p in
  let y = Problem.add_var ~obj:1.0 p in
  ignore (Problem.add_row p ~lo:1.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  let eng = Simplex.of_problem p in
  Alcotest.check status_testable "first" Status.Optimal (Simplex.solve eng);
  check_float "obj1" 1.0 (Simplex.objective eng);
  Simplex.add_row eng ~lo:0.8 ~up:infinity [ (x, 1.0) ];
  Simplex.add_row eng ~lo:0.5 ~up:infinity [ (y, 1.0) ];
  Alcotest.check status_testable "second" Status.Optimal (Simplex.solve eng);
  check_float "obj2" 1.3 (Simplex.objective eng);
  let xs = Simplex.primal eng in
  check_float "x" 0.8 xs.(x);
  check_float "y" 0.5 xs.(y)

let test_add_row_makes_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:1.0 ~up:1.0 p in
  ignore (Problem.add_row p ~lo:0.0 ~up:infinity [ (x, 1.0) ]);
  let eng = Simplex.of_problem p in
  Alcotest.check status_testable "first" Status.Optimal (Simplex.solve eng);
  Simplex.add_row eng ~lo:2.0 ~up:infinity [ (x, 1.0) ];
  Alcotest.check status_testable "now infeasible" Status.Infeasible
    (Simplex.solve eng)

let test_many_incremental_rows () =
  (* min sum x_i subject to incrementally revealed x_i + x_{i+1} >= i *)
  let p = Problem.create () in
  let n = 30 in
  let vars = Array.init n (fun _ -> Problem.add_var ~obj:1.0 p) in
  ignore (Problem.add_row p ~lo:1.0 ~up:infinity [ (vars.(0), 1.0) ]);
  let eng = Simplex.of_problem p in
  Alcotest.check status_testable "first" Status.Optimal (Simplex.solve eng);
  for i = 0 to n - 2 do
    Simplex.add_row eng ~lo:(float_of_int i) ~up:infinity
      [ (vars.(i), 1.0); (vars.(i + 1), 1.0) ];
    Alcotest.check status_testable "step" Status.Optimal (Simplex.solve eng)
  done;
  (* compare against solving the complete model from scratch *)
  let q = Problem.create () in
  let qvars = Array.init n (fun _ -> Problem.add_var ~obj:1.0 q) in
  ignore (Problem.add_row q ~lo:1.0 ~up:infinity [ (qvars.(0), 1.0) ]);
  for i = 0 to n - 2 do
    ignore
      (Problem.add_row q ~lo:(float_of_int i) ~up:infinity
         [ (qvars.(i), 1.0); (qvars.(i + 1), 1.0) ])
  done;
  let fresh = Solver.solve q in
  check_float "same objective" fresh.objective (Simplex.objective eng)

(* ------------------------------------------------------------------ *)
(* Randomised cross-check against the tableau oracle                   *)
(* ------------------------------------------------------------------ *)

(* shared generator (see lp_gen.ml); the draw sequence matches the
   original local copy, so seeded case streams are unchanged *)
let random_problem rng = Lp_gen.random_problem rng

let same_outcome id p =
  let a = Solver.solve p in
  let b = Tableau.solve p in
  let ctx = Printf.sprintf "case %d" id in
  (match (a.Status.status, b.Status.status) with
  | Status.Optimal, Status.Optimal ->
    if not (Lubt_util.Stats.approx_eq ~eps:1e-5 a.objective b.objective) then
      Alcotest.failf "%s: objective mismatch revised=%.9g tableau=%.9g" ctx
        a.objective b.objective;
    if not (Problem.is_feasible ~tol:1e-5 p a.primal) then
      Alcotest.failf "%s: revised simplex solution infeasible" ctx;
    if not (Problem.is_feasible ~tol:1e-5 p b.primal) then
      Alcotest.failf "%s: tableau solution infeasible" ctx
  | sa, sb when sa = sb -> ()
  | sa, sb ->
    Alcotest.failf "%s: status mismatch revised=%s tableau=%s" ctx
      (Status.to_string sa) (Status.to_string sb));
  ()

let test_random_cross_check () =
  let rng = Prng.create 20260706 in
  for id = 1 to 400 do
    same_outcome id (random_problem rng)
  done

(* Duality spot check: complementary slackness-free weak duality via the
   reported multipliers on a problem with >= rows. *)
let test_dual_values () =
  let p = Problem.create () in
  let x = Problem.add_var ~obj:2.0 p in
  let y = Problem.add_var ~obj:3.0 p in
  ignore (Problem.add_row p ~lo:4.0 ~up:infinity [ (x, 1.0); (y, 1.0) ]);
  ignore (Problem.add_row p ~lo:2.0 ~up:infinity [ (y, 1.0) ]);
  let sol = Solver.solve p in
  Alcotest.check status_testable "status" Status.Optimal sol.status;
  (* optimum: y can cover both rows; x=2,y=2 -> 10 vs x=0,y=4 -> 12; pick 10 *)
  check_float "objective" 10.0 sol.objective;
  (* b^T y must equal the objective at optimality (strong duality) *)
  let dual_obj = (4.0 *. sol.dual.(0)) +. (2.0 *. sol.dual.(1)) in
  check_float "strong duality" sol.objective dual_obj


(* Sparse product-form backend must agree with the dense inverse. *)
let test_sparse_backend_agreement () =
  let rng = Prng.create 321 in
  let sparse = { Simplex.default_params with Simplex.sparse_basis = true } in
  for id = 1 to 300 do
    let p = random_problem rng in
    let a = Solver.solve p in
    let b = Solver.solve ~params:sparse p in
    match (a.Status.status, b.Status.status) with
    | Status.Optimal, Status.Optimal ->
      if not (Lubt_util.Stats.approx_eq ~eps:1e-5 a.objective b.objective) then
        Alcotest.failf "case %d: dense %.9g vs sparse %.9g" id a.objective
          b.objective
    | sa, sb when sa = sb -> ()
    | sa, sb ->
      Alcotest.failf "case %d: status dense=%s sparse=%s" id
        (Status.to_string sa) (Status.to_string sb)
  done

let test_sparse_backend_incremental () =
  (* warm-restart row generation on the sparse backend *)
  let p = Problem.create () in
  let n = 30 in
  let vars = Array.init n (fun _ -> Problem.add_var ~obj:1.0 p) in
  ignore (Problem.add_row p ~lo:1.0 ~up:infinity [ (vars.(0), 1.0) ]);
  let sparse = { Simplex.default_params with Simplex.sparse_basis = true } in
  let eng = Simplex.of_problem ~params:sparse p in
  Alcotest.check status_testable "first" Status.Optimal (Simplex.solve eng);
  for i = 0 to n - 2 do
    Simplex.add_row eng ~lo:(float_of_int i) ~up:infinity
      [ (vars.(i), 1.0); (vars.(i + 1), 1.0) ];
    Alcotest.check status_testable "step" Status.Optimal (Simplex.solve eng)
  done;
  let q = Problem.create () in
  let qvars = Array.init n (fun _ -> Problem.add_var ~obj:1.0 q) in
  ignore (Problem.add_row q ~lo:1.0 ~up:infinity [ (qvars.(0), 1.0) ]);
  for i = 0 to n - 2 do
    ignore
      (Problem.add_row q ~lo:(float_of_int i) ~up:infinity
         [ (qvars.(i), 1.0); (qvars.(i + 1), 1.0) ])
  done;
  let fresh = Solver.solve q in
  check_float "same objective" fresh.objective (Simplex.objective eng)


(* Parameter fuzz: aggressive refactorisation and both backends must not
   change any outcome. refactor_every = 1 exercises the LU refactor path
   on every single pivot. *)
let test_param_fuzz () =
  let rng = Prng.create 777 in
  let param_sets =
    [
      { Simplex.default_params with Simplex.refactor_every = 1 };
      { Simplex.default_params with Simplex.refactor_every = 1; sparse_basis = true };
      { Simplex.default_params with Simplex.refactor_every = 3; sparse_basis = true };
      { Simplex.default_params with Simplex.max_iters = 100_000 };
      { Simplex.default_params with Simplex.pricing = Simplex.Dantzig };
      { Simplex.default_params with Simplex.pricing = Simplex.Dantzig; sparse_basis = true };
      (* a tiny Bland threshold forces the anti-cycling path onto
         ordinary problems *)
      { Simplex.default_params with Simplex.bland_threshold = 0 };
      { Simplex.default_params with Simplex.bland_threshold = 1; sparse_basis = true };
    ]
  in
  for id = 1 to 80 do
    let p = random_problem rng in
    let reference = Solver.solve p in
    List.iteri
      (fun pi params ->
        let sol = Solver.solve ~params p in
        match (reference.Status.status, sol.Status.status) with
        | Status.Optimal, Status.Optimal ->
          if
            not
              (Lubt_util.Stats.approx_eq ~eps:1e-5 reference.objective
                 sol.objective)
          then
            Alcotest.failf "case %d params %d: %.9g vs %.9g" id pi
              reference.objective sol.objective
        | a, b when a = b -> ()
        | a, b ->
          Alcotest.failf "case %d params %d: %s vs %s" id pi
            (Status.to_string a) (Status.to_string b))
      param_sets
  done

let () =
  Alcotest.run "lp"
    [
      ( "hand-checked",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook;
          Alcotest.test_case "equality row" `Quick test_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "boxed no rows" `Quick test_boxed_no_rows;
          Alcotest.test_case "range row" `Quick test_range_row;
          Alcotest.test_case "free variable" `Quick test_free_var;
          Alcotest.test_case "fixed variable" `Quick test_fixed_var;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "add rows + dual simplex" `Quick
            test_add_row_reoptimise;
          Alcotest.test_case "row makes infeasible" `Quick
            test_add_row_makes_infeasible;
          Alcotest.test_case "many incremental rows" `Quick
            test_many_incremental_rows;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "400 random LPs vs tableau" `Slow
            test_random_cross_check;
          Alcotest.test_case "sparse backend agreement" `Slow
            test_sparse_backend_agreement;
          Alcotest.test_case "sparse backend incremental" `Quick
            test_sparse_backend_incremental;
          Alcotest.test_case "parameter fuzz" `Slow test_param_fuzz;
          Alcotest.test_case "dual values" `Quick test_dual_values;
        ] );
    ]
