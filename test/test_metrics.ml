(* Tests for the metrics registry (Lubt_obs.Metrics) and the
   Prometheus text exposition (Lubt_obs.Prometheus): bucket layout and
   indexing, counter/gauge/histogram semantics across enable/disable
   and reset, the 4-domain concurrent record/merge race, golden label
   escaping, bucket cumulativity with the +Inf terminator, header
   grouping of labelled families, the nearest-rank percentile vs
   bucketed quantile agreement that pins the serve breaker's p95
   rewrite, and the serve [metrics] op / Prometheus consistency. *)

module Metrics = Lubt_obs.Metrics
module Prometheus = Lubt_obs.Prometheus
module Json = Lubt_obs.Json
module Stats = Lubt_util.Stats
module Prng = Lubt_util.Prng
module Serve = Lubt_experiments.Serve

(* every test records into the one process-wide registry: unique metric
   names per test keep them independent, and each recording test
   re-enables after itself is done *)
let with_enabled f =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable f

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let find_sample name =
  List.find_opt
    (fun (s : Metrics.sample) -> s.Metrics.s_name = name)
    (Metrics.snapshot ())

let counter_value name =
  match find_sample name with
  | Some { Metrics.s_value = Metrics.Counter v; _ } -> v
  | _ -> nan

(* ------------------------------------------------------------------ *)
(* Bucket layout                                                       *)
(* ------------------------------------------------------------------ *)

let test_buckets_log () =
  let b = Metrics.Buckets.log ~lo:0.01 ~hi:10_000.0 ~count:28 in
  Alcotest.(check int) "count" 28 (Array.length b);
  Alcotest.(check (float 1e-12)) "first is lo" 0.01 b.(0);
  Alcotest.(check (float 0.0)) "last is exactly hi" 10_000.0 b.(27);
  Array.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool) "strictly ascending" true (v > b.(i - 1)))
    b;
  Alcotest.check_raises "lo must be positive"
    (Invalid_argument "Metrics.Buckets.log: need 0 < lo < hi") (fun () ->
      ignore (Metrics.Buckets.log ~lo:0.0 ~hi:1.0 ~count:4))

let test_buckets_index () =
  let b = [| 1.0; 2.0; 4.0; 8.0 |] in
  let idx = Metrics.Buckets.index b in
  Alcotest.(check int) "below lo" 0 (idx 0.5);
  Alcotest.(check int) "boundary is inclusive" 0 (idx 1.0);
  Alcotest.(check int) "interior" 2 (idx 3.0);
  Alcotest.(check int) "top boundary" 3 (idx 8.0);
  Alcotest.(check int) "above hi -> overflow" 4 (idx 9.0);
  Alcotest.(check int) "nan -> overflow" 4 (idx nan);
  Alcotest.(check int) "+inf -> overflow" 4 (idx infinity)

let test_buckets_quantile () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* counts: 1 in (0,1], 2 in (1,2], 0 in (2,4], 3 overflow *)
  let counts = [| 1; 2; 0; 3 |] in
  let q p = Metrics.Buckets.quantile ~bounds ~counts p in
  Alcotest.(check (float 0.0)) "empty -> 0"
    0.0
    (Metrics.Buckets.quantile ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5);
  Alcotest.(check (float 0.0)) "min rank" 1.0 (q 0.0);
  Alcotest.(check (float 0.0)) "median in second bucket" 2.0 (q 0.5);
  Alcotest.(check (float 0.0)) "overflow reports last finite bound" 4.0 (q 1.0)

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_counter_roundtrip () =
  with_enabled (fun () ->
      let c = Metrics.counter ~help:"h" "tm_counter_total" in
      Metrics.incr c;
      Metrics.incr ~by:2.5 c;
      Alcotest.(check (float 1e-9)) "sum" 3.5 (counter_value "tm_counter_total");
      (* same (name, labels) -> the same underlying metric *)
      let c' = Metrics.counter "tm_counter_total" in
      Metrics.incr c';
      Alcotest.(check (float 1e-9))
        "idempotent registration shares storage" 4.5
        (counter_value "tm_counter_total"))

let test_disabled_is_noop () =
  let c = Metrics.counter "tm_disabled_total" in
  Metrics.disable ();
  Metrics.incr c;
  Metrics.incr ~by:100.0 c;
  Alcotest.(check (float 0.0)) "nothing recorded" 0.0
    (counter_value "tm_disabled_total")

let test_kind_mismatch () =
  ignore (Metrics.counter "tm_kind_clash");
  match Metrics.gauge "tm_kind_clash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"

let test_gauge_and_reset () =
  with_enabled (fun () ->
      let g = Metrics.gauge "tm_gauge" in
      let c = Metrics.counter "tm_reset_total" in
      Metrics.set g 7.0;
      Metrics.set g 42.0;
      Metrics.incr c;
      (match find_sample "tm_gauge" with
      | Some { Metrics.s_value = Metrics.Gauge v; _ } ->
        Alcotest.(check (float 0.0)) "last write wins" 42.0 v
      | _ -> Alcotest.fail "gauge sample missing");
      Metrics.reset ();
      (match find_sample "tm_gauge" with
      | Some { Metrics.s_value = Metrics.Gauge v; _ } ->
        Alcotest.(check (float 0.0)) "reset zeroes gauges" 0.0 v
      | _ -> Alcotest.fail "gauge sample missing after reset");
      Alcotest.(check (float 0.0)) "reset orphans counter cells" 0.0
        (counter_value "tm_reset_total"))

let test_histogram_snapshot () =
  with_enabled (fun () ->
      let h =
        Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "tm_hist_ms"
      in
      List.iter (Metrics.observe h) [ 0.5; 1.5; 1.6; 3.0; 100.0 ];
      match find_sample "tm_hist_ms" with
      | Some { Metrics.s_value = Metrics.Histogram s; _ } ->
        Alcotest.(check int) "count" 5 s.Metrics.h_count;
        Alcotest.(check (float 1e-9)) "sum" 106.6 s.Metrics.h_sum;
        Alcotest.(check (array int)) "per-bucket counts"
          [| 1; 2; 1; 1 |] s.Metrics.h_counts;
        Alcotest.(check int) "counts sum to count" s.Metrics.h_count
          (Array.fold_left ( + ) 0 s.Metrics.h_counts)
      | _ -> Alcotest.fail "histogram sample missing")

(* Four domains hammer one counter and one histogram while the main
   domain snapshots concurrently: snapshots must never crash or report
   a total above the true one, and after the join the merge is exact. *)
let test_concurrent_domains () =
  with_enabled (fun () ->
      let c = Metrics.counter "tm_race_total" in
      let h =
        Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "tm_race_ms"
      in
      let per_domain = 25_000 in
      let domains = 4 in
      let spin = Atomic.make true in
      let snapshotter =
        Domain.spawn (fun () ->
            while Atomic.get spin do
              List.iter
                (fun (s : Metrics.sample) ->
                  match s.Metrics.s_value with
                  | Metrics.Histogram hs ->
                    assert (
                      Array.fold_left ( + ) 0 hs.Metrics.h_counts
                      = hs.Metrics.h_count)
                  | _ -> ())
                (Metrics.snapshot ())
            done)
      in
      let workers =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Metrics.incr c;
                  Metrics.observe h (float_of_int ((i + d) mod 10))
                done))
      in
      List.iter Domain.join workers;
      Atomic.set spin false;
      Domain.join snapshotter;
      Alcotest.(check (float 0.0))
        "counter merges exactly"
        (float_of_int (domains * per_domain))
        (counter_value "tm_race_total");
      match find_sample "tm_race_ms" with
      | Some { Metrics.s_value = Metrics.Histogram s; _ } ->
        Alcotest.(check int) "histogram count merges exactly"
          (domains * per_domain) s.Metrics.h_count;
        Alcotest.(check int) "bucket counts merge exactly"
          (domains * per_domain)
          (Array.fold_left ( + ) 0 s.Metrics.h_counts)
      | _ -> Alcotest.fail "histogram sample missing")

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_prometheus_escaping_golden () =
  let sample =
    {
      Metrics.s_name = "esc_total";
      s_help = "has \\ and \"quotes\"\nnewline";
      s_labels = [ ("path", "a\\b\"c\nd") ];
      s_value = Metrics.Counter 3.0;
    }
  in
  let expected =
    "# HELP esc_total has \\\\ and \"quotes\"\\nnewline\n"
    ^ "# TYPE esc_total counter\n"
    ^ "esc_total{path=\"a\\\\b\\\"c\\nd\"} 3\n"
  in
  Alcotest.(check string) "golden" expected (Prometheus.render [ sample ])

let test_prometheus_histogram_cumulative () =
  let sample =
    {
      Metrics.s_name = "lat_ms";
      s_help = "";
      s_labels = [ ("op", "solve") ];
      s_value =
        Metrics.Histogram
          {
            Metrics.h_bounds = [| 1.0; 2.0; 4.0 |];
            h_counts = [| 1; 2; 0; 3 |];
            h_sum = 10.5;
            h_count = 6;
          };
    }
  in
  let expected =
    "# TYPE lat_ms histogram\n"
    ^ "lat_ms_bucket{op=\"solve\",le=\"1\"} 1\n"
    ^ "lat_ms_bucket{op=\"solve\",le=\"2\"} 3\n"
    ^ "lat_ms_bucket{op=\"solve\",le=\"4\"} 3\n"
    ^ "lat_ms_bucket{op=\"solve\",le=\"+Inf\"} 6\n"
    ^ "lat_ms_sum{op=\"solve\"} 10.5\n"
    ^ "lat_ms_count{op=\"solve\"} 6\n"
  in
  Alcotest.(check string) "cumulative buckets terminated by +Inf" expected
    (Prometheus.render [ sample ])

let test_prometheus_grouping () =
  (* a labelled family interleaved with another metric must still render
     as one # TYPE header with its series together *)
  let c name labels v =
    { Metrics.s_name = name; s_help = ""; s_labels = labels;
      s_value = Metrics.Counter v }
  in
  let rendered =
    Prometheus.render
      [ c "fam_total" [ ("rung", "certified") ] 1.0;
        c "other_total" [] 5.0;
        c "fam_total" [ ("rung", "heuristic") ] 2.0 ]
  in
  let expected =
    "# TYPE fam_total counter\n"
    ^ "fam_total{rung=\"certified\"} 1\n"
    ^ "fam_total{rung=\"heuristic\"} 2\n"
    ^ "# TYPE other_total counter\n"
    ^ "other_total 5\n"
  in
  Alcotest.(check string) "one header per family" expected rendered

let test_prometheus_tokens () =
  let g name v =
    { Metrics.s_name = name; s_help = ""; s_labels = [];
      s_value = Metrics.Gauge v }
  in
  let rendered =
    Prometheus.render [ g "g_nan" nan; g "g_inf" infinity ]
  in
  Alcotest.(check bool) "NaN token" true (contains rendered "g_nan NaN\n");
  Alcotest.(check bool) "+Inf token" true (contains rendered "g_inf +Inf\n")

(* ------------------------------------------------------------------ *)
(* percentile vs bucketed quantile (the breaker p95 pin)               *)
(* ------------------------------------------------------------------ *)

(* The serve breaker used to sort its latency window and take the
   nearest-rank p95 (exactly [Stats.percentile]); it now reads the p95
   from bucket counts. Pin their agreement: the bucketed estimate is
   the upper bound of the bucket holding the exact nearest-rank sample,
   i.e. same bucket, and never below the exact value. *)
let prop_percentile_quantile_agree =
  QCheck.Test.make ~name:"Stats.percentile vs Buckets.quantile" ~count:200
    QCheck.(pair (int_range 1 400) (int_bound 97))
    (fun (n, pseed) ->
      let rng = Prng.create (1000 + n + (pseed * 131)) in
      let bounds = Metrics.Buckets.log ~lo:0.01 ~hi:10_000.0 ~count:28 in
      let samples =
        Array.init n (fun _ -> 0.01 *. exp (Prng.float rng 13.0))
      in
      let counts = Array.make (Array.length bounds + 1) 0 in
      Array.iter
        (fun v ->
          let i = Metrics.Buckets.index bounds v in
          counts.(i) <- counts.(i) + 1)
        samples;
      let sorted = Array.copy samples in
      Array.sort Float.compare sorted;
      let p = float_of_int (2 + pseed) in
      let exact = Stats.percentile sorted p in
      let est = Metrics.Buckets.quantile ~bounds ~counts (p /. 100.0) in
      (* the exact sample and the estimate sit in the same bucket, and
         the estimate (a bucket upper bound) never undershoots *)
      Metrics.Buckets.index bounds exact = Metrics.Buckets.index bounds est
      && est >= exact)

let test_percentile_empty () =
  Alcotest.(check bool) "empty -> nan" true
    (Float.is_nan (Stats.percentile [||] 95.0));
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Stats.percentile [| 7.0 |] 95.0)

(* ------------------------------------------------------------------ *)
(* serve: the metrics op and the exposition agree                      *)
(* ------------------------------------------------------------------ *)

let test_serve_metrics_op () =
  with_enabled (fun () ->
      let reply = Serve.response_of_request "{\"id\": \"m\", \"op\": \"metrics\"}" in
      match Json.parse reply with
      | Error e -> Alcotest.failf "metrics reply unparseable: %s" e
      | Ok j ->
        Alcotest.(check bool) "ok" true
          (Json.member "ok" j = Some (Json.Bool true));
        let samples =
          match Json.member "metrics" j with
          | Some (Json.Arr l) -> l
          | _ -> Alcotest.fail "no metrics array"
        in
        (* the JSON dump and the Prometheus text come from the same
           registry, so every dumped name must appear in the text *)
        let text = Prometheus.render (Metrics.snapshot ()) in
        List.iter
          (fun s ->
            match Json.member "name" s with
            | Some (Json.Str name) ->
              Alcotest.(check bool)
                ("exposition carries " ^ name)
                true (contains text name)
            | _ -> Alcotest.fail "sample without name")
          samples)

let () =
  Alcotest.run "metrics"
    [
      ( "buckets",
        [
          Alcotest.test_case "log layout" `Quick test_buckets_log;
          Alcotest.test_case "index" `Quick test_buckets_index;
          Alcotest.test_case "quantile" `Quick test_buckets_quantile;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter_roundtrip;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge and reset" `Quick test_gauge_and_reset;
          Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
          Alcotest.test_case "4-domain record/merge race" `Quick
            test_concurrent_domains;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "escaping golden" `Quick
            test_prometheus_escaping_golden;
          Alcotest.test_case "histogram cumulativity" `Quick
            test_prometheus_histogram_cumulative;
          Alcotest.test_case "family grouping" `Quick test_prometheus_grouping;
          Alcotest.test_case "non-finite tokens" `Quick test_prometheus_tokens;
        ] );
      ( "quantiles",
        [
          QCheck_alcotest.to_alcotest prop_percentile_quantile_agree;
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_empty;
        ] );
      ( "serve",
        [ Alcotest.test_case "metrics op" `Quick test_serve_metrics_op ] );
    ]
