(** Shared randomised-instance generators for the LP test-suites.

    Every suite that cross-checks solver engines used to carry its own
    copy of a [random_problem]; they are consolidated here so the
    distributions stay in sync and new suites (the fast-path equivalence
    layer in particular) can reuse them.  The [Prng]-driven generators
    preserve the exact call sequences of their original call sites, so
    the seeded suites keep their historical case streams.

    Beyond the ports, this module adds
    - {!certified_problem}: bounded LPs with a {e constructed} optimum —
      a primal point and a dual certificate are chosen first and the
      objective is back-derived, so the optimal value is known exactly
      (all arithmetic stays on small integers);
    - {!random_ebf}: random EBF instances (sinks, bounds, topology) for
      engine cross-checks on the paper's LP family;
    - a first-class {!spec} representation with a QCheck generator,
      printer (CPLEX-LP text) and structural shrinker, for
      property-based tests with useful counterexamples. *)

module Problem = Lubt_lp.Problem
module Lp_format = Lubt_lp.Lp_format
module Prng = Lubt_util.Prng
module Instance = Lubt_core.Instance
module Topogen = Lubt_topo.Topogen
module Point = Lubt_geom.Point

(* ------------------------------------------------------------------ *)
(* Prng-driven generators (ports of the per-suite originals)           *)
(* ------------------------------------------------------------------ *)

(* General mixed-bound LP: the cross-check workhorse.  [fixed_vars]
   adds a fixed-variable kind (exercising presolve substitution) while
   keeping the draw sequence of both original variants. *)
let random_problem ?(fixed_vars = false) rng =
  let nv = 1 + Prng.int rng 6 in
  let nr = Prng.int rng 8 in
  let p = Problem.create () in
  for _ = 1 to nv do
    let kind = Prng.int rng (if fixed_vars then 5 else 4) in
    let lo, up =
      match kind with
      | 0 -> (0.0, infinity)
      | 1 -> (float_of_int (Prng.int rng 5 - 2), infinity)
      | 2 ->
        let l = float_of_int (Prng.int rng 5 - 2) in
        (l, l +. float_of_int (Prng.int rng 6))
      | 3 when fixed_vars ->
        (* fixed variable: exercises substitution *)
        let v = float_of_int (Prng.int rng 7 - 3) in
        (v, v)
      | _ -> (neg_infinity, infinity)
    in
    let obj = float_of_int (Prng.int rng 9 - 4) in
    ignore (Problem.add_var ~lo ~up ~obj p)
  done;
  for _ = 1 to nr do
    let coeffs = ref [] in
    for j = 0 to nv - 1 do
      if Prng.int rng 3 > 0 then begin
        let c = float_of_int (Prng.int rng 7 - 3) in
        if c <> 0.0 then coeffs := (j, c) :: !coeffs
      end
    done;
    let base = float_of_int (Prng.int rng 21 - 10) in
    let lo, up =
      match Prng.int rng 4 with
      | 0 -> (base, infinity)
      | 1 -> (neg_infinity, base)
      | 2 -> (base, base +. float_of_int (Prng.int rng 8))
      | _ -> (base, base)
    in
    ignore (Problem.add_row p ~lo ~up !coeffs)
  done;
  p

(* Guaranteed-feasible covering LP (x >= 0, >=-rows with positive
   coefficients): every optimal solve certifies, so corruption sweeps
   can assert the certifier's verdicts both ways. *)
let random_bounded_problem rng =
  let nv = 2 + Prng.int rng 5 in
  let p = Problem.create () in
  for _ = 1 to nv do
    let up =
      if Prng.bool rng then infinity else float_of_int (3 + Prng.int rng 8)
    in
    ignore (Problem.add_var ~lo:0.0 ~up ~obj:(1.0 +. Prng.float rng 4.0) p)
  done;
  for _ = 1 to 1 + Prng.int rng 4 do
    let coeffs = ref [] in
    for j = 0 to nv - 1 do
      if Prng.int rng 3 > 0 then
        coeffs := (j, 1.0 +. Prng.float rng 3.0) :: !coeffs
    done;
    if !coeffs <> [] then
      ignore
        (Problem.add_row p ~lo:(1.0 +. Prng.float rng 9.0) ~up:infinity !coeffs)
  done;
  p

(* Tuned for the CPLEX-LP writer: scientific-notation magnitudes,
   free/fixed/one-sided bounds, a variable referenced only by its
   Bounds line, and no range rows (the writer splits those in two by
   design, so they cannot round-trip structurally). *)
let random_format_problem rng =
  let nv = 2 + Prng.int rng 6 in
  let p = Problem.create () in
  let mag () =
    [| 1.0; 0.5; 2.5e-7; 3.0e6; 1.0e12; 1.25e-3; 7.0 |].(Prng.int rng 7)
  in
  for k = 0 to nv - 1 do
    let lo, up =
      match Prng.int rng 5 with
      | 0 -> (0.0, infinity)
      | 1 -> (neg_infinity, infinity)
      | 2 -> (neg_infinity, float_of_int (Prng.int rng 9 - 4))
      | 3 ->
        let v = mag () *. float_of_int (Prng.int rng 5 - 2) in
        (v, v)
      | _ ->
        let l = float_of_int (Prng.int rng 9 - 4) in
        (l, l +. float_of_int (1 + Prng.int rng 6))
    in
    let obj =
      if Prng.bool rng then 0.0 else mag () *. float_of_int (Prng.int rng 5 - 2)
    in
    ignore (Problem.add_var ~lo ~up ~obj ~name:(Printf.sprintf "x%d" k) p)
  done;
  for _ = 1 to Prng.int rng 6 do
    let coeffs = ref [] in
    (* x(nv-1) never enters a row, so with a zero objective it only
       appears in the Bounds section *)
    for j = 0 to nv - 2 do
      if Prng.int rng 3 > 0 then begin
        let c = mag () *. float_of_int (Prng.int rng 7 - 3) in
        if c <> 0.0 then coeffs := (j, c) :: !coeffs
      end
    done;
    let base = mag () *. float_of_int (Prng.int rng 9 - 4) in
    let lo, up =
      match Prng.int rng 3 with
      | 0 -> (base, infinity)
      | 1 -> (neg_infinity, base)
      | _ -> (base, base)
    in
    ignore (Problem.add_row p ~lo ~up !coeffs)
  done;
  p

(* ------------------------------------------------------------------ *)
(* LPs with a constructed (exactly known) optimum                      *)
(* ------------------------------------------------------------------ *)

type certified = {
  c_problem : Problem.t;
  c_optimum : float;  (** exact optimal value, by construction *)
  c_primal : float array;  (** an optimal point witnessing it *)
}

(* Pick the optimal point x*, the constraint matrix, the bounds and a
   complementary dual pair (y, z) first; then derive the objective as
   c = A^T y + z.  Weak duality gives, for any feasible x,

     c.x = y.(Ax) + z.x >= sum_i y_i b_i + sum_j z_j bnd_j = c.x*

   provided each multiplier respects its sign convention (y_i >= 0 only
   on rows active at their lower bound at x*, y_i <= 0 only at upper,
   equality rows free; z_j >= 0 only for x*_j at its lower bound,
   z_j <= 0 at upper, interior/free variables z_j = 0).  So x* is
   optimal and the optimal value is exactly c.x* — every quantity is a
   small integer, hence exact in floating point. *)
let certified_problem rng =
  let nv = 1 + Prng.int rng 5 in
  let nr = Prng.int rng 6 in
  let xstar = Array.init nv (fun _ -> float_of_int (Prng.int rng 7 - 3)) in
  let c = Array.make nv 0.0 in
  let p = Problem.create () in
  (* variable bounds + reduced costs z (accumulated straight into c) *)
  let var_bounds =
    Array.init nv (fun j ->
        let x = xstar.(j) in
        match Prng.int rng 4 with
        | 0 ->
          (* active at lower: z_j >= 0 *)
          c.(j) <- float_of_int (Prng.int rng 4);
          (x, x +. float_of_int (Prng.int rng 5))
        | 1 ->
          (* active at upper: z_j <= 0 *)
          c.(j) <- -.float_of_int (Prng.int rng 4);
          (x -. float_of_int (Prng.int rng 5), x)
        | 2 ->
          (* strict interior: z_j = 0 *)
          (x -. float_of_int (1 + Prng.int rng 3),
           x +. float_of_int (1 + Prng.int rng 3))
        | _ -> (neg_infinity, infinity))
  in
  (* rows: integer coefficients, activity computed at x*, row bounds and
     multiplier sign chosen together *)
  let rows = ref [] in
  for _ = 1 to nr do
    let coeffs = ref [] in
    let act = ref 0.0 in
    for j = 0 to nv - 1 do
      if Prng.int rng 3 > 0 then begin
        let a = float_of_int (Prng.int rng 7 - 3) in
        if a <> 0.0 then begin
          coeffs := (j, a) :: !coeffs;
          act := !act +. (a *. xstar.(j))
        end
      end
    done;
    let b = !act in
    let lo, up, y =
      match Prng.int rng 4 with
      | 0 -> (b, b, float_of_int (Prng.int rng 5 - 2)) (* equality: y free *)
      | 1 -> (b, infinity, float_of_int (Prng.int rng 3)) (* >=: y >= 0 *)
      | 2 -> (neg_infinity, b, -.float_of_int (Prng.int rng 3)) (* <= *)
      | _ ->
        (* slack on both sides: y = 0 *)
        (b -. float_of_int (1 + Prng.int rng 5),
         b +. float_of_int (1 + Prng.int rng 5),
         0.0)
    in
    List.iter (fun (j, a) -> c.(j) <- c.(j) +. (y *. a)) !coeffs;
    rows := (lo, up, !coeffs) :: !rows
  done;
  for j = 0 to nv - 1 do
    let lo, up = var_bounds.(j) in
    ignore (Problem.add_var ~lo ~up ~obj:c.(j) p)
  done;
  List.iter
    (fun (lo, up, coeffs) -> ignore (Problem.add_row p ~lo ~up coeffs))
    (List.rev !rows);
  let optimum = ref 0.0 in
  for j = 0 to nv - 1 do
    optimum := !optimum +. (c.(j) *. xstar.(j))
  done;
  { c_problem = p; c_optimum = !optimum; c_primal = xstar }

(* ------------------------------------------------------------------ *)
(* Random EBF instances                                                *)
(* ------------------------------------------------------------------ *)

(* Random sinks (optionally a source) on a 100x100 grid with a random
   binary topology.  Feasible instances get a delay window spanning the
   radius; [infeasible] forces the upper bound below the radius, so no
   lower/upper-bounded tree exists and engines must agree on the
   verdict too.  [min_sinks]/[sink_span] size the instance: the default
   3..10 sinks converges in one row-generation round on most draws,
   while ~25+ sinks reliably produce multi-round lazy solves (for
   warm-start uptake tests). *)
let random_ebf ?(infeasible = false) ?(min_sinks = 3) ?(sink_span = 8) rng =
  let m = min_sinks + Prng.int rng sink_span in
  let with_source = Prng.bool rng in
  let coord () = Prng.float rng 100.0 in
  let sinks = Array.init m (fun _ -> Point.make (coord ()) (coord ())) in
  let source =
    if with_source then Some (Point.make (coord ()) (coord ())) else None
  in
  let base =
    Instance.uniform_bounds ?source ~sinks ~lower:0.0 ~upper:infinity ()
  in
  let r = Instance.radius base in
  let l, u =
    if infeasible then (0.0, r *. (0.1 +. Prng.float rng 0.8))
    else
      let u = r *. (1.0 +. Prng.float rng 1.0) in
      (Prng.float rng u, u)
  in
  let inst = Instance.uniform_bounds ?source ~sinks ~lower:l ~upper:u () in
  let tree = Topogen.random_binary rng ~num_sinks:m ~source_edge:with_source in
  (inst, tree)

(* ------------------------------------------------------------------ *)
(* First-class specs for QCheck property tests                         *)
(* ------------------------------------------------------------------ *)

type var_spec = { v_lo : float; v_up : float; v_obj : float }
type row_spec = { r_lo : float; r_up : float; r_coeffs : (int * float) list }

type spec = { s_vars : var_spec list; s_rows : row_spec list }
(** A bounded LP as plain data, so shrinking can drop rows, variables
    and coefficients structurally instead of replaying a smaller seed. *)

let problem_of_spec s =
  let p = Problem.create () in
  List.iter
    (fun v -> ignore (Problem.add_var ~lo:v.v_lo ~up:v.v_up ~obj:v.v_obj p))
    s.s_vars;
  List.iter
    (fun r -> ignore (Problem.add_row p ~lo:r.r_lo ~up:r.r_up r.r_coeffs))
    s.s_rows;
  p

(* Same distribution as {!random_problem}, reified. *)
let spec_of_rng rng =
  let nv = 1 + Prng.int rng 6 in
  let nr = Prng.int rng 8 in
  let vars = ref [] in
  for _ = 1 to nv do
    let lo, up =
      match Prng.int rng 4 with
      | 0 -> (0.0, infinity)
      | 1 -> (float_of_int (Prng.int rng 5 - 2), infinity)
      | 2 ->
        let l = float_of_int (Prng.int rng 5 - 2) in
        (l, l +. float_of_int (Prng.int rng 6))
      | _ -> (neg_infinity, infinity)
    in
    let obj = float_of_int (Prng.int rng 9 - 4) in
    vars := { v_lo = lo; v_up = up; v_obj = obj } :: !vars
  done;
  let rows = ref [] in
  for _ = 1 to nr do
    let coeffs = ref [] in
    for j = 0 to nv - 1 do
      if Prng.int rng 3 > 0 then begin
        let c = float_of_int (Prng.int rng 7 - 3) in
        if c <> 0.0 then coeffs := (j, c) :: !coeffs
      end
    done;
    let base = float_of_int (Prng.int rng 21 - 10) in
    let lo, up =
      match Prng.int rng 4 with
      | 0 -> (base, infinity)
      | 1 -> (neg_infinity, base)
      | 2 -> (base, base +. float_of_int (Prng.int rng 8))
      | _ -> (base, base)
    in
    rows := { r_lo = lo; r_up = up; r_coeffs = !coeffs } :: !rows
  done;
  { s_vars = List.rev !vars; s_rows = List.rev !rows }

let spec_gen : spec QCheck.Gen.t =
 fun st ->
  (* seed a splitmix64 stream from QCheck's state so replaying a QCheck
     seed replays the instance *)
  let seed = Random.State.bits st lor (Random.State.bits st lsl 30) in
  spec_of_rng (Prng.create seed)

(* Counterexamples print as the CPLEX-LP text of the instance: directly
   readable and feedable back through the fixture pipeline. *)
let print_spec s = Lp_format.to_string (problem_of_spec s)

(* Structural shrinker: drop a row, drop a variable (reindexing the
   surviving coefficients), or drop a single coefficient.  Each step
   strictly reduces instance size, so shrinking terminates. *)
let shrink_spec s yield =
  List.iteri
    (fun i _ ->
      yield { s with s_rows = List.filteri (fun k _ -> k <> i) s.s_rows })
    s.s_rows;
  if List.length s.s_vars > 1 then
    List.iteri
      (fun j _ ->
        yield
          {
            s_vars = List.filteri (fun k _ -> k <> j) s.s_vars;
            s_rows =
              List.map
                (fun r ->
                  {
                    r with
                    r_coeffs =
                      List.filter_map
                        (fun (k, c) ->
                          if k = j then None
                          else Some ((if k > j then k - 1 else k), c))
                        r.r_coeffs;
                  })
                s.s_rows;
          })
      s.s_vars;
  List.iteri
    (fun i r ->
      List.iteri
        (fun k _ ->
          let r' =
            { r with r_coeffs = List.filteri (fun k' _ -> k' <> k) r.r_coeffs }
          in
          yield
            { s with s_rows = List.mapi (fun i' r0 -> if i' = i then r' else r0) s.s_rows })
        r.r_coeffs)
    s.s_rows

let arbitrary_spec =
  QCheck.make ~print:print_spec ~shrink:shrink_spec spec_gen
