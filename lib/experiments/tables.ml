module Benchmarks = Lubt_data.Benchmarks
module Bst_dme = Lubt_bst.Bst_dme
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Zeroskew = Lubt_core.Zeroskew
module Tree = Lubt_topo.Tree
module Status = Lubt_lp.Status

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  bench : string;
  skew_rel : float;
  shortest : float;
  longest : float;
  bst_cost : float;
  lubt_cost : float;
}

let table1_skews = [ 0.0; 0.01; 0.05; 0.1; 0.5; 1.0; 2.0; infinity ]

(* Each (benchmark, skew) cell is an independent baseline + LP solve, so
   the sweeps fan the flattened cell list over a domain pool; Pool.map
   returns results in input order, so row order never depends on jobs. *)
let table1 ?(jobs = 1) ?(size = Benchmarks.Scaled) ?(clustered = false) () =
  let cells =
    List.concat_map
      (fun spec -> List.map (fun skew_rel -> (spec, skew_rel)) table1_skews)
      (if clustered then Benchmarks.clustered size else Benchmarks.specs size)
  in
  Lubt_util.Pool.map ~jobs
    (fun (spec, skew_rel) ->
      let b = Protocol.run_baseline spec ~skew_rel in
      let l = Protocol.run_lubt_from_baseline b in
      {
        bench = spec.Benchmarks.name;
        skew_rel;
        shortest = (if skew_rel = infinity then 0.0 else b.Protocol.shortest_rel);
        longest = (if skew_rel = infinity then infinity else b.Protocol.longest_rel);
        bst_cost = b.Protocol.bst.Bst_dme.cost;
        lubt_cost = l.Protocol.cost;
      })
    cells

let print_table1 rows =
  Report.print ~title:"Table 1: routing costs for the [9]-style baseline and for LUBT"
    ~header:[ "bench"; "skew"; "shortest"; "longest"; "[9] cost"; "LUBT cost" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Report.fnum3 r.skew_rel;
           Report.fnum3 r.shortest;
           Report.fnum3 r.longest;
           Report.fnum1 r.bst_cost;
           Report.fnum1 r.lubt_cost;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

type t2_row = {
  bench : string;
  skew_rel : float;
  lower_rel : float;
  upper_rel : float;
  from_baseline : bool;
  cost : float;
}

let table2 ?(jobs = 1) ?(size = Benchmarks.Scaled) () =
  let benches = [ "prim1s"; "prim2s" ] in
  let skews = [ 0.3; 0.5 ] in
  let cells =
    List.concat_map
      (fun name -> List.map (fun skew -> (name, skew)) skews)
      benches
  in
  List.concat
    (Lubt_util.Pool.map ~jobs
       (fun (name, skew_rel) ->
          let spec = Benchmarks.find size name in
          let b = Protocol.run_baseline spec ~skew_rel in
          (* windows with the same width as the skew bound: the tightest
             admissible one, two shifted ones, and the window the baseline
             itself achieved (starred in the paper's table) *)
          let l_min = max 0.0 (1.0 -. skew_rel) in
          let candidates =
            [
              (l_min, false);
              (l_min +. 0.1, false);
              (b.Protocol.shortest_rel, true);
              (l_min +. 0.25, false);
            ]
          in
          List.map
            (fun (lower_rel, from_baseline) ->
              let upper_rel = lower_rel +. skew_rel in
              let r = Protocol.run_lubt b ~lower_rel ~upper_rel in
              {
                bench = name;
                skew_rel;
                lower_rel;
                upper_rel;
                from_baseline;
                cost = r.Protocol.cost;
              })
            candidates)
       cells)

let print_table2 rows =
  Report.print
    ~title:"Table 2: LUBT cost for the same skew but shifted [lower, upper] windows"
    ~header:[ "bench"; "skew"; "lower"; "upper"; "LUBT cost" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Report.fnum3 r.skew_rel;
           (if r.from_baseline then "*" else "") ^ Report.fnum3 r.lower_rel;
           (if r.from_baseline then "*" else "") ^ Report.fnum3 r.upper_rel;
           Report.fnum1 r.cost;
         ])
       rows);
  Printf.printf "(*: the window produced by the [9]-style baseline)\n%!"

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

type t3_row = {
  bench : string;
  lower_rel : float;
  upper_rel : float;
  cost : float;
}

let table3_windows =
  [
    (0.99, 1.0);
    (0.98, 1.0);
    (0.95, 1.0);
    (0.9, 1.0);
    (0.5, 1.0);
    (0.0, 1.0);
    (0.0, 1.5);
    (0.0, 2.0);
  ]

let table3 ?(jobs = 1) ?(size = Benchmarks.Scaled) () =
  let cells =
    List.concat_map
      (fun spec -> List.map (fun w -> (spec, w)) table3_windows)
      (Benchmarks.specs size)
  in
  Lubt_util.Pool.map ~jobs
    (fun (spec, (lower_rel, upper_rel)) ->
      (* the topology generator is guided by the available skew *)
      let b = Protocol.run_baseline spec ~skew_rel:(upper_rel -. lower_rel) in
      let r = Protocol.run_lubt b ~lower_rel ~upper_rel in
      { bench = spec.Benchmarks.name; lower_rel; upper_rel; cost = r.Protocol.cost })
    cells

let print_table3 rows =
  Report.print ~title:"Table 3: LUBT cost for various other bound combinations"
    ~header:[ "bench"; "lower"; "upper"; "LUBT cost" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Report.fnum3 r.lower_rel;
           Report.fnum3 r.upper_rel;
           Report.fnum1 r.cost;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

type curve_point = { lower_rel : float; upper_rel : float; cost : float }

let tradeoff ?(jobs = 1) ?(size = Benchmarks.Scaled) ?(bench = "prim2s") () =
  let spec = Benchmarks.find size bench in
  (* sweep from loose ([0,2]) to tight ([0.99,1]) windows: first widen the
     lower bound toward 1 with u fixed, after first tightening u to 1 *)
  let windows =
    [ (0.0, 2.0); (0.0, 1.75); (0.0, 1.5); (0.0, 1.25); (0.0, 1.0) ]
    @ List.map (fun l -> (l, 1.0)) [ 0.2; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.98; 0.99 ]
  in
  Lubt_util.Pool.map ~jobs
    (fun (lower_rel, upper_rel) ->
      let b = Protocol.run_baseline spec ~skew_rel:(upper_rel -. lower_rel) in
      let r = Protocol.run_lubt b ~lower_rel ~upper_rel in
      { lower_rel; upper_rel; cost = r.Protocol.cost })
    windows

let print_tradeoff points =
  Report.print
    ~title:"Figure 8: trade-off between tree cost and [lower, upper] bounds (prim2)"
    ~header:[ "lower"; "upper"; "LUBT cost" ]
    (List.map
       (fun p ->
         [ Report.fnum3 p.lower_rel; Report.fnum3 p.upper_rel; Report.fnum1 p.cost ])
       points);
  (* a small ASCII sparkline of the curve *)
  let costs = List.map (fun p -> p.cost) points in
  let lo = List.fold_left min infinity costs
  and hi = List.fold_left max neg_infinity costs in
  if hi > lo then begin
    Printf.printf "cost curve (left = loose bounds, right = tight):\n";
    List.iter
      (fun p ->
        let frac = (p.cost -. lo) /. (hi -. lo) in
        let bar = 2 + int_of_float (frac *. 48.0) in
        Printf.printf "[%.2f,%.2f] %s %s\n" p.lower_rel p.upper_rel
          (String.make bar '#') (Report.fnum1 p.cost))
      points;
    print_newline ()
  end

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

type ablation_report = {
  bench : string;
  lazy_rows : int;
  lazy_rounds : int;
  lazy_iterations : int;
  lazy_seconds : float;
  eager_rows : int;
  eager_iterations : int;
  eager_seconds : float;
  full_rows : int;
  objective_gap : float;
  zeroskew_closed_seconds : float;
  zeroskew_lp_seconds : float;
  zeroskew_gap : float;
}

let ablation ?(size = Benchmarks.Scaled) ?(bench = "prim1s") () =
  let spec = Benchmarks.find size bench in
  let b = Protocol.run_baseline spec ~skew_rel:0.5 in
  let lazy_run, lazy_seconds =
    Protocol.time (fun () ->
        Protocol.run_lubt
          ~options:{ Ebf.default_options with Ebf.lazy_steiner = true }
          b ~lower_rel:b.Protocol.shortest_rel ~upper_rel:b.Protocol.longest_rel)
  in
  let eager_run, eager_seconds =
    Protocol.time (fun () ->
        Protocol.run_lubt
          ~options:{ Ebf.default_options with Ebf.lazy_steiner = false }
          b ~lower_rel:b.Protocol.shortest_rel ~upper_rel:b.Protocol.longest_rel)
  in
  (* zero skew: closed form vs LP, on the same topology *)
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let relaxed = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let topo = b.Protocol.bst.Bst_dme.topology in
  let zs, zeroskew_closed_seconds =
    Protocol.time (fun () -> Zeroskew.balance relaxed topo)
  in
  let target = zs.Zeroskew.root_delay in
  let zinst = Instance.uniform_bounds ~source ~sinks ~lower:target ~upper:target () in
  let zlp, zeroskew_lp_seconds = Protocol.time (fun () -> Ebf.solve zinst topo) in
  let zs_cost =
    Lubt_util.Stats.sum (Array.sub zs.Zeroskew.lengths 1 (Tree.num_edges topo))
  in
  {
    bench;
    lazy_rows = lazy_run.Protocol.ebf.Ebf.lp_rows;
    lazy_rounds = lazy_run.Protocol.ebf.Ebf.rounds;
    lazy_iterations = lazy_run.Protocol.ebf.Ebf.lp_iterations;
    lazy_seconds;
    eager_rows = eager_run.Protocol.ebf.Ebf.lp_rows;
    eager_iterations = eager_run.Protocol.ebf.Ebf.lp_iterations;
    eager_seconds;
    full_rows = lazy_run.Protocol.ebf.Ebf.full_rows;
    objective_gap =
      abs_float (lazy_run.Protocol.cost -. eager_run.Protocol.cost);
    zeroskew_closed_seconds;
    zeroskew_lp_seconds;
    zeroskew_gap = abs_float (zs_cost -. zlp.Ebf.objective);
  }

let print_ablation r =
  Report.print ~title:(Printf.sprintf "Ablations (%s)" r.bench)
    ~header:[ "experiment"; "rows"; "rounds"; "simplex iters"; "seconds" ]
    [
      [
        "lazy Steiner rows (Sec 4.6)";
        string_of_int r.lazy_rows;
        string_of_int r.lazy_rounds;
        string_of_int r.lazy_iterations;
        Printf.sprintf "%.3f" r.lazy_seconds;
      ];
      [
        "eager (all rows)";
        string_of_int r.eager_rows;
        "1";
        string_of_int r.eager_iterations;
        Printf.sprintf "%.3f" r.eager_seconds;
      ];
      [ "full formulation rows"; string_of_int r.full_rows; "-"; "-"; "-" ];
      [
        "zero-skew closed form";
        "-";
        "-";
        "-";
        Printf.sprintf "%.4f" r.zeroskew_closed_seconds;
      ];
      [
        "zero-skew via LP";
        "-";
        "-";
        "-";
        Printf.sprintf "%.3f" r.zeroskew_lp_seconds;
      ];
    ];
  Printf.printf "lazy-vs-eager objective gap: %g; zero-skew closed-form vs LP gap: %g\n%!"
    r.objective_gap r.zeroskew_gap

(* ------------------------------------------------------------------ *)
(* Beam-width ablation                                                  *)
(* ------------------------------------------------------------------ *)

type beam_row = {
  beam : int;
  bst_cost : float;
  lubt_cost : float;
  seconds : float;
}

let beam_ablation ?(size = Benchmarks.Scaled) ?(bench = "prim1s") ?(skew_rel = 0.5) () =
  let spec = Benchmarks.find size bench in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius inst0 in
  let bound = skew_rel *. radius in
  List.map
    (fun beam ->
      let options =
        { Lubt_bst.Bst_dme.default_options with Lubt_bst.Bst_dme.beam_width = beam }
      in
      let bst, seconds =
        Protocol.time (fun () ->
            Lubt_bst.Bst_dme.route ~options ~skew_bound:bound ~source sinks)
      in
      let inst = Lubt_bst.Bst_dme.extract_instance bst in
      let lubt = Ebf.solve inst bst.Bst_dme.topology in
      {
        beam;
        bst_cost = bst.Bst_dme.cost;
        lubt_cost = lubt.Ebf.objective;
        seconds;
      })
    [ 1; 2; 4; 8; 12 ]

let print_beam_ablation rows =
  Report.print ~title:"Ablation: baseline beam width (skew 0.5)"
    ~header:[ "beam"; "[9]-style cost"; "LUBT cost"; "seconds" ]
    (List.map
       (fun r ->
         [
           string_of_int r.beam;
           Report.fnum1 r.bst_cost;
           Report.fnum1 r.lubt_cost;
           Printf.sprintf "%.3f" r.seconds;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Topology-optimisation ablation (the paper's future work)             *)
(* ------------------------------------------------------------------ *)

type topo_opt_row = {
  bench : string;
  window : float * float;
  baseline_topology_cost : float;
  optimised_cost : float;
  moves : int;
  lp_evaluations : int;
}

let topo_opt_ablation ?(size = Benchmarks.Scaled) ?(bench = "prim1s") () =
  let spec = Benchmarks.find size bench in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius inst0 in
  List.map
    (fun (lo, hi) ->
      let bound = (hi -. lo) *. radius in
      let bst = Lubt_bst.Bst_dme.route ~skew_bound:bound ~source sinks in
      let inst =
        Instance.uniform_bounds ~source ~sinks ~lower:(lo *. radius)
          ~upper:(hi *. radius) ()
      in
      let options =
        { Lubt_core.Topo_opt.default_options with
          Lubt_core.Topo_opt.max_evaluations = 150 }
      in
      let opt = Lubt_core.Topo_opt.improve ~options inst bst.Bst_dme.topology in
      {
        bench;
        window = (lo, hi);
        baseline_topology_cost = opt.Lubt_core.Topo_opt.initial_cost;
        optimised_cost = opt.Lubt_core.Topo_opt.cost;
        moves = opt.Lubt_core.Topo_opt.accepted;
        lp_evaluations = opt.Lubt_core.Topo_opt.evaluations;
      })
    [ (0.9, 1.0); (0.5, 1.0); (0.0, 1.5) ]

let print_topo_opt_ablation rows =
  Report.print
    ~title:
      "Ablation: bound-guided topology optimisation (paper Section 9 future \
       work)"
    ~header:
      [ "bench"; "window"; "generator topo"; "optimised"; "gain"; "moves"; "LPs" ]
    (List.map
       (fun r ->
         let lo, hi = r.window in
         [
           r.bench;
           Printf.sprintf "[%.2f,%.2f]" lo hi;
           Report.fnum1 r.baseline_topology_cost;
           Report.fnum1 r.optimised_cost;
           Printf.sprintf "%.2f%%"
             ((r.baseline_topology_cost -. r.optimised_cost)
             /. r.baseline_topology_cost *. 100.0);
           string_of_int r.moves;
           string_of_int r.lp_evaluations;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Optimality gap of the greedy baseline                                *)
(* ------------------------------------------------------------------ *)

type gap_row = {
  bench : string;
  skew_rel : float;
  greedy_cost : float;
  optimal_bst_cost : float;
  lubt_window_cost : float;
}

let optimality_gap ?(size = Benchmarks.Scaled) ?(bench = "prim1s") () =
  let spec = Benchmarks.find size bench in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let radius = Instance.radius inst0 in
  List.map
    (fun skew_rel ->
      let bound = skew_rel *. radius in
      let bst = Bst_dme.route ~skew_bound:bound ~source sinks in
      let opt = Lubt_core.Skew_lp.solve ~skew_bound:bound inst0 bst.Bst_dme.topology in
      let window = Bst_dme.extract_instance bst in
      let lubt = Ebf.solve window bst.Bst_dme.topology in
      {
        bench;
        skew_rel;
        greedy_cost = bst.Bst_dme.cost;
        optimal_bst_cost = opt.Lubt_core.Skew_lp.objective;
        lubt_window_cost = lubt.Ebf.objective;
      })
    [ 0.05; 0.1; 0.3; 0.5; 1.0 ]

let print_optimality_gap rows =
  Report.print
    ~title:
      "Extension: greedy baseline vs free-window optimum (Skew_lp) vs LUBT"
    ~header:
      [ "bench"; "skew"; "greedy [9]"; "LUBT @window"; "optimal BST"; "greedy gap" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Report.fnum3 r.skew_rel;
           Report.fnum1 r.greedy_cost;
           Report.fnum1 r.lubt_window_cost;
           Report.fnum1 r.optimal_bst_cost;
           Printf.sprintf "%.2f%%"
             ((r.greedy_cost -. r.optimal_bst_cost) /. r.optimal_bst_cost *. 100.0);
         ])
       rows);
  Printf.printf
    "(optimal BST = min cost over all delay windows of that width, per \
     topology;\n LUBT @window is pinned to the window the greedy run \
     happened to achieve)\n%!"

(* ------------------------------------------------------------------ *)
(* Elmore vs linear delay (Section 7)                                   *)
(* ------------------------------------------------------------------ *)

type elmore_row = {
  upper_rel : float;
  linear_cost : float;
  elmore_cost : float;
  elmore_violation : float;
  slp_iterations : int;
}

let elmore_table ?(bench = "prim1s") () =
  let spec = Benchmarks.find Benchmarks.Tiny bench in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let m = Array.length sinks in
  let wire = { Lubt_delay.Elmore.r_w = 0.0001; c_w = 0.0002 } in
  let loads = Array.make m 1.0 in
  let bst = Bst_dme.route ~source sinks in
  let topo = bst.Bst_dme.topology in
  let relaxed = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity () in
  let base = Ebf.solve relaxed topo in
  let max_lin =
    Array.fold_left max 0.0 (Lubt_delay.Linear.sink_delays topo base.Ebf.lengths)
  in
  let max_elm =
    Array.fold_left max 0.0
      (Lubt_delay.Elmore.sink_delays topo wire loads base.Ebf.lengths)
  in
  (* clock-style delay windows relative to each model's relaxed maximum:
     the lower bound forces elongation, which is where the models differ *)
  List.map
    (fun (lo_rel, hi_rel) ->
      let lin_inst =
        Instance.uniform_bounds ~source ~sinks ~lower:(lo_rel *. max_lin)
          ~upper:(hi_rel *. max_lin) ()
      in
      let lin = Ebf.solve lin_inst topo in
      let elm_inst =
        Instance.uniform_bounds ~source ~sinks ~lower:(lo_rel *. max_elm)
          ~upper:(hi_rel *. max_elm) ()
      in
      let elm = Lubt_core.Elmore_ebf.solve ~wire ~loads elm_inst topo in
      {
        upper_rel = hi_rel -. lo_rel;
        linear_cost = lin.Ebf.objective;
        elmore_cost = elm.Lubt_core.Elmore_ebf.cost;
        elmore_violation = elm.Lubt_core.Elmore_ebf.max_violation;
        slp_iterations = elm.Lubt_core.Elmore_ebf.outer_iterations;
      })
    [ (0.2, 1.05); (0.5, 1.05); (0.8, 1.05); (0.9, 1.05) ]

let print_elmore_table rows =
  Report.print
    ~title:"Extension: delay-window cost under linear vs Elmore delay (Section 7)"
    ~header:
      [ "window width"; "linear cost"; "elmore cost"; "residual"; "SLP iters" ]
    (List.map
       (fun r ->
         [
           Report.fnum3 r.upper_rel;
           Report.fnum1 r.linear_cost;
           Report.fnum1 r.elmore_cost;
           Printf.sprintf "%.2g" r.elmore_violation;
           string_of_int r.slp_iterations;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Global routing: BRBC [1] vs upper-bounded LUBT                        *)
(* ------------------------------------------------------------------ *)

type global_routing_row = {
  epsilon : float;
  mst_cost : float;
  brbc_cost : float;
  brbc_max_path : float;
  lubt_cost : float;
  lubt_max_path : float;
}

let global_routing_table ?(size = Benchmarks.Scaled) ?(bench = "prim1s") () =
  let spec = Benchmarks.find size bench in
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let mst_cost = Lubt_bst.Steiner.rmst_length (Array.append sinks [| source |]) in
  List.map
    (fun epsilon ->
      let brbc = Lubt_bst.Brbc.route ~epsilon ~source sinks in
      let radius = brbc.Lubt_bst.Brbc.radius in
      let cap = (1.0 +. epsilon) *. radius in
      let inst = Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:cap () in
      let lubt = Ebf.solve inst brbc.Lubt_bst.Brbc.topology in
      let d = Lubt_delay.Linear.sink_delays brbc.Lubt_bst.Brbc.topology lubt.Ebf.lengths in
      let lubt_max = Array.fold_left max 0.0 d in
      {
        epsilon;
        mst_cost;
        brbc_cost = brbc.Lubt_bst.Brbc.cost;
        brbc_max_path = brbc.Lubt_bst.Brbc.max_path /. radius;
        lubt_cost = lubt.Ebf.objective;
        lubt_max_path = lubt_max /. radius;
      })
    [ 0.1; 0.25; 0.5; 1.0; 2.0 ]

let print_global_routing_table rows =
  Report.print
    ~title:
      "Extension: global routing — BRBC [1] vs upper-bounded LUBT at radius \
       cap (1+eps)"
    ~header:
      [ "eps"; "MST"; "BRBC cost"; "BRBC maxpath"; "LUBT cost"; "LUBT maxpath" ]
    (List.map
       (fun r ->
         [
           Report.fnum3 r.epsilon;
           Report.fnum1 r.mst_cost;
           Report.fnum1 r.brbc_cost;
           Report.fnum3 r.brbc_max_path;
           Report.fnum1 r.lubt_cost;
           Report.fnum3 r.lubt_max_path;
         ])
       rows)
