(** The experimental protocol of Section 8.

    For a benchmark and a skew bound, run the [9]-style baseline router
    ({!Lubt_bst.Bst_dme}), extract the produced topology and the achieved
    shortest/longest sink delays, and re-solve the same topology with the
    LUBT LP using those delays as the [l]/[u] bounds. All delays and bounds
    are reported normalised to the instance radius, as in the paper's
    tables. *)

type baseline_run = {
  spec : Lubt_data.Benchmarks.spec;
  radius : float;
  skew_rel : float;  (** requested skew bound / radius; [infinity] allowed *)
  bst : Lubt_bst.Bst_dme.result;
  shortest_rel : float;  (** achieved dmin / radius *)
  longest_rel : float;  (** achieved dmax / radius *)
  bst_seconds : float;
}

val run_baseline : Lubt_data.Benchmarks.spec -> skew_rel:float -> baseline_run

type lubt_run = {
  lower_rel : float;
  upper_rel : float;
  cost : float;
  ebf : Lubt_core.Ebf.result;
  lubt_seconds : float;
}

val run_lubt :
  ?options:Lubt_core.Ebf.options ->
  baseline_run ->
  lower_rel:float ->
  upper_rel:float ->
  lubt_run
(** Solves the LUBT LP on the baseline's topology with bounds
    [lower_rel * radius, upper_rel * radius].
    @raise Failure if the LP does not reach optimality. *)

val run_lubt_from_baseline : ?options:Lubt_core.Ebf.options -> baseline_run -> lubt_run
(** The Table 1 protocol: bounds = the baseline's achieved
    [shortest, longest] delays ([0, infinity] for the unbounded-skew
    row). *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock timing helper. *)

(** {1 Machine-readable benchmark records}

    The [BENCH_lp.json] schema ([lubt-bench/4]) emitted by
    [bench/main.exe -- timing --json FILE]: a top-level object with
    [schema], [size] (tiny|scaled|full), [jobs] (worker domains the run
    was asked for), [cores] (the machine's
    {!Lubt_util.Pool.default_jobs}), [benchmarks] — an array of entries
    each holding [name], [ms_per_run], and, for LP-backed benchmarks,
    [solver] (the {!Lubt_lp.Simplex.stats} counters, times in
    milliseconds) and [ebf] (status, objective, row counts, and
    [round_stats], the per-round lazy-loop telemetry) — and, when a
    scaling sweep was run, [scaling]: one point per jobs count with the
    corpus wall-clock and the speedup over the jobs=1 run of the same
    corpus. A run invoked with [--no-scaling] instead records
    [scaling: []] plus [scaling_skipped: true], so a consumer (the
    [bench diff] gate) can tell "not measured" from "measured empty".
    Perf PRs append one such file per run to track the trajectory. *)

type bench_entry = {
  bench_name : string;
  ms_per_run : float;  (** OLS estimate from Bechamel *)
  solver : Lubt_lp.Simplex.stats option;
      (** counters of one representative solve (not the timed runs) *)
  ebf_result : Lubt_core.Ebf.result option;
      (** lazy-loop telemetry of the same representative solve *)
}

type scaling_point = {
  sc_jobs : int;  (** worker domains used for this corpus run *)
  sc_wall_s : float;  (** whole-corpus wall-clock, seconds *)
  sc_speedup : float;  (** jobs=1 wall-clock / this wall-clock *)
  sc_instances : int;  (** corpus size *)
}
(** One point of the domain-scaling curve recorded in [BENCH_lp.json]. *)

val bench_json :
  ?jobs:int -> ?scaling:scaling_point list -> ?scaling_skipped:bool ->
  size:string -> bench_entry list -> string
(** Renders entries as the [lubt-bench/4] JSON document (self-contained,
    no external JSON dependency; [inf]/[nan] become [null]). [jobs]
    (default 1) and [scaling] (default absent) fill the schema's
    parallel-sweep fields; [scaling_skipped] (default false) records an
    explicitly-skipped sweep as [scaling: []] with the [skipped]
    marker. *)

(** {1 JSON building blocks}

    Exposed for the batch driver and the CLI, which emit the same solver
    and EBF records as JSON-lines. All of them produce a single
    syntactically complete JSON value. *)

val json_escape : string -> string
(** Escapes a string for embedding between double quotes in JSON. *)

val json_float : float -> string
(** Shortest-roundtrip decimal rendering; [inf]/[nan] become [null]
    (JSON has no literals for them). *)

val solver_stats_json : Lubt_lp.Simplex.stats -> string
(** The [solver] object of the bench schema. *)

val ebf_result_json : Lubt_core.Ebf.result -> string
(** The [ebf] object of the bench schema ([status], [objective], row
    counts, [round_stats]). *)
