module Benchmarks = Lubt_data.Benchmarks
module Ebf = Lubt_core.Ebf
module Simplex = Lubt_lp.Simplex
module Status = Lubt_lp.Status
module Pool = Lubt_util.Pool

type spec = {
  id : string;
  bench : string;
  size : Benchmarks.size;
  seed : int;
  skew_rel : float;
}

let corpus ?(size = Benchmarks.Tiny) ?(per_bench = 5) ?(skew_rel = 0.5) ~seed
    () =
  List.concat_map
    (fun (bspec : Benchmarks.spec) ->
      List.init per_bench (fun k ->
          {
            id = Printf.sprintf "%s/s%d" bspec.Benchmarks.name (seed + k);
            bench = bspec.Benchmarks.name;
            size;
            seed = bspec.Benchmarks.seed + seed + k;
            skew_rel;
          }))
    (Benchmarks.specs size)

type outcome = {
  index : int;
  spec : spec;
  status : string;
  objective : float;
  bst_cost : float;
  lp_rows : int;
  full_rows : int;
  lp_iterations : int;
  rounds : int;
  certified : bool;
  wall_s : float;
  error : string option;
  solver : Simplex.stats option;
}

type summary = {
  outcomes : outcome list;
  jobs : int;
  failures : int;
  wall_s : float;
  merged : Simplex.stats;
}

let solve_one ~certify ~cache spec =
  let module Trace = Lubt_obs.Trace in
  let bspec =
    { (Benchmarks.find spec.size spec.bench) with Benchmarks.seed = spec.seed }
  in
  let t0 = Lubt_obs.Clock.now () in
  let b = Protocol.run_baseline bspec ~skew_rel:spec.skew_rel in
  let options =
    {
      Ebf.default_options with
      Ebf.check = (if certify then Lubt_lp.Certify.Full else Lubt_lp.Certify.Off);
      cache;
    }
  in
  (* run_lubt raises on a non-optimal status; the pool captures that and
     the outcome below reports it as an error *)
  let l = Protocol.run_lubt_from_baseline ~options b in
  let wall_s = Lubt_obs.Clock.now () -. t0 in
  if Trace.enabled () then
    Trace.complete ~t0 "batch.task" ~args:[ ("id", Trace.Str spec.id) ];
  let ebf = l.Protocol.ebf in
  (b, ebf, wall_s)

let outcome_of_task index spec ~certify = function
  | Ok (b, (ebf : Ebf.result), wall_s) ->
    {
      index;
      spec;
      status = Status.to_string ebf.Ebf.status;
      objective = ebf.Ebf.objective;
      bst_cost = b.Protocol.bst.Lubt_bst.Bst_dme.cost;
      lp_rows = ebf.Ebf.lp_rows;
      full_rows = ebf.Ebf.full_rows;
      lp_iterations = ebf.Ebf.lp_iterations;
      rounds = ebf.Ebf.rounds;
      certified =
        (match ebf.Ebf.certificate with
        | Some r -> r.Lubt_lp.Certify.ok
        | None -> not certify && ebf.Ebf.status = Status.Optimal);
      wall_s;
      error = None;
      solver = Some ebf.Ebf.lp_stats;
    }
  | Error (f : Pool.failure) ->
    {
      index;
      spec;
      status = "error";
      objective = nan;
      bst_cost = nan;
      lp_rows = 0;
      full_rows = 0;
      lp_iterations = 0;
      rounds = 0;
      certified = false;
      wall_s = nan;
      error = Some (Printexc.to_string f.Pool.exn);
      solver = None;
    }

let run ?jobs ?(certify = true) ?cache specs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let t0 = Lubt_obs.Clock.now () in
  let results = Pool.map_result ~jobs (solve_one ~certify ~cache) specs in
  let wall_s = Lubt_obs.Clock.now () -. t0 in
  let outcomes =
    List.mapi
      (fun index (spec, r) -> outcome_of_task index spec ~certify r)
      (List.combine specs results)
  in
  let failures =
    List.length
      (List.filter (fun o -> o.error <> None || not o.certified) outcomes)
  in
  let merged =
    List.fold_left
      (fun acc o ->
        match o.solver with
        | Some s -> Simplex.merge_stats acc s
        | None -> acc)
      Simplex.zero_stats outcomes
  in
  { outcomes; jobs; failures; wall_s; merged }

(* ------------------------------------------------------------------ *)
(* JSON-lines rendering                                                 *)
(* ------------------------------------------------------------------ *)

let outcome_json o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"index\": %d, \"id\": \"%s\", \"bench\": \"%s\", \"seed\": %d, \
        \"skew_rel\": %s, \"status\": \"%s\", \"objective\": %s, \
        \"bst_cost\": %s, \"lp_rows\": %d, \"full_rows\": %d, \
        \"lp_iterations\": %d, \"rounds\": %d, \"certified\": %b, \
        \"wall_s\": %s"
       o.index
       (Protocol.json_escape o.spec.id)
       (Protocol.json_escape o.spec.bench)
       o.spec.seed
       (Protocol.json_float o.spec.skew_rel)
       (Protocol.json_escape o.status)
       (Protocol.json_float o.objective)
       (Protocol.json_float o.bst_cost)
       o.lp_rows o.full_rows o.lp_iterations o.rounds o.certified
       (Protocol.json_float o.wall_s));
  (match o.error with
  | Some e ->
    Buffer.add_string buf
      (Printf.sprintf ", \"error\": \"%s\"" (Protocol.json_escape e))
  | None -> ());
  (match o.solver with
  | Some s ->
    Buffer.add_string buf (", \"solver\": " ^ Protocol.solver_stats_json s)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let summary_json s =
  Printf.sprintf
    "{\"summary\": true, \"instances\": %d, \"jobs\": %d, \"failures\": %d, \
     \"wall_s\": %s, \"solver\": %s}"
    (List.length s.outcomes) s.jobs s.failures
    (Protocol.json_float s.wall_s)
    (Protocol.solver_stats_json s.merged)
