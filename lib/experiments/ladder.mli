(** Request-scoped graceful degradation for a single solve.

    Under deadline pressure or partial solver failure, a serving stack
    wants the best tree it can still get, not an error: this module
    steps down a ladder of progressively cheaper answers —

    + {e certified} EBF ({!Lubt_core.Lubt.solve} with the configured
      {!Lubt_lp.Certify} level),
    + {e uncertified} EBF (same solve, certification off),
    + {e reduced} EBF (row generation capped at a few rounds; the
      possibly-suboptimal lengths are accepted whenever
      {!Lubt_core.Embed.place} and {!Lubt_core.Embed.verify} accept
      them),
    + the {!Lubt_bst.Brbc} {e heuristic} (no LP at all; needs a
      source) —

    and reports which rung answered. It is the service-level mirror of
    the in-solver recovery ladder (PR 2): there a failing factorisation
    steps down through cheaper engines, here a failing solve steps down
    through cheaper answers.

    Every returned tree is re-checked with {!Lubt_core.Embed.verify}
    ({!outcome.verified}); delay-bound satisfaction is {e not} required
    of the lower rungs — a degraded answer trades bound certification
    for latency, which is the point. An {!Lubt_lp.Status.Infeasible} LP
    stops the ladder immediately: no rung can outrun a proof that no
    LUBT exists. *)

type rung = Certified | Uncertified | Reduced | Heuristic

val rung_to_string : rung -> string
(** ["certified" | "uncertified" | "reduced" | "heuristic"]; stable, so
    machine-readable output may key on it. *)

type outcome = {
  report : Lubt_core.Lubt.report option;
      (** the full solve report for the LP rungs; [None] for
          [Heuristic] *)
  routed : Lubt_core.Routed.t;  (** the tree the winning rung produced *)
  rung : rung;  (** the rung that answered *)
  degraded : bool;
      (** [rung] is below the top rung of this request (the top rung is
          [Certified] when [base.check <> Off], else [Uncertified]) *)
  attempts : (rung * string) list;
      (** failed rungs above the winner, in attempt order, with
          reasons *)
  verified : bool;
      (** the returned tree passed {!Lubt_core.Embed.verify} *)
}

type error =
  | Infeasible
      (** the LP certified that no LUBT exists for this topology and
          bounds; degradation cannot help and was not attempted *)
  | Exhausted of (rung * string) list
      (** every rung failed; carries all attempts with reasons *)

val error_to_string : error -> string

type options = {
  base : Lubt_core.Ebf.options;
      (** options for the full-quality rungs; [base.check] decides
          whether a [Certified] rung exists, [base.time_limit] still
          caps every individual rung *)
  deadline : float option;
      (** absolute deadline on the {!Lubt_obs.Clock.now} axis. Each LP
          rung gets a fraction of the budget remaining when it starts
          (half for the full rungs, 0.8 for the reduced rung), so one
          slow rung cannot starve the ladder below it. [None] = no
          deadline. *)
  reduced_rounds : int;
      (** [max_rounds] for the reduced rung (default 2) *)
  min_lp_budget : float;
      (** below this many remaining seconds an LP rung is skipped
          outright rather than started doomed (default 1e-3) *)
  epsilon : float;  (** BRBC epsilon for the heuristic rung (default 1) *)
  tweak : rung -> Lubt_core.Ebf.options -> Lubt_core.Ebf.options;
      (** final hook over each LP rung's options, applied after the
          ladder's own adjustments; identity by default. Tests use it
          to force specific rungs to fail. *)
}

val default_options : options

val solve :
  options ->
  Lubt_core.Instance.t ->
  Lubt_topo.Tree.t ->
  (outcome, error) result
(** Runs the ladder top to bottom and returns the first accepted
    answer. The [Heuristic] rung ignores [tree] (BRBC builds its own
    topology) and is only available when the instance has a source. *)

val heuristic :
  ?epsilon:float -> Lubt_core.Instance.t -> (outcome, error) result
(** The floor rung alone: a BRBC tree, no LP, no topology needed. This
    is what a server answers with when the worker pool is saturated and
    the client opted into degradation — cheap enough to run on the
    session thread. Always [degraded = true]; [Error] only when the
    instance has no source. *)
