module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Lubt = Lubt_core.Lubt
module Routed = Lubt_core.Routed
module Tree = Lubt_topo.Tree
module Bst = Lubt_bst.Bst_dme
module Benchmarks = Lubt_data.Benchmarks
module Io = Lubt_data.Io
module Status = Lubt_lp.Status
module Certify = Lubt_lp.Certify
module Executor = Lubt_util.Pool.Executor
module Json = Lubt_obs.Json
module Log = Lubt_obs.Log
module Trace = Lubt_obs.Trace
module Clock = Lubt_obs.Clock
module Metrics = Lubt_obs.Metrics
module Prometheus = Lubt_obs.Prometheus

module Basis_cache = Lubt_lp.Basis_cache

(* Request-path metrics. [lubt_requests_total] counts every protocol
   line the daemon answers (including rejections and parse errors);
   the latency histogram is one family labelled by op. *)
let m_requests =
  Metrics.counter ~help:"Protocol requests answered (any outcome)"
    "lubt_requests_total"

let m_rejected =
  Metrics.counter ~help:"Requests rejected by admission control"
    "lubt_serve_rejected_total"

let m_failed =
  Metrics.counter ~help:"Requests answered with an error"
    "lubt_serve_failed_total"

let m_degraded =
  Metrics.counter ~help:"Requests answered by a degraded ladder rung"
    "lubt_serve_degraded_total"

let m_breaker_trips =
  Metrics.counter ~help:"Circuit-breaker open transitions"
    "lubt_serve_breaker_trips_total"

let m_connections =
  Metrics.counter ~help:"Sessions accepted" "lubt_serve_connections_total"

let m_bytes_in =
  Metrics.counter ~help:"Bytes read from protocol sessions"
    "lubt_serve_bytes_read_total"

let m_bytes_out =
  Metrics.counter ~help:"Bytes written to protocol sessions"
    "lubt_serve_bytes_written_total"

let m_latency op =
  Metrics.histogram ~help:"Request wall time in milliseconds by op"
    ~labels:[ ("op", op) ]
    "lubt_serve_request_latency_ms"

let m_lat_solve = m_latency "solve"
let m_lat_eco = m_latency "eco"
let m_lat_sleep = m_latency "sleep"

type config = {
  socket : string option;
  port : int option;
  host : string;
  jobs : int;
  max_pending : int;
  default_time_limit : float;
  watchdog : float;
  breaker_p95_ms : float;
  breaker_queue : int;
  breaker_cooldown : float;
  chaos : Executor.chaos option;
  cache : Basis_cache.t option;
  metrics_port : int option;
}

let default_config =
  {
    socket = None;
    port = None;
    host = "127.0.0.1";
    jobs = 4;
    max_pending = 64;
    default_time_limit = infinity;
    watchdog = infinity;
    breaker_p95_ms = infinity;
    breaker_queue = 0;
    breaker_cooldown = 1.0;
    chaos = None;
    cache = None;
    metrics_port = None;
  }

type stats = {
  connections : int;
  served : int;
  rejected : int;
  failed : int;
  degraded : int;
  restarts : int;
  watchdog_fires : int;
  breaker_trips : int;
  cache_hits : int;
  cache_misses : int;
}

(* ------------------------------------------------------------------ *)
(* Report rendering (shared with the CLI's solve --json)               *)
(* ------------------------------------------------------------------ *)

let solve_report_fields (report : Lubt.report) ~validated =
  let routed = report.Lubt.routed in
  let ebf = report.Lubt.ebf in
  Printf.sprintf
    "\"cost\": %s, \"validated\": %b, \"certified\": %b, \"ebf\": %s, \
     \"solver\": %s"
    (Protocol.json_float (Routed.cost routed))
    validated
    (match ebf.Ebf.certificate with
    | Some r -> r.Certify.ok
    | None -> false)
    (Protocol.ebf_result_json ebf)
    (Protocol.solver_stats_json ebf.Ebf.lp_stats)

let solve_report_json report ~validated =
  "{" ^ solve_report_fields report ~validated ^ "}"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type workload =
  | Inline of Instance.t * Tree.t option
  | Bench of Benchmarks.spec * float  (* skew_rel *)

type solve_req = {
  sq_workload : workload;
  sq_eager : bool;
  sq_certify : bool;
  sq_time_limit : float option;
  sq_degrade : bool;
}

type eco_req = { eq_base : solve_req; eq_edits : Instance.Edit.op list }

type op =
  | Ping
  | Metrics_dump  (* registry snapshot as JSON *)
  | Sleep of float  (* seconds *)
  | Solve of solve_req
  | Eco of eco_req

type request = {
  rq_id : string;  (* the id member, rendered back to JSON text *)
  rq_id_text : string;  (* the same, as a short tag for logs/traces *)
  rq_op : op;
}

(* [id] as compact JSON for the response echo, and as a short plain
   string for log/trace context. *)
let id_of_json = function
  | None -> ("null", "-")
  | Some (Json.Str s) -> ("\"" ^ Protocol.json_escape s ^ "\"", s)
  | Some j -> (Json.to_string j, Json.to_string j)

let ( let* ) = Result.bind

let mem_bool ~what ~default j =
  match Json.member what j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%S must be a boolean" what)

let mem_num ~what j =
  match Json.member what j with
  | None -> Ok None
  | Some (Json.Num n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "%S must be a number" what)

let mem_str ~what j =
  match Json.member what j with
  | None -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "%S must be a string" what)

let parse_size = function
  | None -> Ok Benchmarks.Tiny
  | Some "tiny" -> Ok Benchmarks.Tiny
  | Some "scaled" -> Ok Benchmarks.Scaled
  | Some "full" -> Ok Benchmarks.Full
  | Some s -> Error (Printf.sprintf "unknown size %S (tiny|scaled|full)" s)

let parse_workload j =
  let* inst_text = mem_str ~what:"instance" j in
  let* bench = mem_str ~what:"bench" j in
  match (inst_text, bench) with
  | Some _, Some _ -> Error "give either \"instance\" or \"bench\", not both"
  | None, None -> Error "a solve request needs \"instance\" or \"bench\""
  | Some text, None ->
    let* inst =
      Result.map_error (fun e -> "instance: " ^ e)
        (Io.instance_of_string text)
    in
    let* topo = mem_str ~what:"topology" j in
    let* tree =
      match topo with
      | None -> Ok None
      | Some t ->
        Result.map
          (fun t -> Some t)
          (Result.map_error (fun e -> "topology: " ^ e) (Io.tree_of_string t))
    in
    (match tree with
    | Some t when Tree.num_sinks t <> Instance.num_sinks inst ->
      Error "topology sink count differs from instance"
    | _ -> Ok (Inline (inst, tree)))
  | None, Some name ->
    let* size = Result.bind (mem_str ~what:"size" j) parse_size in
    let* seed = mem_num ~what:"seed" j in
    (* an integral JSON number, not merely a number: int_of_float
       would silently truncate 1.5 and is undefined outside int range *)
    let* seed_off =
      match seed with
      | None -> Ok 0
      | Some s when Float.is_integer s && Float.abs s <= 1_073_741_823. ->
        Ok (int_of_float s)
      | Some _ -> Error "\"seed\" must be a small integer"
    in
    let* skew = mem_num ~what:"skew" j in
    (match Benchmarks.find size name with
    | exception Not_found -> Error (Printf.sprintf "unknown benchmark %S" name)
    | spec ->
      let spec =
        { spec with Benchmarks.seed = spec.Benchmarks.seed + seed_off }
      in
      let skew_rel = match skew with None -> 0.5 | Some s -> s in
      (* [> 0.0] is false for NaN, true for infinity (= unbounded
         skew): exactly the admissible set *)
      if skew_rel > 0.0 then Ok (Bench (spec, skew_rel))
      else Error "\"skew\" must be positive")

(* An ECO edit object: {"edit": "<kind>", ...kind-specific members}. Sink
   indices must be integral JSON numbers; bound members default to the
   unconstrained window [0, infinity) when omitted (JSON cannot spell
   infinity). *)
let parse_edit j =
  let num_exn ~what =
    let* v = mem_num ~what j in
    match v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "an edit needs %S" what)
  in
  let int_exn ~what =
    let* v = num_exn ~what in
    if Float.is_integer v && Float.abs v <= 1_073_741_823. then
      Ok (int_of_float v)
    else Error (Printf.sprintf "%S must be a small integer" what)
  in
  let bound ~what ~default =
    let* v = mem_num ~what j in
    match v with
    | None -> Ok default
    | Some v when v >= 0.0 -> Ok v
    | Some _ -> Error (Printf.sprintf "%S must be non-negative" what)
  in
  let* kind = mem_str ~what:"edit" j in
  match kind with
  | None -> Error "an edit needs \"edit\" (set_bounds|move_sink|add_sink|remove_sink)"
  | Some "set_bounds" ->
    let* sink = int_exn ~what:"sink" in
    let* lower = bound ~what:"lower" ~default:0.0 in
    let* upper = bound ~what:"upper" ~default:infinity in
    Ok (Instance.Edit.Set_bounds { sink; lower; upper })
  | Some "move_sink" ->
    let* sink = int_exn ~what:"sink" in
    let* dx = num_exn ~what:"dx" in
    let* dy = num_exn ~what:"dy" in
    Ok (Instance.Edit.Move_sink { sink; dx; dy })
  | Some "add_sink" ->
    let* x = num_exn ~what:"x" in
    let* y = num_exn ~what:"y" in
    let* lower = bound ~what:"lower" ~default:0.0 in
    let* upper = bound ~what:"upper" ~default:infinity in
    Ok
      (Instance.Edit.Add_sink
         { point = Lubt_geom.Point.make x y; lower; upper })
  | Some "remove_sink" ->
    let* sink = int_exn ~what:"sink" in
    Ok (Instance.Edit.Remove_sink { sink })
  | Some other ->
    Error
      (Printf.sprintf
         "unknown edit %S (set_bounds|move_sink|add_sink|remove_sink)" other)

let parse_edits j =
  match Json.member "edits" j with
  | None -> Error "an eco request needs \"edits\""
  | Some (Json.Arr items) ->
    if items = [] then Error "\"edits\" must not be empty"
    else
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* edit = parse_edit item in
          Ok (edit :: acc))
        (Ok []) items
      |> Result.map List.rev
  | Some _ -> Error "\"edits\" must be an array of edit objects"

let parse_solve_members j =
  let* workload = parse_workload j in
  let* eager = mem_bool ~what:"eager" ~default:false j in
  let* certify = mem_bool ~what:"certify" ~default:true j in
  let* tl = mem_num ~what:"time_limit" j in
  let* time_limit =
    match tl with
    | Some t when t <= 0.0 -> Error "\"time_limit\" must be positive"
    | other -> Ok other
  in
  let* degrade = mem_bool ~what:"degrade" ~default:false j in
  Ok
    {
      sq_workload = workload;
      sq_eager = eager;
      sq_certify = certify;
      sq_time_limit = time_limit;
      sq_degrade = degrade;
    }

let parse_op j =
  let* op_name = mem_str ~what:"op" j in
  match op_name with
  | None | Some "solve" ->
    let* q = parse_solve_members j in
    Ok (Solve q)
  | Some "eco" ->
    (* solve-shaped plus an edit chain: solve the edited instance,
       warm-starting from the cached basis of the (previously solved)
       parent whenever the edits preserve the LP structure *)
    let* q = parse_solve_members j in
    let* edits = parse_edits j in
    Ok (Eco { eq_base = q; eq_edits = edits })
  | Some "ping" -> Ok Ping
  | Some "metrics" -> Ok Metrics_dump
  | Some "sleep" -> (
    let* ms = mem_num ~what:"ms" j in
    match ms with
    | Some ms when ms >= 0.0 -> Ok (Sleep (ms /. 1e3))
    | Some _ -> Error "\"ms\" must be non-negative"
    | None -> Error "a sleep request needs \"ms\"")
  | Some op ->
    Error (Printf.sprintf "unknown op %S (solve|eco|ping|metrics|sleep)" op)

(* [Error (id, msg)] echoes the request's own id whenever the line at
   least parsed as JSON, so a client can match its rejection *)
let parse_request line =
  match Json.parse line with
  | Error e -> Error ("null", "not JSON: " ^ e)
  | Ok j -> (
    let rq_id, id_text = id_of_json (Json.member "id" j) in
    match parse_op j with
    | Error msg -> Error (rq_id, msg)
    | Ok op -> Ok { rq_id; rq_id_text = id_text; rq_op = op })

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let error_response ?retry_after_ms ~id ~code msg =
  let retry =
    match retry_after_ms with
    | None -> ""
    | Some ms ->
      Printf.sprintf ", \"retry_after_ms\": %s" (Protocol.json_float ms)
  in
  Printf.sprintf
    "{\"id\": %s, \"ok\": false, \"error\": {\"code\": \"%s\", \"message\": \
     \"%s\"%s}}"
    id code (Protocol.json_escape msg) retry

let ok_envelope ~id ~status ~wall_ms fields =
  Printf.sprintf
    "{\"id\": %s, \"ok\": true, \"status\": \"%s\", \"wall_ms\": %s, %s}" id
    (Protocol.json_escape status)
    (Protocol.json_float wall_ms)
    fields

(* topology for an inline instance that came without one: the baseline
   router, guided by the skew window the bounds imply (the same rule as
   [lubt solve] without --topology) *)
let baseline_topology (inst : Instance.t) =
  let lo, _ = Lubt_util.Stats.min_max inst.Instance.lower in
  let _, hi = Lubt_util.Stats.min_max inst.Instance.upper in
  let bound = if hi = infinity then infinity else max 0.0 (hi -. lo) in
  (Bst.route ~skew_bound:bound ?source:inst.Instance.source
     inst.Instance.sinks)
    .Bst.topology

(* the [lubt batch] protocol: baseline route at the requested skew, then
   the LUBT LP over the baseline's achieved delay window *)
let bench_workload spec skew_rel =
  let b = Protocol.run_baseline spec ~skew_rel in
  let inst0 = b.Protocol.bst.Bst.routed.Routed.instance in
  let m = Instance.num_sinks inst0 in
  let lower_rel, upper_rel =
    if skew_rel = infinity then (0.0, infinity)
    else (b.Protocol.shortest_rel, b.Protocol.longest_rel)
  in
  let lower = Array.make m (lower_rel *. b.Protocol.radius) in
  let upper =
    Array.make m
      (if upper_rel = infinity then infinity
       else upper_rel *. b.Protocol.radius)
  in
  let inst = Instance.with_bounds inst0 ~lower ~upper in
  (inst, b.Protocol.bst.Bst.topology)

(* The degraded-response members: which rung answered, plus the usual
   report when the rung produced one (the heuristic rung has no LP
   report; it renders cost/validated directly). *)
let ladder_fields (o : Ladder.outcome) =
  let validated = Result.is_ok (Routed.validate o.Ladder.routed) in
  let prefix =
    Printf.sprintf "\"degraded\": %b, \"quality\": \"%s\"" o.Ladder.degraded
      (Ladder.rung_to_string o.Ladder.rung)
  in
  match o.Ladder.report with
  | Some report -> prefix ^ ", " ^ solve_report_fields report ~validated
  | None ->
    Printf.sprintf "%s, \"cost\": %s, \"validated\": %b, \"certified\": false"
      prefix
      (Protocol.json_float (Routed.cost o.Ladder.routed))
      validated

let ladder_response ~id ~t0 (o : Ladder.outcome) =
  let wall_ms = (Clock.now () -. t0) *. 1e3 in
  ( not o.Ladder.verified,
    o.Ladder.degraded,
    ok_envelope ~id
      ~status:(if o.Ladder.degraded then "degraded" else "optimal")
      ~wall_ms (ladder_fields o) )

(* A solve request's instance and topology; shared by the full solve
   path and the inline degraded path. *)
let materialize_workload (q : solve_req) =
  match q.sq_workload with
  | Inline (inst, Some tree) -> (inst, tree)
  | Inline (inst, None) -> (inst, baseline_topology inst)
  | Bench (spec, skew_rel) -> bench_workload spec skew_rel

let execute_solve ~default_time_limit ~cache ~id (q : solve_req) =
  let t0 = Clock.now () in
  let inst, tree = materialize_workload q in
  let time_limit =
    match q.sq_time_limit with Some t -> t | None -> default_time_limit
  in
  let options =
    {
      Ebf.default_options with
      Ebf.lazy_steiner = not q.sq_eager;
      check = (if q.sq_certify then Certify.Full else Certify.Off);
      time_limit;
      cache;
    }
  in
  if q.sq_degrade then begin
    (* degradation ladder: under an absolute deadline derived from the
       request budget, step down until some rung answers *)
    let opts =
      {
        Ladder.default_options with
        Ladder.base = options;
        deadline =
          (if time_limit = infinity then None else Some (t0 +. time_limit));
      }
    in
    match Ladder.solve opts inst tree with
    | Ok outcome -> ladder_response ~id ~t0 outcome
    | Error Ladder.Infeasible ->
      ( true,
        false,
        error_response ~id ~code:"infeasible"
          (Lubt.error_to_string Lubt.No_solution) )
    | Error (Ladder.Exhausted _ as e) ->
      ( true,
        false,
        error_response ~id ~code:"degraded_failed" (Ladder.error_to_string e)
      )
  end
  else
    match Lubt.solve ~options inst tree with
    | Ok report ->
      let validated = Result.is_ok (Routed.validate report.Lubt.routed) in
      let wall_ms = (Clock.now () -. t0) *. 1e3 in
      Log.debug ~fields:[ ("wall_ms", Trace.Float wall_ms) ] "request solved";
      ( not validated,
        false,
        ok_envelope ~id ~status:"optimal" ~wall_ms
          (Printf.sprintf "\"degraded\": false, %s"
             (solve_report_fields report ~validated)) )
    | Error Lubt.No_solution ->
      ( true,
        false,
        error_response ~id ~code:"infeasible"
          (Lubt.error_to_string Lubt.No_solution) )
    | Error (Lubt.Solver_failure { status; _ } as e) ->
      let code =
        match status with
        | Status.Time_limit -> "time_limit"
        | _ -> "solver_failure"
      in
      (true, false, error_response ~id ~code (Lubt.error_to_string e))
    | Error (Lubt.Embedding_failure _ as e) ->
      ( true,
        false,
        error_response ~id ~code:"embedding_failure" (Lubt.error_to_string e)
      )

(* The floor rung run inline (no LP, no worker): what a saturated pool
   answers with when the client opted into degradation. *)
let execute_degraded_inline ~id (q : solve_req) =
  let t0 = Clock.now () in
  match
    let inst, _ = materialize_workload q in
    Ladder.heuristic inst
  with
  | Ok outcome -> Some (ladder_response ~id ~t0 outcome)
  | Error _ -> None
  | exception _ -> None

(* An eco request: apply the edit chain to the base instance, keep the
   base topology when every edit preserves it (the warm-start sweet
   spot), re-derive it otherwise, and hand the edited workload to the
   plain solve path — which consults the cache, so the parent's basis
   (stored by an earlier solve or eco) warm-starts this one. *)
let execute_eco ~default_time_limit ~cache ~id (e : eco_req) =
  let q = e.eq_base in
  let inst, tree = materialize_workload q in
  match Instance.Edit.apply_all inst e.eq_edits with
  | Error msg -> (true, false, error_response ~id ~code:"edit_failed" msg)
  | Ok edited ->
    let topology =
      if List.for_all Instance.Edit.preserves_topology e.eq_edits then tree
      else baseline_topology edited
    in
    execute_solve ~default_time_limit ~cache ~id
      { q with sq_workload = Inline (edited, Some topology) }

(* The registry snapshot as JSON: one object per sample; histograms
   carry their raw bucket layout so clients can merge snapshots or
   take quantiles themselves. These are the same numbers the
   Prometheus endpoint renders — both read [Metrics.snapshot]. *)
let metrics_json () =
  let sample (s : Metrics.sample) =
    let labels =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Metrics.s_labels)
    in
    let base = [ ("name", Json.Str s.Metrics.s_name); ("labels", labels) ] in
    let value =
      match s.Metrics.s_value with
      | Metrics.Counter v ->
        [ ("type", Json.Str "counter"); ("value", Json.Num v) ]
      | Metrics.Gauge v -> [ ("type", Json.Str "gauge"); ("value", Json.Num v) ]
      | Metrics.Histogram h ->
        [
          ("type", Json.Str "histogram");
          ( "bounds",
            Json.Arr
              (Array.to_list
                 (Array.map (fun b -> Json.Num b) h.Metrics.h_bounds)) );
          ( "counts",
            Json.Arr
              (Array.to_list
                 (Array.map
                    (fun c -> Json.Num (float_of_int c))
                    h.Metrics.h_counts)) );
          ("sum", Json.Num h.Metrics.h_sum);
          ("count", Json.Num (float_of_int h.Metrics.h_count));
        ]
    in
    Json.Obj (base @ value)
  in
  Json.Arr (List.map sample (Metrics.snapshot ()))

let metrics_response ~id =
  Printf.sprintf "{\"id\": %s, \"ok\": true, \"metrics\": %s}" id
    (Json.to_string (metrics_json ()))

(* Execute one parsed request. Returns (failed, degraded, response
   line); never raises — an escaping exception here would otherwise eat
   a response and leave its client hanging. *)
let execute ~default_time_limit ~cache (rq : request) =
  let id = rq.rq_id in
  match rq.rq_op with
  | Ping ->
    (false, false, Printf.sprintf "{\"id\": %s, \"ok\": true, \"pong\": true}" id)
  | Metrics_dump -> (false, false, metrics_response ~id)
  | Sleep s ->
    let t0 = Clock.now () in
    Unix.sleepf s;
    ( false,
      false,
      Printf.sprintf
        "{\"id\": %s, \"ok\": true, \"status\": \"slept\", \"wall_ms\": %s}"
        id
        (Protocol.json_float ((Clock.now () -. t0) *. 1e3)) )
  | Solve q -> (
    try execute_solve ~default_time_limit ~cache ~id q with
    | exn ->
      (true, false, error_response ~id ~code:"internal" (Printexc.to_string exn)))
  | Eco e -> (
    try execute_eco ~default_time_limit ~cache ~id e with
    | exn ->
      (true, false, error_response ~id ~code:"internal" (Printexc.to_string exn)))

let response_of_line ~default_time_limit ~cache line =
  match parse_request line with
  | Error (id, msg) -> (true, false, error_response ~id ~code:"bad_request" msg)
  | Ok rq -> execute ~default_time_limit ~cache rq

let response_of_request ?(default_time_limit = infinity) ?cache line =
  let _, _, resp = response_of_line ~default_time_limit ~cache line in
  resp

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* [Reading] → [Draining] on client EOF (close once the in-flight
   requests have answered and the output queue has flushed); any error
   path marks the session [Dead]. Only the select loop moves a session
   to [Closed], because only the select loop may call [Unix.close]: a
   worker closing an fd the loop still selects on would race the loop
   into EBADF — or worse, into a recycled descriptor number. *)
type conn_state = Reading | Draining | Dead | Closed

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;  (* non-blocking; closed by the select loop *)
  c_lock : Mutex.t;
  mutable c_state : conn_state;
  mutable c_partial : string;  (* bytes after the last newline *)
  c_out : string Queue.t;  (* response lines awaiting the socket *)
  mutable c_out_off : int;  (* bytes of the queue head already written *)
  mutable c_out_bytes : int;  (* queued total, capped by [max_out_bytes] *)
  mutable c_inflight : int;  (* submitted, response not yet enqueued *)
  mutable c_tickets : Executor.ticket list;  (* pending-task handles *)
}

(* A client that submits requests but never reads responses gets this
   much buffered output before its session is dropped: the bound keeps
   a dead-reader client from growing the queue without limit, and the
   queue itself keeps workers from ever blocking in [Unix.write]. *)
let max_out_bytes = 8 * 1024 * 1024

(* Completed-request latencies for the admission controller live in a
   rolling log-bucketed histogram: two epochs of bucket counts, rotated
   every [lat_epoch] records, approximate a window of the most recent
   128–256 requests. Recording is one bucket increment and the breaker's
   p95 is a cumulative walk over the buckets — O(buckets) under the
   lock, where the old sample ring sorted the window (O(n log n)) on
   every admission check. The quantile agrees with the nearest-rank
   percentile of the raw window to within one bucket width (pinned by
   the metrics test suite). *)
let lat_epoch = 128

let lat_bounds = Metrics.Buckets.log ~lo:0.01 ~hi:10_000.0 ~count:28

type server = {
  cfg : config;
  executor : Executor.t;
  listeners : (Unix.file_descr * string) list;  (* fd, description *)
  metrics_listener : Unix.file_descr option;  (* the --metrics-port socket *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopped : bool Atomic.t;
  s_connections : int Atomic.t;
  s_served : int Atomic.t;
  s_rejected : int Atomic.t;
  s_failed : int Atomic.t;
  s_degraded : int Atomic.t;
  s_breaker_trips : int Atomic.t;
  lat_lock : Mutex.t;
  lat_cur : int array;  (* bucket counts, current epoch *)
  lat_prev : int array;  (* bucket counts, previous epoch *)
  mutable lat_cur_n : int;  (* records in the current epoch *)
  mutable lat_count : int;  (* total ever recorded *)
  mutable breaker_until : float;  (* loop-thread only; Clock.now axis *)
}

let record_latency server wall_ms =
  Mutex.protect server.lat_lock (fun () ->
      if server.lat_cur_n >= lat_epoch then begin
        Array.blit server.lat_cur 0 server.lat_prev 0
          (Array.length server.lat_cur);
        Array.fill server.lat_cur 0 (Array.length server.lat_cur) 0;
        server.lat_cur_n <- 0
      end;
      let i = Metrics.Buckets.index lat_bounds wall_ms in
      server.lat_cur.(i) <- server.lat_cur.(i) + 1;
      server.lat_cur_n <- server.lat_cur_n + 1;
      server.lat_count <- server.lat_count + 1)

(* p95 over the rolling window; NaN while the window is empty (a NaN
   never trips the [>=] threshold, so a cold server admits). *)
let p95_ms server =
  Mutex.protect server.lat_lock (fun () ->
      if server.lat_count = 0 then nan
      else begin
        let counts =
          Array.init (Array.length server.lat_cur) (fun i ->
              server.lat_cur.(i)
              + (if server.lat_count > server.lat_cur_n then
                   server.lat_prev.(i)
                 else 0))
        in
        Metrics.Buckets.quantile ~bounds:lat_bounds ~counts 0.95
      end)

(* The circuit breaker: called on the select loop before submitting a
   solve. Once open it stays open for [breaker_cooldown] seconds and
   rejections carry the remaining wait as a Retry-After-style hint.
   Both thresholds default to "never" (p95 [infinity], queue [0]). *)
let breaker_check server =
  let now = Clock.now () in
  if now < server.breaker_until then Some (server.breaker_until -. now)
  else begin
    let cfg = server.cfg in
    let depth = Executor.pending server.executor in
    let queue_trip = cfg.breaker_queue > 0 && depth >= cfg.breaker_queue in
    let p95 = if cfg.breaker_p95_ms < infinity then p95_ms server else nan in
    let p95_trip = p95 >= cfg.breaker_p95_ms in
    if queue_trip || p95_trip then begin
      server.breaker_until <- now +. cfg.breaker_cooldown;
      Atomic.incr server.s_breaker_trips;
      Metrics.incr m_breaker_trips;
      Log.warn
        ~fields:
          [
            ("queue_depth", Trace.Int depth);
            ("p95_ms", Trace.Float p95);
          ]
        "circuit breaker open for %.3gs (%s)" cfg.breaker_cooldown
        (if queue_trip then "queue depth over threshold"
         else "p95 latency over threshold");
      if Trace.enabled () then
        Trace.instant "serve.breaker_open"
          ~args:
            [ ("queue_depth", Trace.Int depth); ("p95_ms", Trace.Float p95) ];
      Some cfg.breaker_cooldown
    end
    else None
  end

(* One byte on the self-pipe wakes the select loop so it reconsiders
   interest sets and prunes dead sessions. The write end is
   non-blocking: a full pipe already guarantees a pending wake-up, so
   EAGAIN (like a closed pipe during shutdown) is fine to ignore. *)
let wake server =
  try ignore (Unix.write server.stop_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> ()

(* Tear a session down after an error: cancel its queued tasks (running
   ones finish and find the session dead) and mark it [Dead] for the
   select loop to close. [shutdown] — unlike [close] — is safe here: it
   wakes the peer without giving the descriptor number back to the OS
   while the loop may still hold it in a select set. *)
let kill_conn_locked conn =
  List.iter
    (fun tk -> if Executor.cancel tk then conn.c_inflight <- conn.c_inflight - 1)
    conn.c_tickets;
  conn.c_tickets <- [];
  match conn.c_state with
  | Dead | Closed -> ()
  | Reading | Draining ->
    conn.c_state <- Dead;
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

(* Queue one response line for the select loop to flush. Responses are
   whole lines enqueued under the session lock, so concurrent workers
   interleave whole replies, never bytes — and nobody ever blocks in
   [Unix.write] while holding [c_lock]. *)
let enqueue_locked conn line =
  match conn.c_state with
  | Dead | Closed -> false
  | Reading | Draining ->
    let s = line ^ "\n" in
    if conn.c_out_bytes + String.length s > max_out_bytes then begin
      Log.warn
        ~fields:[ ("conn", Trace.Int conn.c_id) ]
        "output backlog over %d bytes (client not reading): dropping \
         session"
        max_out_bytes;
      kill_conn_locked conn;
      false
    end
    else begin
      Queue.add s conn.c_out;
      conn.c_out_bytes <- conn.c_out_bytes + String.length s;
      true
    end

let write_line server conn line =
  let queued =
    Mutex.protect conn.c_lock (fun () -> enqueue_locked conn line)
  in
  (* new output (or a newly dead session) changes the loop's interest
     set either way *)
  wake server;
  queued

(* A worker finished one of this session's requests. [ticket_cell] is
   read under [c_lock] — the session thread fills it under the same
   lock before any worker can get here, so the read is ordered and
   never sees [None]. The wake-up lets the select loop close a drained
   session whose last response just went out. *)
let finish_task server conn ticket_cell =
  Mutex.protect conn.c_lock (fun () ->
      (match !ticket_cell with
      | Some tk ->
        conn.c_tickets <-
          List.filter (fun t -> not (t == tk)) conn.c_tickets
      | None -> ());
      conn.c_inflight <- conn.c_inflight - 1);
  wake server

let bump counter = Atomic.incr counter

(* The ping payload doubles as the health probe: queue depth and worker
   state for admission decisions on the client side, supervision and
   degradation counters for monitoring. *)
(* Cross-request cache counters as seen by this process; zeros when the
   daemon runs cacheless so the health schema stays stable. *)
let cache_counters server =
  match server.cfg.cache with
  | None -> (0, 0, 0)
  | Some c ->
    let s = Basis_cache.stats c in
    (s.Basis_cache.hits, s.Basis_cache.misses, s.Basis_cache.rejects)

let health_response server ~id =
  let ex = server.executor in
  let cache_hits, cache_misses, cache_rejects = cache_counters server in
  Printf.sprintf
    "{\"id\": %s, \"ok\": true, \"pong\": true, \"health\": {\"pending\": \
     %d, \"running\": %d, \"workers\": %d, \"restarts\": %d, \
     \"watchdog_fires\": %d, \"breaker_open\": %b, \"p95_ms\": %s, \
     \"served\": %d, \"degraded\": %d, \"rejected\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"cache_rejects\": %d}}"
    id (Executor.pending ex) (Executor.running ex) (Executor.workers ex)
    (Executor.restarts ex)
    (Executor.watchdog_fires ex)
    (Clock.now () < server.breaker_until)
    (Protocol.json_float (p95_ms server))
    (Atomic.get server.s_served)
    (Atomic.get server.s_degraded)
    (Atomic.get server.s_rejected)
    cache_hits cache_misses cache_rejects

(* Dispatch one request line. Cheap ops (ping, malformed, breaker and
   backpressure rejections, the inline degraded answer) are handled on
   the session thread; solves and sleeps go to the worker pool. *)
let dispatch server conn line =
  if String.trim line <> "" then begin
    (* every answered protocol line, whatever its outcome *)
    Metrics.incr m_requests;
    match parse_request line with
    | Error (id, msg) ->
      bump server.s_served;
      bump server.s_failed;
      Metrics.incr m_failed;
      Log.warn
        ~fields:[ ("conn", Trace.Int conn.c_id) ]
        "bad request: %s" msg;
      ignore (write_line server conn (error_response ~id ~code:"bad_request" msg))
    | Ok { rq_op = Ping; rq_id; _ } ->
      bump server.s_served;
      ignore (write_line server conn (health_response server ~id:rq_id))
    | Ok { rq_op = Metrics_dump; rq_id; _ } ->
      (* cheap like ping: a snapshot merge over a handful of blocks,
         answered on the session thread so it works under saturation *)
      bump server.s_served;
      ignore (write_line server conn (metrics_response ~id:rq_id))
    | Ok rq ->
      let id_text = rq.rq_id_text in
      let breaker =
        match rq.rq_op with
        (* sleep occupies a worker exactly like a solve, so admission
           control covers both; ping stays exempt — it is the health
           probe clients use to decide when to retry *)
        | Solve _ | Eco _ | Sleep _ -> breaker_check server
        | Ping | Metrics_dump -> None
      in
      (match breaker with
      | Some wait_s ->
        bump server.s_rejected;
        Metrics.incr m_rejected;
        Log.warn
          ~fields:[ ("conn", Trace.Int conn.c_id); ("req", Trace.Str id_text) ]
          "rejected: breaker_open";
        ignore
          (write_line server conn
             (error_response ~id:rq.rq_id ~code:"breaker_open"
                ~retry_after_ms:(wait_s *. 1e3)
                (Printf.sprintf
                   "circuit breaker open (overload); retry in %.0f ms"
                   (wait_s *. 1e3))))
      | None ->
      Mutex.protect conn.c_lock (fun () ->
          match conn.c_state with
          | Dead | Closed -> ()
          | Reading | Draining -> begin
            let ticket_cell = ref None in
            (* exactly-once response resolution: the task claims its
               ticket before answering; the supervisor's [on_abandon]
               answers instead when the claim is lost to a crash or
               watchdog deposal. Whoever wins also runs the epilogue
               ([finish_task]) — never both. *)
            let task () =
              let t0 = Clock.now () in
              Trace.with_context [ ("req", Trace.Str id_text) ] (fun () ->
                  let failed, degraded, resp =
                    if Trace.enabled () then
                      Trace.span "serve.request" (fun () ->
                          execute
                            ~default_time_limit:
                              server.cfg.default_time_limit
                            ~cache:server.cfg.cache rq)
                    else
                      execute
                        ~default_time_limit:server.cfg.default_time_limit
                        ~cache:server.cfg.cache rq
                  in
                  let ticket =
                    Mutex.protect conn.c_lock (fun () -> !ticket_cell)
                  in
                  let won =
                    match ticket with
                    | Some tk -> Executor.claim tk
                    | None -> true
                  in
                  if won then begin
                    let wall_ms = (Clock.now () -. t0) *. 1e3 in
                    bump server.s_served;
                    if failed then begin
                      bump server.s_failed;
                      Metrics.incr m_failed
                    end;
                    if degraded then begin
                      bump server.s_degraded;
                      Metrics.incr m_degraded;
                      if Trace.enabled () then
                        Trace.instant "serve.degraded"
                          ~args:[ ("req", Trace.Str id_text) ]
                    end;
                    Metrics.observe
                      (match rq.rq_op with
                      | Eco _ -> m_lat_eco
                      | Sleep _ -> m_lat_sleep
                      | _ -> m_lat_solve)
                      wall_ms;
                    record_latency server wall_ms;
                    ignore (write_line server conn resp);
                    Log.info
                      ~fields:
                        [
                          ("conn", Trace.Int conn.c_id);
                          ("ok", Trace.Bool (not failed));
                          ("wall_ms", Trace.Float wall_ms);
                        ]
                      "request served";
                    finish_task server conn ticket_cell
                  end)
            in
            let on_abandon reason =
              let code, msg =
                match reason with
                | Executor.Crashed e ->
                  ("worker_crashed", "worker domain died mid-request: " ^ e)
                | Executor.Timed_out elapsed ->
                  ( "watchdog_timeout",
                    Printf.sprintf
                      "request exceeded the %.3gs watchdog deadline (ran \
                       %.3fs); worker replaced"
                      server.cfg.watchdog elapsed )
                | Executor.Dropped ->
                  ("dropped", "server shut down before the request ran")
              in
              bump server.s_served;
              bump server.s_failed;
              Metrics.incr m_failed;
              Log.warn
                ~fields:
                  [ ("conn", Trace.Int conn.c_id); ("req", Trace.Str id_text) ]
                "request abandoned: %s" code;
              ignore
                (write_line server conn
                   (error_response ~id:rq.rq_id ~code msg));
              finish_task server conn ticket_cell
            in
            match Executor.submit ~on_abandon server.executor task with
            | Ok ticket ->
              (* the submit happens under [c_lock], which the task's
                 epilogue also takes: the cell is filled before any
                 worker can reach [finish_task] *)
              ticket_cell := Some ticket;
              conn.c_tickets <- ticket :: conn.c_tickets;
              conn.c_inflight <- conn.c_inflight + 1
            | Error reject ->
              let degraded_inline =
                match (reject, rq.rq_op) with
                | Executor.Overloaded _, Solve q when q.sq_degrade ->
                  execute_degraded_inline ~id:rq.rq_id q
                | Executor.Overloaded _, Eco e when e.eq_base.sq_degrade -> (
                  (* the heuristic rung must answer for the EDITED
                     instance, not the base it was derived from *)
                  match
                    let inst, _ = materialize_workload e.eq_base in
                    Instance.Edit.apply_all inst e.eq_edits
                  with
                  | Ok edited ->
                    execute_degraded_inline ~id:rq.rq_id
                      { e.eq_base with sq_workload = Inline (edited, None) }
                  | Error _ -> None
                  | exception _ -> None)
                | _ -> None
              in
              (match degraded_inline with
              | Some (failed, degraded, resp) ->
                bump server.s_served;
                if failed then begin
                  bump server.s_failed;
                  Metrics.incr m_failed
                end;
                if degraded then begin
                  bump server.s_degraded;
                  Metrics.incr m_degraded;
                  if Trace.enabled () then
                    Trace.instant "serve.degraded"
                      ~args:[ ("req", Trace.Str id_text) ]
                end;
                Log.info
                  ~fields:
                    [
                      ("conn", Trace.Int conn.c_id);
                      ("req", Trace.Str id_text);
                    ]
                  "pool saturated: answered with the inline heuristic rung";
                ignore (enqueue_locked conn resp)
              | None ->
                bump server.s_rejected;
                Metrics.incr m_rejected;
                let code, msg =
                  match reject with
                  | Executor.Overloaded depth ->
                    ( "overloaded",
                      Printf.sprintf
                        "%d requests already pending (max %d); retry later"
                        depth server.cfg.max_pending )
                  | Executor.Shutting_down ->
                    ("shutting_down", "server is shutting down")
                in
                Log.warn
                  ~fields:
                    [ ("conn", Trace.Int conn.c_id); ("req", Trace.Str id_text) ]
                  "rejected: %s" code;
                (* already under [c_lock]: enqueue directly; the loop
                   (which is running this dispatch) flushes it next turn *)
                ignore
                  (enqueue_locked conn (error_response ~id:rq.rq_id ~code msg)))
          end))
  end

(* Feed freshly-read bytes through the line splitter. *)
let feed server conn chunk =
  let data = conn.c_partial ^ chunk in
  let lines = String.split_on_char '\n' data in
  let rec go = function
    | [] -> ()
    | [ last ] -> conn.c_partial <- last
    | line :: rest ->
      dispatch server conn line;
      go rest
  in
  go lines

(* ------------------------------------------------------------------ *)
(* Listeners                                                           *)
(* ------------------------------------------------------------------ *)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let bind_listeners cfg =
  let opened = ref [] in
  let cleanup () =
    List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) !opened
  in
  try
    (match cfg.socket with
    | Some path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      unlink_quiet path;
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      opened := (fd, "unix:" ^ path) :: !opened
    | None -> ());
    (match cfg.port with
    | Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, port));
      Unix.listen fd 64;
      opened := (fd, Printf.sprintf "tcp:%s:%d" cfg.host port) :: !opened
    | None -> ());
    match !opened with
    | [] -> Error "serve: no listener (give --socket and/or --port)"
    | ls -> Ok (List.rev ls)
  with
  | Unix.Unix_error (e, fn, arg) ->
    cleanup ();
    Error
      (Printf.sprintf "serve: %s(%s): %s" fn arg (Unix.error_message e))
  | Failure msg ->
    (* inet_addr_of_string *)
    cleanup ();
    Error (Printf.sprintf "serve: bad host address: %s" msg)

(* The optional Prometheus listener is bound separately from the
   protocol listeners: it is plain HTTP, never mixes with the JSON-lines
   protocol, and its absence must not stop the daemon from serving. *)
let bind_metrics_listener cfg =
  match cfg.metrics_port with
  | None -> Ok None
  | Some port -> (
    try
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, port));
      Unix.listen fd 16;
      Ok (Some fd)
    with
    | Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "serve: metrics %s(%s): %s" fn arg
           (Unix.error_message e))
    | Failure msg -> Error (Printf.sprintf "serve: bad host address: %s" msg))

let create cfg =
  match bind_listeners cfg with
  | Error _ as e -> e
  | Ok listeners ->
  match bind_metrics_listener cfg with
  | Error msg ->
    List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) listeners;
    Error msg
  | Ok metrics_listener ->
    (* the daemon always keeps its own metrics hot: the registry is the
       source for both the [metrics] op and the Prometheus endpoint *)
    Metrics.enable ();
    let stop_r, stop_w = Unix.pipe () in
    (* wake-ups must never block a worker: a full pipe already means a
       wake-up is pending *)
    Unix.set_nonblock stop_w;
    let executor =
      Executor.create ~jobs:(max 1 cfg.jobs)
        ~max_pending:(max 0 cfg.max_pending) ~watchdog:cfg.watchdog
        ?chaos:cfg.chaos ()
    in
    Ok
      {
        cfg;
        executor;
        listeners;
        metrics_listener;
        stop_r;
        stop_w;
        stopped = Atomic.make false;
        s_connections = Atomic.make 0;
        s_served = Atomic.make 0;
        s_rejected = Atomic.make 0;
        s_failed = Atomic.make 0;
        s_degraded = Atomic.make 0;
        s_breaker_trips = Atomic.make 0;
        lat_lock = Mutex.create ();
        lat_cur = Array.make (Array.length lat_bounds + 1) 0;
        lat_prev = Array.make (Array.length lat_bounds + 1) 0;
        lat_cur_n = 0;
        lat_count = 0;
        breaker_until = neg_infinity;
      }

let stop server =
  (* safe from signal handlers and other domains: an atomic flag and a
     non-blocking self-pipe write *)
  if not (Atomic.exchange server.stopped true) then wake server

let install_signal_handlers server =
  let handle = Sys.Signal_handle (fun _ -> stop server) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

(* Minimal HTTP handling for the Prometheus endpoint: read one request
   until the header terminator, answer a single GET, close. Runs
   entirely on the loop thread over non-blocking sockets — a scraper
   can never stall the protocol sessions. *)
type http_conn = {
  hc_fd : Unix.file_descr;
  hc_in : Buffer.t;
  mutable hc_out : string;
  mutable hc_off : int;
  mutable hc_replying : bool;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status content_type (String.length body) body

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run server =
  (* a client hanging up mid-response must be an EPIPE, not a fatal
     signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  List.iter
    (fun (_, desc) ->
      Log.info
        ~fields:
          [
            ("jobs", Trace.Int (Executor.jobs server.executor));
            ("max_pending", Trace.Int server.cfg.max_pending);
          ]
        "listening on %s" desc)
    server.listeners;
  (match server.metrics_listener with
  | Some _ ->
    Log.info
      ~fields:
        [ ("port", Trace.Int (Option.value ~default:0 server.cfg.metrics_port)) ]
      "metrics endpoint listening on tcp:%s:%d" server.cfg.host
      (Option.value ~default:0 server.cfg.metrics_port)
  | None -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let http_conns : (Unix.file_descr, http_conn) Hashtbl.t = Hashtbl.create 4 in
  let next_conn_id = ref 0 in
  let buf = Bytes.create 65536 in
  let accept_from lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error _ -> ()
    | fd, _addr ->
      Unix.set_nonblock fd;
      incr next_conn_id;
      Atomic.incr server.s_connections;
      Metrics.incr m_connections;
      Log.debug ~fields:[ ("conn", Trace.Int !next_conn_id) ] "session open";
      Hashtbl.replace conns fd
        {
          c_id = !next_conn_id;
          c_fd = fd;
          c_lock = Mutex.create ();
          c_state = Reading;
          c_partial = "";
          c_out = Queue.create ();
          c_out_off = 0;
          c_out_bytes = 0;
          c_inflight = 0;
          c_tickets = [];
        }
  in
  let read_from conn =
    match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
    | 0 ->
      (* client finished sending; an unterminated trailing line is
         still a request, then the session stays open only until its
         in-flight requests have answered and their responses flushed *)
      let tail = conn.c_partial in
      conn.c_partial <- "";
      if String.trim tail <> "" then dispatch server conn tail;
      Mutex.protect conn.c_lock (fun () ->
          if conn.c_state = Reading then conn.c_state <- Draining)
    | n ->
      Metrics.incr m_bytes_in ~by:(float_of_int n);
      feed server conn (Bytes.sub_string buf 0 n)
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error (_, _, _) ->
      (* any other read error — ECONNRESET, EPIPE, ... — drops the
         session; the prune pass closes it *)
      Mutex.protect conn.c_lock (fun () -> kill_conn_locked conn)
  in
  (* Drain queued output into a writable socket. Non-blocking, so a
     slow reader never stalls the loop: it just keeps write interest. *)
  let flush_conn conn =
    Mutex.protect conn.c_lock (fun () ->
        if conn.c_state = Reading || conn.c_state = Draining then
          let rec go () =
            match Queue.peek_opt conn.c_out with
            | None -> ()
            | Some s -> (
              let len = String.length s - conn.c_out_off in
              match Unix.write_substring conn.c_fd s conn.c_out_off len with
              | w ->
                Metrics.incr m_bytes_out ~by:(float_of_int w);
                conn.c_out_bytes <- conn.c_out_bytes - w;
                if w = len then begin
                  ignore (Queue.pop conn.c_out);
                  conn.c_out_off <- 0;
                  go ()
                end
                else conn.c_out_off <- conn.c_out_off + w
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) ->
                Log.debug
                  ~fields:[ ("conn", Trace.Int conn.c_id) ]
                  "write failed (%s): dropping session"
                  (Unix.error_message e);
                kill_conn_locked conn)
          in
          go ())
  in
  let close_http hc =
    Hashtbl.remove http_conns hc.hc_fd;
    try Unix.close hc.hc_fd with Unix.Unix_error _ -> ()
  in
  let accept_metrics lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error _ -> ()
    | fd, _addr ->
      Unix.set_nonblock fd;
      Hashtbl.replace http_conns fd
        {
          hc_fd = fd;
          hc_in = Buffer.create 256;
          hc_out = "";
          hc_off = 0;
          hc_replying = false;
        }
  in
  let http_reply hc =
    let request = Buffer.contents hc.hc_in in
    let first_line =
      match String.index_opt request '\n' with
      | Some i -> String.trim (String.sub request 0 i)
      | None -> String.trim request
    in
    let response =
      match String.split_on_char ' ' first_line with
      | [ "GET"; ("/metrics" | "/"); _ ] | [ "GET"; ("/metrics" | "/") ] ->
        http_response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Prometheus.render (Metrics.snapshot ()))
      | "GET" :: _ ->
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found\n"
      | _ ->
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "only GET is supported\n"
    in
    hc.hc_out <- response;
    hc.hc_replying <- true
  in
  let read_http hc =
    match Unix.read hc.hc_fd buf 0 (Bytes.length buf) with
    | 0 -> if not hc.hc_replying then close_http hc
    | n ->
      Buffer.add_subbytes hc.hc_in buf 0 n;
      let s = Buffer.contents hc.hc_in in
      if contains_sub s "\r\n\r\n" || contains_sub s "\n\n" then http_reply hc
      else if Buffer.length hc.hc_in > 8192 then
        (* header flood: not a scraper we want to talk to *)
        close_http hc
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> close_http hc
  in
  let write_http hc =
    let len = String.length hc.hc_out - hc.hc_off in
    match Unix.write_substring hc.hc_fd hc.hc_out hc.hc_off len with
    | w ->
      hc.hc_off <- hc.hc_off + w;
      if hc.hc_off >= String.length hc.hc_out then close_http hc
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> close_http hc
  in
  (* Close and forget a session. Closing here — and only here — keeps
     the invariant that a descriptor in the select sets is alive. *)
  let close_conn conn =
    Hashtbl.remove conns conn.c_fd;
    Mutex.protect conn.c_lock (fun () ->
        if conn.c_state <> Closed then begin
          conn.c_state <- Closed;
          (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
        end);
    Log.debug ~fields:[ ("conn", Trace.Int conn.c_id) ] "session closed"
  in
  (* Dead sessions, and drained ones with nothing left to answer *)
  let prune () =
    let closable =
      Hashtbl.fold
        (fun _ conn acc ->
          let close =
            Mutex.protect conn.c_lock (fun () ->
                match conn.c_state with
                | Dead | Closed -> true
                | Draining ->
                  conn.c_inflight = 0 && Queue.is_empty conn.c_out
                | Reading -> false)
          in
          if close then conn :: acc else acc)
        conns []
    in
    List.iter close_conn closable
  in
  let rec loop () =
    prune ();
    if Atomic.get server.stopped then ()
    else begin
      let listener_fds = List.map fst server.listeners in
      let metrics_fds =
        match server.metrics_listener with Some fd -> [ fd ] | None -> []
      in
      let read_fds, write_fds =
        Hashtbl.fold
          (fun fd conn (rs, ws) ->
            Mutex.protect conn.c_lock (fun () ->
                let rs = if conn.c_state = Reading then fd :: rs else rs in
                let ws =
                  if conn.c_state <> Dead && not (Queue.is_empty conn.c_out)
                  then fd :: ws
                  else ws
                in
                (rs, ws)))
          conns ([], [])
      in
      let read_fds, write_fds =
        Hashtbl.fold
          (fun fd hc (rs, ws) ->
            if hc.hc_replying then (rs, fd :: ws) else (fd :: rs, ws))
          http_conns (read_fds, write_fds)
      in
      match
        Unix.select
          ((server.stop_r :: listener_fds) @ metrics_fds @ read_fds)
          write_fds [] (-1.0)
      with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* unreachable while the close-only-here invariant holds, but
           never fatal: find any session whose descriptor went bad and
           drop it instead of crashing the daemon *)
        Hashtbl.iter
          (fun fd conn ->
            match Unix.fstat fd with
            | _ -> ()
            | exception Unix.Unix_error _ ->
              Mutex.protect conn.c_lock (fun () -> kill_conn_locked conn))
          conns;
        loop ()
      | ready_r, ready_w, _ ->
        List.iter
          (fun fd ->
            if fd = server.stop_r then
              (* swallow the wake-up bytes; [stopped] is re-read and
                 interest sets recomputed at the top of the loop *)
              (try ignore (Unix.read server.stop_r buf 0 512)
               with Unix.Unix_error _ -> ())
            else if List.mem fd listener_fds then accept_from fd
            else if List.mem fd metrics_fds then accept_metrics fd
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> read_from conn
              | None -> (
                match Hashtbl.find_opt http_conns fd with
                | Some hc -> read_http hc
                | None -> ()))
          ready_r;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> flush_conn conn
            | None -> (
              match Hashtbl.find_opt http_conns fd with
              | Some hc -> write_http hc
              | None -> ()))
          ready_w;
        loop ()
    end
  in
  loop ();
  (* shutdown: stop accepting, drain the in-flight work so every
     accepted request still gets its response, flush what the drain
     enqueued (bounded by a send timeout — a client that stopped
     reading cannot wedge shutdown), then tear the sessions down *)
  List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) server.listeners;
  (match server.metrics_listener with
  | Some fd -> ( try Unix.close fd with _ -> ())
  | None -> ());
  Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) http_conns;
  Hashtbl.reset http_conns;
  (match server.cfg.socket with Some p -> unlink_quiet p | None -> ());
  (* read the supervision counters before the executor is torn down;
     the drain itself may still add restarts, so read them after *)
  Executor.shutdown ~drain:true server.executor;
  let restarts = Executor.restarts server.executor in
  let watchdog_fires = Executor.watchdog_fires server.executor in
  Hashtbl.iter
    (fun _ conn ->
      Mutex.protect conn.c_lock (fun () ->
          (if conn.c_state = Reading || conn.c_state = Draining then begin
             (try
                Unix.clear_nonblock conn.c_fd;
                Unix.setsockopt_float conn.c_fd Unix.SO_SNDTIMEO 5.0
              with Unix.Unix_error _ -> ());
             try
               while not (Queue.is_empty conn.c_out) do
                 let s = Queue.peek conn.c_out in
                 let w =
                   Unix.write_substring conn.c_fd s conn.c_out_off
                     (String.length s - conn.c_out_off)
                 in
                 if conn.c_out_off + w = String.length s then begin
                   ignore (Queue.pop conn.c_out);
                   conn.c_out_off <- 0
                 end
                 else conn.c_out_off <- conn.c_out_off + w
               done
             with Unix.Unix_error _ -> ()
           end);
          if conn.c_state <> Closed then begin
            conn.c_state <- Closed;
            (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
          end))
    conns;
  (try Unix.close server.stop_r with _ -> ());
  (try Unix.close server.stop_w with _ -> ());
  let cache_hits, cache_misses, _ = cache_counters server in
  let stats =
    {
      connections = Atomic.get server.s_connections;
      served = Atomic.get server.s_served;
      rejected = Atomic.get server.s_rejected;
      failed = Atomic.get server.s_failed;
      degraded = Atomic.get server.s_degraded;
      restarts;
      watchdog_fires;
      breaker_trips = Atomic.get server.s_breaker_trips;
      cache_hits;
      cache_misses;
    }
  in
  if Trace.enabled () then
    Trace.counter "serve.stats"
      [
        ("served", float_of_int stats.served);
        ("rejected", float_of_int stats.rejected);
        ("failed", float_of_int stats.failed);
        ("degraded", float_of_int stats.degraded);
        ("restarts", float_of_int stats.restarts);
        ("breaker_trips", float_of_int stats.breaker_trips);
        ("cache_hits", float_of_int stats.cache_hits);
        ("cache_misses", float_of_int stats.cache_misses);
      ];
  Log.info
    ~fields:
      [
        ("connections", Trace.Int stats.connections);
        ("served", Trace.Int stats.served);
        ("rejected", Trace.Int stats.rejected);
        ("failed", Trace.Int stats.failed);
        ("degraded", Trace.Int stats.degraded);
        ("restarts", Trace.Int stats.restarts);
        ("watchdog_fires", Trace.Int stats.watchdog_fires);
        ("breaker_trips", Trace.Int stats.breaker_trips);
        ("cache_hits", Trace.Int stats.cache_hits);
        ("cache_misses", Trace.Int stats.cache_misses);
      ]
    "server stopped";
  stats

(* ------------------------------------------------------------------ *)
(* In-process hosting                                                  *)
(* ------------------------------------------------------------------ *)

type handle = { h_server : server; h_domain : stats Domain.t }

let spawn cfg =
  match create cfg with
  | Error _ as e -> e
  | Ok server ->
    Ok { h_server = server; h_domain = Domain.spawn (fun () -> run server) }

let shutdown h =
  stop h.h_server;
  Domain.join h.h_domain
