(** Regenerators for every table and figure in the paper's evaluation.

    Each function returns structured rows and can print them in the
    paper's layout. Sizes default to the scaled-down benchmark fields
    (see {!Lubt_data.Benchmarks.size}); pass [~size:Full] for paper-sized
    runs.

    The four sweep generators ({!table1}, {!table2}, {!table3},
    {!tradeoff}) accept [~jobs] (default 1): their independent
    (benchmark, bound) cells are fanned over a {!Lubt_util.Pool} of that
    many domains. Row order and every cost are identical at any [jobs]
    count — only the wall-clock changes. *)

type t1_row = {
  bench : string;
  skew_rel : float;
  shortest : float;
  longest : float;
  bst_cost : float;
  lubt_cost : float;
}

val table1 :
  ?jobs:int ->
  ?size:Lubt_data.Benchmarks.size -> ?clustered:bool -> unit -> t1_row list
(** Table 1: baseline [9] cost vs LUBT cost for skew bounds
    {0, 0.01, 0.05, 0.1, 0.5, 1, 2, inf} on all four benchmarks.
    [clustered] switches to the clustered-sink variants, whose
    zero-skew-to-Steiner cost ratio matches the paper's real clock
    benchmarks much more closely than uniform fields. *)

val print_table1 : t1_row list -> unit

type t2_row = {
  bench : string;
  skew_rel : float;
  lower_rel : float;
  upper_rel : float;
  from_baseline : bool;  (** the window the baseline itself produced *)
  cost : float;
}

val table2 : ?jobs:int -> ?size:Lubt_data.Benchmarks.size -> unit -> t2_row list
(** Table 2: same skew bound, shifted [l, u] windows (prim1, prim2; skew
    0.3 and 0.5) — the flexibility [9] lacks. *)

val print_table2 : t2_row list -> unit

type t3_row = {
  bench : string;
  lower_rel : float;
  upper_rel : float;
  cost : float;
}

val table3 : ?jobs:int -> ?size:Lubt_data.Benchmarks.size -> unit -> t3_row list
(** Table 3: other bound combinations ([0.99,1] ... [0,2]), global-routing
    style included. *)

val print_table3 : t3_row list -> unit

type curve_point = { lower_rel : float; upper_rel : float; cost : float }

val tradeoff :
  ?jobs:int ->
  ?size:Lubt_data.Benchmarks.size -> ?bench:string -> unit -> curve_point list
(** Figure 8: the cost-versus-bounds trade-off curve for prim2 — windows
    tighten from [0,2] to [0.99,1]. *)

val print_tradeoff : curve_point list -> unit

type ablation_report = {
  bench : string;
  lazy_rows : int;
  lazy_rounds : int;
  lazy_iterations : int;
  lazy_seconds : float;
  eager_rows : int;
  eager_iterations : int;
  eager_seconds : float;
  full_rows : int;
  objective_gap : float;  (** |lazy - eager| *)
  zeroskew_closed_seconds : float;
  zeroskew_lp_seconds : float;
  zeroskew_gap : float;
}

val ablation : ?size:Lubt_data.Benchmarks.size -> ?bench:string -> unit -> ablation_report

val print_ablation : ablation_report -> unit

type beam_row = {
  beam : int;
  bst_cost : float;
  lubt_cost : float;
  seconds : float;
}

val beam_ablation :
  ?size:Lubt_data.Benchmarks.size -> ?bench:string -> ?skew_rel:float -> unit -> beam_row list
(** Effect of the baseline's beam width on its cost and on the LUBT cost
    that the extracted topology supports (design-choice ablation for the
    [lubt.bst] router). *)

val print_beam_ablation : beam_row list -> unit

type topo_opt_row = {
  bench : string;
  window : float * float;  (** (lower, upper) x radius *)
  baseline_topology_cost : float;
  optimised_cost : float;
  moves : int;
  lp_evaluations : int;
}

val topo_opt_ablation :
  ?size:Lubt_data.Benchmarks.size -> ?bench:string -> unit -> topo_opt_row list
(** The paper's future-work experiment: improving the topology under the
    actual [l, u] bounds (Section 9), measured against the skew-guided
    generator's topology. *)

val print_topo_opt_ablation : topo_opt_row list -> unit

type gap_row = {
  bench : string;
  skew_rel : float;
  greedy_cost : float;  (** the [9]-style heuristic *)
  optimal_bst_cost : float;  (** {!Lubt_core.Skew_lp} on the same topology *)
  lubt_window_cost : float;  (** LUBT at the greedy run's achieved window *)
}

val optimality_gap :
  ?size:Lubt_data.Benchmarks.size -> ?bench:string -> unit -> gap_row list
(** Extension experiment: quantifies the greedy baseline's gap to the
    per-topology optimum (the free-window LP of {!Lubt_core.Skew_lp}),
    and situates the paper's fixed-window LUBT between the two. *)

val print_optimality_gap : gap_row list -> unit

type elmore_row = {
  upper_rel : float;  (** width of the delay window, relative to the
                          model's relaxed maximum delay *)
  linear_cost : float;
  elmore_cost : float;
  elmore_violation : float;
  slp_iterations : int;
}

val elmore_table : ?bench:string -> unit -> elmore_row list
(** Extension experiment (Section 7): wire cost of meeting a clock-style
    delay window [lo, 1.05] x (relaxed max delay) under the linear model
    vs the Elmore model (sequential LP; the positive lower bound is the
    non-convex case the paper highlights). Runs on the tiny benchmark
    size — the SLP's eager Steiner rows grow quadratically. *)

val print_elmore_table : elmore_row list -> unit

type global_routing_row = {
  epsilon : float;
  mst_cost : float;
  brbc_cost : float;
  brbc_max_path : float;  (** / radius *)
  lubt_cost : float;  (** LUBT with cap (1+epsilon) x radius, same topology *)
  lubt_max_path : float;
}

val global_routing_table :
  ?size:Lubt_data.Benchmarks.size -> ?bench:string -> unit -> global_routing_row list
(** Extension experiment: the upper-bound-only LUBT case ([l = 0,
    u < inf], Section 4.3) against the classic provably-good
    bounded-radius global router (reference [1]), at matched radius
    bounds (1 + epsilon) x radius. *)

val print_global_routing_table : global_routing_row list -> unit
