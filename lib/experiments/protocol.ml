module Benchmarks = Lubt_data.Benchmarks
module Bst_dme = Lubt_bst.Bst_dme
module Instance = Lubt_core.Instance
module Ebf = Lubt_core.Ebf
module Simplex = Lubt_lp.Simplex
module Status = Lubt_lp.Status

type baseline_run = {
  spec : Benchmarks.spec;
  radius : float;
  skew_rel : float;
  bst : Bst_dme.result;
  shortest_rel : float;
  longest_rel : float;
  bst_seconds : float;
}

type lubt_run = {
  lower_rel : float;
  upper_rel : float;
  cost : float;
  ebf : Ebf.result;
  lubt_seconds : float;
}

let time f =
  let t0 = Lubt_obs.Clock.now () in
  let v = f () in
  (v, Lubt_obs.Clock.now () -. t0)

let run_baseline spec ~skew_rel =
  let sinks = Benchmarks.sinks spec in
  let source = Benchmarks.source spec in
  let inst0 =
    Instance.uniform_bounds ~source ~sinks ~lower:0.0 ~upper:infinity ()
  in
  let radius = Instance.radius inst0 in
  let bound = if skew_rel = infinity then infinity else skew_rel *. radius in
  let bst, bst_seconds =
    time (fun () -> Bst_dme.route ~skew_bound:bound ~source sinks)
  in
  {
    spec;
    radius;
    skew_rel;
    bst;
    shortest_rel = bst.Bst_dme.dmin /. radius;
    longest_rel = bst.Bst_dme.dmax /. radius;
    bst_seconds;
  }

let run_lubt ?options (b : baseline_run) ~lower_rel ~upper_rel =
  let inst0 = b.bst.Bst_dme.routed.Lubt_core.Routed.instance in
  let m = Instance.num_sinks inst0 in
  let lower = Array.make m (lower_rel *. b.radius) in
  let upper =
    Array.make m
      (if upper_rel = infinity then infinity else upper_rel *. b.radius)
  in
  let inst = Instance.with_bounds inst0 ~lower ~upper in
  let ebf, lubt_seconds =
    time (fun () -> Ebf.solve ?options inst b.bst.Bst_dme.topology)
  in
  if ebf.Ebf.status <> Status.Optimal then
    failwith
      (Printf.sprintf "LUBT LP on %s [%g, %g] returned %s" b.spec.Benchmarks.name
         lower_rel upper_rel
         (Status.to_string ebf.Ebf.status));
  {
    lower_rel;
    upper_rel;
    cost = ebf.Ebf.objective;
    ebf;
    lubt_seconds;
  }

let run_lubt_from_baseline ?options (b : baseline_run) =
  if b.skew_rel = infinity then
    run_lubt ?options b ~lower_rel:0.0 ~upper_rel:infinity
  else run_lubt ?options b ~lower_rel:b.shortest_rel ~upper_rel:b.longest_rel

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark records (BENCH_lp.json)                   *)
(* ------------------------------------------------------------------ *)

type bench_entry = {
  bench_name : string;
  ms_per_run : float;
  solver : Simplex.stats option;
  ebf_result : Ebf.result option;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no inf/nan literals *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let recoveries_json (r : Simplex.recoveries) =
  Printf.sprintf
    "{\"refactor_retries\": %d, \"backend_switches\": %d, \
     \"tolerance_escalations\": %d, \"perturbed_resolves\": %d, \
     \"tableau_fallbacks\": %d, \"faults_injected\": %d, \
     \"validations_rejected\": %d}"
    r.Simplex.refactor_retries r.Simplex.backend_switches
    r.Simplex.tolerance_escalations r.Simplex.perturbed_resolves
    r.Simplex.tableau_fallbacks r.Simplex.faults_injected
    r.Simplex.validations_rejected

let solver_stats_json (s : Simplex.stats) =
  Printf.sprintf
    "{\"iterations\": %d, \"phase1_iterations\": %d, \
     \"phase2_iterations\": %d, \"dual_iterations\": %d, \
     \"bound_flips\": %d, \"full_pricing_scans\": %d, \
     \"partial_pricing_scans\": %d, \"ftran_count\": %d, \
     \"btran_count\": %d, \"hyper_sparse_ftrans\": %d, \
     \"hyper_sparse_btrans\": %d, \"basis_updates\": %d, \
     \"basis_extensions\": %d, \"refactorisations\": %d, \
     \"degenerate_pivots\": %d, \"bland_activations\": %d, \
     \"phase1_ms\": %s, \"phase2_ms\": %s, \"dual_ms\": %s, \
     \"recoveries\": %s}"
    s.Simplex.iterations s.Simplex.phase1_iterations
    s.Simplex.phase2_iterations s.Simplex.dual_iterations
    s.Simplex.bound_flips s.Simplex.full_pricing_scans
    s.Simplex.partial_pricing_scans s.Simplex.ftran_count
    s.Simplex.btran_count s.Simplex.hyper_sparse_ftrans
    s.Simplex.hyper_sparse_btrans s.Simplex.basis_updates
    s.Simplex.basis_extensions s.Simplex.refactorisations
    s.Simplex.degenerate_pivots s.Simplex.bland_activations
    (json_float (s.Simplex.phase1_seconds *. 1e3))
    (json_float (s.Simplex.phase2_seconds *. 1e3))
    (json_float (s.Simplex.dual_seconds *. 1e3))
    (recoveries_json s.Simplex.recoveries)

let round_stat_json (r : Ebf.round_stat) =
  Printf.sprintf
    "{\"round\": %d, \"rows_added\": %d, \"violations_found\": %d, \
     \"warm_rows\": %d, \"scan_ms\": %s, \"solve_ms\": %s, \
     \"solve_pivots\": %d}"
    r.Ebf.round r.Ebf.rows_added r.Ebf.violations_found r.Ebf.warm_rows
    (json_float (r.Ebf.scan_seconds *. 1e3))
    (json_float (r.Ebf.solve_seconds *. 1e3))
    r.Ebf.solve_pivots

let ebf_result_json (e : Ebf.result) =
  Printf.sprintf
    "{\"status\": \"%s\", \"objective\": %s, \"lp_rows\": %d, \
     \"full_rows\": %d, \"lp_iterations\": %d, \"rounds\": %d, \
     \"cache\": \"%s\", \"round_stats\": [%s]}"
    (json_escape (Status.to_string e.Ebf.status))
    (json_float e.Ebf.objective) e.Ebf.lp_rows e.Ebf.full_rows
    e.Ebf.lp_iterations e.Ebf.rounds
    (json_escape (Ebf.cache_outcome_name e.Ebf.cache_outcome))
    (String.concat ", " (List.map round_stat_json e.Ebf.round_stats))

let bench_entry_json e =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\": \"%s\", \"ms_per_run\": %s"
       (json_escape e.bench_name)
       (json_float e.ms_per_run));
  (match e.solver with
  | Some s -> Buffer.add_string buf (", \"solver\": " ^ solver_stats_json s)
  | None -> ());
  (match e.ebf_result with
  | Some r -> Buffer.add_string buf (", \"ebf\": " ^ ebf_result_json r)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

type scaling_point = {
  sc_jobs : int;
  sc_wall_s : float;
  sc_speedup : float;
  sc_instances : int;
}

let scaling_point_json p =
  Printf.sprintf
    "{\"jobs\": %d, \"wall_s\": %s, \"speedup\": %s, \"instances\": %d}"
    p.sc_jobs (json_float p.sc_wall_s) (json_float p.sc_speedup) p.sc_instances

let bench_json ?(jobs = 1) ?(scaling = []) ?(scaling_skipped = false) ~size
    entries =
  let scaling_field =
    (* an explicitly-skipped sweep is recorded, not omitted, so a
       consumer can tell "not measured" from "measured empty" *)
    if scaling_skipped then ",\n  \"scaling\": [],\n  \"scaling_skipped\": true"
    else
      match scaling with
      | [] -> ""
      | points ->
        Printf.sprintf ",\n  \"scaling\": [\n    %s\n  ]"
          (String.concat ",\n    " (List.map scaling_point_json points))
  in
  Printf.sprintf
    "{\n  \"schema\": \"lubt-bench/4\",\n  \"size\": \"%s\",\n  \
     \"jobs\": %d,\n  \"cores\": %d,\n  \
     \"benchmarks\": [\n    %s\n  ]%s\n}\n"
    (json_escape size) jobs
    (Lubt_util.Pool.default_jobs ())
    (String.concat ",\n    " (List.map bench_entry_json entries))
    scaling_field
