(* Request-scoped graceful degradation: certified EBF -> uncertified
   EBF -> reduced-round EBF -> BRBC heuristic. The service-level mirror
   of the in-solver recovery ladder of Simplex.solve: there a failing
   *factorisation* steps down through cheaper engines; here a failing
   (or deadline-starved) *solve* steps down through cheaper answers. *)

module Ebf = Lubt_core.Ebf
module Embed = Lubt_core.Embed
module Lubt = Lubt_core.Lubt
module Instance = Lubt_core.Instance
module Routed = Lubt_core.Routed
module Brbc = Lubt_bst.Brbc
module Clock = Lubt_obs.Clock
module Certify = Lubt_lp.Certify
module Status = Lubt_lp.Status
module Metrics = Lubt_obs.Metrics

(* which rung answered, as a labelled counter family: the service-level
   quality mix (how often requests degrade, and to where) in one scrape *)
let m_rung name =
  Metrics.counter ~help:"Ladder answers by winning rung"
    ~labels:[ ("rung", name) ]
    "lubt_ladder_answers_total"

let m_rung_certified = m_rung "certified"
let m_rung_uncertified = m_rung "uncertified"
let m_rung_reduced = m_rung "reduced"
let m_rung_heuristic = m_rung "heuristic"

type rung = Certified | Uncertified | Reduced | Heuristic

let rung_to_string = function
  | Certified -> "certified"
  | Uncertified -> "uncertified"
  | Reduced -> "reduced"
  | Heuristic -> "heuristic"

let count_rung rung =
  Metrics.incr
    (match rung with
    | Certified -> m_rung_certified
    | Uncertified -> m_rung_uncertified
    | Reduced -> m_rung_reduced
    | Heuristic -> m_rung_heuristic)

type outcome = {
  report : Lubt.report option;
  routed : Routed.t;
  rung : rung;
  degraded : bool;
  attempts : (rung * string) list;
  verified : bool;
}

type error =
  | Infeasible
  | Exhausted of (rung * string) list

let error_to_string = function
  | Infeasible -> "infeasible: no LUBT exists for this topology and bounds"
  | Exhausted attempts ->
    let b = Buffer.create 128 in
    Buffer.add_string b "every rung of the degradation ladder failed:";
    List.iter
      (fun (r, msg) ->
        Buffer.add_string b
          (Printf.sprintf "\n  %s: %s" (rung_to_string r) msg))
      attempts;
    Buffer.contents b

type options = {
  base : Ebf.options;
  deadline : float option;
  reduced_rounds : int;
  min_lp_budget : float;
  epsilon : float;
  tweak : rung -> Ebf.options -> Ebf.options;
}

let default_options =
  {
    base = Ebf.default_options;
    deadline = None;
    reduced_rounds = 2;
    min_lp_budget = 1e-3;
    epsilon = 1.0;
    tweak = (fun _ o -> o);
  }

(* The uniform acceptance check every rung's answer must pass before the
   ladder returns it: the independent geometric re-verification of the
   embedding (Embed.verify shares no state with placement). Delay-bound
   satisfaction is deliberately NOT required here — the whole point of
   the lower rungs is a feasible tree now over a bound-certified tree
   later; Routed.validate remains available to callers who care. *)
let verify_routed inst (r : Routed.t) =
  Embed.verify inst r.Routed.tree r.Routed.lengths
    { Embed.positions = r.Routed.positions; feasible_regions = [||] }

let heuristic ?(epsilon = 1.0) inst =
  match inst.Instance.source with
  | None ->
    Error
      (Exhausted [ (Heuristic, "instance has no source (BRBC requires one)") ])
  | Some source ->
    let b = Brbc.route ~epsilon ~source inst.Instance.sinks in
    let routed = { b.Brbc.routed with Routed.instance = inst } in
    let verified =
      match verify_routed inst routed with Ok () -> true | Error _ -> false
    in
    count_rung Heuristic;
    Ok
      {
        report = None;
        routed;
        rung = Heuristic;
        degraded = true;
        attempts = [];
        verified;
      }

exception Ladder_infeasible

let solve opts inst tree =
  let attempts = ref [] in
  let fail rung msg = attempts := (rung, msg) :: !attempts in
  let remaining () =
    match opts.deadline with
    | None -> infinity
    | Some d -> d -. Clock.now ()
  in
  let top_rung =
    if opts.base.Ebf.check <> Certify.Off then Certified else Uncertified
  in
  let finish rung report routed =
    count_rung rung;
    let verified =
      match verify_routed inst routed with Ok () -> true | Error _ -> false
    in
    {
      report;
      routed;
      rung;
      degraded = rung <> top_rung;
      attempts = List.rev !attempts;
      verified;
    }
  in
  (* One full-quality EBF attempt (Lubt.solve: LP + placement + the
     configured certification). [frac] spends only part of the budget
     that is left, keeping the rest for the rungs below. *)
  let lp_rung rung ~check ~frac =
    let rem = remaining () in
    if rem < opts.min_lp_budget then begin
      fail rung
        (Printf.sprintf "skipped: %.3gs of deadline budget left" rem);
      None
    end
    else begin
      let time_limit =
        Float.min opts.base.Ebf.time_limit
          (if rem = infinity then infinity else rem *. frac)
      in
      let options =
        opts.tweak rung { opts.base with Ebf.check; time_limit }
      in
      match Lubt.solve ~options inst tree with
      | Ok report -> Some (finish rung (Some report) report.Lubt.routed)
      | Error Lubt.No_solution -> raise Ladder_infeasible
      | Error e ->
        fail rung (Lubt.error_to_string e);
        None
    end
  in
  (* The reduced rung drives Ebf.solve directly: Lubt.solve (rightly)
     refuses to embed a non-Optimal solve, but lengths from an exhausted
     row generation are still usable whenever placement succeeds — the
     un-materialised Steiner rows they might violate are exactly what
     Embed.place's feasible-region intersection detects. *)
  let reduced_rung () =
    let rem = remaining () in
    if rem < opts.min_lp_budget then begin
      fail Reduced
        (Printf.sprintf "skipped: %.3gs of deadline budget left" rem);
      None
    end
    else begin
      let time_limit =
        Float.min opts.base.Ebf.time_limit
          (if rem = infinity then infinity else rem *. 0.8)
      in
      let options =
        opts.tweak Reduced
          {
            opts.base with
            Ebf.check = Certify.Off;
            max_rounds = opts.reduced_rounds;
            time_limit;
          }
      in
      let res = Ebf.solve ~options inst tree in
      match res.Ebf.status with
      | Status.Infeasible -> raise Ladder_infeasible
      | Status.Optimal | Status.Time_limit | Status.Iteration_limit -> (
        match Embed.place inst tree res.Ebf.lengths with
        | Ok emb ->
          let routed =
            {
              Routed.instance = inst;
              tree;
              lengths = res.Ebf.lengths;
              positions = emb.Embed.positions;
            }
          in
          (match verify_routed inst routed with
          | Ok () ->
            Some (finish Reduced (Some { Lubt.routed; ebf = res }) routed)
          | Error msg ->
            fail Reduced (Printf.sprintf "verification failed: %s" msg);
            None)
        | Error msg ->
          fail Reduced (Printf.sprintf "placement failed: %s" msg);
          None)
      | st ->
        fail Reduced
          (Printf.sprintf "reduced solve ended %s"
             (Status.to_string st));
        None
    end
  in
  (* The floor: a BRBC tree from scratch. Needs no LP, no deadline
     budget, and no topology — but it does need a source (the radius
     guarantee is source-relative), and it honours delay bounds only by
     accident. *)
  let heuristic_rung () =
    match inst.Instance.source with
    | None ->
      fail Heuristic "instance has no source (BRBC requires one)";
      None
    | Some source ->
      let b = Brbc.route ~epsilon:opts.epsilon ~source inst.Instance.sinks in
      let routed = { b.Brbc.routed with Routed.instance = inst } in
      Some (finish Heuristic None routed)
  in
  try
    let result =
      match
        if top_rung = Certified then
          lp_rung Certified ~check:opts.base.Ebf.check ~frac:0.5
        else None
      with
      | Some _ as r -> r
      | None -> (
        match lp_rung Uncertified ~check:Certify.Off ~frac:0.5 with
        | Some _ as r -> r
        | None -> (
          match reduced_rung () with
          | Some _ as r -> r
          | None -> heuristic_rung ()))
    in
    match result with
    | Some outcome -> Ok outcome
    | None -> Error (Exhausted (List.rev !attempts))
  with Ladder_infeasible -> Error Infeasible
