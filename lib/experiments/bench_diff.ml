module Json = Lubt_obs.Json

type verdict = Regression | Improvement | Unchanged

type entry_delta = {
  d_name : string;
  d_old_ms : float;
  d_new_ms : float;
  d_ratio : float;
  d_verdict : verdict;
  d_counters : (string * float * float) list;
}

type report = {
  r_threshold : float;
  r_abs_floor_ms : float;
  r_slo_threshold : float;
  r_slo_floor_ms : float;
  r_deltas : entry_delta list;
  r_only_old : string list;
  r_only_new : string list;
}

(* phase timings inside the solver record are wall-clock noise; every
   other solver member is a deterministic pivot-trajectory counter *)
let noisy_counter name =
  match name with
  | "phase1_ms" | "phase2_ms" | "dual_ms" -> true
  | _ -> false

let has_suffix name s =
  let nl = String.length name and sl = String.length s in
  nl >= sl && String.sub name (nl - sl) sl = s

(* Count- and rate-valued benchmarks (serve_retries_count,
   serve_cache_hit_rate, ...) ride in the [ms_per_run] slot but are
   workload statistics, not timings: their drift is worth reporting,
   but gating on them would fail CI whenever the load mix shifts —
   e.g. a cold CI cache lowering the hit rate. *)
let counter_entry name = has_suffix name "_count" || has_suffix name "_rate"

(* Latency-quantile entries (serve_latency_p95, ...) are SLO entries:
   tail latencies are real service contracts but far noisier than
   steady-state ms/run, so they gate under their own wider threshold
   and higher absolute floor. *)
let slo_entry name =
  has_suffix name "_p50" || has_suffix name "_p95" || has_suffix name "_p99"

let ( let* ) = Result.bind

let err_ctx file = Result.map_error (fun e -> file ^ ": " ^ e)

let get file what conv j =
  match Option.bind (Json.member what j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or mistyped %S member" file what)

(* The writer serialises non-finite floats as [null] (JSON has no
   inf/nan literals), and rate entries are legitimately nan when the
   statistic is unobservable — e.g. the warm-start hit rate against an
   external daemon. Read them back as nan; the non-finite-delta guard
   in [compare] keeps them out of every verdict. *)
let num_or_null j =
  match Json.num j with
  | Some _ as v -> v
  | None -> if j = Json.Null then Some nan else None

(* one benchmark entry -> (name, ms_per_run, flat counter list) *)
let parse_entry file j =
  let* name = get file "name" Json.str j in
  let* ms = get file "ms_per_run" num_or_null j in
  let counters =
    match Json.member "solver" j with
    | Some (Json.Obj fields) ->
      List.concat_map
        (fun (k, v) ->
          match v with
          | Json.Num n when not (noisy_counter k) -> [ (k, n) ]
          | Json.Obj nested ->
            List.filter_map
              (fun (nk, nv) ->
                match nv with
                | Json.Num n -> Some (k ^ "." ^ nk, n)
                | _ -> None)
              nested
          | _ -> [])
        fields
    | _ -> []
  in
  Ok (name, ms, counters)

let parse_bench file s =
  let* j = err_ctx file (Json.parse s) in
  let* schema = get file "schema" Json.str j in
  if not (String.length schema >= 11 && String.sub schema 0 11 = "lubt-bench/")
  then Error (file ^ ": not a lubt-bench file (schema " ^ schema ^ ")")
  else
    let* entries = get file "benchmarks" Json.arr j in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest ->
        let* p = parse_entry file e in
        collect (p :: acc) rest
    in
    collect [] entries

let diff_counters old_cs new_cs =
  List.filter_map
    (fun (k, ov) ->
      match List.assoc_opt k new_cs with
      | Some nv when nv <> ov -> Some (k, ov, nv)
      | _ -> None)
    old_cs

let compare ?(threshold = 0.10) ?(abs_floor_ms = 0.05) ?(slo_threshold = 0.50)
    ?(slo_floor_ms = 1.0) old_json new_json =
  let* old_entries = parse_bench "old" old_json in
  let* new_entries = parse_bench "new" new_json in
  let find name entries =
    List.find_opt (fun (n, _, _) -> n = name) entries
  in
  let deltas =
    List.filter_map
      (fun (name, old_ms, old_cs) ->
        match find name new_entries with
        | None -> None
        | Some (_, new_ms, new_cs) ->
          let ratio = new_ms /. old_ms in
          let delta = new_ms -. old_ms in
          (* The ratio gate alone misfires on degenerate baselines: a
             zero or sub-microsecond old entry (fast machine, tiny
             instance, failed OLS fit) turns picosecond jitter into an
             inf/nan or a huge finite ratio. The absolute-delta floor
             clamps those: a change smaller than [abs_floor_ms] is
             never a verdict, and when the baseline is zero (ratio
             meaningless) the sign of the delta alone decides. *)
          let verdict =
            (* SLO entries gate like timings, under their own wider
               threshold and higher floor *)
            let threshold, abs_floor_ms =
              if slo_entry name then (slo_threshold, slo_floor_ms)
              else (threshold, abs_floor_ms)
            in
            if counter_entry name then Unchanged
            else if not (Float.is_finite delta) then Unchanged
            else if Float.abs delta <= abs_floor_ms then Unchanged
            else if old_ms <= 0.0 || not (Float.is_finite ratio) then
              if delta > 0.0 then Regression else Improvement
            else if ratio > 1.0 +. threshold then Regression
            else if ratio < 1.0 -. threshold then Improvement
            else Unchanged
          in
          Some
            {
              d_name = name;
              d_old_ms = old_ms;
              d_new_ms = new_ms;
              d_ratio = ratio;
              d_verdict = verdict;
              d_counters = diff_counters old_cs new_cs;
            })
      old_entries
  in
  let names entries = List.map (fun (n, _, _) -> n) entries in
  let only_old =
    List.filter (fun n -> find n new_entries = None) (names old_entries)
  in
  let only_new =
    List.filter (fun n -> find n old_entries = None) (names new_entries)
  in
  Ok
    {
      r_threshold = threshold;
      r_abs_floor_ms = abs_floor_ms;
      r_slo_threshold = slo_threshold;
      r_slo_floor_ms = slo_floor_ms;
      r_deltas = deltas;
      r_only_old = only_old;
      r_only_new = only_new;
    }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error e -> Error e

let compare_files ?threshold ?abs_floor_ms ?slo_threshold ?slo_floor_ms
    old_path new_path =
  let* old_json = read_file old_path in
  let* new_json = read_file new_path in
  compare ?threshold ?abs_floor_ms ?slo_threshold ?slo_floor_ms old_json
    new_json

let regressions r =
  List.filter (fun d -> d.d_verdict = Regression) r.r_deltas

let has_regression r = regressions r <> [] || r.r_only_old <> []

let verdict_tag = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> ""

let print oc r =
  Printf.fprintf oc
    "bench diff (threshold %.1f%%, floor %.3f ms; SLO threshold %.1f%%, \
     floor %.3f ms): %d benchmarks compared\n"
    (r.r_threshold *. 100.0) r.r_abs_floor_ms
    (r.r_slo_threshold *. 100.0) r.r_slo_floor_ms
    (List.length r.r_deltas);
  List.iter
    (fun d ->
      let pct =
        if Float.is_finite d.d_ratio then
          Printf.sprintf "%+7.1f%%" ((d.d_ratio -. 1.0) *. 100.0)
        else Printf.sprintf "%+.3f ms" (d.d_new_ms -. d.d_old_ms)
      in
      let tag =
        if counter_entry d.d_name then
          if
            d.d_old_ms <> d.d_new_ms
            && not (Float.is_nan d.d_old_ms && Float.is_nan d.d_new_ms)
          then "drift (not gated)"
          else ""
        else if slo_entry d.d_name then
          match d.d_verdict with
          | Regression -> "SLO REGRESSION"
          | Improvement -> "SLO improvement"
          | Unchanged -> ""
        else verdict_tag d.d_verdict
      in
      Printf.fprintf oc "%-40s %10.3f -> %10.3f ms/run  %s  %s\n"
        d.d_name d.d_old_ms d.d_new_ms pct tag;
      List.iter
        (fun (k, ov, nv) ->
          Printf.fprintf oc "    counter %-32s %.0f -> %.0f\n" k ov nv)
        d.d_counters)
    r.r_deltas;
  List.iter
    (fun n -> Printf.fprintf oc "%-40s MISSING from new run\n" n)
    r.r_only_old;
  List.iter
    (fun n -> Printf.fprintf oc "%-40s only in new run\n" n)
    r.r_only_new;
  let regs = List.length (regressions r) in
  if has_regression r then
    Printf.fprintf oc "verdict: %d regression(s)%s\n" regs
      (if r.r_only_old <> [] then
         Printf.sprintf ", %d benchmark(s) lost" (List.length r.r_only_old)
       else "")
  else Printf.fprintf oc "verdict: ok\n"
