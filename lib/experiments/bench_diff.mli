(** Bench regression gate: compare two [lubt-bench/*] JSON files.

    [bench timing --json] writes one machine-readable record per
    benchmark (ms/run plus solver counters). This module diffs two
    such files — typically a committed baseline (BENCH_lp.json)
    against a fresh run — and classifies each benchmark's timing
    delta against a threshold, so CI can fail on a regression
    instead of a human eyeballing numbers.

    Timing verdicts use [ms_per_run] only. Solver counters
    (iterations, pricing scans, refactorisations, ...) are diffed
    exactly and reported, but never gate: on identical code they are
    deterministic, so any counter drift is surfaced loudly — it means
    the pivot trajectory changed — while wall-clock noise does not
    produce false counter alarms. Phase timing fields ([phase1_ms],
    [phase2_ms], [dual_ms]) are noise and are ignored.

    Benchmarks whose name ends in [_count] or [_rate] (the serve
    robustness counters and the warm-start cache hit rate) carry a
    workload statistic in the [ms_per_run] slot, not a timing: they
    are always [Unchanged] — their drift is printed as
    ["drift (not gated)"] but can never fail the gate, since the
    statistic legitimately shifts with the load mix (a cold cache, a
    different chaos seed).

    Benchmarks whose name ends in [_p50], [_p95] or [_p99] (the serve
    latency quantiles, client- and server-side) are {b SLO entries}:
    tail latencies are service contracts worth gating, but they are
    far noisier than steady-state ms/run, so they use their own wider
    relative threshold and higher absolute floor ([slo_threshold],
    [slo_floor_ms]). An SLO breach is a [Regression] like any other
    (it fails the gate) and prints as ["SLO REGRESSION"]. *)

type verdict =
  | Regression  (** new ms/run above old by more than the threshold *)
  | Improvement  (** new ms/run below old by more than the threshold *)
  | Unchanged  (** within the threshold either way *)

type entry_delta = {
  d_name : string;
  d_old_ms : float;
  d_new_ms : float;
  d_ratio : float;  (** new / old *)
  d_verdict : verdict;
  d_counters : (string * float * float) list;
      (** solver counters whose values differ: (name, old, new).
          Nested recovery counters are reported as
          ["recoveries.<field>"]. *)
}

type report = {
  r_threshold : float;  (** the gate, as a fraction (0.10 = 10%) *)
  r_abs_floor_ms : float;  (** the absolute-delta floor, milliseconds *)
  r_slo_threshold : float;  (** the SLO-entry gate, as a fraction *)
  r_slo_floor_ms : float;  (** the SLO absolute-delta floor, ms *)
  r_deltas : entry_delta list;  (** benchmarks present in both files *)
  r_only_old : string list;  (** benchmarks missing from the new file *)
  r_only_new : string list;  (** benchmarks missing from the old file *)
}

val compare :
  ?threshold:float -> ?abs_floor_ms:float -> ?slo_threshold:float ->
  ?slo_floor_ms:float -> string -> string ->
  (report, string) result
(** [compare old_json new_json] parses two bench-JSON strings and
    diffs them. [threshold] is the relative timing gate (default
    [0.10] = 10%). [abs_floor_ms] (default [0.05]) clamps the ratio
    gate: a delta of at most that many milliseconds is always
    [Unchanged], and when the old entry is zero or non-finite — where
    the ratio degenerates to [inf]/[nan] — the verdict falls back to
    the sign of the absolute delta instead of failing spuriously.
    [slo_threshold] (default [0.50] = 50%) and [slo_floor_ms] (default
    [1.0]) play the same two roles for SLO entries ([_p50]/[_p95]/
    [_p99] suffixes). A [null] ms/run (the bench writer's encoding of
    nan — e.g. an unobservable hit rate against an external daemon)
    parses as nan and can never produce a verdict. [Error] reports a
    parse or schema problem with the offending file named. *)

val compare_files :
  ?threshold:float -> ?abs_floor_ms:float -> ?slo_threshold:float ->
  ?slo_floor_ms:float -> string -> string ->
  (report, string) result
(** [compare_files old_path new_path] reads and {!compare}s two files. *)

val regressions : report -> entry_delta list

val has_regression : report -> bool
(** True when any benchmark regressed, or when a benchmark present in
    the old file is missing from the new one (losing coverage must
    not pass silently). *)

val print : out_channel -> report -> unit
(** Renders the delta table: one line per benchmark with old/new
    ms/run, the ratio, the verdict, and any counter drift indented
    beneath. *)
