(** [lubt serve]: a long-lived routing-tree daemon.

    The paper's LUBT formulation is a per-instance LP, but the workload
    it models — repeated delay-bounded routing queries over engineering
    iterations — is a service. This module is the request/session layer
    over the solver engine: a concurrent JSON-lines protocol served
    over a Unix socket and/or TCP, scheduled onto a persistent
    {!Lubt_util.Pool.Executor} worker pool with bounded-queue
    backpressure and per-request deadlines.

    {2 Protocol}

    One JSON object per line in each direction. A request:

    {v
    {"id": "r1", "bench": "prim1s", "size": "tiny", "seed": 3}
    {"id": 2, "instance": "sink 0 1 0 inf\nsink 2 3 0 inf\n",
     "certify": true, "time_limit": 5.0}
    {"id": "p", "op": "ping"}
    v}

    Fields:
    - [id] — any JSON value, echoed verbatim in the response
      (default [null]);
    - [op] — ["solve"] (default), ["eco"] (an incremental re-solve: a
      solve-shaped request plus an [edits] array, see below), ["ping"],
      ["metrics"] (a JSON dump of the daemon's {!Lubt_obs.Metrics}
      registry snapshot — the same data the Prometheus endpoint
      renders), or ["sleep"] (a load-testing aid; occupies a worker for
      [ms] milliseconds);
    - workload — either [instance] (the {!Lubt_data.Io} instance text,
      with optional [topology] tree text; the baseline router produces
      a topology when absent) or [bench] (a {!Lubt_data.Benchmarks}
      name with optional [size] (["tiny"]|["scaled"]|["full"], default
      tiny), [seed] offset and [skew] (× radius, default [0.5]); the
      LUBT window is the baseline's achieved one, exactly the
      [lubt batch] protocol);
    - [eager] — disable lazy row generation (default [false]);
    - [certify] — a-posteriori certification (default [true]: serve
      answers are certified unless the client opts out);
    - [time_limit] — per-request wall-clock budget in seconds,
      overriding the daemon's [--default-time-limit];
    - [degrade] — opt into the {!Ladder} (default [false]): under
      deadline pressure or a saturated pool the request is answered by
      the best rung that still fits (certified → uncertified →
      reduced-round → BRBC heuristic) instead of failing. A degraded
      success carries ["degraded": true] and ["quality"] naming the
      rung; non-degrade successes carry ["degraded": false].

    An ["eco"] request carries every solve field plus a non-empty
    [edits] array describing an engineering change order against the
    request's workload. Each element is an object discriminated by its
    [edit] member:

    {v
    {"edit": "set_bounds", "sink": 2, "lower": 1.5, "upper": 4.0}
    {"edit": "move_sink", "sink": 0, "dx": -3.0, "dy": 1.0}
    {"edit": "add_sink", "x": 10.0, "y": 4.0, "lower": 0, "upper": 9.0}
    {"edit": "remove_sink", "sink": 1}
    v}

    [lower]/[upper] default to the unconstrained window ([0] and
    infinity — JSON cannot spell the latter, so an absent [upper] means
    unbounded). The edits are applied in order to the base instance and
    the edited instance is solved; when every edit preserves the sink
    set ([set_bounds], [move_sink]) the base topology is reused, which
    is exactly the case the cross-request warm-start cache
    ({!Lubt_lp.Basis_cache}) accelerates — solve the base first, then
    send [eco] requests, and the daemon warm-restarts the dual simplex
    from the parent's cached basis. An edit chain that fails to apply
    (sink index out of range, inverted bounds, removing the last sink)
    is answered with error code [edit_failed].

    A success response reuses the [lubt solve --json] report shape,
    wrapped in the request envelope:

    {v
    {"id": "r1", "ok": true, "status": "optimal", "wall_ms": 12.3,
     "cost": ..., "validated": true, "certified": true,
     "ebf": {...}, "solver": {...}}
    v}

    A failure response carries a structured error instead:

    {v
    {"id": "r1", "ok": false,
     "error": {"code": "overloaded", "message": "..."}}
    v}

    with [code] one of [bad_request], [overloaded], [shutting_down],
    [infeasible], [edit_failed] (an [eco] edit chain could not be
    applied), [time_limit], [solver_failure], [embedding_failure],
    [degraded_failed] (every ladder rung failed), [worker_crashed] (the
    worker domain running the request died; the daemon replaced it),
    [watchdog_timeout] (the request overran the [--watchdog] hard
    deadline; its worker was deposed and replaced), [dropped] (shutdown
    cancelled the queued request), [breaker_open] (admission control —
    the error object additionally carries [retry_after_ms]) or
    [internal]. A malformed or failing request never terminates the
    daemon or its connection: every line gets a reply, in completion
    order (responses are matched to requests by [id], not by
    position — concurrent requests on one connection may complete out
    of order).

    [ping] responses carry a [health] object — queue depth, running and
    live worker counts, supervision counters ([restarts],
    [watchdog_fires]), breaker state, the served/degraded/rejected
    totals and the warm-start cache counters ([cache_hits],
    [cache_misses], [cache_rejects]; zeros when the daemon runs
    cacheless) — so clients can make admission decisions without a
    separate endpoint.

    {2 Metrics}

    The daemon enables the {!Lubt_obs.Metrics} registry and counts its
    request path into it: requests by outcome, per-op latency
    histograms ([lubt_serve_request_latency_ms]), breaker trips, bytes
    in/out, plus whatever the solver layers record (simplex work
    counters, EBF rounds, executor supervision, warm-start cache
    outcomes). Two exports read the same registry snapshot: the
    ["metrics"] protocol op (JSON), and — with [metrics_port] set — a
    Prometheus text-exposition endpoint ([GET /metrics]) on a plain
    HTTP listener handled entirely on the accept loop, so a scraper can
    never occupy a worker. The circuit breaker's p95 is itself read
    from a rolling two-epoch latency histogram over the same bucket
    grid (O(buckets) per admission check rather than sorting a window
    under the lock).

    {2 Scheduling and observability}

    Requests are parsed on the session thread and executed on the
    executor's worker domains. When [max_pending] requests are already
    queued, new solve requests are refused immediately with
    [overloaded] — bounded backpressure instead of an unbounded queue.
    Each request runs under {!Lubt_obs.Trace.with_context} carrying its
    [req] id, so its spans, counters and every {!Lubt_obs.Log} line it
    emits are stamped with the request id; worker domains record into
    their own trace buffers, so concurrent requests render as separate
    tid tracks. *)

type config = {
  socket : string option;  (** Unix-domain socket path to listen on *)
  port : int option;  (** TCP port to listen on (on [host]) *)
  host : string;  (** TCP bind address (default ["127.0.0.1"]) *)
  jobs : int;  (** worker domains (default 4) *)
  max_pending : int;  (** queued-request bound (default 64) *)
  default_time_limit : float;
      (** per-request wall-clock budget when the request names none
          (default [infinity] = no deadline) *)
  watchdog : float;
      (** hard per-request deadline in seconds (default [infinity] =
          off): a request running longer has its worker deposed and
          replaced ({!Lubt_util.Pool.Executor}) and is answered with
          [watchdog_timeout] *)
  breaker_p95_ms : float;
      (** circuit breaker: open when the p95 of the last completed
          requests reaches this many milliseconds (default [infinity]
          = never) *)
  breaker_queue : int;
      (** circuit breaker: open when the executor queue depth reaches
          this bound (default [0] = never) *)
  breaker_cooldown : float;
      (** seconds the breaker stays open once tripped (default 1.0);
          also the [retry_after_ms] hint sent with the rejection *)
  chaos : Lubt_util.Pool.Executor.chaos option;
      (** deterministic service-level fault injection (worker kills,
          task latency) for tests and chaos smokes; default [None] *)
  cache : Lubt_lp.Basis_cache.t option;
      (** cross-request warm-start cache shared by every request the
          daemon serves (default [None] = cacheless). The store is
          mutex-guarded, so the executor's worker domains share it
          safely; give it a disk tier ({!Lubt_lp.Basis_cache.create})
          to survive daemon restarts. *)
  metrics_port : int option;
      (** Prometheus exposition port (on [host]); default [None] = no
          metrics listener. The JSON-lines [metrics] op works either
          way. *)
}

val default_config : config
(** No listeners ([create] requires at least one of [socket]/[port]),
    [jobs = 4], [max_pending = 64], no default deadline, watchdog and
    breaker off, no chaos, no cache. *)

type stats = {
  connections : int;  (** sessions accepted over the server's lifetime *)
  served : int;  (** requests answered, successfully or with an error *)
  rejected : int;
      (** requests refused by backpressure or the circuit breaker *)
  failed : int;  (** requests answered with [ok: false] *)
  degraded : int;  (** successes answered by a rung below the top one *)
  restarts : int;  (** worker domains respawned (crash or watchdog) *)
  watchdog_fires : int;  (** requests failed by the watchdog deadline *)
  breaker_trips : int;  (** times the circuit breaker opened *)
  cache_hits : int;
      (** warm-start cache hits (exact + parent) over the server's
          lifetime; 0 when cacheless *)
  cache_misses : int;
      (** warm-start cache misses over the server's lifetime; 0 when
          cacheless *)
}

type server

val create : config -> (server, string) result
(** Binds the listeners (unlinking a stale Unix socket first) and
    spawns the worker pool. [Error] reports a bind/listen problem;
    nothing is left running in that case. *)

val run : server -> stats
(** The accept/dispatch loop: blocks until {!stop} (or a signal
    installed by {!install_signal_handlers}) ends it, then drains
    in-flight requests, closes every session and listener, removes the
    Unix socket file, and returns the lifetime stats. *)

val stop : server -> unit
(** Asks a running {!run} to shut down cleanly. Callable from any
    domain and from a signal handler (it writes one byte to a
    self-pipe). Idempotent. *)

val install_signal_handlers : server -> unit
(** Routes [SIGTERM] and [SIGINT] to {!stop} for a clean drain-and-exit
    shutdown. *)

(** {2 In-process hosting}

    The test suite and the [bench serve] load generator run the daemon
    inside their own process. *)

type handle

val spawn : config -> (handle, string) result
(** {!create} plus {!run} on a fresh domain. *)

val shutdown : handle -> stats
(** {!stop}, join the server domain, return its stats. *)

(** {2 Request plumbing}

    Exposed for the CLI (whose [solve --json] report is rendered by the
    same code, so the daemon's responses and the one-shot CLI report
    can never drift apart) and for protocol tests. *)

val solve_report_fields : Lubt_core.Lubt.report -> validated:bool -> string
(** The members of the [lubt solve --json] report object — [cost],
    [validated], [certified], [ebf], [solver] — without the enclosing
    braces, for embedding in a response envelope. *)

val solve_report_json : Lubt_core.Lubt.report -> validated:bool -> string
(** The complete [lubt solve --json] stdout object. *)

val response_of_request :
  ?default_time_limit:float -> ?cache:Lubt_lp.Basis_cache.t -> string -> string
(** [response_of_request line] parses and executes one request line
    synchronously and returns the exact response line the daemon would
    write (the [wall_ms] member necessarily differs run to run). With
    [cache], solves consult and populate the given warm-start cache
    exactly as a daemon configured with it would. The pure core of the
    daemon, used by the protocol round-trip tests. *)
