(** Domain-parallel instance sweeps.

    The paper's evaluation — and any production use of fixed-topology
    embedding LPs — solves many independent (topology, bounds) instances
    per configuration. This module is the batch engine behind
    [bench/main.exe] corpus sweeps and the [lubt batch] CLI subcommand:
    it fans a corpus of seeded benchmark instances over a
    {!Lubt_util.Pool} of domains, collects per-instance outcomes in
    {e input order}, captures per-instance failures instead of aborting
    the sweep, and merges per-instance solver telemetry
    ({!Lubt_lp.Simplex.merge_stats}) into one whole-corpus record.

    Determinism: each instance is fully determined by its {!spec} (sink
    field seed included), so a sweep's per-instance objectives and
    orderings are bit-identical at any [jobs] count — only the wall-clock
    changes. This is asserted by [test/test_pool.ml]. *)

type spec = {
  id : string;  (** unique within the sweep, e.g. ["prim1s/s17"] *)
  bench : string;  (** benchmark family name, e.g. ["prim1s"] *)
  size : Lubt_data.Benchmarks.size;
  seed : int;  (** sink-field seed override for this variant *)
  skew_rel : float;
      (** skew bound (relative to the radius) guiding the baseline
          topology; the EBF window is the baseline's achieved one *)
}
(** One independent instance of the sweep. *)

val corpus :
  ?size:Lubt_data.Benchmarks.size ->
  ?per_bench:int ->
  ?skew_rel:float ->
  seed:int ->
  unit ->
  spec list
(** [corpus ~seed ()] is the reference corpus: [per_bench] (default 5)
    seeded sink-field variants of each of the four benchmarks (so 20
    instances by default), at [size] (default [Tiny]) and [skew_rel]
    (default 0.5). Variant [k] of a benchmark uses sink-field seed
    [seed + k], so the corpus at a given [(size, per_bench, skew_rel,
    seed)] is a fixed, reproducible instance set. *)

type outcome = {
  index : int;  (** position in the input spec list *)
  spec : spec;
  status : string;  (** LP status, or ["error"] when the task raised *)
  objective : float;  (** certified EBF objective; [nan] on error *)
  bst_cost : float;  (** the baseline router's cost on the instance *)
  lp_rows : int;
  full_rows : int;
  lp_iterations : int;
  rounds : int;
  certified : bool;  (** certificate present and [ok] *)
  wall_s : float;  (** this instance's wall-clock (baseline + EBF) *)
  error : string option;  (** exception text when the task raised *)
  solver : Lubt_lp.Simplex.stats option;  (** per-instance counters *)
}
(** Per-instance result, reported even for failures. *)

type summary = {
  outcomes : outcome list;  (** in input order, one per spec *)
  jobs : int;  (** worker domains actually used *)
  failures : int;  (** outcomes with [error <> None] or an uncertified /
                       non-optimal status *)
  wall_s : float;  (** whole-sweep wall-clock *)
  merged : Lubt_lp.Simplex.stats;
      (** all per-instance counters folded with
          {!Lubt_lp.Simplex.merge_stats} *)
}

val run :
  ?jobs:int -> ?certify:bool -> ?cache:Lubt_lp.Basis_cache.t -> spec list -> summary
(** [run ~jobs specs] solves every spec on a pool of [jobs] domains
    (default {!Lubt_util.Pool.default_jobs}; [jobs = 1] is the exact
    sequential path). Each instance runs the baseline router to get a
    topology and achieved delay window, then the lazy EBF on that
    window; with [certify] (default [true]) the solve carries a
    {!Lubt_lp.Certify.Full} a-posteriori certificate, so reported
    objectives are certified optima. With [cache], every instance
    consults and populates the given warm-start cache
    ({!Lubt_lp.Basis_cache} is mutex-guarded, so the worker domains
    share it safely); distinct seeds hash to distinct structures, so
    hits arise from repeated or bounds-edited instances, not across
    unrelated ones. A raising instance yields an [error] outcome; the
    sweep always completes and reports every instance. *)

val outcome_json : outcome -> string
(** One JSON-lines record (a single-line JSON object): [index], [id],
    [bench], [seed], [skew_rel], [status], [objective], [bst_cost], row
    and iteration counts, [certified], [wall_s], and [error]/[solver]
    when present. *)

val summary_json : summary -> string
(** A single-line JSON trailer object: [summary true], [instances],
    [jobs], [failures], [wall_s], and the merged solver counters. *)
