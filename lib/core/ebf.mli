(** Edge-Based Formulation (Section 4).

    Builds and solves the linear program

    {v
    min   sum_k w_k e_k
    s.t.  sum_{e_k in path(s_i,s_j)} e_k >= dist(s_i,s_j)   (Steiner, 4.1)
          l_i <= sum_{e_k in path(s_0,s_i)} e_k <= u_i      (delay, 4.2)
          e_k >= 0,   e_k = 0 for split edges
    v}

    over all terminal pairs (sinks, plus the source when its location is
    given). Two modes:

    - [lazy_steiner = false]: all [\binom{m}{2}] Steiner rows upfront;
    - [lazy_steiner = true] (default): row generation — start from the
      k-nearest-neighbour pairs plus all source-sink rows, solve, scan all
      pairs for violations in O(m^2) using LCA path lengths, add the worst
      offenders, and re-optimise with the warm-started dual simplex. This
      is the exact-optimal realisation of the paper's Section 4.6
      constraint reduction. *)

type options = {
  lazy_steiner : bool;
  knn : int;  (** nearest-neighbour pairs seeded per terminal (default 3) *)
  batch : int;  (** violated rows added per round (default 64) *)
  violation_tol : float;  (** relative violation tolerance (default 1e-9) *)
  max_rounds : int;
  time_limit : float;
      (** wall-clock budget in seconds over ALL row-generation rounds
          (default [infinity]), kept as one monotonic deadline
          ({!Lubt_obs.Clock}). The remaining budget is handed to the LP
          engine before every (re-)solve, and the deadline is also
          polled at round entry and once per outer row of the
          [O(t^2)] violation scan, so a run whose scans dominate cannot
          overshoot by a full scan per round. On expiry the result
          carries status {!Lubt_lp.Status.Time_limit}, partial
          [round_stats] for the rounds that ran, and the best lengths
          reached so far. *)
  check : Lubt_lp.Certify.level;
      (** a-posteriori certification of an optimal claim (default [Off]):
          the materialised LP is certified by {!Lubt_lp.Certify.check} and
          the geometric check covers every [binom(m,2)] Steiner constraint
          and both delay bounds per sink — including rows the lazy
          generator never materialised. A rejected certificate degrades
          the status to [Numerical_failure]. *)
  warm_start : bool;
      (** keep the factorised LP basis alive across row-generation rounds
          (default [true]): appended rows extend the live factorisation
          ({!Lubt_lp.Simplex.add_row} border extension) instead of forcing
          a refactorisation before each re-solve. Gates — never enables —
          [lp_params.warm_start], so setting either [false] disables the
          reuse. Per-round uptake is reported in {!round_stat}[.warm_rows]. *)
  cache : Lubt_lp.Basis_cache.t option;
      (** cross-request warm-start cache (default [None]). When given, the
          solve first consults the cache under the instance's content
          fingerprints: an exact hit (identical LP solved before) or a
          parent hit (same structure, edited bounds/geometry — the ECO
          case) reproduces the cached row layout and warm-restarts the
          dual simplex from the cached basis; the final certified optimum
          is stored back. Unusable snapshots (changed delay-row layout,
          dimension disagreement, unfactorisable basis) are rejected with
          a typed reason — never mapped silently — and the solve proceeds
          cold. The outcome is reported in {!result}[.cache_outcome]. *)
  probe : Lubt_lp.Simplex.probe option;
      (** per-iteration convergence probe installed on the LP engine
          ({!Lubt_lp.Simplex.set_probe}) for the whole row-generation run
          (default [None]). Dump the events as JSON lines with
          [Lubt_obs.Convergence]; note the probe perturbs the solver's
          BTRAN counters (see {!Lubt_lp.Simplex.set_probe}). *)
  lp_params : Lubt_lp.Simplex.params;
}

val default_options : options

(** What the cross-request cache contributed to a solve. *)
type cache_outcome =
  | Cache_off  (** no cache configured ([options.cache = None]) *)
  | Cache_miss  (** cache consulted, nothing usable found *)
  | Cache_hit_exact  (** identical LP: warm-started from its own optimum *)
  | Cache_hit_parent
      (** same structure, edited bounds/geometry: warm-started from the
          ECO parent's optimum *)
  | Cache_rejected of string
      (** a served snapshot failed validation (row layout changed,
          dimension mismatch, singular basis) and the solve ran cold; the
          payload is the human-readable reason *)

val cache_outcome_name : cache_outcome -> string
(** Wire name: ["off"], ["miss"], ["exact"], ["parent"] or ["rejected"]. *)

type round_stat = {
  round : int;  (** 1-based row-generation round *)
  rows_added : int;  (** violated Steiner rows appended after this round *)
  violations_found : int;  (** violated pairs seen by the scan (>= rows_added) *)
  warm_rows : int;
      (** how many of [rows_added] the engine absorbed into the live
          factorisation (warm start) rather than deferring to a
          refactorisation; 0 when warm start is off or unavailable *)
  scan_seconds : float;  (** wall time of the all-pairs violation scan *)
  solve_seconds : float;  (** wall time of this round's LP (re-)solve *)
  solve_pivots : int;
      (** simplex pivots of this round's solve; from round 2 on these are
          the warm-restart dual pivots *)
}

type result = {
  status : Lubt_lp.Status.t;
  lengths : float array;  (** edge lengths indexed by node id; entry 0 = 0 *)
  objective : float;
  lp_rows : int;  (** rows in the final LP *)
  full_rows : int;  (** rows the full formulation would have had *)
  lp_iterations : int;
  rounds : int;  (** row-generation rounds (1 when eager) *)
  round_stats : round_stat list;  (** per-round telemetry, in round order *)
  lp_stats : Lubt_lp.Simplex.stats;
      (** cumulative solver counters, summed over every row-generation
          round. Valid for every status (they describe work done, not the
          solution); totals from independent solves can be combined with
          {!Lubt_lp.Simplex.merge_stats}. *)
  certificate : Lubt_lp.Certify.report option;
      (** certification outcome; [None] when [options.check = Off] or the
          solve did not claim optimality *)
  cache_outcome : cache_outcome;
      (** what the cross-request cache contributed ({!Cache_off} when no
          cache was configured) *)
}

val formulate : ?weights:float array -> Instance.t -> Lubt_topo.Tree.t -> Lubt_lp.Problem.t
(** The complete (eager) LP of Section 4.3, e.g. for inspection; variable
    [i-1] is edge [e_i]. [weights] (indexed by edge/node id, entry 0
    ignored) implement the weighted objective of Section 7. *)

val solve :
  ?options:options ->
  ?weights:float array ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  result
(** Solves the EBF for the instance under the given topology. The [k]-th
    sink of the instance corresponds to node [(Tree.sinks tree).(k)].
    An [Infeasible] status certifies that no LUBT exists for this topology
    and these bounds (Theorem 4.2 discussion).

    Each call builds its own LP engine and touches no global mutable
    state, so concurrent [solve] calls on distinct (or even shared,
    since neither is mutated) instances and trees are safe — this is
    what {!Lubt_util.Pool}-based sweeps rely on.

    @raise Invalid_argument when the tree's sink count differs from the
    instance's. *)

val check_lengths :
  ?tol:float -> Instance.t -> Lubt_topo.Tree.t -> float array -> (unit, string) Stdlib.result
(** Verifies that edge lengths satisfy every Steiner and delay constraint
    (all pairs, no laziness). Used by tests and by [validate] paths. *)
