type report = { routed : Routed.t; ebf : Ebf.result }

type error =
  | No_solution
  | Solver_failure of {
      status : Lubt_lp.Status.t;
      objective : float;
      iterations : int;
      certificate : Lubt_lp.Certify.report option;
    }
  | Embedding_failure of string

let error_to_string = function
  | No_solution -> "no LUBT exists for this topology and these bounds"
  | Solver_failure { status; objective; iterations; certificate } ->
    let cert =
      match certificate with
      | Some r when not r.Lubt_lp.Certify.ok -> (
        match r.Lubt_lp.Certify.failure with
        | Some msg -> Printf.sprintf "; certification: %s" msg
        | None -> "; certification rejected the solution")
      | _ -> ""
    in
    Printf.sprintf
      "LP solver failed: %s (objective %.9g after %d iterations)%s"
      (Lubt_lp.Status.to_string status)
      objective iterations cert
  | Embedding_failure msg -> Printf.sprintf "embedding failed: %s" msg

let solve ?options ?weights ?policy inst tree =
  let ebf = Ebf.solve ?options ?weights inst tree in
  let check =
    match options with
    | Some o -> o.Ebf.check <> Lubt_lp.Certify.Off
    | None -> false
  in
  match ebf.Ebf.status with
  | Lubt_lp.Status.Infeasible -> Error No_solution
  | Lubt_lp.Status.Optimal -> (
    match Embed.place ?policy inst tree ebf.Ebf.lengths with
    | Error msg -> Error (Embedding_failure msg)
    | Ok embedding -> (
      let verified =
        if check then Embed.verify inst tree ebf.Ebf.lengths embedding
        else Ok ()
      in
      match verified with
      | Error msg -> Error (Embedding_failure ("verification: " ^ msg))
      | Ok () ->
        let routed =
          {
            Routed.instance = inst;
            tree;
            lengths = ebf.Ebf.lengths;
            positions = embedding.Embed.positions;
          }
        in
        Ok { routed; ebf }))
  | other ->
    Error
      (Solver_failure
         {
           status = other;
           objective = ebf.Ebf.objective;
           iterations = ebf.Ebf.lp_iterations;
           certificate = ebf.Ebf.certificate;
         })

let solve_exn ?options ?weights ?policy inst tree =
  match solve ?options ?weights ?policy inst tree with
  | Ok r -> r
  | Error e -> failwith (error_to_string e)
