module Point = Lubt_geom.Point

type t = {
  sinks : Point.t array;
  source : Point.t option;
  lower : float array;
  upper : float array;
}

let create ?source ~sinks ~lower ~upper () =
  let m = Array.length sinks in
  if m = 0 then invalid_arg "Instance.create: no sinks";
  if Array.length lower <> m || Array.length upper <> m then
    invalid_arg "Instance.create: bounds length mismatch";
  for i = 0 to m - 1 do
    if not (0.0 <= lower.(i) && lower.(i) <= upper.(i)) then
      invalid_arg "Instance.create: need 0 <= lower <= upper"
  done;
  { sinks; source; lower = Array.copy lower; upper = Array.copy upper }

let uniform_bounds ?source ~sinks ~lower ~upper () =
  let m = Array.length sinks in
  create ?source ~sinks ~lower:(Array.make m lower) ~upper:(Array.make m upper)
    ()

let num_sinks t = Array.length t.sinks

(* In rotated coordinates the Manhattan diameter of a point set is the
   larger of the two coordinate ranges. *)
let diameter t =
  let ulo = ref infinity and uhi = ref neg_infinity in
  let vlo = ref infinity and vhi = ref neg_infinity in
  Array.iter
    (fun p ->
      let u, v = Point.to_rotated p in
      if u < !ulo then ulo := u;
      if u > !uhi then uhi := u;
      if v < !vlo then vlo := v;
      if v > !vhi then vhi := v)
    t.sinks;
  max (!uhi -. !ulo) (!vhi -. !vlo)

let radius t =
  match t.source with
  | None -> diameter t /. 2.0
  | Some src ->
    Array.fold_left (fun acc p -> max acc (Point.dist src p)) 0.0 t.sinks

let with_bounds t ~lower ~upper =
  create ?source:t.source ~sinks:t.sinks ~lower ~upper ()

let with_normalized_bounds t ~lower ~upper =
  let r = radius t in
  let m = num_sinks t in
  with_bounds t ~lower:(Array.make m (lower *. r))
    ~upper:(Array.make m (upper *. r))

let bounds_admissible t =
  let r = radius t in
  let ok = ref true in
  Array.iteri
    (fun i p ->
      let floor_u =
        match t.source with Some src -> Point.dist src p | None -> r
      in
      if t.upper.(i) < floor_u -. 1e-9 then ok := false)
    t.sinks;
  !ok

module Edit = struct
  type op =
    | Set_bounds of { sink : int; lower : float; upper : float }
    | Move_sink of { sink : int; dx : float; dy : float }
    | Add_sink of { point : Point.t; lower : float; upper : float }
    | Remove_sink of { sink : int }

  let op_name = function
    | Set_bounds _ -> "set_bounds"
    | Move_sink _ -> "move_sink"
    | Add_sink _ -> "add_sink"
    | Remove_sink _ -> "remove_sink"

  (* drop index [k] from an array *)
  let remove_at arr k =
    Array.init
      (Array.length arr - 1)
      (fun i -> if i < k then arr.(i) else arr.(i + 1))

  let apply t op =
    let m = Array.length t.sinks in
    let check_sink sink =
      if sink < 0 || sink >= m then
        Error (Printf.sprintf "%s: sink %d out of range (instance has %d)"
                 (op_name op) sink m)
      else Ok ()
    in
    let rebuild ?(sinks = t.sinks) ?(lower = t.lower) ?(upper = t.upper) () =
      match create ?source:t.source ~sinks ~lower ~upper () with
      | inst -> Ok inst
      | exception Invalid_argument msg ->
        Error (Printf.sprintf "%s: %s" (op_name op) msg)
    in
    match op with
    | Set_bounds { sink; lower; upper } -> (
      match check_sink sink with
      | Error _ as e -> e
      | Ok () ->
        let lo = Array.copy t.lower and up = Array.copy t.upper in
        lo.(sink) <- lower;
        up.(sink) <- upper;
        rebuild ~lower:lo ~upper:up ())
    | Move_sink { sink; dx; dy } -> (
      match check_sink sink with
      | Error _ as e -> e
      | Ok () ->
        let sinks = Array.copy t.sinks in
        sinks.(sink) <- Point.add sinks.(sink) (Point.make dx dy);
        rebuild ~sinks ())
    | Add_sink { point; lower; upper } ->
      rebuild
        ~sinks:(Array.append t.sinks [| point |])
        ~lower:(Array.append t.lower [| lower |])
        ~upper:(Array.append t.upper [| upper |])
        ()
    | Remove_sink { sink } -> (
      match check_sink sink with
      | Error _ as e -> e
      | Ok () ->
        if m = 1 then Error "remove_sink: cannot remove the last sink"
        else
          rebuild ~sinks:(remove_at t.sinks sink)
            ~lower:(remove_at t.lower sink) ~upper:(remove_at t.upper sink) ())

  let apply_all t ops =
    List.fold_left
      (fun acc op -> match acc with Error _ -> acc | Ok t -> apply t op)
      (Ok t) ops

  let preserves_topology = function
    | Set_bounds _ | Move_sink _ -> true
    | Add_sink _ | Remove_sink _ -> false
end

let pp fmt t =
  Format.fprintf fmt "instance(%d sinks%s, radius %g)" (num_sinks t)
    (match t.source with Some _ -> ", source fixed" | None -> "")
    (radius t)
