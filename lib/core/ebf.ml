module Point = Lubt_geom.Point
module Tree = Lubt_topo.Tree
module Problem = Lubt_lp.Problem
module Simplex = Lubt_lp.Simplex
module Status = Lubt_lp.Status
module Certify = Lubt_lp.Certify
module Trace = Lubt_obs.Trace
module Clock = Lubt_obs.Clock
module Metrics = Lubt_obs.Metrics

let m_rounds =
  Metrics.counter ~help:"Row-generation rounds across all EBF solves"
    "lubt_ebf_rounds_total"

(* violated pairs seen per scan, as a count histogram: scan work scales
   with the violation set, so the distribution shows whether lazy row
   generation is converging in few fat rounds or many thin ones *)
let m_scan_violations =
  Metrics.histogram ~help:"Violated Steiner pairs found per violation scan"
    ~buckets:(Metrics.Buckets.log ~lo:1.0 ~hi:1e6 ~count:22)
    "lubt_ebf_scan_violations"

type options = {
  lazy_steiner : bool;
  knn : int;
  batch : int;
  violation_tol : float;
  max_rounds : int;
  time_limit : float;
  check : Certify.level;
  warm_start : bool;
  cache : Lubt_lp.Basis_cache.t option;
  probe : Simplex.probe option;
  lp_params : Simplex.params;
}

let default_options =
  {
    lazy_steiner = true;
    knn = 3;
    batch = 64;
    violation_tol = 1e-9;
    max_rounds = 10_000;
    time_limit = infinity;
    check = Certify.Off;
    warm_start = true;
    cache = None;
    probe = None;
    lp_params = { Simplex.default_params with Simplex.sparse_basis = true };
  }

type cache_outcome =
  | Cache_off
  | Cache_miss
  | Cache_hit_exact
  | Cache_hit_parent
  | Cache_rejected of string

let cache_outcome_name = function
  | Cache_off -> "off"
  | Cache_miss -> "miss"
  | Cache_hit_exact -> "exact"
  | Cache_hit_parent -> "parent"
  | Cache_rejected _ -> "rejected"

type round_stat = {
  round : int;
  rows_added : int;
  violations_found : int;
  warm_rows : int;
  scan_seconds : float;
  solve_seconds : float;
  solve_pivots : int;
}

type result = {
  status : Status.t;
  lengths : float array;
  objective : float;
  lp_rows : int;
  full_rows : int;
  lp_iterations : int;
  rounds : int;
  round_stats : round_stat list;
  lp_stats : Simplex.stats;
  certificate : Certify.report option;
  cache_outcome : cache_outcome;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let check_tree_matches inst tree =
  if Tree.num_sinks tree <> Instance.num_sinks inst then
    invalid_arg "Ebf: tree sink count differs from instance"

(* Terminals: every node whose location is fixed; the source (node 0)
   participates when its location is given. *)
let terminals (inst : Instance.t) tree =
  let sink_nodes = Tree.sinks tree in
  let base =
    Array.to_list
      (Array.mapi (fun k node -> (node, inst.Instance.sinks.(k))) sink_nodes)
  in
  match inst.Instance.source with
  | Some src -> (Tree.root, src) :: base
  | None -> base

let edge_var i = i - 1

(* coefficient list of the row "sum of edge lengths on path(a,b)" *)
let path_coeffs tree a b = List.map (fun e -> (edge_var e, 1.0)) (Tree.path tree a b)

let add_edge_vars ?weights tree prob =
  let n = Tree.num_nodes tree in
  for i = 1 to n - 1 do
    let w = match weights with None -> 1.0 | Some ws -> ws.(i) in
    let up = if Tree.forced_zero tree i then 0.0 else infinity in
    let j = Problem.add_var ~lo:0.0 ~up ~obj:w ~name:(Printf.sprintf "e%d" i) prob in
    assert (j = edge_var i)
  done

let add_delay_rows (inst : Instance.t) tree prob =
  let sink_nodes = Tree.sinks tree in
  Array.iteri
    (fun k node ->
      let l = inst.Instance.lower.(k) and u = inst.Instance.upper.(k) in
      if l > 0.0 || u < infinity then
        ignore
          (Problem.add_row prob
             ~name:(Printf.sprintf "delay_s%d" node)
             ~lo:l ~up:u
             (path_coeffs tree Tree.root node)))
    sink_nodes

let full_row_count inst =
  let m = Instance.num_sinks inst in
  let terms = m + (match inst.Instance.source with Some _ -> 1 | None -> 0) in
  (terms * (terms - 1) / 2) + (2 * m)

(* ------------------------------------------------------------------ *)
(* Eager formulation (Section 4.3 verbatim)                            *)
(* ------------------------------------------------------------------ *)

let formulate ?weights inst tree =
  check_tree_matches inst tree;
  let prob = Problem.create () in
  add_edge_vars ?weights tree prob;
  let terms = Array.of_list (terminals inst tree) in
  let t = Array.length terms in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      let a, pa = terms.(i) and b, pb = terms.(j) in
      let d = Point.dist pa pb in
      if d > 0.0 then
        ignore
          (Problem.add_row prob
             ~name:(Printf.sprintf "steiner_%d_%d" a b)
             ~lo:d ~up:infinity (path_coeffs tree a b))
    done
  done;
  add_delay_rows inst tree prob;
  prob

(* ------------------------------------------------------------------ *)
(* Exhaustive verification of a length assignment                      *)
(* ------------------------------------------------------------------ *)

let check_lengths ?(tol = 1e-6) (inst : Instance.t) tree lengths =
  check_tree_matches inst tree;
  let terms = Array.of_list (terminals inst tree) in
  let t = Array.length terms in
  let d = Tree.delays tree lengths in
  let scale = max 1.0 (Instance.diameter inst +. Instance.radius inst) in
  let eps = tol *. scale in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  for i = 1 to Tree.num_nodes tree - 1 do
    if lengths.(i) < -.eps then
      fail (Printf.sprintf "edge %d has negative length %g" i lengths.(i));
    if Tree.forced_zero tree i && abs_float lengths.(i) > eps then
      fail (Printf.sprintf "edge %d must be zero but has length %g" i lengths.(i))
  done;
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      let a, pa = terms.(i) and b, pb = terms.(j) in
      let need = Point.dist pa pb in
      let have = d.(a) +. d.(b) -. (2.0 *. d.(Tree.lca tree a b)) in
      if have < need -. eps then
        fail
          (Printf.sprintf "Steiner constraint (%d,%d): path %g < dist %g" a b
             have need)
    done
  done;
  Array.iteri
    (fun k node ->
      let dl = d.(node) in
      if dl < inst.Instance.lower.(k) -. eps then
        fail
          (Printf.sprintf "sink %d delay %g below lower bound %g" node dl
             inst.Instance.lower.(k));
      if dl > inst.Instance.upper.(k) +. eps then
        fail
          (Printf.sprintf "sink %d delay %g above upper bound %g" node dl
             inst.Instance.upper.(k)))
    (Tree.sinks tree);
  match !error with None -> Ok () | Some msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Lazy row generation (Section 4.6 as exact lazy constraints)         *)
(* ------------------------------------------------------------------ *)

(* k nearest terminals of each terminal, by Manhattan distance *)
let knn_pairs terms k =
  let t = Array.length terms in
  let pairs = Hashtbl.create (t * k) in
  for i = 0 to t - 1 do
    let _, pi = terms.(i) in
    let dists =
      Array.init t (fun j ->
          let _, pj = terms.(j) in
          (Point.dist pi pj, j))
    in
    Array.sort compare dists;
    let added = ref 0 in
    let idx = ref 0 in
    while !added < k && !idx < t do
      let _, j = dists.(!idx) in
      incr idx;
      if j <> i then begin
        let key = (min i j, max i j) in
        if not (Hashtbl.mem pairs key) then Hashtbl.replace pairs key ();
        incr added
      end
    done
  done;
  pairs

(* ------------------------------------------------------------------ *)
(* Cross-request warm-start fingerprints                               *)
(* ------------------------------------------------------------------ *)

module Cache = Lubt_lp.Basis_cache

(* Two-level content addressing. The structure fingerprint covers
   everything that fixes the LP's column space and the meaning of its rows
   — delay model, topology, objective weights, whether a source
   participates — but NOT geometry or bounds: EBF constraint coefficients
   are all 1.0 on path edges, so geometry only moves row bounds, and a
   basis cached for the same structure stays dual feasible after a
   geometric or bound edit (the ECO parent hit). The full key additionally
   covers coordinates and the bounds signature, so equal keys mean the
   identical LP. *)
let fingerprints ?weights (inst : Instance.t) tree =
  let h = Cache.Fingerprint.create () in
  Cache.Fingerprint.add_string h "lubt-ebf/linear";
  let n = Tree.num_nodes tree in
  Cache.Fingerprint.add_int h n;
  for i = 0 to n - 1 do
    Cache.Fingerprint.add_int h (Tree.parent tree i);
    Cache.Fingerprint.add_int h (if Tree.forced_zero tree i then 1 else 0)
  done;
  Array.iter (Cache.Fingerprint.add_int h) (Tree.sinks tree);
  (match weights with
  | None -> Cache.Fingerprint.add_int h 0
  | Some ws ->
    Cache.Fingerprint.add_int h 1;
    Array.iter (Cache.Fingerprint.add_float h) ws);
  Cache.Fingerprint.add_int h
    (match inst.Instance.source with Some _ -> 1 | None -> 0);
  let structure = Cache.Fingerprint.digest h in
  (* the accumulator keeps absorbing: the full key extends the structure *)
  Array.iter
    (fun (p : Point.t) ->
      Cache.Fingerprint.add_float h p.Point.x;
      Cache.Fingerprint.add_float h p.Point.y)
    inst.Instance.sinks;
  (match inst.Instance.source with
  | Some p ->
    Cache.Fingerprint.add_float h p.Point.x;
    Cache.Fingerprint.add_float h p.Point.y
  | None -> ());
  Array.iter (Cache.Fingerprint.add_float h) inst.Instance.lower;
  Array.iter (Cache.Fingerprint.add_float h) inst.Instance.upper;
  (structure, Cache.Fingerprint.digest h)

(* sink positions (instance indices) that contribute delay rows, in the
   order [add_delay_rows] emits them — the warm path must reproduce this
   exact row layout, so the cached layout is compared against it *)
let delay_row_sinks (inst : Instance.t) =
  let acc = ref [] in
  Array.iteri
    (fun k _ ->
      if inst.Instance.lower.(k) > 0.0 || inst.Instance.upper.(k) < infinity
      then acc := k :: !acc)
    inst.Instance.sinks;
  Array.of_list (List.rev !acc)

let solve ?(options = default_options) ?weights (inst : Instance.t) tree =
  check_tree_matches inst tree;
  let terms = Array.of_list (terminals inst tree) in
  let t = Array.length terms in
  let prob = Problem.create () in
  add_edge_vars ?weights tree prob;
  add_delay_rows inst tree prob;
  let added = Hashtbl.create 256 in
  let scale =
    max 1.0 (Instance.diameter inst +. Instance.radius inst)
  in
  let eager = (not options.lazy_steiner) || t <= 12 in
  let row_of_pair (i, j) =
    let a, pa = terms.(i) and b, pb = terms.(j) in
    let d = Point.dist pa pb in
    (path_coeffs tree a b, d)
  in
  (* every Steiner row actually appended, in append order — this IS the
     row layout a cached basis refers to, so it is recorded verbatim in
     the snapshot stored at the end *)
  let row_log = ref [] in
  let delay_sinks = delay_row_sinks inst in
  let cache_ctx =
    match options.cache with
    | None -> None
    | Some c ->
      let structure, key = fingerprints ?weights inst tree in
      Some (c, structure, key)
  in
  (* Cache consult: an entry is only usable when its recorded row layout
     can be reproduced against the current instance. Anything off — a
     delay-row set changed by a bounds edit, an out-of-range terminal pair
     from a corrupt or mis-keyed snapshot — is rejected (typed, counted),
     never mapped silently; the solve then proceeds cold. *)
  let warm_entry, cache_outcome =
    match cache_ctx with
    | None -> (None, Cache_off)
    | Some (c, structure, key) -> (
      let outcome_of = function
        | Cache.Exact _ -> Cache_hit_exact
        | Cache.Parent _ -> Cache_hit_parent
        | Cache.Miss -> Cache_miss
      in
      match Cache.find c ~structure ~key with
      | Cache.Miss -> (None, Cache_miss)
      | (Cache.Exact e | Cache.Parent e) as lk ->
        let reject reason =
          Cache.reject c ~reason;
          (None, Cache_rejected reason)
        in
        if e.Cache.e_delay <> delay_sinks then
          reject "delay row layout differs (bounds edit changed the set)"
        else if
          not
            (Array.for_all
               (fun (i, j) -> 0 <= i && i < j && j < t)
               e.Cache.e_pairs)
        then reject "terminal pair out of range"
        else (Some e, outcome_of lk))
  in
  (match warm_entry with
  | Some e ->
    (* warm path: reproduce the parent's exact row layout. Distances are
       recomputed against the CURRENT geometry (a parent hit may have
       moved a sink); rows the parent materialised are kept even when the
       edited distance degenerates to zero, because dropping one would
       shift every later row index under the cached basis. *)
    Array.iter
      (fun key ->
        Hashtbl.replace added key ();
        row_log := key :: !row_log;
        let coeffs, d = row_of_pair key in
        ignore (Problem.add_row prob ~lo:d ~up:infinity coeffs))
      e.Cache.e_pairs
  | None ->
    let seed_pairs =
      if eager then begin
        let all = Hashtbl.create (t * t) in
        for i = 0 to t - 1 do
          for j = i + 1 to t - 1 do
            Hashtbl.replace all (i, j) ()
          done
        done;
        all
      end
      else begin
        let pairs = knn_pairs terms options.knn in
        (* all source-sink rows: cheap and almost always binding *)
        (match inst.Instance.source with
        | Some _ ->
          for j = 1 to t - 1 do
            Hashtbl.replace pairs (0, j) ()
          done
        | None -> ());
        pairs
      end
    in
    Hashtbl.iter
      (fun key () ->
        Hashtbl.replace added key ();
        let coeffs, d = row_of_pair key in
        if d > 0.0 then begin
          row_log := key :: !row_log;
          ignore (Problem.add_row prob ~lo:d ~up:infinity coeffs)
        end)
      seed_pairs);
  (* the EBF-level warm_start switch gates (never enables) the engine's
     own warm_start parameter, so either layer can turn the reuse off *)
  let lp_params =
    {
      options.lp_params with
      Simplex.warm_start = options.lp_params.Simplex.warm_start && options.warm_start;
    }
  in
  let eng = Simplex.of_problem ~params:lp_params prob in
  (* install the cached basis; the next solve warm-restarts the dual
     simplex from the parent optimum. A snapshot that fails validation or
     factorisation is rejected through the typed {!Simplex.basis_mismatch}
     — the engine is left on its valid all-slack basis, so the run
     continues as a cold solve over the reproduced row set. *)
  let cache_outcome =
    match warm_entry with
    | None -> cache_outcome
    | Some e -> (
      match Simplex.install_warm_basis eng e.Cache.e_basis with
      | Ok () -> cache_outcome
      | Error bm ->
        let reason = Format.asprintf "%a" Simplex.pp_basis_mismatch bm in
        (match cache_ctx with
        | Some (c, _, _) -> Cache.reject c ~reason
        | None -> ());
        Cache_rejected reason)
  in
  Simplex.set_probe eng options.probe;
  (* One monotonic deadline shared by every phase of every round: the
     LP solves (enforced inside the engine via set_time_limit), the
     O(t^2) violation scans (checked below — without this a run whose
     scans dominate overshoots the budget by a full scan per round) and
     the round boundaries themselves. *)
  let deadline =
    if options.time_limit = infinity then infinity
    else Clock.now () +. options.time_limit
  in
  let expired () = deadline < infinity && Clock.now () > deadline in
  let lengths_of_primal primal =
    let n = Tree.num_nodes tree in
    let lengths = Array.make n 0.0 in
    for i = 1 to n - 1 do
      lengths.(i) <- max 0.0 primal.(edge_var i)
    done;
    lengths
  in
  (* main loop: solve, scan all pairs for violated Steiner constraints via
     O(1) LCA path lengths, add the worst, re-optimise (dual simplex) *)
  let round_stats = ref [] in
  let rec loop rounds =
    Metrics.incr m_rounds;
    let solve_t0 = Clock.now () in
    if expired () then begin
      (* budget gone before this round's solve: report the expiry with
         the stats of the rounds that did run instead of starting more
         work *)
      round_stats :=
        {
          round = rounds;
          rows_added = 0;
          violations_found = 0;
          warm_rows = 0;
          scan_seconds = 0.0;
          solve_seconds = 0.0;
          solve_pivots = 0;
        }
        :: !round_stats;
      (Status.Time_limit, rounds)
    end
    else begin
    if deadline < infinity then
      (* hand the engine whatever budget is left; non-positive remaining
         time makes the solve return Time_limit immediately *)
      Simplex.set_time_limit eng (deadline -. solve_t0);
    let pivots0 = Simplex.iterations eng in
    let status = Simplex.solve eng in
    let solve_seconds = Clock.now () -. solve_t0 in
    let solve_pivots = Simplex.iterations eng - pivots0 in
    if Trace.enabled () then
      Trace.complete ~t0:solve_t0 "ebf.solve"
        ~args:
          [ ("round", Trace.Int rounds); ("pivots", Trace.Int solve_pivots) ];
    let record ?(warm_rows = 0) ~rows_added ~violations_found ~scan_seconds () =
      round_stats :=
        {
          round = rounds;
          rows_added;
          violations_found;
          warm_rows;
          scan_seconds;
          solve_seconds;
          solve_pivots;
        }
        :: !round_stats
    in
    if status <> Status.Optimal then begin
      record ~rows_added:0 ~violations_found:0 ~scan_seconds:0.0 ();
      (status, rounds)
    end
    else begin
      let scan_t0 = Clock.now () in
      let lengths = lengths_of_primal (Simplex.primal eng) in
      let d = Tree.delays tree lengths in
      let violations = ref [] in
      let scan_cut = ref false in
      (* the scan is the Theta(t^2) phase: poll the deadline once per
         outer row (t clock reads against t^2 pair work) and abandon
         the sweep when the budget runs out mid-scan *)
      (try
         for i = 0 to t - 1 do
           if deadline < infinity && expired () then begin
             scan_cut := true;
             raise Exit
           end;
           for j = i + 1 to t - 1 do
             if not (Hashtbl.mem added (i, j)) then begin
               let a, pa = terms.(i) and b, pb = terms.(j) in
               let need = Point.dist pa pb in
               if need > 0.0 then begin
                 let have = d.(a) +. d.(b) -. (2.0 *. d.(Tree.lca tree a b)) in
                 let viol = need -. have in
                 if viol > options.violation_tol *. scale then
                   violations := (viol, (i, j)) :: !violations
               end
             end
           done
         done
       with Exit -> ());
      let scan_seconds = Clock.now () -. scan_t0 in
      if Metrics.enabled () then
        Metrics.observe m_scan_violations
          (float_of_int (List.length !violations));
      if Trace.enabled () then
        Trace.complete ~t0:scan_t0 "ebf.scan"
          ~args:
            [
              ("round", Trace.Int rounds);
              ("violations", Trace.Int (List.length !violations));
            ];
      if !scan_cut then begin
        (* a truncated scan proves nothing about the unseen pairs: the
           incumbent lengths are a partial answer, not an optimum *)
        record ~rows_added:0 ~violations_found:(List.length !violations)
          ~scan_seconds ();
        (Status.Time_limit, rounds)
      end
      else
      match !violations with
      | [] ->
        record ~rows_added:0 ~violations_found:0 ~scan_seconds ();
        (Status.Optimal, rounds)
      | vs ->
        if rounds >= options.max_rounds then begin
          record ~rows_added:0 ~violations_found:(List.length vs) ~scan_seconds ();
          (Status.Iteration_limit, rounds)
        end
        else begin
          let sorted = List.sort (fun (a, _) (b, _) -> compare b a) vs in
          let take = ref 0 in
          let append_t0 = if Trace.enabled () then Clock.now () else 0.0 in
          let ext0 = (Simplex.stats eng).Simplex.basis_extensions in
          List.iter
            (fun (_, key) ->
              if !take < options.batch then begin
                incr take;
                Hashtbl.replace added key ();
                row_log := key :: !row_log;
                let coeffs, dist = row_of_pair key in
                Simplex.add_row eng ~lo:dist ~up:infinity coeffs;
                (* mirror the row into the model so the materialised LP is
                   available for a-posteriori certification *)
                ignore (Problem.add_row prob ~lo:dist ~up:infinity coeffs)
              end)
            sorted;
          (* rows the engine absorbed into the live factorisation rather
             than deferring to a refactorisation *)
          let warm_rows =
            (Simplex.stats eng).Simplex.basis_extensions - ext0
          in
          if Trace.enabled () then
            Trace.complete ~t0:append_t0 "ebf.append_rows"
              ~args:
                [
                  ("round", Trace.Int rounds);
                  ("rows", Trace.Int !take);
                  ("warm_rows", Trace.Int warm_rows);
                ];
          record ~warm_rows ~rows_added:!take ~violations_found:(List.length vs)
            ~scan_seconds ();
          loop (rounds + 1)
        end
    end
    end
  in
  let status, rounds = loop 1 in
  let lengths = lengths_of_primal (Simplex.primal eng) in
  (* a-posteriori certification of an optimal claim: the materialised LP is
     certified against the raw problem data, and the geometric check covers
     every binom(t,2) Steiner row and both delay bounds per sink — including
     rows the lazy generator never materialised *)
  let status, certificate =
    if options.check = Certify.Off || status <> Status.Optimal then
      (status, None)
    else begin
      let level =
        (* the tableau fallback carries no duals: certify what it can claim *)
        if Simplex.used_fallback eng then Certify.Primal else options.check
      in
      let report = Certify.check ~level prob (Simplex.solution eng) in
      let report =
        if not report.Certify.ok then report
        else
          match check_lengths inst tree lengths with
          | Ok () -> report
          | Error msg ->
            {
              report with
              Certify.ok = false;
              failure = Some ("geometric check: " ^ msg);
            }
      in
      if report.Certify.ok then (Status.Optimal, Some report)
      else (Status.Numerical_failure, Some report)
    end
  in
  (* publish the basis for future requests: only a certified-clean optimum
     whose engine never fell back to the tableau oracle (a fallback answer
     leaves the engine basis untrustworthy; certification rejections have
     already demoted the status above) *)
  (match cache_ctx with
  | Some (c, structure, key)
    when status = Status.Optimal && not (Simplex.used_fallback eng) ->
    Cache.store c
      {
        Cache.e_structure = structure;
        e_key = key;
        e_basis = Simplex.warm_basis eng;
        e_delay = delay_sinks;
        e_pairs = Array.of_list (List.rev !row_log);
        e_objective = Simplex.objective eng;
      }
  | _ -> ());
  {
    status;
    lengths;
    objective = Simplex.objective eng;
    lp_rows = Simplex.nrows eng;
    full_rows = full_row_count inst;
    lp_iterations = Simplex.iterations eng;
    rounds;
    round_stats = List.rev !round_stats;
    lp_stats = Simplex.stats eng;
    certificate;
    cache_outcome;
  }
