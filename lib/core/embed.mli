(** Placement of Steiner points (Section 5): bottom-up feasible-region
    construction followed by top-down placement.

    Bottom-up: the feasible region of a leaf terminal is its fixed point;
    [TRR_k = TRR(FR_k, e_k)]; the feasible region of an internal node is
    the intersection of its children's TRRs (and of its own fixed point
    when the node is itself a terminal). By Theorem 4.1, these
    intersections are nonempty whenever the edge lengths satisfy the
    Steiner constraints.

    Top-down: the root is placed anywhere in its feasible region (at the
    given source when there is one); each child is then placed inside
    [FR_child ∩ TRR({parent}, e_child)]. *)

type policy =
  | Center  (** centre of the allowed region (default) *)
  | Closest_to_parent  (** point of the allowed region nearest the parent *)
  | Sampled of Lubt_util.Prng.t  (** uniform random point (for tests) *)

type t = {
  positions : Lubt_geom.Point.t array;  (** per node *)
  feasible_regions : Lubt_geom.Trr.t array;  (** per node, bottom-up FRs *)
}

val place :
  ?policy:policy ->
  ?eps:float ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  float array ->
  (t, string) result
(** [place inst tree lengths] embeds the tree in the Manhattan plane.
    Fails (with a message) if some feasible region is empty, i.e. the edge
    lengths violate a Steiner constraint beyond the numerical tolerance
    [eps] (relative; default 1e-9). *)

val verify :
  ?tol:float ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  float array ->
  t ->
  (unit, string) result
(** [verify inst tree lengths emb] independently re-checks a finished
    embedding: every terminal (and the source, when fixed) sits at its
    given location, every parent-child distance is within the edge's
    assigned length, and forced-zero edges have zero span. Recomputed from
    raw data only — shares no state with {!place}. [tol] is relative to
    the instance scale (default 1e-6). *)
