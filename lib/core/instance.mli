(** A LUBT problem instance (Definition 2.1): sink locations, an optional
    source location, and per-sink delay bounds.

    Bounds are absolute wire-length units under the linear delay model. The
    paper normalises bounds to the instance radius; use {!radius} and
    {!with_normalized_bounds} for that convention. *)

type t = private {
  sinks : Lubt_geom.Point.t array;
  source : Lubt_geom.Point.t option;
  lower : float array;  (** per sink, same order as [sinks] *)
  upper : float array;
}

val create :
  ?source:Lubt_geom.Point.t ->
  sinks:Lubt_geom.Point.t array ->
  lower:float array ->
  upper:float array ->
  unit ->
  t
(** @raise Invalid_argument when arrays disagree in length, some
    [lower > upper], or some bound is negative. *)

val uniform_bounds :
  ?source:Lubt_geom.Point.t ->
  sinks:Lubt_geom.Point.t array ->
  lower:float ->
  upper:float ->
  unit ->
  t
(** Same bounds for every sink (the tolerable-skew setting of Section 6). *)

val num_sinks : t -> int

val diameter : t -> float
(** Largest Manhattan distance between two sinks, O(m) via rotated
    coordinates. *)

val radius : t -> float
(** Distance from the source to the farthest sink when the source is given;
    half the diameter otherwise (Section 2). *)

val with_normalized_bounds : t -> lower:float -> upper:float -> t
(** Replaces the bounds with [lower * radius, upper * radius] for every
    sink (the convention of Tables 1-3). *)

val with_bounds : t -> lower:float array -> upper:float array -> t

val bounds_admissible : t -> bool
(** Checks condition (3)/(4): [0 <= l_i <= u_i] and [u_i >= dist(s_0,s_i)]
    (source given) or [u_i >= radius] (source free). *)

val pp : Format.formatter -> t -> unit

(** Engineering change orders: the small instance edits (a bound tightened
    or relaxed, a sink nudged, a sink added or removed) that arrive between
    re-solves of the same design. Edits are pure — every application
    returns a fresh validated instance — and carry enough information for
    the warm-start layer to decide whether the parent's cached LP basis is
    still structurally compatible ({!Edit.preserves_topology}). *)
module Edit : sig
  type op =
    | Set_bounds of { sink : int; lower : float; upper : float }
        (** replace sink [sink]'s delay window with [lower, upper] *)
    | Move_sink of { sink : int; dx : float; dy : float }
        (** translate sink [sink] by [(dx, dy)] *)
    | Add_sink of { point : Lubt_geom.Point.t; lower : float; upper : float }
        (** append a new sink (index [num_sinks t]) *)
    | Remove_sink of { sink : int }  (** delete sink [sink] *)

  val op_name : op -> string
  (** Wire name of the constructor ([set_bounds], [move_sink], ...), as
      used by the serve protocol's ["eco"] request. *)

  val apply : t -> op -> (t, string) result
  (** Applies one edit. [Error] (with a human-readable reason) on an
      out-of-range sink index, bounds violating [0 <= lower <= upper], or
      removing the last sink; the input instance is never mutated. *)

  val apply_all : t -> op list -> (t, string) result
  (** Applies edits left to right, stopping at the first failure. *)

  val preserves_topology : op -> bool
  (** Whether the edit keeps the sink set (and hence any routing topology
      over it) intact: [true] for [Set_bounds] and [Move_sink], [false]
      for [Add_sink] and [Remove_sink], which change the node set and
      force topology re-derivation. *)
end
