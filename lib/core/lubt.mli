(** High-level driver: solve the EBF and embed the result.

    This is the main entry point of the library: given an instance and a
    topology it returns a fully placed, validated LUBT, or a reason why
    none exists. *)

type report = {
  routed : Routed.t;
  ebf : Ebf.result;
}

type error =
  | No_solution  (** the LP is infeasible: no LUBT exists (Theorem 4.2) *)
  | Solver_failure of {
      status : Lubt_lp.Status.t;
      objective : float;  (** objective reached when the solve stopped *)
      iterations : int;  (** simplex pivots spent *)
      certificate : Lubt_lp.Certify.report option;
          (** the rejected certificate, when certification caused the
              failure *)
    }
  | Embedding_failure of string

val error_to_string : error -> string

val solve :
  ?options:Ebf.options ->
  ?weights:float array ->
  ?policy:Embed.policy ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  (report, error) result
(** Solves the LUBT problem for the given topology: EBF linear program for
    the edge lengths, then DME-style placement of the Steiner points.
    When [options.check] is not [Off], the finished embedding is also
    re-verified with {!Embed.verify}. *)

val solve_exn :
  ?options:Ebf.options ->
  ?weights:float array ->
  ?policy:Embed.policy ->
  Instance.t ->
  Lubt_topo.Tree.t ->
  report
(** @raise Failure on any error. *)
