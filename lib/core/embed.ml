module Point = Lubt_geom.Point
module Trr = Lubt_geom.Trr
module Tree = Lubt_topo.Tree

type policy = Center | Closest_to_parent | Sampled of Lubt_util.Prng.t

type t = {
  positions : Point.t array;
  feasible_regions : Trr.t array;
}

let place ?(policy = Center) ?(eps = 1e-9) (inst : Instance.t) tree lengths =
  let n = Tree.num_nodes tree in
  let scale = max 1.0 (Instance.diameter inst +. Instance.radius inst) in
  let slack = eps *. scale in
  (* fixed locations: sinks, and the source if given *)
  let fixed = Array.make n None in
  Array.iteri
    (fun k node -> fixed.(node) <- Some inst.Instance.sinks.(k))
    (Tree.sinks tree);
  (match inst.Instance.source with
  | Some src -> fixed.(Tree.root) <- Some src
  | None -> ());
  let fr = Array.make n (Trr.of_point (Point.make 0.0 0.0)) in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let module Trace = Lubt_obs.Trace in
  let module Clock = Lubt_obs.Clock in
  (* bottom-up feasible regions *)
  let bu_t0 = if Trace.enabled () then Clock.now () else 0.0 in
  let post = Tree.postorder tree in
  Array.iter
    (fun v ->
      if !err = None then begin
        let child_regions =
          List.map
            (fun c -> Trr.expand fr.(c) (lengths.(c) +. slack))
            (Tree.children tree v)
        in
        let regions =
          match fixed.(v) with
          | Some p -> Trr.of_point p :: child_regions
          | None -> child_regions
        in
        match regions with
        | [] -> fail (Printf.sprintf "node %d is a floating leaf Steiner point" v)
        | _ -> (
          match Trr.intersect_all regions with
          | Some r -> fr.(v) <- r
          | None ->
            fail
              (Printf.sprintf
                 "empty feasible region at node %d (Steiner constraints \
                  violated)"
                 v))
      end)
    post;
  if Trace.enabled () then
    Trace.complete ~t0:bu_t0 "embed.feasible_regions"
      ~args:[ ("nodes", Trace.Int n) ];
  match !err with
  | Some msg -> Error msg
  | None ->
    (* top-down placement *)
    let td_t0 = if Trace.enabled () then Clock.now () else 0.0 in
    let positions = Array.make n (Point.make 0.0 0.0) in
    let choose region parent_opt =
      match policy with
      | Center -> Trr.center region
      | Sampled rng -> Trr.sample rng region
      | Closest_to_parent -> (
        match parent_opt with
        | None -> Trr.center region
        | Some p -> Trr.closest_point region p)
    in
    positions.(Tree.root) <-
      (match fixed.(Tree.root) with
      | Some src -> src
      | None -> choose fr.(Tree.root) None);
    let pre = Tree.preorder tree in
    Array.iter
      (fun v ->
        if !err = None && v <> Tree.root then begin
          let p = positions.(Tree.parent tree v) in
          let reach = Trr.expand (Trr.of_point p) (lengths.(v) +. slack) in
          match Trr.intersect fr.(v) reach with
          | Some region -> positions.(v) <- choose region (Some p)
          | None ->
            (* padding accumulated over the bottom-up pass can leave the
               parent a few epsilons outside the child's exact reach; fall
               back to the nearest point of the feasible region as long as
               the shortfall is within tolerance *)
            let q, _ = Trr.closest_pair fr.(v) reach in
            let shortfall = Point.dist q p -. lengths.(v) in
            if shortfall <= 1e-6 *. scale then positions.(v) <- q
            else
              fail
                (Printf.sprintf
                   "empty placement region at node %d (edge %d short by %g)" v
                   v shortfall)
        end)
      pre;
    if Trace.enabled () then
      Trace.complete ~t0:td_t0 "embed.place"
        ~args:[ ("nodes", Trace.Int n) ];
    (match !err with
    | Some msg -> Error msg
    | None -> Ok { positions; feasible_regions = fr })

(* Independent a-posteriori check of a finished embedding: recomputed from
   the instance, tree and length assignment only, so a bug in the
   feasible-region machinery above cannot certify its own output. *)
let verify ?(tol = 1e-6) (inst : Instance.t) tree lengths (emb : t) =
  let n = Tree.num_nodes tree in
  let scale = max 1.0 (Instance.diameter inst +. Instance.radius inst) in
  let eps = tol *. scale in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  if Array.length emb.positions <> n then
    fail
      (Printf.sprintf "embedding has %d positions for %d nodes"
         (Array.length emb.positions) n);
  if !err = None then begin
    (* terminals sit exactly at their fixed locations *)
    Array.iteri
      (fun k node ->
        let want = inst.Instance.sinks.(k) and got = emb.positions.(node) in
        if Point.dist want got > eps then
          fail
            (Printf.sprintf "sink node %d placed %g away from its terminal"
               node (Point.dist want got)))
      (Tree.sinks tree);
    (match inst.Instance.source with
    | Some src ->
      if Point.dist src emb.positions.(Tree.root) > eps then
        fail
          (Printf.sprintf "source placed %g away from its fixed location"
             (Point.dist src emb.positions.(Tree.root)))
    | None -> ());
    (* every edge is realisable: parent-child distance within its length *)
    for v = 0 to n - 1 do
      if v <> Tree.root then begin
        let d = Point.dist emb.positions.(Tree.parent tree v) emb.positions.(v) in
        if d > lengths.(v) +. eps then
          fail
            (Printf.sprintf
               "edge %d spans distance %g, exceeding its length %g" v d
               lengths.(v));
        if Tree.forced_zero tree v && d > eps then
          fail
            (Printf.sprintf "forced-zero edge %d spans distance %g" v d)
      end
    done
  end;
  match !err with None -> Ok () | Some msg -> Error msg
