type t =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Time_limit
  | Numerical_failure

type solution = {
  status : t;
  objective : float;
  primal : float array;
  row_activity : float array;
  dual : float array;
  iterations : int;
}

let to_string = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Iteration_limit -> "iteration-limit"
  | Time_limit -> "time-limit"
  | Numerical_failure -> "numerical-failure"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_optimal s = s.status = Optimal
