(** Revised bounded-variable simplex engine.

    The engine keeps the LP in the GLPK-style computational form: every row
    [i] of the model gets an auxiliary variable [x_aux_i] tied by
    [a_i^T x_struct - x_aux_i = 0], so the equality system is
    [\[A | -I\] x = 0] and all row bounds become bounds on auxiliary
    variables. The initial all-auxiliary basis is always nonsingular
    ([B = -I]).

    Three algorithms are provided on the same state:
    - primal phase I (drives the total bound violation of basic variables
      to zero),
    - primal phase II (optimises from a primal-feasible basis),
    - dual simplex (optimises from a dual-feasible basis; this is the
      workhorse for the EBF LPs, whose all-slack start is dual feasible,
      and for warm restarts after rows are added).

    Rows can be appended between solves ([add_row]); the factorised basis is
    extended in O(m x nnz) and stays dual feasible, so re-optimisation is a
    short dual-simplex run. This implements the paper's Section 4.6
    constraint-reduction strategy as exact lazy row generation.

    {b Domain safety.} The engine keeps no global mutable state: every
    working array, the basis factorisation, the {!Basis.counters} record
    and the {!stats} mirror are owned by the [t] value returned by
    {!of_problem}. Concurrent [solve] calls on {e distinct} engines from
    different domains are therefore safe and produce the same results as
    sequential calls (the batch layer {!Lubt_util.Pool} relies on this;
    cross-checked in [test/test_pool.ml]). A single [t] must not be
    shared between domains without external synchronisation. *)

type t
(** A loaded LP engine: problem snapshot, current basis (either backend),
    factorisation, and cumulative telemetry. Create with {!of_problem};
    all mutation goes through {!solve}, {!add_row} and
    {!set_time_limit}. *)

type pricing =
  | Dantzig
      (** classic most-negative-reduced-cost rule: a full scan of all
          [n + m] columns on every iteration. Kept as the reference path
          for cross-checks. *)
  | Partial
      (** partial pricing over a candidate list: a short list of columns
          that priced attractively at the last full scan is repriced
          (against the current multipliers) each iteration; a full scan
          runs only when the list goes dry or Bland's rule engages.
          Identical optima — only the pivot order differs. *)
  | Devex
      (** devex reference-framework pricing (Harris): candidates are
          scored by [d_j^2 / w_j], where the weights [w_j] approximate
          the steepest-edge norms and are updated from the pivot column
          at eta-update cost. Uses the same candidate-list control flow
          as [Partial]; the weights reset to the reference framework on
          every refactorisation. Typically the fewest iterations on the
          path-structured EBF programs. *)

(** Where a deterministic fault is injected (testing only). *)
type fault_kind =
  | Fault_singular_refactor
      (** a basis refactorisation raises as if the basis were singular *)
  | Fault_perturb_ftran
      (** one component of an ftran result gets a large relative error,
          corrupting subsequent pivots until validation catches it *)
  | Fault_zero_pivot
      (** a basis update raises {!Basis.Zero_pivot} as if the pivot
          entry were numerically zero *)

type fault = {
  fault_seed : int;  (** seed of the private splitmix64 fault stream *)
  fault_kinds : fault_kind list;  (** which sites may fire *)
  fault_rate : float;  (** firing probability per eligible call site *)
  max_faults : int;
      (** lifetime cap per engine, so recovery retries eventually run
          clean *)
}

val fault_plan :
  ?kinds:fault_kind list -> ?rate:float -> ?max_faults:int -> int -> fault
(** [fault_plan seed] is a fault configuration with all kinds enabled,
    [rate = 0.25] and [max_faults = 3]. Faults fire only during [solve],
    never while loading or adding rows, and identically for identical
    (problem, seed) pairs. *)

(** One rung of the numerical-recovery ladder. *)
type recovery_stage =
  | Refactor_retry  (** rebuild the basis factorisation and retry *)
  | Switch_backend
      (** swap sparse LU + eta file <-> explicit dense inverse (either
          direction) and retry *)
  | Tighten_pivot_tol
      (** escalate the pivot tolerance by 100x (capped at 1e-5), making
          the ratio tests refuse the near-zero pivots that broke the
          factorisation *)
  | Perturb_and_resolve
      (** relax all finite bounds outward by a seeded relative ~1e-7
          noise, drive to optimality on the perturbed problem to escape
          the degenerate vertex, then restore the exact bounds and
          re-solve cleanly *)
  | Tableau_fallback
      (** last resort: hand the reconstructed model to the independent
          dense {!Tableau} oracle and serve its solution (dual values are
          zeros; see {!used_fallback}) *)

val default_recovery : recovery_stage list
(** All five stages in the order above. *)

type params = {
  max_iters : int;  (** 0 means choose automatically from the size *)
  time_limit : float;
      (** wall-clock budget in seconds per [solve] call; [infinity]
          (the default) disables it. On expiry [solve] returns
          {!Status.Time_limit} with the best basis reached so far. *)
  tol_feas : float;  (** absolute primal feasibility tolerance *)
  tol_dual : float;  (** reduced-cost optimality tolerance *)
  tol_pivot : float;  (** smallest acceptable pivot magnitude *)
  refactor_every : int;  (** pivots between basis refactorisations *)
  sparse_basis : bool;
      (** use the product-form sparse basis ({!Basis}: LU + eta file)
          instead of the explicit dense inverse. Same results; much
          faster and far less memory on large sparse programs (default
          [false]) *)
  pricing : pricing;  (** entering-variable rule (default [Partial]) *)
  bound_flips : bool;
      (** bound-flipping (long-step) dual ratio test: boxed nonbasic
          columns whose breakpoint cannot absorb the remaining primal
          violation flip to their opposite bound without a basis change,
          letting one dual pivot pass many breakpoints (default [true]).
          The dominant move for box-constrained edge-length variables. *)
  warm_start : bool;
      (** keep the factorised sparse basis alive across {!add_row} calls
          by appending a border row to the live factorisation instead of
          marking it for refactorisation (default [true]; sparse backend
          only — the dense inverse always extends in place). *)
  bland_threshold : int;
      (** consecutive degenerate pivots tolerated before the anti-cycling
          escape switches to Bland's rule (default 1000). The switch
          reverts after the next non-degenerate pivot or basis
          refactorisation. *)
  recovery : recovery_stage list;
      (** the numerical-recovery ladder, consumed left to right: each
          numerical failure (singular factorisation, zero pivot,
          post-solve validation reject) applies the next stage and
          retries the solve; an exhausted (or empty) ladder yields
          {!Status.Numerical_failure}. Default {!default_recovery}. *)
  fault : fault option;  (** deterministic fault injection (default [None]) *)
}

val default_params : params
(** Partial pricing, bound flips on, warm starts on, dense explicit
    inverse, [refactor_every = 100], [tol_feas = 1e-7],
    [tol_dual = tol_pivot = 1e-9], automatic iteration cap, no time
    limit, full recovery ladder, no fault injection. *)

type recoveries = {
  refactor_retries : int;
  backend_switches : int;
  tolerance_escalations : int;
  perturbed_resolves : int;
  tableau_fallbacks : int;
  faults_injected : int;  (** faults actually fired (testing) *)
  validations_rejected : int;
      (** optimal bases rejected by the binv-free post-solve check *)
}
(** Recovery-ladder telemetry; all zero on a numerically clean solve. *)

val no_recoveries : recoveries
(** The all-zero record a numerically clean solve reports. *)

val recovery_attempts : recoveries -> int
(** Total ladder stages applied (sum of the five stage counters;
    excludes [faults_injected] and [validations_rejected]). *)

type stats = {
  iterations : int;  (** total simplex pivots over the engine's lifetime *)
  phase1_iterations : int;
  phase2_iterations : int;
  dual_iterations : int;
  bound_flips : int;
      (** nonbasic bound flips performed by the long-step dual ratio
          test (not counted as iterations — no basis change) *)
  full_pricing_scans : int;
      (** full-column scans: Dantzig/Bland pricing passes plus dual ratio
          scans (each inspects all [n + m] columns) *)
  partial_pricing_scans : int;  (** candidate-list-only pricing passes *)
  ftran_count : int;  (** forward solves [B^-1 a] on either backend *)
  btran_count : int;  (** transpose solves [B^-T c] on either backend *)
  hyper_sparse_ftrans : int;
      (** ftrans that took the hyper-sparse reach-based kernel (sparse
          backend only) *)
  hyper_sparse_btrans : int;  (** btrans on the hyper-sparse kernel *)
  basis_updates : int;  (** rank-1 / eta updates applied *)
  basis_extensions : int;
      (** rows appended to a live factorisation by warm-started
          {!add_row} (sparse backend with [warm_start]) *)
  refactorisations : int;  (** basis factorisations from scratch *)
  degenerate_pivots : int;  (** pivots with (numerically) zero step *)
  bland_activations : int;  (** times the anti-cycling escape engaged *)
  phase1_seconds : float;  (** wall time spent in primal phase I *)
  phase2_seconds : float;
  dual_seconds : float;
  recoveries : recoveries;  (** numerical-recovery telemetry *)
}
(** Cumulative solver counters, preserved across warm restarts ([add_row] +
    re-[solve]); read them with {!stats} at any point. Counter fields are
    valid from engine creation onwards (all zero before the first
    [solve]); the [*_seconds] fields only cover completed phase runs, so
    they undercount while a [solve] is in flight. The [recoveries] field
    is only meaningful after [solve] has returned — a recovery in
    progress is not yet counted. *)

val zero_stats : stats
(** All-zero counters: the identity of {!merge_stats} and the natural
    accumulator seed for batch aggregation. *)

val merge_stats : stats -> stats -> stats
(** [merge_stats a b] sums every counter and phase time (and the nested
    {!recoveries}) component-wise. Commutative and associative with
    {!zero_stats} as identity, so per-worker telemetry from a
    domain-parallel sweep can be folded in any order into one
    whole-corpus record, as [Lubt_experiments.Batch] does. *)

val of_problem : ?params:params -> Problem.t -> t
(** Loads a model. The engine takes a snapshot: later changes to the
    [Problem.t] are not seen (use [add_row] to grow the engine itself). *)

val solve : t -> Status.t
(** Runs the appropriate algorithm(s) from the current basis and returns the
    final status. Idempotent once optimal.

    Numerical failures (singular refactorisation, zero pivots, a rejected
    post-solve validation) do not escape: they walk the
    {!params}[.recovery] ladder, and only an exhausted ladder returns
    {!Status.Numerical_failure}. Every optimal claim is validated against
    the original column data before being returned. *)

val set_time_limit : t -> float -> unit
(** Overrides the wall-clock budget (seconds) for subsequent [solve] calls;
    [infinity] disables, a non-positive value makes the next solve return
    {!Status.Time_limit} immediately. Used by callers that spread one
    budget over several warm restarts. *)

val used_fallback : t -> bool
(** Whether the last [solve] was answered by the {!Tableau_fallback} stage.
    If so, {!dual} returns zeros (the oracle does not produce multipliers)
    and callers should not demand dual certificates. *)

val to_problem : t -> Problem.t
(** Reconstructs a standalone model equal to the engine's current one,
    including rows appended with [add_row] (diagnostics / oracles). *)

val add_row : t -> lo:float -> up:float -> (int * float) list -> unit
(** Appends a constraint row over structural variables. The engine stays
    dual feasible; call [solve] to re-optimise (it will run the dual
    simplex). On the sparse backend with {!params}[.warm_start] the live
    factorisation is extended by a border row (counted in
    [basis_extensions]) so the re-solve skips the refactorisation;
    otherwise the basis is refactorised at the next [solve]. *)

type warm_basis = {
  wb_nvars : int;  (** structural variable count of the source engine *)
  wb_nrows : int;  (** row count of the source engine *)
  wb_basic : int array;
      (** row [r] was occupied by variable [wb_basic.(r)] (auxiliary
          variables use the [nvars + row] convention) *)
  wb_nonbasic : string;
      (** one status marker per variable over [wb_nvars + wb_nrows]:
          ['b'] basic, ['l'] at lower bound, ['u'] at upper bound,
          ['f'] free at zero *)
}
(** A self-contained snapshot of a basis: which variable occupies each row
    and the bound status of every nonbasic variable. Plain data — it holds
    no factorisation and no pointer into the engine, so it can be stored,
    serialised and installed into a {e different} engine of the same shape
    (the cross-request cache {!Basis_cache} does both). *)

type basis_mismatch = {
  bm_expected_vars : int;  (** structural variables of the target engine *)
  bm_expected_rows : int;  (** rows of the target engine *)
  bm_got_vars : int;  (** structural variables recorded in the snapshot *)
  bm_got_rows : int;  (** rows recorded in the snapshot *)
  bm_reason : string;  (** human-readable cause *)
}
(** Why {!install_warm_basis} refused (or failed to factorise) a snapshot.
    Dimension disagreements — the classic stale-cache hazard when an ECO
    edit added or removed a sink — are always rejected through this type,
    never mapped silently. *)

val pp_basis_mismatch : Format.formatter -> basis_mismatch -> unit
(** One-line rendering of a {!basis_mismatch} for logs and error JSON. *)

val warm_basis : t -> warm_basis
(** Snapshots the engine's current basis. Callers that intend to reuse the
    snapshot should take it only after [solve] returned {!Status.Optimal}
    with {!used_fallback}[ = false] — a fallback answer leaves the engine
    basis untrustworthy. *)

val install_warm_basis : t -> warm_basis -> (unit, basis_mismatch) result
(** Installs a snapshot taken from an engine of identical shape (same
    variable and row counts; typically the same model with edited bounds).
    The snapshot is validated first — dimensions, index ranges, duplicate
    basic variables, status consistency — and rejected with [Error] before
    any engine state changes. Statuses resting on bounds that are no longer
    finite are coerced to a valid nonbasic state. On success the basis is
    factorised immediately and the next [solve] warm-starts from it (for
    bound-only edits the basis stays dual feasible, so re-optimisation is a
    short dual-simplex run). A snapshot that passes validation but proves
    singular to factorise also returns [Error], after the engine has been
    restored to its all-slack cold-start basis — an [Error] therefore
    always leaves the engine in a valid, solvable state. *)

val nrows : t -> int
(** Number of constraint rows currently loaded (including rows appended
    with {!add_row}). *)

val nvars : t -> int
(** Number of structural variables. *)

val objective : t -> float
(** Objective value of the current basis. Only a certified optimum after
    [solve] returned {!Status.Optimal}; mid-ladder or after a time limit
    it is simply the value of the basis reached. *)

val primal : t -> float array
(** Structural variable values of the current basis. *)

val row_activity : t -> float array
(** [a_i^T x] per row for the current basis (length {!nrows}). *)

val dual : t -> float array
(** Simplex multipliers [y] (one per row) of the current basis. *)

val reduced_cost : t -> int -> float
(** Reduced cost of a structural variable in the current basis. *)

val iterations : t -> int
(** Total simplex pivots over the engine's lifetime (equals
    [(stats t).iterations]). *)

val stats : t -> stats
(** Snapshot of the cumulative solver counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line human-readable rendering of a counters snapshot, including
    the [bound_flips] counter and the nested {!recoveries} record (the
    recovery line is always printed, zeros included, so [--stats]
    consumers see a stable shape). *)

type probe_event = {
  pr_iteration : int;  (** {!iterations} after the pivot (or at the
                           recovery event) *)
  pr_phase : string;
      (** ["phase1"], ["phase2"], ["dual"], or ["recovery"] *)
  pr_objective : float;  (** objective of the current (possibly
                             infeasible) point *)
  pr_primal_infeas : float;  (** total bound violation of basic variables *)
  pr_dual_infeas : float;
      (** worst reduced-cost violation over nonbasic columns; [nan] on
          recovery events, where the factorisation is not trusted *)
  pr_entering : int;
      (** entering variable index (auxiliary of row [i] is [nvars + i]);
          [-1] when none (pure bound flip, recovery event) *)
  pr_leaving : int;  (** leaving variable index; [-1] when none *)
  pr_eta_count : int;  (** basis updates since the last refactorisation *)
  pr_bound_flips : int;  (** cumulative long-step bound flips *)
  pr_recovery : string option;
      (** recovery-ladder stage name when this event marks a stage
          engaging, [None] on ordinary pivots *)
}
(** One observation of the per-iteration convergence probe. *)

type probe = probe_event -> unit

val set_probe : t -> probe option -> unit
(** Installs (or removes) a per-iteration probe. The probe fires after
    every primal or dual pivot and when a recovery stage engages; dump the
    events as JSON lines with [Lubt_obs.Convergence].

    The probe is {e observational but not free}: computing the dual
    infeasibility costs one extra BTRAN plus a column scan per pivot, and
    those solves are counted in the shared {!stats} counters — so an
    engine with a probe installed reports more [btran_count] than the
    same solve unobserved. With no probe installed ([None], the default)
    the engine's counters, pivots and results are bit-identical to an
    uninstrumented build. *)

val solution : t -> Status.solution
(** Packages the current state (status as of the last [solve]). *)

val check_consistency : t -> float
(** Recomputes basic values from scratch and returns the largest absolute
    discrepancy with the incrementally maintained ones (diagnostics). *)
