(** Revised bounded-variable simplex engine.

    The engine keeps the LP in the GLPK-style computational form: every row
    [i] of the model gets an auxiliary variable [x_aux_i] tied by
    [a_i^T x_struct - x_aux_i = 0], so the equality system is
    [\[A | -I\] x = 0] and all row bounds become bounds on auxiliary
    variables. The initial all-auxiliary basis is always nonsingular
    ([B = -I]).

    Three algorithms are provided on the same state:
    - primal phase I (drives the total bound violation of basic variables
      to zero),
    - primal phase II (optimises from a primal-feasible basis),
    - dual simplex (optimises from a dual-feasible basis; this is the
      workhorse for the EBF LPs, whose all-slack start is dual feasible,
      and for warm restarts after rows are added).

    Rows can be appended between solves ([add_row]); the factorised basis is
    extended in O(m x nnz) and stays dual feasible, so re-optimisation is a
    short dual-simplex run. This implements the paper's Section 4.6
    constraint-reduction strategy as exact lazy row generation. *)

type t

type pricing =
  | Dantzig
      (** classic most-negative-reduced-cost rule: a full scan of all
          [n + m] columns on every iteration. Kept as the reference path
          for cross-checks. *)
  | Partial
      (** partial pricing over a candidate list: a short list of columns
          that priced attractively at the last full scan is repriced
          (against the current multipliers) each iteration; a full scan
          runs only when the list goes dry or Bland's rule engages.
          Identical optima — only the pivot order differs. *)

type params = {
  max_iters : int;  (** 0 means choose automatically from the size *)
  tol_feas : float;  (** absolute primal feasibility tolerance *)
  tol_dual : float;  (** reduced-cost optimality tolerance *)
  tol_pivot : float;  (** smallest acceptable pivot magnitude *)
  refactor_every : int;  (** pivots between basis refactorisations *)
  sparse_basis : bool;
      (** use the product-form sparse basis ({!Basis}: LU + eta file)
          instead of the explicit dense inverse. Same results; much
          faster and far less memory on large sparse programs (default
          [false]) *)
  pricing : pricing;  (** entering-variable rule (default [Partial]) *)
  bland_threshold : int;
      (** consecutive degenerate pivots tolerated before the anti-cycling
          escape switches to Bland's rule (default 1000). The switch
          reverts after the next non-degenerate pivot or basis
          refactorisation. *)
}

val default_params : params

type stats = {
  iterations : int;  (** total simplex pivots over the engine's lifetime *)
  phase1_iterations : int;
  phase2_iterations : int;
  dual_iterations : int;
  full_pricing_scans : int;
      (** full-column scans: Dantzig/Bland pricing passes plus dual ratio
          scans (each inspects all [n + m] columns) *)
  partial_pricing_scans : int;  (** candidate-list-only pricing passes *)
  ftran_count : int;  (** forward solves [B^-1 a] on either backend *)
  btran_count : int;  (** transpose solves [B^-T c] on either backend *)
  basis_updates : int;  (** rank-1 / eta updates applied *)
  refactorisations : int;  (** basis factorisations from scratch *)
  degenerate_pivots : int;  (** pivots with (numerically) zero step *)
  bland_activations : int;  (** times the anti-cycling escape engaged *)
  phase1_seconds : float;  (** wall time spent in primal phase I *)
  phase2_seconds : float;
  dual_seconds : float;
}
(** Cumulative solver counters, preserved across warm restarts ([add_row] +
    re-[solve]); read them with {!stats} at any point. *)

val of_problem : ?params:params -> Problem.t -> t
(** Loads a model. The engine takes a snapshot: later changes to the
    [Problem.t] are not seen (use [add_row] to grow the engine itself). *)

val solve : t -> Status.t
(** Runs the appropriate algorithm(s) from the current basis and returns the
    final status. Idempotent once optimal. *)

val add_row : t -> lo:float -> up:float -> (int * float) list -> unit
(** Appends a constraint row over structural variables. The engine stays
    dual feasible; call [solve] to re-optimise (it will run the dual
    simplex). *)

val nrows : t -> int

val nvars : t -> int
(** Number of structural variables. *)

val objective : t -> float

val primal : t -> float array
(** Structural variable values of the current basis. *)

val row_activity : t -> float array

val dual : t -> float array
(** Simplex multipliers [y] (one per row) of the current basis. *)

val reduced_cost : t -> int -> float
(** Reduced cost of a structural variable in the current basis. *)

val iterations : t -> int

val stats : t -> stats
(** Snapshot of the cumulative solver counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line human-readable rendering of a counters snapshot. *)

val solution : t -> Status.solution
(** Packages the current state (status as of the last [solve]). *)

val check_consistency : t -> float
(** Recomputes basic values from scratch and returns the largest absolute
    discrepancy with the incrementally maintained ones (diagnostics). *)
