type vstat = Basic of int | At_lower | At_upper | Free_zero

type pricing = Dantzig | Partial | Devex

type fault_kind = Fault_singular_refactor | Fault_perturb_ftran | Fault_zero_pivot

type fault = {
  fault_seed : int;
  fault_kinds : fault_kind list;
  fault_rate : float;
  max_faults : int;
}

let fault_plan ?(kinds = [ Fault_singular_refactor; Fault_perturb_ftran; Fault_zero_pivot ])
    ?(rate = 0.25) ?(max_faults = 3) seed =
  { fault_seed = seed; fault_kinds = kinds; fault_rate = rate; max_faults }

type recovery_stage =
  | Refactor_retry
  | Switch_backend
  | Tighten_pivot_tol
  | Perturb_and_resolve
  | Tableau_fallback

let default_recovery =
  [
    Refactor_retry;
    Switch_backend;
    Tighten_pivot_tol;
    Perturb_and_resolve;
    Tableau_fallback;
  ]

type params = {
  max_iters : int;
  time_limit : float;
  tol_feas : float;
  tol_dual : float;
  tol_pivot : float;
  refactor_every : int;
  sparse_basis : bool;
  pricing : pricing;
  bound_flips : bool;
  warm_start : bool;
  bland_threshold : int;
  recovery : recovery_stage list;
  fault : fault option;
}

let default_params =
  {
    max_iters = 0;
    time_limit = infinity;
    tol_feas = 1e-7;
    tol_dual = 1e-9;
    tol_pivot = 1e-9;
    refactor_every = 100;
    sparse_basis = false;
    pricing = Partial;
    bound_flips = true;
    warm_start = true;
    bland_threshold = 1000;
    recovery = default_recovery;
    fault = None;
  }

type probe_event = {
  pr_iteration : int;
  pr_phase : string;
  pr_objective : float;
  pr_primal_infeas : float;
  pr_dual_infeas : float;
  pr_entering : int;
  pr_leaving : int;
  pr_eta_count : int;
  pr_bound_flips : int;
  pr_recovery : string option;
}

type probe = probe_event -> unit

type recoveries = {
  refactor_retries : int;
  backend_switches : int;
  tolerance_escalations : int;
  perturbed_resolves : int;
  tableau_fallbacks : int;
  faults_injected : int;
  validations_rejected : int;
}

let no_recoveries =
  {
    refactor_retries = 0;
    backend_switches = 0;
    tolerance_escalations = 0;
    perturbed_resolves = 0;
    tableau_fallbacks = 0;
    faults_injected = 0;
    validations_rejected = 0;
  }

let recovery_attempts r =
  r.refactor_retries + r.backend_switches + r.tolerance_escalations
  + r.perturbed_resolves + r.tableau_fallbacks

type stats = {
  iterations : int;
  phase1_iterations : int;
  phase2_iterations : int;
  dual_iterations : int;
  bound_flips : int;
  full_pricing_scans : int;
  partial_pricing_scans : int;
  ftran_count : int;
  btran_count : int;
  hyper_sparse_ftrans : int;
  hyper_sparse_btrans : int;
  basis_updates : int;
  basis_extensions : int;
  refactorisations : int;
  degenerate_pivots : int;
  bland_activations : int;
  phase1_seconds : float;
  phase2_seconds : float;
  dual_seconds : float;
  recoveries : recoveries;
}

(* Internal mutable mirror of the counters that are not already tracked
   elsewhere (iterations live on [t], linear-algebra traffic in the shared
   {!Basis.counters}). *)
type istats = {
  mutable s_phase1_iters : int;
  mutable s_phase2_iters : int;
  mutable s_dual_iters : int;
  mutable s_flips : int;
  mutable s_full_scans : int;
  mutable s_partial_scans : int;
  mutable s_degen : int;
  mutable s_bland : int;
  mutable s_phase1_secs : float;
  mutable s_phase2_secs : float;
  mutable s_dual_secs : float;
  mutable s_rec_refactor : int;
  mutable s_rec_switch : int;
  mutable s_rec_tol : int;
  mutable s_rec_perturb : int;
  mutable s_rec_tableau : int;
  mutable s_injected : int;
  mutable s_rejected : int;
}

let fresh_istats () =
  {
    s_phase1_iters = 0;
    s_phase2_iters = 0;
    s_dual_iters = 0;
    s_flips = 0;
    s_full_scans = 0;
    s_partial_scans = 0;
    s_degen = 0;
    s_bland = 0;
    s_phase1_secs = 0.0;
    s_phase2_secs = 0.0;
    s_dual_secs = 0.0;
    s_rec_refactor = 0;
    s_rec_switch = 0;
    s_rec_tol = 0;
    s_rec_perturb = 0;
    s_rec_tableau = 0;
    s_injected = 0;
    s_rejected = 0;
  }

type t = {
  n : int;  (* structural variables; auxiliary var of row i has index n+i *)
  p : params;
  mutable m : int;  (* rows *)
  mutable cap : int;  (* row capacity of the grown arrays *)
  cols : Sparse.t array;  (* length n; structural columns over row indices *)
  mutable lo : float array;  (* length n+cap *)
  mutable up : float array;
  mutable obj : float array;
  mutable basic : int array;  (* length cap: row -> basic variable *)
  mutable vstat : vstat array;  (* length n+cap *)
  mutable binv : float array array;  (* cap rows of length cap *)
  mutable xb : float array;  (* length cap: basic values per row *)
  mutable last_status : Status.t;
  mutable sbasis : Basis.t option;  (* product-form backend, sparse mode *)
  mutable needs_factor : bool;
  (* warm-started rows were appended since the last solve: the incremental
     xb values must be refreshed from scratch before the next dual run, the
     same hygiene a cold start gets from [refactor]'s [recompute_xb] *)
  mutable xb_stale : bool;
  mutable iters : int;
  mutable since_refactor : int;
  mutable degen_streak : int;
  mutable bland : bool;
  (* resilience state: the recovery ladder may move the engine off the
     configured backend/tolerances mid-solve, so the live values are
     mutable copies of the corresponding params fields *)
  mutable cur_sparse : bool;
  mutable cur_tol_pivot : float;
  mutable time_budget : float;  (* seconds per solve; infinity = none *)
  mutable deadline : float;  (* absolute, set at solve entry *)
  mutable solving : bool;  (* fault hooks only fire inside solve *)
  mutable probe : probe option;  (* per-iteration convergence probe *)
  mutable cur_phase : string;  (* phase label for probe events *)
  mutable faults_left : int;
  frng : Lubt_util.Prng.t option;  (* fault-injection stream *)
  mutable fallback : Status.solution option;  (* Tableau_fallback result *)
  st : istats;
  ops : Basis.counters;  (* shared with the sparse backend *)
  (* partial-pricing candidate list: nonbasic columns that priced
     attractively at the last full scan, revalidated before use *)
  cand : int array;
  cand_score : float array;
  mutable ncand : int;
  (* devex reference weights, length n+cap; reset to 1 on refactorisation *)
  mutable dvx : float array;
  (* scratch vectors, length cap *)
  mutable w : float array;
  mutable y : float array;
  mutable rho : float array;
  mutable cb : float array;
}

exception Numerical of string

(* ------------------------------------------------------------------ *)
(* Tracing helpers                                                     *)
(* ------------------------------------------------------------------ *)

module Trace = Lubt_obs.Trace
module Clock = Lubt_obs.Clock

(* Hot-path guard idiom: when tracing is disabled a site costs one atomic
   load and a branch — no clock read, no closure allocation. *)
let tr_start () = if Trace.enabled () then Clock.now () else 0.0

let tr_stop t0 name = if Trace.enabled () then Trace.complete ~t0 name

module Metrics = Lubt_obs.Metrics

(* Aggregate solver metrics, recorded once per [solve] from the stats
   counters the engine maintains anyway — the per-pivot loops stay
   untouched, so the metrics registry adds nothing to the pivot path. *)
let m_solves =
  Metrics.counter ~help:"Simplex solve calls" "lubt_simplex_solves_total"

let m_iterations =
  Metrics.counter ~help:"Simplex pivots across all phases"
    "lubt_simplex_iterations_total"

let m_bound_flips =
  Metrics.counter ~help:"Dual bound flips" "lubt_simplex_bound_flips_total"

let m_recoveries =
  Metrics.counter ~help:"Numerical-recovery ladder stages consumed"
    "lubt_simplex_recoveries_total"

let m_ftrans =
  Metrics.counter ~help:"Forward basis solves" "lubt_simplex_ftrans_total"

let m_btrans =
  Metrics.counter ~help:"Transposed basis solves" "lubt_simplex_btrans_total"

let m_hyper_ftrans =
  Metrics.counter ~help:"FTRANs answered by the hyper-sparse path"
    "lubt_simplex_hyper_sparse_ftrans_total"

let m_hyper_btrans =
  Metrics.counter ~help:"BTRANs answered by the hyper-sparse path"
    "lubt_simplex_hyper_sparse_btrans_total"

(* ------------------------------------------------------------------ *)
(* Small accessors                                                     *)
(* ------------------------------------------------------------------ *)

let nrows t = t.m

let nvars t = t.n

let iterations t = t.iters

let is_fixed t j = t.up.(j) -. t.lo.(j) <= 0.0

let nonbasic_value t j =
  match t.vstat.(j) with
  | Basic _ -> invalid_arg "nonbasic_value: basic"
  | At_lower -> t.lo.(j)
  | At_upper -> t.up.(j)
  | Free_zero -> 0.0

let value t j =
  match t.vstat.(j) with Basic r -> t.xb.(r) | _ -> nonbasic_value t j

(* Iterate the equality-form column of variable [j]: structural columns come
   from the model, the auxiliary variable of row i is the column [-e_i]. *)
let col_iter t j f =
  if j < t.n then Sparse.iter f t.cols.(j) else f (j - t.n) (-1.0)

let col_dot t j dense =
  if j < t.n then Sparse.dot_dense t.cols.(j) dense
  else -.dense.(j - t.n)

(* Relative tolerances: bounds in EBF problems are chip-scale (1e4..1e6), so
   absolute tests would be meaninglessly tight. *)
let feas_tol t bound = t.p.tol_feas *. (1.0 +. abs_float bound)

let dual_tol t j = t.p.tol_dual *. (1.0 +. abs_float t.obj.(j))

(* ------------------------------------------------------------------ *)
(* Linear algebra on the explicit basis inverse                        *)
(* ------------------------------------------------------------------ *)

let sparse_mode t = t.cur_sparse

(* Monotonic by construction: a wall-clock step (NTP slew, manual reset)
   must neither fire a spurious Time_limit nor disable the budget. *)
let out_of_time t = t.deadline < infinity && Clock.now () > t.deadline

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

(* Whether a configured fault of [kind] fires at this call site. Fires only
   while a solve is running (never during [of_problem] or [add_row]) and at
   most [max_faults] times per engine, so recovery retries eventually see a
   clean run. The stream is seeded, so a given (problem, seed) pair fails in
   exactly the same way every time. *)
let fault_fires t kind =
  match (t.p.fault, t.frng) with
  | Some f, Some rng
    when t.solving && t.faults_left > 0 && List.mem kind f.fault_kinds ->
    if Lubt_util.Prng.float rng 1.0 < f.fault_rate then begin
      t.faults_left <- t.faults_left - 1;
      t.st.s_injected <- t.st.s_injected + 1;
      true
    end
    else false
  | _ -> false

(* w <- B^-1 A_j *)
let ftran t q =
  let tr0 = tr_start () in
  if sparse_mode t then begin
    match t.sbasis with
    | None -> invalid_arg "ftran: basis not factorised"
    | Some sb ->
      (* hand the column over sparse: single-entry auxiliary columns and
         short structural columns take the hyper-sparse kernels *)
      let rhs =
        if q < t.n then t.cols.(q) else Sparse.singleton (q - t.n) (-1.0)
      in
      let w = Basis.ftran_sparse sb rhs in
      Array.blit w 0 t.w 0 t.m
  end
  else begin
  t.ops.Basis.ftrans <- t.ops.Basis.ftrans + 1;
  let w = t.w and m = t.m in
  if q < t.n then begin
    let col = t.cols.(q) in
    for r = 0 to m - 1 do
      let br = t.binv.(r) in
      let acc = ref 0.0 in
      Sparse.iter (fun i a -> acc := !acc +. (a *. br.(i))) col;
      w.(r) <- !acc
    done
  end
  else begin
    let i = q - t.n in
    for r = 0 to m - 1 do
      w.(r) <- -.t.binv.(r).(i)
    done
  end
  end;
  if t.m > 0 && fault_fires t Fault_perturb_ftran then begin
    match t.frng with
    | Some rng ->
      (* large relative error in one component: either harmless (the
         component is never pivoted on) or caught by post-solve validation *)
      let r = Lubt_util.Prng.int rng t.m in
      t.w.(r) <- t.w.(r) +. (0.01 *. (1.0 +. abs_float t.w.(r)))
    | None -> ()
  end;
  tr_stop tr0 "simplex.ftran"

(* y <- (B^-1)^T cb, skipping zero cost rows (phase I has very few). *)
let compute_y t cb =
  let tr0 = tr_start () in
  if sparse_mode t then begin
    match t.sbasis with
    | None -> invalid_arg "compute_y: basis not factorised"
    | Some sb ->
      let y = Basis.btran sb (Array.sub cb 0 t.m) in
      Array.blit y 0 t.y 0 t.m
  end
  else begin
  t.ops.Basis.btrans <- t.ops.Basis.btrans + 1;
  let y = t.y and m = t.m in
  Array.fill y 0 m 0.0;
  for r = 0 to m - 1 do
    let c = cb.(r) in
    if c <> 0.0 then begin
      let br = t.binv.(r) in
      for i = 0 to m - 1 do
        y.(i) <- y.(i) +. (c *. br.(i))
      done
    end
  done
  end;
  tr_stop tr0 "simplex.btran"

let fill_cb_phase2 t =
  for r = 0 to t.m - 1 do
    t.cb.(r) <- t.obj.(t.basic.(r))
  done

(* Phase-I cost: gradient of the total bound violation of basic variables. *)
let fill_cb_phase1 t =
  for r = 0 to t.m - 1 do
    let b = t.basic.(r) in
    let x = t.xb.(r) in
    if x < t.lo.(b) -. feas_tol t t.lo.(b) then t.cb.(r) <- -1.0
    else if x > t.up.(b) +. feas_tol t t.up.(b) then t.cb.(r) <- 1.0
    else t.cb.(r) <- 0.0
  done

let primal_infeasibility t =
  let total = ref 0.0 in
  for r = 0 to t.m - 1 do
    let b = t.basic.(r) in
    let x = t.xb.(r) in
    if x < t.lo.(b) then total := !total +. (t.lo.(b) -. x)
    else if x > t.up.(b) then total := !total +. (x -. t.up.(b))
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Convergence probe                                                   *)
(* ------------------------------------------------------------------ *)

let set_probe t p = t.probe <- p

(* Worst dual-feasibility violation of any nonbasic column under the
   current multipliers. Only computed when a probe is installed: it costs
   a BTRAN plus a full column scan per pivot, and it bumps the shared
   linear-algebra counters — an observed engine reports more btrans than
   an unobserved one. *)
let dual_infeasibility t =
  fill_cb_phase2 t;
  compute_y t t.cb;
  let worst = ref 0.0 in
  let total = t.n + t.m in
  for j = 0 to total - 1 do
    match t.vstat.(j) with
    | Basic _ -> ()
    | _ when is_fixed t j -> ()
    | At_lower ->
      let d = t.obj.(j) -. col_dot t j t.y in
      if d < 0.0 then worst := max !worst (-.d)
    | At_upper ->
      let d = t.obj.(j) -. col_dot t j t.y in
      if d > 0.0 then worst := max !worst d
    | Free_zero ->
      let d = abs_float (t.obj.(j) -. col_dot t j t.y) in
      worst := max !worst d
  done;
  !worst

(* Objective of the current (possibly infeasible) point; reads variable
   values only, so it is safe even mid-recovery when the factorisation is
   suspect. *)
let probe_objective t =
  let acc = ref 0.0 in
  for j = 0 to t.n - 1 do
    if t.obj.(j) <> 0.0 then acc := !acc +. (t.obj.(j) *. value t j)
  done;
  !acc

(* Fires the installed probe, if any. Recovery events skip the
   dual-infeasibility computation (the basis that just failed cannot be
   trusted to solve anything) and report it as nan. *)
let fire_probe t ?recovery ~entering ~leaving () =
  match t.probe with
  | None -> ()
  | Some f ->
    let mid_recovery = recovery <> None in
    f
      {
        pr_iteration = t.iters;
        pr_phase = (if mid_recovery then "recovery" else t.cur_phase);
        pr_objective = probe_objective t;
        pr_primal_infeas = primal_infeasibility t;
        pr_dual_infeas =
          (if mid_recovery then Float.nan else dual_infeasibility t);
        pr_entering = entering;
        pr_leaving = leaving;
        pr_eta_count = t.since_refactor;
        pr_bound_flips = t.st.s_flips;
        pr_recovery = recovery;
      }

let recompute_xb t =
  let m = t.m in
  let s = Array.make m 0.0 in
  for j = 0 to t.n + m - 1 do
    match t.vstat.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      let v = nonbasic_value t j in
      if v <> 0.0 then col_iter t j (fun i a -> s.(i) <- s.(i) +. (a *. v))
  done;
  if sparse_mode t then begin
    match t.sbasis with
    | None -> invalid_arg "recompute_xb: basis not factorised"
    | Some sb ->
      let w = Basis.ftran sb s in
      for r = 0 to m - 1 do
        t.xb.(r) <- -.w.(r)
      done
  end
  else begin
    t.ops.Basis.ftrans <- t.ops.Basis.ftrans + 1;
    for r = 0 to m - 1 do
      let br = t.binv.(r) in
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        acc := !acc +. (br.(i) *. s.(i))
      done;
      t.xb.(r) <- -. !acc
    done
  end

(* Rebuild B^-1 from the basis: sparse LU factorisation (basis matrices of
   path-structured LPs are very sparse), then one unit solve per column of
   the inverse. Falls back on nothing — a singular basis is a hard
   numerical error handled by the driver. *)
let basis_columns t =
  Array.init t.m (fun k ->
      let entries = ref [] in
      col_iter t t.basic.(k) (fun i a -> entries := (i, a) :: !entries);
      Sparse.of_assoc !entries)

(* LU pivot threshold scaled with the (possibly escalated) simplex pivot
   tolerance, never looser than the Lu.factor default. *)
let lu_pivot_tol t = max 1e-11 (t.cur_tol_pivot *. 1e-2)

let refactor_run t =
  if fault_fires t Fault_singular_refactor then
    raise (Numerical "fault injection: forced singular refactorisation");
  (* a fresh factorisation is exact, so the anti-cycling escape restarts:
     a Bland run triggered by numerical degeneracy must not outlive the
     basis representation that caused it *)
  t.degen_streak <- 0;
  t.bland <- false;
  t.xb_stale <- false;
  (* devex weights reference the basis representation they were accumulated
     against; a fresh factorisation restarts the reference framework *)
  Array.fill t.dvx 0 (Array.length t.dvx) 1.0;
  if sparse_mode t then begin
    (match Basis.create ~counters:t.ops ~pivot_tol:(lu_pivot_tol t) (basis_columns t) with
    | sb ->
      t.sbasis <- Some sb;
      t.needs_factor <- false
    | exception Lu.Singular j ->
      raise (Numerical (Printf.sprintf "refactor: singular basis (column %d)" j)));
    t.since_refactor <- 0;
    recompute_xb t
  end
  else begin
  t.ops.Basis.factorisations <- t.ops.Basis.factorisations + 1;
  let m = t.m in
  let cols = basis_columns t in
  let lu =
    match Lu.factor ~pivot_tol:(lu_pivot_tol t) cols with
    | lu -> lu
    | exception Lu.Singular j ->
      raise (Numerical (Printf.sprintf "refactor: singular basis (column %d)" j))
  in
  for j = 0 to m - 1 do
    let col = Lu.inverse_column lu j in
    for r = 0 to m - 1 do
      t.binv.(r).(j) <- col.(r)
    done
  done;
  (* clear any stale tail beyond m (capacity area) *)
  for r = 0 to m - 1 do
    Array.fill t.binv.(r) m (t.cap - m) 0.0
  done;
  t.since_refactor <- 0;
  recompute_xb t
  end

(* [Trace.span] (rather than the complete-event idiom) so a singular
   factorisation still closes the span on the raise path. *)
let refactor t =
  if Trace.enabled () then Trace.span "simplex.refactor" (fun () -> refactor_run t)
  else refactor_run t

(* Classic product-form refactorisation criterion: once the eta/border
   trail stores as many nonzeros as the LU factors themselves, applying it
   costs more than a fresh solve would, so dragging it further is pure
   loss (and compounding rounding). *)
let trail_heavy t =
  sparse_mode t
  &&
  match t.sbasis with
  | Some sb -> Basis.trail_nnz sb > Basis.lu_nnz sb
  | None -> false

let maybe_refactor t =
  if
    t.since_refactor >= t.p.refactor_every
    || (sparse_mode t && (t.needs_factor || t.sbasis = None))
  then refactor t

let check_consistency t =
  let saved = Array.sub t.xb 0 t.m in
  recompute_xb t;
  let worst = ref 0.0 in
  for r = 0 to t.m - 1 do
    worst := max !worst (abs_float (saved.(r) -. t.xb.(r)))
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)
(* ------------------------------------------------------------------ *)

(* Attractiveness of nonbasic column [j] under the current multipliers t.y:
   Some (d, sigma) when entering j with direction sigma improves the
   phase cost, None otherwise. *)
let attractiveness t ~cost j =
  match t.vstat.(j) with
  | Basic _ -> None
  | _ when is_fixed t j -> None
  | At_lower ->
    let d = cost j -. col_dot t j t.y in
    if d < -.dual_tol t j then Some (d, 1.0) else None
  | At_upper ->
    let d = cost j -. col_dot t j t.y in
    if d > dual_tol t j then Some (d, -1.0) else None
  | Free_zero ->
    let d = cost j -. col_dot t j t.y in
    if d < -.dual_tol t j then Some (d, 1.0)
    else if d > dual_tol t j then Some (d, -1.0)
    else None

(* Offers column [j] with [score] to the candidate list, displacing the
   weakest entry when full. Scores are a selection heuristic only — they go
   stale as the basis moves and every candidate is repriced before use. *)
let cand_offer t j score =
  let cap = Array.length t.cand in
  if t.ncand < cap then begin
    t.cand.(t.ncand) <- j;
    t.cand_score.(t.ncand) <- score;
    t.ncand <- t.ncand + 1
  end
  else begin
    let weakest = ref 0 in
    for k = 1 to cap - 1 do
      if t.cand_score.(k) < t.cand_score.(!weakest) then weakest := k
    done;
    if score > t.cand_score.(!weakest) then begin
      t.cand.(!weakest) <- j;
      t.cand_score.(!weakest) <- score
    end
  end

(* Pricing score of an attractive column with reduced cost [d]: Dantzig and
   partial use |d|; devex uses the reference-framework measure d^2 / w_j,
   which approximates the steepest-edge criterion at eta-update cost. *)
let score_of t j d =
  match t.p.pricing with
  | Devex ->
    let w = t.dvx.(j) in
    d *. d /. (if w >= 1.0 then w else 1.0)
  | Dantzig | Partial -> abs_float d

(* Full scan over all n+m columns. Refills the candidate list as a
   side effect (except in Bland mode, where the first eligible index wins
   and candidate quality is irrelevant). *)
let price_full t ~cost =
  let tr0 = tr_start () in
  t.st.s_full_scans <- t.st.s_full_scans + 1;
  let best = ref None in
  let total = t.n + t.m in
  if t.bland then (
    try
      for j = 0 to total - 1 do
        match attractiveness t ~cost j with
        | Some (d, sigma) ->
          best := Some (j, sigma, abs_float d);
          raise Exit
        | None -> ()
      done
    with Exit -> ())
  else begin
    t.ncand <- 0;
    for j = 0 to total - 1 do
      match attractiveness t ~cost j with
      | None -> ()
      | Some (d, sigma) ->
        let score = score_of t j d in
        (match !best with
        | Some (_, _, s) when s >= score -> ()
        | _ -> best := Some (j, sigma, score));
        cand_offer t j score
    done
  end;
  tr_stop tr0 "simplex.price_full";
  !best

(* Scan only the candidate list, dropping entries that no longer price
   attractively. Sound because every candidate is revalidated against the
   current multipliers: a winner here is a legal entering column, and
   optimality is only ever declared by a full scan. *)
let price_partial t ~cost =
  t.st.s_partial_scans <- t.st.s_partial_scans + 1;
  let best = ref None in
  let k = ref 0 in
  while !k < t.ncand do
    let j = t.cand.(!k) in
    match attractiveness t ~cost j with
    | None ->
      t.ncand <- t.ncand - 1;
      t.cand.(!k) <- t.cand.(t.ncand);
      t.cand_score.(!k) <- t.cand_score.(t.ncand)
    | Some (d, sigma) ->
      let score = score_of t j d in
      t.cand_score.(!k) <- score;
      (match !best with
      | Some (_, _, s) when s >= score -> ()
      | _ -> best := Some (j, sigma, score));
      incr k
  done;
  !best

(* Chooses an entering variable given reduced costs derived from t.y and the
   supplied per-variable cost function. Returns (q, sigma, d_q). *)
let price t ~cost =
  match t.p.pricing with
  | Dantzig -> price_full t ~cost
  | Partial | Devex ->
    if t.bland then price_full t ~cost
    else begin
      match price_partial t ~cost with
      | Some _ as r -> r
      | None -> price_full t ~cost
    end

(* ------------------------------------------------------------------ *)
(* Pivoting                                                            *)
(* ------------------------------------------------------------------ *)

(* Rank-1 update of B^-1 after variable q (with ftran result in t.w)
   replaces the basic variable of row r. *)
let update_binv t r =
  if fault_fires t Fault_zero_pivot then
    raise (Basis.Zero_pivot { row = r; magnitude = 0.0 });
  if sparse_mode t then begin
    match t.sbasis with
    | None -> invalid_arg "update_binv: basis not factorised"
    | Some sb -> Basis.update ~tol:t.cur_tol_pivot sb r (Array.sub t.w 0 t.m)
  end
  else begin
  let m = t.m and w = t.w in
  let alpha = w.(r) in
  if abs_float alpha < t.cur_tol_pivot then
    raise (Basis.Zero_pivot { row = r; magnitude = abs_float alpha });
  t.ops.Basis.updates <- t.ops.Basis.updates + 1;
  let br = t.binv.(r) in
  let d = 1.0 /. alpha in
  for i = 0 to m - 1 do
    br.(i) <- br.(i) *. d
  done;
  for r' = 0 to m - 1 do
    if r' <> r then begin
      let f = w.(r') in
      if f <> 0.0 then begin
        let row = t.binv.(r') in
        for i = 0 to m - 1 do
          row.(i) <- row.(i) -. (f *. br.(i))
        done
      end
    end
  done
  end

(* Devex reference-framework weight update after a pivot in row [r] with
   entering column [q]; [t.rho] must hold the PRE-pivot row [r] of B^-1 and
   [t.w] the ftran of [q]. Weights are maintained lazily: only the entering
   column, the leaving variable and the current candidate list are touched
   (the full devex recurrence needs alpha_j for every nonbasic j, which
   would cost a dense pass; stale weights elsewhere only make the score an
   underestimate, and {!refactor} resets the framework anyway). *)
let devex_update_with_rho t ~q ~r =
  let alpha_q = t.w.(r) in
  if abs_float alpha_q > t.cur_tol_pivot then begin
    let wq = max t.dvx.(q) 1.0 in
    let ratio2 = wq /. (alpha_q *. alpha_q) in
    for k = 0 to t.ncand - 1 do
      let j = t.cand.(k) in
      if j <> q then begin
        match t.vstat.(j) with
        | Basic _ -> ()
        | At_lower | At_upper | Free_zero ->
          let aj = col_dot t j t.rho in
          if aj <> 0.0 then begin
            let w' = aj *. aj *. ratio2 in
            if w' > t.dvx.(j) then t.dvx.(j) <- w'
          end
      end
    done;
    let leaving = t.basic.(r) in
    t.dvx.(leaving) <- max ratio2 1.0
  end

(* Primal pivots have no rho at hand; fetch the pre-pivot row of B^-1. *)
let devex_update_primal t ~q ~r =
  (if sparse_mode t then begin
     match t.sbasis with
     | None -> invalid_arg "devex: basis not factorised"
     | Some sb -> Array.blit (Basis.btran_unit sb r) 0 t.rho 0 t.m
   end
   else Array.blit t.binv.(r) 0 t.rho 0 t.m);
  devex_update_with_rho t ~q ~r

type blocking = Flip | Block of { row : int; to_upper : bool }

(* Applies a primal step: entering q moves by sigma*step, the blocking
   constraint decides who leaves the basis. t.w holds ftran(q). *)
let apply_primal_pivot t ~q ~sigma ~step ~blocking =
  let w = t.w in
  let q_new = value t q +. (sigma *. step) in
  let left =
    match blocking with
    | Flip ->
      for r = 0 to t.m - 1 do
        t.xb.(r) <- t.xb.(r) -. (sigma *. step *. w.(r))
      done;
      t.vstat.(q) <-
        (match t.vstat.(q) with
        | At_lower -> At_upper
        | At_upper -> At_lower
        | Basic _ | Free_zero -> invalid_arg "flip of non-bounded variable");
      -1
    | Block { row = r; to_upper } ->
      (* devex needs the pre-pivot basis; weights are heuristic state, so
         mutating them before a possible Zero_pivot raise is harmless *)
      if t.p.pricing = Devex then devex_update_primal t ~q ~r;
      (* update the basis representation first: it raises on a bad pivot
         before mutating anything, keeping vstat/basic/xb consistent for the
         recovery ladder *)
      update_binv t r;
      for r' = 0 to t.m - 1 do
        if r' <> r then t.xb.(r') <- t.xb.(r') -. (sigma *. step *. w.(r'))
      done;
      let leaving = t.basic.(r) in
      t.vstat.(leaving) <- (if to_upper then At_upper else At_lower);
      t.basic.(r) <- q;
      t.vstat.(q) <- Basic r;
      t.xb.(r) <- q_new;
      (* the just-ejected variable tends to price attractively again soon:
         seed it into the candidate list *)
      if t.p.pricing <> Dantzig then cand_offer t leaving 0.0;
      leaving
  in
  t.iters <- t.iters + 1;
  t.since_refactor <- t.since_refactor + 1;
  if step <= t.cur_tol_pivot then begin
    t.degen_streak <- t.degen_streak + 1;
    t.st.s_degen <- t.st.s_degen + 1
  end
  else t.degen_streak <- 0;
  if t.degen_streak > t.p.bland_threshold then begin
    if not t.bland then t.st.s_bland <- t.st.s_bland + 1;
    t.bland <- true
  end
  else if t.degen_streak = 0 then t.bland <- false;
  fire_probe t ~entering:q ~leaving:left ()

(* ------------------------------------------------------------------ *)
(* Ratio tests                                                         *)
(* ------------------------------------------------------------------ *)

(* Phase-II ratio test: every basic variable blocks at the first bound it
   reaches. Returns (step, blocking) or None for unbounded. *)
let ratio_phase2 t ~q ~sigma =
  let tr0 = tr_start () in
  let w = t.w in
  let best_step = ref infinity in
  let best_block = ref Flip in
  let best_mag = ref 0.0 in
  (if t.lo.(q) > neg_infinity && t.up.(q) < infinity then begin
     best_step := t.up.(q) -. t.lo.(q);
     best_block := Flip;
     best_mag := 0.0
   end);
  for r = 0 to t.m - 1 do
    let delta = -.(sigma *. w.(r)) in
    if abs_float delta > t.cur_tol_pivot then begin
      let b = t.basic.(r) in
      let x = t.xb.(r) in
      let bound, to_upper =
        if delta > 0.0 then (t.up.(b), true) else (t.lo.(b), false)
      in
      if abs_float bound < infinity then begin
        let lim = max 0.0 ((bound -. x) /. delta) in
        let mag = abs_float w.(r) in
        if
          lim < !best_step -. t.cur_tol_pivot
          || (lim <= !best_step +. t.cur_tol_pivot && mag > !best_mag)
        then begin
          best_step := lim;
          best_block := Block { row = r; to_upper };
          best_mag := mag
        end
      end
    end
  done;
  tr_stop tr0 "simplex.ratio_test";
  if !best_step = infinity then None else Some (!best_step, !best_block)

(* Phase-I ratio test: feasible basic variables block as in phase II;
   infeasible ones block only when the step would carry them to the bound
   they violate (the phase-I gradient changes there). *)
let ratio_phase1 t ~q ~sigma =
  let tr0 = tr_start () in
  let w = t.w in
  let best_step = ref infinity in
  let best_block = ref Flip in
  let best_mag = ref 0.0 in
  (if t.lo.(q) > neg_infinity && t.up.(q) < infinity then begin
     best_step := t.up.(q) -. t.lo.(q);
     best_block := Flip
   end);
  let offer lim r to_upper mag =
    let lim = max 0.0 lim in
    if
      lim < !best_step -. t.cur_tol_pivot
      || (lim <= !best_step +. t.cur_tol_pivot && mag > !best_mag)
    then begin
      best_step := lim;
      best_block := Block { row = r; to_upper };
      best_mag := mag
    end
  in
  for r = 0 to t.m - 1 do
    let delta = -.(sigma *. w.(r)) in
    if abs_float delta > t.cur_tol_pivot then begin
      let b = t.basic.(r) in
      let x = t.xb.(r) in
      let mag = abs_float w.(r) in
      if x < t.lo.(b) -. feas_tol t t.lo.(b) then begin
        (* violated below: blocks only when moving up to its lower bound *)
        if delta > 0.0 then offer ((t.lo.(b) -. x) /. delta) r false mag
      end
      else if x > t.up.(b) +. feas_tol t t.up.(b) then begin
        if delta < 0.0 then offer ((t.up.(b) -. x) /. delta) r true mag
      end
      else begin
        let bound, to_upper =
          if delta > 0.0 then (t.up.(b), true) else (t.lo.(b), false)
        in
        if abs_float bound < infinity then
          offer ((bound -. x) /. delta) r to_upper mag
      end
    end
  done;
  tr_stop tr0 "simplex.ratio_test";
  if !best_step = infinity then None else Some (!best_step, !best_block)

(* ------------------------------------------------------------------ *)
(* Primal simplex                                                      *)
(* ------------------------------------------------------------------ *)

let effective_max_iters t =
  if t.p.max_iters > 0 then t.p.max_iters else (100 * (t.n + t.m)) + 10_000

(* Phase II from a primal-feasible basis. *)
let primal_phase2 t =
  let rec loop () =
    if t.iters > effective_max_iters t then Status.Iteration_limit
    else if out_of_time t then Status.Time_limit
    else begin
      maybe_refactor t;
      fill_cb_phase2 t;
      compute_y t t.cb;
      match price t ~cost:(fun j -> t.obj.(j)) with
      | None -> Status.Optimal
      | Some (q, sigma, _) -> (
        ftran t q;
        match ratio_phase2 t ~q ~sigma with
        | None -> Status.Unbounded
        | Some (step, blocking) ->
          apply_primal_pivot t ~q ~sigma ~step ~blocking;
          loop ())
    end
  in
  loop ()

(* Phase I: drive the total bound violation of basic variables to zero. *)
let primal_phase1 t =
  let rec loop () =
    if t.iters > effective_max_iters t then Status.Iteration_limit
    else if out_of_time t then Status.Time_limit
    else begin
      maybe_refactor t;
      let inf = primal_infeasibility t in
      if inf <= t.p.tol_feas *. float_of_int (1 + t.m) then Status.Optimal
      else begin
        fill_cb_phase1 t;
        compute_y t t.cb;
        match price t ~cost:(fun _ -> 0.0) with
        | None -> Status.Infeasible
        | Some (q, sigma, _) -> (
          ftran t q;
          match ratio_phase1 t ~q ~sigma with
          | None -> raise (Numerical "phase 1: unbounded infeasibility")
          | Some (step, blocking) ->
            apply_primal_pivot t ~q ~sigma ~step ~blocking;
            loop ())
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

let most_violated_row t =
  let best = ref None in
  for r = 0 to t.m - 1 do
    let b = t.basic.(r) in
    let x = t.xb.(r) in
    let viol =
      if x < t.lo.(b) -. feas_tol t t.lo.(b) then t.lo.(b) -. x
      else if x > t.up.(b) +. feas_tol t t.up.(b) then x -. t.up.(b)
      else 0.0
    in
    if viol > 0.0 then
      match !best with
      | Some (_, v) when v >= viol -> ()
      | _ -> best := Some (r, viol)
  done;
  !best

let dual_simplex t =
  let rec loop () =
    if t.iters > effective_max_iters t then Status.Iteration_limit
    else if out_of_time t then Status.Time_limit
    else begin
      maybe_refactor t;
      match most_violated_row t with
      | None -> Status.Optimal
      | Some (r, _) ->
        let b = t.basic.(r) in
        let above = t.xb.(r) > t.up.(b) in
        let s = if above then 1.0 else -1.0 in
        (if sparse_mode t then begin
           match t.sbasis with
           | None -> invalid_arg "dual: basis not factorised"
           | Some sb -> Array.blit (Basis.btran_unit sb r) 0 t.rho 0 t.m
         end
         else begin
           t.ops.Basis.btrans <- t.ops.Basis.btrans + 1;
           Array.blit t.binv.(r) 0 t.rho 0 t.m
         end);
        fill_cb_phase2 t;
        compute_y t t.cb;
        (* entering candidates: columns whose pivot sign restores primal
           feasibility, with their dual ratio |d_j| / |alpha_j| *)
        let tr0 = tr_start () in
        t.st.s_full_scans <- t.st.s_full_scans + 1;
        let cands = ref [] in
        let consider j ratio alpha =
          cands := (j, ratio, abs_float alpha) :: !cands
        in
        let total = t.n + t.m in
        for j = 0 to total - 1 do
          match t.vstat.(j) with
          | Basic _ -> ()
          | _ when is_fixed t j -> ()
          | At_lower ->
            let alpha = s *. col_dot t j t.rho in
            if alpha > t.cur_tol_pivot then begin
              let d = max 0.0 (t.obj.(j) -. col_dot t j t.y) in
              consider j (d /. alpha) alpha
            end
          | At_upper ->
            let alpha = s *. col_dot t j t.rho in
            if alpha < -.t.cur_tol_pivot then begin
              let d = min 0.0 (t.obj.(j) -. col_dot t j t.y) in
              consider j (d /. alpha) alpha
            end
          | Free_zero ->
            let alpha = s *. col_dot t j t.rho in
            if abs_float alpha > t.cur_tol_pivot then consider j 0.0 alpha
        done;
        let target = if above then t.up.(b) else t.lo.(b) in
        (* Entering choice: minimum dual ratio, ties (within 1e-12) to the
           largest pivot, then to the scan order. *)
        let pick cs =
          let best = ref None in
          List.iter
            (fun (j, ratio, mag) ->
              match !best with
              | Some (_, br, bm)
                when br < ratio -. 1e-9 || (br <= ratio +. 1e-9 && bm >= mag)
                -> ()
              | _ -> best := Some (j, ratio, mag))
            cs;
          !best
        in
        (* Bound flips (long-step rule): walk the breakpoints in dual-ratio
           order by repeated extraction with the same rule; a boxed
           candidate whose full flip cannot absorb the remaining primal
           violation is flipped to its opposite bound (no basis change —
           its reduced cost has crossed zero, so it is dual feasible at
           the new bound) and the walk continues with the violation it
           paid off; the first candidate that would overshoot enters.
           With no flippable candidates this degenerates to a single
           extraction — identical to the flip-free rule. Flips are
           planned first and applied only once an entering column exists,
           so an infeasible exit mutates nothing. *)
        let entering, flips =
          if not t.p.bound_flips then
            ((match pick !cands with Some (j, _, _) -> j | None -> -1), [])
          else begin
            let tol = feas_tol t target in
            let rec walk cs delta flips =
              match pick cs with
              | None -> (-1, flips)
              | Some (j, _, mag) ->
                let range = t.up.(j) -. t.lo.(j) in
                let gain =
                  if range < infinity then range *. mag else infinity
                in
                if gain < delta -. tol then
                  walk
                    (List.filter (fun (j', _, _) -> j' <> j) cs)
                    (delta -. gain) (j :: flips)
                else (j, flips)
            in
            walk !cands (abs_float (t.xb.(r) -. target)) []
          end
        in
        tr_stop tr0 "simplex.dual_scan";
        if entering < 0 then Status.Infeasible
        else begin
          let q = entering in
          (* apply the planned flips as one accumulated basic-value update:
             xb -= B^-1 (sum_j A_j dx_j) *)
          (match flips with
          | [] -> ()
          | fs ->
            let acc = Array.make t.m 0.0 in
            List.iter
              (fun j ->
                let dx =
                  match t.vstat.(j) with
                  | At_lower ->
                    t.vstat.(j) <- At_upper;
                    t.up.(j) -. t.lo.(j)
                  | At_upper ->
                    t.vstat.(j) <- At_lower;
                    t.lo.(j) -. t.up.(j)
                  | Basic _ | Free_zero ->
                    invalid_arg "dual flip of unbounded variable"
                in
                col_iter t j (fun i a -> acc.(i) <- acc.(i) +. (a *. dx));
                t.st.s_flips <- t.st.s_flips + 1)
              fs;
            if sparse_mode t then begin
              match t.sbasis with
              | None -> invalid_arg "dual: basis not factorised"
              | Some sb ->
                let wf = Basis.ftran sb acc in
                for r' = 0 to t.m - 1 do
                  t.xb.(r') <- t.xb.(r') -. wf.(r')
                done
            end
            else begin
              t.ops.Basis.ftrans <- t.ops.Basis.ftrans + 1;
              for r' = 0 to t.m - 1 do
                let br = t.binv.(r') in
                let sum = ref 0.0 in
                for i = 0 to t.m - 1 do
                  sum := !sum +. (br.(i) *. acc.(i))
                done;
                t.xb.(r') <- t.xb.(r') -. !sum
              done
            end);
          ftran t q;
          let alpha_rq = t.w.(r) in
          if abs_float alpha_rq < t.cur_tol_pivot then
            raise (Numerical "dual simplex: tiny pivot");
          let dq = (t.xb.(r) -. target) /. alpha_rq in
          let q_new = value t q +. dq in
          (* devex sees the pre-pivot rho computed for the row selection *)
          if t.p.pricing = Devex then devex_update_with_rho t ~q ~r;
          (* basis update first: raises before any state mutation *)
          update_binv t r;
          for r' = 0 to t.m - 1 do
            if r' <> r then t.xb.(r') <- t.xb.(r') -. (dq *. t.w.(r'))
          done;
          t.vstat.(b) <- (if above then At_upper else At_lower);
          t.basic.(r) <- q;
          t.vstat.(q) <- Basic r;
          t.xb.(r) <- q_new;
          if t.p.pricing <> Dantzig then cand_offer t b 0.0;
          t.iters <- t.iters + 1;
          t.since_refactor <- t.since_refactor + 1;
          fire_probe t ~entering:q ~leaving:b ();
          loop ()
        end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Loading and growing                                                 *)
(* ------------------------------------------------------------------ *)

let initial_vstat lo up =
  if lo > neg_infinity then At_lower
  else if up < infinity then At_upper
  else Free_zero

let grow_arrays t needed_cap =
  if needed_cap > t.cap then begin
    let ncap = max needed_cap (2 * t.cap) in
    let grow_f arr extra =
      let res = Array.make (extra + ncap) 0.0 in
      Array.blit arr 0 res 0 (Array.length arr);
      res
    in
    let grow_i arr =
      let res = Array.make ncap 0 in
      Array.blit arr 0 res 0 t.m;
      res
    in
    t.lo <- grow_f t.lo t.n;
    t.up <- grow_f t.up t.n;
    t.obj <- grow_f t.obj t.n;
    t.basic <- grow_i t.basic;
    t.xb <- grow_f t.xb 0;
    t.w <- Array.make ncap 0.0;
    t.y <- Array.make ncap 0.0;
    t.rho <- Array.make ncap 0.0;
    t.cb <- Array.make ncap 0.0;
    let vs = Array.make (t.n + ncap) Free_zero in
    Array.blit t.vstat 0 vs 0 (t.n + t.m);
    t.vstat <- vs;
    (* fresh devex slots start at the reference weight, not 0 *)
    let dv = Array.make (t.n + ncap) 1.0 in
    Array.blit t.dvx 0 dv 0 (t.n + t.m);
    t.dvx <- dv;
    let nbinv =
      if t.cur_sparse then [||]
      else
        Array.init ncap (fun r ->
            let row = Array.make ncap 0.0 in
            if r < t.m then Array.blit t.binv.(r) 0 row 0 t.m;
            row)
    in
    t.binv <- nbinv;
    t.cap <- ncap
  end

let of_problem ?(params = default_params) prob =
  let n = Problem.nvars prob in
  let m = Problem.nrows prob in
  let cap = max 16 (m + (m / 2)) in
  (* structural columns: transpose the row-wise model *)
  let buckets = Array.make n [] in
  for i = m - 1 downto 0 do
    Sparse.iter
      (fun j v -> buckets.(j) <- (i, v) :: buckets.(j))
      (Problem.row prob i).coeffs
  done;
  let cols = Array.map Sparse.of_assoc buckets in
  let lo = Array.make (n + cap) 0.0 and up = Array.make (n + cap) 0.0 in
  let obj = Array.make (n + cap) 0.0 in
  for j = 0 to n - 1 do
    lo.(j) <- Problem.var_lo prob j;
    up.(j) <- Problem.var_up prob j;
    obj.(j) <- Problem.obj_coeff prob j
  done;
  for i = 0 to m - 1 do
    let r = Problem.row prob i in
    lo.(n + i) <- r.rlo;
    up.(n + i) <- r.rup
  done;
  let vstat = Array.make (n + cap) Free_zero in
  for j = 0 to n - 1 do
    vstat.(j) <- initial_vstat lo.(j) up.(j)
  done;
  let basic = Array.make cap 0 in
  for i = 0 to m - 1 do
    basic.(i) <- n + i;
    vstat.(n + i) <- Basic i
  done;
  let binv =
    if params.sparse_basis then [||]
    else
      Array.init cap (fun r ->
          let row = Array.make cap 0.0 in
          if r < m then row.(r) <- -1.0;
          row)
  in
  let cand_cap = max 8 (min 64 ((n + m + 3) / 4)) in
  let t =
    {
      n;
      p = params;
      m;
      cap;
      cols;
      lo;
      up;
      obj;
      basic;
      vstat;
      binv;
      xb = Array.make cap 0.0;
      last_status = Status.Iteration_limit;
      sbasis = None;
      needs_factor = true;
      xb_stale = false;
      iters = 0;
      since_refactor = 0;
      degen_streak = 0;
      bland = false;
      cur_sparse = params.sparse_basis;
      cur_tol_pivot = params.tol_pivot;
      time_budget = params.time_limit;
      deadline = infinity;
      solving = false;
      probe = None;
      cur_phase = "";
      faults_left =
        (match params.fault with Some f -> f.max_faults | None -> 0);
      frng =
        (match params.fault with
        | Some f -> Some (Lubt_util.Prng.create f.fault_seed)
        | None -> None);
      fallback = None;
      st = fresh_istats ();
      ops = Basis.fresh_counters ();
      cand = Array.make cand_cap 0;
      cand_score = Array.make cand_cap 0.0;
      ncand = 0;
      dvx = Array.make (n + cap) 1.0;
      w = Array.make cap 0.0;
      y = Array.make cap 0.0;
      rho = Array.make cap 0.0;
      cb = Array.make cap 0.0;
    }
  in
  if params.sparse_basis then refactor t else recompute_xb t;
  t

let add_row t ~lo ~up coeffs =
  if not (lo <= up) then invalid_arg "Simplex.add_row: lo > up";
  let sp = Sparse.of_assoc coeffs in
  if Sparse.max_index sp >= t.n then
    invalid_arg "Simplex.add_row: unknown structural variable";
  grow_arrays t (t.m + 1);
  let r_new = t.m in
  let aux = t.n + r_new in
  t.lo.(aux) <- lo;
  t.up.(aux) <- up;
  t.obj.(aux) <- 0.0;
  (* extend the columns of the referenced structural variables *)
  Sparse.iter
    (fun j v ->
      let old = t.cols.(j) in
      t.cols.(j) <- Sparse.of_assoc ((r_new, v) :: Sparse.to_assoc old))
    sp;
  (* extend B^-1: the new basis matrix is [[B, 0], [C, -1]] whose inverse is
     [[B^-1, 0], [C B^-1, -1]], where C holds the new row's coefficients on
     the current basic (necessarily structural) variables. In sparse mode a
     warm start appends the same border to the live factorisation — the
     next solve then re-enters the dual simplex without refactorising —
     and otherwise the factorisation is rebuilt at the next solve. *)
  if t.cur_sparse then begin
    match t.sbasis with
    | Some sb when t.p.warm_start && not t.needs_factor ->
      let border = ref [] in
      Sparse.iter
        (fun j v ->
          match t.vstat.(j) with
          | Basic k -> border := (k, v) :: !border
          | At_lower | At_upper | Free_zero -> ())
        sp;
      Basis.append_row sb (Sparse.of_assoc !border);
      t.since_refactor <- t.since_refactor + 1;
      t.xb_stale <- true
    | _ -> t.needs_factor <- true
  end
  else begin
  let new_row = t.binv.(r_new) in
  Array.fill new_row 0 t.cap 0.0;
  Sparse.iter
    (fun j v ->
      match t.vstat.(j) with
      | Basic k ->
        let bk = t.binv.(k) in
        for i = 0 to t.m - 1 do
          new_row.(i) <- new_row.(i) +. (v *. bk.(i))
        done
      | At_lower | At_upper | Free_zero -> ())
    sp;
  new_row.(r_new) <- -1.0
  end;
  (* the new auxiliary variable enters the basis at the row's activity *)
  let activity =
    Sparse.fold (fun j v acc -> acc +. (v *. value t j)) sp 0.0
  in
  t.basic.(r_new) <- aux;
  t.vstat.(aux) <- Basic r_new;
  t.xb.(r_new) <- activity;
  t.m <- t.m + 1;
  t.fallback <- None;  (* any fallback solution predates this row *)
  t.last_status <- Status.Iteration_limit

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let dual_feasible t =
  fill_cb_phase2 t;
  compute_y t t.cb;
  let ok = ref true in
  let total = t.n + t.m in
  let j = ref 0 in
  while !ok && !j < total do
    (match t.vstat.(!j) with
    | Basic _ -> ()
    | _ when is_fixed t !j -> ()
    | At_lower ->
      if t.obj.(!j) -. col_dot t !j t.y < -.(10.0 *. dual_tol t !j) then
        ok := false
    | At_upper ->
      if t.obj.(!j) -. col_dot t !j t.y > 10.0 *. dual_tol t !j then ok := false
    | Free_zero ->
      if abs_float (t.obj.(!j) -. col_dot t !j t.y) > 10.0 *. dual_tol t !j
      then ok := false);
    incr j
  done;
  !ok

(* Phase-attributed wrappers: account wall time and the iteration delta of
   one algorithm run to the matching stats bucket. *)
let run_phase1 t =
  let t0 = Clock.now () in
  let it0 = t.iters in
  t.cur_phase <- "phase1";
  let r = primal_phase1 t in
  t.st.s_phase1_secs <- t.st.s_phase1_secs +. (Clock.now () -. t0);
  t.st.s_phase1_iters <- t.st.s_phase1_iters + (t.iters - it0);
  if Trace.enabled () then
    Trace.complete ~t0 "simplex.phase1"
      ~args:[ ("iterations", Trace.Int (t.iters - it0)) ];
  r

let run_phase2 t =
  let t0 = Clock.now () in
  let it0 = t.iters in
  t.cur_phase <- "phase2";
  let r = primal_phase2 t in
  t.st.s_phase2_secs <- t.st.s_phase2_secs +. (Clock.now () -. t0);
  t.st.s_phase2_iters <- t.st.s_phase2_iters + (t.iters - it0);
  if Trace.enabled () then
    Trace.complete ~t0 "simplex.phase2"
      ~args:[ ("iterations", Trace.Int (t.iters - it0)) ];
  r

let run_dual t =
  let t0 = Clock.now () in
  let it0 = t.iters in
  t.cur_phase <- "dual";
  let r = dual_simplex t in
  t.st.s_dual_secs <- t.st.s_dual_secs +. (Clock.now () -. t0);
  t.st.s_dual_iters <- t.st.s_dual_iters + (t.iters - it0);
  if Trace.enabled () then
    Trace.complete ~t0 "simplex.dual"
      ~args:[ ("iterations", Trace.Int (t.iters - it0)) ];
  r

(* Algorithm selection for one clean run from the current basis. *)
let drive t =
  if dual_feasible t then run_dual t
  else begin
    let inf = primal_infeasibility t in
    if inf <= t.p.tol_feas *. float_of_int (1 + t.m) then run_phase2 t
    else
      match run_phase1 t with
      | Status.Optimal -> run_phase2 t
      | other -> other
  end

(* A solve that ends Optimal must also look optimal when checked only
   against the original column data — never through the basis inverse,
   which is exactly the object a numerical fault corrupts. Checks the
   equality system [A | -I] x = 0 and the bound feasibility of the basic
   values; a failure re-enters the recovery ladder. *)
let validate_solution t =
  let m = t.m in
  if m > 0 then begin
    let s = Array.make m 0.0 in
    let scale = ref 1.0 in
    for j = 0 to t.n + m - 1 do
      let v = value t j in
      if v <> 0.0 then begin
        if abs_float v > !scale then scale := abs_float v;
        col_iter t j (fun i a -> s.(i) <- s.(i) +. (a *. v))
      end
    done;
    let residual = ref 0.0 in
    for i = 0 to m - 1 do
      if abs_float s.(i) > !residual then residual := abs_float s.(i)
    done;
    let residual = !residual /. !scale in
    let infeas = ref 0.0 in
    for r = 0 to m - 1 do
      let b = t.basic.(r) in
      let x = t.xb.(r) in
      let v =
        if x < t.lo.(b) then (t.lo.(b) -. x) /. (1.0 +. abs_float t.lo.(b))
        else if x > t.up.(b) then (x -. t.up.(b)) /. (1.0 +. abs_float t.up.(b))
        else 0.0
      in
      if v > !infeas then infeas := v
    done;
    let tol = 1e3 *. t.p.tol_feas in
    if residual > tol || !infeas > tol then begin
      t.st.s_rejected <- t.st.s_rejected + 1;
      raise
        (Numerical
           (Printf.sprintf
              "post-solve validation: equality residual %.3g, bound violation %.3g"
              residual !infeas))
    end
  end

(* Reconstructs a standalone Problem.t equal to the engine's current model
   (including rows appended with add_row), for the independent fallback
   solver and for diagnostics. *)
let to_problem t =
  let prob = Problem.create () in
  for j = 0 to t.n - 1 do
    ignore (Problem.add_var ~lo:t.lo.(j) ~up:t.up.(j) ~obj:t.obj.(j) prob)
  done;
  let rows = Array.make (max 1 t.m) [] in
  for j = t.n - 1 downto 0 do
    Sparse.iter (fun i a -> rows.(i) <- (j, a) :: rows.(i)) t.cols.(j)
  done;
  for i = 0 to t.m - 1 do
    ignore (Problem.add_row prob ~lo:t.lo.(t.n + i) ~up:t.up.(t.n + i) rows.(i))
  done;
  prob

(* The exception classes the recovery ladder is allowed to absorb. Anything
   else (Invalid_argument, Out_of_memory, ...) is a caller or engine bug and
   propagates. *)
let recoverable = function
  | Numerical msg -> Some msg
  | Lu.Singular j -> Some (Printf.sprintf "singular factorisation (column %d)" j)
  | Basis.Zero_pivot { row; magnitude } ->
    Some (Printf.sprintf "zero pivot at row %d (|pivot| = %g)" row magnitude)
  | _ -> None

type stage_outcome = Retry | Final of Status.t

let stage_name = function
  | Refactor_retry -> "refactor_retry"
  | Switch_backend -> "switch_backend"
  | Tighten_pivot_tol -> "tighten_pivot_tol"
  | Perturb_and_resolve -> "perturb_and_resolve"
  | Tableau_fallback -> "tableau_fallback"

let apply_stage t stage =
  let name = stage_name stage in
  Lubt_obs.Log.warn
    ~fields:
      [ ("stage", Trace.Str name); ("iteration", Trace.Int t.iters) ]
    "simplex recovery stage engaged";
  Trace.instant "simplex.recovery" ~args:[ ("stage", Trace.Str name) ];
  fire_probe t ~recovery:name ~entering:(-1) ~leaving:(-1) ();
  match stage with
  | Refactor_retry ->
    t.st.s_rec_refactor <- t.st.s_rec_refactor + 1;
    refactor t;
    Retry
  | Switch_backend ->
    t.st.s_rec_switch <- t.st.s_rec_switch + 1;
    if t.cur_sparse then begin
      (* sparse LU + eta file -> explicit dense inverse *)
      t.cur_sparse <- false;
      t.sbasis <- None;
      t.binv <- Array.init t.cap (fun _ -> Array.make t.cap 0.0)
    end
    else begin
      (* dense inverse -> sparse LU *)
      t.cur_sparse <- true;
      t.binv <- [||];
      t.sbasis <- None;
      t.needs_factor <- true
    end;
    refactor t;
    Retry
  | Tighten_pivot_tol ->
    t.st.s_rec_tol <- t.st.s_rec_tol + 1;
    t.cur_tol_pivot <- min 1e-5 (t.cur_tol_pivot *. 100.0);
    refactor t;
    Retry
  | Perturb_and_resolve ->
    t.st.s_rec_perturb <- t.st.s_rec_perturb + 1;
    let total = t.n + t.m in
    let saved_lo = Array.sub t.lo 0 total in
    let saved_up = Array.sub t.up 0 total in
    (* outward relative perturbation of the finite bounds of non-fixed
       variables: relaxes the problem slightly and breaks the degenerate
       vertex that defeated the pivot tolerances; seeded, so deterministic *)
    let rng = Lubt_util.Prng.create (0x9e37 + t.st.s_rec_perturb) in
    for j = 0 to total - 1 do
      if t.up.(j) > t.lo.(j) then begin
        if t.lo.(j) > neg_infinity then
          t.lo.(j) <-
            t.lo.(j)
            -. (1e-7 *. (1.0 +. abs_float t.lo.(j)) *. Lubt_util.Prng.float rng 1.0);
        if t.up.(j) < infinity then
          t.up.(j) <-
            t.up.(j)
            +. (1e-7 *. (1.0 +. abs_float t.up.(j)) *. Lubt_util.Prng.float rng 1.0)
      end
    done;
    let outcome =
      match
        refactor t;
        ignore (drive t)
      with
      | () -> None
      | exception e -> Some e
    in
    Array.blit saved_lo 0 t.lo 0 total;
    Array.blit saved_up 0 t.up 0 total;
    (match outcome with
    | Some e when recoverable e = None -> raise e
    | _ -> ());
    (* clean re-solve on the exact bounds happens at the next attempt; here
       only the basis bookkeeping is refreshed for the restored bounds *)
    refactor t;
    Retry
  | Tableau_fallback ->
    t.st.s_rec_tableau <- t.st.s_rec_tableau + 1;
    let sol = Tableau.solve (to_problem t) in
    let sol = { sol with Status.iterations = t.iters } in
    t.fallback <- Some sol;
    Final sol.Status.status

let solve t =
  t.fallback <- None;
  t.solving <- true;
  t.deadline <-
    (if t.time_budget = infinity then infinity
     else Clock.now () +. t.time_budget);
  let rec_total t =
    t.st.s_rec_refactor + t.st.s_rec_switch + t.st.s_rec_tol
    + t.st.s_rec_perturb + t.st.s_rec_tableau
  in
  (* entry counters, so re-solves on a live engine report deltas *)
  let m0_iters = t.iters
  and m0_flips = t.st.s_flips
  and m0_ftrans = t.ops.Basis.ftrans
  and m0_btrans = t.ops.Basis.btrans
  and m0_hftrans = t.ops.Basis.hyper_ftrans
  and m0_hbtrans = t.ops.Basis.hyper_btrans
  and m0_rec = rec_total t in
  let finish status =
    t.solving <- false;
    t.last_status <- status;
    if Metrics.enabled () then begin
      let d c0 c1 = float_of_int (c1 - c0) in
      Metrics.incr m_solves;
      Metrics.incr ~by:(d m0_iters t.iters) m_iterations;
      Metrics.incr ~by:(d m0_flips t.st.s_flips) m_bound_flips;
      Metrics.incr ~by:(d m0_ftrans t.ops.Basis.ftrans) m_ftrans;
      Metrics.incr ~by:(d m0_btrans t.ops.Basis.btrans) m_btrans;
      Metrics.incr ~by:(d m0_hftrans t.ops.Basis.hyper_ftrans) m_hyper_ftrans;
      Metrics.incr ~by:(d m0_hbtrans t.ops.Basis.hyper_btrans) m_hyper_btrans;
      Metrics.incr ~by:(d m0_rec (rec_total t)) m_recoveries
    end;
    status
  in
  let run () =
    (* a stale factorisation (rows added since the last solve) must be
       rebuilt before anything consults the basis *)
    if sparse_mode t && (t.needs_factor || t.sbasis = None) then refactor t;
    (* warm-started row growth skipped that rebuild; give the solve the
       same starting hygiene a refactorisation provides — exact basic
       values and a fresh anti-cycling / devex reference state. The live
       factorisation is kept unless its trail has grown heavier than the
       LU itself, in which case rebuilding now is cheaper than dragging
       the trail through the whole re-solve. *)
    if t.xb_stale then begin
      t.xb_stale <- false;
      if trail_heavy t then refactor t
      else begin
        t.degen_streak <- 0;
        t.bland <- false;
        Array.fill t.dvx 0 (Array.length t.dvx) 1.0;
        recompute_xb t
      end
    end;
    let s = drive t in
    if s = Status.Optimal then validate_solution t;
    s
  in
  let guard f =
    match f () with
    | v -> Ok v
    | exception e -> (
      match recoverable e with
      | Some reason -> Error reason
      | None ->
        t.solving <- false;
        raise e)
  in
  (* The ladder: each numerical failure consumes the next stage, then the
     whole solve is retried. Stages that themselves fail numerically are
     skipped. An empty (or exhausted) ladder is a hard failure. *)
  let rec attempt stages =
    match guard run with
    | Ok s -> s
    | Error _ -> escalate stages
  and escalate = function
    | [] -> Status.Numerical_failure
    | stage :: rest -> (
      match guard (fun () -> apply_stage t stage) with
      | Ok Retry -> attempt rest
      | Ok (Final s) -> s
      | Error _ -> escalate rest)
  in
  let status =
    if Trace.enabled () then
      Trace.span "simplex.solve" (fun () -> attempt t.p.recovery)
    else attempt t.p.recovery
  in
  finish status

let set_time_limit t seconds = t.time_budget <- seconds

let used_fallback t = t.fallback <> None

(* ------------------------------------------------------------------ *)
(* Warm-basis snapshots                                                *)
(* ------------------------------------------------------------------ *)

type warm_basis = {
  wb_nvars : int;
  wb_nrows : int;
  wb_basic : int array;
  wb_nonbasic : string;
}

type basis_mismatch = {
  bm_expected_vars : int;
  bm_expected_rows : int;
  bm_got_vars : int;
  bm_got_rows : int;
  bm_reason : string;
}

let pp_basis_mismatch fmt bm =
  Format.fprintf fmt "basis mismatch: %s (engine %dx%d, snapshot %dx%d)"
    bm.bm_reason bm.bm_expected_rows bm.bm_expected_vars bm.bm_got_rows
    bm.bm_got_vars

let warm_basis t =
  let total = t.n + t.m in
  let statuses = Bytes.create total in
  for j = 0 to total - 1 do
    Bytes.set statuses j
      (match t.vstat.(j) with
      | Basic _ -> 'b'
      | At_lower -> 'l'
      | At_upper -> 'u'
      | Free_zero -> 'f')
  done;
  {
    wb_nvars = t.n;
    wb_nrows = t.m;
    wb_basic = Array.sub t.basic 0 t.m;
    wb_nonbasic = Bytes.unsafe_to_string statuses;
  }

(* The always-valid fallback start: every auxiliary variable basic in its
   own row (B = -I), structurals at their [initial_vstat] bound. This is
   exactly the basis [of_problem] builds, so reinstalling it after a failed
   warm install returns the engine to a known-good cold state. *)
let install_slack_basis t =
  for j = 0 to t.n - 1 do
    t.vstat.(j) <- initial_vstat t.lo.(j) t.up.(j)
  done;
  for i = 0 to t.m - 1 do
    t.basic.(i) <- t.n + i;
    t.vstat.(t.n + i) <- Basic i
  done;
  if t.cur_sparse then t.needs_factor <- true;
  refactor t

let install_warm_basis t wb =
  let mismatch reason =
    Error
      {
        bm_expected_vars = t.n;
        bm_expected_rows = t.m;
        bm_got_vars = wb.wb_nvars;
        bm_got_rows = wb.wb_nrows;
        bm_reason = reason;
      }
  in
  let total = t.n + t.m in
  if wb.wb_nvars <> t.n then mismatch "structural variable count differs"
  else if wb.wb_nrows <> t.m then mismatch "row count differs"
  else if Array.length wb.wb_basic <> t.m then
    mismatch "basic array length disagrees with row count"
  else if String.length wb.wb_nonbasic <> total then
    mismatch "status string length disagrees with variable count"
  else begin
    (* validate before mutating anything: indices in range, no duplicate
       basic variable, statuses consistent with the basic set *)
    let seen = Array.make total false in
    let bad = ref None in
    let fail reason = if !bad = None then bad := Some reason in
    Array.iter
      (fun b ->
        if b < 0 || b >= total then fail "basic variable index out of range"
        else if seen.(b) then fail "duplicate basic variable"
        else begin
          seen.(b) <- true;
          if wb.wb_nonbasic.[b] <> 'b' then
            fail "basic variable not marked basic in status string"
        end)
      wb.wb_basic;
    String.iteri
      (fun j c ->
        match c with
        | 'b' -> if not seen.(j) then fail "stray basic status marker"
        | 'l' | 'u' | 'f' -> ()
        | _ -> fail "unknown status marker")
      wb.wb_nonbasic;
    match !bad with
    | Some reason -> mismatch reason
    | None ->
      for j = 0 to total - 1 do
        t.vstat.(j) <-
          (match wb.wb_nonbasic.[j] with
          | 'l' when t.lo.(j) > neg_infinity -> At_lower
          | 'u' when t.up.(j) < infinity -> At_upper
          | 'l' | 'u' ->
            (* the bound this status rested on is no longer finite (an ECO
               edit relaxed it): coerce to a valid nonbasic state *)
            initial_vstat t.lo.(j) t.up.(j)
          | 'f' -> Free_zero
          | _ -> Free_zero (* 'b': overwritten below *))
      done;
      Array.iteri
        (fun r b ->
          t.basic.(r) <- b;
          t.vstat.(b) <- Basic r)
        wb.wb_basic;
      t.fallback <- None;
      t.last_status <- Status.Iteration_limit;
      if t.cur_sparse then t.needs_factor <- true;
      (* factorise now: [of_problem] only auto-refactors the sparse backend,
         and the dense path assumes the -I start otherwise. A singular warm
         basis is the snapshot's fault, not the engine's — reinstall the
         all-slack basis and report the mismatch. *)
      (match refactor t with
      | () -> Ok ()
      | exception e -> (
        match recoverable e with
        | Some reason ->
          install_slack_basis t;
          mismatch (Printf.sprintf "warm basis not factorisable: %s" reason)
        | None -> raise e))
  end

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

(* When the Tableau_fallback stage produced the answer, the engine's own
   basis is untrustworthy: every extractor reads the stored independent
   solution instead. *)

let primal t =
  match t.fallback with
  | Some s -> Array.copy s.Status.primal
  | None -> Array.init t.n (fun j -> value t j)

let row_activity t =
  match t.fallback with
  | Some s -> Array.copy s.Status.row_activity
  | None -> Array.init t.m (fun i -> value t (t.n + i))

let objective t =
  match t.fallback with
  | Some s -> s.Status.objective
  | None ->
    let acc = ref 0.0 in
    for j = 0 to t.n - 1 do
      if t.obj.(j) <> 0.0 then acc := !acc +. (t.obj.(j) *. value t j)
    done;
    !acc

let dual t =
  match t.fallback with
  | Some s -> Array.copy s.Status.dual
  | None ->
    fill_cb_phase2 t;
    compute_y t t.cb;
    Array.sub t.y 0 t.m

let reduced_cost t j =
  assert (j >= 0 && j < t.n);
  fill_cb_phase2 t;
  compute_y t t.cb;
  t.obj.(j) -. col_dot t j t.y

let solution t =
  match t.fallback with
  | Some s -> { s with Status.status = t.last_status; iterations = t.iters }
  | None ->
    {
      Status.status = t.last_status;
      objective = objective t;
      primal = primal t;
      row_activity = row_activity t;
      dual = dual t;
      iterations = t.iters;
    }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let stats t =
  {
    iterations = t.iters;
    phase1_iterations = t.st.s_phase1_iters;
    phase2_iterations = t.st.s_phase2_iters;
    dual_iterations = t.st.s_dual_iters;
    bound_flips = t.st.s_flips;
    full_pricing_scans = t.st.s_full_scans;
    partial_pricing_scans = t.st.s_partial_scans;
    ftran_count = t.ops.Basis.ftrans;
    btran_count = t.ops.Basis.btrans;
    hyper_sparse_ftrans = t.ops.Basis.hyper_ftrans;
    hyper_sparse_btrans = t.ops.Basis.hyper_btrans;
    basis_updates = t.ops.Basis.updates;
    basis_extensions = t.ops.Basis.extensions;
    refactorisations = t.ops.Basis.factorisations;
    degenerate_pivots = t.st.s_degen;
    bland_activations = t.st.s_bland;
    phase1_seconds = t.st.s_phase1_secs;
    phase2_seconds = t.st.s_phase2_secs;
    dual_seconds = t.st.s_dual_secs;
    recoveries =
      {
        refactor_retries = t.st.s_rec_refactor;
        backend_switches = t.st.s_rec_switch;
        tolerance_escalations = t.st.s_rec_tol;
        perturbed_resolves = t.st.s_rec_perturb;
        tableau_fallbacks = t.st.s_rec_tableau;
        faults_injected = t.st.s_injected;
        validations_rejected = t.st.s_rejected;
      };
  }

let zero_stats =
  {
    iterations = 0;
    phase1_iterations = 0;
    phase2_iterations = 0;
    dual_iterations = 0;
    bound_flips = 0;
    full_pricing_scans = 0;
    partial_pricing_scans = 0;
    ftran_count = 0;
    btran_count = 0;
    hyper_sparse_ftrans = 0;
    hyper_sparse_btrans = 0;
    basis_updates = 0;
    basis_extensions = 0;
    refactorisations = 0;
    degenerate_pivots = 0;
    bland_activations = 0;
    phase1_seconds = 0.0;
    phase2_seconds = 0.0;
    dual_seconds = 0.0;
    recoveries = no_recoveries;
  }

let merge_recoveries a b =
  {
    refactor_retries = a.refactor_retries + b.refactor_retries;
    backend_switches = a.backend_switches + b.backend_switches;
    tolerance_escalations = a.tolerance_escalations + b.tolerance_escalations;
    perturbed_resolves = a.perturbed_resolves + b.perturbed_resolves;
    tableau_fallbacks = a.tableau_fallbacks + b.tableau_fallbacks;
    faults_injected = a.faults_injected + b.faults_injected;
    validations_rejected = a.validations_rejected + b.validations_rejected;
  }

let merge_stats a b =
  {
    iterations = a.iterations + b.iterations;
    phase1_iterations = a.phase1_iterations + b.phase1_iterations;
    phase2_iterations = a.phase2_iterations + b.phase2_iterations;
    dual_iterations = a.dual_iterations + b.dual_iterations;
    bound_flips = a.bound_flips + b.bound_flips;
    full_pricing_scans = a.full_pricing_scans + b.full_pricing_scans;
    partial_pricing_scans = a.partial_pricing_scans + b.partial_pricing_scans;
    ftran_count = a.ftran_count + b.ftran_count;
    btran_count = a.btran_count + b.btran_count;
    hyper_sparse_ftrans = a.hyper_sparse_ftrans + b.hyper_sparse_ftrans;
    hyper_sparse_btrans = a.hyper_sparse_btrans + b.hyper_sparse_btrans;
    basis_updates = a.basis_updates + b.basis_updates;
    basis_extensions = a.basis_extensions + b.basis_extensions;
    refactorisations = a.refactorisations + b.refactorisations;
    degenerate_pivots = a.degenerate_pivots + b.degenerate_pivots;
    bland_activations = a.bland_activations + b.bland_activations;
    phase1_seconds = a.phase1_seconds +. b.phase1_seconds;
    phase2_seconds = a.phase2_seconds +. b.phase2_seconds;
    dual_seconds = a.dual_seconds +. b.dual_seconds;
    recoveries = merge_recoveries a.recoveries b.recoveries;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>iterations: %d (phase1 %d, phase2 %d, dual %d), bound flips: %d@,\
     pricing scans: %d full, %d partial@,\
     ftran/btran: %d/%d (hyper-sparse %d/%d), basis updates: %d, \
     extensions: %d, refactorisations: %d@,\
     degenerate pivots: %d, Bland activations: %d@,\
     time: phase1 %.3fms, phase2 %.3fms, dual %.3fms"
    s.iterations s.phase1_iterations s.phase2_iterations s.dual_iterations
    s.bound_flips s.full_pricing_scans s.partial_pricing_scans s.ftran_count
    s.btran_count s.hyper_sparse_ftrans s.hyper_sparse_btrans s.basis_updates
    s.basis_extensions s.refactorisations s.degenerate_pivots
    s.bland_activations (s.phase1_seconds *. 1e3) (s.phase2_seconds *. 1e3)
    (s.dual_seconds *. 1e3);
  let r = s.recoveries in
  Format.fprintf fmt
    "@,recoveries: %d refactor, %d backend switch, %d tolerance, %d perturb, \
     %d tableau; faults injected: %d, validations rejected: %d"
    r.refactor_retries r.backend_switches r.tolerance_escalations
    r.perturbed_resolves r.tableau_fallbacks r.faults_injected
    r.validations_rejected;
  Format.fprintf fmt "@]"
