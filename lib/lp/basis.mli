(** Product-form-update basis representation for the revised simplex:
    a sparse LU factorisation of the basis matrix plus a trail of update
    operators — one sparse eta per pivot since the last refactorisation,
    and one border extension per row appended without refactorising.

    Replaces the explicit dense inverse: ftran/btran cost O(nnz + trail)
    instead of O(m^2), and refactorisation costs a sparse LU instead of
    O(m^3). Right-hand sides whose density (over the LU prefix) falls
    below a cutover take the hyper-sparse Gilbert-Peierls kernels in
    {!Lu} instead of the dense triangular solves; the counters record how
    often that happens. The simplex engine can run on either backend
    ({!Simplex.params}[.sparse_basis]); results agree to numerical
    tolerance. *)

type counters = {
  mutable ftrans : int;
  mutable btrans : int;
  mutable updates : int;
  mutable factorisations : int;
  mutable hyper_ftrans : int;
      (** ftrans whose LU-prefix right-hand side was sparse enough for
          {!Lu.solve_sparse}. *)
  mutable hyper_btrans : int;
      (** btrans that took {!Lu.solve_transpose_sparse}. *)
  mutable extensions : int;
      (** rows appended via {!append_row} (warm-started basis growth). *)
}
(** Cumulative operation counters. A counters record outlives individual
    basis factorisations: pass the same record to successive {!create}
    calls (as the simplex engine does across refactorisations) to
    accumulate a whole solve's linear-algebra traffic. The engine's dense
    explicit-inverse backend increments the same record at its own
    call sites, so {!Simplex.stats} reads one source of truth. *)

val fresh_counters : unit -> counters
(** A zeroed counters record. *)

exception Zero_pivot of { row : int; magnitude : float }
(** Raised by {!update} when the pivot entry is numerically zero. Typed
    (rather than a bare [Failure]) so the simplex recovery ladder can
    catch it and escalate instead of killing the solve. *)

type t

val create : ?counters:counters -> ?pivot_tol:float -> Sparse.t array -> t
(** Factorises the basis given by its columns, counting the factorisation
    (and all later ftran/btran/update traffic) in [counters] when given.
    [pivot_tol] is forwarded to {!Lu.factor}.
    @raise Lu.Singular when the basis is singular. *)

val dim : t -> int
(** Current dimension: LU dimension plus appended rows. *)

val eta_count : t -> int
(** Pivots recorded since the last factorisation (length of the eta
    trail, border extensions not included). *)

val trail_nnz : t -> int
(** Nonzeros stored across the eta/border trail. Applying the trail to a
    vector costs O([trail_nnz]); once it rivals {!lu_nnz} a fresh
    factorisation is cheaper than dragging the trail along, which is the
    classic product-form-inverse refactorisation criterion. *)

val lu_nnz : t -> int
(** Nonzeros of the underlying LU factors. *)

val ftran : t -> float array -> float array
(** [ftran t b] is [B^-1 b]; [b] is unchanged. Dispatches to the
    hyper-sparse kernel when [b]'s LU prefix is sparse enough. *)

val ftran_sparse : t -> Sparse.t -> float array
(** [ftran_sparse t b] is [B^-1 b] for a right-hand side given by its
    nonzeros; the result is dense. Same dispatch rule as {!ftran}, but
    avoids densifying the input first. *)

val btran : t -> float array -> float array
(** [btran t c] is [B^-T c]. The sparsity decision happens after the
    adjoint trail has been applied (the trail can fill in or cancel
    entries). *)

val btran_unit : t -> int -> float array
(** [btran_unit t r] is row [r] of [B^-1]. *)

val update : ?tol:float -> t -> int -> float array -> unit
(** [update t r w] records a pivot: the basic variable at position [r] is
    replaced; [w] must be the ftran of the entering column (its nonzeros
    are copied into a sparse eta). [tol] is the smallest acceptable pivot
    magnitude (default [1e-12]; the simplex engine passes its current —
    possibly escalated — pivot tolerance).
    @raise Zero_pivot if [w.(r)] is (numerically) zero. *)

val append_row : t -> Sparse.t -> unit
(** [append_row t bc] grows the represented basis by one row and one
    column without refactorising: the new basis is
    [[B, 0]; [bc^T, -1]], i.e. the appended row has entries [bc] over the
    existing basis positions and the new diagonal belongs to an auxiliary
    variable with coefficient [-1] (the [A | -I] computational form).
    This is exactly the shape {!Simplex.add_row} produces, so EBF lazy
    row generation can keep a factorised basis alive across rounds.
    @raise Invalid_argument if [bc] has entries at or beyond {!dim}. *)
