(** Product-form-update basis representation for the revised simplex:
    a sparse LU factorisation of the basis matrix plus a file of eta
    transformations, one per pivot since the last refactorisation.

    Replaces the explicit dense inverse: ftran/btran cost O(nnz + m x
    etas) instead of O(m^2), and refactorisation costs a sparse LU
    instead of O(m^3). The simplex engine can run on either backend
    ({!Simplex.params}[.sparse_basis]); results agree to numerical
    tolerance. *)

type counters = {
  mutable ftrans : int;
  mutable btrans : int;
  mutable updates : int;
  mutable factorisations : int;
}
(** Cumulative operation counters. A counters record outlives individual
    basis factorisations: pass the same record to successive {!create}
    calls (as the simplex engine does across refactorisations) to
    accumulate a whole solve's linear-algebra traffic. The engine's dense
    explicit-inverse backend increments the same record at its own
    call sites, so {!Simplex.stats} reads one source of truth. *)

val fresh_counters : unit -> counters
(** A zeroed counters record. *)

exception Zero_pivot of { row : int; magnitude : float }
(** Raised by {!update} when the pivot entry is numerically zero. Typed
    (rather than a bare [Failure]) so the simplex recovery ladder can
    catch it and escalate instead of killing the solve. *)

type t

val create : ?counters:counters -> ?pivot_tol:float -> Sparse.t array -> t
(** Factorises the basis given by its columns, counting the factorisation
    (and all later ftran/btran/update traffic) in [counters] when given.
    [pivot_tol] is forwarded to {!Lu.factor}.
    @raise Lu.Singular when the basis is singular. *)

val dim : t -> int

val eta_count : t -> int

val ftran : t -> float array -> float array
(** [ftran t b] is [B^-1 b]; [b] is unchanged. *)

val btran : t -> float array -> float array
(** [btran t c] is [B^-T c]. *)

val btran_unit : t -> int -> float array
(** [btran_unit t r] is row [r] of [B^-1]. *)

val update : ?tol:float -> t -> int -> float array -> unit
(** [update t r w] records a pivot: the basic variable at position [r] is
    replaced; [w] must be the ftran of the entering column (it is copied).
    [tol] is the smallest acceptable pivot magnitude (default [1e-12];
    the simplex engine passes its current — possibly escalated — pivot
    tolerance).
    @raise Zero_pivot if [w.(r)] is (numerically) zero. *)
