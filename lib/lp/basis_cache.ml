(* Content-addressed warm-basis store: an in-memory LRU tier with an
   optional on-disk tier, keyed by caller-computed fingerprints. The store
   is deliberately dumb about what the fingerprints mean — callers (the
   EBF layer) hash their own canonical encodings — so the LP library does
   not depend on instance or topology types. *)

(* ------------------------------------------------------------------ *)
(* Fingerprinting                                                      *)
(* ------------------------------------------------------------------ *)

module Fingerprint = struct
  type h = { mutable acc : int64 }

  let offset = 0xcbf29ce484222325L

  let prime = 0x100000001b3L

  let create () = { acc = offset }

  let add_byte h b =
    h.acc <- Int64.mul (Int64.logxor h.acc (Int64.of_int (b land 0xff))) prime

  let add_int64 h v =
    for shift = 0 to 7 do
      add_byte h (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
    done

  let add_int h v = add_int64 h (Int64.of_int v)

  let add_float h v = add_int64 h (Int64.bits_of_float v)

  let add_string h s =
    add_int h (String.length s);
    String.iter (fun c -> add_byte h (Char.code c)) s

  let digest h = Printf.sprintf "%016Lx" h.acc
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = Lubt_obs.Metrics

(* lookup outcomes as one labelled counter family, mirroring
   [Ebf.cache_outcome]; rejects get their own total because they can
   also come from the caller ([reject]) after a lookup already counted *)
let m_lookup outcome =
  Metrics.counter ~help:"Warm-basis cache lookups by outcome"
    ~labels:[ ("outcome", outcome) ]
    "lubt_basis_cache_lookups_total"

let m_hit_exact = m_lookup "hit_exact"
let m_hit_parent = m_lookup "hit_parent"
let m_miss = m_lookup "miss"

let m_rejects =
  Metrics.counter ~help:"Warm-basis snapshots rejected as unusable"
    "lubt_basis_cache_rejects_total"

let m_stores =
  Metrics.counter ~help:"Warm-basis snapshots stored"
    "lubt_basis_cache_stores_total"

let m_evictions =
  Metrics.counter ~help:"Warm-basis LRU evictions"
    "lubt_basis_cache_evictions_total"

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_structure : string;
  e_key : string;
  e_basis : Simplex.warm_basis;
  e_delay : int array;
  e_pairs : (int * int) array;
  e_objective : float;
}

type lookup = Exact of entry | Parent of entry | Miss

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  rejects : int;
}

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* LRU slot: the recency tick is bumped on every touch; eviction removes
   the minimum tick (O(capacity) scan — capacities are small). *)
type slot = { entry : entry; mutable tick : int }

type t = {
  lock : Mutex.t;
  capacity : int;
  dir : string option;
  table : (string, slot) Hashtbl.t;  (* full key -> slot *)
  latest : (string, string) Hashtbl.t;  (* structure -> latest full key *)
  mutable clock : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_stores : int;
  mutable s_evictions : int;
  mutable s_rejects : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let default_capacity = 128

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(capacity = default_capacity) ?dir () =
  let capacity = max 1 capacity in
  (match dir with Some d -> mkdir_p d | None -> ());
  {
    lock = Mutex.create ();
    capacity;
    dir;
    table = Hashtbl.create (2 * capacity);
    latest = Hashtbl.create (2 * capacity);
    clock = 0;
    s_hits = 0;
    s_misses = 0;
    s_stores = 0;
    s_evictions = 0;
    s_rejects = 0;
  }

let capacity t = t.capacity

let dir t = t.dir

let stats t =
  locked t (fun () ->
      {
        hits = t.s_hits;
        misses = t.s_misses;
        stores = t.s_stores;
        evictions = t.s_evictions;
        rejects = t.s_rejects;
      })

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

(* One snapshot per file, versioned text with a trailing FNV checksum.
   Writes are temp-file + rename, so readers never observe a torn file;
   any parse, dimension or checksum anomaly rejects the file as corrupt
   (counted in [rejects]) instead of serving a wrong basis. *)

let format_tag = "lubt-basis/1"

let basis_file dir key = Filename.concat dir (Printf.sprintf "b%s.dat" key)

let index_file dir structure =
  Filename.concat dir (Printf.sprintf "i%s.latest" structure)

let ints_line arr = String.concat " " (List.map string_of_int (Array.to_list arr))

let encode_entry e =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" format_tag;
  line "structure %s" e.e_structure;
  line "key %s" e.e_key;
  line "vars %d" e.e_basis.Simplex.wb_nvars;
  line "rows %d" e.e_basis.Simplex.wb_nrows;
  line "objective %016Lx" (Int64.bits_of_float e.e_objective);
  line "basic %s" (ints_line e.e_basis.Simplex.wb_basic);
  line "nonbasic %s" e.e_basis.Simplex.wb_nonbasic;
  line "delay %s" (ints_line e.e_delay);
  line "pairs %s"
    (String.concat " "
       (List.concat_map
          (fun (i, j) -> [ string_of_int i; string_of_int j ])
          (Array.to_list e.e_pairs)));
  let h = Fingerprint.create () in
  Fingerprint.add_string h (Buffer.contents b);
  line "checksum %s" (Fingerprint.digest h);
  Buffer.contents b

exception Corrupt

let parse_entry text =
  let lines = String.split_on_char '\n' text in
  (* the encoder terminates every line, so a well-formed file splits into
     the 11 payload/checksum lines plus one trailing empty string *)
  match lines with
  | [ tag; structure; key; vars; rows; objective; basic; nonbasic; delay;
      pairs; checksum; "" ] -> (
    try
      let field name line =
        let prefix = name ^ " " in
        let pl = String.length prefix in
        if String.length line >= pl && String.sub line 0 pl = prefix then
          String.sub line pl (String.length line - pl)
        else raise Corrupt
      in
      if tag <> format_tag then raise Corrupt;
      (* checksum covers everything up to (and including) the newline that
         precedes the checksum line *)
      let payload_len = String.length text - String.length checksum - 1 in
      if payload_len <= 0 then raise Corrupt;
      let h = Fingerprint.create () in
      Fingerprint.add_string h (String.sub text 0 payload_len);
      if field "checksum" checksum <> Fingerprint.digest h then raise Corrupt;
      let ints s =
        let s = String.trim s in
        if s = "" then [||]
        else
          Array.of_list (List.map int_of_string (String.split_on_char ' ' s))
      in
      let structure = field "structure" structure in
      let key = field "key" key in
      let nvars = int_of_string (field "vars" vars) in
      let nrows = int_of_string (field "rows" rows) in
      let objective =
        Int64.float_of_bits (Int64.of_string ("0x" ^ field "objective" objective))
      in
      let basic = ints (field "basic" basic) in
      let nonbasic = field "nonbasic" nonbasic in
      let delay = ints (field "delay" delay) in
      let flat = ints (field "pairs" pairs) in
      if Array.length flat mod 2 <> 0 then raise Corrupt;
      let pairs =
        Array.init (Array.length flat / 2) (fun k -> (flat.(2 * k), flat.((2 * k) + 1)))
      in
      if Array.length basic <> nrows then raise Corrupt;
      if String.length nonbasic <> nvars + nrows then raise Corrupt;
      Some
        {
          e_structure = structure;
          e_key = key;
          e_basis =
            {
              Simplex.wb_nvars = nvars;
              wb_nrows = nrows;
              wb_basic = basic;
              wb_nonbasic = nonbasic;
            };
          e_delay = delay;
          e_pairs = pairs;
          e_objective = objective;
        }
    with Corrupt | Failure _ -> None)
  | _ -> None

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > 16 * 1024 * 1024 then None
        else Some (really_input_string ic len))

(* Atomic publish: the content lands under a temp name in the same
   directory, then renames over the target. Failures are swallowed — the
   disk tier is an accelerator, never a correctness dependency. *)
let write_file path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path
  with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Lubt_obs.Log.warn
      ~fields:[ ("path", Lubt_obs.Trace.Str path) ]
      "basis cache: disk write failed"

(* read + parse with corruption accounting; caller holds the lock *)
let disk_entry_locked t path =
  match read_file path with
  | None -> None
  | Some text -> (
    match parse_entry text with
    | Some e -> Some e
    | None ->
      (t.s_rejects <- t.s_rejects + 1;
       Metrics.incr m_rejects);
      Lubt_obs.Log.warn
        ~fields:[ ("path", Lubt_obs.Trace.Str path) ]
        "basis cache: rejected corrupt snapshot";
      None)

let disk_latest_key dir structure =
  match read_file (index_file dir structure) with
  | Some s ->
    let s = String.trim s in
    if s = "" then None else Some s
  | None -> None

(* ------------------------------------------------------------------ *)
(* In-memory LRU                                                       *)
(* ------------------------------------------------------------------ *)

let touch_locked t slot =
  t.clock <- t.clock + 1;
  slot.tick <- t.clock

let evict_locked t =
  if Hashtbl.length t.table > t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, best) when best <= slot.tick -> ()
        | _ -> victim := Some (key, slot.tick))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.s_evictions <- t.s_evictions + 1;
      Metrics.incr m_evictions
    | None -> ()
  end

let insert_locked t e =
  (match Hashtbl.find_opt t.table e.e_key with
  | Some slot when slot.entry == e -> touch_locked t slot
  | _ ->
    Hashtbl.replace t.table e.e_key { entry = e; tick = 0 };
    touch_locked t (Hashtbl.find t.table e.e_key);
    evict_locked t);
  Hashtbl.replace t.latest e.e_structure e.e_key

let store t e =
  locked t (fun () ->
      t.s_stores <- t.s_stores + 1;
      Metrics.incr m_stores;
      insert_locked t e);
  (* disk writes happen outside the lock: the content is immutable and a
     torn race between two writers of the same key is resolved by the
     atomic rename (last writer wins with a complete file) *)
  match t.dir with
  | None -> ()
  | Some d ->
    write_file (basis_file d e.e_key) (encode_entry e);
    write_file (index_file d e.e_structure) (e.e_key ^ "\n")

let find t ~structure ~key =
  locked t (fun () ->
      let promote e = insert_locked t e in
      let exact =
        match Hashtbl.find_opt t.table key with
        | Some slot ->
          touch_locked t slot;
          Some slot.entry
        | None -> (
          match t.dir with
          | None -> None
          | Some d -> (
            match disk_entry_locked t (basis_file d key) with
            | Some e when e.e_key = key && e.e_structure = structure ->
              promote e;
              Some e
            | Some _ ->
              (* a snapshot stored under the wrong name: fingerprint and
                 content disagree, never serve it *)
              (t.s_rejects <- t.s_rejects + 1;
       Metrics.incr m_rejects);
              None
            | None -> None))
      in
      match exact with
      | Some e ->
        t.s_hits <- t.s_hits + 1;
        Metrics.incr m_hit_exact;
        Exact e
      | None -> (
        let parent_key =
          match Hashtbl.find_opt t.latest structure with
          | Some k when k <> key -> Some k
          | Some _ -> None
          | None -> (
            match t.dir with
            | None -> None
            | Some d -> (
              match disk_latest_key d structure with
              | Some k when k <> key -> Some k
              | _ -> None))
        in
        let parent =
          match parent_key with
          | None -> None
          | Some k -> (
            match Hashtbl.find_opt t.table k with
            | Some slot when slot.entry.e_structure = structure ->
              touch_locked t slot;
              Some slot.entry
            | Some _ -> None
            | None -> (
              match t.dir with
              | None -> None
              | Some d -> (
                match disk_entry_locked t (basis_file d k) with
                | Some e when e.e_key = k && e.e_structure = structure ->
                  insert_locked t e;
                  Some e
                | Some _ ->
                  (t.s_rejects <- t.s_rejects + 1;
       Metrics.incr m_rejects);
                  None
                | None -> None)))
        in
        match parent with
        | Some e ->
          t.s_hits <- t.s_hits + 1;
          Metrics.incr m_hit_parent;
          Parent e
        | None ->
          t.s_misses <- t.s_misses + 1;
          Metrics.incr m_miss;
          Miss))

let reject t ~reason =
  locked t (fun () -> (t.s_rejects <- t.s_rejects + 1;
       Metrics.incr m_rejects));
  Lubt_obs.Log.warn
    ~fields:[ ("reason", Lubt_obs.Trace.Str reason) ]
    "basis cache: snapshot rejected by caller"
