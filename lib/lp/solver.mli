(** Convenience front end: load a model into the revised simplex engine,
    solve it, and package the solution. *)

val solve :
  ?params:Simplex.params ->
  ?check:Certify.level ->
  ?cache:Basis_cache.t ->
  Problem.t ->
  Status.solution
(** [solve prob] solves and packages the model. With [check] (default
    {!Certify.Off}) an [Optimal] claim is certified a posteriori by
    {!Certify.check}; if certification rejects it, the independent
    {!Tableau} oracle is consulted, and only when the oracle's answer also
    fails does the status degrade to [Numerical_failure]. A solution served
    by the engine's own tableau fallback is certified at [Primal] level
    (it carries no duals).

    With [cache], the model is content-addressed (coefficients fix the
    structure fingerprint, bounds complete the key — see {!Basis_cache})
    and a cached basis of the identical or bounds-edited model
    warm-restarts the solve; snapshots failing validation are rejected
    with a typed {!Simplex.basis_mismatch} and the solve runs cold. The
    final basis is stored back only when the solve ended [Optimal] without
    the tableau fallback and (when [check] is on) certified clean. *)

val solve_exn :
  ?params:Simplex.params ->
  ?check:Certify.level ->
  ?cache:Basis_cache.t ->
  Problem.t ->
  Status.solution
(** Like {!solve}, but raises [Failure] unless the status is [Optimal].
    The message carries the status, the objective reached and the
    iteration count, so callers logging the failure see where the solve
    stopped. *)
