(** Convenience front end: load a model into the revised simplex engine,
    solve it, and package the solution. *)

val solve :
  ?params:Simplex.params -> ?check:Certify.level -> Problem.t -> Status.solution
(** [solve prob] solves and packages the model. With [check] (default
    {!Certify.Off}) an [Optimal] claim is certified a posteriori by
    {!Certify.check}; if certification rejects it, the independent
    {!Tableau} oracle is consulted, and only when the oracle's answer also
    fails does the status degrade to [Numerical_failure]. A solution served
    by the engine's own tableau fallback is certified at [Primal] level
    (it carries no duals). *)

val solve_exn :
  ?params:Simplex.params -> ?check:Certify.level -> Problem.t -> Status.solution
(** Like {!solve}, but raises [Failure] unless the status is [Optimal].
    The message carries the status, the objective reached and the
    iteration count, so callers logging the failure see where the solve
    stopped. *)
