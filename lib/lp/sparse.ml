type t = { idx : int array; value : float array }

let empty = { idx = [||]; value = [||] }

let check t =
  let k = Array.length t.idx in
  assert (Array.length t.value = k);
  for i = 0 to k - 1 do
    assert (t.value.(i) <> 0.0);
    assert (t.idx.(i) >= 0);
    if i > 0 then assert (t.idx.(i) > t.idx.(i - 1))
  done

let of_assoc pairs =
  let sorted = List.sort (fun (i, _) (j, _) -> compare i j) pairs in
  let merged =
    List.fold_left
      (fun acc (i, v) ->
        assert (i >= 0);
        match acc with
        | (j, w) :: rest when j = i -> (j, w +. v) :: rest
        | _ -> (i, v) :: acc)
      [] sorted
  in
  let nonzero = List.filter (fun (_, v) -> v <> 0.0) (List.rev merged) in
  let k = List.length nonzero in
  let idx = Array.make k 0 and value = Array.make k 0.0 in
  List.iteri
    (fun pos (i, v) ->
      idx.(pos) <- i;
      value.(pos) <- v)
    nonzero;
  { idx; value }

let of_arrays idx value =
  let t = { idx; value } in
  check t;
  t

let singleton i v =
  assert (i >= 0);
  if v = 0.0 then empty else { idx = [| i |]; value = [| v |] }

let of_dense dense =
  let k = ref 0 in
  Array.iter (fun v -> if v <> 0.0 then incr k) dense;
  let idx = Array.make !k 0 and value = Array.make !k 0.0 in
  let pos = ref 0 in
  Array.iteri
    (fun i v ->
      if v <> 0.0 then begin
        idx.(!pos) <- i;
        value.(!pos) <- v;
        incr pos
      end)
    dense;
  { idx; value }

let nnz t = Array.length t.idx

let iter f t =
  for i = 0 to Array.length t.idx - 1 do
    f t.idx.(i) t.value.(i)
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to Array.length t.idx - 1 do
    acc := f t.idx.(i) t.value.(i) !acc
  done;
  !acc

let get t i =
  let rec search lo hi =
    if lo > hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      if t.idx.(mid) = i then t.value.(mid)
      else if t.idx.(mid) < i then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length t.idx - 1)

let dot_dense t dense =
  let acc = ref 0.0 in
  for i = 0 to Array.length t.idx - 1 do
    acc := !acc +. (t.value.(i) *. dense.(t.idx.(i)))
  done;
  !acc

let add_scaled_into dst k t =
  for i = 0 to Array.length t.idx - 1 do
    let j = t.idx.(i) in
    dst.(j) <- dst.(j) +. (k *. t.value.(i))
  done

let to_assoc t = fold (fun i v acc -> (i, v) :: acc) t [] |> List.rev

let max_index t =
  let k = Array.length t.idx in
  if k = 0 then -1 else t.idx.(k - 1)

let scale k t =
  if k = 0.0 then empty
  else { idx = Array.copy t.idx; value = Array.map (fun v -> k *. v) t.value }

let map_values f t =
  of_assoc (to_assoc t |> List.map (fun (i, v) -> (i, f v)))

let pp fmt t =
  Format.fprintf fmt "[";
  iter (fun i v -> Format.fprintf fmt " %d:%g" i v) t;
  Format.fprintf fmt " ]"
