(** Solver result types shared by the simplex engines. *)

type t =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Time_limit
      (** the wall-clock budget expired; the packaged solution is the best
          basis reached so far, not a proven optimum *)
  | Numerical_failure

type solution = {
  status : t;
  objective : float;
  primal : float array;  (** structural variable values *)
  row_activity : float array;  (** [a_i^T x] per row *)
  dual : float array;  (** simplex multipliers (one per row) *)
  iterations : int;
}

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val is_optimal : solution -> bool
