(** Solver result types shared by the simplex engines. *)

type t =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Time_limit
      (** the wall-clock budget expired; the packaged solution is the best
          basis reached so far, not a proven optimum *)
  | Numerical_failure

type solution = {
  status : t;
  objective : float;
  primal : float array;  (** structural variable values *)
  row_activity : float array;  (** [a_i^T x] per row *)
  dual : float array;  (** simplex multipliers (one per row) *)
  iterations : int;
}

val pp : Format.formatter -> t -> unit
(** Prints the status as its lowercase name ([optimal], [infeasible],
    ...). *)

val to_string : t -> string
(** Same rendering as {!pp}, as a string; stable across versions, so it
    is safe to key machine-readable output on it. *)

val is_optimal : solution -> bool
(** [is_optimal s] is [s.status = Optimal]. Callers should gate on this
    before trusting [objective]/[primal]: for every other status those
    fields describe the last basis visited, not a proven optimum. *)
