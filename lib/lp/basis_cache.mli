(** Content-addressed cross-request warm-basis cache.

    Persists {!Simplex.warm_basis} snapshots of solved LPs so a repeated or
    slightly-edited instance — the classic engineering change order: a
    bound tightened, a sink moved — re-enters the dual simplex from the
    parent optimum instead of from scratch. Two tiers: an in-memory LRU
    (always on) and an optional on-disk store of versioned, checksummed
    snapshot files (survives daemon restarts).

    {b Keying.} The store is content-addressed by two caller-computed
    fingerprints (see {!Fingerprint}):

    - the {e structure} fingerprint covers everything that fixes the LP's
      column space and row semantics — delay model, topology, objective
      weights — but {e not} geometry or bounds (EBF constraint
      coefficients are geometry-independent; geometry only moves row
      bounds);
    - the {e full key} additionally covers geometry and the bounds
      signature, so equal keys mean the identical LP.

    A {!find} therefore distinguishes an {!Exact} hit (same LP solved
    before) from a {!Parent} hit (same structure, edited bounds or
    geometry — the basis stays dual feasible and warm-starts the edited
    LP) and a {!Miss}.

    {b Safety.} The cache is an accelerator, never an oracle: callers must
    validate a served snapshot against the rebuilt LP
    ({!Simplex.install_warm_basis} rejects dimension disagreements with a
    typed {!Simplex.basis_mismatch}) and re-certify the re-solved answer.
    Disk snapshots carry a trailing FNV-1a checksum; torn, truncated or
    bit-flipped files are rejected (counted in {!stats}[.rejects]) and
    treated as misses.

    {b Domain safety.} All operations are serialised by an internal mutex,
    so one cache value may be shared freely across the executor and pool
    worker domains. *)

(** Incremental FNV-1a (64-bit) fingerprinting over a canonical byte
    encoding. Integers hash as 8 little-endian bytes, floats through
    {!Int64.bits_of_float} (so [-0.0] and [0.0] differ, as do NaN
    payloads), strings with a length prefix. *)
module Fingerprint : sig
  type h
  (** Mutable hash accumulator. *)

  val create : unit -> h
  (** Fresh accumulator at the FNV offset basis. *)

  val add_int : h -> int -> unit
  (** Absorbs an integer (8 bytes). *)

  val add_float : h -> float -> unit
  (** Absorbs a float by its IEEE-754 bit pattern (8 bytes). *)

  val add_string : h -> string -> unit
  (** Absorbs a string, length-prefixed (no concatenation ambiguity). *)

  val digest : h -> string
  (** Current digest as 16 lowercase hex characters. The accumulator
      remains usable (the digest is a read). *)
end

type entry = {
  e_structure : string;  (** structure fingerprint (see module docs) *)
  e_key : string;  (** full fingerprint: structure + geometry + bounds *)
  e_basis : Simplex.warm_basis;  (** the optimal basis snapshot *)
  e_delay : int array;
      (** sink indices that contributed delay rows, in row order — the
          warm path must reproduce this exact row layout *)
  e_pairs : (int * int) array;
      (** Steiner rows as terminal-index pairs, in append order (seed rows
          first, then lazily generated rows round by round) *)
  e_objective : float;  (** certified objective of the parent solve *)
}
(** One cached solve: the basis plus the row layout needed to rebuild an
    LP of the identical shape, and the parent objective for diagnostics. *)

type lookup =
  | Exact of entry  (** same full key: the identical LP was solved before *)
  | Parent of entry
      (** same structure, different key: an edited sibling whose basis
          warm-starts the edited LP *)
  | Miss  (** nothing usable cached *)

type stats = {
  hits : int;  (** exact + parent lookups served *)
  misses : int;  (** lookups that found nothing *)
  stores : int;  (** snapshots stored *)
  evictions : int;  (** in-memory LRU evictions *)
  rejects : int;
      (** corrupt disk snapshots, mis-keyed files, and caller-reported
          rejections ({!reject}) — e.g. dimension mismatches *)
}
(** Monotonic counters since {!create}. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)

type t
(** A cache handle. *)

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [create ()] builds an in-memory cache of [capacity] snapshots
    (default 128, minimum 1, LRU eviction). With [~dir] every store is
    also published to [dir] (created if missing) as an atomic
    temp-file-plus-rename write, and lookups fall through to disk on a
    memory miss — this is the tier that makes warm starts survive a
    daemon restart. *)

val find : t -> structure:string -> key:string -> lookup
(** Looks up [key], falling back to the latest entry stored under
    [structure] (the ECO-parent path), memory first then disk. Disk hits
    are promoted into the memory tier. Counts one hit or one miss per
    call. *)

val store : t -> entry -> unit
(** Publishes a snapshot under [entry.e_key] and marks it the latest for
    [entry.e_structure]. Only store certified-optimal bases whose engine
    did not fall back to the tableau oracle — the cache trusts its
    callers on this. Disk write failures are logged and swallowed. *)

val reject : t -> reason:string -> unit
(** Records that a served snapshot was rejected by the caller after
    validation (typed dimension mismatch, unfactorisable basis). Feeds
    {!stats}[.rejects]. *)

val stats : t -> stats
(** Counter snapshot. *)

val capacity : t -> int
(** Configured in-memory capacity. *)

val dir : t -> string option
(** Configured disk tier, if any. *)
