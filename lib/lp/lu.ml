(* Left-looking sparse LU with partial pivoting.

   P A = L U with unit-diagonal L. Columns are processed left to right
   with a dense accumulator: column j of A is scattered into x, the
   updates of all previous columns are applied (only where x is nonzero at
   their pivot rows), then the largest remaining entry is chosen as the
   pivot. L entries keep ORIGINAL row indices; [prow] records which
   original row became the k-th pivot. *)

type t = {
  n : int;
  (* L: strictly-below-pivot entries per column, original row indices *)
  l_rows : int array array;
  l_vals : float array array;
  (* U: entries above the diagonal per column (pivot-position indices),
     plus the diagonal *)
  u_rows : int array array;
  u_vals : float array array;
  u_diag : float array;
  prow : int array;  (* pivot position k -> original row *)
  pos : int array;  (* original row -> pivot position *)
  (* reverse adjacency, for the symbolic phase of the transpose solves:
     [u_radj.(k)] lists the columns j with U[k,j] <> 0, and [l_radj.(p)]
     lists the columns k whose L column touches pivot position p (i.e.
     [prow.(p)] appears in [l_rows.(k)]). Index-only: the numeric passes
     reuse the forward storage. *)
  u_radj : int array array;
  l_radj : int array array;
}

exception Singular of int

let factor ?(pivot_tol = 1e-11) cols =
  let n = Array.length cols in
  let l_rows = Array.make n [||] and l_vals = Array.make n [||] in
  let u_rows = Array.make n [||] and u_vals = Array.make n [||] in
  let u_diag = Array.make n 0.0 in
  let prow = Array.make n (-1) in
  let pos = Array.make n (-1) in
  let x = Array.make n 0.0 in
  let touched = Array.make n 0 in
  let marked = Array.make n false in
  for j = 0 to n - 1 do
    (* scatter column j *)
    let ntouch = ref 0 in
    Sparse.iter
      (fun i v ->
        if i >= n then invalid_arg "Lu.factor: row index out of range";
        x.(i) <- v;
        marked.(i) <- true;
        touched.(!ntouch) <- i;
        incr ntouch)
      cols.(j);
    (* eliminate with previous columns, in pivot order *)
    let u_r = ref [] and u_v = ref [] in
    for k = 0 to j - 1 do
      let xk = x.(prow.(k)) in
      if xk <> 0.0 then begin
        u_r := k :: !u_r;
        u_v := xk :: !u_v;
        let rows = l_rows.(k) and vals = l_vals.(k) in
        for t = 0 to Array.length rows - 1 do
          let i = rows.(t) in
          if not marked.(i) then begin
            marked.(i) <- true;
            touched.(!ntouch) <- i;
            incr ntouch
          end;
          x.(i) <- x.(i) -. (vals.(t) *. xk)
        done
      end
    done;
    (* partial pivot among rows without a position yet *)
    let piv = ref (-1) in
    let best = ref 0.0 in
    for t = 0 to !ntouch - 1 do
      let i = touched.(t) in
      if pos.(i) < 0 && abs_float x.(i) > !best then begin
        best := abs_float x.(i);
        piv := i
      end
    done;
    if !piv < 0 || !best < pivot_tol then raise (Singular j);
    let r = !piv in
    prow.(j) <- r;
    pos.(r) <- j;
    u_diag.(j) <- x.(r);
    (* L column: remaining un-pivoted nonzeros, scaled *)
    let l_r = ref [] and l_v = ref [] in
    let d = 1.0 /. x.(r) in
    for t = 0 to !ntouch - 1 do
      let i = touched.(t) in
      if pos.(i) < 0 && x.(i) <> 0.0 then begin
        l_r := i :: !l_r;
        l_v := (x.(i) *. d) :: !l_v
      end;
      x.(i) <- 0.0;
      marked.(i) <- false
    done;
    l_rows.(j) <- Array.of_list !l_r;
    l_vals.(j) <- Array.of_list !l_v;
    u_rows.(j) <- Array.of_list !u_r;
    u_vals.(j) <- Array.of_list !u_v
  done;
  (* reverse adjacency (two-pass counting); [pos] is complete here *)
  let cu = Array.make n 0 and cl = Array.make n 0 in
  for j = 0 to n - 1 do
    Array.iter (fun k -> cu.(k) <- cu.(k) + 1) u_rows.(j);
    Array.iter (fun i -> cl.(pos.(i)) <- cl.(pos.(i)) + 1) l_rows.(j)
  done;
  let u_radj = Array.init n (fun k -> Array.make cu.(k) 0) in
  let l_radj = Array.init n (fun k -> Array.make cl.(k) 0) in
  let fu = Array.make n 0 and fl = Array.make n 0 in
  for j = 0 to n - 1 do
    Array.iter
      (fun k ->
        u_radj.(k).(fu.(k)) <- j;
        fu.(k) <- fu.(k) + 1)
      u_rows.(j);
    Array.iter
      (fun i ->
        let p = pos.(i) in
        l_radj.(p).(fl.(p)) <- j;
        fl.(p) <- fl.(p) + 1)
      l_rows.(j)
  done;
  { n; l_rows; l_vals; u_rows; u_vals; u_diag; prow; pos; u_radj; l_radj }

let dim t = t.n

let nnz t =
  let acc = ref t.n in
  for j = 0 to t.n - 1 do
    acc := !acc + Array.length t.l_rows.(j) + Array.length t.u_rows.(j)
  done;
  !acc

(* A x = b:  L y = P b (forward, over original rows), then U x = y. *)
let solve t b =
  let n = t.n in
  let w = Array.copy b in
  (* forward: after step k, w.(prow k) holds y_k *)
  for k = 0 to n - 1 do
    let yk = w.(t.prow.(k)) in
    if yk <> 0.0 then begin
      let rows = t.l_rows.(k) and vals = t.l_vals.(k) in
      for i = 0 to Array.length rows - 1 do
        w.(rows.(i)) <- w.(rows.(i)) -. (vals.(i) *. yk)
      done
    end
  done;
  (* gather y by pivot position *)
  let x = Array.make n 0.0 in
  for k = 0 to n - 1 do
    x.(k) <- w.(t.prow.(k))
  done;
  (* backward: U x = y, U stored by column *)
  for j = n - 1 downto 0 do
    let xj = x.(j) /. t.u_diag.(j) in
    x.(j) <- xj;
    if xj <> 0.0 then begin
      let rows = t.u_rows.(j) and vals = t.u_vals.(j) in
      for i = 0 to Array.length rows - 1 do
        x.(rows.(i)) <- x.(rows.(i)) -. (vals.(i) *. xj)
      done
    end
  done;
  x

(* A^T x = c:  U^T w = c (forward over positions), then L^T v = w, then
   scatter x.(prow k) = v_k. *)
let solve_transpose t c =
  let n = t.n in
  let w = Array.copy c in
  (* U^T is lower triangular in position space: w_j = (c_j - sum_{k<j}
     U[k,j] w_k) / U[j,j]; iterate columns left to right *)
  for j = 0 to n - 1 do
    let rows = t.u_rows.(j) and vals = t.u_vals.(j) in
    let acc = ref w.(j) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (vals.(i) *. w.(rows.(i)))
    done;
    w.(j) <- !acc /. t.u_diag.(j)
  done;
  (* L^T v = w: v_k = w_k - sum over L column k entries (original row i):
     L[i,k] * v_(pos i); backward since pos i > k always *)
  let x = Array.make n 0.0 in
  for k = n - 1 downto 0 do
    let rows = t.l_rows.(k) and vals = t.l_vals.(k) in
    let acc = ref w.(k) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (vals.(i) *. x.(rows.(i)))
    done;
    (* scatter immediately into original-row indexing *)
    x.(t.prow.(k)) <- !acc
  done;
  x

let inverse_column t j =
  let b = Array.make t.n 0.0 in
  b.(j) <- 1.0;
  solve t b

(* ---- hyper-sparse solves (Gilbert-Peierls symbolic reach) ----

   All four triangular passes have dependency edges that are monotone in
   pivot position (L spreads forward, U spreads backward, and vice versa
   for the transposes), so the reach set sorted by position is already a
   topological order: no postorder bookkeeping is needed. Values outside
   the reach set are exact zeros, so the numeric passes only touch reach
   nodes. *)

(* Nodes reachable from [seeds] following [succ]; sorted ascending. *)
let reach succ seeds =
  let marked = Hashtbl.create 16 in
  let out = ref [] in
  let count = ref 0 in
  let stack = Stack.create () in
  let push k =
    if not (Hashtbl.mem marked k) then begin
      Hashtbl.add marked k ();
      Stack.push k stack
    end
  in
  List.iter push seeds;
  while not (Stack.is_empty stack) do
    let k = Stack.pop stack in
    out := k :: !out;
    incr count;
    succ k push
  done;
  let arr = Array.make !count 0 in
  List.iteri (fun i k -> arr.(i) <- k) !out;
  Array.sort compare arr;
  arr

(* Sparse-RHS [A x = b]: [b] gives the nonzero ORIGINAL rows; the result
   is dense (the caller typically keeps applying eta updates to it). *)
let solve_sparse t b =
  let n = t.n in
  let w = Array.make n 0.0 in
  let seeds =
    Sparse.fold
      (fun i v acc ->
        w.(i) <- v;
        t.pos.(i) :: acc)
      b []
  in
  (* forward L pass: position k spreads to pos of its L-column rows *)
  let fwd =
    reach (fun k f -> Array.iter (fun i -> f t.pos.(i)) t.l_rows.(k)) seeds
  in
  Array.iter
    (fun k ->
      let yk = w.(t.prow.(k)) in
      if yk <> 0.0 then begin
        let rows = t.l_rows.(k) and vals = t.l_vals.(k) in
        for i = 0 to Array.length rows - 1 do
          w.(rows.(i)) <- w.(rows.(i)) -. (vals.(i) *. yk)
        done
      end)
    fwd;
  let x = Array.make n 0.0 in
  Array.iter (fun k -> x.(k) <- w.(t.prow.(k))) fwd;
  (* backward U pass: position j spreads to its above-diagonal rows *)
  let bwd = reach (fun j f -> Array.iter f t.u_rows.(j)) (Array.to_list fwd) in
  for idx = Array.length bwd - 1 downto 0 do
    let j = bwd.(idx) in
    let xj = x.(j) /. t.u_diag.(j) in
    x.(j) <- xj;
    if xj <> 0.0 then begin
      let rows = t.u_rows.(j) and vals = t.u_vals.(j) in
      for i = 0 to Array.length rows - 1 do
        x.(rows.(i)) <- x.(rows.(i)) -. (vals.(i) *. xj)
      done
    end
  done;
  x

(* Sparse-RHS [A^T x = c]: [c] gives the nonzero pivot positions; dense
   result indexed by original rows, exactly like {!solve_transpose}. *)
let solve_transpose_sparse t c =
  let n = t.n in
  let w = Array.make n 0.0 in
  let seeds =
    Sparse.fold
      (fun j v acc ->
        w.(j) <- v;
        j :: acc)
      c []
  in
  (* U^T pass, ascending: nonzero at k spreads to u_radj.(k) *)
  let up = reach (fun k f -> Array.iter f t.u_radj.(k)) seeds in
  Array.iter
    (fun j ->
      let rows = t.u_rows.(j) and vals = t.u_vals.(j) in
      let acc = ref w.(j) in
      for i = 0 to Array.length rows - 1 do
        acc := !acc -. (vals.(i) *. w.(rows.(i)))
      done;
      w.(j) <- !acc /. t.u_diag.(j))
    up;
  (* L^T pass, descending: nonzero at p spreads to l_radj.(p) *)
  let lp = reach (fun p f -> Array.iter f t.l_radj.(p)) (Array.to_list up) in
  let x = Array.make n 0.0 in
  for idx = Array.length lp - 1 downto 0 do
    let k = lp.(idx) in
    let rows = t.l_rows.(k) and vals = t.l_vals.(k) in
    let acc = ref w.(k) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (vals.(i) *. x.(rows.(i)))
    done;
    x.(t.prow.(k)) <- !acc
  done;
  x
