(** Sparse LU factorisation with partial pivoting (left-looking,
    Gilbert-Peierls style with a dense accumulator column).

    Factors a square matrix given by its sparse columns as [P A = L U]
    and provides the four triangular solves the revised simplex needs:
    ftran ([A x = b]), btran ([A^T x = c]), and their dense-input
    variants. Basis matrices of EBF programs are extremely sparse (path
    incidence structure), so factorisation and solves run in roughly
    O(nnz) instead of the dense O(n^3)/O(n^2). *)

type t

exception Singular of int
(** Raised by {!factor} with the offending column when the matrix is
    numerically singular (pivot below the tolerance). *)

val factor : ?pivot_tol:float -> Sparse.t array -> t
(** [factor cols] factors the square matrix whose [j]-th column is
    [cols.(j)] (row indices must be < [Array.length cols]). *)

val dim : t -> int
(** Dimension of the factored (square) matrix. *)

val nnz : t -> int
(** Fill-in diagnostic: stored nonzeros of [L] and [U]. *)

val solve : t -> float array -> float array
(** [solve t b] returns [x] with [A x = b]; [b] is indexed by rows, [x]
    by columns. [b] is not modified. *)

val solve_transpose : t -> float array -> float array
(** [solve_transpose t c] returns [x] with [A^T x = c]; [c] is indexed by
    columns, [x] by rows. *)

val inverse_column : t -> int -> float array
(** [inverse_column t j] is the [j]-th column of [A^-1] (a unit-vector
    solve). *)

val solve_sparse : t -> Sparse.t -> float array
(** Hyper-sparse variant of {!solve}: the right-hand side is given by its
    nonzeros (indexed by rows) and only the symbolic reach of those
    nonzeros through [L] and [U] is visited (Gilbert-Peierls). The dense
    result equals [solve t (densified b)] exactly — entries outside the
    reach are exact zeros, not truncations. Pays off when the reach is a
    small fraction of the dimension, as with unit right-hand sides on the
    path-structured EBF bases. *)

val solve_transpose_sparse : t -> Sparse.t -> float array
(** Hyper-sparse variant of {!solve_transpose}; the right-hand side is
    indexed by columns. Uses the reverse adjacency of [L]/[U] built at
    factor time for the symbolic phase. *)
