(** LP presolve: size reductions that preserve the optimal objective.

    Applied reductions (iterated to a fixed point):
    - {b fixed variables} ([lo = up]) are substituted into rows and the
      objective;
    - {b empty rows} are dropped (or the problem is declared infeasible
      when their bounds exclude 0);
    - {b singleton rows} ([a * x_j] between two bounds) are turned into
      tightened bounds on [x_j] and dropped;
    - {b duplicate rows} (same coefficient vector) are merged by
      intersecting their bounds;
    - {b free rows} ([-inf, +inf]) are dropped.

    The result carries a postsolve mapping that reconstructs a solution of
    the original problem from a solution of the reduced one. *)

type t
(** A presolved problem plus its postsolve information. *)

type outcome =
  | Reduced of t
  | Infeasible_detected of string
      (** presolve proved infeasibility (e.g. an empty row with
          unsatisfiable bounds, or crossed variable bounds) *)

val run : Problem.t -> outcome
(** Runs the reduction loop to a fixed point. The input problem is not
    modified; the reduced problem shares no mutable state with it. *)

val problem : t -> Problem.t
(** The reduced problem. *)

val original_vars : t -> int
(** Variable count of the original problem (the size {!postsolve}
    restores). *)

val reduced_vars : t -> int
(** Variable count after reduction. *)

val reduced_rows : t -> int
(** Row count after reduction. *)

val postsolve : t -> Status.solution -> Status.solution
(** Lifts a solution of the reduced problem back to the original variable
    space (fixed variables reinstated, row activities recomputed; dual
    values of dropped rows are reported as 0). *)

val solve : ?params:Simplex.params -> Problem.t -> Status.solution
(** Convenience: presolve, solve the reduced problem, postsolve. *)
