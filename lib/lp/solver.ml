(* Content addressing for raw models: the structure fingerprint covers the
   shape that fixes dual feasibility of a basis — objective and constraint
   coefficients — while the full key adds every variable and row bound.
   Equal keys mean the identical LP (exact hit); equal structures with
   different keys mean a bounds-edited sibling whose cached basis stays
   dual feasible (parent hit). *)
let fingerprints prob =
  let h = Basis_cache.Fingerprint.create () in
  Basis_cache.Fingerprint.add_string h "lubt-lp/raw";
  let n = Problem.nvars prob and m = Problem.nrows prob in
  Basis_cache.Fingerprint.add_int h n;
  Basis_cache.Fingerprint.add_int h m;
  for j = 0 to n - 1 do
    Basis_cache.Fingerprint.add_float h (Problem.obj_coeff prob j)
  done;
  for i = 0 to m - 1 do
    Sparse.iter
      (fun j v ->
        Basis_cache.Fingerprint.add_int h j;
        Basis_cache.Fingerprint.add_float h v)
      (Problem.row prob i).Problem.coeffs
  done;
  let structure = Basis_cache.Fingerprint.digest h in
  for j = 0 to n - 1 do
    Basis_cache.Fingerprint.add_float h (Problem.var_lo prob j);
    Basis_cache.Fingerprint.add_float h (Problem.var_up prob j)
  done;
  for i = 0 to m - 1 do
    let r = Problem.row prob i in
    Basis_cache.Fingerprint.add_float h r.Problem.rlo;
    Basis_cache.Fingerprint.add_float h r.Problem.rup
  done;
  (structure, Basis_cache.Fingerprint.digest h)

let solve ?params ?(check = Certify.Off) ?cache prob =
  let eng = Simplex.of_problem ?params prob in
  let cache_ctx =
    match cache with
    | None -> None
    | Some c ->
      let structure, key = fingerprints prob in
      (match Basis_cache.find c ~structure ~key with
      | Basis_cache.Miss -> ()
      | Basis_cache.Exact e | Basis_cache.Parent e -> (
        match Simplex.install_warm_basis eng e.Basis_cache.e_basis with
        | Ok () -> ()
        | Error bm ->
          (* typed rejection: the engine stays on its valid cold basis *)
          Basis_cache.reject c
            ~reason:(Format.asprintf "%a" Simplex.pp_basis_mismatch bm)));
      Some (c, structure, key)
  in
  let status = Simplex.solve eng in
  let sol = Simplex.solution eng in
  let publish () =
    match cache_ctx with
    | Some (c, structure, key)
      when status = Status.Optimal && not (Simplex.used_fallback eng) ->
      Basis_cache.store c
        {
          Basis_cache.e_structure = structure;
          e_key = key;
          e_basis = Simplex.warm_basis eng;
          e_delay = [||];
          e_pairs = [||];
          e_objective = sol.Status.objective;
        }
    | _ -> ()
  in
  if status <> Status.Optimal || check = Certify.Off then begin
    publish ();
    sol
  end
  else begin
    (* the tableau fallback produces no multipliers, so a Full check would
       reject an honest answer: demote to Primal there *)
    let level = if Simplex.used_fallback eng then Certify.Primal else check in
    let report = Certify.check ~level prob sol in
    if report.Certify.ok then begin
      publish ();
      sol
    end
    else begin
      (* the engine's answer failed certification: re-derive it with the
         independent oracle and certify what the oracle can guarantee.
         Nothing is published — the cache only ever holds bases whose
         solves certified clean. *)
      let osol = Tableau.solve prob in
      let oreport = Certify.check ~level:Certify.Primal prob osol in
      if osol.Status.status = Status.Optimal && oreport.Certify.ok then
        { osol with Status.iterations = sol.Status.iterations }
      else { sol with Status.status = Status.Numerical_failure }
    end
  end

let solve_exn ?params ?check ?cache prob =
  let sol = solve ?params ?check ?cache prob in
  if sol.Status.status <> Status.Optimal then
    failwith
      (Printf.sprintf
         "LP not optimal: status %s, objective %.9g, after %d iterations"
         (Status.to_string sol.Status.status)
         sol.Status.objective sol.Status.iterations);
  sol
