let solve ?params ?(check = Certify.Off) prob =
  let eng = Simplex.of_problem ?params prob in
  let status = Simplex.solve eng in
  let sol = Simplex.solution eng in
  if status <> Status.Optimal || check = Certify.Off then sol
  else begin
    (* the tableau fallback produces no multipliers, so a Full check would
       reject an honest answer: demote to Primal there *)
    let level = if Simplex.used_fallback eng then Certify.Primal else check in
    let report = Certify.check ~level prob sol in
    if report.Certify.ok then sol
    else begin
      (* the engine's answer failed certification: re-derive it with the
         independent oracle and certify what the oracle can guarantee *)
      let osol = Tableau.solve prob in
      let oreport = Certify.check ~level:Certify.Primal prob osol in
      if osol.Status.status = Status.Optimal && oreport.Certify.ok then
        { osol with Status.iterations = sol.Status.iterations }
      else { sol with Status.status = Status.Numerical_failure }
    end
  end

let solve_exn ?params ?check prob =
  let sol = solve ?params ?check prob in
  if sol.Status.status <> Status.Optimal then
    failwith
      (Printf.sprintf
         "LP not optimal: status %s, objective %.9g, after %d iterations"
         (Status.to_string sol.Status.status)
         sol.Status.objective sol.Status.iterations);
  sol
