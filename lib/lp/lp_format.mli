(** CPLEX-LP-format export and a compatible subset reader.

    Useful for eyeballing EBF programs and for cross-checking against
    external solvers when one is available. The writer emits standard
    sections ([Minimize], [Subject To], [Bounds], [End]); range rows are
    written as two inequalities. The reader accepts the subset the writer
    produces (one constraint per line, [<=]/[>=]/[=], free-form spacing,
    [\ ] comments). *)

val to_string : Problem.t -> string
(** Renders the problem in CPLEX LP format. Unnamed variables get
    [x<index>] names so the output is always readable back. *)

val write : string -> Problem.t -> unit
(** [write path prob] writes {!to_string}[ prob] to [path]. *)

val of_string : string -> (Problem.t, string) result
(** Variables are created in order of first appearance; names are
    preserved. *)

val read : string -> (Problem.t, string) result
(** [read path] parses the file at [path] with {!of_string}; I/O errors
    are returned as [Error]. *)
