(* A-posteriori certification of a claimed LP solution against the raw
   problem data. Nothing here touches solver state: every quantity is
   recomputed from the Problem.t columns/bounds, so a corrupted basis
   inverse (or a hand-corrupted solution vector) cannot certify itself. *)

type level = Off | Primal | Full

let level_to_string = function
  | Off -> "off"
  | Primal -> "primal"
  | Full -> "full"

type report = {
  level : level;
  rows_checked : int;
  primal_residual : float;
  dual_residual : float;
  complementarity : float;
  duality_gap : float;
  objective_error : float;
  ok : bool;
  failure : string option;
}

let trivial level =
  {
    level;
    rows_checked = 0;
    primal_residual = 0.0;
    dual_residual = 0.0;
    complementarity = 0.0;
    duality_gap = 0.0;
    objective_error = 0.0;
    ok = true;
    failure = None;
  }

(* All comparisons are relative: EBF bounds are chip-scale (1e4..1e6). *)
let rel v scale = v /. (1.0 +. abs_float scale)

let check ?(tol = 1e-6) ?(level = Full) prob (sol : Status.solution) =
  if level = Off then trivial Off
  else begin
    let n = Problem.nvars prob and m = Problem.nrows prob in
    let x = sol.Status.primal and y = sol.Status.dual in
    let fail = ref None in
    let note msg = if !fail = None then fail := Some msg in
    if Array.length x <> n then
      note
        (Printf.sprintf "primal vector has %d entries for %d variables"
           (Array.length x) n);
    if level = Full && Array.length y <> m then
      note
        (Printf.sprintf "dual vector has %d entries for %d rows"
           (Array.length y) m);
    if !fail <> None then
      { (trivial level) with ok = false; failure = !fail }
    else begin
      (* --- primal feasibility ------------------------------------- *)
      let primal_residual = ref 0.0 in
      let bump_primal what idx v scale =
        let r = rel v scale in
        if r > !primal_residual then begin
          primal_residual := r;
          if r > tol then
            note (Printf.sprintf "%s %d violated by %.3g (relative)" what idx r)
        end
      in
      for j = 0 to n - 1 do
        let lo = Problem.var_lo prob j and up = Problem.var_up prob j in
        if x.(j) < lo then bump_primal "lower bound of variable" j (lo -. x.(j)) lo;
        if x.(j) > up then bump_primal "upper bound of variable" j (x.(j) -. up) up
      done;
      let activity = Array.make m 0.0 in
      for i = 0 to m - 1 do
        let row = Problem.row prob i in
        let acc = ref 0.0 in
        Sparse.iter (fun j a -> acc := !acc +. (a *. x.(j))) row.Problem.coeffs;
        activity.(i) <- !acc;
        if !acc < row.Problem.rlo then
          bump_primal "lower bound of row" i (row.Problem.rlo -. !acc) row.Problem.rlo;
        if !acc > row.Problem.rup then
          bump_primal "upper bound of row" i (!acc -. row.Problem.rup) row.Problem.rup;
        (* the packaged row activities must describe the same point *)
        if Array.length sol.Status.row_activity = m then
          bump_primal "reported activity of row" i
            (abs_float (sol.Status.row_activity.(i) -. !acc))
            !acc
      done;
      (* --- objective agreement ------------------------------------ *)
      let obj = Problem.objective_value prob x in
      let objective_error = rel (abs_float (sol.Status.objective -. obj)) obj in
      if objective_error > tol then
        note
          (Printf.sprintf
             "reported objective %.9g differs from recomputed %.9g"
             sol.Status.objective obj);
      (* --- dual feasibility, complementarity, weak duality -------- *)
      let dual_residual = ref 0.0 in
      let complementarity = ref 0.0 in
      let duality_gap = ref 0.0 in
      if level = Full then begin
        (* reduced costs from raw data: d_j = c_j - sum_i y_i a_ij *)
        let d = Array.init n (fun j -> Problem.obj_coeff prob j) in
        for i = 0 to m - 1 do
          let yi = y.(i) in
          if yi <> 0.0 then
            Sparse.iter
              (fun j a -> d.(j) <- d.(j) -. (yi *. a))
              (Problem.row prob i).Problem.coeffs
        done;
        let bump_dual what idx v scale =
          let r = rel v scale in
          if r > !dual_residual then begin
            dual_residual := r;
            if r > tol then
              note
                (Printf.sprintf "dual sign of %s %d violated by %.3g (relative)"
                   what idx r)
          end
        in
        let bump_compl what idx v scale =
          let r = rel v scale in
          if r > !complementarity then begin
            complementarity := r;
            if r > 100.0 *. tol then
              note
                (Printf.sprintf
                   "complementary slackness of %s %d violated by %.3g (relative)"
                   what idx r)
          end
        in
        (* A positive multiplier prices an active lower bound, a negative
           one an active upper bound; a multiplier pushing against an
           infinite bound is dual-infeasible outright. *)
        let act_tol = 100.0 *. tol in
        for j = 0 to n - 1 do
          let lo = Problem.var_lo prob j and up = Problem.var_up prob j in
          let c = Problem.obj_coeff prob j in
          if d.(j) > 0.0 && rel d.(j) c > act_tol then begin
            if lo = neg_infinity then bump_dual "variable" j d.(j) c
            else bump_compl "variable" j ((x.(j) -. lo) *. d.(j)) (abs_float lo +. abs_float c)
          end
          else if d.(j) < 0.0 && rel (-.d.(j)) c > act_tol then begin
            if up = infinity then bump_dual "variable" j (-.d.(j)) c
            else bump_compl "variable" j ((up -. x.(j)) *. -.d.(j)) (abs_float up +. abs_float c)
          end
        done;
        for i = 0 to m - 1 do
          let row = Problem.row prob i in
          if y.(i) > 0.0 && rel y.(i) 0.0 > act_tol then begin
            if row.Problem.rlo = neg_infinity then bump_dual "row" i y.(i) 0.0
            else
              bump_compl "row" i
                ((activity.(i) -. row.Problem.rlo) *. y.(i))
                (abs_float row.Problem.rlo)
          end
          else if y.(i) < 0.0 && rel (-.y.(i)) 0.0 > act_tol then begin
            if row.Problem.rup = infinity then bump_dual "row" i (-.y.(i)) 0.0
            else
              bump_compl "row" i
                ((row.Problem.rup -. activity.(i)) *. -.y.(i))
                (abs_float row.Problem.rup)
          end
        done;
        (* weak-duality gap: the dual objective from (y, d), with inactive
           multipliers contributing nothing *)
        let dualobj = ref 0.0 in
        for i = 0 to m - 1 do
          let row = Problem.row prob i in
          if y.(i) > 0.0 && row.Problem.rlo > neg_infinity then
            dualobj := !dualobj +. (y.(i) *. row.Problem.rlo)
          else if y.(i) < 0.0 && row.Problem.rup < infinity then
            dualobj := !dualobj +. (y.(i) *. row.Problem.rup)
        done;
        for j = 0 to n - 1 do
          let lo = Problem.var_lo prob j and up = Problem.var_up prob j in
          if d.(j) > 0.0 && lo > neg_infinity then
            dualobj := !dualobj +. (d.(j) *. lo)
          else if d.(j) < 0.0 && up < infinity then
            dualobj := !dualobj +. (d.(j) *. up)
        done;
        duality_gap := rel (abs_float (obj -. !dualobj)) obj;
        if !duality_gap > 100.0 *. tol then
          note
            (Printf.sprintf
               "duality gap: primal %.9g vs dual %.9g (relative gap %.3g)"
               obj !dualobj !duality_gap)
      end;
      let ok = !fail = None in
      {
        level;
        rows_checked = m;
        primal_residual = !primal_residual;
        dual_residual = !dual_residual;
        complementarity = !complementarity;
        duality_gap = !duality_gap;
        objective_error;
        ok;
        failure = !fail;
      }
    end
  end

let pp fmt r =
  Format.fprintf fmt
    "@[<v>certification (%s): %s@,\
     rows checked: %d@,\
     primal residual: %.3g, objective error: %.3g@,\
     dual residual: %.3g, complementarity: %.3g, duality gap: %.3g"
    (level_to_string r.level)
    (if r.ok then "OK" else "REJECTED")
    r.rows_checked r.primal_residual r.objective_error r.dual_residual
    r.complementarity r.duality_gap;
  (match r.failure with
  | Some msg -> Format.fprintf fmt "@,first failure: %s" msg
  | None -> ());
  Format.fprintf fmt "@]"
