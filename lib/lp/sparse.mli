(** Immutable sparse vectors (index/value pairs), used for LP constraint rows
    and columns. Indices are strictly increasing and values are nonzero. *)

type t

val empty : t

val of_assoc : (int * float) list -> t
(** Builds a sparse vector from (index, value) pairs. Duplicate indices are
    summed; zero results are dropped. Indices must be nonnegative. *)

val of_arrays : int array -> float array -> t
(** Unsafe fast path: indices must already be strictly increasing and values
    nonzero (checked by assertions). Arrays are not copied. *)

val singleton : int -> float -> t
(** [singleton i v] is the vector with the single entry [v] at index [i]
    ({!empty} when [v] is zero). *)

val of_dense : float array -> t
(** Gathers the nonzeros of a dense vector. *)

val nnz : t -> int

val iter : (int -> float -> unit) -> t -> unit

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val get : t -> int -> float
(** Value at an index ([0.] when absent); O(log nnz). *)

val dot_dense : t -> float array -> float
(** Dot product with a dense vector; indices must be within bounds. *)

val add_scaled_into : float array -> float -> t -> unit
(** [add_scaled_into dst k v] performs [dst.(i) <- dst.(i) +. k *. v_i] for
    every nonzero of [v]. *)

val to_assoc : t -> (int * float) list

val max_index : t -> int
(** Largest index present; [-1] for the empty vector. *)

val scale : float -> t -> t

val map_values : (float -> float) -> t -> t

val pp : Format.formatter -> t -> unit
