(** Independent a-posteriori certification of LP solutions.

    [check] takes the original {!Problem.t} and a claimed
    {!Status.solution} and re-derives everything from raw problem data:
    primal feasibility of every row and bound, agreement of the reported
    objective and row activities with the primal vector, dual sign
    feasibility, complementary slackness, and the weak-duality gap.

    It deliberately shares no state with the solvers — a corrupted basis
    inverse (or a corrupted solution vector) cannot certify itself. Paired
    with the {!Tableau} oracle it gives end-to-end confidence in results
    produced through the recovery ladder. *)

type level =
  | Off  (** no checking; [check] returns a trivially-ok report *)
  | Primal
      (** primal feasibility + objective agreement only. The right level
          when the dual vector is unavailable or meaningless (e.g. the
          solution came from the {!Tableau} fallback, whose duals are
          zeros). *)
  | Full
      (** [Primal] plus dual sign feasibility, complementary slackness
          and the weak-duality gap: an [ok] report at this level is an
          optimality certificate up to the tolerance. *)

type report = {
  level : level;
  rows_checked : int;  (** rows whose bounds and activity were verified *)
  primal_residual : float;
      (** worst relative violation of any row/variable bound, including
          disagreement between the reported and recomputed activities *)
  dual_residual : float;
      (** worst relative dual sign violation (a multiplier pushing
          against an infinite bound) *)
  complementarity : float;
      (** worst relative slack x multiplier product of a nominally
          active constraint *)
  duality_gap : float;  (** relative gap between primal and dual objectives *)
  objective_error : float;
      (** relative disagreement between the reported objective and
          [c^T x] recomputed from the primal vector *)
  ok : bool;
  failure : string option;  (** first check that failed, human-readable *)
}

val check : ?tol:float -> ?level:level -> Problem.t -> Status.solution -> report
(** [check prob sol] certifies [sol] against [prob]. [tol] (default
    [1e-6]) is the relative tolerance for primal feasibility and
    objective agreement; dual activation, complementarity and the gap use
    [100 x tol] so that honest degenerate optima are not rejected.
    Never raises; inconsistent dimensions yield [ok = false]. *)

val pp : Format.formatter -> report -> unit
(** One-line human rendering: level, verdict, and the residuals (plus
    the failing check when [ok = false]). *)

val level_to_string : level -> string
(** ["off"], ["primal"] or ["full"] — the spelling the CLI's
    [--certify] flag accepts. *)
