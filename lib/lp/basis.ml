(* B^-1 = G_k ... G_1 (diag(LU, I))^-1 where each G is either an eta
   transformation from a pivot (r, w) — identity except for column r,
   with E[r][r] = 1/w_r and E[i][r] = -w_i / w_r — or a border extension
   from an appended row: for B' = [[B, 0]; [bc^T, -1]] the inverse is
   [[B^-1, 0]; [bc^T B^-1, -1]], i.e. G computes v_bd <- bc . v - v_bd
   after the inner operators have been applied to the head. *)

type counters = {
  mutable ftrans : int;
  mutable btrans : int;
  mutable updates : int;
  mutable factorisations : int;
  mutable hyper_ftrans : int;
  mutable hyper_btrans : int;
  mutable extensions : int;
}

let fresh_counters () =
  {
    ftrans = 0;
    btrans = 0;
    updates = 0;
    factorisations = 0;
    hyper_ftrans = 0;
    hyper_btrans = 0;
    extensions = 0;
  }

exception Zero_pivot of { row : int; magnitude : float }

type op =
  | Eta of { r : int; wr : float; nz_idx : int array; nz_val : float array }
      (* off-pivot nonzeros of the pivot column (index <> r) *)
  | Border of { bd : int; bc : Sparse.t }
      (* appended row [bd]; [bc] is the new row over basis positions < bd *)

type t = {
  mutable lu : Lu.t;
  mutable trail : op list;  (* newest first *)
  mutable count : int;  (* etas in the trail *)
  mutable extra : int;  (* borders in the trail *)
  mutable tnnz : int;  (* nonzeros stored across the trail *)
  ops : counters;
}

let create ?counters ?pivot_tol cols =
  let ops = match counters with Some c -> c | None -> fresh_counters () in
  ops.factorisations <- ops.factorisations + 1;
  {
    lu = Lu.factor ?pivot_tol cols;
    trail = [];
    count = 0;
    extra = 0;
    tnnz = 0;
    ops;
  }

let dim t = Lu.dim t.lu + t.extra

let eta_count t = t.count

let trail_nnz t = t.tnnz

let lu_nnz t = Lu.nnz t.lu

(* A right-hand side whose LU-prefix has [k] nonzeros takes the
   hyper-sparse triangular kernels below this density; unit vectors
   (k <= 1) always qualify so the hyper path is exercised even on tiny
   bases. *)
let density_cutover = 0.2

let hyper_ok n k = k <= 1 || float_of_int k <= density_cutover *. float_of_int n

(* (G v), oldest operator already applied to v. *)
let apply_forward v op =
  match op with
  | Eta e ->
      let vr = v.(e.r) /. e.wr in
      if v.(e.r) <> 0.0 then
        for i = 0 to Array.length e.nz_idx - 1 do
          let j = e.nz_idx.(i) in
          v.(j) <- v.(j) -. (e.nz_val.(i) *. vr)
        done;
      v.(e.r) <- vr
  | Border b -> v.(b.bd) <- Sparse.dot_dense b.bc v -. v.(b.bd)

(* (G^T c): eta adjoints touch only component r; border adjoints negate
   the border component and scatter it into the head. *)
let apply_adjoint v op =
  match op with
  | Eta e ->
      let s = ref 0.0 in
      for i = 0 to Array.length e.nz_idx - 1 do
        s := !s +. (e.nz_val.(i) *. v.(e.nz_idx.(i)))
      done;
      v.(e.r) <- (v.(e.r) -. !s) /. e.wr
  | Border b ->
      let vd = v.(b.bd) in
      v.(b.bd) <- -.vd;
      if vd <> 0.0 then Sparse.add_scaled_into v vd b.bc

(* Extend an LU-dimension solution to full dimension, filling the border
   tail from [tail_of]. *)
let widen t sol tail_of =
  let n = Lu.dim t.lu in
  let d = n + t.extra in
  if d = n then sol
  else begin
    let full = Array.make d 0.0 in
    Array.blit sol 0 full 0 n;
    for i = n to d - 1 do
      full.(i) <- tail_of i
    done;
    full
  end

let lu_prefix_nnz t b =
  let n = Lu.dim t.lu in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if b.(i) <> 0.0 then incr k
  done;
  !k

let gather_prefix t b =
  let n = Lu.dim t.lu in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    if b.(i) <> 0.0 then pairs := (i, b.(i)) :: !pairs
  done;
  Sparse.of_assoc !pairs

let lu_ftran t b =
  let n = Lu.dim t.lu in
  let k = lu_prefix_nnz t b in
  if hyper_ok n k then begin
    t.ops.hyper_ftrans <- t.ops.hyper_ftrans + 1;
    Lu.solve_sparse t.lu (gather_prefix t b)
  end
  else Lu.solve t.lu (if t.extra = 0 then b else Array.sub b 0 n)

let ftran t b =
  t.ops.ftrans <- t.ops.ftrans + 1;
  let v = widen t (lu_ftran t b) (fun i -> b.(i)) in
  List.iter (apply_forward v) (List.rev t.trail);
  v

let ftran_sparse t sp =
  t.ops.ftrans <- t.ops.ftrans + 1;
  let n = Lu.dim t.lu in
  let head = ref [] and tail = ref [] in
  Sparse.iter
    (fun i v -> if i < n then head := (i, v) :: !head else tail := (i, v) :: !tail)
    sp;
  let k = List.length !head in
  let sol =
    if hyper_ok n k then begin
      t.ops.hyper_ftrans <- t.ops.hyper_ftrans + 1;
      Lu.solve_sparse t.lu (Sparse.of_assoc !head)
    end
    else begin
      let b = Array.make n 0.0 in
      List.iter (fun (i, x) -> b.(i) <- x) !head;
      Lu.solve t.lu b
    end
  in
  let v = widen t sol (fun _ -> 0.0) in
  List.iter (fun (i, x) -> v.(i) <- x) !tail;
  List.iter (apply_forward v) (List.rev t.trail);
  v

let btran t c =
  t.ops.btrans <- t.ops.btrans + 1;
  let v = Array.copy c in
  (* adjoints newest first *)
  List.iter (apply_adjoint v) t.trail;
  let n = Lu.dim t.lu in
  let k = lu_prefix_nnz t v in
  let sol =
    if hyper_ok n k then begin
      t.ops.hyper_btrans <- t.ops.hyper_btrans + 1;
      Lu.solve_transpose_sparse t.lu (gather_prefix t v)
    end
    else Lu.solve_transpose t.lu (if t.extra = 0 then v else Array.sub v 0 n)
  in
  widen t sol (fun i -> v.(i))

let btran_unit t r =
  let c = Array.make (dim t) 0.0 in
  c.(r) <- 1.0;
  btran t c

let update ?(tol = 1e-12) t r w =
  if abs_float w.(r) < tol then
    raise (Zero_pivot { row = r; magnitude = abs_float w.(r) });
  t.ops.updates <- t.ops.updates + 1;
  let nz = ref 0 in
  Array.iteri (fun i x -> if i <> r && x <> 0.0 then incr nz) w;
  let nz_idx = Array.make !nz 0 and nz_val = Array.make !nz 0.0 in
  let p = ref 0 in
  Array.iteri
    (fun i x ->
      if i <> r && x <> 0.0 then begin
        nz_idx.(!p) <- i;
        nz_val.(!p) <- x;
        incr p
      end)
    w;
  t.trail <- Eta { r; wr = w.(r); nz_idx; nz_val } :: t.trail;
  t.count <- t.count + 1;
  t.tnnz <- t.tnnz + !nz + 1

let append_row t bc =
  if Sparse.max_index bc >= dim t then
    invalid_arg "Basis.append_row: row index out of range";
  t.ops.extensions <- t.ops.extensions + 1;
  t.trail <- Border { bd = dim t; bc } :: t.trail;
  t.extra <- t.extra + 1;
  t.tnnz <- t.tnnz + Sparse.nnz bc + 1
