(* B^-1 = E_k ... E_1 (LU)^-1 with each eta E from a pivot (r, w):
   E is the identity except for column r, where E[r][r] = 1/w_r and
   E[i][r] = -w_i / w_r. *)

type counters = {
  mutable ftrans : int;
  mutable btrans : int;
  mutable updates : int;
  mutable factorisations : int;
}

let fresh_counters () = { ftrans = 0; btrans = 0; updates = 0; factorisations = 0 }

exception Zero_pivot of { row : int; magnitude : float }

type eta = { r : int; w : float array }

type t = {
  mutable lu : Lu.t;
  mutable etas : eta list;  (* newest first *)
  mutable count : int;
  ops : counters;
}

let create ?counters ?pivot_tol cols =
  let ops = match counters with Some c -> c | None -> fresh_counters () in
  ops.factorisations <- ops.factorisations + 1;
  { lu = Lu.factor ?pivot_tol cols; etas = []; count = 0; ops }

let dim t = Lu.dim t.lu

let eta_count t = t.count

(* (E v): v_r' = v_r / w_r; v_i' = v_i - w_i * v_r'. *)
let apply_eta e v =
  let vr = v.(e.r) /. e.w.(e.r) in
  if v.(e.r) <> 0.0 then begin
    let w = e.w in
    for i = 0 to Array.length v - 1 do
      if i <> e.r then v.(i) <- v.(i) -. (w.(i) *. vr)
    done
  end;
  v.(e.r) <- vr

(* (E^T c): only component r changes:
   c_r' = (c_r - (w . c - w_r c_r)) / w_r. *)
let apply_eta_transpose e c =
  let w = e.w in
  let s = ref 0.0 in
  for i = 0 to Array.length c - 1 do
    s := !s +. (w.(i) *. c.(i))
  done;
  c.(e.r) <- (c.(e.r) -. (!s -. (w.(e.r) *. c.(e.r)))) /. w.(e.r)

let ftran t b =
  t.ops.ftrans <- t.ops.ftrans + 1;
  let v = Lu.solve t.lu b in
  (* oldest eta first *)
  List.iter (fun e -> apply_eta e v) (List.rev t.etas);
  v

let btran t c =
  t.ops.btrans <- t.ops.btrans + 1;
  let v = Array.copy c in
  (* adjoints newest first *)
  List.iter (fun e -> apply_eta_transpose e v) t.etas;
  Lu.solve_transpose t.lu v

let btran_unit t r =
  let c = Array.make (dim t) 0.0 in
  c.(r) <- 1.0;
  btran t c

let update ?(tol = 1e-12) t r w =
  if abs_float w.(r) < tol then
    raise (Zero_pivot { row = r; magnitude = abs_float w.(r) });
  t.ops.updates <- t.ops.updates + 1;
  t.etas <- { r; w = Array.copy w } :: t.etas;
  t.count <- t.count + 1
