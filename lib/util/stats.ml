let sum arr =
  (* Kahan compensated summation: tree costs accumulate thousands of edge
     lengths and the plain left fold loses digits we assert on in tests. *)
  let total = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    let y = arr.(i) -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let mean arr =
  assert (Array.length arr > 0);
  sum arr /. float_of_int (Array.length arr)

let min_max arr =
  assert (Array.length arr > 0);
  let lo = ref arr.(0) and hi = ref arr.(0) in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < !lo then lo := arr.(i);
    if arr.(i) > !hi then hi := arr.(i)
  done;
  (!lo, !hi)

let approx_eq ?(eps = 1e-6) a b =
  let scale = max 1.0 (max (abs_float a) (abs_float b)) in
  abs_float (a -. b) <= eps *. scale

let clamp lo hi v =
  assert (lo <= hi);
  if v < lo then lo else if v > hi then hi else v

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
