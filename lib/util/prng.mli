(** Deterministic pseudo-random number generator (splitmix64).

    Used for all synthetic benchmark generation so that instances are
    reproducible across runs and platforms without depending on the state of
    [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. Two
    generators created with the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a child generator seeded by [t]'s next raw output
    and advances [t] by one step. Successive splits from one parent yield
    statistically independent streams (splitmix64's output mixes its
    counter state through two 64-bit finalisers), and the derivation is
    purely sequential — splitting [n] children from a seeded parent gives
    the same [n] streams no matter which domains later consume them. This
    is what {!Pool.map_seeded} uses to hand every task its own
    reproducible stream at any worker count. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of splitmix64. *)

val float : t -> float -> float
(** [float t bound] is a float drawn uniformly from [\[0, bound)].
    [bound] must be positive. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t bound] is an int drawn uniformly from [\[0, bound)].
    [bound] must be positive. *)

val bool : t -> bool
(** A uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
