(** Domain-parallel batch execution for independent tasks.

    A fixed-size pool of OCaml 5 domains drains a shared task queue
    (atomic next-index counter, so finished workers steal whatever work
    remains instead of being bound to a static slice). Designed for the
    instance sweeps of the experiment and bench layers: each task is a
    whole (topology, bounds) solve — milliseconds to seconds of work — so
    per-task dispatch overhead (one atomic fetch-and-add) is negligible.

    {b Determinism.} Results are returned in input order, regardless of
    which domain ran which task or in what order tasks finished. With
    {!map_seeded}, per-task PRNG streams are split from the root seed
    {e sequentially, before any domain starts}, so a seeded sweep is
    bit-for-bit reproducible at any [jobs] count.

    {b Exception safety.} A raising task never brings down the pool or
    the caller mid-sweep: every task's exception is captured with its
    backtrace and input index. [map]/[iter] re-raise the failure with the
    lowest input index after all tasks have run to completion (so a
    deterministic failure is reported identically at any [jobs] count);
    [map_result] hands back all outcomes for per-instance reporting.

    {b Requirements on tasks.} Tasks run concurrently on separate
    domains: they must not share mutable state (the LP engine qualifies —
    each {!Lubt_lp.Simplex.of_problem} engine owns all its state; see the
    domain-safety note in {!Lubt_lp.Simplex}). Tasks must not install
    signal handlers or chdir. Output interleaving is the task's own
    business — batch callers should buffer and print from the collecting
    domain only. *)

type failure = {
  index : int;  (** input position of the failing task *)
  exn : exn;
  backtrace : string;  (** rendering of [raw_backtrace], for reports *)
  raw_backtrace : Printexc.raw_backtrace;
      (** backtrace captured at the raise point, inside the worker *)
}
(** A captured task failure. *)

exception Task_failed of failure
(** Raised by {!map} and {!iter} (in the calling domain, after the sweep
    has drained) when at least one task raised; carries the failure with
    the smallest input index. Re-raised with
    [Printexc.raise_with_backtrace] so the worker-side frames survive
    the cross-domain hand-off and land in logs. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of how
    many domains this machine runs well (usually the core count). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by [jobs] domains.
    Results are in input order. [jobs] defaults to {!default_jobs} and is
    clamped to [1 .. length xs]; [jobs = 1] runs sequentially in the
    calling domain — no domain is spawned, giving bit-for-bit the
    sequential semantics (same evaluation order, same allocations).
    @raise Task_failed after the sweep if any task raised. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the input index passed to the task. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f xs] runs [f] on every element, in parallel.
    @raise Task_failed after the sweep if any task raised. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, failure) result list
(** Like {!map} but never raises: each task's outcome is an [Ok] or the
    captured failure, in input order. This is what batch drivers use to
    report per-instance errors and still exit non-zero at the end. *)

(** {1 Persistent executor}

    The batch entry points above spawn domains per sweep and join them
    before returning — the right shape for a finite corpus, the wrong
    one for a long-lived daemon. {!Executor} keeps a fixed set of
    worker domains alive across an unbounded request stream and adds
    the serving concerns batch mode never needed: {e backpressure}
    (a bounded pending queue; a submit past the bound is refused
    immediately instead of growing the queue without limit),
    {e cancellation} (a queued-but-unstarted task can be withdrawn,
    e.g. when its client hangs up), and {e supervision} (a worker
    domain that dies or runs one task past a hard watchdog deadline is
    replaced; only the affected ticket fails, with a structured
    {!abandon} reason).

    {b Supervision model.} OCaml domains cannot be killed preemptively,
    so supervision is by {e replacement}: a crashed worker respawns
    itself from its containment wrapper; a worker stuck past the
    watchdog deadline is {e deposed} — its ticket is failed, a
    replacement is spawned, and the stuck worker becomes a zombie that
    exits on its own if its task ever returns (and is simply never
    joined if it does not). Every replacement increments {!restarts}. *)

module Executor : sig
  type t
  (** A fixed pool of worker domains draining one shared FIFO queue. *)

  type ticket
  (** A submitted task, usable for {!cancel} and {!claim}. *)

  type reject =
    | Overloaded of int
        (** the pending queue was at [max_pending]; carries the depth
            observed at rejection time *)
    | Shutting_down  (** {!shutdown} has begun; no new work is accepted *)

  type abandon =
    | Crashed of string
        (** the worker domain running the task died; carries the
            rendered exception *)
    | Timed_out of float
        (** the task exceeded the watchdog deadline; carries the
            elapsed seconds at deposal *)
    | Dropped
        (** the task was still queued when a no-drain {!shutdown}
            cancelled it *)
  (** Why a ticket was abandoned by the executor rather than run to
      completion. Delivered through [submit]'s [on_abandon]. *)

  type chaos = {
    chaos_seed : int;
    kill_rate : float;  (** probability a task kills its worker *)
    delay_rate : float;  (** probability a task gets extra latency *)
    delay_s : float;  (** the injected latency, seconds *)
  }
  (** A deterministic fault plan for the service layer, mirroring
      {!Lubt_lp.Simplex.fault_plan} one level up. Decisions are drawn
      from a private seeded {!Prng} stream at submission time (under
      the pool lock), so for a fixed accepted-request sequence the
      same tasks are killed/delayed regardless of worker scheduling. *)

  val chaos_plan :
    ?kill_rate:float -> ?delay_rate:float -> ?delay_s:float -> int -> chaos
  (** [chaos_plan seed] builds a fault plan. Defaults:
      [kill_rate = 0.1], [delay_rate = 0.2], [delay_s = 0.02].
      @raise Invalid_argument on rates outside [0, 1] or negative
      delay. *)

  val create :
    ?jobs:int -> ?max_pending:int -> ?watchdog:float -> ?chaos:chaos ->
    unit -> t
  (** [create ~jobs ~max_pending ()] spawns [jobs] worker domains
      (default {!default_jobs}, clamped to at least 1). At most
      [max_pending] (default 64) tasks may wait in the queue; running
      tasks do not count against the bound. [watchdog] (seconds,
      default [infinity] = disabled) is the hard per-task deadline: a
      monitor domain deposes and replaces any worker whose current
      task runs longer, failing that ticket with [Timed_out]. [chaos]
      arms deterministic fault injection for tests and chaos smokes.
      @raise Invalid_argument if [watchdog] is not positive. *)

  val submit :
    ?on_abandon:(abandon -> unit) -> t -> (unit -> unit) ->
    (ticket, reject) result
  (** Enqueues a task, or refuses it without blocking. The task runs on
      some worker domain; an exception it raises is contained there —
      counted ({!task_errors}), logged with its backtrace via
      {!Lubt_obs.Log} — and never kills the worker. Tasks that must
      report results do so themselves (e.g. by writing a response);
      the executor carries no return values.

      [on_abandon] is called (at most once, from an executor-internal
      domain, outside the pool lock) if the executor gives up on the
      ticket: worker crash, watchdog deposal, or no-drain shutdown of
      a still-queued task. It is {e not} called for {!cancel} (the
      canceller already knows). Every accepted ticket thus either runs,
      is cancelled by its owner, or gets exactly one [on_abandon] —
      including tickets accepted concurrently with a draining
      {!shutdown}. *)

  val cancel : ticket -> bool
  (** [cancel ticket] withdraws the task if it has not started; [true]
      on success, [false] when it is already running or finished
      (a running task is never interrupted). *)

  val claim : ticket -> bool
  (** [claim ticket] atomically marks a running ticket as completed by
      its own task; [true] exactly once, and [false] if the executor
      already abandoned it (crash/watchdog). A task that publishes a
      result externally should claim first and stay silent on [false],
      so a response and an [on_abandon] error can never both be
      emitted for one ticket. *)

  val abandoned : ticket -> bool
  (** [true] once the executor has given up on the ticket. *)

  val jobs : t -> int
  (** Worker-domain count the executor was created with. *)

  val pending : t -> int
  (** Tasks queued and not yet started. *)

  val running : t -> int
  (** Tasks currently executing on a worker. *)

  val workers : t -> int
  (** Live (non-deposed) worker domains right now. *)

  val task_errors : t -> int
  (** Tasks that raised since {!create} (each one was logged). *)

  val restarts : t -> int
  (** Worker domains respawned after a crash or watchdog deposal. *)

  val watchdog_fires : t -> int
  (** Tickets failed by the watchdog deadline. *)

  val chaos_injected : t -> int
  (** Tasks that received an injected fault (kill or delay). *)

  val shutdown : ?drain:bool -> t -> unit
  (** Stops the executor and joins its domains. With [drain = true]
      (default) queued tasks run to completion first — the watchdog
      (if armed) stays live through the drain, so a task that wedges
      mid-drain is deposed rather than wedging shutdown; with
      [drain = false] queued tasks are cancelled (their [on_abandon]
      fires with [Dropped]) and only the tasks already running finish.
      Subsequent {!submit}s return [Error Shutting_down]. Workers that
      crash mid-drain are replaced so queued tickets are never
      stranded. Idempotent-ish: a second call re-joins nothing and
      keeps the first call's drain mode. *)
end

val map_seeded :
  ?jobs:int -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded ~seed f xs] gives every task a private PRNG stream:
    stream [i] is the [i]-th {!Prng.split} of a parent created with
    [seed]. The streams are derived sequentially before any worker
    starts, so the value of task [i] does not depend on [jobs] or on
    scheduling — seeded sweeps reproduce bit-for-bit at any domain
    count.
    @raise Task_failed after the sweep if any task raised. *)
