(** Domain-parallel batch execution for independent tasks.

    A fixed-size pool of OCaml 5 domains drains a shared task queue
    (atomic next-index counter, so finished workers steal whatever work
    remains instead of being bound to a static slice). Designed for the
    instance sweeps of the experiment and bench layers: each task is a
    whole (topology, bounds) solve — milliseconds to seconds of work — so
    per-task dispatch overhead (one atomic fetch-and-add) is negligible.

    {b Determinism.} Results are returned in input order, regardless of
    which domain ran which task or in what order tasks finished. With
    {!map_seeded}, per-task PRNG streams are split from the root seed
    {e sequentially, before any domain starts}, so a seeded sweep is
    bit-for-bit reproducible at any [jobs] count.

    {b Exception safety.} A raising task never brings down the pool or
    the caller mid-sweep: every task's exception is captured with its
    backtrace and input index. [map]/[iter] re-raise the failure with the
    lowest input index after all tasks have run to completion (so a
    deterministic failure is reported identically at any [jobs] count);
    [map_result] hands back all outcomes for per-instance reporting.

    {b Requirements on tasks.} Tasks run concurrently on separate
    domains: they must not share mutable state (the LP engine qualifies —
    each {!Lubt_lp.Simplex.of_problem} engine owns all its state; see the
    domain-safety note in {!Lubt_lp.Simplex}). Tasks must not install
    signal handlers or chdir. Output interleaving is the task's own
    business — batch callers should buffer and print from the collecting
    domain only. *)

type failure = {
  index : int;  (** input position of the failing task *)
  exn : exn;
  backtrace : string;  (** raw backtrace captured at the raise point *)
}
(** A captured task failure. *)

exception Task_failed of failure
(** Raised by {!map} and {!iter} (in the calling domain, after the sweep
    has drained) when at least one task raised; carries the failure with
    the smallest input index. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of how
    many domains this machine runs well (usually the core count). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by [jobs] domains.
    Results are in input order. [jobs] defaults to {!default_jobs} and is
    clamped to [1 .. length xs]; [jobs = 1] runs sequentially in the
    calling domain — no domain is spawned, giving bit-for-bit the
    sequential semantics (same evaluation order, same allocations).
    @raise Task_failed after the sweep if any task raised. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the input index passed to the task. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f xs] runs [f] on every element, in parallel.
    @raise Task_failed after the sweep if any task raised. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, failure) result list
(** Like {!map} but never raises: each task's outcome is an [Ok] or the
    captured failure, in input order. This is what batch drivers use to
    report per-instance errors and still exit non-zero at the end. *)

val map_seeded :
  ?jobs:int -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded ~seed f xs] gives every task a private PRNG stream:
    stream [i] is the [i]-th {!Prng.split} of a parent created with
    [seed]. The streams are derived sequentially before any worker
    starts, so the value of task [i] does not depend on [jobs] or on
    scheduling — seeded sweeps reproduce bit-for-bit at any domain
    count.
    @raise Task_failed after the sweep if any task raised. *)
