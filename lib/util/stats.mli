(** Small numerical helpers shared across the project. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)

val mean : float array -> float
(** Mean of a nonempty array. *)

val min_max : float array -> float * float
(** Minimum and maximum of a nonempty array. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** Comparison with mixed absolute/relative tolerance (default 1e-6). *)

val clamp : float -> float -> float -> float
(** [clamp lo hi v] restricts [v] to [\[lo, hi\]]. Requires [lo <= hi]. *)

val percentile : float array -> float -> float
(** [percentile sorted p] is the nearest-rank [p]-th percentile
    ([0 <= p <= 100]) of an ascending-sorted array: the element at
    rank [ceil (p/100 * n)], clamped into range; [nan] when empty.
    This is the exact-sample counterpart of the bucketed
    {!Lubt_obs.Metrics.Buckets.quantile} estimate — on the same data
    the two agree to within one bucket width, which the metrics test
    suite pins. *)
