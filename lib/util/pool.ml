type failure = {
  index : int;
  exn : exn;
  backtrace : string;
  raw_backtrace : Printexc.raw_backtrace;
}

exception Task_failed of failure

let default_jobs () = Domain.recommended_domain_count ()

(* Each slot of [results] is written exactly once, by the single worker
   that claimed its index from the atomic counter; the caller reads the
   slots only after joining every domain. Domain.join is the
   synchronisation point, so plain Array writes are race-free here. *)
let run_indexed ~jobs (tasks : (unit -> 'b) array) : ('b, failure) result array =
  let n = Array.length tasks in
  let module Trace = Lubt_obs.Trace in
  let module Clock = Lubt_obs.Clock in
  let capture i f =
    (* the per-task span records in the worker domain's own trace buffer,
       so parallel tasks render as separate tid tracks *)
    let t0 = if Trace.enabled () then Clock.now () else 0.0 in
    let fin r =
      if Trace.enabled () then
        Trace.complete ~t0 "pool.task" ~args:[ ("index", Trace.Int i) ];
      r
    in
    match f () with
    | v -> fin (Ok v)
    | exception exn ->
      let raw_backtrace = Printexc.get_raw_backtrace () in
      fin
        (Error
           {
             index = i;
             exn;
             backtrace = Printexc.raw_backtrace_to_string raw_backtrace;
             raw_backtrace;
           })
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.mapi (fun i f -> capture i f) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (capture i tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function Some r -> r | None -> assert false (* every index claimed *))
      results
  end

let map_result ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  Array.to_list (run_indexed ~jobs tasks)

(* Re-raise the lowest-index failure so the reported error does not
   depend on scheduling. The raise point's own backtrace is reattached
   so the original frames survive the cross-domain hand-off. *)
let reraise_first results =
  List.iter
    (function
      | Error f -> Printexc.raise_with_backtrace (Task_failed f) f.raw_backtrace
      | Ok _ -> ())
    results

let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.mapi (fun i x () -> f i x) xs) in
  let results = Array.to_list (run_indexed ~jobs tasks) in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let iter ?jobs f xs = ignore (map ?jobs f xs)

(* ------------------------------------------------------------------ *)
(* Persistent executor (serve mode)                                    *)
(* ------------------------------------------------------------------ *)

module Executor = struct
  type task_state = Pending | Running | Done | Cancelled

  type task = { mutable state : task_state; run : unit -> unit }

  type t = {
    lock : Mutex.t;
    work : Condition.t;  (* signalled on submit and on shutdown *)
    queue : task Queue.t;
    max_pending : int;
    jobs : int;
    mutable pending : int;  (* Pending tasks currently queued *)
    mutable running : int;
    mutable task_errors : int;
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
  }

  type ticket = { ticket_task : task; owner : t }

  type reject =
    | Overloaded of int  (** queue depth at rejection time *)
    | Shutting_down

  (* Workers drain the shared queue until shutdown; a raising task is
     contained here (counted and logged with its backtrace) so one bad
     request can never take a worker domain down with it. *)
  let worker pool () =
    let rec take () =
      if pool.stopping && Queue.is_empty pool.queue then None
      else
        match Queue.take_opt pool.queue with
        | Some tk when tk.state = Pending ->
          tk.state <- Running;
          pool.pending <- pool.pending - 1;
          pool.running <- pool.running + 1;
          Some tk
        | Some _ -> take () (* cancelled while queued: skip *)
        | None ->
          Condition.wait pool.work pool.lock;
          take ()
    in
    let rec loop () =
      Mutex.lock pool.lock;
      match take () with
      | None -> Mutex.unlock pool.lock
      | Some tk ->
        Mutex.unlock pool.lock;
        (try tk.run () with
        | exn ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.protect pool.lock (fun () ->
              pool.task_errors <- pool.task_errors + 1);
          Lubt_obs.Log.err
            ~fields:
              [ ("exn", Lubt_obs.Trace.Str (Printexc.to_string exn)) ]
            "executor task raised%s"
            (let s = Printexc.raw_backtrace_to_string bt in
             if s = "" then "" else "\n" ^ s));
        Mutex.protect pool.lock (fun () ->
            tk.state <- Done;
            pool.running <- pool.running - 1);
        loop ()
    in
    loop ()

  let create ?jobs ?(max_pending = 64) () =
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let pool =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        queue = Queue.create ();
        max_pending = max 0 max_pending;
        jobs;
        pending = 0;
        running = 0;
        task_errors = 0;
        stopping = false;
        workers = [];
      }
    in
    pool.workers <- List.init jobs (fun _ -> Domain.spawn (worker pool));
    pool

  let jobs pool = pool.jobs

  let pending pool = Mutex.protect pool.lock (fun () -> pool.pending)

  let running pool = Mutex.protect pool.lock (fun () -> pool.running)

  let task_errors pool =
    Mutex.protect pool.lock (fun () -> pool.task_errors)

  let submit pool f =
    Mutex.protect pool.lock (fun () ->
        if pool.stopping then Error Shutting_down
        else if pool.pending >= pool.max_pending then
          Error (Overloaded pool.pending)
        else begin
          let tk = { state = Pending; run = f } in
          Queue.add tk pool.queue;
          pool.pending <- pool.pending + 1;
          Condition.signal pool.work;
          Ok { ticket_task = tk; owner = pool }
        end)

  let cancel { ticket_task = tk; owner = pool } =
    Mutex.protect pool.lock (fun () ->
        if tk.state = Pending then begin
          tk.state <- Cancelled;
          pool.pending <- pool.pending - 1;
          true
        end
        else false)

  let shutdown ?(drain = true) pool =
    let workers =
      Mutex.protect pool.lock (fun () ->
          pool.stopping <- true;
          if not drain then begin
            (* drop everything still queued; running tasks finish *)
            Queue.iter
              (fun tk -> if tk.state = Pending then tk.state <- Cancelled)
              pool.queue;
            pool.pending <- 0
          end;
          Condition.broadcast pool.work;
          let ws = pool.workers in
          pool.workers <- [];
          ws)
    in
    List.iter Domain.join workers
end

let map_seeded ?jobs ~seed f xs =
  let root = Prng.create seed in
  (* split all streams sequentially up front: stream i is a function of
     (seed, i) alone, never of jobs or scheduling *)
  let seeded = List.map (fun x -> (Prng.split root, x)) xs in
  map ?jobs (fun (rng, x) -> f rng x) seeded
