type failure = { index : int; exn : exn; backtrace : string }

exception Task_failed of failure

let default_jobs () = Domain.recommended_domain_count ()

(* Each slot of [results] is written exactly once, by the single worker
   that claimed its index from the atomic counter; the caller reads the
   slots only after joining every domain. Domain.join is the
   synchronisation point, so plain Array writes are race-free here. *)
let run_indexed ~jobs (tasks : (unit -> 'b) array) : ('b, failure) result array =
  let n = Array.length tasks in
  let module Trace = Lubt_obs.Trace in
  let module Clock = Lubt_obs.Clock in
  let capture i f =
    (* the per-task span records in the worker domain's own trace buffer,
       so parallel tasks render as separate tid tracks *)
    let t0 = if Trace.enabled () then Clock.now () else 0.0 in
    let fin r =
      if Trace.enabled () then
        Trace.complete ~t0 "pool.task" ~args:[ ("index", Trace.Int i) ];
      r
    in
    match f () with
    | v -> fin (Ok v)
    | exception exn ->
      let backtrace = Printexc.get_backtrace () in
      fin (Error { index = i; exn; backtrace })
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.mapi (fun i f -> capture i f) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (capture i tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function Some r -> r | None -> assert false (* every index claimed *))
      results
  end

let map_result ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  Array.to_list (run_indexed ~jobs tasks)

(* Re-raise the lowest-index failure so the reported error does not
   depend on scheduling. *)
let reraise_first results =
  List.iter (function Error f -> raise (Task_failed f) | Ok _ -> ()) results

let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.mapi (fun i x () -> f i x) xs) in
  let results = Array.to_list (run_indexed ~jobs tasks) in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let iter ?jobs f xs = ignore (map ?jobs f xs)

let map_seeded ?jobs ~seed f xs =
  let root = Prng.create seed in
  (* split all streams sequentially up front: stream i is a function of
     (seed, i) alone, never of jobs or scheduling *)
  let seeded = List.map (fun x -> (Prng.split root, x)) xs in
  map ?jobs (fun (rng, x) -> f rng x) seeded
