type failure = {
  index : int;
  exn : exn;
  backtrace : string;
  raw_backtrace : Printexc.raw_backtrace;
}

exception Task_failed of failure

let default_jobs () = Domain.recommended_domain_count ()

(* Each slot of [results] is written exactly once, by the single worker
   that claimed its index from the atomic counter; the caller reads the
   slots only after joining every domain. Domain.join is the
   synchronisation point, so plain Array writes are race-free here. *)
let run_indexed ~jobs (tasks : (unit -> 'b) array) : ('b, failure) result array =
  let n = Array.length tasks in
  let module Trace = Lubt_obs.Trace in
  let module Clock = Lubt_obs.Clock in
  let capture i f =
    (* the per-task span records in the worker domain's own trace buffer,
       so parallel tasks render as separate tid tracks *)
    let t0 = if Trace.enabled () then Clock.now () else 0.0 in
    let fin r =
      if Trace.enabled () then
        Trace.complete ~t0 "pool.task" ~args:[ ("index", Trace.Int i) ];
      r
    in
    match f () with
    | v -> fin (Ok v)
    | exception exn ->
      let raw_backtrace = Printexc.get_raw_backtrace () in
      fin
        (Error
           {
             index = i;
             exn;
             backtrace = Printexc.raw_backtrace_to_string raw_backtrace;
             raw_backtrace;
           })
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.mapi (fun i f -> capture i f) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (capture i tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function Some r -> r | None -> assert false (* every index claimed *))
      results
  end

let map_result ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  Array.to_list (run_indexed ~jobs tasks)

(* Re-raise the lowest-index failure so the reported error does not
   depend on scheduling. The raise point's own backtrace is reattached
   so the original frames survive the cross-domain hand-off. *)
let reraise_first results =
  List.iter
    (function
      | Error f -> Printexc.raise_with_backtrace (Task_failed f) f.raw_backtrace
      | Ok _ -> ())
    results

let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let tasks = Array.of_list (List.mapi (fun i x () -> f i x) xs) in
  let results = Array.to_list (run_indexed ~jobs tasks) in
  reraise_first results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let iter ?jobs f xs = ignore (map ?jobs f xs)

(* ------------------------------------------------------------------ *)
(* Persistent executor (serve mode)                                    *)
(* ------------------------------------------------------------------ *)

module Executor = struct
  module Log = Lubt_obs.Log
  module Trace = Lubt_obs.Trace
  module Clock = Lubt_obs.Clock
  module Metrics = Lubt_obs.Metrics

  (* registry handles: registration is a one-time lookup; recording is
     behind the metrics enabled flag and costs one atomic load when off *)
  let m_queue_depth =
    Metrics.gauge ~help:"Tasks queued in the executor"
      "lubt_executor_queue_depth"

  let m_restarts =
    Metrics.counter ~help:"Worker domains respawned after a crash or deposal"
      "lubt_executor_restarts_total"

  let m_watchdog_fires =
    Metrics.counter ~help:"Watchdog hard-deadline fires"
      "lubt_executor_watchdog_fires_total"

  let m_task_errors =
    Metrics.counter ~help:"Executor tasks whose run raised"
      "lubt_executor_task_errors_total"

  let m_task_latency =
    Metrics.histogram ~help:"Executor task wall time in milliseconds"
      "lubt_executor_task_latency_ms"

  type task_state = Pending | Running | Done | Cancelled | Abandoned

  type abandon =
    | Crashed of string
    | Timed_out of float
    | Dropped

  type task = {
    mutable state : task_state;
    run : unit -> unit;
    on_abandon : (abandon -> unit) option;
    mutable started : float;  (* Clock.now when it became Running *)
    chaos_kill : bool;
    chaos_delay : float;  (* seconds of injected latency; 0 = none *)
  }

  type chaos = {
    chaos_seed : int;
    kill_rate : float;
    delay_rate : float;
    delay_s : float;
  }

  let chaos_plan ?(kill_rate = 0.1) ?(delay_rate = 0.2) ?(delay_s = 0.02)
      chaos_seed =
    if not (kill_rate >= 0.0 && kill_rate <= 1.0) then
      invalid_arg "Executor.chaos_plan: kill_rate must be in [0, 1]";
    if not (delay_rate >= 0.0 && delay_rate <= 1.0) then
      invalid_arg "Executor.chaos_plan: delay_rate must be in [0, 1]";
    if not (delay_s >= 0.0) then
      invalid_arg "Executor.chaos_plan: delay_s must be non-negative";
    { chaos_seed; kill_rate; delay_rate; delay_s }

  (* The simulated worker death: raised past the per-task containment so
     it exercises exactly the code path a real escaping exception (a bug
     in the containment itself, a fatal runtime condition) would take. *)
  exception Chaos_kill

  (* One worker domain's identity. A slot is [deposed] when the watchdog
     has replaced its (stuck) worker: the deposed worker finishes its
     current task, sees the flag and exits without taking new work — the
     closest thing to a kill that cooperative domains allow. *)
  type slot = {
    w_id : int;
    mutable w_task : task option;
    mutable w_deposed : bool;
    mutable w_domain : unit Domain.t option;
  }

  type t = {
    lock : Mutex.t;
    work : Condition.t;  (* signalled on submit and on shutdown *)
    queue : task Queue.t;
    max_pending : int;
    jobs : int;
    watchdog : float;  (* hard per-task deadline; infinity = off *)
    chaos : chaos option;
    chaos_rng : Prng.t option;  (* drawn under [lock], in submit order *)
    mutable pending : int;  (* Pending tasks currently queued *)
    mutable running : int;
    mutable task_errors : int;
    mutable restarts : int;  (* worker domains respawned *)
    mutable watchdog_fires : int;
    mutable chaos_injected : int;
    mutable stopping : bool;
    mutable drain : bool;  (* meaningful once [stopping] *)
    mutable slots : slot list;  (* live, non-deposed workers *)
    mutable joinable : unit Domain.t list;
    mutable next_worker : int;
    monitor_stop : bool Atomic.t;
    mutable monitor : unit Domain.t option;
  }

  type ticket = { ticket_task : task; owner : t }

  type reject =
    | Overloaded of int  (** queue depth at rejection time *)
    | Shutting_down

  (* Workers drain the shared queue until shutdown or deposal; a raising
     task is contained at the task boundary (counted and logged with its
     backtrace) so one bad request can never take a worker domain down
     with it. [Chaos_kill] deliberately escapes that containment. *)
  let rec worker_loop pool slot =
    Mutex.lock pool.lock;
    let rec take () =
      if slot.w_deposed then None
      else if pool.stopping && Queue.is_empty pool.queue then None
      else
        match Queue.take_opt pool.queue with
        | Some tk when tk.state = Pending ->
          tk.state <- Running;
          tk.started <- Clock.now ();
          pool.pending <- pool.pending - 1;
          pool.running <- pool.running + 1;
          Metrics.set m_queue_depth (float_of_int pool.pending);
          slot.w_task <- Some tk;
          Some tk
        | Some _ -> take () (* cancelled while queued: skip *)
        | None ->
          Condition.wait pool.work pool.lock;
          take ()
    in
    match take () with
    | None -> Mutex.unlock pool.lock
    | Some tk ->
      Mutex.unlock pool.lock;
      if tk.chaos_delay > 0.0 then Unix.sleepf tk.chaos_delay;
      if tk.chaos_kill then raise Chaos_kill;
      (try tk.run () with
      | Chaos_kill as e -> raise e
      | exn ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.protect pool.lock (fun () ->
            pool.task_errors <- pool.task_errors + 1);
        Metrics.incr m_task_errors;
        Log.err
          ~fields:[ ("exn", Trace.Str (Printexc.to_string exn)) ]
          "executor task raised%s"
          (let s = Printexc.raw_backtrace_to_string bt in
           if s = "" then "" else "\n" ^ s));
      if Metrics.enabled () then
        Metrics.observe m_task_latency ((Clock.now () -. tk.started) *. 1e3);
      Mutex.protect pool.lock (fun () ->
          (match tk.state with
          | Running ->
            tk.state <- Done;
            pool.running <- pool.running - 1
          | Done ->
            (* the task claimed its own completion *)
            pool.running <- pool.running - 1
          | Abandoned ->
            (* the watchdog or a crash already settled the books; a
               deposed worker additionally stops here via its flag *)
            ()
          | Pending | Cancelled -> assert false);
          slot.w_task <- None);
      worker_loop pool slot

  (* Spawn a worker into a fresh slot. Caller holds [pool.lock]. *)
  let rec spawn_worker pool =
    let slot =
      {
        w_id = pool.next_worker;
        w_task = None;
        w_deposed = false;
        w_domain = None;
      }
    in
    pool.next_worker <- pool.next_worker + 1;
    pool.slots <- slot :: pool.slots;
    let d = Domain.spawn (fun () -> worker_wrap pool slot) in
    slot.w_domain <- Some d;
    pool.joinable <- d :: pool.joinable

  (* Top-level containment for a dying worker domain: fail only its
     in-flight ticket with a structured reason, respawn a replacement so
     the pool keeps its capacity (also mid-drain, so a crash during
     shutdown cannot strand queued tickets), count the restart, and let
     the dead domain end. *)
  and worker_wrap pool slot =
    try worker_loop pool slot
    with exn ->
      let bt = Printexc.get_raw_backtrace () in
      let cb =
        Mutex.protect pool.lock (fun () ->
            let cb =
              match slot.w_task with
              | Some tk when tk.state = Running ->
                tk.state <- Abandoned;
                pool.running <- pool.running - 1;
                tk.on_abandon
              | _ -> None
            in
            slot.w_task <- None;
            slot.w_deposed <- true;
            pool.slots <- List.filter (fun s -> not (s == slot)) pool.slots;
            if
              (not pool.stopping)
              || (pool.drain && not (Queue.is_empty pool.queue))
            then begin
              pool.restarts <- pool.restarts + 1;
              Metrics.incr m_restarts;
              spawn_worker pool
            end;
            cb)
      in
      Log.err
        ~fields:
          [
            ("worker", Trace.Int slot.w_id);
            ("exn", Trace.Str (Printexc.to_string exn));
          ]
        "worker domain died; respawned%s"
        (let s = Printexc.raw_backtrace_to_string bt in
         if s = "" then "" else "\n" ^ s);
      if Trace.enabled () then
        Trace.instant "executor.worker_crash"
          ~args:[ ("worker", Trace.Int slot.w_id) ];
      (match cb with
      | Some f -> ( try f (Crashed (Printexc.to_string exn)) with _ -> ())
      | None -> ())

  (* The watchdog: a task running past the hard deadline has its ticket
     failed and its worker deposed and replaced. The stuck worker keeps
     running (domains cannot be killed) but is out of the pool: if the
     task ever finishes, the worker exits quietly. *)
  let monitor_loop pool =
    let interval = Float.max 0.001 (Float.min 0.05 (pool.watchdog /. 4.0)) in
    let rec go () =
      if Atomic.get pool.monitor_stop then ()
      else begin
        Unix.sleepf interval;
        let fired =
          Mutex.protect pool.lock (fun () ->
              let now = Clock.now () in
              let fired =
                List.filter_map
                  (fun slot ->
                    match slot.w_task with
                    | Some tk
                      when tk.state = Running
                           && now -. tk.started > pool.watchdog ->
                      Some (slot, tk, now -. tk.started)
                    | _ -> None)
                  pool.slots
              in
              List.iter
                (fun (slot, tk, _) ->
                  tk.state <- Abandoned;
                  pool.running <- pool.running - 1;
                  pool.watchdog_fires <- pool.watchdog_fires + 1;
                  pool.restarts <- pool.restarts + 1;
                  Metrics.incr m_watchdog_fires;
                  Metrics.incr m_restarts;
                  slot.w_task <- None;
                  slot.w_deposed <- true;
                  pool.slots <-
                    List.filter (fun s -> not (s == slot)) pool.slots;
                  (* a deposed worker may never terminate: take its
                     domain out of the joinable set so shutdown cannot
                     block on it *)
                  (match slot.w_domain with
                  | Some d ->
                    pool.joinable <-
                      List.filter (fun d' -> not (d' == d)) pool.joinable
                  | None -> ());
                  spawn_worker pool)
                fired;
              fired)
        in
        List.iter
          (fun (slot, tk, elapsed) ->
            Log.warn
              ~fields:
                [
                  ("worker", Trace.Int slot.w_id);
                  ("elapsed_s", Trace.Float elapsed);
                ]
              "watchdog: task over the %.3gs hard deadline; worker deposed \
               and replaced"
              pool.watchdog;
            if Trace.enabled () then
              Trace.instant "executor.watchdog_fire"
                ~args:[ ("worker", Trace.Int slot.w_id) ];
            match tk.on_abandon with
            | Some f -> ( try f (Timed_out elapsed) with _ -> ())
            | None -> ())
          fired;
        go ()
      end
    in
    go ()

  let create ?jobs ?(max_pending = 64) ?(watchdog = infinity) ?chaos () =
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    if not (watchdog > 0.0) then
      invalid_arg "Executor.create: watchdog must be positive";
    let pool =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        queue = Queue.create ();
        max_pending = max 0 max_pending;
        jobs;
        watchdog;
        chaos;
        chaos_rng =
          (match chaos with
          | Some c -> Some (Prng.create c.chaos_seed)
          | None -> None);
        pending = 0;
        running = 0;
        task_errors = 0;
        restarts = 0;
        watchdog_fires = 0;
        chaos_injected = 0;
        stopping = false;
        drain = true;
        slots = [];
        joinable = [];
        next_worker = 0;
        monitor_stop = Atomic.make false;
        monitor = None;
      }
    in
    Mutex.protect pool.lock (fun () ->
        for _ = 1 to jobs do
          spawn_worker pool
        done);
    if watchdog < infinity then
      pool.monitor <- Some (Domain.spawn (fun () -> monitor_loop pool));
    pool

  let jobs pool = pool.jobs

  let pending pool = Mutex.protect pool.lock (fun () -> pool.pending)

  let running pool = Mutex.protect pool.lock (fun () -> pool.running)

  let task_errors pool =
    Mutex.protect pool.lock (fun () -> pool.task_errors)

  let restarts pool = Mutex.protect pool.lock (fun () -> pool.restarts)

  let watchdog_fires pool =
    Mutex.protect pool.lock (fun () -> pool.watchdog_fires)

  let chaos_injected pool =
    Mutex.protect pool.lock (fun () -> pool.chaos_injected)

  let workers pool =
    Mutex.protect pool.lock (fun () -> List.length pool.slots)

  let submit ?on_abandon pool f =
    Mutex.protect pool.lock (fun () ->
        if pool.stopping then Error Shutting_down
        else if pool.pending >= pool.max_pending then
          Error (Overloaded pool.pending)
        else begin
          (* chaos decisions are drawn at submission, under the lock:
             for a fixed accepted-request sequence the plan is
             reproducible regardless of worker scheduling *)
          let chaos_kill, chaos_delay =
            match (pool.chaos, pool.chaos_rng) with
            | Some c, Some rng ->
              let kill =
                c.kill_rate > 0.0 && Prng.float rng 1.0 < c.kill_rate
              in
              let delay =
                if c.delay_rate > 0.0 && Prng.float rng 1.0 < c.delay_rate
                then c.delay_s
                else 0.0
              in
              if kill || delay > 0.0 then
                pool.chaos_injected <- pool.chaos_injected + 1;
              (kill, delay)
            | _ -> (false, 0.0)
          in
          let tk =
            {
              state = Pending;
              run = f;
              on_abandon;
              started = 0.0;
              chaos_kill;
              chaos_delay;
            }
          in
          Queue.add tk pool.queue;
          pool.pending <- pool.pending + 1;
          Metrics.set m_queue_depth (float_of_int pool.pending);
          Condition.signal pool.work;
          Ok { ticket_task = tk; owner = pool }
        end)

  let cancel { ticket_task = tk; owner = pool } =
    Mutex.protect pool.lock (fun () ->
        if tk.state = Pending then begin
          tk.state <- Cancelled;
          pool.pending <- pool.pending - 1;
          true
        end
        else false)

  let claim { ticket_task = tk; owner = pool } =
    Mutex.protect pool.lock (fun () ->
        match tk.state with
        | Running ->
          tk.state <- Done;
          true
        | Pending | Done | Cancelled | Abandoned -> false)

  let abandoned { ticket_task = tk; owner = pool } =
    Mutex.protect pool.lock (fun () -> tk.state = Abandoned)

  let shutdown ?(drain = true) pool =
    let cbs =
      Mutex.protect pool.lock (fun () ->
          let first = not pool.stopping in
          pool.stopping <- true;
          if first then pool.drain <- drain;
          let cbs = ref [] in
          if first && not drain then begin
            (* drop everything still queued; running tasks finish. A
               dropped ticket with a callback is told, so its owner is
               not left waiting for a response that cannot come. *)
            Queue.iter
              (fun tk ->
                if tk.state = Pending then begin
                  tk.state <- Cancelled;
                  match tk.on_abandon with
                  | Some f -> cbs := f :: !cbs
                  | None -> ()
                end)
              pool.queue;
            pool.pending <- 0
          end;
          Condition.broadcast pool.work;
          !cbs)
    in
    List.iter (fun f -> try f Dropped with _ -> ()) cbs;
    (* Join the workers one at a time, re-checking under the lock: the
       watchdog stays alive through the drain, so a task that wedges
       mid-drain still gets its worker deposed (and pulled out of the
       joinable set) instead of wedging shutdown with it. *)
    let rec join_all () =
      let next =
        Mutex.protect pool.lock (fun () ->
            match pool.joinable with
            | [] -> None
            | d :: rest ->
              pool.joinable <- rest;
              Some d)
      in
      match next with
      | None -> ()
      | Some d ->
        Domain.join d;
        join_all ()
    in
    join_all ();
    Atomic.set pool.monitor_stop true;
    match pool.monitor with
    | Some d ->
      Domain.join d;
      pool.monitor <- None
    | None -> ()
end

let map_seeded ?jobs ~seed f xs =
  let root = Prng.create seed in
  (* split all streams sequentially up front: stream i is a function of
     (seed, i) alone, never of jobs or scheduling *)
  let seeded = List.map (fun x -> (Prng.split root, x)) xs in
  map ?jobs (fun (rng, x) -> f rng x) seeded
