type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): a tiny, high-quality, reproducible
   generator whose whole state is one 64-bit word. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0,1) from the top 53 bits. *)
let split t = { state = next_int64 t }

let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  assert (bound > 0.0);
  unit_float t *. bound

let float_range t lo hi =
  assert (lo < hi);
  lo +. (unit_float t *. (hi -. lo))

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
